/// \file design_explorer.cpp
/// \brief Explore the design space of random MINs: how often is a random
/// wiring Banyan? How often baseline-equivalent? The experiment
/// demonstrates Theorem 3 live (every Banyan network with independent
/// connections lands in the Baseline class) and contrasts it with
/// arbitrary and buddy-constrained wirings, reproducing the insufficiency
/// of Agrawal's buddy conditions.
///
/// Usage: design_explorer [stages] [samples] [seed]   (default 5 200 1)

#include <cstdlib>
#include <iostream>

#include "min/banyan.hpp"
#include "min/buddy.hpp"
#include "min/equivalence.hpp"
#include "min/networks.hpp"
#include "perm/permutation.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

namespace {

using namespace mineq;

struct Tally {
  int total = 0;
  int valid = 0;
  int banyan = 0;
  int equivalent = 0;
};

void report_row(util::TablePrinter& table, const std::string& family,
                const Tally& tally) {
  table.add_row({family, std::to_string(tally.total),
                 std::to_string(tally.valid), std::to_string(tally.banyan),
                 std::to_string(tally.equivalent)});
}

/// Random stage that satisfies the buddy property by construction: pair
/// the cells, pair the targets, connect pairs as K_{2,2} blocks.
min::Connection random_buddy_connection(int width, util::SplitMix64& rng) {
  const std::uint32_t cells = std::uint32_t{1} << width;
  const perm::Permutation sources = perm::Permutation::random(cells, rng);
  const perm::Permutation targets = perm::Permutation::random(cells, rng);
  std::vector<std::uint32_t> f(cells);
  std::vector<std::uint32_t> g(cells);
  for (std::uint32_t p = 0; p < cells / 2; ++p) {
    const std::uint32_t x0 = sources(2 * p);
    const std::uint32_t x1 = sources(2 * p + 1);
    const std::uint32_t y0 = targets(2 * p);
    const std::uint32_t y1 = targets(2 * p + 1);
    f[x0] = y0;
    g[x0] = y1;
    f[x1] = y0;
    g[x1] = y1;
  }
  return min::Connection(std::move(f), std::move(g), width);
}

}  // namespace

int main(int argc, char** argv) {
  const int stages = argc > 1 ? std::atoi(argv[1]) : 5;
  const int samples = argc > 2 ? std::atoi(argv[2]) : 200;
  const std::uint64_t seed =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 1;
  if (stages < 2 || stages > 10 || samples < 1) {
    std::cerr << "usage: design_explorer [stages 2..10] [samples] [seed]\n";
    return 1;
  }
  util::SplitMix64 rng(seed);
  const int w = stages - 1;

  Tally arbitrary;
  Tally buddy;
  Tally independent;
  Tally pipid;

  for (int i = 0; i < samples; ++i) {
    {
      std::vector<min::Connection> conns;
      for (int s = 0; s < w; ++s) {
        conns.push_back(min::Connection::random_valid(w, rng));
      }
      const min::MIDigraph g(stages, std::move(conns));
      ++arbitrary.total;
      ++arbitrary.valid;
      if (min::is_banyan(g)) {
        ++arbitrary.banyan;
        if (min::is_baseline_equivalent(g)) ++arbitrary.equivalent;
      }
    }
    {
      std::vector<min::Connection> conns;
      for (int s = 0; s < w; ++s) {
        conns.push_back(random_buddy_connection(w, rng));
      }
      const min::MIDigraph g(stages, std::move(conns));
      ++buddy.total;
      ++buddy.valid;
      if (min::is_banyan(g)) {
        ++buddy.banyan;
        if (min::is_baseline_equivalent(g)) ++buddy.equivalent;
      }
    }
    {
      const min::MIDigraph g = min::random_independent_network(stages, rng);
      ++independent.total;
      ++independent.valid;
      if (min::is_banyan(g)) {
        ++independent.banyan;
        if (min::is_baseline_equivalent(g)) ++independent.equivalent;
      }
    }
    {
      const min::MIDigraph g = min::random_pipid_network(stages, rng);
      ++pipid.total;
      ++pipid.valid;
      if (min::is_banyan(g)) {
        ++pipid.banyan;
        if (min::is_baseline_equivalent(g)) ++pipid.equivalent;
      }
    }
  }

  std::cout << "Random " << stages << "-stage networks, " << samples
            << " samples per family (seed " << seed << ")\n\n";
  util::TablePrinter table(
      {"family", "samples", "valid", "banyan", "equivalent"});
  report_row(table, "arbitrary valid wiring", arbitrary);
  report_row(table, "buddy-constrained", buddy);
  report_row(table, "independent connections", independent);
  report_row(table, "PIPID (non-degenerate)", pipid);
  std::cout << table.str() << '\n';

  std::cout << "Theorem 3 prediction: within the independent and PIPID "
               "families, banyan == equivalent.\n";
  const bool theorem3_holds =
      independent.banyan == independent.equivalent &&
      pipid.banyan == pipid.equivalent;
  std::cout << "Observed: " << (theorem3_holds ? "CONFIRMED" : "VIOLATED")
            << "\n\n";

  std::cout << "Agrawal-buddy insufficiency ([10]): buddy-constrained "
               "networks that are Banyan but NOT equivalent: "
            << buddy.banyan - buddy.equivalent << " of " << buddy.banyan
            << " banyan samples\n";
  return theorem3_holds ? 0 : 1;
}
