/// \file classify_networks.cpp
/// \brief Survey the six classical networks: per-network property profile
/// and the full pairwise equivalence matrix — the computational form of
/// the paper's closing corollary.
///
/// Usage: classify_networks [stages]   (default 5)

#include <cstdlib>
#include <iostream>
#include <vector>

#include "min/affine_iso.hpp"
#include "min/banyan.hpp"
#include "min/buddy.hpp"
#include "min/equivalence.hpp"
#include "min/independence.hpp"
#include "min/networks.hpp"
#include "min/properties.hpp"
#include "perm/standard.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace mineq;

  const int stages = argc > 1 ? std::atoi(argv[1]) : 5;
  if (stages < 2 || stages > 14) {
    std::cerr << "stages must be in [2, 14]\n";
    return 1;
  }

  const auto& kinds = min::all_network_kinds();
  std::vector<min::MIDigraph> networks;
  for (min::NetworkKind kind : kinds) {
    networks.push_back(min::build_network(kind, stages));
  }

  // Per-network property profile.
  util::TablePrinter profile(
      {"network", "wiring", "banyan", "P(1,*)", "P(*,n)", "buddy",
       "independent", "equivalent"});
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    const min::MIDigraph& g = networks[i];
    const auto seq = min::network_pipid_sequence(kinds[i], stages);
    bool all_independent = true;
    for (const auto& conn : g.connections()) {
      all_independent = all_independent && min::is_independent(conn);
    }
    profile.add_row({min::network_name(kinds[i]),
                     perm::describe(seq.front()) + ",..," +
                         perm::describe(seq.back()),
                     min::is_banyan(g) ? "yes" : "no",
                     min::satisfies_p1_star(g) ? "yes" : "no",
                     min::satisfies_p_star_n(g) ? "yes" : "no",
                     min::has_buddy_property(g) ? "yes" : "no",
                     all_independent ? "yes" : "no",
                     min::is_baseline_equivalent(g) ? "yes" : "no"});
  }
  std::cout << "Classical networks at " << stages << " stages ("
            << networks.front().cells_per_stage() << " cells/stage)\n\n"
            << profile.str() << '\n';

  // Pairwise equivalence matrix with explicit isomorphism verification.
  util::SplitMix64 rng(7);
  std::vector<std::string> header = {"iso?"};
  for (min::NetworkKind kind : kinds) {
    header.push_back(min::network_name(kind).substr(0, 4));
  }
  util::TablePrinter matrix(header);
  for (std::size_t i = 0; i < networks.size(); ++i) {
    std::vector<std::string> row = {min::network_name(kinds[i])};
    for (std::size_t j = 0; j < networks.size(); ++j) {
      if (j < i) {
        row.push_back(".");
        continue;
      }
      const auto iso =
          min::synthesize_affine_isomorphism(networks[i], networks[j], rng);
      const bool ok =
          iso.has_value() &&
          min::verify_affine_isomorphism(networks[i], networks[j], *iso);
      row.push_back(ok ? "yes" : "NO");
    }
    matrix.add_row(std::move(row));
  }
  std::cout << "Pairwise explicit isomorphisms (affine family):\n\n"
            << matrix.str() << '\n';

  // Suffix component profile of the first network (Lemma 2 in action).
  util::TablePrinter suffix({"suffix start i", "components", "expected 2^i"});
  const auto counts = min::suffix_component_profile(networks.front());
  for (int i = 0; i < stages; ++i) {
    suffix.add_row({std::to_string(i),
                    std::to_string(counts[static_cast<std::size_t>(i)]),
                    std::to_string(std::size_t{1} << i)});
  }
  std::cout << "Suffix component counts for "
            << min::network_name(kinds.front()) << " (P(*,n)):\n\n"
            << suffix.str();
  return 0;
}
