/// \file saturation_sweep.cpp
/// \brief Reproduce the classic MIN saturation curve with the experiment
/// sweep subsystem: throughput and latency vs offered load, wormhole
/// against store-and-forward across lane counts.
///
/// Usage: saturation_sweep [stages] [csv-path]    (default 6 stages)
///
/// The table pivots one column per (mode, lanes) configuration; pass a
/// csv-path to also dump the full per-point sweep for plotting.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "exp/report.hpp"
#include "exp/sweep.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace mineq;

  const int stages = argc > 1 ? std::atoi(argv[1]) : 6;
  if (stages < 2 || stages > 12) {
    std::cerr << "stages must be in [2, 12]\n";
    return 1;
  }

  exp::SweepGrid grid;
  grid.networks = {min::NetworkKind::kOmega};
  grid.patterns = {sim::Pattern::kUniform};
  grid.modes = {sim::SwitchingMode::kStoreAndForward,
                sim::SwitchingMode::kWormhole};
  grid.lane_counts = {1, 2, 4};
  for (int step = 1; step <= 20; ++step) {
    grid.rates.push_back(0.05 * step);
  }
  grid.stages = stages;
  grid.base.packet_length = 4;
  grid.base.lane_depth = 4;
  grid.base.warmup_cycles = 200;
  grid.base.measure_cycles = 1500;
  grid.base.seed = 2024;

  std::cout << "Saturation sweep: Omega, " << stages << " stages, "
            << (std::uint64_t{1} << stages) << " terminals, 4-flit packets, "
            << grid.size() << " grid points\n\n";
  const exp::SweepResult sweep = exp::run_sweep(grid);

  // Pivot: one throughput/latency column pair per (mode, lanes) series
  // (store-and-forward runs once; the sweep collapses its lane axis).
  struct Series {
    sim::SwitchingMode mode;
    std::size_t lanes;
    std::string label;
  };
  std::vector<Series> series = {
      {sim::SwitchingMode::kStoreAndForward, 1, "saf"},
      {sim::SwitchingMode::kWormhole, 1, "wh/1"},
      {sim::SwitchingMode::kWormhole, 2, "wh/2"},
      {sim::SwitchingMode::kWormhole, 4, "wh/4"},
  };
  std::vector<std::string> headers = {"rate"};
  for (const Series& s : series) {
    headers.push_back(s.label + " thr");
    headers.push_back(s.label + " lat");
  }
  util::TablePrinter table(headers);
  for (const double rate : grid.rates) {
    std::vector<std::string> row = {util::fixed(rate, 2)};
    for (const Series& s : series) {
      for (const exp::SweepPoint& p : sweep.points) {
        if (p.mode == s.mode && p.lanes == s.lanes &&
            p.rate == rate) {
          row.push_back(util::fixed(p.result.throughput, 3));
          row.push_back(util::fixed(p.result.latency.mean(), 1));
          break;
        }
      }
    }
    table.add_row(row);
  }
  std::cout << table.str()
            << "\n(thr = delivered packets per terminal-cycle; lat = mean "
               "packet latency in cycles.\n Wormhole saturates by "
               "head-of-line blocking; extra lanes push the knee right.)\n";

  if (argc > 2) {
    const std::string path = argv[2];
    exp::write_text_file(path, exp::sweep_csv(sweep));
    std::cout << "\nFull sweep written to " << path << '\n';
  }
  return 0;
}
