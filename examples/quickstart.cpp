/// \file quickstart.cpp
/// \brief First contact with mineq: build two classical networks, decide
/// Baseline equivalence with the paper's easy characterization, and
/// extract an explicit isomorphism.
///
/// Usage: quickstart [stages]          (default 4)

#include <cstdlib>
#include <iostream>

#include "min/affine_iso.hpp"
#include "min/banyan.hpp"
#include "min/equivalence.hpp"
#include "min/networks.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace mineq;

  const int stages = argc > 1 ? std::atoi(argv[1]) : 4;
  if (stages < 2 || stages > 16) {
    std::cerr << "stages must be in [2, 16]\n";
    return 1;
  }

  // 1. Build two of the six classical networks from their PIPID wirings.
  const min::MIDigraph omega =
      min::build_network(min::NetworkKind::kOmega, stages);
  const min::MIDigraph baseline =
      min::build_network(min::NetworkKind::kBaseline, stages);

  std::cout << "Omega and Baseline networks with " << stages << " stages, "
            << omega.cells_per_stage() << " cells per stage\n\n";

  // 2. The paper's easy characterization: Banyan + P(1,*) + P(*,n).
  const min::EquivalenceReport report =
      min::check_baseline_equivalence(omega);
  std::cout << "Omega:  banyan=" << report.banyan
            << "  P(1,*)=" << report.p1_star
            << "  P(*,n)=" << report.p_star_n
            << "  => baseline-equivalent=" << report.equivalent << "\n";

  // 3. An explicit stage-wise affine isomorphism Omega -> Baseline.
  util::SplitMix64 rng(2024);
  const auto iso = min::synthesize_affine_isomorphism(omega, baseline, rng);
  if (!iso.has_value()) {
    std::cerr << "unexpected: no affine isomorphism found\n";
    return 1;
  }
  std::cout << "\nExplicit isomorphism found; verified="
            << min::verify_affine_isomorphism(omega, baseline, *iso)
            << "\n\nStage-0 cell mapping (Omega cell -> Baseline cell):\n";
  util::TablePrinter table({"omega cell", "baseline cell"});
  const auto mapping = iso->to_layered_mapping();
  for (std::uint32_t x = 0; x < omega.cells_per_stage() && x < 16; ++x) {
    table.add_row({util::bit_tuple(x, stages - 1),
                   util::bit_tuple(mapping[0][x], stages - 1)});
  }
  std::cout << table.str();
  return 0;
}
