/// \file verify_paper.cpp
/// \brief One-shot computational verification of every claim in the paper,
/// printed as a checklist. Exits non-zero if any check fails.
///
/// Usage: verify_paper [max_stages] [seed]   (default 6 1)

#include <cstdlib>
#include <iostream>
#include <string>

#include "gf2/subspace.hpp"
#include "min/affine_iso.hpp"
#include "min/banyan.hpp"
#include "min/baseline.hpp"
#include "min/equivalence.hpp"
#include "min/independence.hpp"
#include "min/networks.hpp"
#include "min/pipid.hpp"
#include "min/properties.hpp"
#include "perm/standard.hpp"
#include "util/rng.hpp"

namespace {

using namespace mineq;

int checks_run = 0;
int checks_failed = 0;

void check(const std::string& label, bool ok) {
  ++checks_run;
  if (!ok) ++checks_failed;
  std::cout << (ok ? "  [ok]   " : "  [FAIL] ") << label << '\n';
}

min::MIDigraph random_banyan_independent(int stages, util::SplitMix64& rng) {
  for (;;) {
    min::MIDigraph g = min::random_independent_network(stages, rng);
    if (min::is_banyan(g)) return g;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int max_stages = argc > 1 ? std::atoi(argv[1]) : 6;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 1;
  if (max_stages < 2 || max_stages > 12) {
    std::cerr << "max_stages must be in [2, 12]\n";
    return 1;
  }
  util::SplitMix64 rng(seed);

  std::cout << "== Independent Connections (Bermond & Fourneau) — "
               "computational verification ==\n\n";

  std::cout << "Definitions / Section 2:\n";
  for (int n = 2; n <= max_stages; ++n) {
    const min::MIDigraph base = min::baseline_network(n);
    check("baseline(" + std::to_string(n) + ") recursive == closed form",
          base == min::baseline_network_recursive(n));
    check("baseline(" + std::to_string(n) + ") banyan + P(1,*) + P(*,n)",
          min::is_banyan(base) && min::satisfies_p1_star(base) &&
              min::satisfies_p_star_n(base));
  }

  std::cout << "\nProposition 1 (reverse of independent is independent):\n";
  for (int w = 1; w <= max_stages; ++w) {
    bool ok = true;
    for (int trial = 0; trial < 20; ++trial) {
      const min::Connection conn =
          trial % 2 == 0 ? min::Connection::random_independent_case1(w, rng)
                         : min::Connection::random_independent_case2(w, rng);
      ok = ok && min::is_independent(conn.reverse_independent());
    }
    check("width " + std::to_string(w) + ", 20 random instances", ok);
  }

  std::cout << "\nLemma 2 (Banyan + independent => P(*,n)):\n";
  for (int n = 2; n <= max_stages; ++n) {
    bool ok = true;
    for (int trial = 0; trial < 5; ++trial) {
      const min::MIDigraph g = random_banyan_independent(n, rng);
      ok = ok && min::satisfies_p_star_n(g) &&
           min::satisfies_p_star_n(g.reverse());
    }
    check("n=" + std::to_string(n) + ", 5 random instances (G and G^-1)",
          ok);
  }

  std::cout << "\nTheorem 3 (Banyan + independent => iso to Baseline):\n";
  for (int n = 2; n <= max_stages; ++n) {
    bool ok = true;
    for (int trial = 0; trial < 5; ++trial) {
      ok = ok &&
           min::is_baseline_equivalent(random_banyan_independent(n, rng));
    }
    check("n=" + std::to_string(n) + ", 5 random instances", ok);
  }

  std::cout << "\nSection 4 (PIPID):\n";
  {
    bool formula_ok = true;
    bool independent_ok = true;
    for (int n = 2; n <= max_stages; ++n) {
      for (int trial = 0; trial < 10; ++trial) {
        const perm::IndexPermutation ip =
            perm::IndexPermutation::random(n, rng);
        formula_ok = formula_ok && (min::connection_from_pipid(ip) ==
                                    min::connection_from_pipid_formula(ip));
        independent_ok =
            independent_ok &&
            min::is_independent(min::connection_from_pipid_formula(ip));
      }
    }
    check("closed bit formula == link-permutation derivation", formula_ok);
    check("every PIPID connection is independent", independent_ok);
  }
  {
    // Degenerate case (Fig. 5): theta^{-1}(0) = 0 gives double links.
    const perm::IndexPermutation degen(
        perm::Permutation::from_cycles(4, {{1, 2}}));
    const min::Connection conn = min::connection_from_pipid_formula(degen);
    check("theta^{-1}(0)=0 stage has double links (Fig. 5)",
          conn.has_parallel_arcs());
    std::vector<perm::IndexPermutation> seq = {perm::perfect_shuffle(4),
                                               degen,
                                               perm::perfect_shuffle(4)};
    check("network with a degenerate stage is not Banyan",
          !min::is_banyan(min::network_from_pipids(seq)));
  }

  std::cout << "\nClosing corollary (six classical networks equivalent):\n";
  for (int n = 2; n <= max_stages; ++n) {
    bool equivalent = true;
    for (min::NetworkKind kind : min::all_network_kinds()) {
      equivalent =
          equivalent && min::is_baseline_equivalent(min::build_network(kind, n));
    }
    check("n=" + std::to_string(n) + ": all six baseline-equivalent",
          equivalent);
  }
  {
    const int n = std::min(max_stages, 5);
    bool iso_ok = true;
    for (min::NetworkKind a : min::all_network_kinds()) {
      for (min::NetworkKind b : min::all_network_kinds()) {
        const min::MIDigraph ga = min::build_network(a, n);
        const min::MIDigraph gb = min::build_network(b, n);
        const auto iso = min::synthesize_affine_isomorphism(ga, gb, rng);
        iso_ok = iso_ok && iso.has_value() &&
                 min::verify_affine_isomorphism(ga, gb, *iso);
      }
    }
    check("n=" + std::to_string(n) +
              ": explicit verified isomorphisms for all 36 ordered pairs",
          iso_ok);
  }

  std::cout << "\n== " << checks_run - checks_failed << "/" << checks_run
            << " checks passed ==\n";
  return checks_failed == 0 ? 0 : 1;
}
