/// \file routing_demo.cpp
/// \brief Bit-directed routing and packet simulation on the classical
/// networks — the application the paper's conclusion motivates ("these
/// permutations are associated to a very simple bit directed routing").
///
/// Usage: routing_demo [stages] [rate_percent]   (default 4 60)

#include <cstdlib>
#include <iostream>

#include "min/networks.hpp"
#include "min/routing.hpp"
#include "sim/engine.hpp"
#include "sim/perm_routing.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace mineq;

  const int stages = argc > 1 ? std::atoi(argv[1]) : 4;
  const int rate_percent = argc > 2 ? std::atoi(argv[2]) : 60;
  if (stages < 2 || stages > 10 || rate_percent < 1 || rate_percent > 100) {
    std::cerr << "usage: routing_demo [stages 2..10] [rate 1..100]\n";
    return 1;
  }

  // 1. Destination-bit schedules for the six networks.
  std::cout << "Destination-bit routing schedules (" << stages
            << " stages):\n\n";
  util::TablePrinter schedules({"network", "per-stage destination bit"});
  for (min::NetworkKind kind : min::all_network_kinds()) {
    const min::MIDigraph g = min::build_network(kind, stages);
    const auto schedule = min::find_bit_schedule(g);
    std::string bits;
    if (schedule.has_value()) {
      for (std::size_t s = 0; s < schedule->bit.size(); ++s) {
        if (s != 0) bits += ' ';
        bits += 'd' + std::to_string(schedule->bit[s]);
        if (schedule->invert[s] != 0) bits += '~';
      }
    } else {
      bits = "(none)";
    }
    schedules.add_row({min::network_name(kind), bits});
  }
  std::cout << schedules.str() << '\n';

  // 2. A worked route on the Omega network.
  const min::MIDigraph omega =
      min::build_network(min::NetworkKind::kOmega, stages);
  const std::uint32_t src = 0;
  const std::uint32_t dst = omega.cells_per_stage() - 1;
  const auto route = min::find_route(omega, src, dst);
  if (route.has_value()) {
    std::cout << "Unique Omega route " << util::bit_tuple(src, stages - 1)
              << " -> " << util::bit_tuple(dst, stages - 1) << ": ";
    for (std::size_t s = 0; s < route->cells.size(); ++s) {
      if (s != 0) {
        std::cout << " -" << (route->ports[s - 1] == 0 ? 'f' : 'g') << "-> ";
      }
      std::cout << util::bit_tuple(route->cells[s], stages - 1);
    }
    std::cout << "\n\n";
  }

  // 3. Packet simulation across traffic patterns.
  sim::SimConfig config;
  config.injection_rate = rate_percent / 100.0;
  config.warmup_cycles = 300;
  config.measure_cycles = 3000;
  config.seed = 99;

  std::cout << "Packet simulation at " << rate_percent
            << "% injection (input-buffered 2x2 switches, "
            << config.measure_cycles << " measured cycles):\n\n";
  util::TablePrinter results(
      {"network", "pattern", "throughput", "avg latency", "p99 latency",
       "p-accept"});
  const sim::Pattern patterns[] = {sim::Pattern::kUniform,
                                   sim::Pattern::kShuffle,
                                   sim::Pattern::kBitReversal,
                                   sim::Pattern::kComplement};
  for (min::NetworkKind kind :
       {min::NetworkKind::kOmega, min::NetworkKind::kBaseline,
        min::NetworkKind::kIndirectBinaryCube}) {
    const sim::Engine engine(min::build_network(kind, stages));
    for (sim::Pattern pattern : patterns) {
      const sim::SimResult r = engine.run(pattern, config);
      results.add_row({min::network_name(kind), sim::pattern_name(pattern),
                       util::fixed(r.throughput, 3),
                       util::fixed(r.latency.mean(), 2),
                       util::fixed(r.latency_histogram.quantile(0.99), 0),
                       util::fixed(r.acceptance, 3)});
    }
  }
  std::cout << results.str() << '\n';

  // 4. Which of the deterministic patterns are admissible in one pass?
  std::cout << "One-pass (circuit-switched) admissibility:\n\n";
  util::TablePrinter admissible(
      {"network", "shuffle", "bitrev", "complement"});
  for (min::NetworkKind kind : min::all_network_kinds()) {
    const min::MIDigraph g = min::build_network(kind, stages);
    auto check = [&](sim::Pattern p) {
      return sim::is_admissible(g, sim::pattern_permutation(p, stages))
                 ? std::string("pass")
                 : std::string("block");
    };
    admissible.add_row({min::network_name(kind),
                        check(sim::Pattern::kShuffle),
                        check(sim::Pattern::kBitReversal),
                        check(sim::Pattern::kComplement)});
  }
  std::cout << admissible.str();
  return 0;
}
