#include "perm/standard.hpp"

#include <stdexcept>
#include <vector>

#include "util/bitops.hpp"

namespace mineq::perm {

namespace {

void check_width(int n) {
  if (n < 1 || n > util::kMaxBits) {
    throw std::invalid_argument("standard permutation: width out of range");
  }
}

}  // namespace

IndexPermutation perfect_shuffle(int n) {
  check_width(n);
  // Output bit i takes input bit i-1 (mod n): left rotation of the digits.
  std::vector<std::uint32_t> theta(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    theta[static_cast<std::size_t>(i)] =
        static_cast<std::uint32_t>((i + n - 1) % n);
  }
  return IndexPermutation(Permutation(std::move(theta)));
}

IndexPermutation inverse_shuffle(int n) { return perfect_shuffle(n).inverse(); }

IndexPermutation subshuffle(int n, int k) {
  check_width(n);
  if (k < 1 || k > n) {
    throw std::invalid_argument("subshuffle: k out of range");
  }
  std::vector<std::uint32_t> theta(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    theta[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(
        i < k ? (i + k - 1) % k : i);
  }
  return IndexPermutation(Permutation(std::move(theta)));
}

IndexPermutation inverse_subshuffle(int n, int k) {
  return subshuffle(n, k).inverse();
}

IndexPermutation butterfly(int n, int k) {
  check_width(n);
  if (k < 0 || k >= n) {
    throw std::invalid_argument("butterfly: k out of range");
  }
  if (k == 0) return IndexPermutation::identity(n);
  return IndexPermutation(Permutation::from_cycles(
      static_cast<std::size_t>(n), {{0, static_cast<std::uint32_t>(k)}}));
}

IndexPermutation bit_reversal(int n) {
  check_width(n);
  std::vector<std::uint32_t> theta(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    theta[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(n - 1 - i);
  }
  return IndexPermutation(Permutation(std::move(theta)));
}

Permutation exchange(int n) { return xor_translation(n, 1); }

Permutation xor_translation(int n, std::uint64_t t) {
  check_width(n);
  if ((t >> n) != 0) {
    throw std::invalid_argument("xor_translation: t wider than 2^n domain");
  }
  const std::size_t size = std::size_t{1} << n;
  std::vector<std::uint32_t> image(size);
  for (std::size_t y = 0; y < size; ++y) {
    image[y] = static_cast<std::uint32_t>(y ^ t);
  }
  return Permutation(std::move(image));
}

std::string describe(const IndexPermutation& ip) {
  const int n = ip.width();
  if (n == 0) return "identity";
  if (ip == IndexPermutation::identity(n)) return "identity";
  if (ip == perfect_shuffle(n)) return "sigma";
  if (ip == inverse_shuffle(n)) return "sigma^-1";
  if (ip == bit_reversal(n)) return "rho";
  for (int k = 2; k < n; ++k) {
    if (ip == subshuffle(n, k)) return "sigma_" + std::to_string(k);
    if (ip == inverse_subshuffle(n, k)) {
      return "sigma_" + std::to_string(k) + "^-1";
    }
  }
  for (int k = 1; k < n; ++k) {
    if (ip == butterfly(n, k)) return "beta_" + std::to_string(k);
  }
  return ip.str();
}

}  // namespace mineq::perm
