/// \file standard.hpp
/// \brief The standard interconnection permutations of the MIN literature.
///
/// These are the permutations used to define the six "classical" networks
/// studied by Wu & Feng and revisited in Section 4 of the paper: perfect
/// shuffle sigma, k-sub-shuffle sigma_k, k-butterfly beta_k, bit reversal
/// rho (all PIPID), plus the exchange permutation (an xor-translation,
/// deliberately *not* a PIPID — useful as a negative test case).
///
/// Conventions (following Hockney & Jesshope, and Parker's notes):
///   - sigma on n bits is the circular LEFT shift of the binary
///     representation: sigma(x_{n-1},...,x_0) = (x_{n-2},...,x_0,x_{n-1}).
///   - sigma_k shuffles only the k low-order bits and fixes the rest;
///     sigma_n == sigma.
///   - beta_k exchanges bit k and bit 0; beta_0 is the identity.
///   - rho reverses all n bits.

#pragma once

#include <cstdint>
#include <string>

#include "perm/index_perm.hpp"
#include "perm/permutation.hpp"

namespace mineq::perm {

/// Perfect shuffle sigma on n bits (circular left shift of the digits).
[[nodiscard]] IndexPermutation perfect_shuffle(int n);

/// Inverse perfect shuffle sigma^{-1} (circular right shift of the digits).
[[nodiscard]] IndexPermutation inverse_shuffle(int n);

/// k-sub-shuffle sigma_k: perfect shuffle of the k low-order bits, upper
/// n-k bits fixed. Requires 1 <= k <= n; sigma_1 is the identity.
[[nodiscard]] IndexPermutation subshuffle(int n, int k);

/// Inverse k-sub-shuffle sigma_k^{-1}.
[[nodiscard]] IndexPermutation inverse_subshuffle(int n, int k);

/// k-butterfly beta_k: exchange bit k with bit 0. Requires 0 <= k < n;
/// beta_0 is the identity.
[[nodiscard]] IndexPermutation butterfly(int n, int k);

/// Bit reversal rho on n bits.
[[nodiscard]] IndexPermutation bit_reversal(int n);

/// Exchange permutation on 2^n symbols: y -> y xor 1. This is an affine
/// translation, not a PIPID (IndexPermutation::recognize rejects it for
/// n >= 2); provided as the canonical non-PIPID wiring for tests and
/// counterexample constructions.
[[nodiscard]] Permutation exchange(int n);

/// XOR-translation y -> y xor t on 2^n symbols (generalizes exchange).
[[nodiscard]] Permutation xor_translation(int n, std::uint64_t t);

/// Human-readable identification of an index permutation: returns
/// "sigma", "sigma^-1", "sigma_k", "sigma_k^-1", "beta_k", "rho",
/// "identity", or cycle notation when it is none of the named families.
[[nodiscard]] std::string describe(const IndexPermutation& ip);

}  // namespace mineq::perm
