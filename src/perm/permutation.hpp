/// \file permutation.hpp
/// \brief Permutations of {0, ..., M-1}: the inter-stage wirings of a MIN.
///
/// Multistage interconnection networks are classically specified by the
/// permutation each inter-stage wiring realizes on link labels (Section 4
/// of the paper). This class is the general representation; PIPID
/// permutations (perm/index_perm.hpp) are the special subclass the paper
/// characterizes.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace mineq::perm {

/// A bijection of {0, ..., size-1} stored as an image table.
class Permutation {
 public:
  /// The empty permutation (size 0).
  Permutation() = default;

  /// Identity on {0, ..., size-1}.
  explicit Permutation(std::size_t size);

  /// From an image table: element i maps to image[i].
  /// \throws std::invalid_argument if \p image is not a bijection.
  explicit Permutation(std::vector<std::uint32_t> image);

  /// Uniformly random permutation (Fisher-Yates).
  [[nodiscard]] static Permutation random(std::size_t size,
                                          util::SplitMix64& rng);

  /// From disjoint cycles over {0,...,size-1}; elements not mentioned are
  /// fixed. E.g. from_cycles(8, {{0,1,2}}) maps 0->1->2->0.
  [[nodiscard]] static Permutation from_cycles(
      std::size_t size, const std::vector<std::vector<std::uint32_t>>& cycles);

  [[nodiscard]] std::size_t size() const noexcept { return image_.size(); }

  /// Image of \p x. \throws std::invalid_argument if out of range.
  [[nodiscard]] std::uint32_t apply(std::uint32_t x) const;

  /// Unchecked image access for hot loops.
  [[nodiscard]] std::uint32_t operator()(std::uint32_t x) const noexcept {
    return image_[x];
  }

  [[nodiscard]] const std::vector<std::uint32_t>& image() const noexcept {
    return image_;
  }

  /// Composition: (this->compose(other))(x) == this(other(x)).
  [[nodiscard]] Permutation compose(const Permutation& other) const;

  [[nodiscard]] Permutation inverse() const;

  [[nodiscard]] bool is_identity() const;

  /// Disjoint cycle decomposition; fixed points are included as 1-cycles.
  /// Cycles are rotated to start at their minimum element and sorted by it.
  [[nodiscard]] std::vector<std::vector<std::uint32_t>> cycles() const;

  /// Multiplicative order (lcm of cycle lengths).
  [[nodiscard]] std::uint64_t order() const;

  /// Parity: true if the permutation is even.
  [[nodiscard]] bool is_even() const;

  /// Number of fixed points.
  [[nodiscard]] std::size_t fixed_points() const;

  friend bool operator==(const Permutation&, const Permutation&) = default;

  /// Cycle notation, e.g. "(0 1 2)(3)(4 5)".
  [[nodiscard]] std::string str() const;

 private:
  std::vector<std::uint32_t> image_;
};

}  // namespace mineq::perm
