#include "perm/permutation.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace mineq::perm {

namespace {

std::uint64_t lcm_u64(std::uint64_t a, std::uint64_t b) {
  return a / std::gcd(a, b) * b;
}

}  // namespace

Permutation::Permutation(std::size_t size) : image_(size) {
  std::iota(image_.begin(), image_.end(), 0U);
}

Permutation::Permutation(std::vector<std::uint32_t> image)
    : image_(std::move(image)) {
  std::vector<bool> seen(image_.size(), false);
  for (std::uint32_t v : image_) {
    if (v >= image_.size() || seen[v]) {
      throw std::invalid_argument("Permutation: image is not a bijection");
    }
    seen[v] = true;
  }
}

Permutation Permutation::random(std::size_t size, util::SplitMix64& rng) {
  Permutation p(size);
  for (std::size_t i = size; i > 1; --i) {
    const std::size_t j = rng.below(i);
    std::swap(p.image_[i - 1], p.image_[j]);
  }
  return p;
}

Permutation Permutation::from_cycles(
    std::size_t size, const std::vector<std::vector<std::uint32_t>>& cycles) {
  Permutation p(size);
  std::vector<bool> used(size, false);
  for (const auto& cycle : cycles) {
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      const std::uint32_t from = cycle[i];
      const std::uint32_t to = cycle[(i + 1) % cycle.size()];
      if (from >= size || to >= size) {
        throw std::invalid_argument("from_cycles: element out of range");
      }
      if (used[from]) {
        throw std::invalid_argument("from_cycles: cycles not disjoint");
      }
      used[from] = true;
      p.image_[from] = to;
    }
  }
  return p;
}

std::uint32_t Permutation::apply(std::uint32_t x) const {
  if (x >= image_.size()) {
    throw std::invalid_argument("Permutation::apply: out of range");
  }
  return image_[x];
}

Permutation Permutation::compose(const Permutation& other) const {
  if (size() != other.size()) {
    throw std::invalid_argument("Permutation::compose: size mismatch");
  }
  std::vector<std::uint32_t> result(size());
  for (std::size_t x = 0; x < size(); ++x) {
    result[x] = image_[other.image_[x]];
  }
  Permutation p;
  p.image_ = std::move(result);
  return p;
}

Permutation Permutation::inverse() const {
  std::vector<std::uint32_t> inv(size());
  for (std::size_t x = 0; x < size(); ++x) {
    inv[image_[x]] = static_cast<std::uint32_t>(x);
  }
  Permutation p;
  p.image_ = std::move(inv);
  return p;
}

bool Permutation::is_identity() const {
  for (std::size_t x = 0; x < size(); ++x) {
    if (image_[x] != x) return false;
  }
  return true;
}

std::vector<std::vector<std::uint32_t>> Permutation::cycles() const {
  std::vector<std::vector<std::uint32_t>> out;
  std::vector<bool> seen(size(), false);
  for (std::size_t start = 0; start < size(); ++start) {
    if (seen[start]) continue;
    std::vector<std::uint32_t> cycle;
    std::uint32_t x = static_cast<std::uint32_t>(start);
    do {
      cycle.push_back(x);
      seen[x] = true;
      x = image_[x];
    } while (x != start);
    out.push_back(std::move(cycle));
  }
  return out;
}

std::uint64_t Permutation::order() const {
  std::uint64_t result = 1;
  for (const auto& cycle : cycles()) {
    result = lcm_u64(result, cycle.size());
  }
  return result;
}

bool Permutation::is_even() const {
  std::size_t transpositions = 0;
  for (const auto& cycle : cycles()) {
    transpositions += cycle.size() - 1;
  }
  return transpositions % 2 == 0;
}

std::size_t Permutation::fixed_points() const {
  std::size_t count = 0;
  for (std::size_t x = 0; x < size(); ++x) {
    if (image_[x] == x) ++count;
  }
  return count;
}

std::string Permutation::str() const {
  std::string out;
  for (const auto& cycle : cycles()) {
    out += '(';
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      if (i != 0) out += ' ';
      out += std::to_string(cycle[i]);
    }
    out += ')';
  }
  return out;
}

}  // namespace mineq::perm
