/// \file index_perm.hpp
/// \brief PIPID permutations: Permutations Induced by a Permutation on the
/// Index Digits (Section 4 of the paper).
///
/// A PIPID on 2^n symbols is defined by a permutation theta of the n bit
/// positions of the symbol's binary representation:
///
///     Lambda(x_{n-1}, ..., x_1, x_0) = (x_{theta(n-1)}, ..., x_{theta(0)})
///
/// i.e. output bit i equals input bit theta(i). Perfect shuffle, k-sub-
/// shuffle, k-butterfly and bit reversal are all PIPID; the paper's main
/// corollary is that every Banyan MIN wired with PIPID permutations is
/// topologically equivalent to the Baseline network.
///
/// Composition note: induced permutations compose contravariantly,
///     Lambda_a ∘ Lambda_b == Lambda_{b ∘ a},
/// because output bit i of Lambda_a(Lambda_b(y)) is bit b(a(i)) of y.
/// IndexPermutation::then() takes care of the reversal.

#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "gf2/matrix.hpp"
#include "perm/permutation.hpp"

namespace mineq::perm {

/// A permutation theta of bit positions {0, ..., n-1}, together with the
/// PIPID permutation Lambda_theta it induces on {0, ..., 2^n - 1}.
class IndexPermutation {
 public:
  /// Identity on 0 bit positions.
  IndexPermutation() = default;

  /// Wrap a position permutation; \p theta.size() is the word width n.
  /// \throws std::invalid_argument if n exceeds util::kMaxBits.
  explicit IndexPermutation(Permutation theta);

  /// Identity on n bit positions.
  [[nodiscard]] static IndexPermutation identity(int n);

  /// Uniformly random theta on n positions.
  [[nodiscard]] static IndexPermutation random(int n, util::SplitMix64& rng);

  /// Number of bit positions (the symbol width n).
  [[nodiscard]] int width() const noexcept {
    return static_cast<int>(theta_.size());
  }

  /// The underlying position permutation theta.
  [[nodiscard]] const Permutation& theta() const noexcept { return theta_; }

  /// theta(i): which input bit feeds output bit i.
  [[nodiscard]] int theta_of(int i) const;

  /// theta^{-1}(j): which output bit receives input bit j. The paper's
  /// k = theta^{-1}(0) decides whether a stage built from this PIPID is
  /// degenerate (k == 0 means double links, Fig. 5).
  [[nodiscard]] int theta_inv_of(int j) const;

  /// Apply Lambda_theta to one value (O(n), no table).
  [[nodiscard]] std::uint64_t apply(std::uint64_t value) const;

  /// Materialize Lambda_theta as a Permutation on 2^n symbols.
  [[nodiscard]] Permutation induced() const;

  /// Lambda_theta as a GF(2) linear map (PIPIDs are exactly the
  /// bit-permutation matrices).
  [[nodiscard]] gf2::Matrix matrix() const;

  /// The index permutation whose induced map is Lambda_this ∘ Lambda_other,
  /// i.e. apply \p other's PIPID first, then this one's.
  [[nodiscard]] IndexPermutation after(const IndexPermutation& other) const;

  [[nodiscard]] IndexPermutation inverse() const;

  friend bool operator==(const IndexPermutation&,
                         const IndexPermutation&) = default;

  /// e.g. "theta=(0 2 1)" (cycle notation on bit positions).
  [[nodiscard]] std::string str() const;

  /// Decide whether \p p is a PIPID; if so return the inducing
  /// IndexPermutation. \p p.size() must be a power of two.
  /// Runs in O(n * 2^n).
  [[nodiscard]] static std::optional<IndexPermutation> recognize(
      const Permutation& p);

 private:
  Permutation theta_;
};

}  // namespace mineq::perm
