#include "perm/index_perm.hpp"

#include <stdexcept>
#include <vector>

#include "util/bitops.hpp"

namespace mineq::perm {

IndexPermutation::IndexPermutation(Permutation theta)
    : theta_(std::move(theta)) {
  if (theta_.size() > static_cast<std::size_t>(util::kMaxBits)) {
    throw std::invalid_argument("IndexPermutation: width out of range");
  }
}

IndexPermutation IndexPermutation::identity(int n) {
  if (n < 0) throw std::invalid_argument("IndexPermutation: negative width");
  return IndexPermutation(Permutation(static_cast<std::size_t>(n)));
}

IndexPermutation IndexPermutation::random(int n, util::SplitMix64& rng) {
  if (n < 0) throw std::invalid_argument("IndexPermutation: negative width");
  return IndexPermutation(
      Permutation::random(static_cast<std::size_t>(n), rng));
}

int IndexPermutation::theta_of(int i) const {
  return static_cast<int>(theta_.apply(static_cast<std::uint32_t>(i)));
}

int IndexPermutation::theta_inv_of(int j) const {
  // Linear scan is fine at n <= kMaxBits; callers needing bulk inversion
  // compose with inverse() instead.
  for (int i = 0; i < width(); ++i) {
    if (theta_of(i) == j) return i;
  }
  throw std::invalid_argument("IndexPermutation::theta_inv_of: out of range");
}

std::uint64_t IndexPermutation::apply(std::uint64_t value) const {
  const int n = width();
  if (n < 64 && (value >> n) != 0) {
    throw std::invalid_argument("IndexPermutation::apply: value too wide");
  }
  std::uint64_t out = 0;
  for (int i = 0; i < n; ++i) {
    out |= static_cast<std::uint64_t>(
               util::get_bit(value, theta_of(i)))
           << i;
  }
  return out;
}

Permutation IndexPermutation::induced() const {
  const std::size_t size = std::size_t{1} << width();
  std::vector<std::uint32_t> image(size);
  for (std::size_t y = 0; y < size; ++y) {
    image[y] = static_cast<std::uint32_t>(apply(y));
  }
  return Permutation(std::move(image));
}

gf2::Matrix IndexPermutation::matrix() const {
  std::vector<int> rows(static_cast<std::size_t>(width()));
  for (int i = 0; i < width(); ++i) {
    rows[static_cast<std::size_t>(i)] = theta_of(i);
  }
  return gf2::Matrix::bit_selector(rows, width());
}

IndexPermutation IndexPermutation::after(const IndexPermutation& other) const {
  if (width() != other.width()) {
    throw std::invalid_argument("IndexPermutation::after: width mismatch");
  }
  // Lambda_a(Lambda_b(y)) bit i = Lambda_b(y) bit a(i) = y bit b(a(i)),
  // so the combined index permutation is b ∘ a.
  return IndexPermutation(other.theta_.compose(theta_));
}

IndexPermutation IndexPermutation::inverse() const {
  return IndexPermutation(theta_.inverse());
}

std::string IndexPermutation::str() const {
  return "theta=" + theta_.str();
}

std::optional<IndexPermutation> IndexPermutation::recognize(
    const Permutation& p) {
  if (p.size() == 0 || !util::is_pow2(p.size())) return std::nullopt;
  const int n = util::ilog2(p.size());
  if (n > util::kMaxBits) return std::nullopt;

  // A PIPID is linear, so it must fix 0 and send unit vectors to unit
  // vectors: Lambda(e_j) = e_{theta^{-1}(j)}.
  if (p(0) != 0) return std::nullopt;
  std::vector<std::uint32_t> theta_inv(static_cast<std::size_t>(n));
  std::vector<bool> hit(static_cast<std::size_t>(n), false);
  for (int j = 0; j < n; ++j) {
    const std::uint32_t img = p(std::uint32_t{1} << j);
    if (!util::is_pow2(img)) return std::nullopt;
    const int i = util::ilog2(img);
    if (hit[static_cast<std::size_t>(i)]) return std::nullopt;
    hit[static_cast<std::size_t>(i)] = true;
    theta_inv[static_cast<std::size_t>(j)] = static_cast<std::uint32_t>(i);
  }
  IndexPermutation candidate(Permutation(std::move(theta_inv)).inverse());

  // Unit images determine a linear map; verify p agrees everywhere (p might
  // agree on units but be non-linear elsewhere).
  for (std::uint32_t y = 0; y < p.size(); ++y) {
    if (candidate.apply(y) != p(y)) return std::nullopt;
  }
  return candidate;
}

}  // namespace mineq::perm
