/// \file networks.hpp
/// \brief The six "classical" networks of Wu & Feng, built from PIPIDs.
///
/// The paper's closing corollary: "As Omega, Baseline, Reverse Baseline,
/// Flip, Indirect Binary Cube and Modified Data Manipulator networks are
/// designed using PIPID permutations, they are all equivalent."
///
/// Inter-stage wiring sequences used here (connection index s = 0..n-2,
/// PIPIDs on n bits; see perm/standard.hpp for the permutation zoo):
///
///   Omega                      sigma, sigma, ..., sigma
///   Flip                       sigma^-1, ..., sigma^-1
///   Indirect Binary Cube       beta_1, beta_2, ..., beta_{n-1}
///   Modified Data Manipulator  beta_{n-1}, ..., beta_2, beta_1
///   Baseline                   sigma_n^-1, sigma_{n-1}^-1, ..., sigma_2^-1
///   Reverse Baseline           sigma_2, sigma_3, ..., sigma_n
///
/// The Baseline PIPID sequence reproduces min/baseline.hpp's recursive
/// construction *exactly* (same tables, not merely isomorphic), which the
/// tests assert; every other pair is proved topologically equivalent via
/// Theorem 3 and cross-checked against explicit isomorphisms.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "min/mi_digraph.hpp"
#include "perm/index_perm.hpp"

namespace mineq::min {

/// The six classical network topologies.
enum class NetworkKind : std::uint8_t {
  kOmega,
  kFlip,
  kIndirectBinaryCube,
  kModifiedDataManipulator,
  kBaseline,
  kReverseBaseline,
};

/// All six kinds, in a stable order.
[[nodiscard]] const std::vector<NetworkKind>& all_network_kinds();

/// Human-readable name ("Omega", "Flip", ...).
[[nodiscard]] std::string network_name(NetworkKind kind);

/// Short lowercase token for CLIs and CSV columns ("omega", "flip",
/// "cube", "mdm", "baseline", "revbaseline").
[[nodiscard]] std::string network_token(NetworkKind kind);

/// Inverse of network_token; also accepts the network_name spelling.
/// \throws std::invalid_argument on an unknown name.
[[nodiscard]] NetworkKind parse_network_kind(std::string_view name);

/// The PIPID wiring sequence defining \p kind at \p stages stages.
[[nodiscard]] std::vector<perm::IndexPermutation> network_pipid_sequence(
    NetworkKind kind, int stages);

/// Build the MI-digraph of \p kind with \p stages stages.
[[nodiscard]] MIDigraph build_network(NetworkKind kind, int stages);

/// A uniformly random PIPID-wired network: every stage gets an
/// independent random theta, resampled until non-degenerate
/// (theta^{-1}(0) != 0) so the result has a chance to be Banyan.
/// Note: non-degenerate stages do NOT guarantee the Banyan property;
/// callers that need Banyan instances should filter with is_banyan.
[[nodiscard]] MIDigraph random_pipid_network(int stages,
                                             util::SplitMix64& rng);

/// A random network whose stages are random *independent connections*
/// (mixing case 1 and case 2 as sampled), filtered to valid stages.
/// Again not necessarily Banyan.
[[nodiscard]] MIDigraph random_independent_network(int stages,
                                                   util::SplitMix64& rng);

}  // namespace mineq::min
