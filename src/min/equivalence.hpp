/// \file equivalence.hpp
/// \brief The paper's "easy characterization": deciding Baseline
/// equivalence in near-linear time.
///
/// Theorem (Section 2, from [12]): all n-stage MI-digraphs satisfying the
/// Banyan property, P(*, n) and P(1, *) are isomorphic — and the Baseline
/// network satisfies all three, so satisfying them is equivalent to being
/// topologically equivalent to Baseline.
///
/// Theorem 3 (main): a Banyan MI-digraph built with independent
/// connections is isomorphic to the Baseline MI-digraph. The decision
/// procedure here also exposes the Theorem-3 fast path: if every stage is
/// an independent connection and the digraph is Banyan, equivalence holds
/// with no component counting at all.

#pragma once

#include <cstdint>
#include <string>

#include "fault/fault_mask.hpp"
#include "min/flat_wiring.hpp"
#include "min/mi_digraph.hpp"

namespace mineq::min {

/// Full decision transcript for one network.
struct EquivalenceReport {
  bool valid_degrees = false;  ///< every stage has all in-degrees == 2
  bool banyan = false;         ///< unique first-to-last paths
  bool p1_star = false;        ///< P(1, j) for every j
  bool p_star_n = false;       ///< P(i, n) for every i
  bool equivalent = false;     ///< all of the above
  /// First failed check, or "" when equivalent ("degrees", "banyan",
  /// "P(1,*)", "P(*,n)").
  std::string failure;
};

/// Run the full characterization check (degree validity, Banyan, both
/// component profiles). O(stages * cells^2) dominated by the Banyan
/// check. Fail-fast: degree and Banyan failures are detected straight
/// off the image tables; a Banyan survivor is flattened to a FlatWiring
/// once and the component profiles run over the packed records.
[[nodiscard]] EquivalenceReport check_baseline_equivalence(const MIDigraph& g);

/// Same checks over a prebuilt wiring IR — the path for callers that
/// already hold the FlatWiring (sweeps, repeated classification): no
/// flattening, the bitset-doubling Banyan check and the DSU component
/// profiles all consume the packed records. A constructible FlatWiring
/// is valid by definition, so valid_degrees is always true here.
[[nodiscard]] EquivalenceReport check_baseline_equivalence(
    const FlatWiring& w);

[[nodiscard]] bool is_baseline_equivalent(const FlatWiring& w);

/// Short-circuit decision.
[[nodiscard]] bool is_baseline_equivalent(const MIDigraph& g);

/// Theorem-3 fast path: every connection independent + Banyan. Sound
/// (implies is_baseline_equivalent) but not complete: a Banyan digraph can
/// be baseline-equivalent without any stage being independent (relabel a
/// baseline with arbitrary per-stage permutations). Exposed separately so
/// benchmarks can compare the costs.
[[nodiscard]] bool is_baseline_equivalent_via_independence(const MIDigraph& g);

/// Classification of a fault-degraded fabric: the survivor topology of
/// (wiring minus masked arcs), decided over the same packed IR the
/// simulators route (no explicit sub-digraph is rebuilt).
struct FaultedClassification {
  std::size_t total_arcs = 0;
  std::size_t surviving_arcs = 0;
  /// Every first-stage cell still reaches every last-stage cell through
  /// surviving arcs — the fault literature's "full access" property.
  bool full_access = false;
  /// The survivor has exactly one surviving path per (source, sink)
  /// pair: the Banyan property of the degraded fabric (implies
  /// full_access).
  bool banyan = false;
  /// The fabric is still an intact baseline-equivalent MI-digraph: no
  /// arc is masked (removing any arc from a Banyan fabric breaks full
  /// access, so degrees must be whole) and the paper's characterization
  /// holds on the wiring.
  bool baseline_equivalent = false;
};

/// Classify the faulted fabric (w, mask). Runs the per-source saturating
/// path-count DP over surviving arcs — the doubling criterion needs
/// out-degree exactly 2, so under faults path counts are the criterion:
/// full access is "all counts >= 1", Banyan is "all counts == 1". With an
/// empty mask the verdicts coincide with is_banyan /
/// check_baseline_equivalence (asserted in the tests).
/// \throws std::invalid_argument if the mask geometry does not match.
[[nodiscard]] FaultedClassification classify_faulted(
    const FlatWiring& w, const fault::FaultMask& mask);

/// Are two MI-digraphs topologically equivalent? Decided without search
/// when at least one is baseline-equivalent; otherwise falls back to the
/// general isomorphism search with the given node-expansion budget.
/// \throws std::runtime_error if the fallback search exhausts its budget
/// (answer unknown).
[[nodiscard]] bool are_topologically_equivalent(
    const MIDigraph& a, const MIDigraph& b,
    std::uint64_t fallback_budget = 50'000'000);

}  // namespace mineq::min
