/// \file mi_digraph.hpp
/// \brief Multistage interconnection digraphs (Section 2 of the paper).
///
/// "A multistage interconnection digraph (MI-digraph) with n stages is a
/// digraph whose nodes are partitioned into n ordered stages ... arcs only
/// from nodes of the ith stage to nodes of the (i+1)th ... nodes are of
/// indegree 2 and outdegree 2 except the nodes from the first and last
/// stage. Every stage has N/2 nodes where N = 2^n."
///
/// An MIDigraph is stored as its sequence of connections (f_i, g_i); the
/// out-degree-2 requirement is structural, the in-degree-2 requirement is
/// checked by is_valid(). Stage indices are 0-based.

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "min/connection.hpp"
#include "perm/permutation.hpp"

namespace mineq::min {

/// An n-stage MI-digraph over 2^(n-1) cells per stage.
class MIDigraph {
 public:
  /// Build from \p stages and the \p stages - 1 inter-stage connections,
  /// each of width stages-1.
  /// \throws std::invalid_argument on arity or width mismatch. Degree
  /// validity is *not* enforced here (use is_valid()), so degenerate
  /// networks like Fig. 5's can be represented and analyzed.
  MIDigraph(int stages, std::vector<Connection> connections);

  [[nodiscard]] int stages() const noexcept { return stages_; }

  /// Cell-label width (stages - 1 bits).
  [[nodiscard]] int width() const noexcept { return stages_ - 1; }

  /// Cells per stage (2^(stages-1)).
  [[nodiscard]] std::uint32_t cells_per_stage() const noexcept {
    return std::uint32_t{1} << width();
  }

  /// Total node count (stages * cells_per_stage).
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return static_cast<std::size_t>(stages_) * cells_per_stage();
  }

  /// Total arc count.
  [[nodiscard]] std::size_t num_arcs() const noexcept {
    return static_cast<std::size_t>(stages_ - 1) * cells_per_stage() * 2;
  }

  /// The connection between stage \p index and stage \p index + 1.
  [[nodiscard]] const Connection& connection(int index) const;

  [[nodiscard]] const std::vector<Connection>& connections() const noexcept {
    return connections_;
  }

  /// Children of cell \p x of stage \p stage, in (f, g) order.
  /// \p stage must be < stages()-1.
  [[nodiscard]] std::array<std::uint32_t, 2> children(int stage,
                                                      std::uint32_t x) const;

  /// True iff every connection is a valid stage (all in-degrees exactly 2).
  [[nodiscard]] bool is_valid() const;

  /// The reverse MI-digraph G^{-1} (paper, Section 3): all arcs reversed,
  /// stages renumbered right-to-left. Requires a valid digraph.
  [[nodiscard]] MIDigraph reverse() const;

  /// Per-stage relabelling: cell x of stage s becomes maps[s](x). The
  /// result is isomorphic to this digraph by construction (used to
  /// generate scrambled twins in tests and benchmarks).
  /// \throws std::invalid_argument unless exactly stages() permutations of
  /// size cells_per_stage() are given.
  [[nodiscard]] MIDigraph relabelled(
      const std::vector<perm::Permutation>& maps) const;

  /// The full digraph as a generic layered digraph.
  [[nodiscard]] graph::LayeredDigraph to_layered() const;

  /// The sub-digraph (G)_{lo..hi} spanned by stages lo..hi inclusive
  /// (paper notation (G)_{i,j} with 1-based i = lo+1, j = hi+1).
  [[nodiscard]] graph::LayeredDigraph layered_range(int lo, int hi) const;

  /// Structural equality (same connections in the same order). Note this
  /// is finer than isomorphism.
  friend bool operator==(const MIDigraph&, const MIDigraph&) = default;

  /// Multi-line adjacency dump.
  [[nodiscard]] std::string str() const;

 private:
  int stages_;
  std::vector<Connection> connections_;
};

}  // namespace mineq::min
