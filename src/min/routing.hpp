/// \file routing.hpp
/// \brief Path extraction and bit-directed routing on Banyan MI-digraphs.
///
/// The paper's closing remark motivates PIPID designs: "these permutations
/// are associated to a very simple bit directed routing". In a Banyan
/// network the path from a first-stage cell to a last-stage cell is
/// unique; for PIPID-built networks the out-port taken at stage s is a
/// fixed bit of the destination cell label (possibly a different bit per
/// stage). This module extracts unique paths generically and recovers the
/// per-stage destination-bit schedule when one exists.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "min/mi_digraph.hpp"

namespace mineq::min {

/// A source-to-sink route: the cell visited at every stage plus the
/// out-port (0 = f, 1 = g) taken at every hop.
struct Route {
  std::vector<std::uint32_t> cells;   ///< stages() entries
  std::vector<unsigned> ports;        ///< stages()-1 entries
};

/// The unique route from first-stage cell \p source to last-stage cell
/// \p sink, or nullopt if none exists. O(stages * cells) via one backward
/// reachability sweep. (If multiple paths exist — non-Banyan graphs — the
/// lexicographically first by port choice is returned.)
[[nodiscard]] std::optional<Route> find_route(const MIDigraph& g,
                                              std::uint32_t source,
                                              std::uint32_t sink);

/// A destination-bit routing schedule: at stage s, take the port equal to
/// bit `bit[s]` of the destination cell label, xor `invert[s]`.
struct BitSchedule {
  std::vector<int> bit;         ///< stages()-1 entries
  std::vector<unsigned> invert; ///< stages()-1 entries
};

/// Recover a destination-bit schedule valid for *all* (source, sink)
/// pairs, or nullopt if the network has none. Exhaustive over pairs:
/// O(cells^2 * stages) — intended for n up to ~10 in tests/benches.
[[nodiscard]] std::optional<BitSchedule> find_bit_schedule(const MIDigraph& g);

/// Apply a schedule: route from \p source to \p sink by reading ports off
/// the destination bits. Returns the cells visited.
[[nodiscard]] Route route_with_schedule(const MIDigraph& g,
                                        const BitSchedule& schedule,
                                        std::uint32_t source,
                                        std::uint32_t sink);

/// Check a schedule delivers every pair (exhaustive).
[[nodiscard]] bool verify_bit_schedule(const MIDigraph& g,
                                       const BitSchedule& schedule);

}  // namespace mineq::min
