/// \file routing.hpp
/// \brief Path extraction and bit-directed routing on Banyan MI-digraphs.
///
/// The paper's closing remark motivates PIPID designs: "these permutations
/// are associated to a very simple bit directed routing". In a Banyan
/// network the path from a first-stage cell to a last-stage cell is
/// unique; for PIPID-built networks the out-port taken at stage s is a
/// fixed bit of the destination cell label (possibly a different bit per
/// stage). This module extracts unique paths generically and recovers the
/// per-stage destination-bit schedule when one exists.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "min/flat_wiring.hpp"
#include "min/mi_digraph.hpp"

namespace mineq::min {

/// A source-to-sink route: the cell visited at every stage plus the
/// out-port (0 = f, 1 = g) taken at every hop.
struct Route {
  std::vector<std::uint32_t> cells;   ///< stages() entries
  std::vector<unsigned> ports;        ///< stages()-1 entries
};

/// The unique route from first-stage cell \p source to last-stage cell
/// \p sink, or nullopt if none exists. O(stages * cells) via one backward
/// reachability sweep. (If multiple paths exist — non-Banyan graphs — the
/// lexicographically first by port choice is returned.)
[[nodiscard]] std::optional<Route> find_route(const MIDigraph& g,
                                              std::uint32_t source,
                                              std::uint32_t sink);

/// A destination-bit routing schedule: at stage s, take the port equal to
/// bit `bit[s]` of the destination cell label, xor `invert[s]`.
struct BitSchedule {
  std::vector<int> bit;         ///< stages()-1 entries
  std::vector<unsigned> invert; ///< stages()-1 entries
};

/// Recover a destination-bit schedule valid for *all* (source, sink)
/// pairs, or nullopt if the network has none. Exhaustive over pairs:
/// O(cells^2 * stages) — intended for n up to ~10 in tests/benches.
[[nodiscard]] std::optional<BitSchedule> find_bit_schedule(const MIDigraph& g);

/// Apply a schedule: route from \p source to \p sink by reading ports off
/// the destination bits. Returns the cells visited.
[[nodiscard]] Route route_with_schedule(const MIDigraph& g,
                                        const BitSchedule& schedule,
                                        std::uint32_t source,
                                        std::uint32_t sink);

/// Check a schedule delivers every pair (exhaustive).
[[nodiscard]] bool verify_bit_schedule(const MIDigraph& g,
                                       const BitSchedule& schedule);

/// The radix-r generalization of BitSchedule: at stage s, take the port
/// port_of_value[s][v] where v is base-r digit `digit[s]` of the
/// destination cell label. The binary schedule is the r = 2 special case
/// (invert == 0 maps to the identity value map, invert == 1 to the
/// swap). Recovered from a FlatWiring of any radix, so the k-ary
/// simulators route with the same destination-tag discipline the binary
/// engine always used.
struct DigitSchedule {
  int radix = 2;
  std::vector<int> digit;  ///< stages()-1 entries (digit index per stage)
  /// stages()-1 maps from digit value (0..r-1) to out-port; each is a
  /// bijection of {0..r-1}.
  std::vector<std::vector<unsigned>> port_of_value;

  friend bool operator==(const DigitSchedule&, const DigitSchedule&) = default;
};

/// Recover a destination-digit schedule valid for *all* (source, sink)
/// pairs of \p w, or nullopt if none exists (no full access, the port
/// toward some sink depends on the current cell, or the per-stage port
/// choice does not factor through a single destination digit). For
/// Banyan digit-routable fabrics (k-ary Omega/Flip/Baseline) this is
/// exact; with multiple paths the lexicographically-first port choice is
/// fitted, which may reject exotic multipath fabrics that another choice
/// would admit. O(cells^2 * stages * radix) — intended for simulator
/// construction at n up to ~10.
[[nodiscard]] std::optional<DigitSchedule> find_digit_schedule(
    const FlatWiring& w);

/// Apply a digit schedule over the wiring: the cells visited from
/// \p source routing toward \p sink.
[[nodiscard]] std::vector<std::uint32_t> route_with_digit_schedule(
    const FlatWiring& w, const DigitSchedule& schedule, std::uint32_t source,
    std::uint32_t sink);

/// Check a digit schedule delivers every (source, sink) pair
/// (exhaustive).
[[nodiscard]] bool verify_digit_schedule(const FlatWiring& w,
                                         const DigitSchedule& schedule);

}  // namespace mineq::min
