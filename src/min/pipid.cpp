#include "min/pipid.hpp"

#include <stdexcept>

#include "util/bitops.hpp"

namespace mineq::min {

PipidStageInfo pipid_stage_info(const perm::IndexPermutation& ip) {
  if (ip.width() < 1) {
    throw std::invalid_argument("pipid_stage_info: empty permutation");
  }
  PipidStageInfo info;
  info.k = ip.theta_inv_of(0);
  info.degenerate = info.k == 0;
  info.dropped_input_bit = ip.theta_of(0);
  return info;
}

Connection connection_from_pipid(const perm::IndexPermutation& ip) {
  return Connection::from_link_permutation(ip.induced());
}

Connection connection_from_pipid_formula(const perm::IndexPermutation& ip) {
  const int n = ip.width();
  if (n < 1) {
    throw std::invalid_argument("connection_from_pipid_formula: width 0");
  }
  const int w = n - 1;
  // Precompute, per child bit b, which cell bit feeds it (or the port).
  constexpr int kPort = -1;
  std::vector<int> source(static_cast<std::size_t>(w));
  for (int b = 0; b < w; ++b) {
    const int t = ip.theta_of(b + 1);
    source[static_cast<std::size_t>(b)] = (t == 0) ? kPort : t - 1;
  }
  auto child = [&](std::uint32_t x, unsigned port) {
    std::uint32_t c = 0;
    for (int b = 0; b < w; ++b) {
      const int s = source[static_cast<std::size_t>(b)];
      const unsigned bit =
          (s == kPort) ? port : util::get_bit(x, s);
      c |= static_cast<std::uint32_t>(bit) << b;
    }
    return c;
  };
  return Connection::from_functions(
      w, [&](std::uint32_t x) { return child(x, 0); },
      [&](std::uint32_t x) { return child(x, 1); });
}

MIDigraph network_from_pipids(
    const std::vector<perm::IndexPermutation>& pipids) {
  if (pipids.empty()) {
    throw std::invalid_argument("network_from_pipids: need >= 1 wiring");
  }
  const int stages = static_cast<int>(pipids.size()) + 1;
  std::vector<Connection> connections;
  connections.reserve(pipids.size());
  for (const auto& ip : pipids) {
    if (ip.width() != stages) {
      throw std::invalid_argument(
          "network_from_pipids: PIPID width must equal stage count");
    }
    connections.push_back(connection_from_pipid_formula(ip));
  }
  return MIDigraph(stages, std::move(connections));
}

MIDigraph network_from_link_permutations(
    const std::vector<perm::Permutation>& perms) {
  if (perms.empty()) {
    throw std::invalid_argument(
        "network_from_link_permutations: need >= 1 wiring");
  }
  const int stages = static_cast<int>(perms.size()) + 1;
  const std::size_t links = std::size_t{1} << stages;
  std::vector<Connection> connections;
  connections.reserve(perms.size());
  for (const auto& p : perms) {
    if (p.size() != links) {
      throw std::invalid_argument(
          "network_from_link_permutations: permutation size mismatch");
    }
    connections.push_back(Connection::from_link_permutation(p));
  }
  return MIDigraph(stages, std::move(connections));
}

}  // namespace mineq::min
