#include "min/banyan.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <vector>

#include "util/parallel.hpp"

namespace mineq::min {

std::vector<std::uint64_t> path_counts_from(const MIDigraph& g,
                                            std::uint32_t source,
                                            std::uint64_t cap) {
  const std::uint32_t cells = g.cells_per_stage();
  if (source >= cells) {
    throw std::invalid_argument("path_counts_from: source out of range");
  }
  std::vector<std::uint64_t> counts(cells, 0);
  std::vector<std::uint64_t> next(cells, 0);
  counts[source] = 1;
  for (int s = 0; s + 1 < g.stages(); ++s) {
    const Connection& conn = g.connection(s);
    std::fill(next.begin(), next.end(), 0);
    for (std::uint32_t x = 0; x < cells; ++x) {
      const std::uint64_t c = counts[x];
      if (c == 0) continue;
      auto& nf = next[conn.f_table()[x]];
      nf = std::min(cap, nf + c);
      auto& ng = next[conn.g_table()[x]];
      ng = std::min(cap, ng + c);
    }
    counts.swap(next);
  }
  return counts;
}

namespace {

bool source_is_banyan(const MIDigraph& g, std::uint32_t source) {
  const auto counts = path_counts_from(g, source, /*cap=*/2);
  return std::all_of(counts.begin(), counts.end(),
                     [](std::uint64_t c) { return c == 1; });
}

}  // namespace

bool is_banyan(const MIDigraph& g, std::size_t threads) {
  const std::uint32_t cells = g.cells_per_stage();
  if (threads == 1 || cells < 64) {
    for (std::uint32_t u = 0; u < cells; ++u) {
      if (!source_is_banyan(g, u)) return false;
    }
    return true;
  }
  std::atomic<bool> ok(true);
  util::parallel_for(
      0, cells,
      [&](std::size_t u) {
        if (!ok.load(std::memory_order_relaxed)) return;
        if (!source_is_banyan(g, static_cast<std::uint32_t>(u))) {
          ok.store(false, std::memory_order_relaxed);
        }
      },
      threads);
  return ok.load();
}

std::optional<BanyanFailure> banyan_failure(const MIDigraph& g) {
  const std::uint32_t cells = g.cells_per_stage();
  for (std::uint32_t u = 0; u < cells; ++u) {
    const auto counts = path_counts_from(g, u, /*cap=*/1000000);
    for (std::uint32_t v = 0; v < cells; ++v) {
      if (counts[v] != 1) {
        return BanyanFailure{u, v, counts[v]};
      }
    }
  }
  return std::nullopt;
}

bool is_banyan_doubling(const MIDigraph& g) {
  const std::uint32_t cells = g.cells_per_stage();
  // Parallel arcs already break uniqueness.
  for (const Connection& conn : g.connections()) {
    if (conn.has_parallel_arcs()) return false;
  }
  // From each source the reachable set must exactly double per stage:
  // 2^s nodes after s connections (capped by construction at cells).
  // With out-degree 2 and 2^{stages-1} last-stage cells, doubling all the
  // way is exactly "2^{n-1} paths reach 2^{n-1} distinct cells", i.e.
  // unique paths everywhere.
  std::vector<char> reach(cells);
  std::vector<char> next(cells);
  for (std::uint32_t u = 0; u < cells; ++u) {
    std::fill(reach.begin(), reach.end(), 0);
    reach[u] = 1;
    std::size_t size = 1;
    for (int s = 0; s + 1 < g.stages(); ++s) {
      const Connection& conn = g.connection(s);
      std::fill(next.begin(), next.end(), 0);
      std::size_t next_size = 0;
      for (std::uint32_t x = 0; x < cells; ++x) {
        if (reach[x] == 0) continue;
        for (std::uint32_t child : conn.children(x)) {
          if (next[child] == 0) {
            next[child] = 1;
            ++next_size;
          }
        }
      }
      reach.swap(next);
      if (next_size != 2 * size) return false;
      size = next_size;
    }
  }
  return true;
}

}  // namespace mineq::min
