#include "min/banyan.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <stdexcept>
#include <vector>

#include "util/parallel.hpp"

namespace mineq::min {

namespace {

/// Shared saturating path-count DP over the packed records, templated on
/// the record unpacker so the radix-2 instantiation keeps its shift/mask
/// code generation (see flat_wiring.hpp).
template <typename Unpack>
std::vector<std::uint64_t> wiring_path_counts(const FlatWiring& w,
                                              const Unpack unpack,
                                              std::uint32_t source,
                                              std::uint64_t cap) {
  const std::uint32_t cells = w.cells_per_stage();
  std::vector<std::uint64_t> counts(cells, 0);
  std::vector<std::uint64_t> next(cells, 0);
  counts[source] = 1;
  for (int s = 0; s + 1 < w.stages(); ++s) {
    const auto down = w.down_stage(s);
    std::fill(next.begin(), next.end(), 0);
    for (std::uint32_t x = 0; x < cells; ++x) {
      const std::uint64_t c = counts[x];
      if (c == 0) continue;
      for (unsigned port = 0; port < unpack.radix(); ++port) {
        auto& n = next[unpack.cell(down[x * unpack.radix() + port])];
        n = std::min(cap, n + c);
      }
    }
    counts.swap(next);
  }
  return counts;
}

template <typename Unpack>
std::vector<std::uint64_t> wiring_path_counts_masked(
    const FlatWiring& w, const Unpack unpack, const fault::FaultMask& mask,
    std::uint32_t source, std::uint64_t cap) {
  const std::uint32_t cells = w.cells_per_stage();
  std::vector<std::uint64_t> counts(cells, 0);
  std::vector<std::uint64_t> next(cells, 0);
  counts[source] = 1;
  for (int s = 0; s + 1 < w.stages(); ++s) {
    const auto down = w.down_stage(s);
    // Arc bit index = stage base + the record's own array offset
    // (FaultMask::arc_index's layout); computing it from the loop
    // indices keeps the unpacker's compile-time radix — the binary
    // instantiation of this per-source kernel stays shift-indexed.
    const std::size_t stage_base =
        static_cast<std::size_t>(s) * mask.links_per_stage();
    std::fill(next.begin(), next.end(), 0);
    for (std::uint32_t x = 0; x < cells; ++x) {
      const std::uint64_t c = counts[x];
      if (c == 0) continue;
      const std::size_t row = x * unpack.radix();
      for (unsigned port = 0; port < unpack.radix(); ++port) {
        if (mask.faulted_index(stage_base + row + port)) {
          continue;  // dead arcs carry no paths
        }
        auto& n = next[unpack.cell(down[row + port])];
        n = std::min(cap, n + c);
      }
    }
    counts.swap(next);
  }
  return counts;
}

}  // namespace

std::vector<std::uint64_t> path_counts_from(const MIDigraph& g,
                                            std::uint32_t source,
                                            std::uint64_t cap) {
  const std::uint32_t cells = g.cells_per_stage();
  if (source >= cells) {
    throw std::invalid_argument("path_counts_from: source out of range");
  }
  std::vector<std::uint64_t> counts(cells, 0);
  std::vector<std::uint64_t> next(cells, 0);
  counts[source] = 1;
  for (int s = 0; s + 1 < g.stages(); ++s) {
    const Connection& conn = g.connection(s);
    std::fill(next.begin(), next.end(), 0);
    for (std::uint32_t x = 0; x < cells; ++x) {
      const std::uint64_t c = counts[x];
      if (c == 0) continue;
      auto& nf = next[conn.f_table()[x]];
      nf = std::min(cap, nf + c);
      auto& ng = next[conn.g_table()[x]];
      ng = std::min(cap, ng + c);
    }
    counts.swap(next);
  }
  return counts;
}

std::vector<std::uint64_t> path_counts_from(const FlatWiring& w,
                                            std::uint32_t source,
                                            std::uint64_t cap) {
  if (source >= w.cells_per_stage()) {
    throw std::invalid_argument("path_counts_from: source out of range");
  }
  if (w.radix() == 2) {
    return wiring_path_counts(w, UnpackBinary{}, source, cap);
  }
  return wiring_path_counts(
      w, UnpackRadix{static_cast<unsigned>(w.radix())}, source, cap);
}

std::vector<std::uint64_t> path_counts_from(const FlatWiring& w,
                                            const fault::FaultMask& mask,
                                            std::uint32_t source,
                                            std::uint64_t cap) {
  if (source >= w.cells_per_stage()) {
    throw std::invalid_argument("path_counts_from: source out of range");
  }
  if (!mask.matches(w)) {
    throw std::invalid_argument(
        "path_counts_from: fault mask geometry does not match the wiring");
  }
  if (w.radix() == 2) {
    return wiring_path_counts_masked(w, UnpackBinary{}, mask, source, cap);
  }
  return wiring_path_counts_masked(
      w, UnpackRadix{static_cast<unsigned>(w.radix())}, mask, source, cap);
}

namespace {

/// Below this size the whole check lives in a cache line or two and the
/// bitset machinery (upfront parallel-arc scan, word scratch) costs more
/// than the plain saturating path-count DP it replaces.
constexpr std::uint32_t kBitsetWorthwhileCells = 64;

bool source_is_banyan(const MIDigraph& g, std::uint32_t source) {
  const auto counts = path_counts_from(g, source, /*cap=*/2);
  return std::all_of(counts.begin(), counts.end(),
                     [](std::uint64_t c) { return c == 1; });
}

/// Per-stage child accessors for the topology representations, so the
/// bitset growth sweep below is written once. Each accessor exposes the
/// out-degree (the growth factor of the criterion) and the t-th child.
struct TableChildren {
  const std::uint32_t* f;
  const std::uint32_t* g;
  [[nodiscard]] static constexpr unsigned degree() noexcept { return 2; }
  [[nodiscard]] std::uint32_t child(std::uint32_t x, unsigned t) const {
    return t == 0 ? f[x] : g[x];
  }
};

[[nodiscard]] inline TableChildren stage_children(const MIDigraph& g, int s) {
  const Connection& conn = g.connection(s);
  return {conn.f_table().data(), conn.g_table().data()};
}

/// Packed-record accessor over one unpacker (UnpackBinary keeps the
/// radix-2 shift/mask code generation; UnpackRadix divides).
template <typename Unpack>
struct PackedChildren {
  const std::uint32_t* down;
  Unpack unpack;
  [[nodiscard]] unsigned degree() const noexcept { return unpack.radix(); }
  [[nodiscard]] std::uint32_t child(std::uint32_t x, unsigned t) const {
    return unpack.cell(down[x * unpack.radix() + t]);
  }
};

/// A FlatWiring bound to one unpacker, so the shared all-sources driver
/// can dispatch on radix() == 2 without duplicating the sweep.
template <typename Unpack>
struct WiringView {
  const FlatWiring* w;
  Unpack unpack;
  [[nodiscard]] int stages() const noexcept { return w->stages(); }
};

template <typename Unpack>
[[nodiscard]] inline PackedChildren<Unpack> stage_children(
    const WiringView<Unpack>& v, int s) {
  return {v.w->down_stage(s).data(), v.unpack};
}

/// The growth criterion on word-wide reachability bitsets: with
/// out-degree r there are exactly r^s paths from a source to stage s, so
/// (given no parallel arcs, checked by the caller) unique paths are
/// exactly "the reachable set grows r-fold at every stage" — r^s paths
/// onto r^s distinct cells (cf. is_banyan_doubling for r = 2,
/// cross-validated against the path-count DP in the tests). This needs
/// two cells/64-word scratch buffers per sweep instead of two cells-word
/// count arrays per source, fails faster on non-Banyan inputs (first
/// non-growing stage), and runs ~2x faster on Banyan ones. Scratch is
/// caller-provided so a sweep over all sources reuses it.
template <typename Network>
bool source_grows(const Network& net, std::uint32_t source,
                  std::vector<std::uint64_t>& reach,
                  std::vector<std::uint64_t>& next) {
  const std::size_t words = reach.size();
  std::fill(reach.begin(), reach.end(), 0);
  reach[source >> 6] = std::uint64_t{1} << (source & 63);
  std::size_t size = 1;
  for (int s = 0; s + 1 < net.stages(); ++s) {
    const auto children = stage_children(net, s);
    std::fill(next.begin(), next.end(), 0);
    for (std::size_t i = 0; i < words; ++i) {
      std::uint64_t bits = reach[i];
      while (bits != 0) {
        const auto x = static_cast<std::uint32_t>(
            i * 64 + static_cast<std::size_t>(std::countr_zero(bits)));
        bits &= bits - 1;
        for (unsigned t = 0; t < children.degree(); ++t) {
          const std::uint32_t c = children.child(x, t);
          next[c >> 6] |= std::uint64_t{1} << (c & 63);
        }
      }
    }
    std::size_t next_size = 0;
    for (const std::uint64_t word : next) {
      next_size += static_cast<std::size_t>(std::popcount(word));
    }
    if (next_size != children.degree() * size) return false;
    size = next_size;
    reach.swap(next);
  }
  return true;
}

bool wiring_has_parallel_arcs(const FlatWiring& w) {
  const auto radix = static_cast<unsigned>(w.radix());
  for (int s = 0; s + 1 < w.stages(); ++s) {
    const auto down = w.down_stage(s);
    for (std::size_t base = 0; base < down.size(); base += radix) {
      for (unsigned i = 1; i < radix; ++i) {
        const std::uint32_t ci = w.unpack_cell(down[base + i]);
        for (unsigned j = 0; j < i; ++j) {
          if (w.unpack_cell(down[base + j]) == ci) return true;
        }
      }
    }
  }
  return false;
}

bool digraph_has_parallel_arcs(const MIDigraph& g) {
  for (const Connection& conn : g.connections()) {
    if (conn.has_parallel_arcs()) return true;
  }
  return false;
}

/// Shared all-sources driver over either representation.
template <typename Network>
bool all_sources_grow(const Network& g, std::uint32_t cells,
                      std::size_t threads) {
  const std::size_t words = (static_cast<std::size_t>(cells) + 63) / 64;
  if (threads == 1 || cells < 64) {
    std::vector<std::uint64_t> reach(words);
    std::vector<std::uint64_t> next(words);
    for (std::uint32_t u = 0; u < cells; ++u) {
      if (!source_grows(g, u, reach, next)) return false;
    }
    return true;
  }
  std::atomic<bool> ok(true);
  util::parallel_for(
      0, cells,
      [&](std::size_t u) {
        if (!ok.load(std::memory_order_relaxed)) return;
        std::vector<std::uint64_t> reach(words);
        std::vector<std::uint64_t> next(words);
        if (!source_grows(g, static_cast<std::uint32_t>(u), reach, next)) {
          ok.store(false, std::memory_order_relaxed);
        }
      },
      threads);
  return ok.load();
}

}  // namespace

bool is_banyan(const MIDigraph& g, std::size_t threads) {
  const std::uint32_t cells = g.cells_per_stage();
  if (cells < kBitsetWorthwhileCells) {
    for (std::uint32_t u = 0; u < cells; ++u) {
      if (!source_is_banyan(g, u)) return false;
    }
    return true;
  }
  // Parallel arcs already break uniqueness (two u -> v paths of length
  // one); the growth check would not see the multiplicity.
  if (digraph_has_parallel_arcs(g)) return false;
  return all_sources_grow(g, cells, threads);
}

bool is_banyan(const FlatWiring& w, std::size_t threads) {
  if (wiring_has_parallel_arcs(w)) return false;
  if (w.radix() == 2) {
    return all_sources_grow(WiringView<UnpackBinary>{&w, {}},
                            w.cells_per_stage(), threads);
  }
  return all_sources_grow(
      WiringView<UnpackRadix>{&w,
                              UnpackRadix{static_cast<unsigned>(w.radix())}},
      w.cells_per_stage(), threads);
}

std::optional<BanyanFailure> banyan_failure(const MIDigraph& g) {
  const std::uint32_t cells = g.cells_per_stage();
  for (std::uint32_t u = 0; u < cells; ++u) {
    const auto counts = path_counts_from(g, u, /*cap=*/1000000);
    for (std::uint32_t v = 0; v < cells; ++v) {
      if (counts[v] != 1) {
        return BanyanFailure{u, v, counts[v]};
      }
    }
  }
  return std::nullopt;
}

bool is_banyan_doubling(const MIDigraph& g) {
  const std::uint32_t cells = g.cells_per_stage();
  // Parallel arcs already break uniqueness.
  for (const Connection& conn : g.connections()) {
    if (conn.has_parallel_arcs()) return false;
  }
  // From each source the reachable set must exactly double per stage:
  // 2^s nodes after s connections (capped by construction at cells).
  // With out-degree 2 and 2^{stages-1} last-stage cells, doubling all the
  // way is exactly "2^{n-1} paths reach 2^{n-1} distinct cells", i.e.
  // unique paths everywhere.
  std::vector<char> reach(cells);
  std::vector<char> next(cells);
  for (std::uint32_t u = 0; u < cells; ++u) {
    std::fill(reach.begin(), reach.end(), 0);
    reach[u] = 1;
    std::size_t size = 1;
    for (int s = 0; s + 1 < g.stages(); ++s) {
      const Connection& conn = g.connection(s);
      std::fill(next.begin(), next.end(), 0);
      std::size_t next_size = 0;
      for (std::uint32_t x = 0; x < cells; ++x) {
        if (reach[x] == 0) continue;
        for (std::uint32_t child : conn.children(x)) {
          if (next[child] == 0) {
            next[child] = 1;
            ++next_size;
          }
        }
      }
      reach.swap(next);
      if (next_size != 2 * size) return false;
      size = next_size;
    }
  }
  return true;
}

}  // namespace mineq::min
