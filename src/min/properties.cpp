#include "min/properties.hpp"

#include <stdexcept>
#include <unordered_map>

#include "graph/dsu.hpp"

namespace mineq::min {

namespace {

void check_range(const MIDigraph& g, int lo, int hi) {
  if (lo < 0 || hi >= g.stages() || lo > hi) {
    throw std::invalid_argument("P(i,j): bad stage range");
  }
}

}  // namespace

std::size_t component_count_range(const MIDigraph& g, int lo, int hi) {
  check_range(g, lo, hi);
  const std::uint32_t cells = g.cells_per_stage();
  const std::size_t span = static_cast<std::size_t>(hi - lo + 1);
  graph::DSU dsu(span * cells);
  for (int s = lo; s < hi; ++s) {
    const Connection& conn = g.connection(s);
    const std::uint32_t base = static_cast<std::uint32_t>(s - lo) * cells;
    for (std::uint32_t x = 0; x < cells; ++x) {
      dsu.unite(base + x, base + cells + conn.f_table()[x]);
      dsu.unite(base + x, base + cells + conn.g_table()[x]);
    }
  }
  return dsu.components();
}

std::size_t expected_components(const MIDigraph& g, int lo, int hi) {
  check_range(g, lo, hi);
  return std::size_t{1} << (g.width() - (hi - lo));
}

bool satisfies_p(const MIDigraph& g, int lo, int hi) {
  return component_count_range(g, lo, hi) == expected_components(g, lo, hi);
}

std::vector<std::size_t> prefix_component_profile(const MIDigraph& g) {
  const std::uint32_t cells = g.cells_per_stage();
  // One DSU over the whole digraph; after wiring stage s-1 -> s, the
  // component count over stages 0..s equals the full-DSU count minus the
  // (stages-1-s) * cells untouched singleton nodes.
  graph::DSU dsu(static_cast<std::size_t>(g.stages()) * cells);
  std::vector<std::size_t> profile;
  profile.reserve(static_cast<std::size_t>(g.stages()));
  profile.push_back(cells);  // (G)_{0..0}: isolated cells
  for (int s = 0; s + 1 < g.stages(); ++s) {
    const Connection& conn = g.connection(s);
    const std::uint32_t base = static_cast<std::uint32_t>(s) * cells;
    for (std::uint32_t x = 0; x < cells; ++x) {
      dsu.unite(base + x, base + cells + conn.f_table()[x]);
      dsu.unite(base + x, base + cells + conn.g_table()[x]);
    }
    const std::size_t untouched =
        static_cast<std::size_t>(g.stages() - 2 - s) * cells;
    profile.push_back(dsu.components() - untouched);
  }
  return profile;
}

std::vector<std::size_t> suffix_component_profile(const MIDigraph& g) {
  const std::uint32_t cells = g.cells_per_stage();
  graph::DSU dsu(static_cast<std::size_t>(g.stages()) * cells);
  std::vector<std::size_t> profile(static_cast<std::size_t>(g.stages()));
  profile[static_cast<std::size_t>(g.stages() - 1)] = cells;
  for (int s = g.stages() - 2; s >= 0; --s) {
    const Connection& conn = g.connection(s);
    const std::uint32_t base = static_cast<std::uint32_t>(s) * cells;
    for (std::uint32_t x = 0; x < cells; ++x) {
      dsu.unite(base + x, base + cells + conn.f_table()[x]);
      dsu.unite(base + x, base + cells + conn.g_table()[x]);
    }
    const std::size_t untouched = static_cast<std::size_t>(s) * cells;
    profile[static_cast<std::size_t>(s)] = dsu.components() - untouched;
  }
  return profile;
}

bool satisfies_p1_star(const MIDigraph& g) {
  const auto profile = prefix_component_profile(g);
  for (int j = 0; j < g.stages(); ++j) {
    if (profile[static_cast<std::size_t>(j)] !=
        (std::size_t{1} << (g.width() - j))) {
      return false;
    }
  }
  return true;
}

bool satisfies_p_star_n(const MIDigraph& g) {
  const auto profile = suffix_component_profile(g);
  for (int i = 0; i < g.stages(); ++i) {
    if (profile[static_cast<std::size_t>(i)] !=
        (std::size_t{1} << i)) {
      return false;
    }
  }
  return true;
}

namespace {

/// DSU union of one packed connection, templated on the record unpacker
/// (flat_wiring.hpp): the radix-2 instantiation keeps its historic
/// shift/mask code generation, general radices divide.
template <typename Unpack>
void unite_stage(const FlatWiring& w, const Unpack unpack, int s,
                 std::uint32_t base, graph::DSU& dsu) {
  const std::uint32_t cells = w.cells_per_stage();
  const auto down = w.down_stage(s);
  for (std::uint32_t x = 0; x < cells; ++x) {
    for (unsigned port = 0; port < unpack.radix(); ++port) {
      dsu.unite(base + x,
                base + cells + unpack.cell(down[x * unpack.radix() + port]));
    }
  }
}

template <typename Unpack>
std::vector<std::size_t> wiring_prefix_profile(const FlatWiring& w,
                                               const Unpack unpack) {
  const std::uint32_t cells = w.cells_per_stage();
  graph::DSU dsu(static_cast<std::size_t>(w.stages()) * cells);
  std::vector<std::size_t> profile;
  profile.reserve(static_cast<std::size_t>(w.stages()));
  profile.push_back(cells);  // (G)_{0..0}: isolated cells
  for (int s = 0; s + 1 < w.stages(); ++s) {
    unite_stage(w, unpack, s, static_cast<std::uint32_t>(s) * cells, dsu);
    const std::size_t untouched =
        static_cast<std::size_t>(w.stages() - 2 - s) * cells;
    profile.push_back(dsu.components() - untouched);
  }
  return profile;
}

template <typename Unpack>
std::vector<std::size_t> wiring_suffix_profile(const FlatWiring& w,
                                               const Unpack unpack) {
  const std::uint32_t cells = w.cells_per_stage();
  graph::DSU dsu(static_cast<std::size_t>(w.stages()) * cells);
  std::vector<std::size_t> profile(static_cast<std::size_t>(w.stages()));
  profile[static_cast<std::size_t>(w.stages() - 1)] = cells;
  for (int s = w.stages() - 2; s >= 0; --s) {
    unite_stage(w, unpack, s, static_cast<std::uint32_t>(s) * cells, dsu);
    const std::size_t untouched = static_cast<std::size_t>(s) * cells;
    profile[static_cast<std::size_t>(s)] = dsu.components() - untouched;
  }
  return profile;
}

}  // namespace

std::vector<std::size_t> prefix_component_profile(const FlatWiring& w) {
  if (w.radix() == 2) return wiring_prefix_profile(w, UnpackBinary{});
  return wiring_prefix_profile(
      w, UnpackRadix{static_cast<unsigned>(w.radix())});
}

std::vector<std::size_t> suffix_component_profile(const FlatWiring& w) {
  if (w.radix() == 2) return wiring_suffix_profile(w, UnpackBinary{});
  return wiring_suffix_profile(
      w, UnpackRadix{static_cast<unsigned>(w.radix())});
}

bool satisfies_p1_star(const FlatWiring& w) {
  const auto profile = prefix_component_profile(w);
  // P(1, j) demands cells / radix^j components on the prefix; cells is
  // radix^width by construction, so the division is exact down to 1.
  std::size_t expected = w.cells_per_stage();
  for (int j = 0; j < w.stages(); ++j) {
    if (profile[static_cast<std::size_t>(j)] != expected) return false;
    if (j + 1 < w.stages()) expected /= static_cast<std::size_t>(w.radix());
  }
  return true;
}

bool satisfies_p_star_n(const FlatWiring& w) {
  const auto profile = suffix_component_profile(w);
  std::size_t expected = 1;
  for (int i = 0; i < w.stages(); ++i) {
    if (profile[static_cast<std::size_t>(i)] != expected) return false;
    expected *= static_cast<std::size_t>(w.radix());
  }
  return true;
}

std::size_t component_count_range(const FlatWiring& w, int lo, int hi) {
  if (lo < 0 || hi >= w.stages() || lo > hi) {
    throw std::invalid_argument("P(i,j): bad stage range");
  }
  const std::uint32_t cells = w.cells_per_stage();
  const std::size_t span = static_cast<std::size_t>(hi - lo + 1);
  graph::DSU dsu(span * cells);
  const auto unite_range = [&](const auto unpack) {
    for (int s = lo; s < hi; ++s) {
      unite_stage(w, unpack, s, static_cast<std::uint32_t>(s - lo) * cells,
                  dsu);
    }
  };
  if (w.radix() == 2) {
    unite_range(UnpackBinary{});
  } else {
    unite_range(UnpackRadix{static_cast<unsigned>(w.radix())});
  }
  return dsu.components();
}

std::size_t component_count_range(const FlatWiring& w,
                                  const fault::FaultMask& mask, int lo,
                                  int hi) {
  if (lo < 0 || hi >= w.stages() || lo > hi) {
    throw std::invalid_argument("P(i,j): bad stage range");
  }
  if (!mask.matches(w)) {
    throw std::invalid_argument(
        "component_count_range: fault mask geometry does not match");
  }
  const std::uint32_t cells = w.cells_per_stage();
  const auto radix = static_cast<unsigned>(w.radix());
  const std::size_t span = static_cast<std::size_t>(hi - lo + 1);
  graph::DSU dsu(span * cells);
  for (int s = lo; s < hi; ++s) {
    const auto down = w.down_stage(s);
    const std::uint32_t base = static_cast<std::uint32_t>(s - lo) * cells;
    for (std::uint32_t x = 0; x < cells; ++x) {
      for (unsigned port = 0; port < radix; ++port) {
        if (mask.faulted(s, x, port)) continue;  // severed by the fault
        dsu.unite(base + x,
                  base + cells + w.unpack_cell(down[x * radix + port]));
      }
    }
  }
  return dsu.components();
}

SuffixStructure suffix_component_structure(const MIDigraph& g, int from) {
  check_range(g, from, g.stages() - 1);
  const std::uint32_t cells = g.cells_per_stage();
  const int span = g.stages() - from;
  graph::DSU dsu(static_cast<std::size_t>(span) * cells);
  for (int s = from; s + 1 < g.stages(); ++s) {
    const Connection& conn = g.connection(s);
    const std::uint32_t base = static_cast<std::uint32_t>(s - from) * cells;
    for (std::uint32_t x = 0; x < cells; ++x) {
      dsu.unite(base + x, base + cells + conn.f_table()[x]);
      dsu.unite(base + x, base + cells + conn.g_table()[x]);
    }
  }
  SuffixStructure out;
  std::unordered_map<std::uint32_t, std::size_t> root_index;
  for (int s = 0; s < span; ++s) {
    for (std::uint32_t x = 0; x < cells; ++x) {
      const std::uint32_t node = static_cast<std::uint32_t>(s) * cells + x;
      const std::uint32_t root = dsu.find(node);
      const auto [it, inserted] =
          root_index.emplace(root, root_index.size());
      if (inserted) {
        out.intersections.emplace_back(static_cast<std::size_t>(span), 0);
      }
      ++out.intersections[it->second][static_cast<std::size_t>(s)];
    }
  }
  out.component_count = root_index.size();
  return out;
}

}  // namespace mineq::min
