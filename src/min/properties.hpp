/// \file properties.hpp
/// \brief The P(i,j) component-counting properties (Section 2).
///
/// Paper: "an MI-digraph with n stages satisfies the P(i,j) property for
/// 1 <= i <= j <= n iff the subdigraph (G)_{i,j} has exactly
/// 2^{n-1-(j-i)} connected components"; P(1,*) means P(1,j) for all j and
/// P(*,n) means P(i,n) for all i. Together with the Banyan property these
/// characterize the networks topologically equivalent to Baseline.
///
/// Stage indices here are 0-based: our satisfies_p(g, lo, hi) is the
/// paper's P(lo+1, hi+1), and the expected component count is
/// 2^{(stages-1) - (hi-lo)}.

#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_mask.hpp"
#include "min/flat_wiring.hpp"
#include "min/mi_digraph.hpp"

namespace mineq::min {

/// Number of connected components (of the undirected underlying graph) of
/// the sub-digraph spanned by stages lo..hi inclusive.
[[nodiscard]] std::size_t component_count_range(const MIDigraph& g, int lo,
                                                int hi);

/// The expected component count for P(lo, hi): 2^{(stages-1)-(hi-lo)}.
[[nodiscard]] std::size_t expected_components(const MIDigraph& g, int lo,
                                              int hi);

/// Does G satisfy P(lo, hi)?
[[nodiscard]] bool satisfies_p(const MIDigraph& g, int lo, int hi);

/// Component counts of the prefix subgraphs (G)_{0..j} for j = 0..n-1,
/// computed with one incremental DSU sweep (O(nodes + arcs) alpha).
[[nodiscard]] std::vector<std::size_t> prefix_component_profile(
    const MIDigraph& g);

/// Component counts of the suffix subgraphs (G)_{i..n-1} for i = 0..n-1
/// (index i of the result corresponds to suffix starting at stage i).
[[nodiscard]] std::vector<std::size_t> suffix_component_profile(
    const MIDigraph& g);

/// P(1,*) of the paper: every prefix has the expected component count.
[[nodiscard]] bool satisfies_p1_star(const MIDigraph& g);

/// P(*,n) of the paper: every suffix has the expected component count.
[[nodiscard]] bool satisfies_p_star_n(const MIDigraph& g);

/// FlatWiring fast paths: the same incremental DSU sweeps over the
/// stage-packed down records. check_baseline_equivalence routes through
/// these so one IR build serves every check of the characterization.
[[nodiscard]] std::vector<std::size_t> prefix_component_profile(
    const FlatWiring& w);
[[nodiscard]] std::vector<std::size_t> suffix_component_profile(
    const FlatWiring& w);
[[nodiscard]] bool satisfies_p1_star(const FlatWiring& w);
[[nodiscard]] bool satisfies_p_star_n(const FlatWiring& w);
[[nodiscard]] std::size_t component_count_range(const FlatWiring& w, int lo,
                                                int hi);

/// Component count of the *survivor* sub-digraph of stages lo..hi under a
/// fault mask: masked arcs contribute no unions, so switches isolated by
/// faults count as singleton components. With an empty mask this equals
/// the unmasked overload (cross-checked in the tests against a DSU over
/// the explicitly pruned arc list).
/// \throws std::invalid_argument on a bad range or a mask geometry
/// mismatch.
[[nodiscard]] std::size_t component_count_range(const FlatWiring& w,
                                                const fault::FaultMask& mask,
                                                int lo, int hi);

/// Lemma 2 structure report for the suffix (G)_{from..n-1}: component
/// count plus, per component, its intersection size with every stage.
/// For a Banyan digraph built from independent connections the paper
/// proves each component meets each stage in the same number of cells.
struct SuffixStructure {
  std::size_t component_count = 0;
  /// intersections[c][s] = |component c  ∩  stage (from + s)|.
  std::vector<std::vector<std::size_t>> intersections;
};

[[nodiscard]] SuffixStructure suffix_component_structure(const MIDigraph& g,
                                                         int from);

}  // namespace mineq::min
