#include "min/mi_digraph.hpp"

#include <sstream>
#include <stdexcept>

#include "util/bitops.hpp"

namespace mineq::min {

MIDigraph::MIDigraph(int stages, std::vector<Connection> connections)
    : stages_(stages), connections_(std::move(connections)) {
  if (stages < 1 || stages > util::kMaxBits) {
    throw std::invalid_argument("MIDigraph: stage count out of range");
  }
  if (connections_.size() != static_cast<std::size_t>(stages - 1)) {
    throw std::invalid_argument(
        "MIDigraph: need exactly stages-1 connections");
  }
  for (const Connection& c : connections_) {
    if (c.width() != stages - 1) {
      throw std::invalid_argument("MIDigraph: connection width mismatch");
    }
  }
}

const Connection& MIDigraph::connection(int index) const {
  if (index < 0 || index >= stages_ - 1) {
    throw std::invalid_argument("MIDigraph::connection: index out of range");
  }
  return connections_[static_cast<std::size_t>(index)];
}

std::array<std::uint32_t, 2> MIDigraph::children(int stage,
                                                 std::uint32_t x) const {
  return connection(stage).children(x);
}

bool MIDigraph::is_valid() const {
  for (const Connection& c : connections_) {
    if (!c.is_valid_stage()) return false;
  }
  return true;
}

MIDigraph MIDigraph::reverse() const {
  std::vector<Connection> reversed;
  reversed.reserve(connections_.size());
  for (auto it = connections_.rbegin(); it != connections_.rend(); ++it) {
    reversed.push_back(it->reverse_generic());
  }
  return MIDigraph(stages_, std::move(reversed));
}

MIDigraph MIDigraph::relabelled(
    const std::vector<perm::Permutation>& maps) const {
  if (maps.size() != static_cast<std::size_t>(stages_)) {
    throw std::invalid_argument("relabelled: need one map per stage");
  }
  for (const auto& p : maps) {
    if (p.size() != cells_per_stage()) {
      throw std::invalid_argument("relabelled: map size mismatch");
    }
  }
  std::vector<Connection> remapped;
  remapped.reserve(connections_.size());
  for (std::size_t i = 0; i < connections_.size(); ++i) {
    const perm::Permutation inv = maps[i].inverse();
    const perm::Permutation& next = maps[i + 1];
    const Connection& conn = connections_[i];
    remapped.push_back(Connection::from_functions(
        width(),
        [&](std::uint32_t x) { return next(conn.f_table()[inv(x)]); },
        [&](std::uint32_t x) { return next(conn.g_table()[inv(x)]); }));
  }
  return MIDigraph(stages_, std::move(remapped));
}

graph::LayeredDigraph MIDigraph::to_layered() const {
  return layered_range(0, stages_ - 1);
}

graph::LayeredDigraph MIDigraph::layered_range(int lo, int hi) const {
  if (lo < 0 || hi >= stages_ || lo > hi) {
    throw std::invalid_argument("layered_range: bad stage range");
  }
  graph::LayeredDigraph g;
  g.adj.resize(static_cast<std::size_t>(hi - lo + 1));
  const std::uint32_t cells = cells_per_stage();
  for (int s = lo; s <= hi; ++s) {
    auto& layer = g.adj[static_cast<std::size_t>(s - lo)];
    layer.resize(cells);
    if (s == hi) continue;
    const Connection& conn = connections_[static_cast<std::size_t>(s)];
    for (std::uint32_t x = 0; x < cells; ++x) {
      layer[x] = {conn.f_table()[x], conn.g_table()[x]};
    }
  }
  return g;
}

std::string MIDigraph::str() const {
  std::ostringstream out;
  out << stages_ << "-stage MI-digraph, " << cells_per_stage()
      << " cells/stage\n";
  for (std::size_t i = 0; i < connections_.size(); ++i) {
    out << "connection " << i << " (stage " << i << " -> " << i + 1 << "):\n"
        << connections_[i].str();
  }
  return out.str();
}

}  // namespace mineq::min
