/// \file baseline.hpp
/// \brief The Baseline network and its left-recursive construction.
///
/// Paper: "The n-stage Baseline network is built in a recursive manner.
/// The subnetwork between stages 2 and n consists of two (n-1)-stage
/// Baseline networks. These components are connected via the first stage
/// such that nodes 2i and 2i+1 of stage 1 are connected to the ith nodes
/// of the two subnetworks." (Fig. 1.)
///
/// Two constructions are provided: the literal recursion and a closed
/// form; they produce identical digraphs (asserted in the tests). The
/// closed form of connection s (0-based): with w = stages-1 and block mask
/// m = 2^{w-s} - 1, a cell y splits into block = y & ~m (frozen high bits
/// = which sub-network the cell belongs to) and position p = y & m, and
///
///     f(y) = block | (p >> 1),      g(y) = f(y) ^ 2^{w-s-1}.

#pragma once

#include "min/mi_digraph.hpp"

namespace mineq::min {

/// The n-stage Baseline MI-digraph (closed form).
[[nodiscard]] MIDigraph baseline_network(int stages);

/// The same digraph built by the paper's literal recursion (two
/// (n-1)-stage sub-baselines embedded behind a new first stage).
[[nodiscard]] MIDigraph baseline_network_recursive(int stages);

/// The Reverse Baseline MI-digraph (the reverse digraph of Baseline).
[[nodiscard]] MIDigraph reverse_baseline_network(int stages);

/// Structural check of the left-recursive property: stages 1..n-1 split
/// into exactly two components, cells 2i and 2i+1 of stage 0 connect to
/// the "same position" cell of each component, and both components are
/// recursively left-recursive. (This is the defining property, so it holds
/// for baseline_network and for nothing that differs structurally.)
[[nodiscard]] bool is_left_recursive_baseline(const MIDigraph& g);

}  // namespace mineq::min
