#include "min/flat_wiring.hpp"

#include <stdexcept>
#include <string>

#include "min/kary.hpp"
#include "util/bitops.hpp"

namespace mineq::min {

void FlatWiring::check_geometry(int stages, std::uint64_t cells, int radix) {
  if (radix < 2 || radix > 64) {
    throw std::invalid_argument(
        "FlatWiring: radix " + std::to_string(radix) +
        " out of range [2, 64]");
  }
  if (stages < 1 || cells < 1) {
    throw std::invalid_argument(
        "FlatWiring: need >= 1 stage and >= 1 cell, got stages=" +
        std::to_string(stages) + " cells=" + std::to_string(cells));
  }
  // The largest packed record is cells * radix - 1; past 2^32 the
  // cell * radix + slot arithmetic would wrap silently long before the
  // record arrays themselves exhaust memory.
  const std::uint64_t limit = std::uint64_t{1} << 32;
  if (cells * static_cast<std::uint64_t>(radix) > limit) {
    throw std::invalid_argument(
        "FlatWiring: geometry stages=" + std::to_string(stages) +
        " cells=" + std::to_string(cells) + " radix=" +
        std::to_string(radix) +
        " overflows the 32-bit packed records (cells * radix > 2^32)");
  }
}

FlatWiring::FlatWiring(int stages, std::uint32_t cells, int radix) {
  check_geometry(stages, cells, radix);
  stages_ = stages;
  radix_ = radix;
  cells_ = cells;
  const std::size_t records =
      static_cast<std::size_t>(stages - 1) * links_per_stage();
  down_.assign(records, 0);
  up_.assign(records, 0);
}

void FlatWiring::pack_stage(int s,
                            const std::vector<std::uint32_t>& child_of_link,
                            std::vector<std::uint8_t>& filled) {
  // Slot assignment in deterministic (source cell, port) fill order: the
  // k-th arc arriving at a child takes slot k. This is the order the
  // simulators have always used; changing it would change arbitration
  // outcomes. `filled` is caller-owned scratch (one allocation per
  // build, not per stage).
  const std::size_t links = links_per_stage();
  const std::size_t base = static_cast<std::size_t>(s) * links;
  const auto radix = static_cast<unsigned>(radix_);
  std::fill(filled.begin(), filled.end(), 0);
  for (std::size_t link = 0; link < links; ++link) {
    const std::uint32_t child = child_of_link[link];
    if (child >= cells_ || filled[child] >= radix) {
      throw std::invalid_argument(
          "FlatWiring: connection is not a valid stage (in-degree != "
          "radix)");
    }
    const unsigned slot = filled[child]++;
    down_[base + link] = pack_record(child, slot, radix);
    // The up record pack_record(parent, port) is the link index itself,
    // since link = radix * parent + port by construction.
    up_[base + static_cast<std::size_t>(radix) * child + slot] =
        static_cast<std::uint32_t>(link);
  }
  for (std::uint32_t y = 0; y < cells_; ++y) {
    if (filled[y] != radix) {
      throw std::invalid_argument(
          "FlatWiring: connection is not a valid stage (in-degree != "
          "radix)");
    }
  }
}

FlatWiring FlatWiring::from_digraph(const MIDigraph& g) {
  FlatWiring wiring(g.stages(), g.cells_per_stage(), /*radix=*/2);
  std::vector<std::uint32_t> child_of_link(wiring.links_per_stage());
  std::vector<std::uint8_t> filled(wiring.cells_);
  for (int s = 0; s + 1 < g.stages(); ++s) {
    const Connection& conn = g.connection(s);
    for (std::uint32_t x = 0; x < wiring.cells_; ++x) {
      child_of_link[2 * x] = conn.f_table()[x];
      child_of_link[2 * x + 1] = conn.g_table()[x];
    }
    wiring.pack_stage(s, child_of_link, filled);
  }
  return wiring;
}

FlatWiring FlatWiring::from_kary(const KaryMIDigraph& g) {
  FlatWiring wiring(g.stages(), g.cells_per_stage(), g.radix());
  const auto radix = static_cast<unsigned>(g.radix());
  std::vector<std::uint32_t> child_of_link(wiring.links_per_stage());
  std::vector<std::uint8_t> filled(wiring.cells_);
  for (int s = 0; s + 1 < g.stages(); ++s) {
    const KaryConnection& conn = g.connection(s);
    for (unsigned port = 0; port < radix; ++port) {
      const std::vector<std::uint32_t>& table = conn.table(port);
      for (std::uint32_t x = 0; x < wiring.cells_; ++x) {
        child_of_link[static_cast<std::size_t>(radix) * x + port] = table[x];
      }
    }
    wiring.pack_stage(s, child_of_link, filled);
  }
  return wiring;
}

FlatWiring FlatWiring::from_pipids(
    const std::vector<perm::IndexPermutation>& pipids) {
  if (pipids.empty()) {
    throw std::invalid_argument("FlatWiring::from_pipids: need >= 1 wiring");
  }
  const int stages = static_cast<int>(pipids.size()) + 1;
  const int w = stages - 1;
  FlatWiring wiring(stages, std::uint32_t{1} << w, /*radix=*/2);
  std::vector<std::uint32_t> child_of_link(wiring.links_per_stage());
  std::vector<std::uint8_t> filled(wiring.cells_);
  std::vector<int> source(static_cast<std::size_t>(w));
  constexpr int kPort = -1;
  for (int s = 0; s + 1 < stages; ++s) {
    const perm::IndexPermutation& ip = pipids[static_cast<std::size_t>(s)];
    if (ip.width() != stages) {
      throw std::invalid_argument(
          "FlatWiring::from_pipids: PIPID width must equal stage count");
    }
    // The paper's closed bit formula (Section 4): child bit b is the port
    // when theta(b+1) == 0, else cell bit theta(b+1) - 1.
    for (int b = 0; b < w; ++b) {
      const int t = ip.theta_of(b + 1);
      source[static_cast<std::size_t>(b)] = (t == 0) ? kPort : t - 1;
    }
    for (std::uint32_t x = 0; x < wiring.cells_; ++x) {
      for (unsigned port = 0; port < 2; ++port) {
        std::uint32_t c = 0;
        for (int b = 0; b < w; ++b) {
          const int src = source[static_cast<std::size_t>(b)];
          const unsigned bit = (src == kPort) ? port : util::get_bit(x, src);
          c |= static_cast<std::uint32_t>(bit) << b;
        }
        child_of_link[2 * x + port] = c;
      }
    }
    wiring.pack_stage(s, child_of_link, filled);
  }
  return wiring;
}

FlatWiring FlatWiring::from_stage_children(
    int stages, std::uint32_t cells, int radix,
    const std::vector<std::vector<std::uint32_t>>& child_of_link_per_stage) {
  if (child_of_link_per_stage.size() !=
      static_cast<std::size_t>(stages > 0 ? stages - 1 : 0)) {
    throw std::invalid_argument(
        "FlatWiring::from_stage_children: need stages - 1 child tables, "
        "got " +
        std::to_string(child_of_link_per_stage.size()) + " for stages=" +
        std::to_string(stages));
  }
  FlatWiring wiring(stages, cells, radix);
  std::vector<std::uint8_t> filled(wiring.cells_);
  for (int s = 0; s + 1 < stages; ++s) {
    const std::vector<std::uint32_t>& table =
        child_of_link_per_stage[static_cast<std::size_t>(s)];
    if (table.size() != wiring.links_per_stage()) {
      throw std::invalid_argument(
          "FlatWiring::from_stage_children: child table for connection " +
          std::to_string(s) + " has " + std::to_string(table.size()) +
          " entries, expected radix * cells = " +
          std::to_string(wiring.links_per_stage()));
    }
    wiring.pack_stage(s, table, filled);
  }
  return wiring;
}

}  // namespace mineq::min
