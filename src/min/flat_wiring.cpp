#include "min/flat_wiring.hpp"

#include <stdexcept>

#include "util/bitops.hpp"

namespace mineq::min {

void FlatWiring::pack_stage(int s,
                            const std::vector<std::uint32_t>& child_of_link,
                            std::vector<std::uint8_t>& filled) {
  // Slot assignment in deterministic (source cell, port) fill order: the
  // first arc arriving at a child takes slot 0, the second slot 1. This is
  // the order the simulators have always used; changing it would change
  // arbitration outcomes. `filled` is caller-owned scratch (one
  // allocation per build, not per stage).
  const std::size_t links = links_per_stage();
  const std::size_t base = static_cast<std::size_t>(s) * links;
  std::fill(filled.begin(), filled.end(), 0);
  for (std::size_t link = 0; link < links; ++link) {
    const std::uint32_t child = child_of_link[link];
    if (child >= cells_ || filled[child] >= 2) {
      throw std::invalid_argument(
          "FlatWiring: connection is not a valid stage (in-degree != 2)");
    }
    const unsigned slot = filled[child]++;
    down_[base + link] = (child << 1) | slot;
    // The up record (parent << 1) | port is the link index itself, since
    // link = 2 * parent + port by construction.
    up_[base + 2 * child + slot] = static_cast<std::uint32_t>(link);
  }
  for (std::uint32_t y = 0; y < cells_; ++y) {
    if (filled[y] != 2) {
      throw std::invalid_argument(
          "FlatWiring: connection is not a valid stage (in-degree != 2)");
    }
  }
}

FlatWiring FlatWiring::from_digraph(const MIDigraph& g) {
  FlatWiring wiring(g.stages(), g.cells_per_stage());
  std::vector<std::uint32_t> child_of_link(wiring.links_per_stage());
  std::vector<std::uint8_t> filled(wiring.cells_);
  for (int s = 0; s + 1 < g.stages(); ++s) {
    const Connection& conn = g.connection(s);
    for (std::uint32_t x = 0; x < wiring.cells_; ++x) {
      child_of_link[2 * x] = conn.f_table()[x];
      child_of_link[2 * x + 1] = conn.g_table()[x];
    }
    wiring.pack_stage(s, child_of_link, filled);
  }
  return wiring;
}

FlatWiring FlatWiring::from_pipids(
    const std::vector<perm::IndexPermutation>& pipids) {
  if (pipids.empty()) {
    throw std::invalid_argument("FlatWiring::from_pipids: need >= 1 wiring");
  }
  const int stages = static_cast<int>(pipids.size()) + 1;
  const int w = stages - 1;
  FlatWiring wiring(stages, std::uint32_t{1} << w);
  std::vector<std::uint32_t> child_of_link(wiring.links_per_stage());
  std::vector<std::uint8_t> filled(wiring.cells_);
  std::vector<int> source(static_cast<std::size_t>(w));
  constexpr int kPort = -1;
  for (int s = 0; s + 1 < stages; ++s) {
    const perm::IndexPermutation& ip = pipids[static_cast<std::size_t>(s)];
    if (ip.width() != stages) {
      throw std::invalid_argument(
          "FlatWiring::from_pipids: PIPID width must equal stage count");
    }
    // The paper's closed bit formula (Section 4): child bit b is the port
    // when theta(b+1) == 0, else cell bit theta(b+1) - 1.
    for (int b = 0; b < w; ++b) {
      const int t = ip.theta_of(b + 1);
      source[static_cast<std::size_t>(b)] = (t == 0) ? kPort : t - 1;
    }
    for (std::uint32_t x = 0; x < wiring.cells_; ++x) {
      for (unsigned port = 0; port < 2; ++port) {
        std::uint32_t c = 0;
        for (int b = 0; b < w; ++b) {
          const int src = source[static_cast<std::size_t>(b)];
          const unsigned bit = (src == kPort) ? port : util::get_bit(x, src);
          c |= static_cast<std::uint32_t>(bit) << b;
        }
        child_of_link[2 * x + port] = c;
      }
    }
    wiring.pack_stage(s, child_of_link, filled);
  }
  return wiring;
}

}  // namespace mineq::min
