#include "min/buddy.hpp"

#include <algorithm>
#include <stdexcept>

namespace mineq::min {

std::optional<std::uint32_t> buddy_partner(const Connection& conn,
                                           std::uint32_t x) {
  if (x >= conn.cells()) {
    throw std::invalid_argument("buddy_partner: cell out of range");
  }
  std::array<std::uint32_t, 2> mine = conn.children(x);
  std::sort(mine.begin(), mine.end());
  if (mine[0] == mine[1]) return std::nullopt;  // parallel arcs
  std::optional<std::uint32_t> partner;
  // Partner = the other parent of f(x); then its children must equal ours.
  for (std::uint32_t parent : conn.parents(mine[0])) {
    if (parent != x) {
      partner = parent;
      break;
    }
  }
  if (!partner.has_value()) return std::nullopt;
  std::array<std::uint32_t, 2> theirs = conn.children(*partner);
  std::sort(theirs.begin(), theirs.end());
  if (theirs != mine) return std::nullopt;
  return partner;
}

bool has_buddy_property(const Connection& conn) {
  if (!conn.is_valid_stage()) return false;
  for (std::uint32_t x = 0; x < conn.cells(); ++x) {
    const auto partner = buddy_partner(conn, x);
    if (!partner.has_value() || *partner == x) return false;
  }
  return true;
}

bool has_buddy_property(const MIDigraph& g) {
  for (const Connection& conn : g.connections()) {
    if (!has_buddy_property(conn)) return false;
  }
  return true;
}

}  // namespace mineq::min
