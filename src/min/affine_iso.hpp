/// \file affine_iso.hpp
/// \brief Explicit isomorphisms between networks built from independent
/// connections, synthesized by GF(2) linear algebra.
///
/// Theorem 3 guarantees that Banyan networks built from independent
/// connections are isomorphic, but its proof (via the component
/// characterization) is not constructive. This module *constructs* the
/// isomorphism for the linear case: since every independent connection is
/// f = Lx ^ c, g = Lx ^ d, we look for per-stage affine bijections
/// A_s(x) = M_s x ^ a_s intertwining the two networks as unordered
/// child-set maps:
///
///     { A_{s+1}(f_s(x)), A_{s+1}(g_s(x)) } = { f*_s(A_s(x)), g*_s(A_s(x)) }.
///
/// Because each per-cell match is either straight or swapped, and the
/// difference between the two targets is the constant t*_s = c*_s ^ d*_s,
/// the matching is captured by one affine functional h_s per stage:
///
///     A_{s+1}(f_s(x)) = f*_s(A_s x) ^ t*_s h_s(x)     (same h for g).
///
/// Chaining these relations makes every later M_{s+1} a *linear* function
/// of the unknowns (the w^2 entries of M_1 and the w+1 coefficients of
/// each h_s):
///   - L_s invertible:  M_{s+1} = (L*_s M_s ^ t*_s (x) h_lin) L_s^{-1},
///     plus the constraint M_{s+1}(c_s ^ d_s) = t*_s;
///   - rank L_s = w-1 (kernel alpha): M_{s+1} is pinned on the basis
///     (L_s x_1, ..., L_s x_{w-1}, c_s ^ d_s), plus the well-definedness
///     constraint L*_s M_s alpha = t*_s h_lin(alpha).
/// One GF(2) elimination yields the whole solution space; solutions are
/// sampled until the entire M-chain is invertible, and the winner is
/// verified arc-by-arc before being returned. The translation parts a_s
/// propagate from a_1 = 0 and the h constants.
///
/// The family covers mixed stage shapes (case 1 against case 2) thanks to
/// the rank-one h-correction. It is still a *family*: if no affine
/// solution exists the function returns nullopt and callers fall back to
/// the general search (find_explicit_isomorphism does this automatically).

#pragma once

#include <optional>
#include <vector>

#include "gf2/affine.hpp"
#include "graph/isomorphism.hpp"
#include "min/mi_digraph.hpp"
#include "util/rng.hpp"

namespace mineq::min {

/// A per-stage affine isomorphism between two MI-digraphs.
struct AffineIso {
  /// One bijective affine map per stage; stage_maps[s] sends cells of
  /// stage s of the source network to cells of stage s of the target.
  std::vector<gf2::AffineMap> stage_maps;

  /// Flatten into index tables (the graph-level mapping format).
  [[nodiscard]] graph::LayeredMapping to_layered_mapping() const;
};

/// Synthesize an affine isomorphism from \p g to \p h, or nullopt when
/// (a) some connection is not independent, (b) the stage cases (case 1 vs
/// case 2) mismatch — which rules out the straight-pairing affine family,
/// though NOT general isomorphism (a Banyan case-1 network is still
/// baseline-equivalent by Theorem 3) — or (c) the family contains no
/// solution. \p attempts bounds the random search for an invertible
/// element of the solution space.
[[nodiscard]] std::optional<AffineIso> synthesize_affine_isomorphism(
    const MIDigraph& g, const MIDigraph& h, util::SplitMix64& rng,
    int attempts = 512);

/// Check an AffineIso arc-by-arc (unordered child sets). O(stages*cells).
[[nodiscard]] bool verify_affine_isomorphism(const MIDigraph& g,
                                             const MIDigraph& h,
                                             const AffineIso& iso);

/// Best-effort explicit isomorphism: try the affine synthesizer, fall back
/// to the general layered search within \p fallback_budget node
/// expansions. Returns nullopt if neither finds one.
[[nodiscard]] std::optional<graph::LayeredMapping> find_explicit_isomorphism(
    const MIDigraph& g, const MIDigraph& h, util::SplitMix64& rng,
    std::uint64_t fallback_budget = 50'000'000);

}  // namespace mineq::min
