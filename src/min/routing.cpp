#include "min/routing.hpp"

#include <stdexcept>

#include "util/bitops.hpp"

namespace mineq::min {

std::optional<Route> find_route(const MIDigraph& g, std::uint32_t source,
                                std::uint32_t sink) {
  const std::uint32_t cells = g.cells_per_stage();
  if (source >= cells || sink >= cells) {
    throw std::invalid_argument("find_route: endpoint out of range");
  }
  const int n = g.stages();
  // Backward sweep: can_reach[s][x] = does x at stage s reach sink?
  std::vector<std::vector<char>> can_reach(
      static_cast<std::size_t>(n), std::vector<char>(cells, 0));
  can_reach[static_cast<std::size_t>(n - 1)][sink] = 1;
  for (int s = n - 2; s >= 0; --s) {
    const Connection& conn = g.connection(s);
    for (std::uint32_t x = 0; x < cells; ++x) {
      can_reach[static_cast<std::size_t>(s)][x] =
          can_reach[static_cast<std::size_t>(s + 1)][conn.f_table()[x]] ||
          can_reach[static_cast<std::size_t>(s + 1)][conn.g_table()[x]];
    }
  }
  if (!can_reach[0][source]) return std::nullopt;

  Route route;
  route.cells.push_back(source);
  std::uint32_t x = source;
  for (int s = 0; s + 1 < n; ++s) {
    const Connection& conn = g.connection(s);
    const std::uint32_t via_f = conn.f_table()[x];
    if (can_reach[static_cast<std::size_t>(s + 1)][via_f]) {
      route.ports.push_back(0);
      x = via_f;
    } else {
      route.ports.push_back(1);
      x = conn.g_table()[x];
    }
    route.cells.push_back(x);
  }
  return route;
}

std::optional<BitSchedule> find_bit_schedule(const MIDigraph& g) {
  const std::uint32_t cells = g.cells_per_stage();
  const int n = g.stages();
  const int w = g.width();
  if (n < 2) return BitSchedule{};

  // Candidate (bit, invert) per stage: start with all and intersect over
  // observed routes.
  std::vector<std::vector<char>> alive(
      static_cast<std::size_t>(n - 1),
      std::vector<char>(static_cast<std::size_t>(2 * std::max(w, 1)), 1));

  for (std::uint32_t src = 0; src < cells; ++src) {
    for (std::uint32_t dst = 0; dst < cells; ++dst) {
      const auto route = find_route(g, src, dst);
      if (!route.has_value()) return std::nullopt;
      for (int s = 0; s + 1 < n; ++s) {
        auto& stage_alive = alive[static_cast<std::size_t>(s)];
        const unsigned port = route->ports[static_cast<std::size_t>(s)];
        for (int b = 0; b < w; ++b) {
          const unsigned bit = util::get_bit(dst, b);
          if (bit != port) stage_alive[static_cast<std::size_t>(2 * b)] = 0;
          if ((bit ^ 1U) != port) {
            stage_alive[static_cast<std::size_t>(2 * b + 1)] = 0;
          }
        }
      }
    }
  }

  BitSchedule schedule;
  for (int s = 0; s + 1 < n; ++s) {
    const auto& stage_alive = alive[static_cast<std::size_t>(s)];
    int chosen = -1;
    for (int b = 0; b < w && chosen < 0; ++b) {
      if (stage_alive[static_cast<std::size_t>(2 * b)] != 0) chosen = 2 * b;
      else if (stage_alive[static_cast<std::size_t>(2 * b + 1)] != 0) {
        chosen = 2 * b + 1;
      }
    }
    if (chosen < 0) return std::nullopt;
    schedule.bit.push_back(chosen / 2);
    schedule.invert.push_back(static_cast<unsigned>(chosen & 1));
  }
  return schedule;
}

Route route_with_schedule(const MIDigraph& g, const BitSchedule& schedule,
                          std::uint32_t source, std::uint32_t sink) {
  const int n = g.stages();
  if (schedule.bit.size() != static_cast<std::size_t>(n - 1) ||
      schedule.invert.size() != static_cast<std::size_t>(n - 1)) {
    throw std::invalid_argument("route_with_schedule: schedule arity");
  }
  Route route;
  route.cells.push_back(source);
  std::uint32_t x = source;
  for (int s = 0; s + 1 < n; ++s) {
    const unsigned port =
        util::get_bit(sink, schedule.bit[static_cast<std::size_t>(s)]) ^
        schedule.invert[static_cast<std::size_t>(s)];
    route.ports.push_back(port);
    const Connection& conn = g.connection(s);
    x = port == 0 ? conn.f_table()[x] : conn.g_table()[x];
    route.cells.push_back(x);
  }
  return route;
}

bool verify_bit_schedule(const MIDigraph& g, const BitSchedule& schedule) {
  const std::uint32_t cells = g.cells_per_stage();
  for (std::uint32_t src = 0; src < cells; ++src) {
    for (std::uint32_t dst = 0; dst < cells; ++dst) {
      const Route route = route_with_schedule(g, schedule, src, dst);
      if (route.cells.back() != dst) return false;
    }
  }
  return true;
}

}  // namespace mineq::min
