#include "min/routing.hpp"

#include <stdexcept>

#include "util/bitops.hpp"

namespace mineq::min {

std::optional<Route> find_route(const MIDigraph& g, std::uint32_t source,
                                std::uint32_t sink) {
  const std::uint32_t cells = g.cells_per_stage();
  if (source >= cells || sink >= cells) {
    throw std::invalid_argument("find_route: endpoint out of range");
  }
  const int n = g.stages();
  // Backward sweep: can_reach[s][x] = does x at stage s reach sink?
  std::vector<std::vector<char>> can_reach(
      static_cast<std::size_t>(n), std::vector<char>(cells, 0));
  can_reach[static_cast<std::size_t>(n - 1)][sink] = 1;
  for (int s = n - 2; s >= 0; --s) {
    const Connection& conn = g.connection(s);
    for (std::uint32_t x = 0; x < cells; ++x) {
      can_reach[static_cast<std::size_t>(s)][x] =
          can_reach[static_cast<std::size_t>(s + 1)][conn.f_table()[x]] ||
          can_reach[static_cast<std::size_t>(s + 1)][conn.g_table()[x]];
    }
  }
  if (!can_reach[0][source]) return std::nullopt;

  Route route;
  route.cells.push_back(source);
  std::uint32_t x = source;
  for (int s = 0; s + 1 < n; ++s) {
    const Connection& conn = g.connection(s);
    const std::uint32_t via_f = conn.f_table()[x];
    if (can_reach[static_cast<std::size_t>(s + 1)][via_f]) {
      route.ports.push_back(0);
      x = via_f;
    } else {
      route.ports.push_back(1);
      x = conn.g_table()[x];
    }
    route.cells.push_back(x);
  }
  return route;
}

std::optional<BitSchedule> find_bit_schedule(const MIDigraph& g) {
  const std::uint32_t cells = g.cells_per_stage();
  const int n = g.stages();
  const int w = g.width();
  if (n < 2) return BitSchedule{};

  // Candidate (bit, invert) per stage: start with all and intersect over
  // observed routes.
  std::vector<std::vector<char>> alive(
      static_cast<std::size_t>(n - 1),
      std::vector<char>(static_cast<std::size_t>(2 * std::max(w, 1)), 1));

  for (std::uint32_t src = 0; src < cells; ++src) {
    for (std::uint32_t dst = 0; dst < cells; ++dst) {
      const auto route = find_route(g, src, dst);
      if (!route.has_value()) return std::nullopt;
      for (int s = 0; s + 1 < n; ++s) {
        auto& stage_alive = alive[static_cast<std::size_t>(s)];
        const unsigned port = route->ports[static_cast<std::size_t>(s)];
        for (int b = 0; b < w; ++b) {
          const unsigned bit = util::get_bit(dst, b);
          if (bit != port) stage_alive[static_cast<std::size_t>(2 * b)] = 0;
          if ((bit ^ 1U) != port) {
            stage_alive[static_cast<std::size_t>(2 * b + 1)] = 0;
          }
        }
      }
    }
  }

  BitSchedule schedule;
  for (int s = 0; s + 1 < n; ++s) {
    const auto& stage_alive = alive[static_cast<std::size_t>(s)];
    int chosen = -1;
    for (int b = 0; b < w && chosen < 0; ++b) {
      if (stage_alive[static_cast<std::size_t>(2 * b)] != 0) chosen = 2 * b;
      else if (stage_alive[static_cast<std::size_t>(2 * b + 1)] != 0) {
        chosen = 2 * b + 1;
      }
    }
    if (chosen < 0) return std::nullopt;
    schedule.bit.push_back(chosen / 2);
    schedule.invert.push_back(static_cast<unsigned>(chosen & 1));
  }
  return schedule;
}

Route route_with_schedule(const MIDigraph& g, const BitSchedule& schedule,
                          std::uint32_t source, std::uint32_t sink) {
  const int n = g.stages();
  if (schedule.bit.size() != static_cast<std::size_t>(n - 1) ||
      schedule.invert.size() != static_cast<std::size_t>(n - 1)) {
    throw std::invalid_argument("route_with_schedule: schedule arity");
  }
  Route route;
  route.cells.push_back(source);
  std::uint32_t x = source;
  for (int s = 0; s + 1 < n; ++s) {
    const unsigned port =
        util::get_bit(sink, schedule.bit[static_cast<std::size_t>(s)]) ^
        schedule.invert[static_cast<std::size_t>(s)];
    route.ports.push_back(port);
    const Connection& conn = g.connection(s);
    x = port == 0 ? conn.f_table()[x] : conn.g_table()[x];
    route.cells.push_back(x);
  }
  return route;
}

bool verify_bit_schedule(const MIDigraph& g, const BitSchedule& schedule) {
  const std::uint32_t cells = g.cells_per_stage();
  for (std::uint32_t src = 0; src < cells; ++src) {
    for (std::uint32_t dst = 0; dst < cells; ++dst) {
      const Route route = route_with_schedule(g, schedule, src, dst);
      if (route.cells.back() != dst) return false;
    }
  }
  return true;
}

std::optional<DigitSchedule> find_digit_schedule(const FlatWiring& w) {
  const auto radix = static_cast<unsigned>(w.radix());
  const std::uint32_t cells = w.cells_per_stage();
  const int n = w.stages();
  DigitSchedule schedule;
  schedule.radix = w.radix();
  if (n < 2) return schedule;
  const int digits = n - 1;

  // Per (stage, sink): the single out-port every on-path cell takes
  // toward the sink, via one backward reachability sweep per sink.
  std::vector<std::vector<unsigned>> port(
      static_cast<std::size_t>(n - 1), std::vector<unsigned>(cells, 0));
  std::vector<std::vector<char>> reach(
      static_cast<std::size_t>(n), std::vector<char>(cells, 0));
  for (std::uint32_t sink = 0; sink < cells; ++sink) {
    for (auto& row : reach) std::fill(row.begin(), row.end(), 0);
    reach[static_cast<std::size_t>(n - 1)][sink] = 1;
    for (int s = n - 2; s >= 0; --s) {
      const auto& next = reach[static_cast<std::size_t>(s + 1)];
      auto& here = reach[static_cast<std::size_t>(s)];
      for (std::uint32_t x = 0; x < cells; ++x) {
        for (unsigned t = 0; t < radix; ++t) {
          if (next[w.child(s, x, t)] != 0) {
            here[x] = 1;
            break;
          }
        }
      }
    }
    for (std::uint32_t src = 0; src < cells; ++src) {
      if (reach[0][src] == 0) return std::nullopt;  // no full access
    }
    // Destination-tag routing means the port toward `sink` at stage s is
    // the same from every on-path cell; with multiple valid ports the
    // lexicographically first is fitted (exact for unique-path fabrics).
    for (int s = 0; s + 1 < n; ++s) {
      const auto& here = reach[static_cast<std::size_t>(s)];
      const auto& next = reach[static_cast<std::size_t>(s + 1)];
      int chosen = -1;
      for (std::uint32_t x = 0; x < cells; ++x) {
        if (here[x] == 0) continue;
        int first = -1;
        for (unsigned t = 0; t < radix; ++t) {
          if (next[w.child(s, x, t)] != 0) {
            first = static_cast<int>(t);
            break;
          }
        }
        if (chosen < 0) {
          chosen = first;
        } else if (chosen != first) {
          return std::nullopt;  // port depends on the current cell
        }
      }
      port[static_cast<std::size_t>(s)][sink] =
          static_cast<unsigned>(chosen);
    }
  }

  // Fit one destination digit (and its value-to-port map) per stage.
  std::vector<std::uint32_t> power(static_cast<std::size_t>(digits), 1);
  for (int i = 1; i < digits; ++i) {
    power[static_cast<std::size_t>(i)] =
        power[static_cast<std::size_t>(i - 1)] * radix;
  }
  for (int s = 0; s + 1 < n; ++s) {
    const auto& stage_port = port[static_cast<std::size_t>(s)];
    bool fitted = false;
    for (int i = 0; i < digits && !fitted; ++i) {
      std::vector<int> map(radix, -1);
      bool ok = true;
      for (std::uint32_t sink = 0; sink < cells && ok; ++sink) {
        const unsigned value =
            (sink / power[static_cast<std::size_t>(i)]) % radix;
        if (map[value] < 0) {
          map[value] = static_cast<int>(stage_port[sink]);
        } else if (map[value] != static_cast<int>(stage_port[sink])) {
          ok = false;
        }
      }
      if (!ok) continue;
      schedule.digit.push_back(i);
      std::vector<unsigned> values(radix, 0);
      for (unsigned v = 0; v < radix; ++v) {
        values[v] = static_cast<unsigned>(map[v]);
      }
      schedule.port_of_value.push_back(std::move(values));
      fitted = true;
    }
    if (!fitted) return std::nullopt;  // not digit-routable
  }
  return schedule;
}

std::vector<std::uint32_t> route_with_digit_schedule(
    const FlatWiring& w, const DigitSchedule& schedule, std::uint32_t source,
    std::uint32_t sink) {
  const int n = w.stages();
  if (schedule.radix != w.radix() ||
      schedule.digit.size() != static_cast<std::size_t>(n - 1) ||
      schedule.port_of_value.size() != static_cast<std::size_t>(n - 1)) {
    throw std::invalid_argument("route_with_digit_schedule: schedule arity");
  }
  const auto radix = static_cast<unsigned>(w.radix());
  std::vector<std::uint32_t> cells_visited;
  cells_visited.reserve(static_cast<std::size_t>(n));
  cells_visited.push_back(source);
  std::uint32_t x = source;
  for (int s = 0; s + 1 < n; ++s) {
    std::uint32_t scale = 1;
    for (int i = 0; i < schedule.digit[static_cast<std::size_t>(s)]; ++i) {
      scale *= radix;
    }
    const unsigned value = (sink / scale) % radix;
    const unsigned port =
        schedule.port_of_value[static_cast<std::size_t>(s)][value];
    x = w.child(s, x, port);
    cells_visited.push_back(x);
  }
  return cells_visited;
}

bool verify_digit_schedule(const FlatWiring& w,
                           const DigitSchedule& schedule) {
  const std::uint32_t cells = w.cells_per_stage();
  for (std::uint32_t src = 0; src < cells; ++src) {
    for (std::uint32_t dst = 0; dst < cells; ++dst) {
      if (route_with_digit_schedule(w, schedule, src, dst).back() != dst) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace mineq::min
