/// \file labels.hpp
/// \brief Label conventions for cells and links of an n-stage MIN.
///
/// Following the paper (Section 3 and 4):
///   - An n-stage network over N = 2^n terminals has 2^(n-1) cells per
///     stage, labelled 0 .. 2^(n-1)-1, read as (n-1)-bit tuples
///     (x_{n-1}, ..., x_1).
///   - The two links leaving a cell x carry n-bit labels: y = (x, p) with
///     port bit p in {0,1}, i.e. y = 2x + p. The n-1 high bits of a link
///     label are exactly the label of the incident cell.
///
/// Stage indices in this codebase are 0-based (0 .. n-1); the paper's
/// stage i is our stage i-1.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gf2/bitvec.hpp"

namespace mineq::min {

/// Cell-label width for an n-stage network: n-1 bits.
[[nodiscard]] int cell_width(int stages);

/// Number of cells per stage: 2^(n-1).
[[nodiscard]] std::uint32_t cells_per_stage(int stages);

/// Number of terminals N = 2^n.
[[nodiscard]] std::uint64_t terminal_count(int stages);

/// Compose a link label from a cell label and a port bit.
[[nodiscard]] std::uint32_t link_label(std::uint32_t cell, unsigned port);

/// The cell incident to a link (drop the port bit).
[[nodiscard]] std::uint32_t link_cell(std::uint32_t link);

/// The port bit of a link label.
[[nodiscard]] unsigned link_port(std::uint32_t link);

/// Cell label as a BitVec of the right width.
[[nodiscard]] gf2::BitVec cell_vec(std::uint32_t cell, int stages);

/// The paper's Figure-2 style labels for one stage: "(0,0,0)", "(0,0,1)",
/// ... in natural order.
[[nodiscard]] std::vector<std::string> stage_label_strings(int stages);

/// Link labels for one stage, as n-bit tuples in natural order:
/// "(0,0,0,0)", "(0,0,0,1)", ...
[[nodiscard]] std::vector<std::string> link_label_strings(int stages);

}  // namespace mineq::min
