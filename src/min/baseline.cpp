#include "min/baseline.hpp"

#include <array>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "graph/components.hpp"
#include "util/bitops.hpp"

namespace mineq::min {

MIDigraph baseline_network(int stages) {
  if (stages < 1 || stages > util::kMaxBits) {
    throw std::invalid_argument("baseline_network: stages out of range");
  }
  const int w = stages - 1;
  std::vector<Connection> connections;
  connections.reserve(static_cast<std::size_t>(w));
  for (int s = 0; s < w; ++s) {
    const std::uint32_t m = (std::uint32_t{1} << (w - s)) - 1;
    const std::uint32_t half = std::uint32_t{1} << (w - s - 1);
    connections.push_back(Connection::from_functions(
        w,
        [&](std::uint32_t y) { return (y & ~m) | ((y & m) >> 1); },
        [&](std::uint32_t y) {
          return ((y & ~m) | ((y & m) >> 1)) ^ half;
        }));
  }
  return MIDigraph(stages, std::move(connections));
}

MIDigraph baseline_network_recursive(int stages) {
  if (stages < 1 || stages > util::kMaxBits) {
    throw std::invalid_argument(
        "baseline_network_recursive: stages out of range");
  }
  if (stages == 1) return MIDigraph(1, {});

  const MIDigraph sub = baseline_network_recursive(stages - 1);
  const int w = stages - 1;
  const std::uint32_t sub_cells = std::uint32_t{1} << (w - 1);

  std::vector<Connection> connections;
  connections.reserve(static_cast<std::size_t>(w));
  // First stage: cells 2i and 2i+1 both feed cell i of sub-network 0
  // (low half) and cell i of sub-network 1 (high half).
  connections.push_back(Connection::from_functions(
      w, [&](std::uint32_t y) { return y >> 1; },
      [&](std::uint32_t y) { return (y >> 1) | sub_cells; }));
  // Remaining stages: the two sub-baselines run in parallel, one on the
  // low half of the cells and one on the high half.
  for (int s = 0; s + 1 < sub.stages(); ++s) {
    const Connection& inner = sub.connection(s);
    connections.push_back(Connection::from_functions(
        w,
        [&](std::uint32_t y) {
          const std::uint32_t high = y & sub_cells;
          return high | inner.f_table()[y & (sub_cells - 1)];
        },
        [&](std::uint32_t y) {
          const std::uint32_t high = y & sub_cells;
          return high | inner.g_table()[y & (sub_cells - 1)];
        }));
  }
  return MIDigraph(stages, std::move(connections));
}

MIDigraph reverse_baseline_network(int stages) {
  return baseline_network(stages).reverse();
}

namespace {

/// Extract the sub-MIDigraph induced by one component of (G)_{1..n-1}.
/// \p member[s][x] says whether cell x of stage 1+s belongs to the
/// component. Returns nullopt if the component does not meet every stage
/// in the same power-of-two cell count.
std::optional<MIDigraph> extract_component(
    const MIDigraph& g, const std::vector<std::vector<bool>>& member) {
  const int sub_stages = g.stages() - 1;
  const std::uint32_t cells = g.cells_per_stage();
  // Build per-stage dense reindexing of member cells.
  std::vector<std::vector<std::uint32_t>> to_local(
      static_cast<std::size_t>(sub_stages),
      std::vector<std::uint32_t>(cells, 0xFFFFFFFFu));
  std::size_t per_stage = 0;
  for (int s = 0; s < sub_stages; ++s) {
    std::uint32_t next = 0;
    for (std::uint32_t x = 0; x < cells; ++x) {
      if (member[static_cast<std::size_t>(s)][x]) {
        to_local[static_cast<std::size_t>(s)][x] = next++;
      }
    }
    if (s == 0) {
      per_stage = next;
    } else if (per_stage != next) {
      return std::nullopt;
    }
  }
  if (per_stage == 0 || (per_stage & (per_stage - 1)) != 0) {
    return std::nullopt;
  }
  if (per_stage != cells / 2) return std::nullopt;
  const int sub_width = util::ilog2(per_stage);
  if (sub_width != sub_stages - 1) return std::nullopt;

  std::vector<Connection> connections;
  for (int s = 0; s + 1 < sub_stages; ++s) {
    std::vector<std::uint32_t> f(per_stage);
    std::vector<std::uint32_t> gg(per_stage);
    const Connection& conn = g.connection(s + 1);
    for (std::uint32_t x = 0; x < cells; ++x) {
      const std::uint32_t local = to_local[static_cast<std::size_t>(s)][x];
      if (local == 0xFFFFFFFFu) continue;
      const std::uint32_t cf =
          to_local[static_cast<std::size_t>(s + 1)][conn.f_table()[x]];
      const std::uint32_t cg =
          to_local[static_cast<std::size_t>(s + 1)][conn.g_table()[x]];
      if (cf == 0xFFFFFFFFu || cg == 0xFFFFFFFFu) {
        return std::nullopt;  // arc leaves the component: impossible
      }
      f[local] = cf;
      gg[local] = cg;
    }
    connections.emplace_back(std::move(f), std::move(gg), sub_width);
  }
  return MIDigraph(sub_stages, std::move(connections));
}

}  // namespace

bool is_left_recursive_baseline(const MIDigraph& g) {
  if (g.stages() == 1) return true;
  if (!g.is_valid()) return false;
  const std::uint32_t cells = g.cells_per_stage();

  // Stages 1..n-1 must split into exactly two components.
  const graph::LayeredDigraph tail = g.layered_range(1, g.stages() - 1);
  const graph::ComponentLabeling comps =
      graph::connected_components(tail.flatten());
  if (comps.count != 2) return false;

  const int sub_stages = g.stages() - 1;
  std::array<std::vector<std::vector<bool>>, 2> member;
  for (auto& m : member) {
    m.assign(static_cast<std::size_t>(sub_stages),
             std::vector<bool>(cells, false));
  }
  for (int s = 0; s < sub_stages; ++s) {
    for (std::uint32_t x = 0; x < cells; ++x) {
      const std::uint32_t flat =
          static_cast<std::uint32_t>(s) * cells + x;
      member[comps.labels[flat]][static_cast<std::size_t>(s)][x] = true;
    }
  }

  // Every first-stage cell must have one child in each component, and the
  // K_{2,2} pairing must hold: both parents of a stage-1 cell agree on
  // their pair of children.
  const Connection& first = g.connection(0);
  std::vector<std::array<std::uint32_t, 2>> pair_of(cells);
  for (std::uint32_t y = 0; y < cells; ++y) {
    const std::uint32_t cf = first.f_table()[y];
    const std::uint32_t cg = first.g_table()[y];
    const bool f_in_0 = member[0][0][cf];
    const bool g_in_0 = member[0][0][cg];
    if (f_in_0 == g_in_0) return false;  // both children in one component
    pair_of[y] = f_in_0 ? std::array<std::uint32_t, 2>{cf, cg}
                        : std::array<std::uint32_t, 2>{cg, cf};
  }
  // Each (component-0 cell, component-1 cell) pair must be hit by exactly
  // two stage-0 cells ("nodes 2i and 2i+1 ... to the ith nodes").
  std::unordered_map<std::uint64_t, std::uint32_t> pair_count;
  pair_count.reserve(cells);
  for (std::uint32_t y = 0; y < cells; ++y) {
    const std::uint64_t index =
        static_cast<std::uint64_t>(pair_of[y][0]) * cells + pair_of[y][1];
    if (++pair_count[index] > 2) return false;
  }
  for (const auto& [index, count] : pair_count) {
    if (count != 2) return false;
  }

  // Recurse into both sub-networks.
  for (const auto& m : member) {
    const auto sub = extract_component(g, m);
    if (!sub.has_value()) return false;
    if (!is_left_recursive_baseline(*sub)) return false;
  }
  return true;
}

}  // namespace mineq::min
