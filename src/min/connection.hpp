/// \file connection.hpp
/// \brief The paper's inter-stage connections: pairs of functions (f, g).
///
/// "For all i != n, a connection (f, g) between the ith stage and the
/// (i+1)st stage ... is a pair of functions f and g defined on Z_2^{n-1}
/// such that, if x is a node of the ith stage then the two children of x
/// are f(x) and g(x)."
///
/// A Connection stores the two image tables explicitly, so arbitrary (also
/// non-independent, non-valid) connections can be represented and analyzed.
/// The independence test and the structural (L, c_f, c_g) decomposition
/// live in min/independence.hpp; this header owns the combinatorial side:
/// degree validity, vertex types, and the Proposition 1 reverse
/// construction.

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "gf2/affine.hpp"
#include "perm/permutation.hpp"
#include "util/rng.hpp"

namespace mineq::min {

/// Incoming-arc type of a next-stage vertex, per the proof of
/// Proposition 1: a vertex y is of type (h1, h2) if its two incoming arcs
/// are h1(x) = y and h2(x') = y.
enum class VertexType : std::uint8_t {
  kFF,  ///< both parents reach y through f
  kFG,  ///< one f-arc and one g-arc
  kGG,  ///< both parents reach y through g
  kBad  ///< in-degree != 2 (connection is not a valid MI-digraph stage)
};

/// A connection (f, g) on Z_2^width.
class Connection {
 public:
  /// The unique width-0 connection (single cell, both children = it).
  Connection();

  /// From explicit image tables (each of size 2^width, entries < 2^width).
  Connection(std::vector<std::uint32_t> f, std::vector<std::uint32_t> g,
             int width);

  /// From callables evaluated over the whole domain.
  [[nodiscard]] static Connection from_functions(
      int width, const std::function<std::uint32_t(std::uint32_t)>& f,
      const std::function<std::uint32_t(std::uint32_t)>& g);

  /// From a pair of affine maps (the shape every independent connection
  /// has; see min/independence.hpp).
  [[nodiscard]] static Connection from_affine(const gf2::AffineMap& f,
                                              const gf2::AffineMap& g);

  /// From a permutation of the 2^(width+1) link labels: link (x, p) of the
  /// left stage is wired to link P(2x+p) of the right stage, and the child
  /// cell is the top bits of that label. Port 0 defines f, port 1 defines
  /// g — for PIPID permutations this matches the paper's Section 4 choice
  /// (f forces the k-th bit to 0, g to 1).
  [[nodiscard]] static Connection from_link_permutation(
      const perm::Permutation& link_perm);

  /// Random valid stage: f and g are independent uniform permutations of
  /// the cells (every next-stage cell then has in-degree exactly 2).
  /// The result is almost surely *not* an independent connection.
  [[nodiscard]] static Connection random_valid(int width,
                                               util::SplitMix64& rng);

  /// Random independent connection of case 1: f = Lx ^ c_f, g = Lx ^ c_g
  /// with L invertible and c_f != c_g (all next-stage vertices type (f,g)).
  [[nodiscard]] static Connection random_independent_case1(
      int width, util::SplitMix64& rng);

  /// Random independent connection of case 2: rank(L) = width-1 and
  /// c_f ^ c_g outside Im(L) (vertex types split half (f,f), half (g,g)).
  /// Requires width >= 1.
  [[nodiscard]] static Connection random_independent_case2(
      int width, util::SplitMix64& rng);

  [[nodiscard]] int width() const noexcept { return width_; }

  /// Number of cells 2^width on each side.
  [[nodiscard]] std::uint32_t cells() const noexcept {
    return std::uint32_t{1} << width_;
  }

  [[nodiscard]] std::uint32_t f(std::uint32_t x) const;
  [[nodiscard]] std::uint32_t g(std::uint32_t x) const;

  /// Both children of \p x, in (f, g) order.
  [[nodiscard]] std::array<std::uint32_t, 2> children(std::uint32_t x) const;

  [[nodiscard]] const std::vector<std::uint32_t>& f_table() const noexcept {
    return f_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& g_table() const noexcept {
    return g_;
  }

  /// Swap the roles of f and g globally.
  [[nodiscard]] Connection swapped() const;

  /// True iff every next-stage vertex has in-degree exactly 2 — the degree
  /// requirement for an MI-digraph stage. Parallel arcs (f(x) == g(x))
  /// are allowed by this check (cf. the paper's Fig. 5).
  [[nodiscard]] bool is_valid_stage() const;

  /// True iff some cell has both children equal (double links, Fig. 5).
  [[nodiscard]] bool has_parallel_arcs() const;

  /// In-degree of next-stage vertex \p y.
  [[nodiscard]] std::uint32_t in_degree(std::uint32_t y) const;

  /// The parents of next-stage vertex \p y (each listed once per arc).
  [[nodiscard]] std::vector<std::uint32_t> parents(std::uint32_t y) const;

  /// Vertex types of all next-stage vertices.
  [[nodiscard]] std::vector<VertexType> vertex_types() const;

  /// Counts of (f,f) / (f,g) / (g,g) / bad vertices, in that order.
  [[nodiscard]] std::array<std::size_t, 4> vertex_type_counts() const;

  /// Proposition 1: the reverse of an *independent* connection, as an
  /// independent connection (phi, psi) from stage i+1 back to stage i.
  /// Implements both cases of the proof:
  ///   - all vertices (f,g): phi = f^{-1}, psi = g^{-1};
  ///   - half (f,f), half (g,g): phi(y) = parent of y in A, psi(y) =
  ///     parent in B, where A is spanned by a complement of the kernel
  ///     vector alpha_1 and B is its alpha_1-translate.
  /// \throws std::invalid_argument if the connection is not independent or
  /// not a valid stage.
  [[nodiscard]] Connection reverse_independent() const;

  /// Reverse of any valid stage, splitting each vertex's two parents
  /// arbitrarily (smaller parent into the first function). Adequate when
  /// only the reversed *digraph* matters, not the (phi, psi) structure.
  /// \throws std::invalid_argument if not a valid stage.
  [[nodiscard]] Connection reverse_generic() const;

  friend bool operator==(const Connection&, const Connection&) = default;

  /// "x: f -> a, g -> b" listing, one cell per line (for small widths).
  [[nodiscard]] std::string str() const;

 private:
  int width_ = 0;
  std::vector<std::uint32_t> f_;
  std::vector<std::uint32_t> g_;
};

}  // namespace mineq::min
