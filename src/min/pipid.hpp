/// \file pipid.hpp
/// \brief Section 4: from PIPID link permutations to cell connections.
///
/// Link labels between two stages carry n bits; the n-1 high bits are the
/// cell label and bit 0 is the out-port. Wiring a stage with a PIPID
/// Lambda_theta gives cell x the children
///
///     f(x) = top bits of Lambda(2x),     g(x) = top bits of Lambda(2x+1),
///
/// and the paper shows (with k = theta^{-1}(0), the output position that
/// receives the port bit):
///   - k != 0: f forces bit k-1 of the child cell to 0 and g to 1, the
///     other child bits are a fixed selection of x's bits, and (f, g) is
///     an *independent* connection — hence Theorem 3 applies;
///   - k == 0: the port bit is dropped, f == g, the stage has double links
///     and the network cannot be Banyan (Fig. 5).
///
/// Both the link-permutation derivation and the paper's explicit bit
/// formula are implemented; the tests assert they coincide.

#pragma once

#include <vector>

#include "min/connection.hpp"
#include "min/mi_digraph.hpp"
#include "perm/index_perm.hpp"

namespace mineq::min {

/// Stage-level facts about a PIPID used as an inter-stage wiring.
struct PipidStageInfo {
  int k = 0;                  ///< theta^{-1}(0): where the port bit lands
  bool degenerate = false;    ///< k == 0: double links (Fig. 5)
  int dropped_input_bit = 0;  ///< theta(0): the cell bit that is discarded
};

/// Analyze a PIPID of width n (n = stages of the target network).
[[nodiscard]] PipidStageInfo pipid_stage_info(const perm::IndexPermutation& ip);

/// Derive the cell connection from the PIPID by materializing the link
/// permutation and projecting out the port bit.
[[nodiscard]] Connection connection_from_pipid(
    const perm::IndexPermutation& ip);

/// Same connection via the paper's closed bit formula (child bit b =
/// port if theta(b+1) == 0, else x bit theta(b+1)-1) — O(n) per cell and
/// no 2^n table for the link permutation.
[[nodiscard]] Connection connection_from_pipid_formula(
    const perm::IndexPermutation& ip);

/// Assemble an MI-digraph from a sequence of PIPID inter-stage wirings;
/// the network has pipids.size() + 1 stages and every PIPID must have
/// width equal to that stage count.
[[nodiscard]] MIDigraph network_from_pipids(
    const std::vector<perm::IndexPermutation>& pipids);

/// Assemble an MI-digraph from arbitrary link permutations (each on
/// 2^stages labels) — the general, not-necessarily-PIPID construction.
[[nodiscard]] MIDigraph network_from_link_permutations(
    const std::vector<perm::Permutation>& perms);

}  // namespace mineq::min
