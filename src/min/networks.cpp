#include "min/networks.hpp"

#include <stdexcept>

#include "min/pipid.hpp"
#include "perm/standard.hpp"

namespace mineq::min {

const std::vector<NetworkKind>& all_network_kinds() {
  static const std::vector<NetworkKind> kinds = {
      NetworkKind::kOmega,
      NetworkKind::kFlip,
      NetworkKind::kIndirectBinaryCube,
      NetworkKind::kModifiedDataManipulator,
      NetworkKind::kBaseline,
      NetworkKind::kReverseBaseline,
  };
  return kinds;
}

std::string network_name(NetworkKind kind) {
  switch (kind) {
    case NetworkKind::kOmega:
      return "Omega";
    case NetworkKind::kFlip:
      return "Flip";
    case NetworkKind::kIndirectBinaryCube:
      return "IndirectBinaryCube";
    case NetworkKind::kModifiedDataManipulator:
      return "ModifiedDataManipulator";
    case NetworkKind::kBaseline:
      return "Baseline";
    case NetworkKind::kReverseBaseline:
      return "ReverseBaseline";
  }
  throw std::invalid_argument("network_name: unknown kind");
}

std::string network_token(NetworkKind kind) {
  switch (kind) {
    case NetworkKind::kOmega:
      return "omega";
    case NetworkKind::kFlip:
      return "flip";
    case NetworkKind::kIndirectBinaryCube:
      return "cube";
    case NetworkKind::kModifiedDataManipulator:
      return "mdm";
    case NetworkKind::kBaseline:
      return "baseline";
    case NetworkKind::kReverseBaseline:
      return "revbaseline";
  }
  throw std::invalid_argument("network_token: unknown kind");
}

NetworkKind parse_network_kind(std::string_view name) {
  for (NetworkKind kind : all_network_kinds()) {
    if (network_token(kind) == name || network_name(kind) == name) {
      return kind;
    }
  }
  // Enumerate the valid tokens from the registry itself, so the message
  // can never drift from all_network_kinds().
  std::string valid;
  for (NetworkKind kind : all_network_kinds()) {
    if (!valid.empty()) valid += ", ";
    valid += network_token(kind);
  }
  throw std::invalid_argument("parse_network_kind: unknown network \"" +
                              std::string(name) + "\" (valid: " + valid +
                              ')');
}

std::vector<perm::IndexPermutation> network_pipid_sequence(NetworkKind kind,
                                                           int stages) {
  if (stages < 2) {
    throw std::invalid_argument(
        "network_pipid_sequence: need at least 2 stages");
  }
  const int n = stages;
  std::vector<perm::IndexPermutation> seq;
  seq.reserve(static_cast<std::size_t>(n - 1));
  for (int s = 0; s < n - 1; ++s) {
    switch (kind) {
      case NetworkKind::kOmega:
        seq.push_back(perm::perfect_shuffle(n));
        break;
      case NetworkKind::kFlip:
        seq.push_back(perm::inverse_shuffle(n));
        break;
      case NetworkKind::kIndirectBinaryCube:
        seq.push_back(perm::butterfly(n, s + 1));
        break;
      case NetworkKind::kModifiedDataManipulator:
        seq.push_back(perm::butterfly(n, n - 1 - s));
        break;
      case NetworkKind::kBaseline:
        seq.push_back(perm::inverse_subshuffle(n, n - s));
        break;
      case NetworkKind::kReverseBaseline:
        seq.push_back(perm::subshuffle(n, s + 2));
        break;
    }
  }
  return seq;
}

MIDigraph build_network(NetworkKind kind, int stages) {
  return network_from_pipids(network_pipid_sequence(kind, stages));
}

MIDigraph random_pipid_network(int stages, util::SplitMix64& rng) {
  if (stages < 2) {
    throw std::invalid_argument("random_pipid_network: need >= 2 stages");
  }
  std::vector<perm::IndexPermutation> seq;
  seq.reserve(static_cast<std::size_t>(stages - 1));
  for (int s = 0; s < stages - 1; ++s) {
    for (;;) {
      perm::IndexPermutation ip = perm::IndexPermutation::random(stages, rng);
      if (!pipid_stage_info(ip).degenerate) {
        seq.push_back(std::move(ip));
        break;
      }
    }
  }
  return network_from_pipids(seq);
}

MIDigraph random_independent_network(int stages, util::SplitMix64& rng) {
  if (stages < 2) {
    throw std::invalid_argument(
        "random_independent_network: need >= 2 stages");
  }
  const int w = stages - 1;
  std::vector<Connection> connections;
  connections.reserve(static_cast<std::size_t>(w));
  for (int s = 0; s < w; ++s) {
    // Case 2 stages are the PIPID-like shape; case 1 stages (two
    // bijections) are also legal MI-digraph stages. Mix them.
    if (w >= 1 && rng.chance(1, 2)) {
      connections.push_back(Connection::random_independent_case2(w, rng));
    } else {
      connections.push_back(Connection::random_independent_case1(w, rng));
    }
  }
  return MIDigraph(stages, std::move(connections));
}

}  // namespace mineq::min
