#include "min/affine_iso.hpp"

#include <algorithm>
#include <stdexcept>

#include "min/independence.hpp"
#include "util/bitops.hpp"

namespace mineq::min {

namespace {

/// An affine GF(2) expression in the unknowns: xor of a subset of
/// unknowns, plus a constant bit.
struct SymExpr {
  std::vector<std::uint64_t> coeffs;  // bitset over unknowns
  unsigned constant = 0;

  explicit SymExpr(std::size_t words) : coeffs(words, 0) {}

  void operator^=(const SymExpr& other) {
    for (std::size_t i = 0; i < coeffs.size(); ++i) {
      coeffs[i] ^= other.coeffs[i];
    }
    constant ^= other.constant;
  }

  [[nodiscard]] bool is_const_zero() const {
    if (constant != 0) return false;
    return std::all_of(coeffs.begin(), coeffs.end(),
                       [](std::uint64_t word) { return word == 0; });
  }
};

/// Symbolic vector in Z_2^w: one expression per component.
using SymVec = std::vector<SymExpr>;
/// Symbolic w x w matrix: rows of expressions.
using SymMatrix = std::vector<std::vector<SymExpr>>;

/// Synthesizes per-stage affine bijections A_s(x) = M_s x ^ a_s with the
/// general pairing: for each stage a GF(2) affine functional h_s decides,
/// per cell, whether (f, g) maps straight or swapped onto (f*, g*):
///
///   A_{s+1}(f_s(x)) = f*_s(A_s x) ^ t*_s h_s(x),
///   A_{s+1}(g_s(x)) = g*_s(A_s x) ^ t*_s h_s(x),    t*_s = c*_s ^ d*_s.
///
/// Unknowns: entries of M_1 (w^2) plus, per stage, the functional's w
/// linear coefficients and constant. Every propagation step and every
/// constraint is linear in these unknowns, so one GF(2) elimination
/// produces the whole solution space; invertibility of the M-chain is
/// established per sampled solution and the result is verified arc-by-arc.
class Synthesizer {
 public:
  Synthesizer(const MIDigraph& g, const MIDigraph& h, util::SplitMix64& rng,
              int attempts)
      : g_(g),
        h_(h),
        rng_(rng),
        attempts_(attempts),
        w_(g.width()),
        stages_(g.stages()),
        unknowns_(static_cast<std::size_t>(w_) * static_cast<std::size_t>(w_) +
                  static_cast<std::size_t>(stages_ - 1) *
                      static_cast<std::size_t>(w_ + 1)),
        words_((unknowns_ + 63) / 64) {}

  std::optional<AffineIso> run() {
    if (g_.stages() != h_.stages()) return std::nullopt;
    if (w_ == 0) {
      AffineIso iso;
      iso.stage_maps.assign(static_cast<std::size_t>(g_.stages()),
                            gf2::AffineMap::identity(0));
      return verify_affine_isomorphism(g_, h_, iso)
                 ? std::optional<AffineIso>(std::move(iso))
                 : std::nullopt;
    }
    if (!decompose()) return std::nullopt;
    propagate();
    const auto space = solve_constraints();
    if (!space.has_value()) return std::nullopt;
    // Search the affine solution space for an assignment with invertible
    // M_1 (which makes the whole chain invertible). Uniform sampling
    // alone degrades with size — the space contains large singular
    // subfamilies — so each random start is followed by greedy GF(2)
    // rank augmentation over the nullspace basis.
    std::vector<std::uint64_t> assignment = space->particular;
    for (int attempt = 0; attempt < attempts_; ++attempt) {
      greedy_rank_augment(*space, assignment);
      if (m1_rank(assignment) == w_) {
        auto iso = try_assignment(assignment);
        if (iso.has_value()) return iso;
      }
      assignment = space->particular;
      for (const auto& basis_vec : space->nullspace) {
        if (rng_.chance(1, 2)) {
          for (std::size_t i = 0; i < words_; ++i) {
            assignment[i] ^= basis_vec[i];
          }
        }
      }
    }
    return std::nullopt;
  }

 private:
  // --- unknown layout -------------------------------------------------
  // [0, w^2):                     entries of M_1, index r*w + c
  // w^2 + s*(w+1) + b, b < w:     linear coefficient b of h_s
  // w^2 + s*(w+1) + w:            constant bit of h_s

  [[nodiscard]] std::size_t m1_index(int r, int c) const {
    return static_cast<std::size_t>(r) * static_cast<std::size_t>(w_) +
           static_cast<std::size_t>(c);
  }
  [[nodiscard]] std::size_t h_index(int stage, int slot) const {
    return static_cast<std::size_t>(w_) * static_cast<std::size_t>(w_) +
           static_cast<std::size_t>(stage) *
               static_cast<std::size_t>(w_ + 1) +
           static_cast<std::size_t>(slot);
  }

  [[nodiscard]] SymExpr zero_expr() const { return SymExpr(words_); }

  [[nodiscard]] SymExpr unknown_expr(std::size_t u) const {
    SymExpr e(words_);
    e.coeffs[u / 64] |= std::uint64_t{1} << (u % 64);
    return e;
  }

  [[nodiscard]] SymExpr const_expr(unsigned bit) const {
    SymExpr e(words_);
    e.constant = bit & 1U;
    return e;
  }

  /// h_s's linear part applied to a constant vector: xor of the
  /// coefficient unknowns selected by the set bits.
  [[nodiscard]] SymExpr h_lin_expr(int stage, std::uint64_t x) const {
    SymExpr e(words_);
    while (x != 0) {
      const int b = util::lowest_set_bit(x);
      x &= x - 1;
      e ^= unknown_expr(h_index(stage, b));
    }
    return e;
  }

  [[nodiscard]] SymMatrix symbolic_m1() const {
    SymMatrix m(static_cast<std::size_t>(w_),
                std::vector<SymExpr>(static_cast<std::size_t>(w_),
                                     zero_expr()));
    for (int r = 0; r < w_; ++r) {
      for (int c = 0; c < w_; ++c) {
        m[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] =
            unknown_expr(m1_index(r, c));
      }
    }
    return m;
  }

  /// (symbolic matrix) * (constant vector).
  [[nodiscard]] SymVec mat_vec(const SymMatrix& m, std::uint64_t x) const {
    SymVec out(static_cast<std::size_t>(w_), zero_expr());
    for (int r = 0; r < w_; ++r) {
      for (int c = 0; c < w_; ++c) {
        if (util::get_bit(x, c) != 0) {
          out[static_cast<std::size_t>(r)] ^=
              m[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
        }
      }
    }
    return out;
  }

  /// (constant matrix) * (symbolic vector).
  [[nodiscard]] SymVec const_mat_vec(const gf2::Matrix& c,
                                     const SymVec& v) const {
    SymVec out(static_cast<std::size_t>(w_), zero_expr());
    for (int r = 0; r < w_; ++r) {
      std::uint64_t row = c.row(r);
      while (row != 0) {
        const int k = util::lowest_set_bit(row);
        row &= row - 1;
        out[static_cast<std::size_t>(r)] ^= v[static_cast<std::size_t>(k)];
      }
    }
    return out;
  }

  /// scalar-expression times constant vector: component r is the scalar
  /// when bit r of \p vec is set.
  [[nodiscard]] SymVec scaled_vec(const SymExpr& scalar,
                                  std::uint64_t vec) const {
    SymVec out(static_cast<std::size_t>(w_), zero_expr());
    for (int r = 0; r < w_; ++r) {
      if (util::get_bit(vec, r) != 0) {
        out[static_cast<std::size_t>(r)] = scalar;
      }
    }
    return out;
  }

  [[nodiscard]] SymVec xor_vec(SymVec a, const SymVec& b) const {
    for (int r = 0; r < w_; ++r) {
      a[static_cast<std::size_t>(r)] ^= b[static_cast<std::size_t>(r)];
    }
    return a;
  }

  /// (symbolic matrix) * (constant matrix).
  [[nodiscard]] SymMatrix mat_const_mat(const SymMatrix& m,
                                        const gf2::Matrix& c) const {
    SymMatrix out(static_cast<std::size_t>(w_),
                  std::vector<SymExpr>(static_cast<std::size_t>(w_),
                                       zero_expr()));
    for (int r = 0; r < w_; ++r) {
      for (int j = 0; j < w_; ++j) {
        for (int k = 0; k < w_; ++k) {
          if (c.at(k, j) != 0) {
            out[static_cast<std::size_t>(r)][static_cast<std::size_t>(j)] ^=
                m[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)];
          }
        }
      }
    }
    return out;
  }

  [[nodiscard]] SymMatrix from_sym_cols(
      const std::vector<SymVec>& cols) const {
    SymMatrix out(static_cast<std::size_t>(w_),
                  std::vector<SymExpr>(static_cast<std::size_t>(w_),
                                       zero_expr()));
    for (int j = 0; j < w_; ++j) {
      for (int r = 0; r < w_; ++r) {
        out[static_cast<std::size_t>(r)][static_cast<std::size_t>(j)] =
            cols[static_cast<std::size_t>(j)][static_cast<std::size_t>(r)];
      }
    }
    return out;
  }

  /// Record the w equations of (symbolic vec == 0).
  void add_zero_constraint(const SymVec& v) {
    for (int r = 0; r < w_; ++r) {
      SymExpr eq = v[static_cast<std::size_t>(r)];
      if (!eq.is_const_zero()) constraints_.push_back(std::move(eq));
    }
  }

  void add_vec_constraint(const SymVec& v, std::uint64_t target) {
    SymVec shifted = v;
    for (int r = 0; r < w_; ++r) {
      shifted[static_cast<std::size_t>(r)].constant ^=
          util::get_bit(target, r);
    }
    add_zero_constraint(shifted);
  }

  // --- pipeline ---------------------------------------------------------

  bool decompose() {
    for (int s = 0; s + 1 < g_.stages(); ++s) {
      auto lg = linear_form(g_.connection(s));
      auto lh = linear_form(h_.connection(s));
      if (!lg.has_value() || !lh.has_value()) return false;
      lf_g_.push_back(std::move(*lg));
      lf_h_.push_back(std::move(*lh));
    }
    return true;
  }

  void propagate() {
    SymMatrix m = symbolic_m1();
    sym_chain_.push_back(m);
    for (int s = 0; s + 1 < stages_; ++s) {
      const auto idx = static_cast<std::size_t>(s);
      const gf2::Matrix& lg = lf_g_[idx].linear;
      const gf2::Matrix& lh = lf_h_[idx].linear;
      const std::uint64_t tg =
          static_cast<std::uint64_t>(lf_g_[idx].c_f ^ lf_g_[idx].c_g);
      const std::uint64_t th =
          static_cast<std::uint64_t>(lf_h_[idx].c_f ^ lf_h_[idx].c_g);
      SymMatrix next;
      const auto lg_inverse = lg.inverse();
      if (lg_inverse.has_value()) {
        // M_{s+1} = (L* M ^ t* (x) h_lin) L^{-1}: build the bracket by
        // columns (its action on e_c), then change basis.
        std::vector<SymVec> bracket_cols;
        bracket_cols.reserve(static_cast<std::size_t>(w_));
        for (int c = 0; c < w_; ++c) {
          const std::uint64_t e_c = std::uint64_t{1} << c;
          bracket_cols.push_back(
              xor_vec(const_mat_vec(lh, mat_vec(m, e_c)),
                      scaled_vec(h_lin_expr(s, e_c), th)));
        }
        next = mat_const_mat(from_sym_cols(bracket_cols), *lg_inverse);
        // Constraint: M_{s+1} t_g = t_h.
        add_vec_constraint(mat_vec_sym(next, tg), th);
      } else {
        const auto kernel = lg.kernel_basis();
        if (kernel.size() != 1) {
          // rank deficit >= 2: cannot be a valid stage; unsatisfiable.
          constraints_.push_back(const_expr(1));
          return;
        }
        const std::uint64_t alpha = kernel.front();
        // Well-definedness: L* M alpha ^ t* h_lin(alpha) = 0.
        add_zero_constraint(
            xor_vec(const_mat_vec(lh, mat_vec(m, alpha)),
                    scaled_vec(h_lin_expr(s, alpha), th)));
        // Pin M_{s+1} on the basis (L x_1, ..., L x_{w-1}, t_g).
        const auto image = lg.image_basis();
        std::vector<std::uint64_t> basis_cols;
        std::vector<SymVec> image_cols;
        for (std::uint64_t b : image) {
          const auto x = lg.solve(b);
          if (!x.has_value()) {
            throw std::logic_error("affine_iso: image vector unsolvable");
          }
          basis_cols.push_back(b);
          image_cols.push_back(
              xor_vec(const_mat_vec(lh, mat_vec(m, *x)),
                      scaled_vec(h_lin_expr(s, *x), th)));
        }
        basis_cols.push_back(tg);
        {
          SymVec th_col(static_cast<std::size_t>(w_), zero_expr());
          for (int r = 0; r < w_; ++r) {
            th_col[static_cast<std::size_t>(r)] =
                const_expr(util::get_bit(th, r));
          }
          image_cols.push_back(std::move(th_col));
        }
        const gf2::Matrix basis = gf2::Matrix::from_cols(basis_cols, w_);
        const auto basis_inverse = basis.inverse();
        if (!basis_inverse.has_value()) {
          // t_g inside Im(L_g): not a valid case-2 stage on the G side.
          constraints_.push_back(const_expr(1));
          return;
        }
        next = mat_const_mat(from_sym_cols(image_cols), *basis_inverse);
      }
      m = std::move(next);
      sym_chain_.push_back(m);
    }
  }

  /// mat_vec over an already-symbolic matrix (alias clarity).
  [[nodiscard]] SymVec mat_vec_sym(const SymMatrix& m,
                                   std::uint64_t x) const {
    return mat_vec(m, x);
  }

  struct SolutionSpace {
    std::vector<std::uint64_t> particular;
    std::vector<std::vector<std::uint64_t>> nullspace;
  };

  [[nodiscard]] std::optional<SolutionSpace> solve_constraints() const {
    struct Row {
      std::vector<std::uint64_t> coeffs;
      unsigned rhs;
    };
    std::vector<Row> rows;
    rows.reserve(constraints_.size());
    for (const SymExpr& e : constraints_) {
      rows.push_back(Row{e.coeffs, e.constant});
    }
    std::vector<std::size_t> pivot_of_row;
    std::vector<bool> is_pivot(unknowns_, false);
    std::size_t next_row = 0;
    for (std::size_t col = 0; col < unknowns_ && next_row < rows.size();
         ++col) {
      const std::size_t word = col / 64;
      const std::uint64_t bit = std::uint64_t{1} << (col % 64);
      std::size_t pivot = next_row;
      while (pivot < rows.size() && (rows[pivot].coeffs[word] & bit) == 0) {
        ++pivot;
      }
      if (pivot == rows.size()) continue;
      std::swap(rows[next_row], rows[pivot]);
      for (std::size_t r = 0; r < rows.size(); ++r) {
        if (r != next_row && (rows[r].coeffs[word] & bit) != 0) {
          for (std::size_t i = 0; i < words_; ++i) {
            rows[r].coeffs[i] ^= rows[next_row].coeffs[i];
          }
          rows[r].rhs ^= rows[next_row].rhs;
        }
      }
      pivot_of_row.push_back(col);
      is_pivot[col] = true;
      ++next_row;
    }
    for (std::size_t r = next_row; r < rows.size(); ++r) {
      if (rows[r].rhs != 0) return std::nullopt;  // inconsistent
    }

    SolutionSpace space;
    space.particular.assign(words_, 0);
    for (std::size_t r = 0; r < pivot_of_row.size(); ++r) {
      if (rows[r].rhs != 0) {
        const std::size_t col = pivot_of_row[r];
        space.particular[col / 64] |= std::uint64_t{1} << (col % 64);
      }
    }
    for (std::size_t free = 0; free < unknowns_; ++free) {
      if (is_pivot[free]) continue;
      std::vector<std::uint64_t> v(words_, 0);
      v[free / 64] |= std::uint64_t{1} << (free % 64);
      for (std::size_t r = 0; r < pivot_of_row.size(); ++r) {
        const std::size_t fw = free / 64;
        const std::uint64_t fb = std::uint64_t{1} << (free % 64);
        if ((rows[r].coeffs[fw] & fb) != 0) {
          const std::size_t col = pivot_of_row[r];
          v[col / 64] |= std::uint64_t{1} << (col % 64);
        }
      }
      space.nullspace.push_back(std::move(v));
    }
    return space;
  }

  [[nodiscard]] gf2::Matrix m1_of(
      const std::vector<std::uint64_t>& assignment) const {
    gf2::Matrix m(w_, w_);
    for (int r = 0; r < w_; ++r) {
      for (int c = 0; c < w_; ++c) {
        const std::size_t u = m1_index(r, c);
        if ((assignment[u / 64] >> (u % 64)) & 1U) m.set(r, c, 1);
      }
    }
    return m;
  }

  [[nodiscard]] int m1_rank(
      const std::vector<std::uint64_t>& assignment) const {
    return m1_of(assignment).rank();
  }

  /// Hill-climb on rank(M_1): repeatedly xor in any nullspace basis
  /// vector that strictly increases the rank. Cheap and effective at
  /// escaping the singular bulk of the solution space.
  void greedy_rank_augment(const SolutionSpace& space,
                           std::vector<std::uint64_t>& assignment) const {
    int rank = m1_rank(assignment);
    bool improved = true;
    while (rank < w_ && improved) {
      improved = false;
      for (const auto& basis_vec : space.nullspace) {
        for (std::size_t i = 0; i < words_; ++i) {
          assignment[i] ^= basis_vec[i];
        }
        const int candidate = m1_rank(assignment);
        if (candidate > rank) {
          rank = candidate;
          improved = true;
          if (rank == w_) return;
        } else {
          for (std::size_t i = 0; i < words_; ++i) {
            assignment[i] ^= basis_vec[i];
          }
        }
      }
    }
  }

  [[nodiscard]] unsigned eval(const SymExpr& e,
                              const std::vector<std::uint64_t>& a) const {
    unsigned bit = e.constant;
    for (std::size_t i = 0; i < words_; ++i) {
      bit ^= static_cast<unsigned>(util::parity(e.coeffs[i] & a[i]));
    }
    return bit & 1U;
  }

  /// Evaluate the chain at one assignment; nullopt unless every stage map
  /// is invertible and the final arc-by-arc verification passes.
  [[nodiscard]] std::optional<AffineIso> try_assignment(
      const std::vector<std::uint64_t>& assignment) const {
    std::vector<gf2::Matrix> chain;
    chain.reserve(sym_chain_.size());
    for (const SymMatrix& sym : sym_chain_) {
      gf2::Matrix m(w_, w_);
      for (int r = 0; r < w_; ++r) {
        for (int c = 0; c < w_; ++c) {
          m.set(r, c,
                eval(sym[static_cast<std::size_t>(r)]
                        [static_cast<std::size_t>(c)],
                     assignment));
        }
      }
      if (!m.is_invertible()) return std::nullopt;
      chain.push_back(std::move(m));
    }

    AffineIso iso;
    std::uint64_t a = 0;
    for (std::size_t s = 0; s < chain.size(); ++s) {
      iso.stage_maps.emplace_back(chain[s], a);
      if (s + 1 < chain.size()) {
        const std::uint64_t th = static_cast<std::uint64_t>(
            lf_h_[s].c_f ^ lf_h_[s].c_g);
        const unsigned h_const =
            eval(unknown_expr(h_index(static_cast<int>(s), w_)), assignment);
        a = chain[s + 1].apply(lf_g_[s].c_f) ^ lf_h_[s].linear.apply(a) ^
            lf_h_[s].c_f ^ (h_const != 0 ? th : 0);
      }
    }
    if (!verify_affine_isomorphism(g_, h_, iso)) return std::nullopt;
    return iso;
  }

  const MIDigraph& g_;
  const MIDigraph& h_;
  util::SplitMix64& rng_;
  int attempts_;
  int w_;
  int stages_;
  std::size_t unknowns_;
  std::size_t words_;
  std::vector<LinearForm> lf_g_;
  std::vector<LinearForm> lf_h_;
  std::vector<SymMatrix> sym_chain_;
  std::vector<SymExpr> constraints_;
};

}  // namespace

graph::LayeredMapping AffineIso::to_layered_mapping() const {
  graph::LayeredMapping mapping(stage_maps.size());
  for (std::size_t s = 0; s < stage_maps.size(); ++s) {
    mapping[s] = stage_maps[s].to_table();
  }
  return mapping;
}

std::optional<AffineIso> synthesize_affine_isomorphism(const MIDigraph& g,
                                                       const MIDigraph& h,
                                                       util::SplitMix64& rng,
                                                       int attempts) {
  Synthesizer synth(g, h, rng, attempts);
  return synth.run();
}

bool verify_affine_isomorphism(const MIDigraph& g, const MIDigraph& h,
                               const AffineIso& iso) {
  if (g.stages() != h.stages()) return false;
  if (iso.stage_maps.size() != static_cast<std::size_t>(g.stages())) {
    return false;
  }
  for (const auto& map : iso.stage_maps) {
    if (map.in_width() != g.width() || !map.is_bijection()) return false;
  }
  const std::uint32_t cells = g.cells_per_stage();
  for (int s = 0; s + 1 < g.stages(); ++s) {
    const Connection& cg = g.connection(s);
    const Connection& ch = h.connection(s);
    const auto& map_s = iso.stage_maps[static_cast<std::size_t>(s)];
    const auto& map_next = iso.stage_maps[static_cast<std::size_t>(s + 1)];
    for (std::uint32_t x = 0; x < cells; ++x) {
      const std::uint64_t image = map_s.apply(x);
      std::array<std::uint64_t, 2> lhs = {
          map_next.apply(cg.f_table()[x]),
          map_next.apply(cg.g_table()[x])};
      std::array<std::uint64_t, 2> rhs = {
          ch.f_table()[static_cast<std::uint32_t>(image)],
          ch.g_table()[static_cast<std::uint32_t>(image)]};
      if (lhs[0] > lhs[1]) std::swap(lhs[0], lhs[1]);
      if (rhs[0] > rhs[1]) std::swap(rhs[0], rhs[1]);
      if (lhs != rhs) return false;
    }
  }
  return true;
}

std::optional<graph::LayeredMapping> find_explicit_isomorphism(
    const MIDigraph& g, const MIDigraph& h, util::SplitMix64& rng,
    std::uint64_t fallback_budget) {
  const auto affine = synthesize_affine_isomorphism(g, h, rng);
  if (affine.has_value()) return affine->to_layered_mapping();
  graph::SearchStats stats;
  return graph::find_layered_isomorphism(g.to_layered(), h.to_layered(),
                                         &stats, fallback_budget);
}

}  // namespace mineq::min
