#include "min/equivalence.hpp"

#include <stdexcept>

#include "graph/isomorphism.hpp"
#include "min/banyan.hpp"
#include "min/independence.hpp"
#include "min/properties.hpp"

namespace mineq::min {

EquivalenceReport check_baseline_equivalence(const MIDigraph& g) {
  EquivalenceReport report;
  report.valid_degrees = g.is_valid();
  if (!report.valid_degrees) {
    report.failure = "degrees";
    return report;
  }
  report.banyan = is_banyan(g);
  if (!report.banyan) {
    report.failure = "banyan";
    return report;
  }
  report.p1_star = satisfies_p1_star(g);
  if (!report.p1_star) {
    report.failure = "P(1,*)";
    return report;
  }
  report.p_star_n = satisfies_p_star_n(g);
  if (!report.p_star_n) {
    report.failure = "P(*,n)";
    return report;
  }
  report.equivalent = true;
  return report;
}

bool is_baseline_equivalent(const MIDigraph& g) {
  return check_baseline_equivalence(g).equivalent;
}

bool is_baseline_equivalent_via_independence(const MIDigraph& g) {
  for (const Connection& conn : g.connections()) {
    if (!conn.is_valid_stage()) return false;
    if (!is_independent(conn)) return false;
  }
  return is_banyan(g);
}

bool are_topologically_equivalent(const MIDigraph& a, const MIDigraph& b,
                                  std::uint64_t fallback_budget) {
  if (a.stages() != b.stages()) return false;
  const bool a_base = is_baseline_equivalent(a);
  const bool b_base = is_baseline_equivalent(b);
  if (a_base || b_base) return a_base && b_base;
  // Neither is baseline-equivalent: they may still be isomorphic to each
  // other (e.g. two scrambled copies of the same non-Banyan digraph).
  graph::SearchStats stats;
  const auto mapping = graph::find_layered_isomorphism(
      a.to_layered(), b.to_layered(), &stats, fallback_budget);
  if (!mapping.has_value() && stats.budget_exhausted) {
    throw std::runtime_error(
        "are_topologically_equivalent: isomorphism search budget exhausted");
  }
  return mapping.has_value();
}

}  // namespace mineq::min
