#include "min/equivalence.hpp"

#include <stdexcept>

#include "graph/isomorphism.hpp"
#include "min/banyan.hpp"
#include "min/independence.hpp"
#include "min/properties.hpp"

namespace mineq::min {

EquivalenceReport check_baseline_equivalence(const FlatWiring& w) {
  EquivalenceReport report;
  report.valid_degrees = true;  // representable in the IR == valid degrees
  report.banyan = is_banyan(w);
  if (!report.banyan) {
    report.failure = "banyan";
    return report;
  }
  report.p1_star = satisfies_p1_star(w);
  if (!report.p1_star) {
    report.failure = "P(1,*)";
    return report;
  }
  report.p_star_n = satisfies_p_star_n(w);
  if (!report.p_star_n) {
    report.failure = "P(*,n)";
    return report;
  }
  report.equivalent = true;
  return report;
}

namespace {

/// Below this size a whole digraph is a few cache lines and the checks
/// finish in ~a microsecond; flattening overhead (even ~200ns) cannot
/// amortize, so small digraphs run entirely off the image tables. From
/// here up, the IR pays for itself.
constexpr std::uint32_t kFlattenWorthwhileCells = 128;

}  // namespace

EquivalenceReport check_baseline_equivalence(const MIDigraph& g) {
  const bool flatten_profiles = g.cells_per_stage() >= kFlattenWorthwhileCells;
  // Fail-fast order: the degree scan and the early-exiting Banyan DP run
  // straight off the image tables, so networks that fail (the common
  // case when classifying random candidates) never pay for flattening.
  // Only a Banyan survivor at IR-worthwhile size is flattened — once —
  // and finishes the characterization over the packed records.
  EquivalenceReport report;
  report.valid_degrees = g.is_valid();
  if (!report.valid_degrees) {
    report.failure = "degrees";
    return report;
  }
  report.banyan = is_banyan(g);
  if (!report.banyan) {
    report.failure = "banyan";
    return report;
  }
  if (flatten_profiles) {
    const FlatWiring wiring = FlatWiring::from_digraph(g);
    report.p1_star = satisfies_p1_star(wiring);
    report.p_star_n = report.p1_star && satisfies_p_star_n(wiring);
  } else {
    report.p1_star = satisfies_p1_star(g);
    report.p_star_n = report.p1_star && satisfies_p_star_n(g);
  }
  if (!report.p1_star) {
    report.failure = "P(1,*)";
    return report;
  }
  if (!report.p_star_n) {
    report.failure = "P(*,n)";
    return report;
  }
  report.equivalent = true;
  return report;
}

bool is_baseline_equivalent(const MIDigraph& g) {
  return check_baseline_equivalence(g).equivalent;
}

bool is_baseline_equivalent(const FlatWiring& w) {
  return check_baseline_equivalence(w).equivalent;
}

bool is_baseline_equivalent_via_independence(const MIDigraph& g) {
  for (const Connection& conn : g.connections()) {
    if (!conn.is_valid_stage()) return false;
    if (!is_independent(conn)) return false;
  }
  return is_banyan(g);
}

FaultedClassification classify_faulted(const FlatWiring& w,
                                       const fault::FaultMask& mask) {
  if (!mask.matches(w)) {
    throw std::invalid_argument(
        "classify_faulted: fault mask geometry does not match the wiring");
  }
  FaultedClassification out;
  out.total_arcs = mask.total_arcs();
  out.surviving_arcs = mask.surviving_arcs();
  if (mask.none()) {
    // Pristine fast path: run_sweep classifies every {network, fault
    // spec} pair serially before fanning the grid out, and the default
    // no-fault spec must not pay the per-source path DP — the word-wide
    // bitset Banyan check is the 2-3x faster route at n >= 10. A Banyan
    // fabric has exactly one path per pair, so full access is implied.
    const EquivalenceReport pristine = check_baseline_equivalence(w);
    out.banyan = pristine.banyan;
    out.baseline_equivalent = pristine.equivalent;
    if (pristine.banyan) {
      out.full_access = true;
      return out;
    }
    // Not Banyan: fall through — the DP still decides full access
    // (parallel paths may cover every pair).
  }
  bool full_access = true;
  bool unique_paths = true;
  const std::uint32_t cells = w.cells_per_stage();
  for (std::uint32_t u = 0; u < cells && full_access; ++u) {
    // Saturating at 2 is enough to separate 0 / 1 / "many" paths.
    const auto counts = path_counts_from(w, mask, u, /*cap=*/2);
    for (const std::uint64_t c : counts) {
      if (c != 1) unique_paths = false;
      if (c == 0) {
        full_access = false;
        break;
      }
    }
  }
  out.full_access = full_access;
  if (!mask.none()) {
    out.banyan = full_access && unique_paths;
    // Removing any arc from a full-access fabric with unique paths
    // severs at least one (source, sink) pair, so only the unmasked
    // fabric can still be an (intact, baseline-equivalent) MI-digraph.
    out.baseline_equivalent = false;
  }
  return out;
}

bool are_topologically_equivalent(const MIDigraph& a, const MIDigraph& b,
                                  std::uint64_t fallback_budget) {
  if (a.stages() != b.stages()) return false;
  const bool a_base = is_baseline_equivalent(a);
  const bool b_base = is_baseline_equivalent(b);
  if (a_base || b_base) return a_base && b_base;
  // Neither is baseline-equivalent: they may still be isomorphic to each
  // other (e.g. two scrambled copies of the same non-Banyan digraph).
  graph::SearchStats stats;
  const auto mapping = graph::find_layered_isomorphism(
      a.to_layered(), b.to_layered(), &stats, fallback_budget);
  if (!mapping.has_value() && stats.budget_exhausted) {
    throw std::runtime_error(
        "are_topologically_equivalent: isomorphism search budget exhausted");
  }
  return mapping.has_value();
}

}  // namespace mineq::min
