#include "min/independence.hpp"

#include <stdexcept>

#include "util/bitops.hpp"

namespace mineq::min {

bool is_independent_definition(const Connection& conn) {
  const std::uint32_t cells = conn.cells();
  const auto& f = conn.f_table();
  const auto& g = conn.g_table();
  for (std::uint32_t alpha = 1; alpha < cells; ++alpha) {
    // If any beta works, then in particular beta = f(alpha) ^ f(0)
    // (take x = 0), so only that candidate needs checking.
    const std::uint32_t beta = f[alpha] ^ f[0];
    for (std::uint32_t x = 0; x < cells; ++x) {
      if (f[x ^ alpha] != (beta ^ f[x])) return false;
      if (g[x ^ alpha] != (beta ^ g[x])) return false;
    }
  }
  return true;
}

std::optional<LinearForm> linear_form(const Connection& conn) {
  const int w = conn.width();
  const auto af = gf2::fit_affine(conn.f_table(), w, w);
  if (!af.has_value()) return std::nullopt;
  const auto ag = gf2::fit_affine(conn.g_table(), w, w);
  if (!ag.has_value()) return std::nullopt;
  if (!(af->linear() == ag->linear())) return std::nullopt;
  LinearForm lf{af->linear(), static_cast<std::uint32_t>(af->constant()),
                static_cast<std::uint32_t>(ag->constant())};
  return lf;
}

bool is_independent(const Connection& conn) {
  return linear_form(conn).has_value();
}

std::optional<std::vector<std::uint32_t>> beta_map(const Connection& conn) {
  const auto lf = linear_form(conn);
  if (!lf.has_value()) return std::nullopt;
  return gf2::AffineMap(lf->linear, 0).to_table();
}

StageCase classify_stage(const Connection& conn) {
  const auto lf = linear_form(conn);
  if (!lf.has_value()) return StageCase::kNotIndependent;
  if (!conn.is_valid_stage()) return StageCase::kInvalidDegrees;
  const int rank = lf->linear.rank();
  if (rank == conn.width()) return StageCase::kCase1;
  if (rank == conn.width() - 1) return StageCase::kCase2;
  // Rank deficit >= 2 implies some vertex has in-degree > 2, contradicting
  // is_valid_stage(); reaching here would be a logic error.
  throw std::logic_error("classify_stage: valid stage with rank deficit >= 2");
}

namespace {

/// Recursive column-choice search for orient_independent. At depth k the
/// columns for bits 0..k-1 are fixed, which determines the candidate
/// affine f on [0, 2^k); each level verifies the fresh half-range
/// [2^k, 2^{k+1}) so dead branches die early.
class OrientSearch {
 public:
  OrientSearch(const Connection& conn, std::uint32_t c_f, std::uint32_t c_g)
      : conn_(conn),
        c_f_(c_f),
        c_g_(c_g),
        width_(conn.width()),
        candidate_f_(conn.cells(), 0) {
    candidate_f_[0] = c_f_;
  }

  [[nodiscard]] std::optional<Connection> run() {
    if (!consistent_at(0)) return std::nullopt;
    if (search(0)) {
      std::vector<std::uint32_t> g_table(conn_.cells());
      const std::uint32_t t = c_f_ ^ c_g_;
      for (std::uint32_t x = 0; x < conn_.cells(); ++x) {
        g_table[x] = candidate_f_[x] ^ t;
      }
      return Connection(candidate_f_, std::move(g_table), width_);
    }
    return std::nullopt;
  }

 private:
  /// Does {cand_f(x), cand_f(x) ^ (c_f^c_g)} equal the given child set?
  [[nodiscard]] bool consistent_at(std::uint32_t x) const {
    const std::uint32_t cf = candidate_f_[x];
    const std::uint32_t cg = cf ^ c_f_ ^ c_g_;
    const std::uint32_t a = conn_.f_table()[x];
    const std::uint32_t b = conn_.g_table()[x];
    return (cf == a && cg == b) || (cf == b && cg == a);
  }

  [[nodiscard]] bool search(int bit) {
    if (bit == width_) return true;
    const std::uint32_t lo = std::uint32_t{1} << bit;
    const std::uint32_t a_col = conn_.f_table()[lo] ^ c_f_;
    const std::uint32_t b_col = conn_.g_table()[lo] ^ c_f_;
    for (int choice = 0; choice < 2; ++choice) {
      const std::uint32_t column = choice == 0 ? a_col : b_col;
      if (choice == 1 && b_col == a_col) break;  // same candidate twice
      // Fill the fresh half-range via the xor recurrence and verify it.
      bool ok = true;
      for (std::uint32_t x = lo; x < 2 * lo; ++x) {
        candidate_f_[x] = candidate_f_[x ^ lo] ^ column;
        if (!consistent_at(x)) {
          ok = false;
          break;
        }
      }
      if (ok && search(bit + 1)) return true;
    }
    return false;
  }

  const Connection& conn_;
  std::uint32_t c_f_;
  std::uint32_t c_g_;
  int width_;
  std::vector<std::uint32_t> candidate_f_;
};

}  // namespace

std::optional<Connection> orient_independent(const Connection& conn) {
  const std::uint32_t a0 = conn.f_table()[0];
  const std::uint32_t b0 = conn.g_table()[0];
  // c_f must be one of the children of 0; the other child is then c_g.
  {
    OrientSearch search(conn, a0, b0);
    auto result = search.run();
    if (result.has_value()) return result;
  }
  if (a0 != b0) {
    OrientSearch search(conn, b0, a0);
    auto result = search.run();
    if (result.has_value()) return result;
  }
  return std::nullopt;
}

}  // namespace mineq::min
