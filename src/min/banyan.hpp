/// \file banyan.hpp
/// \brief The Banyan property: unique paths from first to last stage.
///
/// Paper: "We say that a network has the Banyan property if and only if
/// for any input and any output there exists a unique path connecting
/// them." Since inputs/outputs attach to first/last-stage cells in pairs,
/// this is equivalent to: for every first-stage cell u and last-stage cell
/// v there is exactly one directed u -> v path (parallel arcs count as
/// distinct paths — which is precisely how Fig. 5's double links break the
/// property).

#pragma once

#include <cstdint>
#include <optional>

#include "fault/fault_mask.hpp"
#include "min/flat_wiring.hpp"
#include "min/mi_digraph.hpp"

namespace mineq::min {

/// A witness that the Banyan property fails.
struct BanyanFailure {
  std::uint32_t source = 0;       ///< first-stage cell
  std::uint32_t sink = 0;         ///< last-stage cell
  std::uint64_t path_count = 0;   ///< number of u->v paths (0 or >= 2)
};

/// Check the Banyan property: no parallel arcs, then the doubling
/// criterion from every source (|reach_{s+1}| == 2 |reach_s|, see
/// is_banyan_doubling for the equivalence argument) on word-wide
/// reachability bitsets — O(stages * cells^2 / 64) word operations and
/// O(cells / 64) scratch, with fail-fast exit at the first non-doubling
/// stage. Runs sources in parallel across \p threads (0 = hardware
/// concurrency, 1 = sequential).
[[nodiscard]] bool is_banyan(const MIDigraph& g, std::size_t threads = 1);

/// First failure witness found, or nullopt if the property holds.
/// Sequential and deterministic.
[[nodiscard]] std::optional<BanyanFailure> banyan_failure(const MIDigraph& g);

/// Equivalent doubling check: the reachable set from every source must
/// double at every stage (|R_{s+1}| == 2 |R_s|) until it covers the whole
/// last stage, and no parallel arcs may occur. Same verdict as is_banyan
/// (cross-validated in the tests) with bitset-friendly constants.
[[nodiscard]] bool is_banyan_doubling(const MIDigraph& g);

/// Path-count DP from one source to all last-stage cells, saturated at
/// \p cap (exposed for the figure benches and tests).
[[nodiscard]] std::vector<std::uint64_t> path_counts_from(
    const MIDigraph& g, std::uint32_t source, std::uint64_t cap = 4);

/// The same bitset-doubling check over the stage-packed down records.
/// check_baseline_equivalence(FlatWiring) routes through this; it is
/// exposed so callers that already hold the IR never touch the tables.
[[nodiscard]] bool is_banyan(const FlatWiring& w, std::size_t threads = 1);

[[nodiscard]] std::vector<std::uint64_t> path_counts_from(
    const FlatWiring& w, std::uint32_t source, std::uint64_t cap = 4);

/// Path-count DP over the *surviving* arcs of a fault-masked wiring:
/// arcs with a set mask bit carry no paths. The doubling criterion does
/// not apply once out-degrees drop below 2, so faulted classification
/// (equivalence.hpp's classify_faulted) runs on these counts directly:
/// full access is "every count >= 1", unique surviving paths is "every
/// count == 1".
/// \throws std::invalid_argument if the mask geometry does not match.
[[nodiscard]] std::vector<std::uint64_t> path_counts_from(
    const FlatWiring& w, const fault::FaultMask& mask, std::uint32_t source,
    std::uint64_t cap = 4);

}  // namespace mineq::min
