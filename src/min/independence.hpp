/// \file independence.hpp
/// \brief Independent connections (Section 3) and their structure.
///
/// Definition (paper): a connection (f, g) is independent iff
///
///     for all alpha != 0, there exists beta such that for all x:
///         f(x ^ alpha) = beta ^ f(x)   and   g(x ^ alpha) = beta ^ g(x).
///
/// Structure theorem (implicit in the definition, made explicit here and
/// verified exhaustively in the tests): (f, g) is independent iff there is
/// a single GF(2)-linear map L and constants c_f, c_g with
///
///     f(x) = L x ^ c_f,    g(x) = L x ^ c_g,
///
/// and then beta(alpha) = L alpha. Proof sketch: taking x = 0 gives
/// beta(alpha) = f(alpha) ^ f(0), so D(x) = f(x) ^ f(0) satisfies
/// D(x ^ alpha) = D(x) ^ D(alpha) — additivity, i.e. D is linear; the
/// same beta must serve g, forcing the same linear part.
///
/// This yields an O(N log N) independence test (fit both tables as affine
/// maps, compare linear parts) versus the definition's O(N^2); both are
/// implemented, cross-validated, and benchmarked (bench_independence).

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "gf2/affine.hpp"
#include "gf2/matrix.hpp"
#include "min/connection.hpp"

namespace mineq::min {

/// The structural decomposition of an independent connection.
struct LinearForm {
  gf2::Matrix linear;      ///< the shared linear part L
  std::uint32_t c_f = 0;   ///< f(0)
  std::uint32_t c_g = 0;   ///< g(0)

  [[nodiscard]] gf2::AffineMap f_map() const {
    return gf2::AffineMap(linear, c_f);
  }
  [[nodiscard]] gf2::AffineMap g_map() const {
    return gf2::AffineMap(linear, c_g);
  }
};

/// Which of Proposition 1's structural cases a connection falls into,
/// refined with the degree-validity analysis.
enum class StageCase : std::uint8_t {
  kCase1,           ///< L invertible: every vertex has type (f,g)
  kCase2,           ///< rank L = width-1, c_f^c_g outside Im L: (f,f)/(g,g)
  kInvalidDegrees,  ///< independent but not a valid stage (in-degree != 2)
  kNotIndependent,  ///< not an independent connection at all
};

/// Independence per the paper's definition, checked literally:
/// O(4^width) — every alpha against every x. The reference semantics.
[[nodiscard]] bool is_independent_definition(const Connection& conn);

/// Fast independence test via the structure theorem: O(2^width).
[[nodiscard]] bool is_independent(const Connection& conn);

/// The (L, c_f, c_g) decomposition, if the connection is independent.
[[nodiscard]] std::optional<LinearForm> linear_form(const Connection& conn);

/// The beta associated with each alpha (beta[alpha] = L alpha), if
/// independent. beta[0] == 0 corresponds to the excluded alpha = 0.
[[nodiscard]] std::optional<std::vector<std::uint32_t>> beta_map(
    const Connection& conn);

/// Classify the connection into Proposition 1's cases.
[[nodiscard]] StageCase classify_stage(const Connection& conn);

/// Try to recover an independent orientation of an *unordered* connection:
/// given that only the child sets {f(x), g(x)} are meaningful, decide
/// whether the two functions can be re-assigned per cell (swapping f(x)
/// and g(x) for some cells) so that the resulting ordered pair is
/// independent, and return it. Searches the 2^(width+1) affine candidate
/// orientations with early pruning — O(2^width) per candidate.
[[nodiscard]] std::optional<Connection> orient_independent(
    const Connection& conn);

}  // namespace mineq::min
