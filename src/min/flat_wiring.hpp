/// \file flat_wiring.hpp
/// \brief The stage-packed flat wiring IR: one topology representation
/// shared by the equivalence checks, the simulators and the sweeps.
///
/// The paper's point is that many differently-constructed networks are a
/// single topology; FlatWiring is that topology flattened to two
/// contiguous CSR-style uint32_t arrays, built once (from an MIDigraph,
/// from a radix-r KaryMIDigraph, or directly from a PIPID sequence) and
/// consumed read-only everywhere. With r = radix() and C =
/// cells_per_stage():
///
///   down[s * rC + r*x + port] = child_cell * r + input_slot
///   up  [s * rC + r*y + slot] = parent_cell * r + out_port
///
/// Record s spans the connection from stage s to stage s + 1;
/// `input_slot` is the slot (0 .. r-1) of the child cell that the arc
/// feeds, assigned in deterministic (source cell, port) fill order — the
/// exact assignment both switching disciplines simulate, so a wiring
/// built here is bit-compatible with the pre-IR simulators. At r = 2 the
/// packing `cell * 2 + slot` is bit-for-bit the historic
/// `(cell << 1) | slot`, so every radix-2 artifact (goldens, masks,
/// sweeps) carries over unchanged.
///
/// The packing formula lives HERE and only here: consumers unpack through
/// pack_record / unpack_cell / unpack_slot (or the UnpackBinary /
/// UnpackRadix helpers below, which hot kernels dispatch between so the
/// radix-2 paths keep their shift/mask code generation). Do not re-derive
/// `rec >> 1` / `rec & 1` in a consumer.
///
/// Only *valid* MI-digraphs (every in-degree exactly radix) are
/// representable: slot assignment is meaningless otherwise. Degenerate
/// double-link stages (Fig. 5) still have all in-degrees 2 — both slots
/// of a child fed by the same parent — so they flatten fine and fail
/// later checks (Banyan) rather than construction.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "min/mi_digraph.hpp"
#include "perm/index_perm.hpp"

namespace mineq::min {

class KaryMIDigraph;  // kary.hpp

/// Flat, stage-packed wiring of a valid MI-digraph (any radix).
class FlatWiring {
 public:
  /// The 1-stage wiring (no connections, a single cell column).
  FlatWiring() = default;

  /// Flatten a valid (radix-2) MI-digraph.
  /// \throws std::invalid_argument if some cell's in-degree is not 2.
  [[nodiscard]] static FlatWiring from_digraph(const MIDigraph& g);

  /// Flatten a valid radix-r KaryMIDigraph. Identical to from_digraph on
  /// the same tables when the radix is 2 (asserted in the tests).
  /// \throws std::invalid_argument if some cell's in-degree is not radix.
  [[nodiscard]] static FlatWiring from_kary(const KaryMIDigraph& g);

  /// Build directly from a PIPID wiring sequence (pipids.size() + 1
  /// stages, every PIPID of width equal to that stage count), using the
  /// paper's closed bit formula — no Connection image tables and no 2^n
  /// link-permutation table are materialized. Identical to
  /// from_digraph(network_from_pipids(pipids)) record for record
  /// (including degenerate k == 0 stages, whose double links are valid
  /// in-degree-2 wirings).
  /// \throws std::invalid_argument on a width mismatch or an empty
  /// sequence.
  [[nodiscard]] static FlatWiring from_pipids(
      const std::vector<perm::IndexPermutation>& pipids);

  /// Build directly from explicit per-connection child tables:
  /// child_of_link_per_stage[s][radix * x + port] is the child cell the
  /// port-p out-link of cell x at stage s lands in. This is the escape
  /// hatch for geometries KaryMIDigraph cannot represent (it pins cells =
  /// radix^(stages-1)): the multipath fabrics (Benes, dilated, replicated
  /// planes) compose existing stage blocks into wirings with 2n-1 stages,
  /// radix r*d cells, or p*C cells. Slot assignment goes through the same
  /// pack_stage fill order as every other constructor.
  /// \throws std::invalid_argument on a geometry/table-size mismatch or if
  /// some cell's in-degree is not radix.
  [[nodiscard]] static FlatWiring from_stage_children(
      int stages, std::uint32_t cells, int radix,
      const std::vector<std::vector<std::uint32_t>>& child_of_link_per_stage);

  /// Reject geometries the packed records cannot represent: radix must
  /// be within [2, 64] (uint8 slot-fill counters; kary constructions cap
  /// at 16 anyway), stages >= 1, cells >= 1, and cells * radix must fit
  /// a uint32_t — the largest packed record is cells * radix - 1, and a
  /// larger geometry would wrap silently long before the arrays
  /// themselves hit memory limits. Called by every constructor *before*
  /// any allocation; public so the boundary is testable without
  /// materializing a near-2^32-record wiring.
  /// \throws std::invalid_argument naming the offending geometry.
  static void check_geometry(int stages, std::uint64_t cells, int radix);

  // -------------------------------------------------------------------
  // The packing formula (the single source of truth).
  // -------------------------------------------------------------------

  /// The packed record of an arc landing in (cell, slot) at radix r.
  [[nodiscard]] static constexpr std::uint32_t pack_record(
      std::uint32_t cell, unsigned slot, unsigned radix) noexcept {
    return cell * radix + slot;
  }
  [[nodiscard]] static constexpr std::uint32_t unpack_cell(
      std::uint32_t record, unsigned radix) noexcept {
    return record / radix;
  }
  [[nodiscard]] static constexpr unsigned unpack_slot(
      std::uint32_t record, unsigned radix) noexcept {
    return record % radix;
  }

  /// Member forms over this wiring's radix.
  [[nodiscard]] std::uint32_t unpack_cell(std::uint32_t record) const noexcept {
    return unpack_cell(record, static_cast<unsigned>(radix_));
  }
  [[nodiscard]] unsigned unpack_slot(std::uint32_t record) const noexcept {
    return unpack_slot(record, static_cast<unsigned>(radix_));
  }

  [[nodiscard]] int stages() const noexcept { return stages_; }

  /// Switch degree: ports (= input slots) per cell.
  [[nodiscard]] int radix() const noexcept { return radix_; }

  /// Cell-label width: stages - 1 base-radix digits.
  [[nodiscard]] int width() const noexcept { return stages_ - 1; }

  [[nodiscard]] std::uint32_t cells_per_stage() const noexcept {
    return cells_;
  }

  /// Links (= records) per inter-stage connection: radix * cells.
  [[nodiscard]] std::size_t links_per_stage() const noexcept {
    return static_cast<std::size_t>(radix_) * cells_;
  }

  /// The packed down records of connection \p s: entry radix*x + port is
  /// pack_record(child, slot) for the port-p out-link of cell x at
  /// stage s.
  [[nodiscard]] std::span<const std::uint32_t> down_stage(int s) const {
    return {down_.data() + static_cast<std::size_t>(s) * links_per_stage(),
            links_per_stage()};
  }

  /// The packed up records of connection \p s: entry radix*y + slot is
  /// pack_record(parent, port) for input slot `slot` of cell y at
  /// stage s + 1.
  [[nodiscard]] std::span<const std::uint32_t> up_stage(int s) const {
    return {up_.data() + static_cast<std::size_t>(s) * links_per_stage(),
            links_per_stage()};
  }

  /// Child cell reached by the port-\p port out-link of cell \p x at
  /// stage \p s.
  [[nodiscard]] std::uint32_t child(int s, std::uint32_t x,
                                    unsigned port) const {
    return unpack_cell(
        down_stage(s)[static_cast<std::size_t>(radix_) * x + port]);
  }

  /// Input slot (0 .. radix-1) of that child that the arc feeds.
  [[nodiscard]] unsigned slot(int s, std::uint32_t x, unsigned port) const {
    return unpack_slot(
        down_stage(s)[static_cast<std::size_t>(radix_) * x + port]);
  }

  /// Parent cell feeding input slot \p slot of cell \p y at stage s + 1.
  [[nodiscard]] std::uint32_t parent(int s, std::uint32_t y,
                                     unsigned slot) const {
    return unpack_cell(
        up_stage(s)[static_cast<std::size_t>(radix_) * y + slot]);
  }

  /// Out-port of that parent the arc leaves through.
  [[nodiscard]] unsigned parent_port(int s, std::uint32_t y,
                                     unsigned slot) const {
    return unpack_slot(
        up_stage(s)[static_cast<std::size_t>(radix_) * y + slot]);
  }

  friend bool operator==(const FlatWiring&, const FlatWiring&) = default;

 private:
  FlatWiring(int stages, std::uint32_t cells, int radix);

  /// Assign slots for one connection given its child function; used by
  /// every constructor so the fill order is identical. \p filled is
  /// caller-owned scratch of cells_per_stage() bytes.
  void pack_stage(int s, const std::vector<std::uint32_t>& child_of_link,
                  std::vector<std::uint8_t>& filled);

  int stages_ = 1;
  int radix_ = 2;
  std::uint32_t cells_ = 1;
  std::vector<std::uint32_t> down_;
  std::vector<std::uint32_t> up_;
};

/// Compile-time radix-2 unpacker: hot kernels (Banyan bitset sweeps, DSU
/// profiles, the masked path DP, both simulator policies) dispatch on
/// radix() == 2 to an instantiation over this type, so radix-2 code paths
/// keep their historic shift/mask code generation (no runtime division)
/// and stay byte- and speed-identical to the pre-k-ary IR.
struct UnpackBinary {
  [[nodiscard]] static constexpr unsigned radix() noexcept { return 2; }
  [[nodiscard]] static constexpr std::uint32_t cell(
      std::uint32_t record) noexcept {
    return FlatWiring::unpack_cell(record, 2);
  }
  [[nodiscard]] static constexpr unsigned slot(std::uint32_t record) noexcept {
    return FlatWiring::unpack_slot(record, 2);
  }
};

/// Runtime radix-r unpacker for the general instantiations.
struct UnpackRadix {
  unsigned r;
  [[nodiscard]] constexpr unsigned radix() const noexcept { return r; }
  [[nodiscard]] constexpr std::uint32_t cell(std::uint32_t record) const
      noexcept {
    return FlatWiring::unpack_cell(record, r);
  }
  [[nodiscard]] constexpr unsigned slot(std::uint32_t record) const noexcept {
    return FlatWiring::unpack_slot(record, r);
  }
};

// The packing round-trips at every radix, and the radix-2 packing is
// bit-for-bit the historic (cell << 1) | slot. A consumer that re-derives
// the formula instead of calling these helpers is a bug; these asserts
// pin the helpers themselves.
static_assert(FlatWiring::pack_record(5, 1, 2) == ((5u << 1) | 1u));
static_assert(FlatWiring::unpack_cell(FlatWiring::pack_record(7, 1, 2), 2) ==
              7u);
static_assert(FlatWiring::unpack_slot(FlatWiring::pack_record(7, 1, 2), 2) ==
              1u);
static_assert(FlatWiring::unpack_cell(FlatWiring::pack_record(11, 2, 3), 3) ==
              11u);
static_assert(FlatWiring::unpack_slot(FlatWiring::pack_record(11, 2, 3), 3) ==
              2u);
static_assert(UnpackBinary::cell(FlatWiring::pack_record(9, 0, 2)) == 9u);
static_assert(UnpackBinary::slot(FlatWiring::pack_record(9, 0, 2)) == 0u);

}  // namespace mineq::min
