/// \file flat_wiring.hpp
/// \brief The stage-packed flat wiring IR: one topology representation
/// shared by the equivalence checks, the simulators and the sweeps.
///
/// The paper's point is that many differently-constructed networks are a
/// single topology; FlatWiring is that topology flattened to two
/// contiguous CSR-style uint32_t arrays, built once (from an MIDigraph or
/// directly from a PIPID sequence) and consumed read-only everywhere:
///
///   down[s * 2C + 2x + port] = (child_cell << 1) | input_slot
///   up  [s * 2C + 2y + slot] = (parent_cell << 1) | out_port
///
/// with C = cells_per_stage(). Record s spans the connection from stage s
/// to stage s + 1; `input_slot` is the slot (0 or 1) of the child cell
/// that the arc feeds, assigned in deterministic (source cell, port)
/// fill order — the exact assignment both switching disciplines simulate,
/// so a wiring built here is bit-compatible with the pre-IR simulators.
///
/// Only *valid* MI-digraphs (every in-degree exactly 2) are representable:
/// slot assignment is meaningless otherwise. Degenerate double-link
/// stages (Fig. 5) still have all in-degrees 2 — both slots of a child
/// fed by the same parent — so they flatten fine and fail later checks
/// (Banyan) rather than construction.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "min/mi_digraph.hpp"
#include "perm/index_perm.hpp"

namespace mineq::min {

/// Flat, stage-packed wiring of a valid MI-digraph.
class FlatWiring {
 public:
  /// The 1-stage wiring (no connections, a single cell column).
  FlatWiring() = default;

  /// Flatten a valid MI-digraph.
  /// \throws std::invalid_argument if some cell's in-degree is not 2.
  [[nodiscard]] static FlatWiring from_digraph(const MIDigraph& g);

  /// Build directly from a PIPID wiring sequence (pipids.size() + 1
  /// stages, every PIPID of width equal to that stage count), using the
  /// paper's closed bit formula — no Connection image tables and no 2^n
  /// link-permutation table are materialized. Identical to
  /// from_digraph(network_from_pipids(pipids)) record for record
  /// (including degenerate k == 0 stages, whose double links are valid
  /// in-degree-2 wirings).
  /// \throws std::invalid_argument on a width mismatch or an empty
  /// sequence.
  [[nodiscard]] static FlatWiring from_pipids(
      const std::vector<perm::IndexPermutation>& pipids);

  [[nodiscard]] int stages() const noexcept { return stages_; }

  /// Cell-label width (stages - 1 bits).
  [[nodiscard]] int width() const noexcept { return stages_ - 1; }

  [[nodiscard]] std::uint32_t cells_per_stage() const noexcept {
    return cells_;
  }

  /// Links (= records) per inter-stage connection: 2 * cells_per_stage().
  [[nodiscard]] std::size_t links_per_stage() const noexcept {
    return std::size_t{2} * cells_;
  }

  /// The packed down records of connection \p s: entry 2x + port is
  /// (child << 1) | slot for the port-p out-link of cell x at stage s.
  [[nodiscard]] std::span<const std::uint32_t> down_stage(int s) const {
    return {down_.data() + static_cast<std::size_t>(s) * links_per_stage(),
            links_per_stage()};
  }

  /// The packed up records of connection \p s: entry 2y + slot is
  /// (parent << 1) | port for input slot `slot` of cell y at stage s + 1.
  [[nodiscard]] std::span<const std::uint32_t> up_stage(int s) const {
    return {up_.data() + static_cast<std::size_t>(s) * links_per_stage(),
            links_per_stage()};
  }

  /// Child cell reached by the port-\p port out-link of cell \p x at
  /// stage \p s.
  [[nodiscard]] std::uint32_t child(int s, std::uint32_t x,
                                    unsigned port) const {
    return down_stage(s)[2 * x + port] >> 1;
  }

  /// Input slot (0 or 1) of that child that the arc feeds.
  [[nodiscard]] unsigned slot(int s, std::uint32_t x, unsigned port) const {
    return down_stage(s)[2 * x + port] & 1U;
  }

  /// Parent cell feeding input slot \p slot of cell \p y at stage s + 1.
  [[nodiscard]] std::uint32_t parent(int s, std::uint32_t y,
                                     unsigned slot) const {
    return up_stage(s)[2 * y + slot] >> 1;
  }

  /// Out-port of that parent the arc leaves through.
  [[nodiscard]] unsigned parent_port(int s, std::uint32_t y,
                                     unsigned slot) const {
    return up_stage(s)[2 * y + slot] & 1U;
  }

  friend bool operator==(const FlatWiring&, const FlatWiring&) = default;

 private:
  FlatWiring(int stages, std::uint32_t cells)
      : stages_(stages),
        cells_(cells),
        down_(static_cast<std::size_t>(stages - 1) * 2 * cells, 0),
        up_(static_cast<std::size_t>(stages - 1) * 2 * cells, 0) {}

  /// Assign slots for one connection given its child function; used by
  /// both constructors so the fill order is identical. \p filled is
  /// caller-owned scratch of cells_per_stage() bytes.
  void pack_stage(int s, const std::vector<std::uint32_t>& child_of_link,
                  std::vector<std::uint8_t>& filled);

  int stages_ = 1;
  std::uint32_t cells_ = 1;
  std::vector<std::uint32_t> down_;
  std::vector<std::uint32_t> up_;
};

}  // namespace mineq::min
