#include "min/labels.hpp"

#include <stdexcept>

#include "util/bitops.hpp"
#include "util/format.hpp"

namespace mineq::min {

namespace {

void check_stages(int stages) {
  if (stages < 1 || stages > util::kMaxBits) {
    throw std::invalid_argument("labels: stage count out of range");
  }
}

}  // namespace

int cell_width(int stages) {
  check_stages(stages);
  return stages - 1;
}

std::uint32_t cells_per_stage(int stages) {
  check_stages(stages);
  return std::uint32_t{1} << (stages - 1);
}

std::uint64_t terminal_count(int stages) {
  check_stages(stages);
  return std::uint64_t{1} << stages;
}

std::uint32_t link_label(std::uint32_t cell, unsigned port) {
  if (port > 1) throw std::invalid_argument("link_label: port must be 0/1");
  return (cell << 1) | port;
}

std::uint32_t link_cell(std::uint32_t link) { return link >> 1; }

unsigned link_port(std::uint32_t link) {
  return static_cast<unsigned>(link & 1U);
}

gf2::BitVec cell_vec(std::uint32_t cell, int stages) {
  return gf2::BitVec(cell, cell_width(stages));
}

std::vector<std::string> stage_label_strings(int stages) {
  const std::uint32_t cells = cells_per_stage(stages);
  std::vector<std::string> out;
  out.reserve(cells);
  for (std::uint32_t c = 0; c < cells; ++c) {
    out.push_back(util::bit_tuple(c, stages - 1));
  }
  return out;
}

std::vector<std::string> link_label_strings(int stages) {
  check_stages(stages);
  const std::uint64_t links = std::uint64_t{1} << stages;
  std::vector<std::string> out;
  out.reserve(links);
  for (std::uint64_t y = 0; y < links; ++y) {
    out.push_back(util::bit_tuple(y, stages));
  }
  return out;
}

}  // namespace mineq::min
