/// \file buddy.hpp
/// \brief Agrawal's buddy property and its relation to P(i, i+1).
///
/// Following [8] (cited by the paper): "two nodes y and y' are buddy if
/// they have the same father". The buddy *property* of a stage requires
/// the cells to pair up into K_{2,2} blocks: every two cells sharing one
/// parent share both parents. The paper points out (via [10]) that the
/// buddy conditions of Agrawal's Theorem 1 are *not* sufficient for
/// baseline equivalence; our library exposes the check so the tests and
/// benches can demonstrate exactly that gap (buddy holds for all our
/// equivalent networks, and satisfying buddy at every stage does not imply
/// P(1,*) / P(*,n)).
///
/// Relation to the P properties: the buddy property of stage s *implies*
/// P(s, s+1) (K_{2,2} blocks give exactly cells/2 components), but the
/// converse fails — e.g. a stage wired as one 6-cycle plus one double-link
/// pair also has cells/2 components without any buddy structure. The
/// buddy_test suite pins both directions.

#pragma once

#include <cstdint>
#include <optional>

#include "min/connection.hpp"
#include "min/mi_digraph.hpp"

namespace mineq::min {

/// Does this connection's bipartite graph decompose into K_{2,2} blocks?
/// (Equivalently: its stage-pair subgraph has exactly cells/2 components.)
[[nodiscard]] bool has_buddy_property(const Connection& conn);

/// Buddy property at every stage of the digraph.
[[nodiscard]] bool has_buddy_property(const MIDigraph& g);

/// The buddy partner of cell \p x under \p conn: the unique other cell
/// with the same pair of children, or nullopt if the buddy property fails
/// at \p x (or \p x has parallel children making the notion degenerate).
[[nodiscard]] std::optional<std::uint32_t> buddy_partner(
    const Connection& conn, std::uint32_t x);

}  // namespace mineq::min
