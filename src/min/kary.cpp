#include "min/kary.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/dsu.hpp"
#include "perm/permutation.hpp"

namespace mineq::min {

namespace {

void check_shape(int radix, int digits) {
  if (radix < 2 || radix > 16) {
    throw std::invalid_argument("kary: radix out of range [2,16]");
  }
  if (digits < 0 || digits > 20) {
    throw std::invalid_argument("kary: digits out of range [0,20]");
  }
  double cells = 1;
  for (int i = 0; i < digits; ++i) cells *= radix;
  if (cells > 1 << 22) {
    throw std::invalid_argument("kary: too many cells");
  }
}

/// A random additive bijection of Z_r^d as a d x d matrix over Z_r,
/// generated from the identity by random row operations (always
/// invertible regardless of whether r is prime).
std::vector<std::vector<unsigned>> random_additive_matrix(
    int radix, int digits, util::SplitMix64& rng) {
  std::vector<std::vector<unsigned>> m(
      static_cast<std::size_t>(digits),
      std::vector<unsigned>(static_cast<std::size_t>(digits), 0));
  for (int i = 0; i < digits; ++i) {
    m[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = 1;
  }
  const int ops = digits * digits * 2;
  for (int op = 0; op < ops; ++op) {
    const auto i = static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(digits)));
    auto j = static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(digits)));
    if (digits > 1) {
      while (j == i) {
        j = static_cast<std::size_t>(
            rng.below(static_cast<std::uint64_t>(digits)));
      }
    }
    if (i == j) continue;
    if (rng.chance(1, 4)) {
      std::swap(m[i], m[j]);  // row swap
    } else {
      // row_i += k * row_j  (invertible for any k).
      const unsigned k = static_cast<unsigned>(
          rng.below(static_cast<std::uint64_t>(radix)));
      for (int c = 0; c < digits; ++c) {
        auto& cell = m[i][static_cast<std::size_t>(c)];
        cell = (cell + k * m[j][static_cast<std::size_t>(c)]) %
               static_cast<unsigned>(radix);
      }
    }
  }
  return m;
}

}  // namespace

RadixLabel::RadixLabel(int radix, int digits)
    : radix_(radix), digits_(digits) {
  check_shape(radix, digits);
  power_.resize(static_cast<std::size_t>(digits) + 1);
  power_[0] = 1;
  for (int i = 0; i < digits; ++i) {
    power_[static_cast<std::size_t>(i) + 1] =
        power_[static_cast<std::size_t>(i)] *
        static_cast<std::uint32_t>(radix);
  }
  cells_ = power_.back();
}

std::uint32_t RadixLabel::add(std::uint32_t a, std::uint32_t b) const {
  std::uint32_t out = 0;
  for (int i = 0; i < digits_; ++i) {
    const unsigned sum = digit(a, i) + digit(b, i);
    out += (sum % static_cast<unsigned>(radix_)) *
           power_[static_cast<std::size_t>(i)];
  }
  return out;
}

std::uint32_t RadixLabel::sub(std::uint32_t a, std::uint32_t b) const {
  std::uint32_t out = 0;
  for (int i = 0; i < digits_; ++i) {
    const unsigned diff =
        digit(a, i) + static_cast<unsigned>(radix_) - digit(b, i);
    out += (diff % static_cast<unsigned>(radix_)) *
           power_[static_cast<std::size_t>(i)];
  }
  return out;
}

unsigned RadixLabel::digit(std::uint32_t value, int i) const {
  return (value / power_[static_cast<std::size_t>(i)]) %
         static_cast<unsigned>(radix_);
}

std::uint32_t RadixLabel::with_digit(std::uint32_t value, int i,
                                     unsigned d) const {
  const std::uint32_t stripped =
      value - digit(value, i) * power_[static_cast<std::size_t>(i)];
  return stripped + d * power_[static_cast<std::size_t>(i)];
}

KaryConnection::KaryConnection(
    std::vector<std::vector<std::uint32_t>> tables, int radix, int digits)
    : radix_(radix), digits_(digits), tables_(std::move(tables)) {
  check_shape(radix, digits);
  const RadixLabel label(radix, digits);
  if (tables_.size() != static_cast<std::size_t>(radix)) {
    throw std::invalid_argument("KaryConnection: need radix tables");
  }
  for (const auto& t : tables_) {
    if (t.size() != label.cells()) {
      throw std::invalid_argument("KaryConnection: table size mismatch");
    }
    for (std::uint32_t v : t) {
      if (v >= label.cells()) {
        throw std::invalid_argument("KaryConnection: entry out of range");
      }
    }
  }
}

KaryConnection KaryConnection::from_functions(
    int radix, int digits,
    const std::function<std::uint32_t(unsigned, std::uint32_t)>& child) {
  const RadixLabel label(radix, digits);
  std::vector<std::vector<std::uint32_t>> tables(
      static_cast<std::size_t>(radix));
  for (unsigned t = 0; t < static_cast<unsigned>(radix); ++t) {
    tables[t].resize(label.cells());
    for (std::uint32_t x = 0; x < label.cells(); ++x) {
      tables[t][x] = child(t, x);
    }
  }
  return KaryConnection(std::move(tables), radix, digits);
}

KaryConnection KaryConnection::random_independent(int radix, int digits,
                                                  util::SplitMix64& rng) {
  const RadixLabel label(radix, digits);
  const auto matrix = random_additive_matrix(radix, digits, rng);
  auto apply_l = [&](std::uint32_t x) {
    std::uint32_t out = 0;
    for (int i = 0; i < digits; ++i) {
      unsigned acc = 0;
      for (int j = 0; j < digits; ++j) {
        acc += matrix[static_cast<std::size_t>(i)]
                     [static_cast<std::size_t>(j)] *
               label.digit(x, j);
      }
      out = label.with_digit(out, i, acc % static_cast<unsigned>(radix));
    }
    return out;
  };
  // Distinct per-port translations keep the stage simple (all ports are
  // bijections, in-degree exactly r when the c_t are pairwise distinct —
  // in-degree is r regardless, parallel arcs only when c_t collide).
  std::vector<std::uint32_t> c(static_cast<std::size_t>(radix));
  for (auto& v : c) {
    v = static_cast<std::uint32_t>(rng.below(label.cells()));
  }
  return from_functions(radix, digits,
                        [&](unsigned t, std::uint32_t x) {
                          return label.add(apply_l(x), c[t]);
                        });
}

unsigned KaryConnection::element_order(int radix, int digits,
                                       std::uint32_t h) {
  const RadixLabel label(radix, digits);
  std::uint32_t acc = h;
  unsigned order = 1;
  while (acc != 0) {
    acc = label.add(acc, h);
    ++order;
    if (order > static_cast<unsigned>(radix)) {
      throw std::logic_error("element_order: order exceeds radix");
    }
  }
  return order;
}

KaryConnection KaryConnection::random_independent_aligned(
    int radix, int digits, util::SplitMix64& rng) {
  if (digits < 1) {
    throw std::invalid_argument(
        "random_independent_aligned: digits must be >= 1");
  }
  const RadixLabel label(radix, digits);
  const auto matrix = random_additive_matrix(radix, digits, rng);
  auto apply_l = [&](std::uint32_t x) {
    std::uint32_t out = 0;
    for (int i = 0; i < digits; ++i) {
      unsigned acc = 0;
      for (int j = 0; j < digits; ++j) {
        acc += matrix[static_cast<std::size_t>(i)]
                     [static_cast<std::size_t>(j)] *
               label.digit(x, j);
      }
      out = label.with_digit(out, i, acc % static_cast<unsigned>(radix));
    }
    return out;
  };
  // h of full additive order r (exists: any unit vector qualifies), then
  // translations c, c+h, c+2h, ..., c+(r-1)h — one full coset of <h>.
  std::uint32_t h = 0;
  do {
    h = static_cast<std::uint32_t>(rng.below(label.cells()));
  } while (h == 0 ||
           element_order(radix, digits, h) !=
               static_cast<unsigned>(radix));
  const auto c = static_cast<std::uint32_t>(rng.below(label.cells()));
  std::vector<std::uint32_t> translations(static_cast<std::size_t>(radix));
  std::uint32_t current = c;
  for (int t = 0; t < radix; ++t) {
    translations[static_cast<std::size_t>(t)] = current;
    current = label.add(current, h);
  }
  return from_functions(radix, digits,
                        [&](unsigned t, std::uint32_t x) {
                          return label.add(apply_l(x), translations[t]);
                        });
}

KaryConnection KaryConnection::random_valid(int radix, int digits,
                                            util::SplitMix64& rng) {
  const RadixLabel label(radix, digits);
  std::vector<std::vector<std::uint32_t>> tables;
  tables.reserve(static_cast<std::size_t>(radix));
  for (int t = 0; t < radix; ++t) {
    tables.push_back(
        perm::Permutation::random(label.cells(), rng).image());
  }
  return KaryConnection(std::move(tables), radix, digits);
}

std::uint32_t KaryConnection::child(unsigned port, std::uint32_t x) const {
  if (port >= static_cast<unsigned>(radix_) || x >= cells()) {
    throw std::invalid_argument("KaryConnection::child: out of range");
  }
  return tables_[port][x];
}

const std::vector<std::uint32_t>& KaryConnection::table(unsigned port) const {
  if (port >= static_cast<unsigned>(radix_)) {
    throw std::invalid_argument("KaryConnection::table: port out of range");
  }
  return tables_[port];
}

bool KaryConnection::is_valid_stage() const {
  std::vector<std::uint32_t> indeg(cells(), 0);
  for (const auto& t : tables_) {
    for (std::uint32_t v : t) ++indeg[v];
  }
  return std::all_of(indeg.begin(), indeg.end(), [this](std::uint32_t d) {
    return d == static_cast<std::uint32_t>(radix_);
  });
}

bool KaryConnection::is_independent_definition() const {
  const RadixLabel label(radix_, digits_);
  for (std::uint32_t alpha = 1; alpha < cells(); ++alpha) {
    const std::uint32_t beta = label.sub(tables_[0][alpha], tables_[0][0]);
    for (const auto& t : tables_) {
      for (std::uint32_t x = 0; x < cells(); ++x) {
        if (t[label.add(x, alpha)] != label.add(beta, t[x])) return false;
      }
    }
  }
  return true;
}

bool KaryConnection::is_independent() const {
  const RadixLabel label(radix_, digits_);
  // Shared difference map: D(x) = table_t[x] (-) table_t[0] must agree for
  // all t and be additive.
  std::vector<std::uint32_t> d(cells());
  for (std::uint32_t x = 0; x < cells(); ++x) {
    d[x] = label.sub(tables_[0][x], tables_[0][0]);
  }
  for (std::size_t t = 1; t < tables_.size(); ++t) {
    for (std::uint32_t x = 0; x < cells(); ++x) {
      if (label.sub(tables_[t][x], tables_[t][0]) != d[x]) return false;
    }
  }
  // Additivity by peeling one unit off the lowest nonzero digit:
  // x = e_i (+) x'  with  x' = x - r^i  (no borrow), so
  // D(x) must equal D(e_i) (+) D(x').
  for (std::uint32_t x = 1; x < cells(); ++x) {
    int lowest = 0;
    while (label.digit(x, lowest) == 0) ++lowest;
    std::uint32_t unit = 1;
    for (int i = 0; i < lowest; ++i) {
      unit *= static_cast<std::uint32_t>(radix_);
    }
    const std::uint32_t rest = x - unit;
    if (rest == 0) continue;  // D(e_i * k) chain anchored at units below
    if (d[x] != label.add(d[unit], d[rest])) return false;
  }
  return true;
}

KaryMIDigraph::KaryMIDigraph(int stages, int radix,
                             std::vector<KaryConnection> connections)
    : stages_(stages), radix_(radix), connections_(std::move(connections)) {
  if (stages < 1) {
    throw std::invalid_argument("KaryMIDigraph: stages must be >= 1");
  }
  check_shape(radix, stages - 1);
  if (connections_.size() != static_cast<std::size_t>(stages - 1)) {
    throw std::invalid_argument("KaryMIDigraph: need stages-1 connections");
  }
  for (const auto& c : connections_) {
    if (c.radix() != radix || c.digits() != stages - 1) {
      throw std::invalid_argument("KaryMIDigraph: connection shape mismatch");
    }
  }
}

std::uint32_t KaryMIDigraph::cells_per_stage() const {
  return RadixLabel(radix_, stages_ - 1).cells();
}

const KaryConnection& KaryMIDigraph::connection(int index) const {
  if (index < 0 || index >= stages_ - 1) {
    throw std::invalid_argument("KaryMIDigraph::connection: range");
  }
  return connections_[static_cast<std::size_t>(index)];
}

bool KaryMIDigraph::is_valid() const {
  return std::all_of(connections_.begin(), connections_.end(),
                     [](const KaryConnection& c) {
                       return c.is_valid_stage();
                     });
}

void KaryMIDigraph::attach_schedule(DigitSchedule schedule) {
  const auto digits = static_cast<std::size_t>(stages_ - 1);
  if (schedule.radix != radix_ || schedule.digit.size() != digits ||
      schedule.port_of_value.size() != digits) {
    throw std::invalid_argument(
        "KaryMIDigraph::attach_schedule: schedule shape does not match "
        "this network (radix or stage count)");
  }
  schedule_ = std::move(schedule);
}

KaryMIDigraph kary_baseline(int stages, int radix) {
  check_shape(radix, stages - 1);
  const int digits = stages - 1;
  std::vector<KaryConnection> connections;
  for (int s = 0; s < digits; ++s) {
    // Block size r^(digits - s); within each block, position p maps to
    // p / r plus port * blocksize / r (the r sub-networks side by side).
    std::uint32_t block = 1;
    for (int i = 0; i < digits - s; ++i) {
      block *= static_cast<std::uint32_t>(radix);
    }
    const std::uint32_t sub = block / static_cast<std::uint32_t>(radix);
    connections.push_back(KaryConnection::from_functions(
        radix, digits, [&](unsigned t, std::uint32_t y) {
          const std::uint32_t p = y % block;
          return (y - p) + p / static_cast<std::uint32_t>(radix) + t * sub;
        }));
  }
  KaryMIDigraph g(stages, radix, std::move(connections));
  if (stages >= 2) {
    g.attach_schedule(
        kary_network_schedule(NetworkKind::kBaseline, stages, radix));
  }
  return g;
}

KaryMIDigraph kary_omega(int stages, int radix) {
  check_shape(radix, stages - 1);
  const int digits = stages - 1;
  const RadixLabel label(radix, digits);
  const std::uint32_t cells = label.cells();
  std::vector<KaryConnection> connections;
  for (int s = 0; s < digits; ++s) {
    // Digit rotate-left on the n-digit link label (x * r + t): the child
    // cell is (x * r + t) mod r^(n-1).
    connections.push_back(KaryConnection::from_functions(
        radix, digits, [&](unsigned t, std::uint32_t x) {
          return (x * static_cast<std::uint32_t>(radix) + t) % cells;
        }));
  }
  KaryMIDigraph g(stages, radix, std::move(connections));
  if (stages >= 2) {
    g.attach_schedule(
        kary_network_schedule(NetworkKind::kOmega, stages, radix));
  }
  return g;
}

KaryMIDigraph kary_flip(int stages, int radix) {
  check_shape(radix, stages - 1);
  const int digits = stages - 1;
  const RadixLabel label(radix, digits);
  const std::uint32_t cells = label.cells();
  const std::uint32_t sub = cells / static_cast<std::uint32_t>(radix);
  std::vector<KaryConnection> connections;
  for (int s = 0; s < digits; ++s) {
    // Digit rotate-right on the n-digit link label (x * r + t): drop the
    // port digit into the top position, shift the cell digits down.
    connections.push_back(KaryConnection::from_functions(
        radix, digits, [&](unsigned t, std::uint32_t x) {
          return x / static_cast<std::uint32_t>(radix) + t * sub;
        }));
  }
  KaryMIDigraph g(stages, radix, std::move(connections));
  if (stages >= 2) {
    g.attach_schedule(
        kary_network_schedule(NetworkKind::kFlip, stages, radix));
  }
  return g;
}

bool kary_network_supported(NetworkKind kind) {
  return kind == NetworkKind::kOmega || kind == NetworkKind::kFlip ||
         kind == NetworkKind::kBaseline;
}

DigitSchedule kary_network_schedule(NetworkKind kind, int stages, int radix) {
  if (!kary_network_supported(kind)) {
    throw std::invalid_argument(
        "kary_network_schedule: no closed-form schedule for " +
        network_name(kind));
  }
  if (stages < 2) {
    throw std::invalid_argument("kary_network_schedule: stages must be >= 2");
  }
  check_shape(radix, stages - 1);
  const int digits = stages - 1;
  DigitSchedule schedule;
  schedule.radix = radix;
  schedule.digit.resize(static_cast<std::size_t>(digits));
  std::vector<unsigned> identity(static_cast<std::size_t>(radix));
  for (int v = 0; v < radix; ++v) {
    identity[static_cast<std::size_t>(v)] = static_cast<unsigned>(v);
  }
  schedule.port_of_value.assign(static_cast<std::size_t>(digits), identity);
  for (int s = 0; s < digits; ++s) {
    // Omega: stage s rotates the link label left, so the port chosen at
    // stage s becomes digit (digits - 1 - s) of the final cell label —
    // consume the destination MSB first. Baseline: stage s splits into r
    // sub-blocks by the same high digit. Flip: the rotate-right drops
    // the port into the top digit and shifts the rest down, so stage s
    // decides digit s — LSB first. All three take the digit value as
    // the port unchanged (identity maps).
    schedule.digit[static_cast<std::size_t>(s)] =
        kind == NetworkKind::kFlip ? s : digits - 1 - s;
  }
  return schedule;
}

KaryMIDigraph build_kary_network(NetworkKind kind, int stages, int radix) {
  switch (kind) {
    case NetworkKind::kOmega:
      return kary_omega(stages, radix);
    case NetworkKind::kFlip:
      return kary_flip(stages, radix);
    case NetworkKind::kBaseline:
      return kary_baseline(stages, radix);
    default:
      throw std::invalid_argument(
          "build_kary_network: no radix-r construction for " +
          network_name(kind) +
          " (supported at radix > 2: omega, flip, baseline)");
  }
}

bool kary_is_banyan(const KaryMIDigraph& g) {
  const std::uint32_t cells = g.cells_per_stage();
  std::vector<std::uint64_t> counts(cells);
  std::vector<std::uint64_t> next(cells);
  for (std::uint32_t source = 0; source < cells; ++source) {
    std::fill(counts.begin(), counts.end(), 0);
    counts[source] = 1;
    for (int s = 0; s + 1 < g.stages(); ++s) {
      const KaryConnection& conn = g.connection(s);
      std::fill(next.begin(), next.end(), 0);
      for (std::uint32_t x = 0; x < cells; ++x) {
        if (counts[x] == 0) continue;
        for (unsigned t = 0; t < static_cast<unsigned>(g.radix()); ++t) {
          auto& target = next[conn.table(t)[x]];
          target = std::min<std::uint64_t>(2, target + counts[x]);
        }
      }
      counts.swap(next);
    }
    for (std::uint64_t c : counts) {
      if (c != 1) return false;
    }
  }
  return true;
}

std::size_t kary_component_count_range(const KaryMIDigraph& g, int lo,
                                       int hi) {
  if (lo < 0 || hi >= g.stages() || lo > hi) {
    throw std::invalid_argument("kary P(i,j): bad stage range");
  }
  const std::uint32_t cells = g.cells_per_stage();
  graph::DSU dsu(static_cast<std::size_t>(hi - lo + 1) * cells);
  for (int s = lo; s < hi; ++s) {
    const KaryConnection& conn = g.connection(s);
    const std::uint32_t base = static_cast<std::uint32_t>(s - lo) * cells;
    for (unsigned t = 0; t < static_cast<unsigned>(g.radix()); ++t) {
      for (std::uint32_t x = 0; x < cells; ++x) {
        dsu.unite(base + x, base + cells + conn.table(t)[x]);
      }
    }
  }
  return dsu.components();
}

bool kary_satisfies_p(const KaryMIDigraph& g, int lo, int hi) {
  std::size_t expected = g.cells_per_stage();
  for (int i = 0; i < hi - lo; ++i) {
    expected /= static_cast<std::size_t>(g.radix());
  }
  return kary_component_count_range(g, lo, hi) == expected;
}

bool kary_satisfies_p1_star(const KaryMIDigraph& g) {
  for (int j = 0; j < g.stages(); ++j) {
    if (!kary_satisfies_p(g, 0, j)) return false;
  }
  return true;
}

bool kary_satisfies_p_star_n(const KaryMIDigraph& g) {
  for (int i = 0; i < g.stages(); ++i) {
    if (!kary_satisfies_p(g, i, g.stages() - 1)) return false;
  }
  return true;
}

bool kary_is_baseline_equivalent(const KaryMIDigraph& g) {
  return g.is_valid() && kary_is_banyan(g) && kary_satisfies_p1_star(g) &&
         kary_satisfies_p_star_n(g);
}

}  // namespace mineq::min
