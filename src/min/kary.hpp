/// \file kary.hpp
/// \brief Extension: MI-digraphs over r x r switching cells.
///
/// The paper's conclusion: "the results obtained here apply only to
/// networks built with 2x2 switching cells, whereas our graph
/// characterization has been generalized to arbitrary size of cells."
/// This module implements that generalized setting:
///
///   - an n-stage radix-r MI-digraph has r^(n-1) cells per stage, each of
///     in/out-degree r (labels are (n-1)-digit base-r strings);
///   - a connection is an r-tuple of functions (f_0, ..., f_{r-1}) giving
///     each cell its children;
///   - Banyan = unique first-to-last paths; P(i, j) asks for exactly
///     cells / r^(j-i) components on the stage range;
///   - a connection is *independent* iff for every alpha != 0 (digit-wise
///     mod-r addition in Z_r^{n-1}) there is a beta with
///     f_t(x (+) alpha) = beta (+) f_t(x) for all x and all t — the
///     verbatim generalization of the paper's definition, with the same
///     structure theorem: all f_t share one additive map L over Z_r.
///
/// FINDING (surfaced by this reproduction, pinned in kary_test.cpp): the
/// verbatim generalization of Theorem 3 is FALSE for r >= 3. For r = 2
/// the children-difference set {0, c_f ^ c_g} is automatically a
/// subgroup, so each stage pair decomposes into K_{2,2} blocks and the
/// P properties follow; for r >= 3 the translations {c_t} of an
/// independent connection may generate a subgroup larger than order r,
/// collapsing the two-stage components below the required count while
/// the network can remain Banyan. The correct generalization is the
/// *aligned* independent connection: {c_0, ..., c_{r-1}} must be a full
/// coset of an order-r subgroup of Z_r^{n-1}
/// (KaryConnection::random_independent_aligned); with that restriction
/// the Banyan + independent => baseline_r-equivalent implication holds
/// empirically at every radix tested.

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "min/networks.hpp"
#include "min/routing.hpp"
#include "util/rng.hpp"

namespace mineq::min {

/// Digit-wise arithmetic on Z_r^digits, with values packed as plain
/// integers in base r (digit i = (value / r^i) % r).
class RadixLabel {
 public:
  RadixLabel(int radix, int digits);

  [[nodiscard]] int radix() const noexcept { return radix_; }
  [[nodiscard]] int digits() const noexcept { return digits_; }
  [[nodiscard]] std::uint32_t cells() const noexcept { return cells_; }

  /// Digit-wise sum (a (+) b) mod r.
  [[nodiscard]] std::uint32_t add(std::uint32_t a, std::uint32_t b) const;

  /// Digit-wise difference (a (-) b) mod r.
  [[nodiscard]] std::uint32_t sub(std::uint32_t a, std::uint32_t b) const;

  /// Digit \p i of \p value.
  [[nodiscard]] unsigned digit(std::uint32_t value, int i) const;

  /// \p value with digit \p i replaced.
  [[nodiscard]] std::uint32_t with_digit(std::uint32_t value, int i,
                                         unsigned digit) const;

 private:
  int radix_;
  int digits_;
  std::uint32_t cells_;
  std::vector<std::uint32_t> power_;
};

/// A radix-r inter-stage connection: children of x are
/// table(t)[x] for t = 0..r-1.
class KaryConnection {
 public:
  /// \throws std::invalid_argument unless there are exactly radix tables
  /// of size radix^digits with in-range entries.
  KaryConnection(std::vector<std::vector<std::uint32_t>> tables, int radix,
                 int digits);

  [[nodiscard]] static KaryConnection from_functions(
      int radix, int digits,
      const std::function<std::uint32_t(unsigned, std::uint32_t)>& child);

  /// Random independent connection: an additive bijection L over Z_r^d
  /// plus arbitrary per-function translations c_t. Independent per the
  /// definition, but for r >= 3 generally NOT baseline-compatible (see
  /// the header FINDING).
  [[nodiscard]] static KaryConnection random_independent(
      int radix, int digits, util::SplitMix64& rng);

  /// Random *aligned* independent connection: translations form a full
  /// coset c (+) t*h of an order-r cyclic subgroup <h>. This is the
  /// correct radix-r analog of the paper's stage shape. Requires
  /// digits >= 1.
  [[nodiscard]] static KaryConnection random_independent_aligned(
      int radix, int digits, util::SplitMix64& rng);

  /// Additive order of \p h in Z_r^digits (smallest k >= 1 with k*h = 0).
  [[nodiscard]] static unsigned element_order(int radix, int digits,
                                              std::uint32_t h);

  /// Random valid stage: r independent random permutations of the cells.
  [[nodiscard]] static KaryConnection random_valid(int radix, int digits,
                                                   util::SplitMix64& rng);

  [[nodiscard]] int radix() const noexcept { return radix_; }
  [[nodiscard]] int digits() const noexcept { return digits_; }
  [[nodiscard]] std::uint32_t cells() const noexcept {
    return static_cast<std::uint32_t>(tables_.front().size());
  }

  [[nodiscard]] std::uint32_t child(unsigned port, std::uint32_t x) const;

  [[nodiscard]] const std::vector<std::uint32_t>& table(unsigned port) const;

  /// Every next-stage cell has in-degree exactly r.
  [[nodiscard]] bool is_valid_stage() const;

  /// Independence per the generalized definition (checked literally,
  /// O(cells^2 * r)).
  [[nodiscard]] bool is_independent_definition() const;

  /// Fast structural test: every table is x -> L(x) (+) c_t for one shared
  /// additive map L (O(cells * r)).
  [[nodiscard]] bool is_independent() const;

 private:
  int radix_;
  int digits_;
  std::vector<std::vector<std::uint32_t>> tables_;
};

/// An n-stage radix-r MI-digraph.
class KaryMIDigraph {
 public:
  KaryMIDigraph(int stages, int radix,
                std::vector<KaryConnection> connections);

  [[nodiscard]] int stages() const noexcept { return stages_; }
  [[nodiscard]] int radix() const noexcept { return radix_; }
  [[nodiscard]] std::uint32_t cells_per_stage() const;

  [[nodiscard]] const KaryConnection& connection(int index) const;

  [[nodiscard]] bool is_valid() const;

  /// Attach a known-correct digit routing schedule. The closed-form
  /// constructions (build_kary_network) attach theirs, so sim::Engine
  /// skips the exponential find_digit_schedule search entirely — and
  /// with it the kMaxDigitScheduleCells cap, which only ever gated the
  /// search, not the simulation.
  /// \throws std::invalid_argument on radix mismatch or wrong stage
  /// count (stages() - 1 routing digits).
  void attach_schedule(DigitSchedule schedule);

  /// The attached schedule, if any. Engine trusts it after an O(stages
  /// * radix) shape check; correctness is the attacher's contract.
  [[nodiscard]] const std::optional<DigitSchedule>& schedule() const noexcept {
    return schedule_;
  }

  friend bool operator==(const KaryMIDigraph&, const KaryMIDigraph&) = default;

 private:
  int stages_;
  int radix_;
  std::vector<KaryConnection> connections_;
  std::optional<DigitSchedule> schedule_;
};

/// The radix-r Baseline network: the left-recursive construction with r
/// sub-networks per level (closed form; reduces to baseline_network for
/// r = 2 — asserted in the tests).
[[nodiscard]] KaryMIDigraph kary_baseline(int stages, int radix);

/// The radix-r Omega-style network: every stage wired by the digit
/// rotate-left shuffle.
[[nodiscard]] KaryMIDigraph kary_omega(int stages, int radix);

/// The radix-r Flip network: every stage wired by the digit rotate-right
/// (inverse shuffle). Reduces to the binary Flip for r = 2 — asserted in
/// the tests.
[[nodiscard]] KaryMIDigraph kary_flip(int stages, int radix);

/// The radix-r construction of a classical network kind, for the kinds
/// with a closed-form k-ary analog (Omega, Flip, Baseline). Radix 2
/// reproduces build_network(kind, stages) table for table.
/// \throws std::invalid_argument for kinds without a k-ary construction
/// (cube, mdm, revbaseline).
[[nodiscard]] KaryMIDigraph build_kary_network(NetworkKind kind, int stages,
                                               int radix);

/// Does \p kind have a radix-r construction (see build_kary_network)?
[[nodiscard]] bool kary_network_supported(NetworkKind kind);

/// The closed-form digit routing schedule of a built-in k-ary
/// construction: Omega and Baseline consume destination digits MSB
/// first, Flip LSB first, all with identity port maps (hand-derived
/// from the constructions; verified against find_digit_schedule in the
/// tests). build_kary_network attaches this automatically.
/// \throws std::invalid_argument for unsupported kinds or stages < 2.
[[nodiscard]] DigitSchedule kary_network_schedule(NetworkKind kind, int stages,
                                                  int radix);

/// Banyan property (unique first-to-last paths).
[[nodiscard]] bool kary_is_banyan(const KaryMIDigraph& g);

/// Component count of the stage range [lo, hi].
[[nodiscard]] std::size_t kary_component_count_range(const KaryMIDigraph& g,
                                                     int lo, int hi);

/// Generalized P(lo, hi): exactly cells / r^(hi-lo) components.
[[nodiscard]] bool kary_satisfies_p(const KaryMIDigraph& g, int lo, int hi);

/// Generalized P(1,*) and P(*,n).
[[nodiscard]] bool kary_satisfies_p1_star(const KaryMIDigraph& g);
[[nodiscard]] bool kary_satisfies_p_star_n(const KaryMIDigraph& g);

/// The generalized easy characterization: valid + Banyan + P(1,*) +
/// P(*,n).
[[nodiscard]] bool kary_is_baseline_equivalent(const KaryMIDigraph& g);

}  // namespace mineq::min
