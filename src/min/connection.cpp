#include "min/connection.hpp"

#include <sstream>
#include <stdexcept>

#include "gf2/subspace.hpp"
#include "util/bitops.hpp"

namespace mineq::min {

namespace {

void check_width(int width) {
  if (width < 0 || width > util::kMaxBits - 1) {
    throw std::invalid_argument("Connection: width out of range");
  }
}

void check_table(const std::vector<std::uint32_t>& table, int width,
                 const char* name) {
  const std::size_t cells = std::size_t{1} << width;
  if (table.size() != cells) {
    throw std::invalid_argument(std::string("Connection: ") + name +
                                " table has wrong size");
  }
  for (std::uint32_t v : table) {
    if (v >= cells) {
      throw std::invalid_argument(std::string("Connection: ") + name +
                                  " table entry out of range");
    }
  }
}

}  // namespace

Connection::Connection() : width_(0), f_{0}, g_{0} {}

Connection::Connection(std::vector<std::uint32_t> f,
                       std::vector<std::uint32_t> g, int width)
    : width_(width), f_(std::move(f)), g_(std::move(g)) {
  check_width(width);
  check_table(f_, width, "f");
  check_table(g_, width, "g");
}

Connection Connection::from_functions(
    int width, const std::function<std::uint32_t(std::uint32_t)>& f,
    const std::function<std::uint32_t(std::uint32_t)>& g) {
  check_width(width);
  const std::uint32_t cells = std::uint32_t{1} << width;
  std::vector<std::uint32_t> tf(cells);
  std::vector<std::uint32_t> tg(cells);
  for (std::uint32_t x = 0; x < cells; ++x) {
    tf[x] = f(x);
    tg[x] = g(x);
  }
  return Connection(std::move(tf), std::move(tg), width);
}

Connection Connection::from_affine(const gf2::AffineMap& f,
                                   const gf2::AffineMap& g) {
  if (f.in_width() != f.out_width() || g.in_width() != g.out_width() ||
      f.in_width() != g.in_width()) {
    throw std::invalid_argument(
        "Connection::from_affine: maps must be square and same width");
  }
  return Connection(f.to_table(), g.to_table(), f.in_width());
}

Connection Connection::from_link_permutation(
    const perm::Permutation& link_perm) {
  if (link_perm.size() < 2 || !util::is_pow2(link_perm.size())) {
    throw std::invalid_argument(
        "Connection::from_link_permutation: size must be a power of two >= 2");
  }
  const int width = util::ilog2(link_perm.size()) - 1;
  check_width(width);
  const std::uint32_t cells = std::uint32_t{1} << width;
  std::vector<std::uint32_t> tf(cells);
  std::vector<std::uint32_t> tg(cells);
  for (std::uint32_t x = 0; x < cells; ++x) {
    tf[x] = link_perm(2 * x) >> 1;
    tg[x] = link_perm(2 * x + 1) >> 1;
  }
  return Connection(std::move(tf), std::move(tg), width);
}

Connection Connection::random_valid(int width, util::SplitMix64& rng) {
  check_width(width);
  const std::size_t cells = std::size_t{1} << width;
  const perm::Permutation pf = perm::Permutation::random(cells, rng);
  const perm::Permutation pg = perm::Permutation::random(cells, rng);
  return Connection(pf.image(), pg.image(), width);
}

Connection Connection::random_independent_case1(int width,
                                                util::SplitMix64& rng) {
  check_width(width);
  const gf2::Matrix l = gf2::Matrix::random_invertible(width, rng);
  const std::uint64_t mask = util::low_mask(width);
  const std::uint64_t cf = rng.next() & mask;
  std::uint64_t cg = rng.next() & mask;
  if (width > 0) {
    while (cg == cf) cg = rng.next() & mask;
  }
  return from_affine(gf2::AffineMap(l, cf), gf2::AffineMap(l, cg));
}

Connection Connection::random_independent_case2(int width,
                                                util::SplitMix64& rng) {
  check_width(width);
  if (width < 1) {
    throw std::invalid_argument(
        "random_independent_case2: width must be >= 1");
  }
  const gf2::Matrix m = gf2::Matrix::random_invertible(width, rng);
  const int dropped = static_cast<int>(rng.below(static_cast<std::uint64_t>(width)));
  // L = M composed with the projection that zeroes coordinate `dropped`:
  // rank width-1, kernel span(e_dropped), image misses M(e_dropped).
  gf2::Matrix projection = gf2::Matrix::identity(width);
  projection.set(dropped, dropped, 0);
  const gf2::Matrix l = m * projection;
  const std::uint64_t mask = util::low_mask(width);
  const std::uint64_t cf = rng.next() & mask;
  // t = M(e_dropped xor r) with r in the complement of e_dropped lies
  // outside Im(L) (its M(e_dropped) component cannot be cancelled).
  const std::uint64_t r =
      rng.next() & mask & ~(std::uint64_t{1} << dropped);
  const std::uint64_t t =
      m.apply((std::uint64_t{1} << dropped) ^ r);
  return from_affine(gf2::AffineMap(l, cf), gf2::AffineMap(l, cf ^ t));
}

std::uint32_t Connection::f(std::uint32_t x) const {
  if (x >= cells()) throw std::invalid_argument("Connection::f: range");
  return f_[x];
}

std::uint32_t Connection::g(std::uint32_t x) const {
  if (x >= cells()) throw std::invalid_argument("Connection::g: range");
  return g_[x];
}

std::array<std::uint32_t, 2> Connection::children(std::uint32_t x) const {
  return {f(x), g(x)};
}

Connection Connection::swapped() const {
  Connection out = *this;
  out.f_.swap(out.g_);
  return out;
}

bool Connection::is_valid_stage() const {
  std::vector<std::uint32_t> indeg(cells(), 0);
  for (std::uint32_t x = 0; x < cells(); ++x) {
    ++indeg[f_[x]];
    ++indeg[g_[x]];
  }
  for (std::uint32_t d : indeg) {
    if (d != 2) return false;
  }
  return true;
}

bool Connection::has_parallel_arcs() const {
  for (std::uint32_t x = 0; x < cells(); ++x) {
    if (f_[x] == g_[x]) return true;
  }
  return false;
}

std::uint32_t Connection::in_degree(std::uint32_t y) const {
  if (y >= cells()) throw std::invalid_argument("Connection::in_degree");
  std::uint32_t count = 0;
  for (std::uint32_t x = 0; x < cells(); ++x) {
    if (f_[x] == y) ++count;
    if (g_[x] == y) ++count;
  }
  return count;
}

std::vector<std::uint32_t> Connection::parents(std::uint32_t y) const {
  if (y >= cells()) throw std::invalid_argument("Connection::parents");
  std::vector<std::uint32_t> out;
  for (std::uint32_t x = 0; x < cells(); ++x) {
    if (f_[x] == y) out.push_back(x);
    if (g_[x] == y) out.push_back(x);
  }
  return out;
}

std::vector<VertexType> Connection::vertex_types() const {
  std::vector<std::uint32_t> f_arcs(cells(), 0);
  std::vector<std::uint32_t> g_arcs(cells(), 0);
  for (std::uint32_t x = 0; x < cells(); ++x) {
    ++f_arcs[f_[x]];
    ++g_arcs[g_[x]];
  }
  std::vector<VertexType> types(cells());
  for (std::uint32_t y = 0; y < cells(); ++y) {
    if (f_arcs[y] + g_arcs[y] != 2) {
      types[y] = VertexType::kBad;
    } else if (f_arcs[y] == 2) {
      types[y] = VertexType::kFF;
    } else if (g_arcs[y] == 2) {
      types[y] = VertexType::kGG;
    } else {
      types[y] = VertexType::kFG;
    }
  }
  return types;
}

std::array<std::size_t, 4> Connection::vertex_type_counts() const {
  std::array<std::size_t, 4> counts{0, 0, 0, 0};
  for (VertexType t : vertex_types()) {
    ++counts[static_cast<std::size_t>(t)];
  }
  // Order: kFF, kFG, kGG, kBad matches the enum declaration order.
  return counts;
}

Connection Connection::reverse_independent() const {
  if (!is_valid_stage()) {
    throw std::invalid_argument(
        "reverse_independent: not a valid MI-digraph stage");
  }
  // Recover the shared linear part L; independence <=> both tables are
  // affine with equal linear parts (see min/independence.hpp).
  const auto af = gf2::fit_affine(f_, width_, width_);
  const auto ag = gf2::fit_affine(g_, width_, width_);
  if (!af.has_value() || !ag.has_value() ||
      !(af->linear() == ag->linear())) {
    throw std::invalid_argument(
        "reverse_independent: connection is not independent");
  }
  const gf2::Matrix& l = af->linear();
  const std::vector<std::uint64_t> kernel = l.kernel_basis();

  if (kernel.empty()) {
    // Case 1 of Proposition 1: f and g are bijections; (phi, psi) =
    // (f^{-1}, g^{-1}).
    std::vector<std::uint32_t> phi(cells());
    std::vector<std::uint32_t> psi(cells());
    for (std::uint32_t x = 0; x < cells(); ++x) {
      phi[f_[x]] = x;
      psi[g_[x]] = x;
    }
    return Connection(std::move(phi), std::move(psi), width_);
  }

  if (kernel.size() != 1) {
    // rank(L) < width-1 cannot give in-degree 2 everywhere; is_valid_stage
    // should have rejected it, so reaching here is a logic error.
    throw std::logic_error("reverse_independent: unexpected kernel dimension");
  }

  // Case 2: alpha_1 spans the kernel; A = span(complement basis of
  // alpha_1), B = alpha_1 xor A. phi takes the parent in A, psi the parent
  // in B (each vertex has one of each, since its two parents differ by
  // alpha_1, which is not in A).
  const std::uint64_t alpha1 = kernel.front();
  const gf2::Subspace alpha_line =
      gf2::Subspace::span({alpha1}, width_);
  const gf2::Subspace a_set =
      gf2::Subspace::span(alpha_line.complement_basis(), width_);

  std::vector<std::uint32_t> phi(cells(), 0);
  std::vector<std::uint32_t> psi(cells(), 0);
  for (std::uint32_t x = 0; x < cells(); ++x) {
    const bool x_in_a = a_set.contains(x);
    // x is a parent of both f_[x] and g_[x].
    if (x_in_a) {
      phi[f_[x]] = x;
      phi[g_[x]] = x;
    } else {
      psi[f_[x]] = x;
      psi[g_[x]] = x;
    }
  }
  return Connection(std::move(phi), std::move(psi), width_);
}

Connection Connection::reverse_generic() const {
  if (!is_valid_stage()) {
    throw std::invalid_argument(
        "reverse_generic: not a valid MI-digraph stage");
  }
  std::vector<std::uint32_t> phi(cells());
  std::vector<std::uint32_t> psi(cells());
  std::vector<std::uint32_t> seen(cells(), 0);
  auto record = [&](std::uint32_t y, std::uint32_t parent) {
    if (seen[y] == 0) {
      phi[y] = parent;
    } else {
      psi[y] = parent;
      if (phi[y] > psi[y]) std::swap(phi[y], psi[y]);
    }
    ++seen[y];
  };
  for (std::uint32_t x = 0; x < cells(); ++x) {
    record(f_[x], x);
    record(g_[x], x);
  }
  return Connection(std::move(phi), std::move(psi), width_);
}

std::string Connection::str() const {
  std::ostringstream out;
  for (std::uint32_t x = 0; x < cells(); ++x) {
    out << x << ": f -> " << f_[x] << ", g -> " << g_[x] << '\n';
  }
  return out.str();
}

}  // namespace mineq::min
