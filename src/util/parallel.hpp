/// \file parallel.hpp
/// \brief Explicit, standard-library parallelism for bulk verification sweeps.
///
/// Following the HPC house style (parallelism is explicit, portable and
/// standard-based), this is a small fixed thread pool plus a blocking
/// parallel_for. Randomized sweeps pass a task index to the body so each
/// task can derive a deterministic RNG stream — results are identical
/// regardless of thread count.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mineq::util {

/// A fixed-size pool of worker threads executing queued tasks.
///
/// The pool is created once and joined on destruction (RAII); tasks must not
/// throw — exceptions escaping a task terminate the process by design, since
/// the verification sweeps treat any failure as fatal.
class ThreadPool {
 public:
  /// Create \p threads workers. 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Blocks until all queued tasks have finished, then joins the workers.
  ~ThreadPool();

  /// Enqueue a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Block until every task submitted so far has completed.
  void wait_idle();

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Run body(i) for i in [begin, end) across \p threads workers
/// (0 = hardware concurrency). Blocks until all iterations complete.
/// Iterations are distributed in contiguous chunks to limit contention.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

}  // namespace mineq::util
