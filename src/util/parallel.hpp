/// \file parallel.hpp
/// \brief Explicit, standard-library parallelism for bulk verification sweeps.
///
/// Following the HPC house style (parallelism is explicit, portable and
/// standard-based), this is a small fixed thread pool plus a blocking
/// parallel_for. Randomized sweeps pass a task index to the body so each
/// task can derive a deterministic RNG stream — results are identical
/// regardless of thread count.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mineq::util {

/// One PAUSE/YIELD-class hint to the core's pipeline while spinning.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Reusable sense-reversing barrier for a fixed party count.
///
/// arrive_and_wait() publishes every write made before the call to every
/// party that returns from the same round (the generation bump is a
/// release paired with the waiters' acquire loads), so it is both the
/// synchronization and the happens-before edge of a sharded cycle kernel.
/// Waiters spin briefly with cpu_relax() — the dedicated-core rendezvous
/// resolves here without leaving user space — and then fall back to a
/// futex-style std::atomic::wait, so an oversubscribed team (parties
/// beyond the hardware threads, e.g. an 8-thread determinism pin on a
/// 2-core CI box) sleeps in the kernel instead of stealing scheduler
/// quanta from the parties still working toward the barrier.
class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties) : parties_(parties) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  void arrive_and_wait() noexcept {
    const std::uint64_t generation =
        generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      // Last arriver: reset the arrival count for the next round, then
      // open the barrier. The reset must precede the bump — a fast party
      // can re-enter arrive_and_wait the instant the generation moves.
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_acq_rel);
      generation_.notify_all();
      return;
    }
    std::uint32_t spins = 0;
    while (generation_.load(std::memory_order_acquire) == generation) {
      if (++spins < 1024) {
        cpu_relax();
      } else {
        generation_.wait(generation, std::memory_order_acquire);
      }
    }
  }

 private:
  std::size_t parties_;
  std::atomic<std::size_t> arrived_{0};
  std::atomic<std::uint64_t> generation_{0};
};

/// A fixed-size pool of worker threads executing queued tasks.
///
/// The pool is created once and joined on destruction (RAII); tasks must not
/// throw — exceptions escaping a task terminate the process by design, since
/// the verification sweeps treat any failure as fatal.
class ThreadPool {
 public:
  /// Create \p threads workers. 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Blocks until all queued tasks have finished, then joins the workers.
  ~ThreadPool();

  /// Enqueue a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Block until every task submitted so far has completed.
  void wait_idle();

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Persistent-team mode: run fn(worker, n) on n workers and block until
  /// every invocation returns. The caller participates as worker 0; the
  /// other n-1 run on dedicated team threads that are spawned lazily on
  /// first use, kept parked on a condition variable between calls, and
  /// reused verbatim on the next call — per-call cost is one wakeup, not
  /// n-1 thread spawns or queue round-trips, which is what a per-cycle
  /// dispatch needs (see bench_megafabric's dispatch micro-bench).
  ///
  /// The team is independent of the submit() task queue, so run_team can
  /// never deadlock against queued tasks (and vice versa). n <= 1 runs
  /// fn(0, 1) inline. Only one run_team call may be active per pool at a
  /// time; concurrent callers must use distinct pools.
  void run_team(std::size_t n,
                const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();
  void team_member_loop(std::size_t index, std::uint64_t start_epoch);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;

  // Persistent-team state (run_team); disjoint from the task queue above.
  std::vector<std::thread> team_;
  std::mutex team_mutex_;
  std::condition_variable team_wake_;
  std::condition_variable team_done_cv_;
  const std::function<void(std::size_t, std::size_t)>* team_fn_ = nullptr;
  std::size_t team_size_ = 0;   ///< parties of the active call (incl. caller)
  std::uint64_t team_epoch_ = 0;
  std::size_t team_done_ = 0;   ///< team threads finished with this epoch
  bool team_stopping_ = false;
};

/// Run body(i) for i in [begin, end) across \p threads workers
/// (0 = hardware concurrency). Blocks until all iterations complete.
/// Iterations are distributed in contiguous chunks to limit contention.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

}  // namespace mineq::util
