/// \file format.hpp
/// \brief Aligned text tables and CSV emission for benchmark/report output.
///
/// The benchmark harness regenerates the paper's figures as structured text;
/// TablePrinter produces the aligned, human-diffable layout used throughout
/// bench/ and examples/.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace mineq::util {

/// Column alignment for TablePrinter.
enum class Align { kLeft, kRight };

/// Accumulates rows of strings and renders them with aligned columns.
///
/// Usage:
///   TablePrinter t({"n", "stages", "components"});
///   t.add_row({"4", "4", "1"});
///   std::cout << t.str();
class TablePrinter {
 public:
  /// Construct with column headers; all columns default to right alignment
  /// except the first, which is left-aligned (typical "name, numbers" shape).
  explicit TablePrinter(std::vector<std::string> headers);

  /// Override the alignment of column \p col.
  void set_align(std::size_t col, Align align);

  /// Append one row; must have exactly as many cells as there are headers.
  /// \throws std::invalid_argument on arity mismatch.
  void add_row(std::vector<std::string> cells);

  /// Render the table with a header underline and two-space column gaps.
  [[nodiscard]] std::string str() const;

  /// Render as CSV (no alignment, comma-separated, quoted when needed).
  [[nodiscard]] std::string csv() const;

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format \p value with thousands separators ("1234567" -> "1,234,567").
[[nodiscard]] std::string with_commas(std::uint64_t value);

/// Format \p x with \p digits digits after the decimal point.
[[nodiscard]] std::string fixed(double x, int digits);

/// Render an unsigned value as an \p width-bit binary tuple,
/// e.g. bits(5, 4) == "(0,1,0,1)" — the label style used in the paper's
/// Figure 2.
[[nodiscard]] std::string bit_tuple(std::uint64_t value, int width);

/// Render an unsigned value as a plain binary string, MSB first.
[[nodiscard]] std::string bit_string(std::uint64_t value, int width);

}  // namespace mineq::util
