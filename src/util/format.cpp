#include "util/format.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace mineq::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("TablePrinter: need at least one column");
  }
  aligns_.assign(headers_.size(), Align::kRight);
  aligns_[0] = Align::kLeft;
}

void TablePrinter::set_align(std::size_t col, Align align) {
  if (col >= aligns_.size()) {
    throw std::invalid_argument("TablePrinter::set_align: column out of range");
  }
  aligns_[col] = align;
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TablePrinter::add_row: arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << "  ";
      const auto pad = width[c] - row[c].size();
      if (aligns_[c] == Align::kRight) out << std::string(pad, ' ');
      out << row[c];
      if (aligns_[c] == Align::kLeft && c + 1 != row.size()) {
        out << std::string(pad, ' ');
      }
    }
    out << '\n';
  };

  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TablePrinter::csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += "\"\"";
      else q += ch;
    }
    q += '"';
    return q;
  };
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      out << quote(row[c]);
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i + 3 - lead) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

std::string fixed(double x, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, x);
  return buf;
}

std::string bit_tuple(std::uint64_t value, int width) {
  if (width < 0) throw std::invalid_argument("bit_tuple: negative width");
  std::string out = "(";
  for (int i = width - 1; i >= 0; --i) {
    out += ((value >> i) & 1U) != 0 ? '1' : '0';
    if (i != 0) out += ',';
  }
  out += ')';
  return out;
}

std::string bit_string(std::uint64_t value, int width) {
  if (width < 0) throw std::invalid_argument("bit_string: negative width");
  std::string out;
  out.reserve(static_cast<std::size_t>(width));
  for (int i = width - 1; i >= 0; --i) {
    out += ((value >> i) & 1U) != 0 ? '1' : '0';
  }
  return out;
}

}  // namespace mineq::util
