/// \file rng.hpp
/// \brief Deterministic, splittable pseudo-random number generation.
///
/// All randomized sweeps in mineq (random independent connections, random
/// PIPID sequences, traffic generation) draw from this generator so that
/// every experiment is reproducible from a single seed, and so that
/// parallel sweeps can hand each task an independent stream derived from
/// (seed, task index) without any shared state.

#pragma once

#include <cstdint>
#include <limits>

namespace mineq::util {

/// SplitMix64: tiny, fast, and passes BigCrush when used as a stream.
/// Used both directly and to seed per-task streams.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// \returns the next 64-bit value in the stream.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// UniformRandomBitGenerator interface (usable with <random> and
  /// std::shuffle).
  constexpr std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// \returns a uniform value in [0, bound); \p bound must be non-zero.
  /// Uses rejection sampling to avoid modulo bias.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// \returns true with probability \p num / \p den.
  constexpr bool chance(std::uint64_t num, std::uint64_t den) noexcept {
    return below(den) < num;
  }

  /// One draw against a precomputed probability_threshold() value —
  /// exactly one next() per decision, for hot loops that compare the
  /// same draw semantics against per-state thresholds.
  constexpr bool chance_threshold(std::uint64_t threshold) noexcept {
    return (next() & 0xFFFFFFFFULL) < threshold;
  }

  /// Derive an independent stream for subtask \p index.
  /// Streams for distinct indices are decorrelated by re-mixing.
  [[nodiscard]] constexpr SplitMix64 split(std::uint64_t index) const noexcept {
    SplitMix64 mixer(state_ ^ (0xA0761D6478BD642FULL * (index + 1)));
    return SplitMix64(mixer.next());
  }

 private:
  std::uint64_t state_;
};

/// 32-bit fixed-point Bernoulli threshold for probability \p p, for use
/// with SplitMix64::chance_threshold(). \p p must be within [0, 1]
/// (callers validate; the cast is UB outside the representable range);
/// p == 1 maps to 2^32, which every masked draw is below.
constexpr std::uint64_t probability_threshold(double p) noexcept {
  return static_cast<std::uint64_t>(p * 65536.0 * 65536.0);
}

}  // namespace mineq::util
