/// \file bitops.hpp
/// \brief Small bit-manipulation helpers shared across the mineq libraries.
///
/// Everything in this header is constexpr and branch-light; these helpers sit
/// in the innermost loops of the connection and permutation code, where node
/// labels are raw unsigned integers interpreted as vectors over GF(2).

#pragma once

#include <bit>
#include <cstdint>
#include <stdexcept>

namespace mineq::util {

/// Maximum label width (in bits) supported by the raw-integer label routines.
/// Networks are limited to N = 2^26 terminals, far beyond what fits in RAM
/// for the digraph representations anyway.
inline constexpr int kMaxBits = 26;

/// \returns a mask with the low \p width bits set.
/// \throws std::invalid_argument if \p width is outside [0, kMaxBits].
[[nodiscard]] constexpr std::uint64_t low_mask(int width) {
  if (width < 0 || width > kMaxBits) {
    throw std::invalid_argument("low_mask: width out of range");
  }
  return (std::uint64_t{1} << width) - 1;
}

/// \returns bit \p pos of \p value (0 or 1).
[[nodiscard]] constexpr unsigned get_bit(std::uint64_t value, int pos) {
  return static_cast<unsigned>((value >> pos) & 1U);
}

/// \returns \p value with bit \p pos forced to \p bit (which must be 0 or 1).
[[nodiscard]] constexpr std::uint64_t set_bit(std::uint64_t value, int pos,
                                              unsigned bit) {
  const std::uint64_t mask = std::uint64_t{1} << pos;
  return bit != 0 ? (value | mask) : (value & ~mask);
}

/// \returns \p value with bit \p pos flipped.
[[nodiscard]] constexpr std::uint64_t flip_bit(std::uint64_t value, int pos) {
  return value ^ (std::uint64_t{1} << pos);
}

/// \returns the number of set bits.
[[nodiscard]] constexpr int popcount(std::uint64_t value) {
  return std::popcount(value);
}

/// \returns the parity (popcount mod 2) of \p value.
[[nodiscard]] constexpr unsigned parity(std::uint64_t value) {
  return static_cast<unsigned>(std::popcount(value) & 1);
}

/// \returns the index of the lowest set bit; \p value must be non-zero.
[[nodiscard]] constexpr int lowest_set_bit(std::uint64_t value) {
  return std::countr_zero(value);
}

/// \returns the index of the highest set bit; \p value must be non-zero.
[[nodiscard]] constexpr int highest_set_bit(std::uint64_t value) {
  return 63 - std::countl_zero(value);
}

/// \returns true iff \p value is a power of two (and non-zero).
[[nodiscard]] constexpr bool is_pow2(std::uint64_t value) {
  return std::has_single_bit(value);
}

/// \returns floor(log2(value)); \p value must be non-zero.
[[nodiscard]] constexpr int ilog2(std::uint64_t value) {
  return highest_set_bit(value);
}

/// Rotate the low \p width bits of \p value left by one position
/// (a.k.a. the perfect shuffle of an index with \p width digits).
[[nodiscard]] constexpr std::uint64_t rotl1(std::uint64_t value, int width) {
  const std::uint64_t mask = low_mask(width);
  value &= mask;
  return ((value << 1) | (value >> (width - 1))) & mask;
}

/// Rotate the low \p width bits of \p value right by one position
/// (the inverse perfect shuffle).
[[nodiscard]] constexpr std::uint64_t rotr1(std::uint64_t value, int width) {
  const std::uint64_t mask = low_mask(width);
  value &= mask;
  return ((value >> 1) | ((value & 1) << (width - 1))) & mask;
}

/// Reverse the low \p width bits of \p value (bit-reversal permutation rho).
[[nodiscard]] constexpr std::uint64_t reverse_bits(std::uint64_t value,
                                                   int width) {
  std::uint64_t out = 0;
  for (int i = 0; i < width; ++i) {
    out = (out << 1) | ((value >> i) & 1U);
  }
  return out;
}

}  // namespace mineq::util
