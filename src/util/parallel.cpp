#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>

namespace mineq::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  if (begin >= end) return;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  const std::size_t total = end - begin;
  threads = std::min(threads, total);
  if (threads <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  // Chunked dynamic scheduling: workers grab the next chunk from a shared
  // counter. Chunks are large enough to amortize the atomic but small enough
  // to balance uneven iteration costs.
  const std::size_t chunk = std::max<std::size_t>(1, total / (threads * 8));
  std::atomic<std::size_t> next(begin);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t lo = next.fetch_add(chunk);
        if (lo >= end) return;
        const std::size_t hi = std::min(end, lo + chunk);
        for (std::size_t i = lo; i < hi; ++i) body(i);
      }
    });
  }
  for (auto& th : pool) th.join();
}

}  // namespace mineq::util
