#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>

namespace mineq::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
  {
    std::unique_lock lock(team_mutex_);
    team_stopping_ = true;
  }
  team_wake_.notify_all();
  for (auto& member : team_) member.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::run_team(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n <= 1) {
    fn(0, 1);
    return;
  }
  // Grow the team lazily; threads persist across calls. A call with a
  // smaller n than a previous one leaves the extra threads parked — they
  // wake on the epoch, see index >= team_size_, and report done without
  // running the body. Each new thread is handed the pre-bump epoch so it
  // participates in this call's round no matter how late it starts.
  if (team_.size() + 1 < n) {
    std::uint64_t start_epoch;
    {
      std::unique_lock lock(team_mutex_);
      start_epoch = team_epoch_;
    }
    while (team_.size() + 1 < n) {
      const std::size_t index = team_.size();
      team_.emplace_back(
          [this, index, start_epoch] { team_member_loop(index, start_epoch); });
    }
  }
  const std::size_t members = team_.size();
  {
    std::unique_lock lock(team_mutex_);
    team_fn_ = &fn;
    team_size_ = n;
    team_done_ = 0;
    ++team_epoch_;
  }
  team_wake_.notify_all();
  fn(0, n);
  {
    std::unique_lock lock(team_mutex_);
    team_done_cv_.wait(lock, [&] { return team_done_ == members; });
    team_fn_ = nullptr;
  }
}

void ThreadPool::team_member_loop(std::size_t index, std::uint64_t seen) {
  for (;;) {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t size = 0;
    {
      std::unique_lock lock(team_mutex_);
      team_wake_.wait(lock,
                      [&] { return team_stopping_ || team_epoch_ != seen; });
      if (team_stopping_) return;
      seen = team_epoch_;
      fn = team_fn_;
      size = team_size_;
    }
    if (index + 1 < size) (*fn)(index + 1, size);
    {
      std::unique_lock lock(team_mutex_);
      ++team_done_;
    }
    team_done_cv_.notify_one();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  if (begin >= end) return;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  const std::size_t total = end - begin;
  threads = std::min(threads, total);
  if (threads <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  // Chunked dynamic scheduling: workers grab the next chunk from a shared
  // counter. Chunks are large enough to amortize the atomic but small enough
  // to balance uneven iteration costs.
  const std::size_t chunk = std::max<std::size_t>(1, total / (threads * 8));
  std::atomic<std::size_t> next(begin);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t lo = next.fetch_add(chunk);
        if (lo >= end) return;
        const std::size_t hi = std::min(end, lo + chunk);
        for (std::size_t i = lo; i < hi; ++i) body(i);
      }
    });
  }
  for (auto& th : pool) th.join();
}

}  // namespace mineq::util
