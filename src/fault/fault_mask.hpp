/// \file fault_mask.hpp
/// \brief FaultMask: a bitset over FlatWiring's packed arc records, plus
/// the FaultedWiring view both switching policies route through.
///
/// The fault literature on banyan MINs asks which links and switches may
/// die before the fabric loses full access, and what degradation looks
/// like under load. Because every layer of this codebase consumes one
/// stage-packed topology IR (min::FlatWiring), a fault is representable
/// as a single bit per packed down record — at any radix r: arc index
///
///   s * links_per_stage + r * x + port
///
/// names the port-`port` out-link of cell `x` at stage `s` — the same
/// index the down record occupies, so a mask built once is consistent
/// across the equivalence checks, both simulator policies and the sweep
/// layer. (Every arc also has an up record; up-side queries translate
/// through the wiring's parent tables to the same bit.)
///
/// A masked arc never accepts payload. Degraded-mode routing on top of
/// the mask is the FaultedWiring view: a packet whose scheduled out-port
/// is masked reroutes through the next surviving port of its switch when
/// one exists (misrouting it — a banyan has unique paths, so the detour
/// cannot reach the original destination terminal) and is dropped at a
/// switch whose out-ports are all dead. At r = 2 "next surviving port"
/// is exactly the historic sibling (port ^ 1), pinned in the tests.

#pragma once

#include <cstdint>
#include <vector>

#include "min/flat_wiring.hpp"

namespace mineq::fault {

/// A bitset over the packed arc records of one FlatWiring geometry.
/// Default construction gives the empty geometry (no arcs, no faults).
class FaultMask {
 public:
  FaultMask() = default;

  /// All-clear mask over the arcs of \p w.
  explicit FaultMask(const min::FlatWiring& w);

  [[nodiscard]] int stages() const noexcept { return stages_; }
  [[nodiscard]] int radix() const noexcept { return radix_; }
  [[nodiscard]] std::uint32_t cells_per_stage() const noexcept {
    return cells_;
  }
  /// Arc records per inter-stage connection: radix * cells_per_stage().
  [[nodiscard]] std::size_t links_per_stage() const noexcept {
    return static_cast<std::size_t>(radix_) * cells_;
  }
  /// Total maskable arcs: (stages - 1) * links_per_stage().
  [[nodiscard]] std::size_t total_arcs() const noexcept { return arcs_; }

  /// True when no arc is faulted — the simulators' fast-path test.
  [[nodiscard]] bool none() const noexcept { return faulted_ == 0; }

  [[nodiscard]] std::size_t faulted_count() const noexcept {
    return faulted_;
  }
  [[nodiscard]] std::size_t surviving_arcs() const noexcept {
    return arcs_ - faulted_;
  }

  /// Packed arc index of the port-\p port out-link of cell \p x at
  /// stage \p s (the down-record index).
  [[nodiscard]] std::size_t arc_index(int s, std::uint32_t x,
                                      unsigned port) const noexcept {
    return static_cast<std::size_t>(s) * links_per_stage() +
           static_cast<std::size_t>(radix_) * x + port;
  }

  /// \pre arc < total_arcs() — i.e. the stage of an (s, x, port) query
  /// must satisfy s < stages() - 1 (last-stage cells have no out-arcs).
  [[nodiscard]] bool faulted_index(std::size_t arc) const noexcept {
    return (words_[arc >> 6] >> (arc & 63)) & 1U;
  }
  [[nodiscard]] bool faulted(int s, std::uint32_t x,
                             unsigned port) const noexcept {
    return faulted_index(arc_index(s, x, port));
  }

  /// Mark one arc faulted (idempotent).
  void set_index(std::size_t arc);
  void set(int s, std::uint32_t x, unsigned port) {
    set_index(arc_index(s, x, port));
  }

  /// Does this mask describe the geometry of \p w?
  [[nodiscard]] bool matches(const min::FlatWiring& w) const noexcept {
    return stages_ == w.stages() && cells_ == w.cells_per_stage() &&
           radix_ == w.radix();
  }

  friend bool operator==(const FaultMask&, const FaultMask&) = default;

 private:
  int stages_ = 1;
  int radix_ = 2;
  std::uint32_t cells_ = 0;
  std::size_t arcs_ = 0;
  std::size_t faulted_ = 0;
  std::vector<std::uint64_t> words_;
};

/// The degraded-mode routing view over (wiring, mask) that both switching
/// policies consume in advance_stage. Default construction gives the
/// null view used by the unfaulted policy instantiations.
class FaultedWiring {
 public:
  FaultedWiring() = default;
  FaultedWiring(const min::FlatWiring& wiring, const FaultMask& mask)
      : wiring_(&wiring), mask_(&mask) {}

  [[nodiscard]] const min::FlatWiring& wiring() const noexcept {
    return *wiring_;
  }
  [[nodiscard]] const FaultMask& mask() const noexcept { return *mask_; }

  /// May the port-\p port out-link of cell \p x at stage \p s carry
  /// payload this cycle (i.e. is the arc unmasked)?
  [[nodiscard]] bool arc_ok(int s, std::uint32_t x,
                            unsigned port) const noexcept {
    return !mask_->faulted(s, x, port);
  }

  /// Degraded-mode adaptive routing at switch (s, x): the scheduled
  /// \p desired port when its arc survives, otherwise the *next
  /// surviving port* scanning (desired + 1) % r, (desired + 2) % r, ...
  /// over all r ports, or -1 when every out-arc is dead and the packet
  /// must be dropped. At r = 2 the scan visits exactly the historic
  /// sibling desired ^ 1 (pinned as a regression in the tests); the old
  /// `desired ^ 1` formula is meaningless for r > 2.
  [[nodiscard]] int usable_port(int s, std::uint32_t x,
                                unsigned desired) const noexcept {
    if (!mask_->faulted(s, x, desired)) return static_cast<int>(desired);
    const auto radix = static_cast<unsigned>(mask_->radix());
    unsigned port = desired;
    for (unsigned step = 1; step < radix; ++step) {
      ++port;
      if (port >= radix) port -= radix;  // wrap without a division
      if (!mask_->faulted(s, x, port)) return static_cast<int>(port);
    }
    return -1;
  }

  /// Is switch (s, x) dead for forwarding (all out-arcs masked)?
  /// Last-stage cells have no out-arcs — they eject through terminal
  /// links, which are not maskable — so they are never dead.
  [[nodiscard]] bool dead_switch(int s, std::uint32_t x) const noexcept {
    if (s + 1 >= mask_->stages()) return false;  // no out-arcs to mask
    const auto radix = static_cast<unsigned>(mask_->radix());
    for (unsigned port = 0; port < radix; ++port) {
      if (!mask_->faulted(s, x, port)) return false;
    }
    return true;
  }

 private:
  const min::FlatWiring* wiring_ = nullptr;
  const FaultMask* mask_ = nullptr;
};

}  // namespace mineq::fault
