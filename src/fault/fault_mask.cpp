#include "fault/fault_mask.hpp"

namespace mineq::fault {

FaultMask::FaultMask(const min::FlatWiring& w)
    : stages_(w.stages()),
      radix_(w.radix()),
      cells_(w.cells_per_stage()),
      arcs_(static_cast<std::size_t>(w.stages() - 1) * w.links_per_stage()),
      words_((arcs_ + 63) / 64, 0) {}

void FaultMask::set_index(std::size_t arc) {
  std::uint64_t& word = words_[arc >> 6];
  const std::uint64_t bit = std::uint64_t{1} << (arc & 63);
  if ((word & bit) == 0) {
    word |= bit;
    ++faulted_;
  }
}

}  // namespace mineq::fault
