/// \file fault_model.hpp
/// \brief Seeded fault models producing FaultMasks over a FlatWiring.
///
/// Three injection models from the MIN fault-tolerance literature, all
/// deterministic given (FaultSpec, wiring) via the repo's splittable RNG
/// discipline (util::SplitMix64 streams derived from the spec seed):
///
///  - kRandomLinks:  every arc fails independently with probability
///                   `rate` (uniform link faults);
///  - kSwitchKills:  round(rate * switches) distinct switches chosen
///                   uniformly are killed outright — all their in- and
///                   out-arcs masked (targeted switch faults);
///  - kStageBurst:   stage-correlated bursts: runs of adjacent packed
///                   arc records inside one randomly chosen stage
///                   (geometric length, mean 8) until ≈ rate of all arcs
///                   are masked, modelling a damaged backplane region;
///  - kPartialPort:  round(rate * forwarding switches) distinct switches
///                   each lose j < r of their r out-ports (j uniform in
///                   [1, r-1], distinct ports) — a k x k switch that
///                   keeps routing through its surviving ports instead
///                   of dying outright. At r = 2 every hit switch loses
///                   exactly one out-arc, so no switch ever goes dead
///                   under this model.
///
/// A FaultSpec is also the sweep-axis value type: exp::SweepGrid crosses
/// {kind × rate × seed} and builds one mask per (network, spec), shared
/// read-only by every grid point that simulates the pair.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fault/fault_mask.hpp"
#include "min/flat_wiring.hpp"

namespace mineq::fault {

/// The supported fault-injection models.
enum class FaultKind : std::uint8_t {
  kNone,         ///< no faults (the pristine fabric)
  kRandomLinks,  ///< i.i.d. link faults at probability `rate`
  kSwitchKills,  ///< kill round(rate * switches) whole switches
  kStageBurst,   ///< stage-correlated bursts of adjacent arcs
  kPartialPort,  ///< switches lose j < radix out-ports but keep routing
};

/// All kinds, in declaration order (handy for sweeps and round-trips).
[[nodiscard]] const std::vector<FaultKind>& all_fault_kinds();

/// Short token for CLIs and CSV columns ("none", "links", "switches",
/// "burst", "partial").
[[nodiscard]] std::string fault_kind_name(FaultKind kind);

/// Inverse of fault_kind_name.
/// \throws std::invalid_argument on an unknown name.
[[nodiscard]] FaultKind parse_fault_kind(std::string_view name);

/// One fault-axis value: which model, how hard, and the placement seed.
struct FaultSpec {
  FaultKind kind = FaultKind::kNone;
  double rate = 0.0;       ///< fraction of arcs (or switches) affected
  std::uint64_t seed = 0;  ///< seeds the placement RNG stream

  /// Reject unusable parameters: rate must be finite and within [0, 1],
  /// and kNone requires rate == 0 (a "no faults" spec is unambiguous, so
  /// axis products collapse cleanly).
  /// \throws std::invalid_argument
  void validate() const;
};

/// Build the mask \p spec describes over the arcs of \p w. Deterministic:
/// the same (spec, wiring geometry) always yields the same mask.
/// \throws std::invalid_argument via FaultSpec::validate().
[[nodiscard]] FaultMask build_fault_mask(const min::FlatWiring& w,
                                         const FaultSpec& spec);

}  // namespace mineq::fault
