#include "fault/fault_model.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace mineq::fault {

const std::vector<FaultKind>& all_fault_kinds() {
  static const std::vector<FaultKind> kinds = {
      FaultKind::kNone,         FaultKind::kRandomLinks,
      FaultKind::kSwitchKills,  FaultKind::kStageBurst,
      FaultKind::kPartialPort,
  };
  return kinds;
}

std::string fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kRandomLinks:
      return "links";
    case FaultKind::kSwitchKills:
      return "switches";
    case FaultKind::kStageBurst:
      return "burst";
    case FaultKind::kPartialPort:
      return "partial";
  }
  throw std::invalid_argument("fault_kind_name: unknown kind");
}

FaultKind parse_fault_kind(std::string_view name) {
  for (const FaultKind kind : all_fault_kinds()) {
    if (fault_kind_name(kind) == name) return kind;
  }
  throw std::invalid_argument("parse_fault_kind: unknown kind \"" +
                              std::string(name) + '"');
}

void FaultSpec::validate() const {
  if (!std::isfinite(rate) || rate < 0.0 || rate > 1.0) {
    throw std::invalid_argument(
        "FaultSpec: rate must be finite and within [0, 1], got " +
        std::to_string(rate));
  }
  if (kind == FaultKind::kNone && rate != 0.0) {
    throw std::invalid_argument(
        "FaultSpec: kind \"none\" requires rate == 0, got " +
        std::to_string(rate));
  }
}

namespace {

void random_links(const min::FlatWiring& w, const FaultSpec& spec,
                  util::SplitMix64& rng, FaultMask& mask) {
  (void)w;
  const std::uint64_t threshold = util::probability_threshold(spec.rate);
  for (std::size_t arc = 0; arc < mask.total_arcs(); ++arc) {
    if (rng.chance_threshold(threshold)) mask.set_index(arc);
  }
}

/// Mask every in- and out-arc of cell \p y at stage \p s.
void kill_switch(const min::FlatWiring& w, int s, std::uint32_t y,
                 FaultMask& mask) {
  const auto radix = static_cast<unsigned>(w.radix());
  if (s + 1 < w.stages()) {
    for (unsigned port = 0; port < radix; ++port) {
      mask.set(s, y, port);
    }
  }
  if (s > 0) {
    for (unsigned slot = 0; slot < radix; ++slot) {
      mask.set(s - 1, w.parent(s - 1, y, slot),
               w.parent_port(s - 1, y, slot));
    }
  }
}

void switch_kills(const min::FlatWiring& w, const FaultSpec& spec,
                  util::SplitMix64& rng, FaultMask& mask) {
  const std::size_t switches =
      static_cast<std::size_t>(w.stages()) * w.cells_per_stage();
  const auto kills = static_cast<std::size_t>(
      std::llround(spec.rate * static_cast<double>(switches)));
  // Partial Fisher-Yates: the first `kills` entries are a uniform sample
  // of distinct switches, in a seed-determined order.
  std::vector<std::uint32_t> nodes(switches);
  std::iota(nodes.begin(), nodes.end(), 0U);
  for (std::size_t i = 0; i < kills; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.below(switches - i));
    std::swap(nodes[i], nodes[j]);
    const int s = static_cast<int>(nodes[i] / w.cells_per_stage());
    const std::uint32_t y = nodes[i] % w.cells_per_stage();
    kill_switch(w, s, y, mask);
  }
}

/// Partial-port switch faults (the k-ary refinement of kSwitchKills): a
/// uniform sample of round(rate * forwarding switches) distinct switches
/// each lose j out-arcs, j uniform in [1, radix - 1] and the ports a
/// distinct uniform sample — the switch keeps routing through its
/// survivors, so degraded-mode routing detours instead of dropping.
/// Only forwarding switches (stages 0 .. n-2) are drawn: last-stage
/// cells have no out-arcs to lose.
void partial_ports(const min::FlatWiring& w, const FaultSpec& spec,
                   util::SplitMix64& rng, FaultMask& mask) {
  const auto radix = static_cast<unsigned>(w.radix());
  const std::size_t forwarding =
      static_cast<std::size_t>(w.stages() - 1) * w.cells_per_stage();
  const auto hits = static_cast<std::size_t>(
      std::llround(spec.rate * static_cast<double>(forwarding)));
  // Partial Fisher-Yates over the forwarding switches, like switch_kills.
  std::vector<std::uint32_t> nodes(forwarding);
  std::iota(nodes.begin(), nodes.end(), 0U);
  std::vector<unsigned> ports(radix);
  for (std::size_t i = 0; i < hits; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.below(forwarding - i));
    std::swap(nodes[i], nodes[j]);
    const int s = static_cast<int>(nodes[i] / w.cells_per_stage());
    const std::uint32_t y = nodes[i] % w.cells_per_stage();
    // Lose j_lost < radix distinct out-ports (partial Fisher-Yates over
    // the port indices).
    const auto lost =
        1 + static_cast<unsigned>(rng.below(std::uint64_t{radix} - 1));
    std::iota(ports.begin(), ports.end(), 0U);
    for (unsigned k = 0; k < lost; ++k) {
      const auto pick = k + static_cast<unsigned>(
                                rng.below(std::uint64_t{radix} - k));
      std::swap(ports[k], ports[pick]);
      mask.set(s, y, ports[k]);
    }
  }
}

void stage_burst(const min::FlatWiring& w, const FaultSpec& spec,
                 util::SplitMix64& rng, FaultMask& mask) {
  const auto target = static_cast<std::size_t>(
      std::llround(spec.rate * static_cast<double>(mask.total_arcs())));
  const std::size_t links = w.links_per_stage();
  const auto stages = static_cast<std::uint64_t>(w.stages() - 1);
  // Random offsets make progress with high probability; the attempt cap
  // bounds the loop deterministically when the fabric is nearly full.
  std::size_t attempts = 64 + 16 * target;
  while (mask.faulted_count() < target && attempts-- > 0) {
    const std::size_t stage = rng.below(stages);
    const std::size_t offset = rng.below(links);
    // Geometric burst length, mean 8 (continue with probability 7/8),
    // clamped at the stage boundary: bursts never span stages.
    std::size_t length = 1;
    while (rng.chance(7, 8)) ++length;
    length = std::min(length, links - offset);
    const std::size_t base = stage * links + offset;
    for (std::size_t i = 0;
         i < length && mask.faulted_count() < target; ++i) {
      mask.set_index(base + i);
    }
  }
}

}  // namespace

FaultMask build_fault_mask(const min::FlatWiring& w, const FaultSpec& spec) {
  spec.validate();
  FaultMask mask(w);
  if (spec.kind == FaultKind::kNone || spec.rate == 0.0 ||
      mask.total_arcs() == 0) {
    return mask;
  }
  // Placement draws come from stream 0 of the spec seed, mirroring the
  // simulators' split-stream discipline (traffic/gate/burst streams).
  util::SplitMix64 rng = util::SplitMix64(spec.seed).split(0);
  switch (spec.kind) {
    case FaultKind::kRandomLinks:
      random_links(w, spec, rng, mask);
      break;
    case FaultKind::kSwitchKills:
      switch_kills(w, spec, rng, mask);
      break;
    case FaultKind::kStageBurst:
      stage_burst(w, spec, rng, mask);
      break;
    case FaultKind::kPartialPort:
      partial_ports(w, spec, rng, mask);
      break;
    case FaultKind::kNone:
      break;
  }
  return mask;
}

}  // namespace mineq::fault
