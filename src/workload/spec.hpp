/// \file spec.hpp
/// \brief Workload selection and trace-record types, dependency-light so
/// SimConfig can embed a workload::Spec without pulling the sources in.
///
/// The workload layer decides WHEN a terminal wants to inject and WHERE
/// the packet goes; the switching policies decide whether the fabric can
/// accept it. Three kinds ride behind one seam (workload.hpp):
///   - kOpen:       the historic synthetic patterns — Bernoulli gate +
///                  Pattern address transform (+ bursty modulator),
///                  byte-identical to the pre-seam engine;
///   - kClosedLoop: request–reply clients with a bounded
///                  outstanding-request window, so offered load
///                  self-throttles under congestion;
///   - kTrace:      replay of a recorded trace (see TraceRecord for the
///                  line format), optionally time-compressed.
/// Any run can additionally RECORD its accepted injections back into the
/// trace format (Spec::record), so record -> replay round-trips.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mineq::workload {

/// Which source feeds the fabric. Parsed/printed via kind_name() —
/// the CLI and sweep tokens derive from this registry.
enum class Kind : std::uint8_t {
  kOpen,        ///< open-loop synthetic patterns (the historic engine)
  kClosedLoop,  ///< request–reply clients, bounded outstanding window
  kTrace,       ///< trace replay (Spec::trace must be loaded)
};

/// All workload kinds, in declaration order (CLI token registry).
[[nodiscard]] const std::vector<Kind>& all_kinds();

/// Short token for CLIs and CSV columns ("open", "closedloop", "trace").
[[nodiscard]] std::string kind_name(Kind kind);

/// Inverse of kind_name. The rejection message enumerates the valid
/// tokens, so new kinds can never drift from the CLI docs.
/// \throws std::invalid_argument on an unknown name.
[[nodiscard]] Kind parse_kind(std::string_view name);

// Packet tags, carried from injection to ejection (2 bits in the flit /
// packet-ring payload) so the closed-loop source can tell a delivered
// request from a delivered reply.
inline constexpr std::uint8_t kTagNone = 0;
inline constexpr std::uint8_t kTagRequest = 1;
inline constexpr std::uint8_t kTagReply = 2;

/// One trace line: `cycle src dst size [tag]` — injection cycle, source
/// and destination terminal, packet length in flits, and an optional tag
/// (0 none / 1 request / 2 reply, defaulting to 0). Lines are
/// whitespace-separated; blank lines and `#` comments are skipped.
/// Cycles must be non-decreasing in file order.
struct TraceRecord {
  std::uint64_t cycle = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint32_t size = 1;
  std::uint8_t tag = kTagNone;
  /// 1-based source line (filled by parse_trace; 0 for recorded runs).
  std::uint32_t line = 0;

  /// Payload equality only — `line` is provenance bookkeeping, so a
  /// recorded run (line 0) compares equal to its parsed round trip.
  friend bool operator==(const TraceRecord& a, const TraceRecord& b) {
    return a.cycle == b.cycle && a.src == b.src && a.dst == b.dst &&
           a.size == b.size && a.tag == b.tag;
  }
};

/// A parsed trace, shared immutably across sweep points so a grid can
/// replay one loaded file from many tasks without copying it.
struct TraceData {
  std::vector<TraceRecord> records;
};

/// Parse the trace text format into records.
/// \throws std::invalid_argument naming the offending 1-based line on a
/// malformed field or a cycle that runs backwards.
[[nodiscard]] TraceData parse_trace(std::string_view text);

/// Serialize records back into the line format parse_trace reads (a
/// format-spec comment header, then one line per record; tag emitted
/// only when nonzero). parse_trace(write_trace(r)).records == r.
[[nodiscard]] std::string write_trace(const std::vector<TraceRecord>& records);

/// The workload a run drives its injection with (SimConfig::workload).
struct Spec {
  Kind kind = Kind::kOpen;
  /// kClosedLoop: max outstanding (un-replied) requests per client.
  unsigned rr_window = 4;
  /// kTrace: replay record cycles divided by this factor (1 = as-is).
  std::uint64_t time_compression = 1;
  /// kTrace: the loaded trace to replay.
  std::shared_ptr<const TraceData> trace;
  /// Record every accepted injection into SimResult::workload_trace
  /// (works with any kind; the capture replays byte-identically).
  bool record = false;

  /// Reject unusable parameters with a message naming the field: the
  /// window and compression factor must be positive, and kTrace needs a
  /// loaded trace.
  /// \throws std::invalid_argument
  void validate() const;
};

/// What a source asks the fabric to inject: destination terminal plus
/// the request/reply tag the packet carries to ejection.
struct Injection {
  std::uint32_t dest = 0;
  std::uint8_t tag = kTagNone;
};

/// One delivered packet, fed back into the source (closed-loop replies
/// depend on it). Reported for EVERY tail ejection, warmup included —
/// a closed-loop client whose warmup requests never completed would
/// deadlock its window before measurement starts.
struct Delivery {
  std::uint32_t src = 0;       ///< injecting terminal
  std::uint32_t dest = 0;      ///< intended destination terminal
  std::uint32_t terminal = 0;  ///< actual ejection terminal (faulted
                               ///< detours can misdeliver; == dest otherwise)
  std::uint64_t inject_cycle = 0;
  std::uint64_t eject_cycle = 0;
  std::uint8_t tag = kTagNone;
  bool measured = false;  ///< measuring && injected after warmup
};

}  // namespace mineq::workload
