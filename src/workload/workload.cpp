#include "workload/workload.hpp"

#include <charconv>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/flow.hpp"

namespace mineq::workload {

const std::vector<Kind>& all_kinds() {
  static const std::vector<Kind> kinds = {
      Kind::kOpen,
      Kind::kClosedLoop,
      Kind::kTrace,
  };
  return kinds;
}

std::string kind_name(Kind kind) {
  switch (kind) {
    case Kind::kOpen:
      return "open";
    case Kind::kClosedLoop:
      return "closedloop";
    case Kind::kTrace:
      return "trace";
  }
  throw std::invalid_argument("kind_name: unknown workload kind");
}

Kind parse_kind(std::string_view name) {
  for (Kind kind : all_kinds()) {
    if (kind_name(kind) == name) return kind;
  }
  std::string valid;
  for (Kind kind : all_kinds()) {
    if (!valid.empty()) valid += ", ";
    valid += kind_name(kind);
  }
  throw std::invalid_argument("parse_kind: unknown workload \"" +
                              std::string(name) + "\" (valid: " + valid + ')');
}

void Spec::validate() const {
  if (rr_window == 0) {
    throw std::invalid_argument(
        "workload: rr_window must be positive (a zero-request window can "
        "never inject)");
  }
  if (time_compression == 0) {
    throw std::invalid_argument(
        "workload: time_compression must be positive");
  }
  if (kind == Kind::kTrace && trace == nullptr) {
    throw std::invalid_argument(
        "workload: trace replay needs a loaded trace "
        "(SimConfig::workload.trace is null)");
  }
}

namespace {

[[noreturn]] void trace_fail(std::size_t line, const std::string& message) {
  throw std::invalid_argument("workload trace line " + std::to_string(line) +
                              ": " + message);
}

/// One whitespace-separated token of \p text starting at \p pos (updated
/// past the token); empty at end of text.
std::string_view next_token(std::string_view text, std::size_t& pos) {
  while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
  const std::size_t start = pos;
  while (pos < text.size() && text[pos] != ' ' && text[pos] != '\t') ++pos;
  return text.substr(start, pos - start);
}

std::uint64_t parse_field(std::string_view token, const char* field,
                          std::size_t line) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    trace_fail(line, std::string(field) + " \"" + std::string(token) +
                         "\" is not an unsigned integer");
  }
  return value;
}

}  // namespace

TraceData parse_trace(std::string_view text) {
  TraceData data;
  std::uint64_t last_cycle = 0;
  std::size_t line_number = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::size_t end = eol == std::string_view::npos ? text.size() : eol;
    std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    std::size_t at = 0;
    const std::string_view first = next_token(line, at);
    if (first.empty() || first.front() == '#') {
      if (eol == std::string_view::npos) break;
      continue;
    }
    TraceRecord record;
    record.line = static_cast<std::uint32_t>(line_number);
    record.cycle = parse_field(first, "cycle", line_number);
    const std::string_view src = next_token(line, at);
    const std::string_view dst = next_token(line, at);
    const std::string_view size = next_token(line, at);
    if (size.empty()) {
      trace_fail(line_number,
                 "expected `cycle src dst size [tag]`, got \"" +
                     std::string(line) + '"');
    }
    record.src =
        static_cast<std::uint32_t>(parse_field(src, "src", line_number));
    record.dst =
        static_cast<std::uint32_t>(parse_field(dst, "dst", line_number));
    const std::uint64_t size_value = parse_field(size, "size", line_number);
    if (size_value == 0) trace_fail(line_number, "size must be positive");
    record.size = static_cast<std::uint32_t>(size_value);
    const std::string_view tag = next_token(line, at);
    if (!tag.empty()) {
      const std::uint64_t tag_value = parse_field(tag, "tag", line_number);
      if (tag_value > kTagReply) {
        trace_fail(line_number, "tag " + std::to_string(tag_value) +
                                    " is not 0 (none), 1 (request) or 2 "
                                    "(reply)");
      }
      record.tag = static_cast<std::uint8_t>(tag_value);
    }
    const std::string_view extra = next_token(line, at);
    if (!extra.empty() && extra.front() != '#') {
      trace_fail(line_number,
                 "trailing field \"" + std::string(extra) + '"');
    }
    if (record.cycle < last_cycle) {
      trace_fail(line_number, "cycle " + std::to_string(record.cycle) +
                                  " runs backwards (previous record was at "
                                  "cycle " +
                                  std::to_string(last_cycle) + ')');
    }
    last_cycle = record.cycle;
    data.records.push_back(record);
    if (eol == std::string_view::npos) break;
  }
  return data;
}

std::string write_trace(const std::vector<TraceRecord>& records) {
  std::string out;
  out += "# mineq workload trace: cycle src dst size [tag]\n";
  out += "# tag: 1 = request, 2 = reply; omitted or 0 = untagged\n";
  for (const TraceRecord& record : records) {
    out += std::to_string(record.cycle);
    out += ' ';
    out += std::to_string(record.src);
    out += ' ';
    out += std::to_string(record.dst);
    out += ' ';
    out += std::to_string(record.size);
    if (record.tag != kTagNone) {
      out += ' ';
      out += std::to_string(record.tag);
    }
    out += '\n';
  }
  return out;
}

// --- WorkloadSource defaults -----------------------------------------------

void WorkloadSource::tick(std::uint64_t, bool) {}

void WorkloadSource::commit(std::uint64_t, std::uint32_t, const Injection&) {}

bool WorkloadSource::wants_deliveries() const { return false; }

void WorkloadSource::deliver(const Delivery&) {}

void WorkloadSource::set_service_recorder(obs::FlowRecorder*) {}

void WorkloadSource::finish(sim::SimResult&) {}

// --- SyntheticSource -------------------------------------------------------

void SyntheticSource::tick(std::uint64_t, bool) { tick_fast(); }

bool SyntheticSource::attempt(std::uint64_t, std::uint32_t terminal) {
  return attempt_fast(terminal);
}

Injection SyntheticSource::draw(std::uint64_t, std::uint32_t terminal) {
  return draw_fast(terminal);
}

// --- ClosedLoopSource ------------------------------------------------------

ClosedLoopSource::ClosedLoopSource(sim::Pattern pattern, int address_digits,
                                   int radix, const sim::SimConfig& config,
                                   std::uint64_t terminals,
                                   std::size_t reply_histogram_buckets)
    : source_(pattern, address_digits, radix,
              util::SplitMix64(config.seed).split(0),
              pattern == sim::Pattern::kPermutation
                  ? config.permutation
                  : std::vector<std::uint32_t>{}),
      gate_rng_(util::SplitMix64(config.seed).split(1)),
      rate_num_(static_cast<std::uint64_t>(config.injection_rate * 65536.0)),
      window_(config.workload.rr_window),
      outstanding_(terminals, 0),
      replies_(terminals),
      reply_histogram_(1.0, reply_histogram_buckets) {}

void ClosedLoopSource::tick(std::uint64_t, bool measuring) {
  measuring_ = measuring;
  source_.tick();
}

bool ClosedLoopSource::attempt(std::uint64_t, std::uint32_t terminal) {
  // A pending reply injects as soon as the server's turn comes — service
  // is not gated, only request generation is.
  if (!replies_[terminal].empty()) return true;
  if ((gate_rng_.next() & 0xFFFF) >= rate_num_) return false;
  if (outstanding_[terminal] >= window_) {
    // The client wanted to issue a request but its window is full: the
    // self-throttling event the sweep reports as window_stall_cycles.
    if (measuring_) ++window_stalls_;
    return false;
  }
  return true;
}

Injection ClosedLoopSource::draw(std::uint64_t, std::uint32_t terminal) {
  if (!replies_[terminal].empty()) {
    return {replies_[terminal].front().client, kTagReply};
  }
  return {source_.destination(terminal), kTagRequest};
}

void ClosedLoopSource::commit(std::uint64_t, std::uint32_t terminal,
                              const Injection& injection) {
  if (injection.tag == kTagReply) {
    const PendingReply reply = replies_[terminal].front();
    replies_[terminal].pop_front();
    in_flight_[pair_key(terminal, reply.client)].push_back(
        reply.request_inject);
    return;
  }
  ++outstanding_[terminal];
}

bool ClosedLoopSource::wants_deliveries() const { return true; }

void ClosedLoopSource::deliver(const Delivery& delivery) {
  if (delivery.tag == kTagRequest) {
    if (delivery.terminal != delivery.dest) {
      // A misdelivered request is lost: no reply will come, so free the
      // client's window slot instead of leaking it shut.
      ++orphans_;
      if (outstanding_[delivery.src] > 0) --outstanding_[delivery.src];
      return;
    }
    replies_[delivery.dest].push_back({delivery.src, delivery.inject_cycle});
    return;
  }
  if (delivery.tag != kTagReply) return;
  const std::uint32_t server = delivery.src;
  const std::uint32_t client = delivery.dest;
  const auto it = in_flight_.find(pair_key(server, client));
  std::uint64_t request_inject = 0;
  if (it == in_flight_.end() || it->second.empty()) {
    // A reply with no matching request in flight (only reachable via
    // faulted misdelivery of an earlier reply of the same pair).
    ++orphans_;
    return;
  }
  request_inject = it->second.front();
  it->second.pop_front();
  if (outstanding_[client] > 0) --outstanding_[client];
  if (delivery.terminal != delivery.dest) {
    ++orphans_;
    return;
  }
  const double latency =
      static_cast<double>(delivery.eject_cycle - request_inject);
  if (delivery.measured) {
    reply_stats_.add(latency);
    reply_histogram_.add(latency);
    if (service_ != nullptr) {
      service_->record_service(client, server, latency);
    }
  }
}

void ClosedLoopSource::set_service_recorder(obs::FlowRecorder* recorder) {
  service_ = recorder;
}

void ClosedLoopSource::finish(sim::SimResult& result) {
  result.window_stall_cycles = window_stalls_;
  result.reply_orphans = orphans_;
  result.reply_latency = reply_stats_;
  result.reply_latency_histogram = reply_histogram_;
}

// --- TraceSource -----------------------------------------------------------

TraceSource::TraceSource(const Spec& spec, std::uint64_t terminals,
                         std::size_t packet_length)
    : per_terminal_(terminals), cursor_(terminals, 0) {
  const std::vector<TraceRecord>& records = spec.trace->records;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const TraceRecord& record = records[i];
    const std::string where =
        record.line != 0 ? "line " + std::to_string(record.line)
                         : "record " + std::to_string(i);
    if (record.src >= terminals || record.dst >= terminals) {
      throw std::invalid_argument(
          "TraceSource: " + where + ": terminal " +
          std::to_string(record.src >= terminals ? record.src : record.dst) +
          " out of range (fabric has " + std::to_string(terminals) +
          " terminals)");
    }
    if (record.size != packet_length) {
      throw std::invalid_argument(
          "TraceSource: " + where + ": size " + std::to_string(record.size) +
          " != the run's packet_length " + std::to_string(packet_length) +
          " (the disciplines serialize one fixed length per run)");
    }
    per_terminal_[record.src].push_back(
        {record.cycle / spec.time_compression, record.dst, record.tag});
  }
}

bool TraceSource::attempt(std::uint64_t cycle, std::uint32_t terminal) {
  const std::size_t cursor = cursor_[terminal];
  return cursor < per_terminal_[terminal].size() &&
         per_terminal_[terminal][cursor].due <= cycle;
}

Injection TraceSource::draw(std::uint64_t, std::uint32_t terminal) {
  const Entry& entry = per_terminal_[terminal][cursor_[terminal]];
  return {entry.dest, entry.tag};
}

void TraceSource::commit(std::uint64_t, std::uint32_t terminal,
                         const Injection&) {
  ++cursor_[terminal];
}

// --- Factory ---------------------------------------------------------------

std::unique_ptr<WorkloadSource> make_source(
    sim::Pattern pattern, const sim::SimConfig& config, int address_digits,
    int radix, std::uint64_t terminals,
    std::size_t reply_histogram_buckets) {
  switch (config.workload.kind) {
    case Kind::kOpen:
      return std::make_unique<SyntheticSource>(pattern, address_digits, radix,
                                               config, terminals);
    case Kind::kClosedLoop:
      return std::make_unique<ClosedLoopSource>(pattern, address_digits,
                                                radix, config, terminals,
                                                reply_histogram_buckets);
    case Kind::kTrace:
      return std::make_unique<TraceSource>(config.workload, terminals,
                                           config.packet_length);
  }
  throw std::invalid_argument("make_source: unknown workload kind");
}

}  // namespace mineq::workload
