/// \file workload.hpp
/// \brief The WorkloadSource seam: injection lifted out of FabricCore.
///
/// FabricCore drives one source per run through a three-step protocol
/// that mirrors how the switching policies already sequence injection —
/// chosen so the open-loop SyntheticSource consumes its RNG streams in
/// EXACTLY the historic order (the PR 2–9 goldens pin it byte for byte):
///
///   attempt(cycle, t)  "does terminal t want to inject this cycle?"
///                      Consumes the gate draw; the policy may still
///                      refuse (source busy, no lane, no credits).
///   draw(cycle, t)     destination + tag. Consumes the destination
///                      draw; MUST NOT change logical source state —
///                      the multipath policies draw before they know
///                      whether a plane can accept.
///   commit(cycle, t)   the fabric accepted the packet. State changes
///                      (window consume, reply dequeue, trace cursor,
///                      recording) happen here and only here.
///
/// tick(cycle) runs once per cycle before injection — in the sharded
/// driver it runs in the worker-0 serial phase, and deliveries are
/// replayed there in serial ejection order, so every source is
/// byte-deterministic at any sim_threads.

#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sim/traffic.hpp"
#include "util/rng.hpp"
#include "workload/spec.hpp"

namespace mineq::obs {
class FlowRecorder;
}  // namespace mineq::obs

namespace mineq::workload {

/// The seam. One instance per run, owned by FabricCore; every call runs
/// in the serial (worker-0) phase of the cycle, so implementations need
/// no synchronization.
class WorkloadSource {
 public:
  virtual ~WorkloadSource() = default;

  /// Once per cycle, before injection (replaces the hardwired bursty
  /// advance). \p measuring gates stall accounting.
  virtual void tick(std::uint64_t cycle, bool measuring);

  /// Does terminal \p t want to inject at \p cycle? May consume RNG.
  [[nodiscard]] virtual bool attempt(std::uint64_t cycle,
                                     std::uint32_t terminal) = 0;

  /// The packet terminal \p t would inject. May consume RNG; must not
  /// change logical source state (the fabric may still refuse).
  [[nodiscard]] virtual Injection draw(std::uint64_t cycle,
                                       std::uint32_t terminal) = 0;

  /// The fabric accepted the drawn packet.
  virtual void commit(std::uint64_t cycle, std::uint32_t terminal,
                      const Injection& injection);

  /// Does this source need deliver() callbacks? (FabricCore caches the
  /// answer so delivery-indifferent runs pay one predictable branch per
  /// ejection, nothing more.)
  [[nodiscard]] virtual bool wants_deliveries() const;

  /// One delivered packet, in serial ejection order (tail ejections
  /// only for wormhole; warmup included — see workload::Delivery).
  virtual void deliver(const Delivery& delivery);

  /// Route request->reply end-to-end latencies into the observability
  /// flow recorder's service channel (no-op for sources without one).
  virtual void set_service_recorder(obs::FlowRecorder* recorder);

  /// End of run: fold source-side statistics into the result
  /// (window stalls, reply latency, orphans).
  virtual void finish(sim::SimResult& result);
};

/// The historic open-loop engine behind the seam: Bernoulli gate +
/// Pattern address transform + bursty on/off modulator, with the RNG
/// stream layout FabricCore always used (split 0 traffic, split 1 gate,
/// split 2 burst) reproduced draw for draw. FabricCore keeps a raw
/// pointer to this concrete type and calls the *_fast methods inline,
/// so open-loop runs pay a predicted branch, not a virtual dispatch.
class SyntheticSource final : public WorkloadSource {
 public:
  SyntheticSource(sim::Pattern pattern, int address_digits, int radix,
                  const sim::SimConfig& config, std::uint64_t terminals)
      : source_(pattern, address_digits, radix,
                util::SplitMix64(config.seed).split(0),
                pattern == sim::Pattern::kPermutation
                    ? config.permutation
                    : std::vector<std::uint32_t>{}),
        inject_rng_(util::SplitMix64(config.seed).split(1)),
        rate_num_(
            static_cast<std::uint64_t>(config.injection_rate * 65536.0)) {
    if (pattern == sim::Pattern::kBursty) {
      burst_.emplace(terminals, util::SplitMix64(config.seed).split(2),
                     config.burst);
    }
  }

  /// Gate draw consumed only when the terminal is ON — the historic
  /// `terminal_active -> gate` short-circuit, byte for byte.
  [[nodiscard]] bool attempt_fast(std::uint32_t terminal) {
    return (!burst_.has_value() || burst_->on(terminal)) &&
           (inject_rng_.next() & 0xFFFF) < rate_num_;
  }
  [[nodiscard]] Injection draw_fast(std::uint32_t terminal) {
    return {source_.destination(terminal), kTagNone};
  }
  void tick_fast() {
    if (burst_.has_value()) burst_->advance();
    source_.tick();
  }

  void tick(std::uint64_t cycle, bool measuring) override;
  [[nodiscard]] bool attempt(std::uint64_t cycle,
                             std::uint32_t terminal) override;
  [[nodiscard]] Injection draw(std::uint64_t cycle,
                               std::uint32_t terminal) override;

 private:
  sim::TrafficSource source_;
  util::SplitMix64 inject_rng_;
  std::uint64_t rate_num_;
  std::optional<sim::BurstModulator> burst_;
};

/// Request–reply clients with a bounded outstanding-request window.
/// Each terminal is both a client (gated Bernoulli request generation,
/// destinations drawn from the run's Pattern so traffic crossing stays
/// meaningful) and a server (a delivered request enqueues one reply back
/// to its requester; the reply injects as soon as the server's turn
/// comes, bypassing the gate). A client at its window emits nothing —
/// the gate draw is consumed but the attempt is suppressed and counted
/// into window_stall_cycles, so offered load self-throttles under
/// congestion and `offered_rate_effective` reports the divergence
/// honestly. Reply end-to-end latency (reply ejection cycle minus the
/// ORIGINAL request's injection cycle) feeds SimResult::reply_latency
/// and, when flow stats are on, the FlowRecorder service channel.
class ClosedLoopSource final : public WorkloadSource {
 public:
  ClosedLoopSource(sim::Pattern pattern, int address_digits, int radix,
                   const sim::SimConfig& config, std::uint64_t terminals,
                   std::size_t reply_histogram_buckets);

  void tick(std::uint64_t cycle, bool measuring) override;
  [[nodiscard]] bool attempt(std::uint64_t cycle,
                             std::uint32_t terminal) override;
  [[nodiscard]] Injection draw(std::uint64_t cycle,
                               std::uint32_t terminal) override;
  void commit(std::uint64_t cycle, std::uint32_t terminal,
              const Injection& injection) override;
  [[nodiscard]] bool wants_deliveries() const override;
  void deliver(const Delivery& delivery) override;
  void set_service_recorder(obs::FlowRecorder* recorder) override;
  void finish(sim::SimResult& result) override;

 private:
  /// A reply waiting at a server: who to answer, and when the request
  /// that caused it was injected (the e2e latency anchor).
  struct PendingReply {
    std::uint32_t client = 0;
    std::uint64_t request_inject = 0;
  };

  static std::uint64_t pair_key(std::uint32_t server,
                                std::uint32_t client) noexcept {
    return (static_cast<std::uint64_t>(server) << 32) | client;
  }

  sim::TrafficSource source_;  ///< request destinations (split 0)
  util::SplitMix64 gate_rng_;  ///< request gate (split 1)
  std::uint64_t rate_num_;
  unsigned window_;
  std::vector<unsigned> outstanding_;  ///< per client
  std::vector<std::deque<PendingReply>> replies_;  ///< per server
  /// Request-inject anchors of replies in flight, FIFO per
  /// (server, client) pair. Wormhole worms between one pair can reorder
  /// across lanes; the FIFO pairing keeps attribution deterministic
  /// (it only ever swaps latencies within the same pair).
  std::unordered_map<std::uint64_t, std::deque<std::uint64_t>> in_flight_;
  std::uint64_t window_stalls_ = 0;
  std::uint64_t orphans_ = 0;
  bool measuring_ = false;
  sim::RunningStats reply_stats_;
  sim::Histogram reply_histogram_;
  obs::FlowRecorder* service_ = nullptr;
};

/// Trace replay: each terminal injects its recorded packets in file
/// order, at record.cycle / time_compression at the earliest — a record
/// the fabric refuses (full queue, no lane) stays pending and retries
/// every cycle, so backpressure delays but never drops replayed load.
class TraceSource final : public WorkloadSource {
 public:
  /// Validates every record against the run's geometry, naming the
  /// offending trace line: terminals must be in range and sizes must
  /// equal the run's packet_length (the disciplines serialize packets
  /// at one fixed length per run).
  /// \throws std::invalid_argument
  TraceSource(const Spec& spec, std::uint64_t terminals,
              std::size_t packet_length);

  [[nodiscard]] bool attempt(std::uint64_t cycle,
                             std::uint32_t terminal) override;
  [[nodiscard]] Injection draw(std::uint64_t cycle,
                               std::uint32_t terminal) override;
  void commit(std::uint64_t cycle, std::uint32_t terminal,
              const Injection& injection) override;

 private:
  struct Entry {
    std::uint64_t due = 0;  ///< record cycle / time_compression
    std::uint32_t dest = 0;
    std::uint8_t tag = kTagNone;
  };
  std::vector<std::vector<Entry>> per_terminal_;
  std::vector<std::size_t> cursor_;
};

/// Build the configured source for a run. \p reply_histogram_buckets
/// shapes the closed-loop reply-latency histogram (the caller passes the
/// same bucket count as the run's latency histogram).
[[nodiscard]] std::unique_ptr<WorkloadSource> make_source(
    sim::Pattern pattern, const sim::SimConfig& config, int address_digits,
    int radix, std::uint64_t terminals, std::size_t reply_histogram_buckets);

}  // namespace mineq::workload
