#include "obs/probe.hpp"

#include <cstdio>

namespace mineq::obs {

namespace {

/// Shortest round-trip double rendering, the same convention the exp::
/// reports use, so identical series render identical bytes.
void append_double(std::string& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  out += buffer;
}

}  // namespace

std::string ProbeSeries::csv() const {
  std::string out =
      "cycle,stage,occupancy,link_utilization,hol_stalls,credit_stalls,"
      "reroutes\n";
  const std::size_t rows = filled();
  // Ring order: when wrapped, the oldest retained slot is samples %
  // capacity; until then slot order is write order.
  const std::size_t first = samples > capacity ? samples % capacity : 0;
  for (std::size_t i = 0; i < rows; ++i) {
    const std::size_t slot = (first + i) % capacity;
    for (int s = 0; s < stages; ++s) {
      const std::size_t at = slot * static_cast<std::size_t>(stages) +
                             static_cast<std::size_t>(s);
      out += std::to_string(cycle[slot]);
      out += ',';
      out += std::to_string(s);
      out += ',';
      append_double(out, occupancy[at]);
      out += ',';
      append_double(out, link_utilization[at]);
      out += ',';
      out += std::to_string(hol_stalls[at]);
      out += ',';
      out += std::to_string(credit_stalls[at]);
      out += ',';
      out += std::to_string(reroutes[at]);
      out += '\n';
    }
  }
  return out;
}

std::string ProbeSeries::heatmap_csv() const {
  std::string out = "stage,cell,occupancy\n";
  for (int s = 0; s < stages; ++s) {
    for (std::uint32_t x = 0; x < cells; ++x) {
      out += std::to_string(s);
      out += ',';
      out += std::to_string(x);
      out += ',';
      append_double(out, heatmap[static_cast<std::size_t>(s) * cells + x]);
      out += '\n';
    }
  }
  return out;
}

}  // namespace mineq::obs
