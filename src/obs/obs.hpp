/// \file obs.hpp
/// \brief Observability configuration and the stall-cause taxonomy.
///
/// The obs:: layer is a passive telemetry subsystem threaded through both
/// switching disciplines as a compile-time policy parameter (kObs): when
/// every collector is disabled the simulators dispatch to the kObs=false
/// instantiations, which are byte-for-byte the pre-observability code —
/// the same pattern kFaulted and kCredits use, pinned by the golden
/// tests. When enabled, the collectors are strictly read-only over the
/// simulation state: enabling observability never changes a counter,
/// a latency or an RNG draw.
///
/// Three collectors, each independently switchable (ObsConfig):
///   - probes (probe.hpp): per-stage time series + occupancy heatmap,
///     sampled every probe_stride measured cycles,
///   - per-flow recorders (flow.hpp): exact per-(source, destination) and
///     per-service-level latency histograms with p50/p99/p999,
///   - packet tracing (trace.hpp): sampled packets emit Chrome
///     trace-event JSON loadable in Perfetto / chrome://tracing.
/// Stall attribution (the StallCause split of hol_blocking_cycles) rides
/// with any enabled collector; the per-cause counters land directly in
/// SimResult and always sum exactly to hol_blocking_cycles.

#pragma once

#include <cstddef>
#include <cstdint>

namespace mineq::obs {

/// Why a ready buffer head failed to advance this cycle. Attribution is
/// exclusive: every HOL-blocked cycle is charged to exactly one cause, so
/// the per-cause counters partition hol_blocking_cycles.
enum class StallCause : std::uint8_t {
  /// Another head won the output-port arbitration (the default when no
  /// more specific cause applies).
  kLostArbitration = 0,
  /// The downstream buffer (FIFO or lane) had no space.
  kDownstreamFull = 1,
  /// No idle virtual lane on the downstream port (wormhole heads only).
  kNoFreeLane = 2,
  /// The downstream link's credit ledger was empty (credit runs only).
  kZeroCredits = 3,
  /// The head's routed arc is fault-masked and it is waiting on detour
  /// capacity (faulted runs only).
  kMaskedArc = 4,
};

inline constexpr std::size_t kStallCauseCount = 5;

/// Short snake_case token for CSV columns and trace labels.
[[nodiscard]] const char* stall_cause_name(StallCause cause) noexcept;

/// Per-flow tables are terminals^2; cap the terminal count so enabling
/// flow stats cannot silently allocate gigabytes on a megafabric.
inline constexpr std::uint32_t kMaxFlowTerminals = 256;

/// Which collectors run. The all-defaults config means "observability
/// off" and dispatches to the kObs=false simulator instantiations.
struct ObsConfig {
  /// Probe sampling stride in measured cycles; 0 disables the probes.
  /// Each stride window ends with one sample (the first sample lands at
  /// warmup + probe_stride - 1), so window counters normalize exactly.
  std::uint64_t probe_stride = 0;
  /// Record exact per-(source, destination) and per-SL latency
  /// histograms (SimResult::flows).
  bool flow_stats = false;
  /// Packet-trace sampling: 0 disables tracing, N traces the
  /// deterministic 1-in-N subset of packets picked by trace_picked().
  std::uint64_t trace_sample = 0;

  /// True when any collector is enabled (the obs dispatch predicate).
  [[nodiscard]] bool any() const noexcept {
    return probe_stride > 0 || flow_stats || trace_sample > 0;
  }

  /// \throws std::invalid_argument when flow stats are requested on a
  /// fabric with more than kMaxFlowTerminals terminals.
  void validate(std::uint64_t terminals) const;
};

/// Stateless packet pick for trace sampling. A packet is identified by
/// (source terminal, inject cycle) — a terminal injects at most one
/// packet per cycle, so the pair is unique — and the pick is a pure
/// function of that identity, so every pipeline site (inject, advance,
/// stall, eject, drop) agrees on the sampled subset without carrying
/// per-packet flags, at any thread count.
[[nodiscard]] constexpr bool trace_picked(std::uint64_t trace_sample,
                                          std::uint64_t src,
                                          std::uint64_t inject_cycle) noexcept {
  std::uint64_t z =
      (src + 1) * 0x9E3779B97F4A7C15ULL ^
      (inject_cycle + 0xBF58476D1CE4E5B9ULL) * 0x94D049BB133111EBULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return (z ^ (z >> 31)) % trace_sample == 0;
}

}  // namespace mineq::obs
