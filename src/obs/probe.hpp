/// \file probe.hpp
/// \brief Per-stage time-series probes and the occupancy heatmap.
///
/// A ProbeSeries is a set of preallocated ring buffers, one slot per
/// probe window, written by worker 0 in the exclusive sample-reduce
/// phase (serial runs sample in the same program order), so the series
/// is byte-identical at every sim_threads. Capacity is fixed up front
/// (measure_cycles / probe_stride windows); should a caller ever sample
/// past it, the ring wraps and keeps the newest windows.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mineq::obs {

/// Per-stage time series sampled once per probe window, plus the
/// per-stage x per-cell occupancy heatmap accumulated over all windows.
///
/// The stage axis means "buffer stage" for occupancy (input buffers of
/// stage s) and "link gap" for link_utilization/hops (gap s carries
/// stage s -> s+1 traffic; the last gap is the ejection links). Window
/// counters (hol_stalls, credit_stalls, reroutes) are exact deltas over
/// the window's probe_stride measured cycles.
struct ProbeSeries {
  std::uint64_t stride = 0;  ///< probe window length in measured cycles
  int stages = 0;
  std::uint32_t cells = 0;  ///< switch cells per stage (heatmap rows)
  std::size_t capacity = 0; ///< ring capacity in windows
  std::size_t samples = 0;  ///< windows written (ring wraps past capacity)

  /// Cycle whose sample phase closed the window, per slot.
  std::vector<std::uint64_t> cycle;
  /// Mean buffer occupancy fraction per stage, [slot * stages + s].
  std::vector<double> occupancy;
  /// Link-gap utilization (flit-cycles per link-cycle) per stage.
  std::vector<double> link_utilization;
  /// HOL-blocked head-cycles in the window, per stage.
  std::vector<std::uint64_t> hol_stalls;
  /// Credit-stalled head-cycles in the window, per stage.
  std::vector<std::uint64_t> credit_stalls;
  /// Packets steered off their primary arc in the window, per stage.
  std::vector<std::uint64_t> reroutes;
  /// Mean occupancy fraction per (stage, cell) over all windows,
  /// [s * cells + x].
  std::vector<double> heatmap;

  [[nodiscard]] bool empty() const noexcept { return samples == 0; }
  /// Slots in ring order, oldest first (== write order until the ring
  /// wraps).
  [[nodiscard]] std::size_t filled() const noexcept {
    return samples < capacity ? samples : capacity;
  }

  /// CSV export: cycle,stage,occupancy,link_utilization,hol_stalls,
  /// credit_stalls,reroutes — one row per (window, stage).
  [[nodiscard]] std::string csv() const;
  /// Heatmap CSV export: stage,cell,occupancy — one row per (stage,
  /// cell).
  [[nodiscard]] std::string heatmap_csv() const;
};

}  // namespace mineq::obs
