#include "obs/trace.hpp"

#include <algorithm>

namespace mineq::obs {

namespace {

/// Track id: a packet's unique (source, inject-cycle) identity folded
/// into one integer. src rides in the high bits; 2^32 cycles of inject
/// headroom keeps every supported run unambiguous while the product
/// stays below 2^53 (exact in JSON doubles) for every supported fabric.
std::uint64_t track_id(const TraceEvent& event) {
  return (static_cast<std::uint64_t>(event.src) << 32) |
         (event.inject_cycle & 0xFFFFFFFFULL);
}

void append_u64(std::string& out, std::uint64_t value) {
  out += std::to_string(value);
}

void append_common(std::string& out, const TraceEvent& event,
                   std::uint32_t pid) {
  out += "\"ts\":";
  append_u64(out, event.cycle);
  out += ",\"pid\":";
  append_u64(out, pid);
  out += ",\"tid\":";
  append_u64(out, track_id(event));
}

void append_event(std::string& out, const TraceEvent& event,
                  std::uint32_t pid) {
  switch (event.kind) {
    case TraceEventKind::kPacketBegin:
      out += "{\"name\":\"pkt\",\"cat\":\"packet\",\"ph\":\"B\",";
      append_common(out, event, pid);
      out += ",\"args\":{\"src\":";
      append_u64(out, event.src);
      out += ",\"dst\":";
      append_u64(out, event.dst);
      out += "}}";
      return;
    case TraceEventKind::kPacketEnd:
      out += "{\"name\":\"pkt\",\"cat\":\"packet\",\"ph\":\"E\",";
      append_common(out, event, pid);
      out += '}';
      return;
    case TraceEventKind::kStageBegin:
    case TraceEventKind::kStageEnd:
      out += "{\"name\":\"stage ";
      append_u64(out, event.stage);
      out += "\",\"cat\":\"hop\",\"ph\":\"";
      out += event.kind == TraceEventKind::kStageBegin ? 'B' : 'E';
      out += "\",";
      append_common(out, event, pid);
      out += '}';
      return;
    case TraceEventKind::kStall:
      out += "{\"name\":\"stall ";
      out += stall_cause_name(static_cast<StallCause>(event.cause));
      out += "\",\"cat\":\"stall\",\"ph\":\"i\",\"s\":\"t\",";
      append_common(out, event, pid);
      out += ",\"args\":{\"stage\":";
      append_u64(out, event.stage);
      out += "}}";
      return;
    case TraceEventKind::kReroute:
      out += "{\"name\":\"reroute\",\"cat\":\"route\",\"ph\":\"i\","
             "\"s\":\"t\",";
      append_common(out, event, pid);
      out += ",\"args\":{\"stage\":";
      append_u64(out, event.stage);
      out += "}}";
      return;
    case TraceEventKind::kDrop:
      out += "{\"name\":\"drop\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",";
      append_common(out, event, pid);
      out += ",\"args\":{\"stage\":";
      append_u64(out, event.stage);
      out += "}}";
      return;
  }
}

void append_process(std::string& out, std::string_view name,
                    const std::vector<TraceEvent>& events, std::uint32_t pid,
                    bool& first) {
  if (!first) out += ",\n";
  first = false;
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
  append_u64(out, pid);
  out += ",\"tid\":0,\"args\":{\"name\":\"";
  out += name;
  out += "\"}}";
  for (const TraceEvent& event : events) {
    out += ",\n";
    append_event(out, event, pid);
  }
}

}  // namespace

void sort_trace(std::vector<TraceEvent>& events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.cycle != b.cycle) return a.cycle < b.cycle;
                     return a.phase < b.phase;
                   });
}

std::string trace_json(const std::vector<TraceEvent>& events,
                       std::uint32_t pid, std::string_view process_name) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  append_process(out, process_name, events, pid, first);
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string trace_json_multi(
    const std::vector<std::pair<std::string, const std::vector<TraceEvent>*>>&
        processes) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (std::uint32_t pid = 0; pid < processes.size(); ++pid) {
    append_process(out, processes[pid].first, *processes[pid].second, pid,
                   first);
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

}  // namespace mineq::obs
