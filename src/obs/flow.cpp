#include "obs/flow.hpp"

#include <algorithm>
#include <cstdio>

namespace mineq::obs {

namespace {

void append_double(std::string& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  out += buffer;
}

void append_stat_row(std::string& out, const char* kind,
                     const FlowStat& stat) {
  out += kind;
  out += ',';
  out += std::to_string(stat.src);
  out += ',';
  out += std::to_string(stat.dst);
  out += ',';
  out += std::to_string(stat.count);
  out += ',';
  append_double(out, stat.mean);
  out += ',';
  append_double(out, stat.p50);
  out += ',';
  append_double(out, stat.p99);
  out += ',';
  append_double(out, stat.p999);
  out += '\n';
}

/// Same quantile convention as sim::Histogram: the upper edge of the
/// first bucket whose cumulative count reaches q * total; overflow mass
/// reports the sentinel edge just past the covered range.
double hist_quantile(const std::vector<std::uint32_t>& hist,
                     std::uint32_t overflow, std::uint64_t total,
                     std::size_t buckets, double q) {
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < hist.size(); ++b) {
    cumulative += hist[b];
    if (static_cast<double>(cumulative) >= target) {
      return static_cast<double>(b + 1);
    }
  }
  if (overflow == 0 && !hist.empty()) {
    return static_cast<double>(hist.size());
  }
  return static_cast<double>(buckets + 1);
}

}  // namespace

std::string FlowSummary::csv() const {
  std::string out =
      "kind,src,dst,count,latency_mean,latency_p50,latency_p99,"
      "latency_p999\n";
  for (const FlowStat& stat : flows) append_stat_row(out, "flow", stat);
  for (const FlowStat& stat : per_sl) append_stat_row(out, "sl", stat);
  for (const FlowStat& stat : services) append_stat_row(out, "service", stat);
  return out;
}

void FlowRecorder::reset(std::uint32_t terminals, std::size_t buckets,
                         std::size_t service_levels) {
  terminals_ = terminals;
  buckets_ = buckets;
  flows_.assign(static_cast<std::size_t>(terminals) * terminals, Acc{});
  sls_.assign(service_levels, Acc{});
}

void FlowRecorder::add(Acc& acc, double latency) {
  ++acc.count;
  acc.sum += latency;
  const auto bucket = static_cast<std::size_t>(latency);
  if (bucket >= buckets_) {
    ++acc.overflow;
    return;
  }
  if (acc.hist.empty()) acc.hist.assign(buckets_, 0);
  ++acc.hist[bucket];
}

void FlowRecorder::record(std::uint32_t src, std::uint32_t dst, unsigned sl,
                          double latency) {
  add(flows_[static_cast<std::size_t>(src) * terminals_ + dst], latency);
  if (sl < sls_.size()) add(sls_[sl], latency);
}

void FlowRecorder::record_service(std::uint32_t client, std::uint32_t server,
                                  double latency) {
  if (services_.empty()) {
    services_.assign(static_cast<std::size_t>(terminals_) * terminals_,
                     Acc{});
  }
  add(services_[static_cast<std::size_t>(client) * terminals_ + server],
      latency);
}

FlowStat FlowRecorder::stat_of(const Acc& acc) const {
  FlowStat stat;
  stat.count = acc.count;
  stat.mean = acc.count == 0 ? 0.0 : acc.sum / static_cast<double>(acc.count);
  stat.p50 = hist_quantile(acc.hist, acc.overflow, acc.count, buckets_, 0.5);
  stat.p99 = hist_quantile(acc.hist, acc.overflow, acc.count, buckets_, 0.99);
  stat.p999 =
      hist_quantile(acc.hist, acc.overflow, acc.count, buckets_, 0.999);
  return stat;
}

FlowSummary FlowRecorder::summary() const {
  FlowSummary out;
  out.terminals = terminals_;
  for (std::uint32_t src = 0; src < terminals_; ++src) {
    for (std::uint32_t dst = 0; dst < terminals_; ++dst) {
      const Acc& acc = flows_[static_cast<std::size_t>(src) * terminals_ + dst];
      if (acc.count == 0) continue;
      FlowStat stat = stat_of(acc);
      stat.src = src;
      stat.dst = dst;
      if (stat.p99 > out.worst_p99) {
        out.worst_p99 = stat.p99;
        out.worst_src = src;
        out.worst_dst = dst;
      }
      out.flows.push_back(stat);
    }
  }
  for (std::uint32_t sl = 0; sl < sls_.size(); ++sl) {
    const Acc& acc = sls_[sl];
    if (acc.count == 0) continue;
    FlowStat stat = stat_of(acc);
    stat.src = sl;
    out.per_sl.push_back(stat);
  }
  if (!services_.empty()) {
    for (std::uint32_t client = 0; client < terminals_; ++client) {
      for (std::uint32_t server = 0; server < terminals_; ++server) {
        const Acc& acc =
            services_[static_cast<std::size_t>(client) * terminals_ + server];
        if (acc.count == 0) continue;
        FlowStat stat = stat_of(acc);
        stat.src = client;
        stat.dst = server;
        out.worst_service_p99 = std::max(out.worst_service_p99, stat.p99);
        out.services.push_back(stat);
      }
    }
  }
  return out;
}

}  // namespace mineq::obs
