/// \file flow.hpp
/// \brief Exact per-(source, destination) and per-service-level latency
/// recording.
///
/// The recorder keeps one integer-count latency histogram per flow
/// (bucket width 1 cycle, the same resolution and quantile convention as
/// sim::Histogram), so the summary's p50/p99/p999 columns are exact over
/// the recorded population, not sketches. Flow adds are replayed by
/// worker 0 in cell order on sharded runs — the same path the global
/// latency accumulators use — so the summary is byte-identical at every
/// thread count.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mineq::obs {

/// One measured flow (or one service level, in FlowSummary::per_sl,
/// where src carries the SL index and dst is unused).
struct FlowStat {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

/// The rendered flow table: every flow that delivered at least one
/// measured packet, in (src, dst) ascending order. Closed-loop workload
/// runs additionally carry a service table — request->reply end-to-end
/// latency per (client, server) pair — in `services`, populated through
/// record_service; worst_p99 keeps its historic flows-only meaning.
struct FlowSummary {
  std::uint32_t terminals = 0;
  std::vector<FlowStat> flows;
  std::vector<FlowStat> per_sl;  ///< src = service level, dst unused
  /// src = client, dst = server; request injection to reply ejection.
  std::vector<FlowStat> services;
  double worst_p99 = 0.0;        ///< max p99 over flows
  std::uint32_t worst_src = 0;   ///< source of the worst-p99 flow
  std::uint32_t worst_dst = 0;   ///< destination of the worst-p99 flow
  double worst_service_p99 = 0.0;  ///< max p99 over services

  [[nodiscard]] bool empty() const noexcept {
    return flows.empty() && per_sl.empty() && services.empty();
  }
  /// CSV export: kind,src,dst,count,latency_mean,latency_p50,
  /// latency_p99,latency_p999 — flow rows, then sl rows, then service
  /// rows (closed-loop runs only).
  [[nodiscard]] std::string csv() const;
};

/// Accumulates per-flow and per-SL latency histograms. Histogram storage
/// is allocated lazily per active flow, so a sparse traffic matrix costs
/// only its live flows.
class FlowRecorder {
 public:
  FlowRecorder() = default;

  /// Shape for \p terminals logical terminals with \p buckets 1-cycle
  /// latency buckets per histogram (the SimResult histogram's shape, so
  /// per-flow quantiles clamp exactly where the aggregate ones do).
  void reset(std::uint32_t terminals, std::size_t buckets,
             std::size_t service_levels);

  void record(std::uint32_t src, std::uint32_t dst, unsigned sl,
              double latency);

  /// Request->reply end-to-end latency for one completed exchange
  /// (closed-loop workloads). The service grid allocates on first use,
  /// so open-loop runs pay nothing for the channel's existence.
  void record_service(std::uint32_t client, std::uint32_t server,
                      double latency);

  /// Render the summary (pure; the recorder keeps accumulating).
  [[nodiscard]] FlowSummary summary() const;

 private:
  struct Acc {
    std::uint64_t count = 0;
    double sum = 0.0;
    std::uint32_t overflow = 0;
    std::vector<std::uint32_t> hist;  ///< lazily sized to buckets_
  };

  void add(Acc& acc, double latency);
  [[nodiscard]] FlowStat stat_of(const Acc& acc) const;

  std::uint32_t terminals_ = 0;
  std::size_t buckets_ = 0;
  std::vector<Acc> flows_;     ///< [src * terminals_ + dst]
  std::vector<Acc> sls_;       ///< [service level]
  std::vector<Acc> services_;  ///< [client * terminals_ + server], lazy
};

}  // namespace mineq::obs
