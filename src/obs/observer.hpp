/// \file observer.hpp
/// \brief The per-run observability hub the simulators write into.
///
/// One Observer lives for one simulation run. The hot-path surface is
/// deliberately small: per-worker WorkerLogs absorb order-independent
/// per-stage counters and the worker's trace-event buffer, and the
/// serial-phase owner (worker 0, or the whole run when serial) commits
/// probe windows and flow records. Nothing in here reads back into the
/// simulation: an Observer is write-only from the policies' point of
/// view, which is what makes obs-on runs produce bit-identical
/// simulation results to obs-off runs.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/flow.hpp"
#include "obs/obs.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"

namespace mineq::obs {

/// Per-worker observability sink. The counter vectors are per-stage and
/// cumulative over the run; worker partitions make every write
/// single-writer, and the probe commit sums across workers — addition is
/// order-independent, so the series stays byte-identical at any thread
/// count. Trace events carry their (cycle, phase) sort key instead.
struct WorkerLog {
  std::vector<std::uint64_t> hol;      ///< HOL-blocked head-cycles per stage
  std::vector<std::uint64_t> credit;   ///< credit-stalled cycles per stage
  std::vector<std::uint64_t> reroute;  ///< off-primary-arc steers per stage
  std::vector<std::uint64_t> hops;     ///< flit-cycles of link use per gap
  std::vector<TraceEvent> events;
};

class Observer {
 public:
  /// \param slots_per_stage total buffer capacity of one stage in the
  /// discipline's occupancy unit (packets for store-and-forward FIFOs,
  /// flits for wormhole lanes) — the occupancy normalizer.
  /// \param latency_buckets 1-cycle latency buckets per flow histogram
  /// (pass the SimResult histogram's bucket count).
  Observer(const ObsConfig& config, int stages, std::uint32_t cells,
           std::size_t ports, std::uint32_t terminals, std::uint64_t warmup,
           std::uint64_t measure, std::size_t workers,
           std::size_t latency_buckets, std::size_t service_levels,
           double slots_per_stage);

  [[nodiscard]] bool probes_on() const noexcept { return probes_on_; }
  [[nodiscard]] bool flows_on() const noexcept { return flows_on_; }
  [[nodiscard]] bool trace_on() const noexcept { return trace_on_; }

  /// The deterministic 1-in-N packet pick (obs.hpp:trace_picked), false
  /// when tracing is off.
  [[nodiscard]] bool traced(std::uint32_t src,
                            std::uint64_t inject_cycle) const noexcept {
    return trace_on_ && trace_picked(config_.trace_sample, src, inject_cycle);
  }

  /// Worker \p w's sink (index < the workers count passed at
  /// construction; serial runs use log(0)).
  [[nodiscard]] WorkerLog& log(std::size_t w) noexcept { return logs_[w]; }

  /// True on the measured cycle that closes a probe window (the sample
  /// phase of that cycle must commit_probe()).
  [[nodiscard]] bool want_probe(std::uint64_t cycle) const noexcept {
    return probes_on_ && cycle >= warmup_ &&
           (cycle - warmup_) % config_.probe_stride ==
               config_.probe_stride - 1;
  }

  /// Per-(stage, cell) occupancy scratch, zeroed; the committing policy
  /// fills slot [s * cells + x] with the buffered payload of cell x of
  /// stage s, then calls commit_probe. Worker-0 / serial only.
  [[nodiscard]] std::vector<std::uint32_t>& occupancy_scratch() noexcept {
    return occ_scratch_;
  }

  /// Close the probe window ending at \p cycle: fold the scratch
  /// occupancy and the cross-worker counter deltas into the next ring
  /// slot. Worker-0 / serial only.
  void commit_probe(std::uint64_t cycle);

  /// Record one delivered measured packet. Worker-0 / serial only (the
  /// eject replay path).
  void record_flow(std::uint32_t src, std::uint32_t dst, unsigned sl,
                   double latency) {
    recorder_.record(src, dst, sl, latency);
  }

  /// Finalize the probe series (heatmap means) and surrender it.
  [[nodiscard]] ProbeSeries take_probes();
  [[nodiscard]] FlowSummary flow_summary() const {
    return recorder_.summary();
  }
  /// The recorder itself, for the workload layer's request->reply
  /// service channel; null when flow stats are off.
  [[nodiscard]] FlowRecorder* flow_recorder() noexcept {
    return flows_on_ ? &recorder_ : nullptr;
  }
  /// Concatenate the per-worker trace buffers in worker order and
  /// stable-sort by (cycle, phase) — the serial emission order.
  [[nodiscard]] std::vector<TraceEvent> take_trace();

 private:
  ObsConfig config_;
  bool probes_on_ = false;
  bool flows_on_ = false;
  bool trace_on_ = false;
  int stages_ = 0;
  std::size_t ports_ = 0;
  std::uint64_t warmup_ = 0;
  double slots_per_stage_ = 1.0;

  std::vector<WorkerLog> logs_;
  ProbeSeries probes_;
  /// Cross-worker cumulative counters at the previous window close.
  std::vector<std::uint64_t> last_hol_;
  std::vector<std::uint64_t> last_credit_;
  std::vector<std::uint64_t> last_reroute_;
  std::vector<std::uint64_t> last_hops_;
  std::vector<std::uint32_t> occ_scratch_;
  std::vector<double> heat_sum_;  ///< occupancy-fraction sums per (s, x)

  FlowRecorder recorder_;
};

}  // namespace mineq::obs
