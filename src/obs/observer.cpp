#include "obs/observer.hpp"

#include <algorithm>

namespace mineq::obs {

Observer::Observer(const ObsConfig& config, int stages, std::uint32_t cells,
                   std::size_t ports, std::uint32_t terminals,
                   std::uint64_t warmup, std::uint64_t measure,
                   std::size_t workers, std::size_t latency_buckets,
                   std::size_t service_levels, double slots_per_stage)
    : config_(config),
      probes_on_(config.probe_stride > 0),
      flows_on_(config.flow_stats),
      trace_on_(config.trace_sample > 0),
      stages_(stages),
      ports_(ports),
      warmup_(warmup),
      slots_per_stage_(slots_per_stage) {
  logs_.resize(std::max<std::size_t>(workers, 1));
  const auto stage_count = static_cast<std::size_t>(stages);
  for (WorkerLog& log : logs_) {
    log.hol.assign(stage_count, 0);
    log.credit.assign(stage_count, 0);
    log.reroute.assign(stage_count, 0);
    log.hops.assign(stage_count, 0);
  }
  if (probes_on_) {
    probes_.stride = config.probe_stride;
    probes_.stages = stages;
    probes_.cells = cells;
    // One ring slot per complete probe window of the measured phase;
    // windows shorter than the stride never sample, so this capacity is
    // exact (the ring-wrap path is a guard, not the expected case).
    probes_.capacity =
        std::max<std::size_t>(1, measure / config.probe_stride);
    const std::size_t flat = probes_.capacity * stage_count;
    probes_.cycle.assign(probes_.capacity, 0);
    probes_.occupancy.assign(flat, 0.0);
    probes_.link_utilization.assign(flat, 0.0);
    probes_.hol_stalls.assign(flat, 0);
    probes_.credit_stalls.assign(flat, 0);
    probes_.reroutes.assign(flat, 0);
    probes_.heatmap.assign(stage_count * cells, 0.0);
    last_hol_.assign(stage_count, 0);
    last_credit_.assign(stage_count, 0);
    last_reroute_.assign(stage_count, 0);
    last_hops_.assign(stage_count, 0);
    occ_scratch_.assign(stage_count * cells, 0);
    heat_sum_.assign(stage_count * cells, 0.0);
  }
  if (flows_on_) {
    recorder_.reset(terminals, latency_buckets, service_levels);
  }
}

void Observer::commit_probe(std::uint64_t cycle) {
  const auto stage_count = static_cast<std::size_t>(stages_);
  const std::size_t slot = probes_.samples % probes_.capacity;
  probes_.cycle[slot] = cycle;
  const double window = static_cast<double>(config_.probe_stride);
  const double link_cycles = static_cast<double>(ports_) * window;
  const double slots_per_cell =
      slots_per_stage_ / static_cast<double>(probes_.cells);
  for (std::size_t s = 0; s < stage_count; ++s) {
    std::uint64_t hol = 0;
    std::uint64_t credit = 0;
    std::uint64_t reroute = 0;
    std::uint64_t hops = 0;
    for (const WorkerLog& log : logs_) {
      hol += log.hol[s];
      credit += log.credit[s];
      reroute += log.reroute[s];
      hops += log.hops[s];
    }
    std::uint64_t occupied = 0;
    for (std::uint32_t x = 0; x < probes_.cells; ++x) {
      const std::uint32_t cell = occ_scratch_[s * probes_.cells + x];
      occupied += cell;
      heat_sum_[s * probes_.cells + x] +=
          static_cast<double>(cell) / slots_per_cell;
    }
    const std::size_t at = slot * stage_count + s;
    probes_.occupancy[at] =
        static_cast<double>(occupied) / slots_per_stage_;
    probes_.link_utilization[at] =
        static_cast<double>(hops - last_hops_[s]) / link_cycles;
    probes_.hol_stalls[at] = hol - last_hol_[s];
    probes_.credit_stalls[at] = credit - last_credit_[s];
    probes_.reroutes[at] = reroute - last_reroute_[s];
    last_hol_[s] = hol;
    last_credit_[s] = credit;
    last_reroute_[s] = reroute;
    last_hops_[s] = hops;
  }
  ++probes_.samples;
  std::fill(occ_scratch_.begin(), occ_scratch_.end(), 0U);
}

ProbeSeries Observer::take_probes() {
  if (probes_on_ && probes_.samples > 0) {
    const double n = static_cast<double>(probes_.samples);
    for (std::size_t i = 0; i < heat_sum_.size(); ++i) {
      probes_.heatmap[i] = heat_sum_[i] / n;
    }
  }
  return std::move(probes_);
}

std::vector<TraceEvent> Observer::take_trace() {
  std::vector<TraceEvent> events;
  std::size_t total = 0;
  for (const WorkerLog& log : logs_) total += log.events.size();
  events.reserve(total);
  for (WorkerLog& log : logs_) {
    events.insert(events.end(), log.events.begin(), log.events.end());
    log.events.clear();
  }
  sort_trace(events);
  return events;
}

}  // namespace mineq::obs
