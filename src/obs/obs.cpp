#include "obs/obs.hpp"

#include <stdexcept>
#include <string>

namespace mineq::obs {

const char* stall_cause_name(StallCause cause) noexcept {
  switch (cause) {
    case StallCause::kLostArbitration:
      return "lost_arb";
    case StallCause::kDownstreamFull:
      return "downstream_full";
    case StallCause::kNoFreeLane:
      return "no_free_lane";
    case StallCause::kZeroCredits:
      return "zero_credits";
    case StallCause::kMaskedArc:
      return "masked_arc";
  }
  return "unknown";
}

void ObsConfig::validate(std::uint64_t terminals) const {
  if (flow_stats && terminals > kMaxFlowTerminals) {
    throw std::invalid_argument(
        "ObsConfig: flow_stats keeps a terminals^2 flow table and supports "
        "at most " +
        std::to_string(kMaxFlowTerminals) + " terminals, got " +
        std::to_string(terminals));
  }
}

}  // namespace mineq::obs
