/// \file trace.hpp
/// \brief Packet event tracing serialized as Chrome trace-event JSON
/// (loadable in Perfetto and chrome://tracing).
///
/// Each traced packet is one track (tid derived from its unique
/// (source, inject-cycle) identity): a "pkt" duration slice spans inject
/// to final-tail eject, nested "stage N" slices follow the head through
/// the fabric, and instant events mark stalls (with their StallCause),
/// reroutes and drops. Events are appended to per-worker buffers tagged
/// with their (cycle, intra-cycle phase); one stable sort on that key
/// reproduces the serial emission order exactly, because within a
/// (cycle, phase) pair the per-worker buffers concatenate in ascending
/// cell order — the megafabric replay invariant.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/obs.hpp"

namespace mineq::obs {

enum class TraceEventKind : std::uint8_t {
  kPacketBegin = 0,  ///< "B" slice open: packet injected
  kPacketEnd = 1,    ///< "E" slice close: final tail ejected (or dropped)
  kStageBegin = 2,   ///< "B" nested slice: head entered a stage buffer
  kStageEnd = 3,     ///< "E" nested slice: head left the stage
  kStall = 4,        ///< instant: head HOL-blocked, cause attached
  kReroute = 5,      ///< instant: steered off the primary arc
  kDrop = 6,         ///< instant: discarded at a dead switch / masked arc
};

/// One trace event. 32 bytes; buffers are append-only per worker.
struct TraceEvent {
  std::uint64_t cycle = 0;         ///< emission cycle (trace timestamp)
  std::uint64_t inject_cycle = 0;  ///< packet identity, with src
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  TraceEventKind kind = TraceEventKind::kPacketBegin;
  std::uint8_t stage = 0;  ///< stage of stage/stall/reroute/drop events
  std::uint8_t cause = 0;  ///< StallCause payload of kStall events
  /// Intra-cycle phase ordinal, the secondary sort key that makes the
  /// sharded emission order equal the serial one. The policies number
  /// the serial sub-phases of one cycle in execution order: eject moves
  /// = 0, the eject HOL scan = 1 + plane (one ordinal per plane on
  /// multipath fabrics), then per advance stage s (descending) a
  /// dead-switch-drain / moves / HOL-scan triple, and injection last.
  std::uint8_t phase = 0;
};

/// Stable-sort \p events by (cycle, phase): after concatenating the
/// per-worker buffers in worker order this reproduces the serial
/// emission order byte for byte.
void sort_trace(std::vector<TraceEvent>& events);

/// Serialize one run's (sorted) events as a Chrome trace-event JSON
/// document. \p pid labels the process track (one per run / sweep
/// point); \p process_name is attached as process metadata.
[[nodiscard]] std::string trace_json(const std::vector<TraceEvent>& events,
                                     std::uint32_t pid,
                                     std::string_view process_name);

/// Serialize several runs (e.g. the traced points of a sweep) into one
/// document, one process track per (name, events) pair, pid = index.
[[nodiscard]] std::string trace_json_multi(
    const std::vector<std::pair<std::string, const std::vector<TraceEvent>*>>&
        processes);

}  // namespace mineq::obs
