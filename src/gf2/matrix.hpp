/// \file matrix.hpp
/// \brief Dense matrices over GF(2), rows packed into 64-bit words.
///
/// The structural analysis of independent connections reduces to GF(2)
/// linear algebra: an independent connection is exactly f = L(x) xor c_f,
/// g = L(x) xor c_g for a single linear map L (see min/independence.hpp),
/// and the explicit-isomorphism synthesizer (min/affine_iso.hpp) solves
/// systems whose unknowns are matrix entries. Dimensions are bounded by
/// util::kMaxBits, so one word per row suffices.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gf2/bitvec.hpp"
#include "util/rng.hpp"

namespace mineq::gf2 {

/// A rows x cols matrix over GF(2). Row i is stored LSB-first in a word:
/// entry (i, j) is bit j of row word i. Vectors multiply on the right:
/// (M * x)_i = <row_i, x>.
class Matrix {
 public:
  /// The 0 x 0 matrix.
  Matrix() = default;

  /// Zero matrix of the given shape.
  /// \throws std::invalid_argument if a dimension is negative or > kMaxBits.
  Matrix(int rows, int cols);

  /// Build from explicit row words; \p cols bounds the meaningful bits.
  static Matrix from_rows(std::vector<std::uint64_t> rows, int cols);

  /// Build from columns: column j of the result is \p cols_in[j].
  static Matrix from_cols(const std::vector<std::uint64_t>& cols_in, int rows);

  /// Identity of size n.
  [[nodiscard]] static Matrix identity(int n);

  /// The matrix of the linear map x -> permuted bits, out bit i = in bit
  /// theta_of[i]. Each theta_of[i] must lie in [0, cols).
  [[nodiscard]] static Matrix bit_selector(const std::vector<int>& theta_of,
                                           int cols);

  /// Uniformly random matrix (each entry an independent fair bit).
  [[nodiscard]] static Matrix random(int rows, int cols, util::SplitMix64& rng);

  /// Uniformly random invertible matrix (rejection sampling; the density of
  /// GL(n,2) in all matrices is > 0.288, so this terminates quickly).
  [[nodiscard]] static Matrix random_invertible(int n, util::SplitMix64& rng);

  [[nodiscard]] int rows() const noexcept { return rows_; }
  [[nodiscard]] int cols() const noexcept { return cols_; }

  /// Entry access.
  [[nodiscard]] unsigned at(int row, int col) const;
  void set(int row, int col, unsigned value);

  /// Raw row word (bits above cols() are zero).
  [[nodiscard]] std::uint64_t row(int i) const;
  void set_row(int i, std::uint64_t bits);

  /// Matrix-vector product over GF(2); \p x uses the low cols() bits.
  [[nodiscard]] std::uint64_t apply(std::uint64_t x) const;

  /// Matrix-vector product with width checking.
  [[nodiscard]] BitVec apply(const BitVec& x) const;

  /// Matrix product this * other (requires cols() == other.rows()).
  [[nodiscard]] Matrix operator*(const Matrix& other) const;

  /// Entry-wise sum (GF(2): xor).
  [[nodiscard]] Matrix operator+(const Matrix& other) const;

  [[nodiscard]] Matrix transposed() const;

  /// Rank via Gaussian elimination (does not modify this).
  [[nodiscard]] int rank() const;

  [[nodiscard]] bool is_identity() const;
  [[nodiscard]] bool is_square() const noexcept { return rows_ == cols_; }
  [[nodiscard]] bool is_invertible() const;

  /// Inverse, if square and invertible.
  [[nodiscard]] std::optional<Matrix> inverse() const;

  /// One solution x of (this) * x = b, if any exists.
  [[nodiscard]] std::optional<std::uint64_t> solve(std::uint64_t b) const;

  /// Basis of the kernel {x : Mx = 0}, as raw words of width cols().
  [[nodiscard]] std::vector<std::uint64_t> kernel_basis() const;

  /// Basis of the image {Mx}, as raw words of width rows().
  [[nodiscard]] std::vector<std::uint64_t> image_basis() const;

  friend bool operator==(const Matrix&, const Matrix&) = default;

  /// Multi-line rendering, one row per line, MSB-first within each row.
  [[nodiscard]] std::string str() const;

 private:
  void check_entry(int row, int col) const;

  int rows_ = 0;
  int cols_ = 0;
  std::vector<std::uint64_t> data_;
};

}  // namespace mineq::gf2
