/// \file subspace.hpp
/// \brief Linear subspaces and cosets (translated sets) of Z_2^w.
///
/// The paper's Lemma 2 argues with "translated sets" — cosets v xor A of a
/// set A — and Proposition 1 constructs a basis (alpha_1, ..., alpha_{n-1})
/// adapted to the kernel of a connection. Subspace maintains a reduced
/// GF(2) basis supporting exactly those operations; Coset adds the
/// translation part.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "gf2/matrix.hpp"

namespace mineq::gf2 {

/// A linear subspace of Z_2^width, kept as a reduced row-echelon basis
/// (each basis vector has a distinct leading bit, and that bit is clear in
/// every other basis vector), so membership tests are O(dim) word ops.
class Subspace {
 public:
  /// The zero subspace of Z_2^width.
  explicit Subspace(int width);

  /// Span of the given vectors.
  [[nodiscard]] static Subspace span(const std::vector<std::uint64_t>& vectors,
                                     int width);

  /// The full space Z_2^width.
  [[nodiscard]] static Subspace full(int width);

  /// Ambient dimension w.
  [[nodiscard]] int width() const noexcept { return width_; }

  /// Dimension of the subspace.
  [[nodiscard]] int dim() const noexcept {
    return static_cast<int>(basis_.size());
  }

  /// Number of elements (2^dim).
  [[nodiscard]] std::uint64_t size() const noexcept {
    return std::uint64_t{1} << dim();
  }

  /// Add \p v to the spanning set. \returns true iff the dimension grew.
  bool insert(std::uint64_t v);

  /// \returns true iff \p v lies in the subspace.
  [[nodiscard]] bool contains(std::uint64_t v) const;

  /// Reduce \p v modulo the subspace (canonical coset representative).
  [[nodiscard]] std::uint64_t reduce(std::uint64_t v) const;

  /// The reduced basis, ordered by decreasing leading bit.
  [[nodiscard]] const std::vector<std::uint64_t>& basis() const noexcept {
    return basis_;
  }

  /// Enumerate all 2^dim elements (intended for small subspaces).
  [[nodiscard]] std::vector<std::uint64_t> elements() const;

  /// Extend the basis of this subspace to a basis of the full space;
  /// returns only the added vectors (a complement basis).
  [[nodiscard]] std::vector<std::uint64_t> complement_basis() const;

  /// Two subspaces are equal iff they have identical reduced bases.
  friend bool operator==(const Subspace&, const Subspace&) = default;

 private:
  int width_;
  std::vector<std::uint64_t> basis_;
};

/// A coset v xor S — the paper's "v-translated set" of a subspace S.
class Coset {
 public:
  Coset(std::uint64_t representative, Subspace subspace);

  [[nodiscard]] const Subspace& subspace() const noexcept { return subspace_; }

  /// Canonical representative (reduced modulo the subspace).
  [[nodiscard]] std::uint64_t representative() const noexcept { return rep_; }

  [[nodiscard]] bool contains(std::uint64_t v) const;

  /// All elements (intended for small cosets).
  [[nodiscard]] std::vector<std::uint64_t> elements() const;

  /// Cosets are equal iff same subspace and same canonical representative.
  friend bool operator==(const Coset&, const Coset&) = default;

 private:
  std::uint64_t rep_;
  Subspace subspace_;
};

/// \returns true iff \p b is a translated set of \p a, i.e. b = t xor a for
/// some t; if so and \p translation is non-null, stores one valid t.
/// Both sets are treated as unordered; duplicates are ignored.
[[nodiscard]] bool is_translated_set(const std::vector<std::uint64_t>& a,
                                     const std::vector<std::uint64_t>& b,
                                     std::uint64_t* translation = nullptr);

}  // namespace mineq::gf2
