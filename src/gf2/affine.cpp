#include "gf2/affine.hpp"

#include <stdexcept>

#include "util/bitops.hpp"
#include "util/format.hpp"

namespace mineq::gf2 {

AffineMap::AffineMap(Matrix linear, std::uint64_t constant)
    : linear_(std::move(linear)), constant_(constant) {
  if (linear_.rows() < 64 && (constant >> linear_.rows()) != 0) {
    throw std::invalid_argument("AffineMap: constant wider than codomain");
  }
}

AffineMap AffineMap::identity(int width) {
  return AffineMap(Matrix::identity(width), 0);
}

AffineMap AffineMap::translation(std::uint64_t c, int width) {
  return AffineMap(Matrix::identity(width), c);
}

AffineMap AffineMap::random_bijection(int width, util::SplitMix64& rng) {
  const Matrix m = Matrix::random_invertible(width, rng);
  const std::uint64_t mask = (width >= 64)
                                 ? ~std::uint64_t{0}
                                 : ((std::uint64_t{1} << width) - 1);
  return AffineMap(m, rng.next() & mask);
}

BitVec AffineMap::apply(const BitVec& x) const {
  if (x.width() != in_width()) {
    throw std::invalid_argument("AffineMap::apply: width mismatch");
  }
  return BitVec(apply(x.bits()), out_width());
}

AffineMap AffineMap::after(const AffineMap& other) const {
  if (in_width() != other.out_width()) {
    throw std::invalid_argument("AffineMap::after: width mismatch");
  }
  // this(other(x)) = M (M' x xor c') xor c = (M M') x xor (M c' xor c).
  return AffineMap(linear_ * other.linear_,
                   linear_.apply(other.constant_) ^ constant_);
}

std::optional<AffineMap> AffineMap::inverse() const {
  const auto inv = linear_.inverse();
  if (!inv.has_value()) return std::nullopt;
  // y = Mx xor c  =>  x = M^-1 y xor M^-1 c.
  return AffineMap(*inv, inv->apply(constant_));
}

std::vector<std::uint32_t> AffineMap::to_table() const {
  if (in_width() > util::kMaxBits) {
    throw std::invalid_argument("AffineMap::to_table: domain too large");
  }
  const std::size_t size = std::size_t{1} << in_width();
  std::vector<std::uint32_t> table(size);
  // Incremental evaluation: apply(x) differs from apply(x ^ e_b) by column b.
  std::vector<std::uint32_t> column(static_cast<std::size_t>(in_width()));
  for (int b = 0; b < in_width(); ++b) {
    column[static_cast<std::size_t>(b)] =
        static_cast<std::uint32_t>(linear_.apply(std::uint64_t{1} << b));
  }
  table[0] = static_cast<std::uint32_t>(constant_);
  for (std::size_t x = 1; x < size; ++x) {
    const int b = util::lowest_set_bit(x);
    table[x] = table[x ^ (std::size_t{1} << b)] ^
               column[static_cast<std::size_t>(b)];
  }
  return table;
}

std::string AffineMap::str() const {
  std::string out = "x -> Mx ^ ";
  out += util::bit_string(constant_, out_width());
  out += "\nM =\n";
  out += linear_.str();
  return out;
}

std::optional<AffineMap> fit_affine(const std::vector<std::uint32_t>& table,
                                    int in_width, int out_width) {
  if (in_width < 0 || in_width > util::kMaxBits || out_width < 0 ||
      out_width > util::kMaxBits) {
    throw std::invalid_argument("fit_affine: width out of range");
  }
  const std::size_t size = std::size_t{1} << in_width;
  if (table.size() != size) {
    throw std::invalid_argument("fit_affine: table size != 2^in_width");
  }
  const std::uint32_t out_mask =
      static_cast<std::uint32_t>(util::low_mask(out_width));

  const std::uint32_t c = table[0];
  if ((c & ~out_mask) != 0) return std::nullopt;

  // Candidate columns: M e_b = table[e_b] xor c.
  std::vector<std::uint64_t> columns(static_cast<std::size_t>(in_width));
  for (int b = 0; b < in_width; ++b) {
    const std::uint32_t col = table[std::size_t{1} << b] ^ c;
    if ((col & ~out_mask) != 0) return std::nullopt;
    columns[static_cast<std::size_t>(b)] = col;
  }

  // Verify the whole table against the xor recurrence.
  for (std::size_t x = 1; x < size; ++x) {
    if ((table[x] & ~out_mask) != 0) return std::nullopt;
    const int b = util::lowest_set_bit(x);
    const std::uint32_t expected =
        table[x ^ (std::size_t{1} << b)] ^
        static_cast<std::uint32_t>(columns[static_cast<std::size_t>(b)]);
    if (table[x] != expected) return std::nullopt;
  }

  return AffineMap(Matrix::from_cols(columns, out_width), c);
}

bool is_affine(const std::vector<std::uint32_t>& table, int in_width,
               int out_width) {
  return fit_affine(table, in_width, out_width).has_value();
}

}  // namespace mineq::gf2
