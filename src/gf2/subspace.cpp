#include "gf2/subspace.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "util/bitops.hpp"

namespace mineq::gf2 {

Subspace::Subspace(int width) : width_(width) {
  if (width < 0 || width > util::kMaxBits * 2) {
    throw std::invalid_argument("Subspace: width out of range");
  }
}

Subspace Subspace::span(const std::vector<std::uint64_t>& vectors, int width) {
  Subspace s(width);
  for (std::uint64_t v : vectors) s.insert(v);
  return s;
}

Subspace Subspace::full(int width) {
  Subspace s(width);
  for (int i = 0; i < width; ++i) s.insert(std::uint64_t{1} << i);
  return s;
}

bool Subspace::insert(std::uint64_t v) {
  if (width_ < 64 && (v >> width_) != 0) {
    throw std::invalid_argument("Subspace::insert: vector wider than space");
  }
  v = reduce(v);
  if (v == 0) return false;
  const int lead = util::highest_set_bit(v);
  // Keep the reduced-echelon invariant: clear this leading bit from every
  // existing basis vector, then insert in decreasing-leading-bit order.
  for (auto& b : basis_) {
    if (util::get_bit(b, lead) != 0) b ^= v;
  }
  const auto pos = std::find_if(basis_.begin(), basis_.end(),
                                [lead](std::uint64_t b) {
                                  return util::highest_set_bit(b) < lead;
                                });
  basis_.insert(pos, v);
  return true;
}

bool Subspace::contains(std::uint64_t v) const { return reduce(v) == 0; }

std::uint64_t Subspace::reduce(std::uint64_t v) const {
  for (std::uint64_t b : basis_) {
    const int lead = util::highest_set_bit(b);
    if (util::get_bit(v, lead) != 0) v ^= b;
  }
  return v;
}

std::vector<std::uint64_t> Subspace::elements() const {
  if (dim() > 24) {
    throw std::invalid_argument("Subspace::elements: subspace too large");
  }
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(size()));
  out.push_back(0);
  for (std::uint64_t b : basis_) {
    const std::size_t count = out.size();
    for (std::size_t i = 0; i < count; ++i) out.push_back(out[i] ^ b);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint64_t> Subspace::complement_basis() const {
  Subspace grown = *this;
  std::vector<std::uint64_t> added;
  for (int i = 0; i < width_; ++i) {
    const std::uint64_t e = std::uint64_t{1} << i;
    if (grown.insert(e)) added.push_back(e);
  }
  return added;
}

Coset::Coset(std::uint64_t representative, Subspace subspace)
    : rep_(subspace.reduce(representative)), subspace_(std::move(subspace)) {}

bool Coset::contains(std::uint64_t v) const {
  return subspace_.reduce(v) == rep_;
}

std::vector<std::uint64_t> Coset::elements() const {
  std::vector<std::uint64_t> out = subspace_.elements();
  for (auto& v : out) v ^= rep_;
  std::sort(out.begin(), out.end());
  return out;
}

bool is_translated_set(const std::vector<std::uint64_t>& a,
                       const std::vector<std::uint64_t>& b,
                       std::uint64_t* translation) {
  const std::unordered_set<std::uint64_t> set_a(a.begin(), a.end());
  const std::unordered_set<std::uint64_t> set_b(b.begin(), b.end());
  if (set_a.size() != set_b.size()) return false;
  if (set_a.empty()) {
    if (translation != nullptr) *translation = 0;
    return true;
  }
  // If b = t xor a then t = (any element of b) xor (any fixed element of a)
  // for the *right* pairing; trying every b-element against one fixed
  // a-element covers all candidates.
  const std::uint64_t a0 = *set_a.begin();
  for (std::uint64_t b0 : set_b) {
    const std::uint64_t t = a0 ^ b0;
    bool ok = true;
    for (std::uint64_t v : set_a) {
      if (set_b.find(v ^ t) == set_b.end()) {
        ok = false;
        break;
      }
    }
    if (ok) {
      if (translation != nullptr) *translation = t;
      return true;
    }
  }
  return false;
}

}  // namespace mineq::gf2
