/// \file bitvec.hpp
/// \brief Fixed-width vectors over GF(2) — the node labels of the paper.
///
/// The paper labels the 2^(n-1) cells of each stage with (n-1)-tuples of
/// bits and works in the group (Z_2^(n-1), xor). BitVec is that label type:
/// a width-carrying wrapper over an unsigned integer with checked,
/// width-respecting operations. Hot loops use raw integers; BitVec is the
/// safe API surface and the formatting/parsing point.

#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "util/bitops.hpp"

namespace mineq::gf2 {

/// A vector in Z_2^width, width in [0, util::kMaxBits].
class BitVec {
 public:
  /// The zero vector of dimension 0.
  constexpr BitVec() noexcept : bits_(0), width_(0) {}

  /// Construct from raw bits; bits above \p width must be clear.
  /// \throws std::invalid_argument on width out of range or stray bits.
  constexpr BitVec(std::uint64_t bits, int width) : bits_(bits), width_(width) {
    if (width < 0 || width > util::kMaxBits) {
      throw std::invalid_argument("BitVec: width out of range");
    }
    if ((bits & ~util::low_mask(width)) != 0) {
      throw std::invalid_argument("BitVec: value wider than declared width");
    }
  }

  /// The zero vector of dimension \p width.
  [[nodiscard]] static constexpr BitVec zero(int width) {
    return BitVec(0, width);
  }

  /// The standard basis vector e_pos of dimension \p width.
  [[nodiscard]] static constexpr BitVec unit(int pos, int width) {
    if (pos < 0 || pos >= width) {
      throw std::invalid_argument("BitVec::unit: position out of range");
    }
    return BitVec(std::uint64_t{1} << pos, width);
  }

  [[nodiscard]] constexpr std::uint64_t bits() const noexcept { return bits_; }
  [[nodiscard]] constexpr int width() const noexcept { return width_; }

  /// Bit at position \p pos (0 = least significant = x_1 in the paper's
  /// (x_{n-1},...,x_1) notation for cell labels).
  [[nodiscard]] constexpr unsigned bit(int pos) const {
    if (pos < 0 || pos >= width_) {
      throw std::invalid_argument("BitVec::bit: position out of range");
    }
    return util::get_bit(bits_, pos);
  }

  /// \returns a copy with bit \p pos set to \p value.
  [[nodiscard]] constexpr BitVec with_bit(int pos, unsigned value) const {
    if (pos < 0 || pos >= width_) {
      throw std::invalid_argument("BitVec::with_bit: position out of range");
    }
    return BitVec(util::set_bit(bits_, pos, value), width_);
  }

  /// Bitwise addition in Z_2^width (exclusive or).
  /// \throws std::invalid_argument on width mismatch.
  [[nodiscard]] constexpr BitVec operator^(const BitVec& other) const {
    if (width_ != other.width_) {
      throw std::invalid_argument("BitVec::operator^: width mismatch");
    }
    return BitVec(bits_ ^ other.bits_, width_);
  }

  constexpr BitVec& operator^=(const BitVec& other) {
    *this = *this ^ other;
    return *this;
  }

  /// Number of set bits.
  [[nodiscard]] constexpr int weight() const noexcept {
    return util::popcount(bits_);
  }

  /// True iff this is the zero vector.
  [[nodiscard]] constexpr bool is_zero() const noexcept { return bits_ == 0; }

  /// Dot product over GF(2): parity of the AND.
  [[nodiscard]] constexpr unsigned dot(const BitVec& other) const {
    if (width_ != other.width_) {
      throw std::invalid_argument("BitVec::dot: width mismatch");
    }
    return util::parity(bits_ & other.bits_);
  }

  /// Concatenate: the result has this vector in the high bits and \p low in
  /// the low bits — used to build link labels (cell, port) from cell labels.
  [[nodiscard]] constexpr BitVec concat(const BitVec& low) const {
    return BitVec((bits_ << low.width_) | low.bits_, width_ + low.width_);
  }

  /// Drop the lowest \p count bits (used to read a cell label off a link
  /// label, as in Section 4 of the paper).
  [[nodiscard]] constexpr BitVec drop_low(int count) const {
    if (count < 0 || count > width_) {
      throw std::invalid_argument("BitVec::drop_low: count out of range");
    }
    return BitVec(bits_ >> count, width_ - count);
  }

  friend constexpr bool operator==(const BitVec&, const BitVec&) = default;
  friend constexpr auto operator<=>(const BitVec&, const BitVec&) = default;

  /// Render as the paper's tuple notation, e.g. "(0,1,1)".
  [[nodiscard]] std::string to_tuple() const;

  /// Render as a plain MSB-first binary string, e.g. "011".
  [[nodiscard]] std::string to_binary() const;

  /// Parse either tuple "(0,1,1)" or binary "011" notation.
  /// \throws std::invalid_argument on malformed input.
  [[nodiscard]] static BitVec parse(std::string_view text);

 private:
  std::uint64_t bits_;
  int width_;
};

}  // namespace mineq::gf2

template <>
struct std::hash<mineq::gf2::BitVec> {
  std::size_t operator()(const mineq::gf2::BitVec& v) const noexcept {
    return std::hash<std::uint64_t>{}(v.bits() * 31 +
                                      static_cast<std::uint64_t>(v.width()));
  }
};
