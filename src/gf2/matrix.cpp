#include "gf2/matrix.hpp"

#include <stdexcept>
#include <utility>

#include "util/bitops.hpp"
#include "util/format.hpp"

namespace mineq::gf2 {

namespace {

/// Gaussian elimination to row echelon form, in place.
/// \returns pivot column per reduced row, in order.
std::vector<int> echelonize(std::vector<std::uint64_t>& rows, int cols) {
  std::vector<int> pivots;
  std::size_t next_row = 0;
  for (int col = cols - 1; col >= 0 && next_row < rows.size(); --col) {
    std::size_t pivot = next_row;
    while (pivot < rows.size() && util::get_bit(rows[pivot], col) == 0) {
      ++pivot;
    }
    if (pivot == rows.size()) continue;
    std::swap(rows[next_row], rows[pivot]);
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (r != next_row && util::get_bit(rows[r], col) != 0) {
        rows[r] ^= rows[next_row];
      }
    }
    pivots.push_back(col);
    ++next_row;
  }
  return pivots;
}

}  // namespace

Matrix::Matrix(int rows, int cols) : rows_(rows), cols_(cols) {
  if (rows < 0 || cols < 0 || rows > util::kMaxBits * 2 ||
      cols > util::kMaxBits * 2) {
    throw std::invalid_argument("Matrix: dimension out of range");
  }
  data_.assign(static_cast<std::size_t>(rows), 0);
}

Matrix Matrix::from_rows(std::vector<std::uint64_t> rows, int cols) {
  Matrix m(static_cast<int>(rows.size()), cols);
  const std::uint64_t mask = (cols >= 64) ? ~std::uint64_t{0}
                                          : ((std::uint64_t{1} << cols) - 1);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if ((rows[i] & ~mask) != 0) {
      throw std::invalid_argument("Matrix::from_rows: row wider than cols");
    }
    m.data_[i] = rows[i];
  }
  return m;
}

Matrix Matrix::from_cols(const std::vector<std::uint64_t>& cols_in, int rows) {
  Matrix m(rows, static_cast<int>(cols_in.size()));
  for (std::size_t j = 0; j < cols_in.size(); ++j) {
    for (int i = 0; i < rows; ++i) {
      if (util::get_bit(cols_in[j], i) != 0) {
        m.set(i, static_cast<int>(j), 1);
      }
    }
  }
  return m;
}

Matrix Matrix::identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m.data_[static_cast<std::size_t>(i)] =
      std::uint64_t{1} << i;
  return m;
}

Matrix Matrix::bit_selector(const std::vector<int>& theta_of, int cols) {
  Matrix m(static_cast<int>(theta_of.size()), cols);
  for (std::size_t i = 0; i < theta_of.size(); ++i) {
    if (theta_of[i] < 0 || theta_of[i] >= cols) {
      throw std::invalid_argument("Matrix::bit_selector: index out of range");
    }
    m.data_[i] = std::uint64_t{1} << theta_of[i];
  }
  return m;
}

Matrix Matrix::random(int rows, int cols, util::SplitMix64& rng) {
  Matrix m(rows, cols);
  const std::uint64_t mask = (cols >= 64) ? ~std::uint64_t{0}
                                          : ((std::uint64_t{1} << cols) - 1);
  for (auto& row : m.data_) row = rng.next() & mask;
  return m;
}

Matrix Matrix::random_invertible(int n, util::SplitMix64& rng) {
  for (;;) {
    Matrix m = random(n, n, rng);
    if (m.is_invertible()) return m;
  }
}

void Matrix::check_entry(int row, int col) const {
  if (row < 0 || row >= rows_ || col < 0 || col >= cols_) {
    throw std::invalid_argument("Matrix: entry out of range");
  }
}

unsigned Matrix::at(int row, int col) const {
  check_entry(row, col);
  return util::get_bit(data_[static_cast<std::size_t>(row)], col);
}

void Matrix::set(int row, int col, unsigned value) {
  check_entry(row, col);
  data_[static_cast<std::size_t>(row)] =
      util::set_bit(data_[static_cast<std::size_t>(row)], col, value);
}

std::uint64_t Matrix::row(int i) const {
  if (i < 0 || i >= rows_) throw std::invalid_argument("Matrix::row: range");
  return data_[static_cast<std::size_t>(i)];
}

void Matrix::set_row(int i, std::uint64_t bits) {
  if (i < 0 || i >= rows_) {
    throw std::invalid_argument("Matrix::set_row: range");
  }
  const std::uint64_t mask = (cols_ >= 64) ? ~std::uint64_t{0}
                                           : ((std::uint64_t{1} << cols_) - 1);
  if ((bits & ~mask) != 0) {
    throw std::invalid_argument("Matrix::set_row: row wider than cols");
  }
  data_[static_cast<std::size_t>(i)] = bits;
}

std::uint64_t Matrix::apply(std::uint64_t x) const {
  std::uint64_t y = 0;
  for (int i = 0; i < rows_; ++i) {
    y |= static_cast<std::uint64_t>(
             util::parity(data_[static_cast<std::size_t>(i)] & x))
         << i;
  }
  return y;
}

BitVec Matrix::apply(const BitVec& x) const {
  if (x.width() != cols_) {
    throw std::invalid_argument("Matrix::apply: width mismatch");
  }
  return BitVec(apply(x.bits()), rows_);
}

Matrix Matrix::operator*(const Matrix& other) const {
  if (cols_ != other.rows_) {
    throw std::invalid_argument("Matrix::operator*: shape mismatch");
  }
  // (AB) row i = sum over j with A(i,j)=1 of B row j.
  Matrix out(rows_, other.cols_);
  for (int i = 0; i < rows_; ++i) {
    std::uint64_t acc = 0;
    std::uint64_t a = data_[static_cast<std::size_t>(i)];
    while (a != 0) {
      const int j = util::lowest_set_bit(a);
      a &= a - 1;
      acc ^= other.data_[static_cast<std::size_t>(j)];
    }
    out.data_[static_cast<std::size_t>(i)] = acc;
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix::operator+: shape mismatch");
  }
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] ^= other.data_[i];
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (int i = 0; i < rows_; ++i) {
    for (int j = 0; j < cols_; ++j) {
      if (at(i, j) != 0) out.set(j, i, 1);
    }
  }
  return out;
}

int Matrix::rank() const {
  std::vector<std::uint64_t> work = data_;
  return static_cast<int>(echelonize(work, cols_).size());
}

bool Matrix::is_identity() const {
  if (!is_square()) return false;
  for (int i = 0; i < rows_; ++i) {
    if (data_[static_cast<std::size_t>(i)] != (std::uint64_t{1} << i)) {
      return false;
    }
  }
  return true;
}

bool Matrix::is_invertible() const { return is_square() && rank() == rows_; }

std::optional<Matrix> Matrix::inverse() const {
  if (!is_square()) return std::nullopt;
  // Augment each row with the identity in the high bits, eliminate, read off.
  const int n = rows_;
  std::vector<std::uint64_t> work(data_.size());
  for (int i = 0; i < n; ++i) {
    work[static_cast<std::size_t>(i)] =
        data_[static_cast<std::size_t>(i)] |
        (std::uint64_t{1} << (n + i));
  }
  // Eliminate on the low n columns only.
  std::size_t next_row = 0;
  for (int col = n - 1; col >= 0 && next_row < work.size(); --col) {
    std::size_t pivot = next_row;
    while (pivot < work.size() && util::get_bit(work[pivot], col) == 0) {
      ++pivot;
    }
    if (pivot == work.size()) return std::nullopt;  // singular
    std::swap(work[next_row], work[pivot]);
    for (std::size_t r = 0; r < work.size(); ++r) {
      if (r != next_row && util::get_bit(work[r], col) != 0) {
        work[r] ^= work[next_row];
      }
    }
    ++next_row;
  }
  if (next_row != static_cast<std::size_t>(n)) return std::nullopt;
  // After full elimination row k has single low bit at column (n-1-k).
  const std::uint64_t low_mask_n =
      (n >= 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
  Matrix inv(n, n);
  for (std::size_t r = 0; r < work.size(); ++r) {
    const std::uint64_t low = work[r] & low_mask_n;
    const int col = util::lowest_set_bit(low);
    inv.data_[static_cast<std::size_t>(col)] = work[r] >> n;
  }
  return inv;
}

std::optional<std::uint64_t> Matrix::solve(std::uint64_t b) const {
  // Solve M x = b: eliminate rows of [M | b-bit] where the b bit is carried
  // in bit position cols_.
  std::vector<std::uint64_t> work(data_.size());
  for (int i = 0; i < rows_; ++i) {
    work[static_cast<std::size_t>(i)] =
        data_[static_cast<std::size_t>(i)] |
        (static_cast<std::uint64_t>(util::get_bit(b, i)) << cols_);
  }
  std::vector<int> pivots;
  std::size_t next_row = 0;
  for (int col = cols_ - 1; col >= 0 && next_row < work.size(); --col) {
    std::size_t pivot = next_row;
    while (pivot < work.size() && util::get_bit(work[pivot], col) == 0) {
      ++pivot;
    }
    if (pivot == work.size()) continue;
    std::swap(work[next_row], work[pivot]);
    for (std::size_t r = 0; r < work.size(); ++r) {
      if (r != next_row && util::get_bit(work[r], col) != 0) {
        work[r] ^= work[next_row];
      }
    }
    pivots.push_back(col);
    ++next_row;
  }
  // Inconsistent iff some fully-eliminated row still has the b bit set.
  for (std::size_t r = next_row; r < work.size(); ++r) {
    if (work[r] != 0) return std::nullopt;
  }
  std::uint64_t x = 0;
  for (std::size_t r = 0; r < pivots.size(); ++r) {
    if (util::get_bit(work[r], cols_) != 0) {
      x |= std::uint64_t{1} << pivots[r];
    }
  }
  return x;
}

std::vector<std::uint64_t> Matrix::kernel_basis() const {
  // Reduce M; free columns parameterize the kernel.
  std::vector<std::uint64_t> work = data_;
  const std::vector<int> pivots = echelonize(work, cols_);
  std::vector<bool> is_pivot(static_cast<std::size_t>(cols_), false);
  for (int p : pivots) is_pivot[static_cast<std::size_t>(p)] = true;

  std::vector<std::uint64_t> basis;
  for (int free = 0; free < cols_; ++free) {
    if (is_pivot[static_cast<std::size_t>(free)]) continue;
    std::uint64_t v = std::uint64_t{1} << free;
    // Back-substitute: pivot row r forces the pivot variable to match the
    // parity contributed by the free columns.
    for (std::size_t r = 0; r < pivots.size(); ++r) {
      if (util::get_bit(work[r], free) != 0) {
        v |= std::uint64_t{1} << pivots[r];
      }
    }
    basis.push_back(v);
  }
  return basis;
}

std::vector<std::uint64_t> Matrix::image_basis() const {
  // Image is spanned by the columns; echelonize the transpose's rows.
  std::vector<std::uint64_t> cols(static_cast<std::size_t>(cols_), 0);
  for (int i = 0; i < rows_; ++i) {
    for (int j = 0; j < cols_; ++j) {
      if (at(i, j) != 0) {
        cols[static_cast<std::size_t>(j)] |= std::uint64_t{1} << i;
      }
    }
  }
  const std::vector<int> pivots = echelonize(cols, rows_);
  cols.resize(pivots.size());
  return cols;
}

std::string Matrix::str() const {
  std::string out;
  for (int i = 0; i < rows_; ++i) {
    out += util::bit_string(data_[static_cast<std::size_t>(i)], cols_);
    out += '\n';
  }
  return out;
}

}  // namespace mineq::gf2
