#include "gf2/bitvec.hpp"

#include <stdexcept>

#include "util/format.hpp"

namespace mineq::gf2 {

std::string BitVec::to_tuple() const {
  return util::bit_tuple(bits_, width_);
}

std::string BitVec::to_binary() const {
  return util::bit_string(bits_, width_);
}

BitVec BitVec::parse(std::string_view text) {
  if (text.empty()) throw std::invalid_argument("BitVec::parse: empty input");

  std::uint64_t bits = 0;
  int width = 0;
  if (text.front() == '(') {
    if (text.back() != ')') {
      throw std::invalid_argument("BitVec::parse: unbalanced parentheses");
    }
    const std::string_view body = text.substr(1, text.size() - 2);
    bool expect_digit = true;
    for (char ch : body) {
      if (expect_digit) {
        if (ch != '0' && ch != '1') {
          throw std::invalid_argument("BitVec::parse: expected 0 or 1");
        }
        bits = (bits << 1) | static_cast<std::uint64_t>(ch - '0');
        ++width;
        expect_digit = false;
      } else {
        if (ch != ',') {
          throw std::invalid_argument("BitVec::parse: expected comma");
        }
        expect_digit = true;
      }
    }
    if (expect_digit && width > 0) {
      throw std::invalid_argument("BitVec::parse: trailing comma");
    }
  } else {
    for (char ch : text) {
      if (ch != '0' && ch != '1') {
        throw std::invalid_argument("BitVec::parse: expected 0 or 1");
      }
      bits = (bits << 1) | static_cast<std::uint64_t>(ch - '0');
      ++width;
    }
  }
  return BitVec(bits, width);
}

}  // namespace mineq::gf2
