/// \file affine.hpp
/// \brief Affine maps x -> Mx xor c over GF(2), and affine-fitting of tables.
///
/// The structural form of an independent connection is a pair of affine maps
/// sharing one linear part (f = Lx xor c_f, g = Lx xor c_g); the
/// explicit isomorphisms synthesized between baseline-equivalent networks
/// are stage-wise affine bijections. fit_affine() recovers the (M, c)
/// decomposition of a function given as a value table in O(2^w) — this is
/// the engine behind the fast independence test.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gf2/matrix.hpp"

namespace mineq::gf2 {

/// An affine map Z_2^in -> Z_2^out, x -> Mx xor c.
class AffineMap {
 public:
  /// Identity on Z_2^0.
  AffineMap() : linear_(Matrix::identity(0)), constant_(0) {}

  /// \throws std::invalid_argument if \p constant has bits above M's rows.
  AffineMap(Matrix linear, std::uint64_t constant);

  [[nodiscard]] static AffineMap identity(int width);

  /// Pure translation x -> x xor c.
  [[nodiscard]] static AffineMap translation(std::uint64_t c, int width);

  /// Uniformly random affine bijection on Z_2^width.
  [[nodiscard]] static AffineMap random_bijection(int width,
                                                  util::SplitMix64& rng);

  [[nodiscard]] const Matrix& linear() const noexcept { return linear_; }
  [[nodiscard]] std::uint64_t constant() const noexcept { return constant_; }
  [[nodiscard]] int in_width() const noexcept { return linear_.cols(); }
  [[nodiscard]] int out_width() const noexcept { return linear_.rows(); }

  [[nodiscard]] std::uint64_t apply(std::uint64_t x) const {
    return linear_.apply(x) ^ constant_;
  }

  [[nodiscard]] BitVec apply(const BitVec& x) const;

  /// Composition: (this after other)(x) = this(other(x)).
  [[nodiscard]] AffineMap after(const AffineMap& other) const;

  [[nodiscard]] bool is_bijection() const { return linear_.is_invertible(); }

  [[nodiscard]] bool is_linear() const noexcept { return constant_ == 0; }

  /// Inverse map, if bijective.
  [[nodiscard]] std::optional<AffineMap> inverse() const;

  /// Evaluate over the whole domain into a table (size 2^in_width).
  [[nodiscard]] std::vector<std::uint32_t> to_table() const;

  friend bool operator==(const AffineMap&, const AffineMap&) = default;

  [[nodiscard]] std::string str() const;

 private:
  Matrix linear_;
  std::uint64_t constant_;
};

/// Recover (M, c) such that table[x] == Mx xor c for all x, if possible.
/// \p table must have size 2^in_width and entries below 2^out_width.
/// Runs in O(2^in_width) using the xor-difference recurrence
/// D(x) = D(x without lowest bit) xor D(lowest bit of x).
[[nodiscard]] std::optional<AffineMap> fit_affine(
    const std::vector<std::uint32_t>& table, int in_width, int out_width);

/// \returns true iff the table is an affine function of x (cheaper wrapper
/// when the decomposition itself is not needed).
[[nodiscard]] bool is_affine(const std::vector<std::uint32_t>& table,
                             int in_width, int out_width);

}  // namespace mineq::gf2
