#include "multipath/diversity.hpp"

#include <limits>
#include <vector>

namespace mineq::multipath {

namespace {

void saturating_add(std::uint64_t& acc, std::uint64_t value) {
  acc = (acc > std::numeric_limits<std::uint64_t>::max() - value)
            ? std::numeric_limits<std::uint64_t>::max()
            : acc + value;
}

}  // namespace

std::uint64_t min_path_diversity(const min::MultiPathWiring& fabric,
                                 const fault::FaultMask* mask) {
  const min::FlatWiring& w = fabric.wiring();
  const int stages = w.stages();
  const std::uint32_t cells = w.cells_per_stage();
  const auto physical_radix = static_cast<unsigned>(w.radix());
  const auto lr = static_cast<unsigned>(fabric.logical_radix());
  const auto dilation = static_cast<unsigned>(fabric.dilation());
  const std::uint32_t logical_cells = fabric.logical_cells();
  const int planes = fabric.planes();
  const min::DigitSchedule& schedule = fabric.schedule();
  const std::vector<std::uint8_t>& free_stage = fabric.free_stage();

  // Destination-digit scales, mirroring the engine's routing arithmetic.
  std::vector<std::uint32_t> digit_scale(schedule.digit.size(), 1);
  for (std::size_t s = 0; s < schedule.digit.size(); ++s) {
    for (int i = 0; i < schedule.digit[s]; ++i) digit_scale[s] *= lr;
  }

  std::uint64_t overall_min = std::numeric_limits<std::uint64_t>::max();
  std::vector<std::uint64_t> npaths(cells);
  std::vector<std::uint64_t> next(cells);

  // One backward DP per logical destination cell: npaths[x] at stage s
  // is the number of surviving router-usable continuations from physical
  // cell x to the destination.
  for (std::uint32_t dest_cell = 0; dest_cell < logical_cells; ++dest_cell) {
    for (std::uint32_t x = 0; x < cells; ++x) {
      const bool maps_to_dest = (fabric.kind() ==
                                 min::MultiPathKind::kReplicated)
                                    ? (x % logical_cells == dest_cell)
                                    : (x == dest_cell);
      npaths[x] = maps_to_dest ? 1 : 0;
    }
    for (int s = stages - 2; s >= 0; --s) {
      unsigned group_base = 0;
      unsigned group_count = physical_radix;
      if (!free_stage[static_cast<std::size_t>(s)]) {
        const unsigned value =
            (dest_cell / digit_scale[static_cast<std::size_t>(s)]) % lr;
        group_base =
            schedule.port_of_value[static_cast<std::size_t>(s)][value] *
            dilation;
        group_count = dilation;
      }
      for (std::uint32_t x = 0; x < cells; ++x) {
        std::uint64_t total = 0;
        for (unsigned k = 0; k < group_count; ++k) {
          const unsigned port = group_base + k;
          if (mask != nullptr && mask->faulted(s, x, port)) continue;
          saturating_add(total, npaths[w.child(s, x, port)]);
        }
        next[x] = total;
      }
      npaths.swap(next);
    }
    // Every source terminal of a logical source cell sees the same
    // continuation count; replicated fabrics may inject into any plane.
    for (std::uint32_t src_cell = 0; src_cell < logical_cells; ++src_cell) {
      std::uint64_t total = 0;
      for (int q = 0; q < planes; ++q) {
        saturating_add(total,
                       npaths[static_cast<std::uint32_t>(q) * logical_cells +
                              src_cell]);
      }
      if (total < overall_min) overall_min = total;
    }
    if (overall_min == 0) return 0;
  }
  return overall_min;
}

}  // namespace mineq::multipath
