/// \file looping.hpp
/// \brief The looping (Slepian–Duguid) rearrangement algorithm: configure
/// a Benes fabric to realize any terminal permutation conflict-free.
///
/// A radix-r Benes on N = r^n terminals is rearrangeable: for *every*
/// permutation pi of the terminals there is a setting of the free front
/// half (connections 0..n-2) such that all N routes are link-disjoint —
/// the classic blocking-vs-rearrangeable gap the blocking banyans cannot
/// close. The construction recurses: at depth k the routes form an
/// r-regular bipartite multigraph between the front cells (stage k) and
/// the back cells (stage 2n-2-k); a proper r-edge-coloring (König — found
/// with the standard alternating-path method) assigns each route a middle
/// sub-fabric, which becomes its out-port at the free connection k. The
/// forced back half then needs no settings at all: it consumes
/// destination-cell digits MSB first, and the recursion invariant
/// guarantees the forced digits retrace exactly the back cells the
/// coloring chose.
///
/// looping_configure verifies its own output before returning (every
/// route lands on pi(t) and no physical link is used twice), so a
/// returned configuration is correct by construction, not by convention.

#pragma once

#include <cstdint>
#include <vector>

#include "multipath/multipath_wiring.hpp"

namespace mineq::multipath {

/// Switch settings for the free front half of a Benes fabric:
/// settings[s][cell * r + input_slot] is the out-port the packet sitting
/// at (cell, input_slot) of stage s takes, for the free connections
/// s = 0..n-2. At injection (stage 0) the input slot of logical terminal
/// t is t % r, so its first hop is settings[0][t].
struct LoopingSettings {
  std::vector<std::vector<std::uint8_t>> settings;
};

/// Run the looping algorithm: the free-stage settings under which the
/// Benes fabric \p fabric delivers logical terminal t to permutation[t]
/// for every t, all routes link-disjoint. Deterministic.
/// \throws std::invalid_argument if \p fabric is not a Benes, or if
/// \p permutation is not a bijection over its logical terminals.
/// \throws std::logic_error if the self-verification pass fails (a bug,
/// not an input error — rearrangeability guarantees a solution exists).
[[nodiscard]] LoopingSettings looping_configure(
    const min::MultiPathWiring& fabric,
    const std::vector<std::uint32_t>& permutation);

}  // namespace mineq::multipath
