#include "multipath/looping.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

namespace mineq::multipath {

namespace {

constexpr int kNone = -1;

/// Base-r digit \p i of \p value via a precomputed power table.
unsigned digit_of(std::uint32_t value, int i,
                  const std::vector<std::uint32_t>& power, unsigned radix) {
  return (value / power[static_cast<std::size_t>(i)]) % radix;
}

}  // namespace

LoopingSettings looping_configure(
    const min::MultiPathWiring& fabric,
    const std::vector<std::uint32_t>& permutation) {
  if (fabric.kind() != min::MultiPathKind::kBenes) {
    throw std::invalid_argument(
        "looping_configure: the looping algorithm configures Benes fabrics "
        "only, got " +
        min::multipath_kind_name(fabric.kind()));
  }
  const min::FlatWiring& w = fabric.wiring();
  const int n = fabric.logical_stages();
  const int width = n - 1;  // base-r digits in a cell label
  const auto r = static_cast<unsigned>(fabric.logical_radix());
  const std::uint32_t cells = fabric.logical_cells();
  const std::size_t terminals = static_cast<std::size_t>(r) * cells;

  if (permutation.size() != terminals) {
    throw std::invalid_argument(
        "looping_configure: permutation has " +
        std::to_string(permutation.size()) + " entries, fabric has " +
        std::to_string(terminals) + " logical terminals");
  }
  {
    std::vector<std::uint8_t> seen(terminals, 0);
    for (const std::uint32_t image : permutation) {
      if (image >= terminals || seen[image]) {
        throw std::invalid_argument(
            "looping_configure: permutation is not a bijection over [0, " +
            std::to_string(terminals) + ')');
      }
      seen[image] = 1;
    }
  }

  std::vector<std::uint32_t> power(static_cast<std::size_t>(width) + 1);
  power[0] = 1;
  for (int i = 1; i <= width; ++i) {
    power[static_cast<std::size_t>(i)] =
        power[static_cast<std::size_t>(i) - 1] * r;
  }

  LoopingSettings out;
  out.settings.assign(
      static_cast<std::size_t>(n - 1),
      std::vector<std::uint8_t>(static_cast<std::size_t>(cells) * r, 0));

  // The live routes: route t sits at front cell u (stage k, arrived on
  // input slot su) and must leave the back cell v (stage 2n-2-k).
  std::vector<std::uint32_t> ru(terminals), rv(terminals);
  std::vector<std::uint8_t> rslot(terminals);
  for (std::size_t t = 0; t < terminals; ++t) {
    ru[t] = static_cast<std::uint32_t>(t) / r;
    rslot[t] = static_cast<std::uint8_t>(t % r);
    rv[t] = permutation[t] / r;
  }

  // Edge-coloring scratch, reused across depths: at_left[u*r + c] is the
  // route at front cell u currently colored c (kNone if free), and
  // likewise at_right for back cells.
  std::vector<int> color(terminals);
  std::vector<int> at_left(static_cast<std::size_t>(cells) * r);
  std::vector<int> at_right(static_cast<std::size_t>(cells) * r);
  std::vector<int> path;

  for (int k = 0; k + 1 < n; ++k) {
    const int front = k;
    const int back_conn = 2 * n - 3 - k;  // feeds the back cells (stage b)
    const int split_digit = width - k - 1;

    // Proper r-edge-coloring of the route multigraph (left = front
    // cells, right = back cells; both r-regular) by the alternating-path
    // method: pick a color free at each endpoint, and when they
    // disagree, flip the unique a/b-alternating path from the right
    // endpoint so they agree.
    std::fill(color.begin(), color.end(), kNone);
    std::fill(at_left.begin(), at_left.end(), kNone);
    std::fill(at_right.begin(), at_right.end(), kNone);
    for (std::size_t e = 0; e < terminals; ++e) {
      const std::uint32_t u = ru[e];
      const std::uint32_t v = rv[e];
      unsigned a = 0;
      while (at_left[static_cast<std::size_t>(u) * r + a] != kNone) ++a;
      unsigned b = 0;
      while (at_right[static_cast<std::size_t>(v) * r + b] != kNone) ++b;
      if (a != b) {
        // Walk the maximal alternating path from v: follow a, then b,
        // then a, ... Each node has at most one edge per color, so the
        // walk is deterministic and simple; it cannot end at u (König).
        path.clear();
        std::uint32_t node = v;
        bool on_right = true;
        unsigned want = a;
        while (true) {
          const int next =
              (on_right ? at_right : at_left)[static_cast<std::size_t>(node) *
                                                  r +
                                              want];
          if (next == kNone) break;
          path.push_back(next);
          node = on_right ? ru[static_cast<std::size_t>(next)]
                          : rv[static_cast<std::size_t>(next)];
          on_right = !on_right;
          want = (want == a) ? b : a;
        }
        // Two-phase flip (remove all, then reinsert all) so a path
        // edge's new slot is never clobbered by a neighbor still
        // holding its old color.
        for (const int pe : path) {
          const auto pi = static_cast<std::size_t>(pe);
          const auto c_old = static_cast<unsigned>(color[pi]);
          at_left[static_cast<std::size_t>(ru[pi]) * r + c_old] = kNone;
          at_right[static_cast<std::size_t>(rv[pi]) * r + c_old] = kNone;
        }
        for (const int pe : path) {
          const auto pi = static_cast<std::size_t>(pe);
          const unsigned c_new =
              (static_cast<unsigned>(color[pi]) == a) ? b : a;
          color[pi] = static_cast<int>(c_new);
          at_left[static_cast<std::size_t>(ru[pi]) * r + c_new] = pe;
          at_right[static_cast<std::size_t>(rv[pi]) * r + c_new] = pe;
        }
      }
      color[e] = static_cast<int>(a);
      at_left[static_cast<std::size_t>(u) * r + a] = static_cast<int>(e);
      at_right[static_cast<std::size_t>(v) * r + a] = static_cast<int>(e);
    }

    // Emit the free-stage settings and advance every route one hop
    // inward on both sides: the front hop takes the colored port; the
    // back cell retreats to its unique parent in sub-fabric `c` (the
    // parent whose label has digit `split_digit` equal to c — the
    // connections strictly inside the sub-fabric never touch digits
    // this high, so membership is a digit test, no propagation needed).
    for (std::size_t e = 0; e < terminals; ++e) {
      const auto c = static_cast<unsigned>(color[e]);
      const std::uint32_t u = ru[e];
      out.settings[static_cast<std::size_t>(front)]
                  [static_cast<std::size_t>(u) * r + rslot[e]] =
          static_cast<std::uint8_t>(c);
      ru[e] = w.child(front, u, c);
      rslot[e] = static_cast<std::uint8_t>(w.slot(front, u, c));
      std::uint32_t next_v = 0;
      bool found = false;
      for (unsigned slot = 0; slot < r; ++slot) {
        const std::uint32_t parent = w.parent(back_conn, rv[e], slot);
        if (digit_of(parent, split_digit, power, r) == c) {
          next_v = parent;
          found = true;
          break;
        }
      }
      if (!found) {
        throw std::logic_error(
            "looping_configure: no parent in the colored sub-fabric "
            "(internal invariant violated)");
      }
      rv[e] = next_v;
    }
  }

  // The recursion bottoms out at the middle stage: both sides of every
  // route must have met in the same cell.
  for (std::size_t e = 0; e < terminals; ++e) {
    if (ru[e] != rv[e]) {
      throw std::logic_error(
          "looping_configure: route fronts and backs did not meet at the "
          "middle stage (internal invariant violated)");
    }
  }

  // Self-verification: replay every terminal through the settings plus
  // the forced back half and insist on exact delivery with link-disjoint
  // routes. A LoopingSettings that escapes this function is correct by
  // construction.
  const int flat_stages = w.stages();
  std::vector<std::uint8_t> link_used(
      static_cast<std::size_t>(flat_stages - 1) * w.links_per_stage(), 0);
  for (std::size_t t = 0; t < terminals; ++t) {
    std::uint32_t cell = static_cast<std::uint32_t>(t) / r;
    unsigned slot = static_cast<unsigned>(t % r);
    const std::uint32_t dest_cell = permutation[t] / r;
    for (int s = 0; s + 1 < flat_stages; ++s) {
      const unsigned port =
          (s <= n - 2)
              ? out.settings[static_cast<std::size_t>(s)]
                            [static_cast<std::size_t>(cell) * r + slot]
              : digit_of(dest_cell, 2 * n - 3 - s, power, r);
      const std::size_t link = static_cast<std::size_t>(s) *
                                   w.links_per_stage() +
                               static_cast<std::size_t>(cell) * r + port;
      if (link_used[link]) {
        throw std::logic_error(
            "looping_configure: two routes share a physical link "
            "(self-verification failed)");
      }
      link_used[link] = 1;
      slot = w.slot(s, cell, port);
      cell = w.child(s, cell, port);
    }
    if (cell != dest_cell) {
      throw std::logic_error(
          "looping_configure: route for terminal " + std::to_string(t) +
          " missed its destination cell (self-verification failed)");
    }
  }
  return out;
}

}  // namespace mineq::multipath
