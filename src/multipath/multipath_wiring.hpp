/// \file multipath_wiring.hpp
/// \brief Multi-path fabrics composed from FlatWiring stage blocks.
///
/// The paper characterizes unipath banyans — exactly one path per
/// (source, destination) pair. Every production fabric built from these
/// stage blocks is rearrangeable or multipath: the Benes network is
/// baseline ++ reverse-baseline (2n-1 stages, r^(n-1) paths per pair), a
/// dilated banyan carries d parallel arcs per logical link (d^(n-1)
/// paths), and a replicated fabric stacks p independent banyan planes
/// (p paths). MultiPathWiring is the view that composes those fabrics
/// out of the existing closed-form stage constructions and flattens them
/// to a single physical FlatWiring, so the equivalence checks, both
/// simulator policies, and the fault layer all consume them through the
/// IR they already speak.
///
/// The view carries, next to the physical wiring:
///   - the *logical* geometry (logical radix r, logical stage count n,
///     logical cells r^(n-1)): terminals, destination tags, and traffic
///     patterns all live in logical coordinates;
///   - a per-connection routing schedule over logical destination-cell
///     digits, plus a free-stage flag vector: at a free connection (the
///     distribution half of a Benes) *any* out-port reaches the
///     destination, at a forced connection the schedule names a group of
///     `dilation` equivalent out-ports. The simulators' path-selection
///     policies (hash / adaptive / looping) choose within exactly those
///     groups, so path diversity never trades away delivery correctness;
///   - plane extraction (`unipath_plane`): the embedded unipath banyans
///     as plain FlatWirings, so the paper's min:: checks (Banyan,
///     baseline equivalence, survivor classification) apply verbatim to
///     the building blocks of a multipath fabric.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "min/flat_wiring.hpp"
#include "min/networks.hpp"
#include "min/routing.hpp"

namespace mineq::min {

/// The supported multi-path fabric families.
enum class MultiPathKind : std::uint8_t {
  kUnipath,     ///< a plain banyan wrapped in the view (1 path per pair)
  kBenes,       ///< baseline ++ reverse-baseline, 2n-1 stages, r^(n-1) paths
  kDilated,     ///< d parallel arcs per logical link, d^(n-1) paths
  kReplicated,  ///< p independent banyan planes, p paths
};

/// All kinds, in declaration order (handy for sweeps and round-trips).
[[nodiscard]] const std::vector<MultiPathKind>& all_multipath_kinds();

/// Short token for CLIs and CSV columns ("unipath", "benes", "dilated",
/// "replicated").
[[nodiscard]] std::string multipath_kind_name(MultiPathKind kind);

/// Inverse of multipath_kind_name. The rejection message enumerates the
/// valid tokens.
/// \throws std::invalid_argument on an unknown name.
[[nodiscard]] MultiPathKind parse_multipath_kind(std::string_view name);

/// A multi-path fabric: one physical FlatWiring plus the logical
/// geometry and per-connection routing freedom the simulators need.
class MultiPathWiring {
 public:
  /// Wrap a closed-form unipath banyan (paths_available() == 1). Only
  /// kinds with a k-ary construction are supported (see
  /// build_kary_network).
  /// \throws std::invalid_argument for unsupported kinds or geometry.
  [[nodiscard]] static MultiPathWiring unipath(NetworkKind base, int stages,
                                               int radix);

  /// The radix-r Benes network on r^stages logical terminals: the
  /// radix-r baseline's n-1 connections followed by their mirror images
  /// (2*stages - 1 physical stages). Connections 0..n-2 are free — any
  /// out-port reaches any destination — and the back half is forced,
  /// consuming destination-cell digits MSB first. Rearrangeable: the
  /// looping algorithm (multipath::looping_configure) realizes any
  /// terminal permutation conflict-free.
  /// \throws std::invalid_argument unless stages >= 2 and the physical
  /// geometry is representable.
  [[nodiscard]] static MultiPathWiring benes(int stages, int radix);

  /// A dilated banyan: the base construction with every logical link
  /// replaced by `dilation` parallel arcs (physical radix r*dilation).
  /// Every forced hop offers a group of `dilation` equivalent arcs.
  /// \throws std::invalid_argument for unsupported base kinds,
  /// dilation < 2, or r*dilation > 64.
  [[nodiscard]] static MultiPathWiring dilated(NetworkKind base, int stages,
                                               int radix, int dilation);

  /// A replicated fabric: `planes` disjoint copies of the base banyan
  /// side by side (planes * r^(stages-1) physical cells per stage); each
  /// packet picks a plane at injection.
  /// \throws std::invalid_argument for unsupported base kinds or
  /// planes < 2.
  [[nodiscard]] static MultiPathWiring replicated(NetworkKind base, int stages,
                                                  int radix, int planes);

  [[nodiscard]] MultiPathKind kind() const noexcept { return kind_; }

  /// The base construction (dilated/replicated/unipath); kBaseline for
  /// Benes (its front half *is* the radix-r baseline).
  [[nodiscard]] NetworkKind base_kind() const noexcept { return base_kind_; }

  /// The flattened physical fabric (what the fault layer masks and the
  /// simulators move flits through).
  [[nodiscard]] const FlatWiring& wiring() const noexcept { return wiring_; }

  /// Logical geometry: terminals are addressed in base logical_radix()
  /// with logical_stages() digits, independent of the physical layout.
  [[nodiscard]] int logical_stages() const noexcept { return logical_stages_; }
  [[nodiscard]] int logical_radix() const noexcept { return logical_radix_; }
  [[nodiscard]] std::uint32_t logical_cells() const noexcept {
    return logical_cells_;
  }
  [[nodiscard]] std::uint64_t logical_terminals() const noexcept {
    return static_cast<std::uint64_t>(logical_radix_) * logical_cells_;
  }

  /// Injection planes (kReplicated: the plane count; otherwise 1).
  [[nodiscard]] int planes() const noexcept { return planes_; }

  /// Arcs per logical link (kDilated: d; otherwise 1). The physical
  /// radix is logical_radix() * dilation().
  [[nodiscard]] int dilation() const noexcept { return dilation_; }

  /// Distinct router-usable paths per (source, destination) pair in the
  /// pristine fabric: r^(n-1) (Benes), d^(n-1) (dilated), p
  /// (replicated), 1 (unipath).
  [[nodiscard]] std::uint64_t paths_available() const noexcept {
    return paths_available_;
  }

  /// Per-connection routing schedule over *logical* destination-cell
  /// digits (logical_radix() port groups scaled by dilation()). Entries
  /// at free connections are identity placeholders and must not be
  /// consulted — check free_stage() first.
  [[nodiscard]] const DigitSchedule& schedule() const noexcept {
    return schedule_;
  }

  /// free_stage()[s] != 0 iff any out-port at connection s reaches any
  /// destination (the Benes distribution half). One entry per physical
  /// connection.
  [[nodiscard]] const std::vector<std::uint8_t>& free_stage() const noexcept {
    return free_stage_;
  }

  /// The number of embedded unipath planes extractable below: 2 for
  /// Benes (front baseline + back mirror), dilation() for dilated,
  /// planes() for replicated, 1 for unipath.
  [[nodiscard]] int plane_count() const noexcept;

  /// Extract embedded unipath plane \p index as a plain FlatWiring, so
  /// the paper's checks (is_banyan, baseline equivalence) apply to the
  /// multipath fabric's building blocks directly. Benes: plane 0 is the
  /// front (baseline) half, plane 1 the back (mirror) half. Dilated:
  /// plane k keeps arc k of every logical link. Replicated: plane q
  /// relabeled to cells 0..r^(n-1)-1.
  /// \throws std::out_of_range on a bad index.
  [[nodiscard]] FlatWiring unipath_plane(int index) const;

  friend bool operator==(const MultiPathWiring&,
                         const MultiPathWiring&) = default;

 private:
  MultiPathWiring() = default;

  MultiPathKind kind_ = MultiPathKind::kUnipath;
  NetworkKind base_kind_ = NetworkKind::kBaseline;
  FlatWiring wiring_;
  int logical_stages_ = 1;
  int logical_radix_ = 2;
  std::uint32_t logical_cells_ = 1;
  int planes_ = 1;
  int dilation_ = 1;
  std::uint64_t paths_available_ = 1;
  DigitSchedule schedule_;
  std::vector<std::uint8_t> free_stage_;
};

}  // namespace mineq::min
