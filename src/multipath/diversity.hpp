/// \file diversity.hpp
/// \brief Surviving path diversity of a multipath fabric under a fault
/// mask.
///
/// The resilience payoff of a multipath fabric is quantifiable before
/// simulating a single flit: count, for every (source, destination)
/// pair, how many of the router-usable paths survive the mask, and
/// report the minimum over all pairs. A unipath banyan scores 1 when
/// pristine and 0 as soon as any pair loses its only path (exactly the
/// full-access classification); a Benes/dilated/replicated fabric keeps
/// a positive minimum until every path of some pair is cut. The sweep
/// layer emits this as the `min_path_diversity` column next to the
/// simulated `delivered_fraction`, so structural and behavioral
/// resilience can be read off the same row.

#pragma once

#include <cstdint>

#include "fault/fault_mask.hpp"
#include "multipath/multipath_wiring.hpp"

namespace mineq::multipath {

/// Minimum over all (source terminal, destination terminal) pairs of the
/// number of distinct router-usable paths of \p fabric that survive
/// \p mask (nullptr = pristine fabric). "Router-usable" means paths the
/// simulators' path policies can actually take: any out-port at a free
/// connection, any arc of the scheduled dilation group at a forced one,
/// any plane at injection. Saturates at UINT64_MAX. O(logical_cells *
/// stages * physical links).
[[nodiscard]] std::uint64_t min_path_diversity(
    const min::MultiPathWiring& fabric,
    const fault::FaultMask* mask = nullptr);

}  // namespace mineq::multipath
