#include "multipath/multipath_wiring.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "min/kary.hpp"

namespace mineq::min {

namespace {

std::uint64_t pow_u64(std::uint64_t base, int exp) {
  std::uint64_t value = 1;
  for (int i = 0; i < exp; ++i) value *= base;
  return value;
}

/// The identity digit schedule entry (placeholder for free connections).
std::vector<unsigned> identity_map(int radix) {
  std::vector<unsigned> map(static_cast<std::size_t>(radix));
  for (int v = 0; v < radix; ++v) map[static_cast<std::size_t>(v)] =
      static_cast<unsigned>(v);
  return map;
}

void check_logical_shape(const char* what, int stages, int radix) {
  if (stages < 2) {
    throw std::invalid_argument(std::string(what) +
                                ": need >= 2 logical stages, got " +
                                std::to_string(stages));
  }
  // The kary layer (the source of every base construction and of the
  // digit-routing conventions) caps the switch radix at 16; multipath
  // fabrics keep the same logical window.
  if (radix < 2 || radix > 16) {
    throw std::invalid_argument(std::string(what) + ": logical radix " +
                                std::to_string(radix) +
                                " out of range [2, 16]");
  }
}

}  // namespace

const std::vector<MultiPathKind>& all_multipath_kinds() {
  static const std::vector<MultiPathKind> kinds = {
      MultiPathKind::kUnipath, MultiPathKind::kBenes, MultiPathKind::kDilated,
      MultiPathKind::kReplicated};
  return kinds;
}

std::string multipath_kind_name(MultiPathKind kind) {
  switch (kind) {
    case MultiPathKind::kUnipath:
      return "unipath";
    case MultiPathKind::kBenes:
      return "benes";
    case MultiPathKind::kDilated:
      return "dilated";
    case MultiPathKind::kReplicated:
      return "replicated";
  }
  throw std::invalid_argument("multipath_kind_name: unknown kind");
}

MultiPathKind parse_multipath_kind(std::string_view name) {
  for (const MultiPathKind kind : all_multipath_kinds()) {
    if (multipath_kind_name(kind) == name) return kind;
  }
  std::string valid;
  for (const MultiPathKind kind : all_multipath_kinds()) {
    if (!valid.empty()) valid += ", ";
    valid += multipath_kind_name(kind);
  }
  throw std::invalid_argument("parse_multipath_kind: unknown fabric \"" +
                              std::string(name) + "\" (valid: " + valid + ')');
}

MultiPathWiring MultiPathWiring::unipath(NetworkKind base, int stages,
                                         int radix) {
  check_logical_shape("MultiPathWiring::unipath", stages, radix);
  MultiPathWiring fabric;
  fabric.kind_ = MultiPathKind::kUnipath;
  fabric.base_kind_ = base;
  fabric.wiring_ = FlatWiring::from_kary(build_kary_network(base, stages,
                                                            radix));
  fabric.logical_stages_ = stages;
  fabric.logical_radix_ = radix;
  fabric.logical_cells_ = fabric.wiring_.cells_per_stage();
  fabric.schedule_ = kary_network_schedule(base, stages, radix);
  fabric.free_stage_.assign(static_cast<std::size_t>(stages - 1), 0);
  return fabric;
}

MultiPathWiring MultiPathWiring::benes(int stages, int radix) {
  check_logical_shape("MultiPathWiring::benes", stages, radix);
  const int n = stages;
  const int w = n - 1;  // logical cell-label width (base-r digits)
  const int flat_stages = 2 * n - 1;
  const std::uint64_t cells64 = pow_u64(static_cast<std::uint64_t>(radix), w);
  FlatWiring::check_geometry(flat_stages, cells64, radix);
  const auto cells = static_cast<std::uint32_t>(cells64);
  const auto r = static_cast<std::uint32_t>(radix);

  // Front half = the radix-r baseline's connections 0..n-2 (closed form:
  // connection s splits blocks of r^(w-s) cells into r sub-blocks, port
  // t selecting sub-block t — i.e. it writes destination digit w-s-1).
  // Back half = their mirror images in reverse order: flat connection
  // s in [n-1, 2n-3] is the transpose of baseline connection j = 2n-3-s,
  // which *reads back* digit w-j-1 as the arriving input slot while the
  // out-port writes digit 0. Together: n-1 free distribution
  // connections, then a forced half consuming destination-cell digits
  // MSB first with identity port maps.
  std::vector<std::vector<std::uint32_t>> child_tables(
      static_cast<std::size_t>(flat_stages - 1));
  for (int s = 0; s <= n - 2; ++s) {
    const std::uint32_t block = static_cast<std::uint32_t>(
        pow_u64(static_cast<std::uint64_t>(radix), w - s));
    const std::uint32_t sub = block / r;
    auto& table = child_tables[static_cast<std::size_t>(s)];
    table.resize(static_cast<std::size_t>(cells) * r);
    for (std::uint32_t y = 0; y < cells; ++y) {
      for (std::uint32_t t = 0; t < r; ++t) {
        table[static_cast<std::size_t>(r) * y + t] =
            (y - y % block) + (y % block) / r + t * sub;
      }
    }
  }
  for (int s = n - 1; s <= 2 * n - 3; ++s) {
    const int j = 2 * n - 3 - s;
    const std::uint32_t block = static_cast<std::uint32_t>(
        pow_u64(static_cast<std::uint64_t>(radix), w - j));
    const std::uint32_t sub = block / r;
    auto& table = child_tables[static_cast<std::size_t>(s)];
    table.resize(static_cast<std::size_t>(cells) * r);
    for (std::uint32_t z = 0; z < cells; ++z) {
      for (std::uint32_t i = 0; i < r; ++i) {
        table[static_cast<std::size_t>(r) * z + i] =
            (z - z % block) + r * (z % sub) + i;
      }
    }
  }

  MultiPathWiring fabric;
  fabric.kind_ = MultiPathKind::kBenes;
  fabric.base_kind_ = NetworkKind::kBaseline;
  fabric.wiring_ =
      FlatWiring::from_stage_children(flat_stages, cells, radix, child_tables);
  fabric.logical_stages_ = n;
  fabric.logical_radix_ = radix;
  fabric.logical_cells_ = cells;
  fabric.paths_available_ = cells64;  // r^(n-1): any middle cell works
  fabric.schedule_.radix = radix;
  fabric.schedule_.digit.assign(static_cast<std::size_t>(flat_stages - 1), 0);
  fabric.schedule_.port_of_value.assign(
      static_cast<std::size_t>(flat_stages - 1), identity_map(radix));
  fabric.free_stage_.assign(static_cast<std::size_t>(flat_stages - 1), 0);
  for (int s = 0; s <= n - 2; ++s) {
    fabric.free_stage_[static_cast<std::size_t>(s)] = 1;
  }
  for (int s = n - 1; s <= 2 * n - 3; ++s) {
    fabric.schedule_.digit[static_cast<std::size_t>(s)] = 2 * n - 3 - s;
  }
  return fabric;
}

MultiPathWiring MultiPathWiring::dilated(NetworkKind base, int stages,
                                         int radix, int dilation) {
  check_logical_shape("MultiPathWiring::dilated", stages, radix);
  if (dilation < 2) {
    throw std::invalid_argument(
        "MultiPathWiring::dilated: dilation must be >= 2, got " +
        std::to_string(dilation));
  }
  const int physical_radix = radix * dilation;
  if (physical_radix > 64) {
    throw std::invalid_argument(
        "MultiPathWiring::dilated: physical radix " +
        std::to_string(physical_radix) +
        " (radix * dilation) exceeds the FlatWiring record limit of 64");
  }
  const KaryMIDigraph g = build_kary_network(base, stages, radix);
  const std::uint32_t cells = g.cells_per_stage();
  const auto r = static_cast<unsigned>(radix);
  const auto d = static_cast<unsigned>(dilation);
  const auto rr = static_cast<unsigned>(physical_radix);

  std::vector<std::vector<std::uint32_t>> child_tables(
      static_cast<std::size_t>(stages - 1));
  for (int s = 0; s + 1 < stages; ++s) {
    const KaryConnection& conn = g.connection(s);
    auto& table = child_tables[static_cast<std::size_t>(s)];
    table.resize(static_cast<std::size_t>(cells) * rr);
    for (std::uint32_t x = 0; x < cells; ++x) {
      for (unsigned p = 0; p < r; ++p) {
        const std::uint32_t child = conn.child(p, x);
        for (unsigned k = 0; k < d; ++k) {
          table[static_cast<std::size_t>(rr) * x + p * d + k] = child;
        }
      }
    }
  }

  MultiPathWiring fabric;
  fabric.kind_ = MultiPathKind::kDilated;
  fabric.base_kind_ = base;
  fabric.wiring_ =
      FlatWiring::from_stage_children(stages, cells, physical_radix,
                                      child_tables);
  fabric.logical_stages_ = stages;
  fabric.logical_radix_ = radix;
  fabric.logical_cells_ = cells;
  fabric.dilation_ = dilation;
  fabric.paths_available_ =
      pow_u64(static_cast<std::uint64_t>(dilation), stages - 1);
  fabric.schedule_ = kary_network_schedule(base, stages, radix);
  fabric.free_stage_.assign(static_cast<std::size_t>(stages - 1), 0);
  return fabric;
}

MultiPathWiring MultiPathWiring::replicated(NetworkKind base, int stages,
                                            int radix, int planes) {
  check_logical_shape("MultiPathWiring::replicated", stages, radix);
  if (planes < 2) {
    throw std::invalid_argument(
        "MultiPathWiring::replicated: planes must be >= 2, got " +
        std::to_string(planes));
  }
  const KaryMIDigraph g = build_kary_network(base, stages, radix);
  const std::uint32_t plane_cells = g.cells_per_stage();
  const std::uint64_t cells64 =
      static_cast<std::uint64_t>(planes) * plane_cells;
  FlatWiring::check_geometry(stages, cells64, radix);
  const auto cells = static_cast<std::uint32_t>(cells64);
  const auto r = static_cast<unsigned>(radix);

  std::vector<std::vector<std::uint32_t>> child_tables(
      static_cast<std::size_t>(stages - 1));
  for (int s = 0; s + 1 < stages; ++s) {
    const KaryConnection& conn = g.connection(s);
    auto& table = child_tables[static_cast<std::size_t>(s)];
    table.resize(static_cast<std::size_t>(cells) * r);
    for (int q = 0; q < planes; ++q) {
      const std::uint32_t offset = static_cast<std::uint32_t>(q) * plane_cells;
      for (std::uint32_t x = 0; x < plane_cells; ++x) {
        for (unsigned t = 0; t < r; ++t) {
          table[static_cast<std::size_t>(r) * (offset + x) + t] =
              offset + conn.child(t, x);
        }
      }
    }
  }

  MultiPathWiring fabric;
  fabric.kind_ = MultiPathKind::kReplicated;
  fabric.base_kind_ = base;
  fabric.wiring_ =
      FlatWiring::from_stage_children(stages, cells, radix, child_tables);
  fabric.logical_stages_ = stages;
  fabric.logical_radix_ = radix;
  fabric.logical_cells_ = plane_cells;
  fabric.planes_ = planes;
  fabric.paths_available_ = static_cast<std::uint64_t>(planes);
  fabric.schedule_ = kary_network_schedule(base, stages, radix);
  fabric.free_stage_.assign(static_cast<std::size_t>(stages - 1), 0);
  return fabric;
}

int MultiPathWiring::plane_count() const noexcept {
  switch (kind_) {
    case MultiPathKind::kUnipath:
      return 1;
    case MultiPathKind::kBenes:
      return 2;
    case MultiPathKind::kDilated:
      return dilation_;
    case MultiPathKind::kReplicated:
      return planes_;
  }
  return 1;
}

FlatWiring MultiPathWiring::unipath_plane(int index) const {
  if (index < 0 || index >= plane_count()) {
    throw std::out_of_range("MultiPathWiring::unipath_plane: plane " +
                            std::to_string(index) + " out of range [0, " +
                            std::to_string(plane_count()) + ')');
  }
  const int n = logical_stages_;
  const auto r = static_cast<unsigned>(logical_radix_);
  const std::uint32_t cells = logical_cells_;
  std::vector<std::vector<std::uint32_t>> child_tables(
      static_cast<std::size_t>(n - 1));
  for (int s = 0; s + 1 < n; ++s) {
    auto& table = child_tables[static_cast<std::size_t>(s)];
    table.resize(static_cast<std::size_t>(cells) * r);
    for (std::uint32_t x = 0; x < cells; ++x) {
      for (unsigned p = 0; p < r; ++p) {
        std::uint32_t child = 0;
        switch (kind_) {
          case MultiPathKind::kUnipath:
            child = wiring_.child(s, x, p);
            break;
          case MultiPathKind::kBenes:
            // Plane 0 = the front (baseline) half, plane 1 = the back
            // (mirror) half; both are n-stage unipath banyans.
            child = wiring_.child(index == 0 ? s : s + n - 1, x, p);
            break;
          case MultiPathKind::kDilated:
            child = wiring_.child(
                s, x, p * static_cast<unsigned>(dilation_) +
                          static_cast<unsigned>(index));
            break;
          case MultiPathKind::kReplicated: {
            const std::uint32_t offset =
                static_cast<std::uint32_t>(index) * cells;
            child = wiring_.child(s, offset + x, p) - offset;
            break;
          }
        }
        table[static_cast<std::size_t>(r) * x + p] = child;
      }
    }
  }
  return FlatWiring::from_stage_children(n, cells, logical_radix_,
                                         child_tables);
}

}  // namespace mineq::min
