#include "sim/traffic.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "util/bitops.hpp"

namespace mineq::sim {

const std::vector<Pattern>& all_patterns() {
  // New patterns append so the historic registry prefix (and every
  // sweep/CLI enumeration derived from it) keeps its order.
  static const std::vector<Pattern> patterns = {
      Pattern::kUniform,    Pattern::kBitReversal,   Pattern::kShuffle,
      Pattern::kTranspose,  Pattern::kComplement,    Pattern::kHotSpot,
      Pattern::kBursty,     Pattern::kTornado,       Pattern::kDigitNeighbor,
      Pattern::kAllToAll,
  };
  return patterns;
}

std::string pattern_name(Pattern p) {
  switch (p) {
    case Pattern::kUniform:
      return "uniform";
    case Pattern::kBitReversal:
      return "bitrev";
    case Pattern::kShuffle:
      return "shuffle";
    case Pattern::kTranspose:
      return "transpose";
    case Pattern::kComplement:
      return "complement";
    case Pattern::kHotSpot:
      return "hotspot";
    case Pattern::kBursty:
      return "bursty";
    case Pattern::kPermutation:
      return "permutation";
    case Pattern::kTornado:
      return "tornado";
    case Pattern::kDigitNeighbor:
      return "digitneighbor";
    case Pattern::kAllToAll:
      return "alltoall";
  }
  throw std::invalid_argument("pattern_name: unknown pattern");
}

Pattern parse_pattern(std::string_view name) {
  for (Pattern p : all_patterns()) {
    if (pattern_name(p) == name) return p;
  }
  std::string valid;
  for (Pattern p : all_patterns()) {
    if (!valid.empty()) valid += ", ";
    valid += pattern_name(p);
  }
  throw std::invalid_argument("parse_pattern: unknown pattern \"" +
                              std::string(name) + "\" (valid: " + valid +
                              ')');
}

namespace {

/// The offending-value error satellite: every constraint rejection names
/// the pattern, the constraint AND the value that broke it.
[[noreturn]] void reject_odd_transpose(int n) {
  throw std::invalid_argument(
      "transpose traffic needs an even digit count (it swaps the "
      "high/low address halves), got n = " +
      std::to_string(n));
}

std::uint32_t transform(Pattern p, std::uint32_t src, int n) {
  const auto mask = static_cast<std::uint32_t>(util::low_mask(n));
  switch (p) {
    case Pattern::kBitReversal:
      return static_cast<std::uint32_t>(util::reverse_bits(src, n));
    case Pattern::kShuffle:
      return static_cast<std::uint32_t>(util::rotl1(src, n));
    case Pattern::kTranspose: {
      if (n % 2 != 0) reject_odd_transpose(n);
      const int half = n / 2;
      const std::uint32_t low = src & static_cast<std::uint32_t>(
                                          util::low_mask(half));
      const std::uint32_t high = src >> half;
      return (low << half) | high;
    }
    case Pattern::kComplement:
      return ~src & mask;
    case Pattern::kTornado: {
      // Half-spin adversary: d = (s + ceil(N/2) - 1) mod N.
      const std::uint32_t terminals = mask + 1;
      return (src + terminals / 2 - 1) & mask;
    }
    case Pattern::kDigitNeighbor:
      // Digit-wise +1 mod r is bit-wise complement at r = 2.
      return ~src & mask;
    case Pattern::kUniform:
    case Pattern::kHotSpot:
    case Pattern::kBursty:
    case Pattern::kPermutation:  // table-driven, not a closed form
    case Pattern::kAllToAll:     // phase-driven, handled in destination()
      throw std::invalid_argument(
          "transform: pattern is not deterministic");
  }
  throw std::invalid_argument("transform: unknown pattern");
}

/// The digit-wise generalization of transform() to base-r addresses of
/// \p n digits. At r = 2 it agrees with transform() value for value (the
/// binary TrafficSource path keeps the bit implementation).
std::uint32_t transform_kary(Pattern p, std::uint32_t src, int n, int radix) {
  const auto r = static_cast<std::uint32_t>(radix);
  switch (p) {
    case Pattern::kBitReversal: {
      // Digit reversal.
      std::uint32_t value = src;
      std::uint32_t out = 0;
      for (int i = 0; i < n; ++i) {
        out = out * r + value % r;
        value /= r;
      }
      return out;
    }
    case Pattern::kShuffle: {
      // Rotate-left one digit: the top digit becomes the low digit.
      std::uint32_t top_scale = 1;
      for (int i = 0; i + 1 < n; ++i) top_scale *= r;
      return (src % top_scale) * r + src / top_scale;
    }
    case Pattern::kTranspose: {
      if (n % 2 != 0) reject_odd_transpose(n);
      std::uint32_t half_scale = 1;
      for (int i = 0; i < n / 2; ++i) half_scale *= r;
      return (src % half_scale) * half_scale + src / half_scale;
    }
    case Pattern::kComplement: {
      // Digit-wise (r-1)-complement: every digit is at most r - 1, so
      // (r^n - 1) - src complements each digit without borrows.
      std::uint32_t all = 1;
      for (int i = 0; i < n; ++i) all *= r;
      return (all - 1) - src;
    }
    case Pattern::kTornado: {
      // Half-spin adversary: d = (s + ceil(N/2) - 1) mod N.
      std::uint32_t all = 1;
      for (int i = 0; i < n; ++i) all *= r;
      return (src + (all + 1) / 2 - 1) % all;
    }
    case Pattern::kDigitNeighbor: {
      // Digit-wise +1 mod r; agrees with the binary complement at r = 2.
      std::uint32_t value = src;
      std::uint32_t out = 0;
      std::uint32_t scale = 1;
      for (int i = 0; i < n; ++i) {
        out += ((value % r + 1) % r) * scale;
        value /= r;
        scale *= r;
      }
      return out;
    }
    case Pattern::kUniform:
    case Pattern::kHotSpot:
    case Pattern::kBursty:
    case Pattern::kPermutation:  // table-driven, not a closed form
    case Pattern::kAllToAll:     // phase-driven, handled in destination()
      throw std::invalid_argument(
          "transform_kary: pattern is not deterministic");
  }
  throw std::invalid_argument("transform_kary: unknown pattern");
}

}  // namespace

perm::Permutation pattern_permutation(Pattern p, int n) {
  if (p == Pattern::kUniform || p == Pattern::kHotSpot ||
      p == Pattern::kBursty || p == Pattern::kPermutation ||
      p == Pattern::kAllToAll) {
    // kPermutation *is* a permutation, but the table lives in the
    // caller's SimConfig, not in the pattern tag; kAllToAll is a
    // *different* permutation every cycle.
    throw std::invalid_argument(
        "pattern_permutation: pattern \"" + pattern_name(p) +
        "\" is not a derivable permutation (random, table-driven and "
        "phase-driven patterns have no single closed form)");
  }
  const std::size_t size = std::size_t{1} << n;
  std::vector<std::uint32_t> image(size);
  for (std::size_t t = 0; t < size; ++t) {
    image[t] = transform(p, static_cast<std::uint32_t>(t), n);
  }
  return perm::Permutation(std::move(image));
}

TrafficSource::TrafficSource(Pattern pattern, int n, util::SplitMix64 rng)
    : TrafficSource(pattern, n, /*radix=*/2, rng) {}

TrafficSource::TrafficSource(Pattern pattern, int n, int radix,
                             util::SplitMix64 rng)
    : TrafficSource(pattern, n, radix, rng, {}) {}

TrafficSource::TrafficSource(Pattern pattern, int n, int radix,
                             util::SplitMix64 rng,
                             std::vector<std::uint32_t> permutation)
    : pattern_(pattern),
      n_(n),
      radix_(radix),
      terminals_(1),
      rng_(rng),
      permutation_(std::move(permutation)) {
  if (n < 1 || n > util::kMaxBits) {
    throw std::invalid_argument("TrafficSource: address digits out of range");
  }
  if (radix < 2) {
    throw std::invalid_argument("TrafficSource: radix must be >= 2");
  }
  if (pattern == Pattern::kTranspose && n % 2 != 0) {
    throw std::invalid_argument(
        "TrafficSource: transpose traffic needs an even digit count (it "
        "swaps the high/low address halves), got n = " +
        std::to_string(n));
  }
  for (int i = 0; i < n; ++i) {
    terminals_ *= static_cast<std::uint64_t>(radix);
    if (terminals_ > (std::uint64_t{1} << 32)) {
      throw std::invalid_argument(
          "TrafficSource: radix^n exceeds the 32-bit terminal space");
    }
  }
  if (pattern == Pattern::kPermutation) {
    if (permutation_.size() != terminals_) {
      throw std::invalid_argument(
          "TrafficSource: permutation has " +
          std::to_string(permutation_.size()) + " entries, fabric has " +
          std::to_string(terminals_) + " terminals");
    }
    std::vector<std::uint8_t> seen(permutation_.size(), 0);
    for (const std::uint32_t image : permutation_) {
      if (image >= terminals_ || seen[image]) {
        throw std::invalid_argument(
            "TrafficSource: permutation is not a bijection over the "
            "terminal space");
      }
      seen[image] = 1;
    }
  }
}

void BurstParams::validate() const {
  const auto check = [](double p, const char* field) {
    if (!(p > 0.0) || p > 1.0) {  // !(p > 0) also catches NaN
      throw std::invalid_argument(
          std::string("BurstParams: ") + field +
          " must be within (0, 1], got " + std::to_string(p));
    }
  };
  check(on_to_off, "on_to_off");
  check(off_to_on, "off_to_on");
}

BurstModulator::BurstModulator(std::size_t terminals, util::SplitMix64 rng,
                               BurstParams params)
    : on_(terminals, 0), rng_(rng) {
  // Validate before any threshold cast: converting an out-of-range
  // double (NaN, > 1) to an integer is undefined behavior.
  params.validate();
  on_off_threshold_ = util::probability_threshold(params.on_to_off);
  off_on_threshold_ = util::probability_threshold(params.off_to_on);
  // Start from the stationary distribution so measurements need no extra
  // modulator warmup: P(on) = p_on / (p_on + p_off).
  const std::uint64_t stationary_on = util::probability_threshold(
      params.off_to_on / (params.on_to_off + params.off_to_on));
  for (std::size_t t = 0; t < terminals; ++t) {
    on_[t] = rng_.chance_threshold(stationary_on) ? 1 : 0;
  }
}

void BurstModulator::advance() {
  // One draw per terminal per cycle, compared against the threshold of
  // the terminal's current state.
  for (std::size_t t = 0; t < on_.size(); ++t) {
    if (on_[t] != 0) {
      if (rng_.chance_threshold(on_off_threshold_)) on_[t] = 0;
    } else {
      if (rng_.chance_threshold(off_on_threshold_)) on_[t] = 1;
    }
  }
}

std::uint32_t TrafficSource::destination(std::uint32_t source) {
  switch (pattern_) {
    case Pattern::kUniform:
    case Pattern::kBursty:  // bursty shapes *when* to inject, not where
      return static_cast<std::uint32_t>(rng_.below(terminals_));
    case Pattern::kHotSpot:
      // 25% of packets to terminal 0, the rest uniform.
      if (rng_.chance(1, 4)) return 0;
      return static_cast<std::uint32_t>(rng_.below(terminals_));
    case Pattern::kPermutation:
      return permutation_[source];
    case Pattern::kAllToAll:
      // Phase-shift collective: everyone sends to (s + phase) mod N;
      // tick() advances the phase once per cycle.
      return static_cast<std::uint32_t>((source + phase_) % terminals_);
    default:
      // The binary path keeps the historic bit implementation; the
      // digit-wise generalization agrees with it at r = 2.
      return radix_ == 2 ? transform(pattern_, source, n_)
                         : transform_kary(pattern_, source, n_, radix_);
  }
}

}  // namespace mineq::sim
