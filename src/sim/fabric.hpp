/// \file fabric.hpp
/// \brief FabricCore: the shared substrate of both switching disciplines.
///
/// Store-and-forward and wormhole switching differ only in how payload
/// advances through a switch; everything else — the stage-packed wiring
/// (min::FlatWiring), the per-output-port round-robin arbiters, the
/// pluggable workload source behind the attempt/draw/commit seam
/// (workload/workload.hpp), the result counters and their finalization —
/// is one substrate, owned by FabricCore. Each discipline is a *policy* (engine.cpp, wormhole.cpp)
/// that implements the four per-cycle phases over the core; the driver
/// loop run_switched() sequences them identically for both:
///
///   eject -> advance stages (last-1 .. 0) -> inject -> sample
///
/// Payload lives in struct-of-arrays pools (PacketRing for whole-packet
/// FIFOs, LanePool for virtual-channel flit buffers): fixed-capacity
/// rings over a few contiguous arrays instead of a deque per queue, so a
/// run allocates O(1) blocks and the hot loops stream over flat memory.

#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "sim/engine.hpp"
#include "sim/flit.hpp"
#include "sim/traffic.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace mineq::sim {

/// Rotating-priority pointer over a fixed candidate ring. Callers probe
/// candidate(0), candidate(1), ... in order and grant() the winner, which
/// moves it to lowest priority for the next round. The shared fairness
/// primitive of both switching disciplines.
class RoundRobin {
 public:
  /// \throws std::invalid_argument on an empty candidate ring — a
  /// size-0 arbiter has nothing to grant, and silently clamping it to 1
  /// (the historic behavior) masked the caller's geometry bug.
  explicit RoundRobin(unsigned size = 1) : size_(size) {
    if (size == 0) {
      throw std::invalid_argument(
          "RoundRobin: candidate ring must be non-empty");
    }
  }

  /// The candidate to try at probe position \p probe (0-based).
  [[nodiscard]] unsigned candidate(unsigned probe) const noexcept {
    return (next_ + probe) % size_;
  }

  /// Record that \p winner was served; it now has lowest priority.
  /// \throws std::logic_error on a winner outside the candidate ring
  /// (granting it would desynchronize the pointer silently).
  void grant(unsigned winner) {
    if (winner >= size_) {
      throw std::logic_error("RoundRobin::grant: winner out of range");
    }
    next_ = (winner + 1) % size_;
  }

  [[nodiscard]] unsigned size() const noexcept { return size_; }

 private:
  unsigned size_;
  unsigned next_ = 0;
};

/// Quantum-weighted round-robin pointers, one per output port, flat over
/// the whole fabric. Probe order matches RoundRobin (rotating from the
/// pointer); the difference is the grant rule: a winner keeps top
/// priority until it has taken \p weight consecutive grants (its
/// quantum), then the pointer rotates past it. With every weight equal
/// to 1 the grant sequence reduces to RoundRobin's exactly.
class WeightedRoundRobin {
 public:
  /// Re-shape to \p arbiters pointers over \p size candidates each and
  /// reset all quanta.
  void reset(std::size_t arbiters, unsigned size);

  [[nodiscard]] unsigned candidate(std::size_t a,
                                   unsigned probe) const noexcept {
    return (next_[a] + probe) % size_;
  }

  /// Record that \p winner was served with quantum \p weight (>= 1).
  void grant(std::size_t a, unsigned winner, unsigned weight);

 private:
  unsigned size_ = 1;
  std::vector<unsigned> next_;
  std::vector<unsigned> served_;  ///< consecutive grants to next_[a]
};

/// Per-link credit counters with a configurable return latency — the
/// loss-free link-level flow control both disciplines run when
/// SimConfig::credits is enabled. The receiver end of every downstream
/// buffer grants its capacity in credits up front; senders consume one
/// per unit pushed and stall at zero; every pop schedules the credit
/// back through a small ring of in-flight credit messages that delivers
/// it \p latency cycles later (latency 0 returns it immediately, which
/// the phase order makes byte-identical to direct occupancy probes).
/// Conservation holds cycle for cycle:
///   credits(l) + in_flight(l) + occupancy(l) == capacity.
class CreditLedger {
 public:
  /// Re-shape to \p links counters of \p capacity credits each with
  /// \p latency-cycle returns, retaining allocations when large enough.
  void reset(std::size_t links, std::uint32_t capacity,
             std::uint64_t latency);

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool available(std::size_t link) const noexcept {
    return credits_[link] != 0;
  }
  [[nodiscard]] std::uint32_t credits(std::size_t link) const noexcept {
    return credits_[link];
  }
  /// Credit-return messages still in flight toward \p link's sender.
  [[nodiscard]] std::uint32_t in_flight(std::size_t link) const noexcept {
    return pending_[link];
  }

  /// Spend one credit of \p link; it must be available().
  void consume(std::size_t link) noexcept { --credits_[link]; }

  /// Schedule one credit of \p link back to its sender, arriving at
  /// cycle + latency (immediately for latency 0).
  void give_back(std::size_t link, std::uint64_t cycle);

  /// Start-of-cycle harvest: every credit scheduled to arrive at
  /// \p cycle lands. Call once per cycle, before any give_back of that
  /// cycle (the policies call it at the top of eject, the first phase).
  void deliver(std::uint64_t cycle);

  /// deliver() restricted to links [\p lo, \p hi) — the sharded driver's
  /// harvest phase, partitioned into disjoint ranges across the worker
  /// team (per-link state is independent, so a range partition is exact).
  void deliver_range(std::uint64_t cycle, std::size_t lo, std::size_t hi);

 private:
  std::uint32_t capacity_ = 0;
  std::uint64_t latency_ = 0;
  std::size_t links_ = 0;
  std::vector<std::uint32_t> credits_;
  std::vector<std::uint32_t> pending_;  ///< per-link in-flight total
  /// Slot-major in-flight ring, slot = arrival cycle % latency:
  /// ring_[slot * links + link] credits land together.
  std::vector<std::uint32_t> ring_;
};

/// Every store-and-forward input FIFO of the fabric as one
/// struct-of-arrays ring pool: queue q occupies slots [q * capacity,
/// (q+1) * capacity) of three parallel field arrays.
class PacketRing {
 public:
  PacketRing(std::size_t queues, std::size_t capacity);

  /// Re-shape to (queues, capacity) and clear every queue, retaining the
  /// underlying allocations when they are large enough — the
  /// SimWorkspace arena path for sweeps that run many points per thread.
  void reset(std::size_t queues, std::size_t capacity);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty(std::size_t q) const noexcept {
    return count_[q] == 0;
  }
  [[nodiscard]] bool full(std::size_t q) const noexcept {
    return count_[q] == capacity_;
  }
  /// Packets currently buffered in queue \p q.
  [[nodiscard]] std::uint32_t count(std::size_t q) const noexcept {
    return count_[q];
  }

  /// Append a packet; the queue must not be full. \p sl is the packet's
  /// service level (0 outside credit-mode runs), \p src its source
  /// terminal (carried for flow attribution and packet tracing), \p tag
  /// its workload tag (request/reply; 0 outside closed-loop runs).
  void push(std::size_t q, std::uint32_t dest, std::uint32_t src,
            std::uint64_t inject_cycle, std::uint64_t arrival_complete,
            unsigned sl = 0, unsigned tag = 0);

  /// Head-of-line packet fields; the queue must not be empty.
  [[nodiscard]] std::uint32_t front_dest(std::size_t q) const {
    return dest_[front_slot(q)];
  }
  [[nodiscard]] std::uint32_t front_src(std::size_t q) const {
    return src_[front_slot(q)];
  }
  [[nodiscard]] std::uint64_t front_inject(std::size_t q) const {
    return inject_[front_slot(q)];
  }
  [[nodiscard]] std::uint64_t front_arrival(std::size_t q) const {
    return arrival_[front_slot(q)];
  }
  [[nodiscard]] unsigned front_sl(std::size_t q) const {
    return sl_[front_slot(q)];
  }
  [[nodiscard]] unsigned front_tag(std::size_t q) const {
    return tag_[front_slot(q)];
  }

  /// Drop the head-of-line packet; the queue must not be empty.
  void pop(std::size_t q);

  /// push()/pop() variants that leave the pool-wide total_packets()
  /// counter untouched. The sharded cycle kernels use these: workers
  /// mutate disjoint queue ranges concurrently, so the shared counter
  /// would be a data race — each worker tracks its +-delta locally and
  /// the driver reconciles. Queue state is identical to push()/pop().
  void push_unc(std::size_t q, std::uint32_t dest, std::uint32_t src,
                std::uint64_t inject_cycle, std::uint64_t arrival_complete,
                unsigned sl = 0, unsigned tag = 0);
  void pop_unc(std::size_t q);

  /// Packets currently buffered across every queue (O(1)).
  [[nodiscard]] std::size_t total_packets() const noexcept { return total_; }

 private:
  // head_[q] stays < capacity_ by construction, so ring wrap-around is a
  // compare-and-subtract, never a (hardware-division) modulo — these run
  // once per packet per cycle in the store-and-forward hot loop.
  [[nodiscard]] std::size_t front_slot(std::size_t q) const {
    return q * capacity_ + head_[q];
  }
  [[nodiscard]] std::size_t wrap(std::size_t i) const {
    return i >= capacity_ ? i - capacity_ : i;
  }

  std::size_t capacity_;
  std::vector<std::uint32_t> head_;
  std::vector<std::uint32_t> count_;
  std::vector<std::uint32_t> dest_;
  std::vector<std::uint32_t> src_;
  std::vector<std::uint64_t> inject_;
  std::vector<std::uint64_t> arrival_;
  std::vector<std::uint8_t> sl_;
  std::vector<std::uint8_t> tag_;
  std::size_t total_ = 0;
};

/// Every wormhole virtual channel of the fabric as one struct-of-arrays
/// pool: lane l owns flit slots [l * depth, (l+1) * depth) of a
/// contiguous ring arena, with the per-lane worm bookkeeping (busy,
/// tail-seen, out-port, reserved downstream lane, moved-this-cycle) in
/// parallel field arrays. A lane holds flits of at most one packet (one
/// worm) at a time: a head claims an idle lane, body/tail flits follow
/// through it, and popping the tail returns the lane to idle.
class LanePool {
 public:
  LanePool(std::size_t lane_count, std::size_t depth);

  /// Re-shape to (lane_count, depth) and reset every lane to idle,
  /// retaining the underlying allocations when they are large enough.
  void reset(std::size_t lane_count, std::size_t depth);

  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }

  /// Free for a new worm: no flits buffered and no tail outstanding.
  [[nodiscard]] bool idle(std::size_t l) const noexcept {
    return busy_[l] == 0;
  }
  [[nodiscard]] bool empty(std::size_t l) const noexcept {
    return count_[l] == 0;
  }
  /// Room for one more flit of the current worm.
  [[nodiscard]] bool has_space(std::size_t l) const noexcept {
    return count_[l] < depth_;
  }
  /// Flits currently buffered in lane \p l.
  [[nodiscard]] std::uint32_t count(std::size_t l) const noexcept {
    return count_[l];
  }

  /// Claim idle lane \p l for a new worm whose head is \p head and which
  /// leaves this buffer through \p out_port.
  void accept_head(std::size_t l, const Flit& head, unsigned out_port);

  /// Append a body/tail flit of the worm occupying lane \p l.
  void accept(std::size_t l, const Flit& flit);

  /// The head-of-line flit; the lane must be non-empty.
  [[nodiscard]] const Flit& front(std::size_t l) const {
    return slots_[l * depth_ + head_[l]];
  }

  /// Remove and return the head-of-line flit. Popping the tail resets the
  /// lane to idle (the worm has fully left).
  Flit pop(std::size_t l);

  /// accept_head()/accept()/pop() variants that leave the pool-wide
  /// occupied_flits() counter untouched — the sharded kernels' race-free
  /// forms (workers own disjoint lane ranges and track deltas locally).
  void accept_head_unc(std::size_t l, const Flit& head, unsigned out_port);
  void accept_unc(std::size_t l, const Flit& flit);
  Flit pop_unc(std::size_t l);

  /// Out-port of the worm currently occupying lane \p l.
  [[nodiscard]] unsigned out_port(std::size_t l) const noexcept {
    return out_port_[l];
  }

  /// Downstream lane (relative index inside the next buffer) reserved by
  /// the worm, -1 until its head advances.
  [[nodiscard]] int downstream(std::size_t l) const noexcept {
    return downstream_[l];
  }
  void set_downstream(std::size_t l, int lane) noexcept {
    downstream_[l] = lane;
  }

  /// Did pop() run on lane \p l since the last clear_moved()? Used for
  /// head-of-line blocking accounting.
  [[nodiscard]] bool moved(std::size_t l) const noexcept {
    return moved_[l] != 0;
  }
  void clear_moved(std::size_t l) noexcept { moved_[l] = 0; }

  /// First idle lane of the \p lanes-lane buffer starting at \p first
  /// (relative index), or -1 if every lane is claimed.
  [[nodiscard]] int find_idle_lane(std::size_t first,
                                   std::size_t lanes) const noexcept;

  /// Flits currently buffered across every lane (O(1)).
  [[nodiscard]] std::size_t occupied_flits() const noexcept {
    return occupied_;
  }

 private:
  // head_[l] stays < depth_; wrap-around is compare-and-subtract, not a
  // hardware-division modulo (once per flit move in the hot loop).
  [[nodiscard]] std::size_t wrap(std::size_t i) const {
    return i >= depth_ ? i - depth_ : i;
  }

  std::size_t depth_;
  std::vector<Flit> slots_;
  std::vector<std::uint32_t> head_;
  std::vector<std::uint32_t> count_;
  std::vector<std::uint8_t> busy_;
  std::vector<std::uint8_t> tail_in_;
  std::vector<std::uint8_t> moved_;
  std::vector<std::uint8_t> out_port_;
  std::vector<std::int32_t> downstream_;
  std::size_t occupied_ = 0;
};

/// Reusable cross-run allocation arena for the payload pools. A sweep
/// worker owns one workspace and passes it to every Engine::run it
/// executes, so million-packet grids re-shape (and usually just clear)
/// the same pool allocations instead of re-allocating them per grid
/// point. Pools are fully re-initialized per run, so results are
/// byte-identical with or without a workspace.
class SimWorkspace {
 public:
  /// The store-and-forward FIFO pool, reset to (queues, capacity).
  [[nodiscard]] PacketRing& packet_ring(std::size_t queues,
                                        std::size_t capacity) {
    ring_.reset(queues, capacity);
    return ring_;
  }

  /// The wormhole virtual-channel pool, reset to (lane_count, depth).
  [[nodiscard]] LanePool& lane_pool(std::size_t lane_count,
                                    std::size_t depth) {
    pool_.reset(lane_count, depth);
    return pool_;
  }

  /// The credit-flow-control ledger, reset to (links, capacity,
  /// latency). Like the pools, fully re-initialized per run.
  [[nodiscard]] CreditLedger& credit_ledger(std::size_t links,
                                            std::uint32_t capacity,
                                            std::uint64_t latency) {
    ledger_.reset(links, capacity, latency);
    return ledger_;
  }

 private:
  PacketRing ring_{0, 1};
  LanePool pool_{0, 1};
  CreditLedger ledger_;
};

/// The per-run state shared by both switching policies: geometry, RNG
/// streams, arbiters, traffic, result counters and their finalization.
class FabricCore {
 public:
  /// \p arbiter_candidates is the candidate-ring size of every
  /// output-port arbiter (radix input slots for store-and-forward,
  /// radix * lanes for wormhole). \p eject_candidates, when nonzero,
  /// additionally allocates one ejection arbiter per *terminal* with
  /// that ring size — the multipath policies arbitrate ejection per
  /// logical terminal over planes * radix (* lanes) physical buffers,
  /// which the per-(cell, port) stage arbiters cannot express. \p config
  /// must already be validated.
  FabricCore(const Engine& engine, Pattern pattern, const SimConfig& config,
             unsigned arbiter_candidates, unsigned eject_candidates = 0);

  [[nodiscard]] const Engine& engine() const noexcept { return engine_; }
  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }
  [[nodiscard]] const min::FlatWiring& wiring() const noexcept {
    return engine_.wiring();
  }

  [[nodiscard]] int stages() const noexcept { return stages_; }
  [[nodiscard]] std::uint32_t cells() const noexcept { return cells_; }
  [[nodiscard]] std::uint64_t terminals() const noexcept {
    return terminals_;
  }
  /// Input ports (= input slots = terminal links) per stage:
  /// radix * cells.
  [[nodiscard]] std::size_t ports() const noexcept { return ports_; }
  [[nodiscard]] std::uint64_t total_cycles() const noexcept {
    return config_.warmup_cycles + config_.measure_cycles;
  }

  /// The arbiter of output port / candidate ring \p i at stage \p s.
  [[nodiscard]] RoundRobin& arbiter(int s, std::size_t i) {
    return arbiters_[static_cast<std::size_t>(s) * ports_ + i];
  }

  /// The ejection arbiter of terminal \p t (only allocated when the
  /// constructor was given a nonzero eject_candidates ring size).
  [[nodiscard]] RoundRobin& eject_arbiter(std::size_t t) {
    return eject_arbiters_[t];
  }

  // --- The workload seam (workload/workload.hpp). Injection decisions
  // --- live behind WorkloadSource; the open-loop SyntheticSource is
  // --- devirtualized through a concrete fast-path pointer, so the
  // --- historic hot loops pay one predicted branch per call, not a
  // --- virtual dispatch. Every call below runs in the serial (worker-0)
  // --- phase of the cycle.

  /// Does terminal \p t want to inject this cycle? (Replaces the
  /// historic `terminal_active(t) && gate()` pair, draw for draw.)
  [[nodiscard]] bool attempt(std::uint64_t cycle, std::uint32_t t) {
    if (synthetic_ != nullptr) [[likely]] {
      return synthetic_->attempt_fast(t);
    }
    return workload_->attempt(cycle, t);
  }

  /// Destination + tag of the packet terminal \p t would inject. No
  /// source state changes yet — the policy may still refuse the packet.
  [[nodiscard]] workload::Injection draw(std::uint64_t cycle,
                                         std::uint32_t t) {
    if (synthetic_ != nullptr) [[likely]] {
      return synthetic_->draw_fast(t);
    }
    return workload_->draw(cycle, t);
  }

  /// The policy accepted the drawn packet: commit source state and, when
  /// recording, capture the injection into the trace.
  void commit(std::uint64_t cycle, std::uint32_t t,
              const workload::Injection& injection) {
    if (recording_) [[unlikely]] {
      recorded_.push_back({cycle, t, injection.dest,
                           static_cast<std::uint32_t>(config_.packet_length),
                           injection.tag, 0});
    }
    if (synthetic_ == nullptr) workload_->commit(cycle, t, injection);
  }

  /// Advance per-cycle workload state (bursty modulator, all-to-all
  /// phase, closed-loop measurement flag); runs once per cycle before
  /// injection. (Replaces the historic advance_burst().)
  void workload_tick(std::uint64_t cycle, bool measuring) {
    if (synthetic_ != nullptr) [[likely]] {
      synthetic_->tick_fast();
      return;
    }
    workload_->tick(cycle, measuring);
  }

  /// Does the workload need delivery callbacks? Cached so the policies'
  /// ejection paths pay one predictable branch when it is off.
  [[nodiscard]] bool wants_deliveries() const noexcept {
    return wants_deliveries_;
  }

  /// Feed one delivered packet back into the workload (closed-loop
  /// replies depend on it). Call for every tail ejection — warmup
  /// included — in serial ejection order.
  void workload_delivered(const workload::Delivery& delivery) {
    workload_->deliver(delivery);
  }

  /// Route closed-loop request→reply latencies into the observability
  /// flow recorder's service channel (kObs + flow_stats runs only).
  void set_service_recorder(obs::FlowRecorder* recorder) {
    workload_->set_service_recorder(recorder);
  }

  /// delivered += 1 plus the latency statistics, shared by both
  /// disciplines' ejection paths.
  void record_packet_delivered(double cycles_in_flight) {
    ++result.delivered;
    result.latency.add(cycles_in_flight);
    result.latency_histogram.add(cycles_in_flight);
  }

  /// Derive throughput, acceptance and link utilization from the
  /// accumulated counters; \p link_counter is the policy's busy-link
  /// (store-and-forward) or flit-hop (wormhole) total.
  void finalize(std::uint64_t link_counter);

  /// Counters accumulated by the policy during the run.
  SimResult result;

 private:
  const Engine& engine_;
  const SimConfig& config_;
  int stages_;
  std::uint32_t cells_;
  std::uint64_t terminals_;
  std::size_t ports_;
  /// Open-loop runs store the SyntheticSource INLINE so the per-attempt
  /// gate state (RNG cursor, rate) lives in FabricCore's own cache
  /// lines — the locality the pre-seam direct members had; other kinds
  /// are heap-owned. FabricCore is a stack local for the duration of a
  /// run and never moves, so the aliasing pointers below stay valid.
  std::optional<workload::SyntheticSource> synthetic_store_;
  std::unique_ptr<workload::WorkloadSource> owned_workload_;
  /// The run's workload source (never null after construction; points
  /// at synthetic_store_ or owned_workload_).
  workload::WorkloadSource* workload_ = nullptr;
  /// Devirtualization fast path: non-null exactly when the workload is
  /// the open-loop SyntheticSource (aliases workload_).
  workload::SyntheticSource* synthetic_ = nullptr;
  bool wants_deliveries_ = false;
  bool recording_ = false;
  /// Accepted injections captured when SimConfig::workload.record is set
  /// (moved into SimResult::workload_trace by finalize()).
  std::vector<workload::TraceRecord> recorded_;
  std::vector<RoundRobin> arbiters_;
  std::vector<RoundRobin> eject_arbiters_;  ///< per terminal; multipath only
};

/// The common cycle loop. A Policy implements the four phases plus the
/// end-of-run accessors:
///   void eject(std::uint64_t cycle, bool measuring);
///   void advance_stage(int s, std::uint64_t cycle, bool measuring);
///   void inject(std::uint64_t cycle, bool measuring);
///   void sample(std::uint64_t cycle);       // measured cycles only
///   std::uint64_t buffered_flits() const;   // still in the network
///   std::uint64_t link_counter() const;     // feeds link_utilization
template <class Policy>
SimResult run_switched(FabricCore& core, Policy& policy) {
  const std::uint64_t warmup = core.config().warmup_cycles;
  const std::uint64_t total = core.total_cycles();
  for (std::uint64_t cycle = 0; cycle < total; ++cycle) {
    const bool measuring = cycle >= warmup;
    policy.eject(cycle, measuring);
    for (int s = core.stages() - 2; s >= 0; --s) {
      policy.advance_stage(s, cycle, measuring);
    }
    core.workload_tick(cycle, measuring);
    policy.inject(cycle, measuring);
    if (measuring) policy.sample(cycle);
  }
  core.result.flits_in_flight = policy.buffered_flits();
  core.finalize(policy.link_counter());
  return core.result;
}

}  // namespace mineq::sim
