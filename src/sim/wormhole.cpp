#include "sim/wormhole.hpp"

#include <deque>
#include <stdexcept>
#include <vector>

#include "sim/lanes.hpp"
#include "util/rng.hpp"

namespace mineq::sim {

SimResult WormholeSimulator::run(Pattern pattern,
                                 const SimConfig& config) const {
  return run(pattern, config, EjectObserver());
}

SimResult WormholeSimulator::run(Pattern pattern, const SimConfig& config,
                                 const EjectObserver& observer) const {
  if (config.injection_rate < 0.0 || config.injection_rate > 1.0) {
    throw std::invalid_argument(
        "WormholeSimulator::run: injection rate outside [0,1]");
  }
  if (config.packet_length == 0 || config.lanes == 0 ||
      config.lane_depth == 0) {
    throw std::invalid_argument(
        "WormholeSimulator::run: packet_length, lanes and lane_depth must "
        "be positive");
  }
  const min::MIDigraph& network = engine_.network();
  const int n = network.stages();
  const std::uint32_t cells = network.cells_per_stage();
  const std::uint64_t terminals = std::uint64_t{2} * cells;
  const std::size_t lanes = config.lanes;
  const std::size_t length = config.packet_length;

  util::SplitMix64 rng(config.seed);
  TrafficSource source(pattern, n, rng.split(0));
  util::SplitMix64 inject_rng = rng.split(1);
  // Injection gate: inject with probability rate (16-bit fixed point).
  const auto rate_num =
      static_cast<std::uint64_t>(config.injection_rate * 65536.0);

  // buffers[s][2*cell + slot]: multi-lane input buffer of that port.
  std::vector<std::vector<LaneBuffer>> buffers(static_cast<std::size_t>(n));
  for (auto& stage : buffers) {
    stage.reserve(std::size_t{2} * cells);
    for (std::size_t i = 0; i < std::size_t{2} * cells; ++i) {
      stage.emplace_back(lanes, config.lane_depth);
    }
  }
  // One arbiter per (stage, cell, output port) over the 2*lanes candidate
  // lanes of the two input slots (candidate = slot * lanes + lane). The
  // last stage arbitrates the two terminal ejection ports the same way.
  std::vector<std::vector<RoundRobin>> arbiters(
      static_cast<std::size_t>(n),
      std::vector<RoundRobin>(std::size_t{2} * cells,
                              RoundRobin(static_cast<unsigned>(2 * lanes))));

  // Per-terminal injection state: flits of the packet currently being
  // serialized into the first stage, and the lane that worm claimed.
  struct SourceState {
    std::deque<Flit> pending;
    int lane = -1;
  };
  std::vector<SourceState> sources(terminals);
  std::uint32_t next_packet_id = 0;

  SimResult result;
  std::uint64_t link_flit_hops = 0;  // inter-stage flit moves, measured
  const double total_flit_slots =
      static_cast<double>(n) * static_cast<double>(terminals) *
      static_cast<double>(lanes) * static_cast<double>(config.lane_depth);
  const std::uint64_t total_cycles =
      config.warmup_cycles + config.measure_cycles;

  // Count stalled worms of one stage and reset per-cycle movement flags.
  // Called right after the stage had its switching (or ejection)
  // opportunity, before upstream pushes refill it.
  const auto account_stage = [&](int s, bool measuring) {
    for (LaneBuffer& buffer : buffers[static_cast<std::size_t>(s)]) {
      for (std::size_t i = 0; i < buffer.lane_count(); ++i) {
        Lane& lane = buffer.lane(i);
        if (measuring && !lane.empty() && !lane.moved()) {
          ++result.hol_blocking_cycles;
        }
        lane.clear_moved();
      }
    }
  };

  for (std::uint64_t cycle = 0; cycle < total_cycles; ++cycle) {
    const bool measuring = cycle >= config.warmup_cycles;

    // 1. Eject at the last stage: one flit per terminal port per cycle,
    // round-robin over the 2*lanes candidate lanes.
    for (std::uint32_t x = 0; x < cells; ++x) {
      for (unsigned port = 0; port < 2; ++port) {
        RoundRobin& arb =
            arbiters[static_cast<std::size_t>(n - 1)][2 * x + port];
        for (unsigned probe = 0; probe < arb.size(); ++probe) {
          const unsigned c = arb.candidate(probe);
          Lane& lane = buffers[static_cast<std::size_t>(n - 1)]
                              [2 * x + c / lanes]
                                  .lane(c % lanes);
          if (lane.empty() || lane.out_port() != port) continue;
          const Flit flit = lane.pop();
          arb.grant(c);
          if (observer) observer(flit, cycle);
          if (measuring && flit.inject_cycle >= config.warmup_cycles) {
            ++result.flits_delivered;
            if (flit.is_tail()) {
              ++result.delivered;
              const auto cycles_in_flight =
                  static_cast<double>(cycle - flit.inject_cycle + 1);
              result.latency.add(cycles_in_flight);
              result.latency_histogram.add(cycles_in_flight);
            }
          }
          break;
        }
      }
    }
    account_stage(n - 1, measuring);

    // 2. Switch stages from last-1 down to 0 so a flit moves at most one
    // hop per cycle. One flit per output link per cycle.
    for (int s = n - 2; s >= 0; --s) {
      const min::Connection& conn = network.connection(s);
      for (std::uint32_t x = 0; x < cells; ++x) {
        for (unsigned port = 0; port < 2; ++port) {
          RoundRobin& arb = arbiters[static_cast<std::size_t>(s)][2 * x + port];
          for (unsigned probe = 0; probe < arb.size(); ++probe) {
            const unsigned c = arb.candidate(probe);
            Lane& lane = buffers[static_cast<std::size_t>(s)]
                                [2 * x + c / lanes]
                                    .lane(c % lanes);
            if (lane.empty() || lane.out_port() != port) continue;
            const std::uint32_t child =
                port == 0 ? conn.f_table()[x] : conn.g_table()[x];
            const unsigned child_slot =
                engine_.wiring().slot_of[static_cast<std::size_t>(s)][x][port];
            LaneBuffer& target =
                buffers[static_cast<std::size_t>(s + 1)]
                       [2 * child + child_slot];
            if (lane.front().is_head()) {
              // The head claims an idle downstream lane.
              const int down = target.find_idle_lane();
              if (down < 0) continue;  // blocked: no free lane
              const Flit flit = lane.pop();
              if (!flit.is_tail()) lane.set_downstream(down);
              target.lane(static_cast<std::size_t>(down))
                  .accept_head(flit,
                               engine_.route_port(s + 1, flit.dest_terminal));
            } else {
              // Body/tail flits follow through the reserved lane.
              Lane& down = target.lane(
                  static_cast<std::size_t>(lane.downstream()));
              if (!down.has_space()) continue;  // blocked: downstream full
              down.accept(lane.pop());
            }
            arb.grant(c);
            if (measuring) ++link_flit_hops;
            break;
          }
        }
      }
      account_stage(s, measuring);
    }

    // 3. Inject at the first stage: terminal t feeds slot t&1 of cell
    // t>>1, at most one flit per cycle. A terminal mid-packet keeps
    // serializing into the claimed lane; an idle terminal draws the
    // Bernoulli gate and its head needs an idle lane or the packet is
    // refused at the source.
    for (std::uint64_t t = 0; t < terminals; ++t) {
      SourceState& src = sources[t];
      LaneBuffer& buffer = buffers[0][t];
      if (!src.pending.empty()) {
        Lane& lane = buffer.lane(static_cast<std::size_t>(src.lane));
        if (lane.has_space()) {
          lane.accept(src.pending.front());
          src.pending.pop_front();
          if (measuring) ++result.flits_injected;
        }
        continue;  // the source link is busy with the current packet
      }
      if ((inject_rng.next() & 0xFFFF) >= rate_num) continue;
      if (measuring) ++result.offered;
      const int lane_index = buffer.find_idle_lane();
      if (lane_index < 0) continue;  // refused at source
      const auto dest = source.destination(static_cast<std::uint32_t>(t));
      const std::uint32_t id = next_packet_id++;
      buffer.lane(static_cast<std::size_t>(lane_index))
          .accept_head(make_flit(id, dest, cycle, 0, length),
                       engine_.route_port(0, dest));
      for (std::size_t i = 1; i < length; ++i) {
        src.pending.push_back(make_flit(id, dest, cycle, i, length));
      }
      src.lane = lane_index;
      if (measuring) {
        ++result.injected;
        ++result.flits_injected;
      }
    }

    // 4. Sample buffer occupancy.
    if (measuring) {
      std::size_t occupied = 0;
      for (const auto& stage : buffers) {
        for (const LaneBuffer& buffer : stage) {
          occupied += buffer.occupied_flits();
        }
      }
      result.lane_occupancy.add(static_cast<double>(occupied) /
                                total_flit_slots);
    }
  }

  for (const auto& stage : buffers) {
    for (const LaneBuffer& buffer : stage) {
      result.flits_in_flight += buffer.occupied_flits();
    }
  }
  if (config.measure_cycles > 0) {
    result.throughput =
        static_cast<double>(result.delivered) /
        (static_cast<double>(config.measure_cycles) *
         static_cast<double>(terminals));
    result.link_utilization =
        static_cast<double>(link_flit_hops) /
        (static_cast<double>(n - 1) * static_cast<double>(terminals) *
         static_cast<double>(config.measure_cycles));
  }
  result.acceptance =
      result.offered == 0
          ? 1.0
          : static_cast<double>(result.injected) /
                static_cast<double>(result.offered);
  return result;
}

}  // namespace mineq::sim
