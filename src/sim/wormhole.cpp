#include "sim/wormhole.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <vector>

#include "multipath/looping.hpp"
#include "obs/observer.hpp"
#include "sim/fabric.hpp"
#include "sim/multipath_select.hpp"
#include "sim/shard.hpp"

namespace mineq::sim {

namespace {

/// The wormhole discipline as a policy over FabricCore: packets decompose
/// into flits that pipeline through the per-port virtual-channel lanes of
/// a LanePool. The head flit claims an idle downstream lane and advances
/// as soon as it wins output-port arbitration; body and tail flits follow
/// through the reserved lane; the tail releases each lane as it passes.
/// One flit crosses each link per cycle.
///
/// \tparam kFaulted compile-time fault switch: the false instantiation
/// is the byte-identical unmasked fast path; the true instantiation
/// resolves every worm's out-port through the fault::FaultedWiring view
/// when its head is accepted — following the schedule while its arc
/// survives, detouring through the next surviving port otherwise, and
/// marking the lane *dropping* when the switch is dead so the worm (and
/// every flit still following its reservation) drains into the
/// dropped-at-fault counters instead of wedging the buffer.
///
/// \tparam kBinary compile-time radix-2 switch: radix() folds to the
/// literal 2 so the binary instantiations keep the historic shift/mask
/// code generation (see StoreAndForwardPolicy in engine.cpp).
///
/// \tparam kCredits compile-time flow-control switch: the false
/// instantiation keeps the idealized handshake (senders probe downstream
/// lane occupancy directly) byte for byte; the true instantiation runs
/// per-lane credits over a CreditLedger — one credit per downstream lane
/// slot, consumed per flit accepted, returned per flit popped with the
/// configured latency — plus the pluggable output-port arbitration. With
/// a non-empty SL->VL map, worms travel in their fixed virtual lane
/// vl_of_sl(sl) at every hop instead of claiming the first idle lane.
///
/// \tparam kMultiPath compile-time multipath switch: terminals are
/// *logical* (the engine's MultiPathWiring view), a head resolves its
/// next out-port by selecting within the fabric's equivalent-path group
/// (free Benes connection, dilation group, injection plane) under the
/// configured PathPolicy, and ejection arbitrates the planes * radix *
/// lanes candidate lanes of each logical terminal. General-radix and
/// credit-less: the binary and credit specializations never combine
/// with it.
///
/// \tparam kObs compile-time observability switch — same contract as
/// StoreAndForwardPolicy (engine.cpp): the false instantiation carries
/// no telemetry code at all, the true one feeds an obs::Observer with
/// per-stage probe counters (per-flit hops here), trace events keyed by
/// (cycle, intra-cycle phase), flow records at tail ejection, and a
/// StallCause per blocked lane-cycle attributed in the same account
/// scan that counts hol_blocking_cycles.
template <bool kFaulted, bool kBinary, bool kCredits, bool kMultiPath,
          bool kObs>
class WormholePolicy {
  static_assert(!(kMultiPath && (kBinary || kCredits)),
                "multipath instantiations are general-radix and credit-less");

 public:
  WormholePolicy(FabricCore& core, const EjectObserver& observer,
                 SimWorkspace& workspace,
                 [[maybe_unused]] const fault::FaultMask* mask,
                 [[maybe_unused]] obs::Observer* obs,
                 [[maybe_unused]] const multipath::LoopingSettings* looping =
                     nullptr)
      : core_(core),
        observer_(observer),
        radix_(static_cast<unsigned>(core.wiring().radix())),
        lanes_(core.config().lanes),
        length_(core.config().packet_length),
        pool_(workspace.lane_pool(
            static_cast<std::size_t>(core.stages()) * core.ports() * lanes_,
            core.config().lane_depth)),
        sources_(core.terminals()),
        // Physical lane slots: ports per stage (== terminals on a
        // unipath fabric, wider on a multipath one).
        total_flit_slots_(static_cast<double>(core.stages()) *
                          static_cast<double>(core.ports()) *
                          static_cast<double>(lanes_) *
                          static_cast<double>(core.config().lane_depth)) {
    if constexpr (kMultiPath) {
      const Engine& engine = core.engine();
      lradix_ = static_cast<unsigned>(engine.logical_radix());
      lcells_ = engine.logical_cells();
      planes_ = static_cast<unsigned>(engine.planes());
      dilation_ = static_cast<unsigned>(engine.dilation());
      path_policy_ = core.config().path_policy;
      looping_ = looping;
      free_stage_ = engine.fabric().free_stage().data();
      core.result.paths_available = engine.fabric().paths_available();
    }
    if constexpr (kFaulted) {
      faulted_ = fault::FaultedWiring(core.wiring(), *mask);
      dropping_.assign(
          static_cast<std::size_t>(core.stages()) * core.ports() * lanes_, 0);
    }
    if constexpr (kCredits) {
      credit_config_ = &core.config().credits;
      service_levels_ = credit_config_->service_levels();
      credits_ = &workspace.credit_ledger(
          static_cast<std::size_t>(core.stages()) * core.ports() * lanes_,
          static_cast<std::uint32_t>(core.config().lane_depth),
          credit_config_->return_latency);
      if (credit_config_->arbitration == ArbitrationPolicy::kWeighted) {
        weighted_.reset(
            static_cast<std::size_t>(core.stages()) * core.ports(),
            static_cast<unsigned>(static_cast<std::size_t>(radix()) *
                                  lanes_));
      }
      core.result.sl_latency.resize(service_levels_);
    }
    if constexpr (kObs) {
      obs_ = obs;
      // One StallCause slot per physical lane; advance kernels re-zero
      // exactly the source-stage ranges they probe each cycle (last-stage
      // lanes only ever stall on lost eject arbitration, cause 0).
      stall_cause_.assign(
          static_cast<std::size_t>(core.stages()) * core.ports() * lanes_, 0);
    }
  }

  /// Eject at the last stage: one flit per terminal port per cycle,
  /// round-robin over the radix*lanes candidate lanes. Ejection links are
  /// terminal attachments, not wiring arcs, so they cannot fault.
  void eject(std::uint64_t cycle, bool measuring) {
    if constexpr (kMultiPath) {
      eject_multipath_impl<false>(cycle, measuring, 0, lcells_, nullptr);
      return;
    }
    if constexpr (kCredits) credits_->deliver(cycle);
    eject_impl<false>(cycle, measuring, 0, core_.cells(), nullptr);
  }

  /// The eject kernel over cells [x0, x1). Sharded (kShard), every
  /// order-sensitive sink — the observer call, the Welford latency adds,
  /// the per-SL latency — defers into the worker's event buffer for the
  /// serial-phase replay; order-independent counters accumulate into the
  /// worker's partial.
  template <bool kShard>
  void eject_impl(std::uint64_t cycle, bool measuring, std::uint32_t x0,
                  std::uint32_t x1, ShardWorker* wk) {
    const int last = core_.stages() - 1;
    const unsigned r = radix();
    SimResult& res = shard_result<kShard>(wk);
    const unsigned candidates =
        static_cast<unsigned>(static_cast<std::size_t>(r) * lanes_);
    for (std::uint32_t x = x0; x < x1; ++x) {
      for (unsigned port = 0; port < r; ++port) {
        // Strict priority scans the ready candidates first: only a worm
        // of the highest ready weight class may win this cycle.
        [[maybe_unused]] unsigned need_weight = 0;
        if constexpr (kCredits) {
          if (credit_config_->arbitration == ArbitrationPolicy::kPriority) {
            for (unsigned c = 0; c < candidates; ++c) {
              const std::size_t l =
                  lane_index(last, x * r + c / lanes_, c % lanes_);
              if (pool_.empty(l) || pool_.out_port(l) != port) continue;
              need_weight = std::max(need_weight, flit_weight(l));
            }
          }
        }
        for (unsigned probe = 0; probe < candidates; ++probe) {
          const unsigned c = arb_candidate(last, x * r + port, probe);
          const std::size_t l =
              lane_index(last, x * r + c / lanes_, c % lanes_);
          if (pool_.empty(l) || pool_.out_port(l) != port) continue;
          [[maybe_unused]] unsigned vl = 0;
          if constexpr (kCredits) {
            vl = credit_config_->vl_of_sl(
                static_cast<unsigned>(pool_.front(l).sl));
            if (credit_config_->arbitration ==
                    ArbitrationPolicy::kPriority &&
                credit_config_->weight(vl) != need_weight) {
              continue;
            }
          }
          const Flit flit = shard_pop<kShard>(l, wk);
          if constexpr (kCredits) credits_->give_back(l, cycle);
          arb_grant(last, x * r + port, c, vl);
          const bool counted =
              measuring && flit.inject_cycle >= core_.config().warmup_cycles;
          if (counted) ++res.flits_delivered;
          if constexpr (kObs) {
            if (measuring) {
              ++obs_log<kShard>(wk).hops[static_cast<std::size_t>(last)];
            }
            if (flit.inject_cycle >= core_.config().warmup_cycles &&
                obs_->traced(static_cast<std::uint32_t>(flit.src),
                             flit.inject_cycle)) {
              // Follow the head: its eject closes the last stage slice;
              // the tail's eject completes the packet.
              if (flit.is_head()) {
                trace_push<kShard>(wk, cycle, flit.inject_cycle,
                                   static_cast<std::uint32_t>(flit.src),
                                   flit.dest_terminal,
                                   obs::TraceEventKind::kStageEnd,
                                   static_cast<std::uint8_t>(last), 0,
                                   kEjectPhase);
              }
              if (flit.is_tail()) {
                trace_push<kShard>(wk, cycle, flit.inject_cycle,
                                   static_cast<std::uint32_t>(flit.src),
                                   flit.dest_terminal,
                                   obs::TraceEventKind::kPacketEnd, 0, 0,
                                   kEjectPhase);
              }
            }
          }
          if constexpr (kFaulted) {
            // A detoured worm ejects at whatever terminal the surviving
            // route reached; count the miss.
            if (counted && flit.is_tail() &&
                (flit.dest_terminal / r) != x) {
              ++res.packets_misdelivered;
            }
          }
          if (flit.is_tail() && core_.wants_deliveries()) {
            // Tail ejection completes the packet: feed the workload
            // source, warmup included (see workload::Delivery). Built
            // here because the ejection terminal is not derivable from
            // the flit alone on faulted detours.
            const workload::Delivery delivery{
                static_cast<std::uint32_t>(flit.src), flit.dest_terminal,
                x * r + port, flit.inject_cycle, cycle + 1,
                static_cast<std::uint8_t>(flit.tag), counted};
            if constexpr (kShard) {
              wk->wl_events.push_back(delivery);
            } else {
              core_.workload_delivered(delivery);
            }
          }
          if constexpr (kShard) {
            // Defer for the replay: every flit if an observer watches,
            // else just the tails that complete a measured delivery.
            if (observer_ || (counted && flit.is_tail())) {
              wk->wh_events.push_back(flit);
            }
          } else {
            if (observer_) observer_(flit, cycle);
            if (counted && flit.is_tail()) {
              const double latency =
                  static_cast<double>(cycle - flit.inject_cycle + 1);
              core_.record_packet_delivered(latency);
              if constexpr (kCredits) {
                core_.result.sl_latency[static_cast<unsigned>(flit.sl)].add(
                    latency);
              }
              if constexpr (kObs) {
                if (obs_->flows_on()) {
                  obs_->record_flow(static_cast<std::uint32_t>(flit.src),
                                    flit.dest_terminal,
                                    static_cast<unsigned>(flit.sl), latency);
                }
              }
            }
          }
          break;
        }
      }
    }
    const std::size_t first = lane_index(last, 0, 0);
    account_stage<kShard>(cycle, measuring,
                          first + static_cast<std::size_t>(x0) * r * lanes_,
                          first + static_cast<std::size_t>(x1) * r * lanes_,
                          wk, last, eject_stall_phase(0));
  }

  /// Advance one switch stage: one flit per output link per cycle; heads
  /// claim an idle downstream lane, body/tail flits follow the
  /// reservation. The next stage's routing-schedule reads (and, faulted,
  /// the mask probes) are hoisted to per-stage registers — see
  /// StoreAndForwardPolicy::advance_stage for the aliasing rationale.
  void advance_stage(int s, [[maybe_unused]] std::uint64_t cycle,
                     bool measuring) {
    if constexpr (kMultiPath) {
      advance_stage_multipath_impl<false>(s, cycle, measuring, 0,
                                          core_.cells(), nullptr);
      return;
    }
    advance_stage_impl<false>(s, cycle, measuring, 0, core_.cells(), nullptr);
  }

  /// The advance kernel over cells [x0, x1) of stage \p s. Safe to shard
  /// by cell ranges: a worker pushes only into stage-(s+1) lanes reached
  /// through its own cells' arcs, and the perfect-matching property makes
  /// each of those lanes single-writer for the whole phase.
  template <bool kShard>
  void advance_stage_impl(int s, [[maybe_unused]] std::uint64_t cycle,
                          bool measuring, std::uint32_t x0, std::uint32_t x1,
                          ShardWorker* wk) {
    const unsigned r = radix();
    [[maybe_unused]] SimResult& res = shard_result<kShard>(wk);
    const auto down = core_.wiring().down_stage(s);
    // Routing constants for the target stage s + 1, where an advancing
    // head resolves its next out-port (ejection port when s + 1 is the
    // last stage).
    const bool target_ejects = s + 2 == core_.stages();
    unsigned bit_shift = 0;
    unsigned bit_invert = 0;
    std::uint32_t digit_scale = 1;
    const std::uint32_t* port_of_value = nullptr;
    if (!target_ejects) {
      if constexpr (kBinary) {
        bit_shift = static_cast<unsigned>(
            core_.engine().schedule().bit[static_cast<std::size_t>(s + 1)]);
        bit_invert = core_.engine()
                         .schedule()
                         .invert[static_cast<std::size_t>(s + 1)];
      } else {
        digit_scale = core_.engine().route_digit_scale(s + 1);
        port_of_value = core_.engine()
                            .digit_schedule()
                            .port_of_value[static_cast<std::size_t>(s + 1)]
                            .data();
      }
    }
    const auto route_next = [&](std::uint32_t dest) -> unsigned {
      if (target_ejects) return dest % r;
      if constexpr (kBinary) {
        return (((dest >> 1) >> bit_shift) & 1U) ^ bit_invert;
      } else {
        return port_of_value[((dest / r) / digit_scale) % r];
      }
    };
    // Faulted: arc bit index = stage base + the record's array offset
    // (FaultMask::arc_index's layout), with the policy's folded radix.
    [[maybe_unused]] std::size_t arc_base = 0;
    [[maybe_unused]] const fault::FaultMask* mask = nullptr;
    if constexpr (kFaulted) {
      drain_dropping<kShard>(s, cycle, measuring, x0, x1, wk);
      arc_base = static_cast<std::size_t>(s) * core_.ports();
      mask = &faulted_.mask();
    }
    if constexpr (kObs) {
      // Stall causes default to lost-arbitration; the probe loop below
      // overwrites the specific causes it detects.
      const std::size_t sfirst = lane_index(s, 0, 0);
      std::fill(
          stall_cause_.begin() + sfirst + static_cast<std::size_t>(x0) * r *
                                              lanes_,
          stall_cause_.begin() + sfirst + static_cast<std::size_t>(x1) * r *
                                              lanes_,
          0);
    }
    const unsigned candidates =
        static_cast<unsigned>(static_cast<std::size_t>(r) * lanes_);
    for (std::uint32_t x = x0; x < x1; ++x) {
      for (unsigned port = 0; port < r; ++port) {
        if constexpr (kFaulted) {
          // A dead link transmits nothing (no worm ever resolves its
          // out-port onto a masked arc, so this is just a fast skip).
          if (mask->faulted_index(arc_base + x * r + port)) continue;
        }
        // Strict priority scans the ready candidates first: only a worm
        // of the highest ready weight class may win this cycle.
        [[maybe_unused]] unsigned need_weight = 0;
        if constexpr (kCredits) {
          if (credit_config_->arbitration == ArbitrationPolicy::kPriority) {
            for (unsigned c = 0; c < candidates; ++c) {
              const std::size_t l =
                  lane_index(s, x * r + c / lanes_, c % lanes_);
              if (pool_.empty(l) || pool_.out_port(l) != port) continue;
              need_weight = std::max(need_weight, flit_weight(l));
            }
          }
        }
        for (unsigned probe = 0; probe < candidates; ++probe) {
          const unsigned c = arb_candidate(s, x * r + port, probe);
          const std::size_t l = lane_index(s, x * r + c / lanes_, c % lanes_);
          if (pool_.empty(l) || pool_.out_port(l) != port) continue;
          [[maybe_unused]] unsigned vl = 0;
          if constexpr (kCredits) {
            vl = credit_config_->vl_of_sl(
                static_cast<unsigned>(pool_.front(l).sl));
            if (credit_config_->arbitration ==
                    ArbitrationPolicy::kPriority &&
                credit_config_->weight(vl) != need_weight) {
              continue;
            }
          }
          // One packed read gives the child cell and its input slot —
          // the record value r * child + slot IS the downstream
          // port-slot index.
          const std::uint32_t record = down[x * r + port];
          const std::size_t target_first = lane_index(s + 1, record, 0);
          if (pool_.front(l).is_head()) {
            // The head claims a downstream lane: its fixed virtual lane
            // when an SL->VL map is configured, the first idle lane
            // otherwise.
            int down_lane;
            if constexpr (kCredits) {
              if (!credit_config_->sl_map.empty()) {
                down_lane = static_cast<int>(vl);
                if (!pool_.idle(target_first +
                                static_cast<std::size_t>(down_lane))) {
                  if constexpr (kObs) {
                    stall_cause_[l] = static_cast<std::uint8_t>(
                        obs::StallCause::kNoFreeLane);
                  }
                  continue;  // blocked: its lane is held by another worm
                }
              } else {
                down_lane = pool_.find_idle_lane(target_first, lanes_);
                if (down_lane < 0) {
                  if constexpr (kObs) {
                    stall_cause_[l] = static_cast<std::uint8_t>(
                        obs::StallCause::kNoFreeLane);
                  }
                  continue;  // blocked: no free lane
                }
              }
              if (!credits_->available(
                      target_first + static_cast<std::size_t>(down_lane))) {
                // Lane is free but its credits have not returned yet.
                if (measuring) {
                  ++res.credit_stall_cycles;
                  if constexpr (kObs) {
                    ++obs_log<kShard>(wk).credit[static_cast<std::size_t>(s)];
                  }
                }
                if constexpr (kObs) {
                  stall_cause_[l] = static_cast<std::uint8_t>(
                      obs::StallCause::kZeroCredits);
                }
                continue;
              }
            } else {
              down_lane = pool_.find_idle_lane(target_first, lanes_);
              if (down_lane < 0) {
                if constexpr (kObs) {
                  stall_cause_[l] = static_cast<std::uint8_t>(
                      obs::StallCause::kNoFreeLane);
                }
                continue;  // blocked: no free lane
              }
            }
            const Flit flit = shard_pop<kShard>(l, wk);
            if constexpr (kCredits) credits_->give_back(l, cycle);
            if (!flit.is_tail()) pool_.set_downstream(l, down_lane);
            accept_head<kShard>(
                target_first + static_cast<std::size_t>(down_lane), flit,
                s + 1, record / r, route_next(flit.dest_terminal), measuring,
                wk, cycle, advance_phase(s));
            if constexpr (kObs) {
              if (flit.inject_cycle >= core_.config().warmup_cycles &&
                  obs_->traced(static_cast<std::uint32_t>(flit.src),
                               flit.inject_cycle)) {
                trace_push<kShard>(wk, cycle, flit.inject_cycle,
                                   static_cast<std::uint32_t>(flit.src),
                                   flit.dest_terminal,
                                   obs::TraceEventKind::kStageEnd,
                                   static_cast<std::uint8_t>(s), 0,
                                   advance_phase(s));
                trace_push<kShard>(wk, cycle, flit.inject_cycle,
                                   static_cast<std::uint32_t>(flit.src),
                                   flit.dest_terminal,
                                   obs::TraceEventKind::kStageBegin,
                                   static_cast<std::uint8_t>(s + 1), 0,
                                   advance_phase(s));
              }
            }
            if constexpr (kCredits) {
              credits_->consume(target_first +
                                static_cast<std::size_t>(down_lane));
            }
          } else {
            // Body/tail flits follow through the reserved lane.
            const std::size_t down_l =
                target_first + static_cast<std::size_t>(pool_.downstream(l));
            if constexpr (kCredits) {
              if (!credits_->available(down_l)) {
                if (measuring) {
                  ++res.credit_stall_cycles;
                  if constexpr (kObs) {
                    ++obs_log<kShard>(wk).credit[static_cast<std::size_t>(s)];
                  }
                }
                if constexpr (kObs) {
                  stall_cause_[l] = static_cast<std::uint8_t>(
                      obs::StallCause::kZeroCredits);
                }
                continue;
              }
              shard_accept<kShard>(down_l, shard_pop<kShard>(l, wk), wk);
              credits_->give_back(l, cycle);
              credits_->consume(down_l);
            } else {
              if (!pool_.has_space(down_l)) {
                if constexpr (kObs) {
                  stall_cause_[l] = static_cast<std::uint8_t>(
                      obs::StallCause::kDownstreamFull);
                }
                continue;  // blocked: full
              }
              shard_accept<kShard>(down_l, shard_pop<kShard>(l, wk), wk);
            }
          }
          arb_grant(s, x * r + port, c, vl);
          if (measuring) {
            shard_link_counter<kShard>(wk);
            if constexpr (kObs) {
              ++obs_log<kShard>(wk).hops[static_cast<std::size_t>(s)];
            }
          }
          break;
        }
      }
    }
    const std::size_t first = lane_index(s, 0, 0);
    account_stage<kShard>(cycle, measuring,
                          first + static_cast<std::size_t>(x0) * r * lanes_,
                          first + static_cast<std::size_t>(x1) * r * lanes_,
                          wk, s, stall_phase(s));
  }

  /// Inject at the first stage: terminal t feeds slot t % r of cell
  /// t / r, at most one flit per cycle. A terminal mid-packet keeps
  /// serializing into the claimed lane; an idle terminal draws the
  /// Bernoulli gate (bursty-OFF terminals skip the attempt) and its head
  /// needs an idle lane or the packet is refused at the source.
  void inject(std::uint64_t cycle, bool measuring) {
    if constexpr (kMultiPath) {
      inject_multipath(cycle, measuring);
      return;
    }
    const unsigned r = radix();
    for (std::uint64_t t = 0; t < core_.terminals(); ++t) {
      SourceState& src = sources_[t];
      if (src.remaining > 0) {
        const std::size_t l =
            lane_index(0, t, static_cast<std::size_t>(src.lane));
        bool room;
        if constexpr (kCredits) {
          room = credits_->available(l);
          if (!room && measuring) {
            ++core_.result.credit_stall_cycles;
            if constexpr (kObs) ++obs_->log(0).credit[0];
          }
        } else {
          room = pool_.has_space(l);
        }
        if (room) {
          pool_.accept(l, make_flit(src.id, src.dest,
                                    static_cast<std::uint32_t>(t),
                                    src.inject_cycle, src.next_index, length_,
                                    src.sl, src.tag));
          if constexpr (kCredits) credits_->consume(l);
          ++src.next_index;
          --src.remaining;
          if (measuring) ++core_.result.flits_injected;
        }
        continue;  // the source link is busy with the current packet
      }
      if (!core_.attempt(cycle, static_cast<std::uint32_t>(t))) continue;
      if (measuring) ++core_.result.offered;
      [[maybe_unused]] unsigned sl = 0;
      int lane;
      if constexpr (kCredits) {
        sl = static_cast<unsigned>(t % service_levels_);
        if (!credit_config_->sl_map.empty()) {
          // Fixed virtual lane per service level.
          lane = static_cast<int>(credit_config_->vl_of_sl(sl));
          if (!pool_.idle(lane_index(0, t, static_cast<std::size_t>(lane)))) {
            continue;  // refused at source: its lane is held
          }
        } else {
          lane = pool_.find_idle_lane(lane_index(0, t, 0), lanes_);
          if (lane < 0) continue;  // refused at source
        }
        if (!credits_->available(
                lane_index(0, t, static_cast<std::size_t>(lane)))) {
          if (measuring) {
            ++core_.result.credit_stall_cycles;
            if constexpr (kObs) ++obs_->log(0).credit[0];
          }
          continue;  // lane free, credits not returned yet
        }
      } else {
        lane = pool_.find_idle_lane(lane_index(0, t, 0), lanes_);
        if (lane < 0) continue;  // refused at source
      }
      const workload::Injection packet =
          core_.draw(cycle, static_cast<std::uint32_t>(t));
      const std::uint32_t dest = packet.dest;
      const std::uint32_t id = next_packet_id_++;
      accept_head<false>(lane_index(0, t, static_cast<std::size_t>(lane)),
                         make_flit(id, dest, static_cast<std::uint32_t>(t),
                                   cycle, 0, length_, sl, packet.tag),
                         0, static_cast<std::uint32_t>(t / r),
                         core_.engine().route_port(0, dest), measuring,
                         nullptr, cycle, inject_phase());
      if constexpr (kCredits) {
        credits_->consume(lane_index(0, t, static_cast<std::size_t>(lane)));
      }
      core_.commit(cycle, static_cast<std::uint32_t>(t), packet);
      src.dest = dest;
      src.id = id;
      src.inject_cycle = cycle;
      src.next_index = 1;
      src.remaining = length_ - 1;
      src.lane = lane;
      src.sl = sl;
      src.tag = packet.tag;
      if (measuring) {
        ++core_.result.injected;
        ++core_.result.flits_injected;
        if constexpr (kObs) {
          // Injection is always a serial phase: log 0 is the sink in
          // both drivers, keeping trace bytes thread-count invariant.
          if (obs_->traced(static_cast<std::uint32_t>(t), cycle)) {
            trace_push<false>(nullptr, cycle, cycle,
                              static_cast<std::uint32_t>(t), dest,
                              obs::TraceEventKind::kPacketBegin, 0, 0,
                              inject_phase());
            trace_push<false>(nullptr, cycle, cycle,
                              static_cast<std::uint32_t>(t), dest,
                              obs::TraceEventKind::kStageBegin, 0, 0,
                              inject_phase());
          }
        }
      }
    }
  }

  /// Sample buffer occupancy (measured cycles only). Credit runs also
  /// audit the conservation invariant every sampled cycle — per lane,
  /// credits held + credit messages in flight + flits buffered must
  /// equal the lane depth exactly — and sample occupancy per virtual
  /// lane so weighted/priority sweeps can see the VL partition directly.
  void sample(std::uint64_t cycle) { sample_impl<false>(cycle, 0, 1, nullptr); }

  /// The sample kernel over worker \p w's share of the lane links.
  /// Sharded, the occupancy adds (order-sensitive Welford updates over
  /// the pool-wide totals) are left to shard_sample_reduce; this only
  /// audits the credit invariant and counts per-VL flits into the
  /// worker's buffers.
  template <bool kShard>
  void sample_impl([[maybe_unused]] std::uint64_t cycle,
                   [[maybe_unused]] std::size_t w,
                   [[maybe_unused]] std::size_t n,
                   [[maybe_unused]] ShardWorker* wk) {
    if constexpr (!kShard) {
      core_.result.lane_occupancy.add(
          static_cast<double>(pool_.occupied_flits()) / total_flit_slots_);
    }
    if constexpr (kCredits) {
      const std::size_t lane_links =
          static_cast<std::size_t>(core_.stages()) * core_.ports() * lanes_;
      const std::uint64_t depth = credits_->capacity();
      if constexpr (!kShard) {
        // Sharded runs defer this lazy resize to shard_sample_reduce —
        // a shared-vector write has no place in a parallel phase.
        if (core_.result.vl_occupancy.empty()) {
          core_.result.vl_occupancy.resize(lanes_);
        }
      }
      std::size_t lo = 0;
      std::size_t hi = lane_links;
      std::vector<std::uint64_t>* vl_flits = &vl_flits_;
      if constexpr (kShard) {
        const auto range = shard_range(lane_links, w, n);
        lo = range.first;
        hi = range.second;
        vl_flits = &wk->vl_flits;
      }
      SimResult& res = shard_result<kShard>(wk);
      vl_flits->assign(lanes_, 0);
      for (std::size_t l = lo; l < hi; ++l) {
        const std::uint64_t held = credits_->credits(l);
        if (held > depth ||
            held + credits_->in_flight(l) + pool_.count(l) != depth) {
          ++res.credit_violations;
        }
        (*vl_flits)[l % lanes_] += pool_.count(l);
      }
      if constexpr (!kShard) {
        const double slots_per_vl = total_flit_slots_ /
                                    static_cast<double>(lanes_);
        for (std::size_t vl = 0; vl < lanes_; ++vl) {
          core_.result.vl_occupancy[vl].add(
              static_cast<double>(vl_flits_[vl]) / slots_per_vl);
        }
      }
    }
    if constexpr (kObs && !kShard) {
      if (obs_->want_probe(cycle)) commit_probe_window(cycle);
    }
  }

  [[nodiscard]] std::uint64_t buffered_flits() const {
    return static_cast<std::uint64_t>(
        static_cast<std::int64_t>(pool_.occupied_flits()) +
        shard_pool_delta_);
  }
  [[nodiscard]] std::uint64_t link_counter() const { return link_flit_hops_; }

  // ------------------------------------------------ sharded-driver seam
  // (see run_switched_sharded in shard.hpp for the phase schedule)

  /// Credit runs harvest the return ring as a dedicated phase: give_back
  /// writes the very slot deliver reads for the same cycle, so harvest
  /// must finish fabric-wide before any kernel returns a credit.
  static constexpr bool kShardNeedsDeliver = kCredits;

  void shard_deliver(std::uint64_t cycle, std::size_t w, std::size_t n) {
    if constexpr (kCredits) {
      const std::size_t lane_links =
          static_cast<std::size_t>(core_.stages()) * core_.ports() * lanes_;
      const auto range = shard_range(lane_links, w, n);
      credits_->deliver_range(cycle, range.first, range.second);
    }
  }

  void shard_eject(std::uint64_t cycle, bool measuring, std::size_t w,
                   std::size_t n, ShardWorker& wk) {
    if constexpr (kObs) wk.obs_log = &obs_->log(w);
    if constexpr (kMultiPath) {
      const auto range = shard_range(lcells_, w, n);
      eject_multipath_impl<true>(cycle, measuring,
                                 static_cast<std::uint32_t>(range.first),
                                 static_cast<std::uint32_t>(range.second),
                                 &wk);
    } else {
      const auto range = shard_range(core_.cells(), w, n);
      eject_impl<true>(cycle, measuring,
                       static_cast<std::uint32_t>(range.first),
                       static_cast<std::uint32_t>(range.second), &wk);
    }
  }

  void shard_advance(int s, std::uint64_t cycle, bool measuring,
                     std::size_t w, std::size_t n, ShardWorker& wk) {
    const auto range = shard_range(core_.cells(), w, n);
    if constexpr (kMultiPath) {
      advance_stage_multipath_impl<true>(
          s, cycle, measuring, static_cast<std::uint32_t>(range.first),
          static_cast<std::uint32_t>(range.second), &wk);
    } else {
      advance_stage_impl<true>(s, cycle, measuring,
                               static_cast<std::uint32_t>(range.first),
                               static_cast<std::uint32_t>(range.second),
                               &wk);
    }
  }

  /// Worker 0 only: replay the deferred ejections in ascending-worker
  /// order (== ascending cell order == the serial iteration order), then
  /// run the inherently serial injection front end.
  void shard_serial(std::uint64_t cycle, bool measuring,
                    std::vector<ShardWorker>& workers) {
    for (ShardWorker& wk : workers) {
      for (const Flit& flit : wk.wh_events) {
        if (observer_) observer_(flit, cycle);
        if (measuring &&
            flit.inject_cycle >= core_.config().warmup_cycles &&
            flit.is_tail()) {
          const double latency =
              static_cast<double>(cycle - flit.inject_cycle + 1);
          core_.record_packet_delivered(latency);
          if constexpr (kCredits) {
            core_.result.sl_latency[static_cast<unsigned>(flit.sl)].add(
                latency);
          }
          if constexpr (kObs) {
            if (obs_->flows_on()) {
              obs_->record_flow(static_cast<std::uint32_t>(flit.src),
                                flit.dest_terminal,
                                static_cast<unsigned>(flit.sl), latency);
            }
          }
        }
      }
      wk.wh_events.clear();
      for (const workload::Delivery& delivery : wk.wl_events) {
        core_.workload_delivered(delivery);
      }
      wk.wl_events.clear();
    }
    core_.workload_tick(cycle, measuring);
    inject(cycle, measuring);
  }

  void shard_sample(std::uint64_t cycle, std::size_t w, std::size_t n,
                    ShardWorker& wk) {
    sample_impl<true>(cycle, w, n, &wk);
  }

  /// Worker 0 only: the order-sensitive occupancy adds over pool-wide
  /// totals reconciled from the workers' deltas and per-VL counts.
  void shard_sample_reduce([[maybe_unused]] std::uint64_t cycle,
                           std::vector<ShardWorker>& workers) {
    std::int64_t delta = 0;
    for (const ShardWorker& wk : workers) delta += wk.pool_delta;
    core_.result.lane_occupancy.add(
        static_cast<double>(
            static_cast<std::int64_t>(pool_.occupied_flits()) + delta) /
        total_flit_slots_);
    if constexpr (kCredits) {
      if (core_.result.vl_occupancy.empty()) {
        core_.result.vl_occupancy.resize(lanes_);
      }
      const double slots_per_vl =
          total_flit_slots_ / static_cast<double>(lanes_);
      for (std::size_t vl = 0; vl < lanes_; ++vl) {
        std::uint64_t flits = 0;
        for (const ShardWorker& wk : workers) flits += wk.vl_flits[vl];
        core_.result.vl_occupancy[vl].add(static_cast<double>(flits) /
                                          slots_per_vl);
      }
    }
    if constexpr (kObs) {
      if (obs_->want_probe(cycle)) commit_probe_window(cycle);
    }
  }

  /// Sum every worker's order-independent partial into the core result.
  void shard_finish(std::vector<ShardWorker>& workers) {
    for (const ShardWorker& wk : workers) {
      const SimResult& p = wk.partial;
      core_.result.flits_delivered += p.flits_delivered;
      core_.result.hol_blocking_cycles += p.hol_blocking_cycles;
      core_.result.credit_stall_cycles += p.credit_stall_cycles;
      core_.result.credit_violations += p.credit_violations;
      core_.result.packets_dropped_faulted += p.packets_dropped_faulted;
      core_.result.flits_dropped_faulted += p.flits_dropped_faulted;
      core_.result.packets_rerouted += p.packets_rerouted;
      core_.result.packets_misdelivered += p.packets_misdelivered;
      core_.result.path_reroutes += p.path_reroutes;
      core_.result.stall_lost_arbitration += p.stall_lost_arbitration;
      core_.result.stall_downstream_full += p.stall_downstream_full;
      core_.result.stall_no_free_lane += p.stall_no_free_lane;
      core_.result.stall_zero_credits += p.stall_zero_credits;
      core_.result.stall_masked_arc += p.stall_masked_arc;
      link_flit_hops_ += wk.link_counter;
      shard_pool_delta_ += wk.pool_delta;
    }
  }

 private:
  /// The destination of every order-independent counter: the worker's
  /// partial when sharded, the core result when serial.
  template <bool kShard>
  [[nodiscard]] SimResult& shard_result(ShardWorker* wk) {
    if constexpr (kShard) {
      return wk->partial;
    } else {
      return core_.result;
    }
  }

  /// Pool mutations: uncounted + per-worker delta when sharded (the
  /// occupied_ total would be a shared write on the hot path), the
  /// counted originals — byte-identical codegen — when serial.
  template <bool kShard>
  Flit shard_pop(std::size_t l, ShardWorker* wk) {
    if constexpr (kShard) {
      --wk->pool_delta;
      return pool_.pop_unc(l);
    } else {
      return pool_.pop(l);
    }
  }

  template <bool kShard>
  void shard_accept(std::size_t l, const Flit& flit, ShardWorker* wk) {
    if constexpr (kShard) {
      ++wk->pool_delta;
      pool_.accept_unc(l, flit);
    } else {
      pool_.accept(l, flit);
    }
  }

  template <bool kShard>
  void shard_accept_head(std::size_t l, const Flit& head, unsigned out_port,
                         ShardWorker* wk) {
    if constexpr (kShard) {
      ++wk->pool_delta;
      pool_.accept_head_unc(l, head, out_port);
    } else {
      pool_.accept_head(l, head, out_port);
    }
  }

  /// Measured flit-hops: the worker's share when sharded.
  template <bool kShard>
  void shard_link_counter(ShardWorker* wk) {
    if constexpr (kShard) {
      ++wk->link_counter;
    } else {
      ++link_flit_hops_;
    }
  }
  /// Per-terminal injection state: the packet currently serializing into
  /// the first stage (flits are materialized on the fly) and the lane
  /// that worm claimed.
  struct SourceState {
    std::uint32_t dest = 0;
    std::uint32_t id = 0;
    std::uint64_t inject_cycle = 0;
    std::size_t next_index = 0;
    std::size_t remaining = 0;
    int lane = -1;
    unsigned sl = 0;  // service level of the serializing packet
    unsigned tag = 0;  // workload tag carried by every flit of the packet
    std::size_t port = 0;  // claimed physical input port (kMultiPath only)
  };

  /// The radix, folded to the literal 2 in the binary instantiations.
  [[nodiscard]] unsigned radix() const noexcept {
    if constexpr (kBinary) {
      return 2U;
    } else {
      return radix_;
    }
  }

  /// Multipath ejection: logical terminal lx * lr + j arbitrates over
  /// the planes * radix * lanes last-stage lanes of its logical cell (a
  /// worm may arrive on any arc of its dilation group and in any
  /// plane), one flit per terminal per cycle, per-terminal round-robin
  /// so no plane starves.
  /// The multipath eject kernel over logical cells [lx0, lx1): a logical
  /// cell's candidate lanes live at the same offset of every plane, so a
  /// logical-cell range owns planes_ disjoint physical runs — still
  /// single-writer under sharding.
  template <bool kShard>
  void eject_multipath_impl(std::uint64_t cycle, bool measuring,
                            std::uint32_t lx0, std::uint32_t lx1,
                            ShardWorker* wk) {
    const int last = core_.stages() - 1;
    const unsigned r = radix_;
    const unsigned candidates = static_cast<unsigned>(
        static_cast<std::size_t>(planes_) * r * lanes_);
    [[maybe_unused]] SimResult& res = shard_result<kShard>(wk);
    for (std::uint32_t lx = lx0; lx < lx1; ++lx) {
      for (unsigned j = 0; j < lradix_; ++j) {
        const std::size_t term =
            static_cast<std::size_t>(lx) * lradix_ + j;
        RoundRobin& arb = core_.eject_arbiter(term);
        for (unsigned probe = 0; probe < candidates; ++probe) {
          const unsigned c = arb.candidate(probe);
          const unsigned per_plane =
              static_cast<unsigned>(r * lanes_);
          const std::uint32_t cell =
              (c / per_plane) * lcells_ + lx;
          const unsigned slot =
              (c % per_plane) / static_cast<unsigned>(lanes_);
          const std::size_t l =
              lane_index(last, static_cast<std::size_t>(cell) * r + slot,
                         c % lanes_);
          if (pool_.empty(l) || pool_.out_port(l) != j) continue;
          const Flit flit = shard_pop<kShard>(l, wk);
          arb.grant(c);
          const bool counted =
              measuring && flit.inject_cycle >= core_.config().warmup_cycles;
          if (counted) ++res.flits_delivered;
          if constexpr (kObs) {
            if (measuring) {
              ++obs_log<kShard>(wk).hops[static_cast<std::size_t>(last)];
            }
            if (flit.inject_cycle >= core_.config().warmup_cycles &&
                obs_->traced(static_cast<std::uint32_t>(flit.src),
                             flit.inject_cycle)) {
              if (flit.is_head()) {
                trace_push<kShard>(wk, cycle, flit.inject_cycle,
                                   static_cast<std::uint32_t>(flit.src),
                                   flit.dest_terminal,
                                   obs::TraceEventKind::kStageEnd,
                                   static_cast<std::uint8_t>(last), 0,
                                   kEjectPhase);
              }
              if (flit.is_tail()) {
                trace_push<kShard>(wk, cycle, flit.inject_cycle,
                                   static_cast<std::uint32_t>(flit.src),
                                   flit.dest_terminal,
                                   obs::TraceEventKind::kPacketEnd, 0, 0,
                                   kEjectPhase);
              }
            }
          }
          if constexpr (kFaulted) {
            if (counted && flit.is_tail() &&
                (flit.dest_terminal / lradix_) != lx) {
              ++res.packets_misdelivered;
            }
          }
          if (flit.is_tail() && core_.wants_deliveries()) {
            const workload::Delivery delivery{
                static_cast<std::uint32_t>(flit.src), flit.dest_terminal,
                static_cast<std::uint32_t>(term), flit.inject_cycle,
                cycle + 1, static_cast<std::uint8_t>(flit.tag), counted};
            if constexpr (kShard) {
              wk->wl_events.push_back(delivery);
            } else {
              core_.workload_delivered(delivery);
            }
          }
          if constexpr (kShard) {
            if (observer_ || (counted && flit.is_tail())) {
              wk->wh_events.push_back(flit);
            }
          } else {
            if (observer_) observer_(flit, cycle);
            if (counted && flit.is_tail()) {
              const double latency =
                  static_cast<double>(cycle - flit.inject_cycle + 1);
              core_.record_packet_delivered(latency);
              if constexpr (kObs) {
                if (obs_->flows_on()) {
                  obs_->record_flow(static_cast<std::uint32_t>(flit.src),
                                    flit.dest_terminal, 0, latency);
                }
              }
            }
          }
          break;
        }
      }
    }
    // The per-plane physical runs this logical range owns.
    const std::size_t first = lane_index(last, 0, 0);
    for (unsigned plane = 0; plane < planes_; ++plane) {
      const std::size_t run =
          static_cast<std::size_t>(plane) * lcells_ * r * lanes_;
      account_stage<kShard>(
          cycle, measuring,
          first + run + static_cast<std::size_t>(lx0) * r * lanes_,
          first + run + static_cast<std::size_t>(lx1) * r * lanes_, wk, last,
          eject_stall_phase(plane));
    }
  }

  /// Multipath advancement: identical link/lane mechanics to the
  /// unipath loop, but an advancing head resolves its stage-(s+1)
  /// out-port by selecting within the fabric's equivalent-path group
  /// (select_next_port) instead of reading a single scheduled port.
  template <bool kShard>
  void advance_stage_multipath_impl(int s, std::uint64_t cycle,
                                    bool measuring, std::uint32_t x0,
                                    std::uint32_t x1, ShardWorker* wk) {
    const unsigned r = radix_;
    [[maybe_unused]] SimResult& res = shard_result<kShard>(wk);
    const auto down = core_.wiring().down_stage(s);
    const bool target_ejects = s + 2 == core_.stages();
    // Routing constants for the target stage s + 1: the free flag, the
    // forced-group schedule reads, the looping settings row, and (for
    // the adaptive metric) the stage-(s+1) child records.
    bool next_free = false;
    std::uint32_t digit_scale = 1;
    const std::uint32_t* port_of_value = nullptr;
    const std::uint8_t* settings = nullptr;
    const std::uint32_t* down_next = nullptr;
    if (!target_ejects) {
      next_free = free_stage_[static_cast<std::size_t>(s + 1)] != 0;
      if (!next_free) {
        digit_scale = core_.engine().route_digit_scale(s + 1);
        port_of_value = core_.engine()
                            .digit_schedule()
                            .port_of_value[static_cast<std::size_t>(s + 1)]
                            .data();
      } else if (path_policy_ == PathPolicy::kLooping) {
        settings =
            looping_->settings[static_cast<std::size_t>(s + 1)].data();
      }
      if (path_policy_ == PathPolicy::kAdaptive) {
        down_next = core_.wiring().down_stage(s + 1).data();
      }
    }
    [[maybe_unused]] std::size_t arc_base = 0;
    [[maybe_unused]] const fault::FaultMask* mask = nullptr;
    if constexpr (kFaulted) {
      drain_dropping<kShard>(s, cycle, measuring, x0, x1, wk);
      arc_base = static_cast<std::size_t>(s) * core_.ports();
      mask = &faulted_.mask();
    }
    if constexpr (kObs) {
      const std::size_t sfirst = lane_index(s, 0, 0);
      std::fill(
          stall_cause_.begin() + sfirst + static_cast<std::size_t>(x0) * r *
                                              lanes_,
          stall_cause_.begin() + sfirst + static_cast<std::size_t>(x1) * r *
                                              lanes_,
          0);
    }
    const unsigned candidates =
        static_cast<unsigned>(static_cast<std::size_t>(r) * lanes_);
    for (std::uint32_t x = x0; x < x1; ++x) {
      for (unsigned port = 0; port < r; ++port) {
        if constexpr (kFaulted) {
          if (mask->faulted_index(arc_base + x * r + port)) continue;
        }
        for (unsigned probe = 0; probe < candidates; ++probe) {
          const unsigned c = arb_candidate(s, x * r + port, probe);
          const std::size_t l = lane_index(s, x * r + c / lanes_, c % lanes_);
          if (pool_.empty(l) || pool_.out_port(l) != port) continue;
          const std::uint32_t record = down[x * r + port];
          const std::size_t target_first = lane_index(s + 1, record, 0);
          if (pool_.front(l).is_head()) {
            const int down_lane = pool_.find_idle_lane(target_first, lanes_);
            if (down_lane < 0) {
              if constexpr (kObs) {
                stall_cause_[l] = static_cast<std::uint8_t>(
                    obs::StallCause::kNoFreeLane);
              }
              continue;  // blocked: no free lane
            }
            const Flit flit = shard_pop<kShard>(l, wk);
            if (!flit.is_tail()) pool_.set_downstream(l, down_lane);
            unsigned desired;
            int reroute_kind = 0;
            if (target_ejects) {
              desired = flit.dest_terminal % lradix_;
            } else {
              unsigned base = 0;
              unsigned count = r;
              if (!next_free) {
                base = port_of_value[((flit.dest_terminal / lradix_) /
                                      digit_scale) %
                                     lradix_] *
                       dilation_;
                count = dilation_;
              }
              desired = select_next_port(s + 1, record, flit, base, count,
                                         settings, down_next, mask,
                                         reroute_kind);
            }
            accept_head<kShard>(
                target_first + static_cast<std::size_t>(down_lane), flit,
                s + 1, record / r, desired, measuring, wk, cycle,
                advance_phase(s));
            if constexpr (kObs) {
              if (flit.inject_cycle >= core_.config().warmup_cycles &&
                  obs_->traced(static_cast<std::uint32_t>(flit.src),
                               flit.inject_cycle)) {
                trace_push<kShard>(wk, cycle, flit.inject_cycle,
                                   static_cast<std::uint32_t>(flit.src),
                                   flit.dest_terminal,
                                   obs::TraceEventKind::kStageEnd,
                                   static_cast<std::uint8_t>(s), 0,
                                   advance_phase(s));
                trace_push<kShard>(wk, cycle, flit.inject_cycle,
                                   static_cast<std::uint32_t>(flit.src),
                                   flit.dest_terminal,
                                   obs::TraceEventKind::kStageBegin,
                                   static_cast<std::uint8_t>(s + 1), 0,
                                   advance_phase(s));
              }
            }
            if constexpr (kFaulted) {
              if (reroute_kind == 1 && measuring &&
                  flit.inject_cycle >= core_.config().warmup_cycles) {
                ++res.path_reroutes;
                if constexpr (kObs) {
                  ++obs_log<kShard>(wk).reroute[static_cast<std::size_t>(s)];
                  if (obs_->traced(static_cast<std::uint32_t>(flit.src),
                                   flit.inject_cycle)) {
                    trace_push<kShard>(wk, cycle, flit.inject_cycle,
                                       static_cast<std::uint32_t>(flit.src),
                                       flit.dest_terminal,
                                       obs::TraceEventKind::kReroute,
                                       static_cast<std::uint8_t>(s), 0,
                                       advance_phase(s));
                  }
                }
              }
            }
          } else {
            const std::size_t down_l =
                target_first + static_cast<std::size_t>(pool_.downstream(l));
            if (!pool_.has_space(down_l)) {
              if constexpr (kObs) {
                stall_cause_[l] = static_cast<std::uint8_t>(
                    obs::StallCause::kDownstreamFull);
              }
              continue;  // blocked: full
            }
            shard_accept<kShard>(down_l, shard_pop<kShard>(l, wk), wk);
          }
          arb_grant(s, x * r + port, c, 0);
          if (measuring) {
            shard_link_counter<kShard>(wk);
            if constexpr (kObs) {
              ++obs_log<kShard>(wk).hops[static_cast<std::size_t>(s)];
            }
          }
          break;
        }
      }
    }
    const std::size_t first = lane_index(s, 0, 0);
    account_stage<kShard>(cycle, measuring,
                          first + static_cast<std::size_t>(x0) * r * lanes_,
                          first + static_cast<std::size_t>(x1) * r * lanes_,
                          wk, s, stall_phase(s));
  }

  /// Multipath injection: logical terminal t feeds physical input slot
  /// (t % lr) * dilation of its logical cell, choosing a plane per
  /// packet on replicated fabrics (hash of the destination, or the
  /// plane with the emptiest injection lanes) and its first out-port
  /// through select_next_port. A terminal mid-packet keeps serializing
  /// into the claimed lane of the claimed physical port.
  void inject_multipath(std::uint64_t cycle, bool measuring) {
    const unsigned r = radix_;
    const bool first_free = free_stage_[0] != 0;
    std::uint32_t digit_scale = 1;
    const std::uint32_t* port_of_value = nullptr;
    const std::uint8_t* settings = nullptr;
    const std::uint32_t* down_next = nullptr;
    if (!first_free) {
      digit_scale = core_.engine().route_digit_scale(0);
      port_of_value =
          core_.engine().digit_schedule().port_of_value[0].data();
    } else if (path_policy_ == PathPolicy::kLooping) {
      settings = looping_->settings[0].data();
    }
    if (path_policy_ == PathPolicy::kAdaptive) {
      down_next = core_.wiring().down_stage(0).data();
    }
    [[maybe_unused]] const fault::FaultMask* mask = nullptr;
    if constexpr (kFaulted) mask = &faulted_.mask();
    for (std::uint64_t t = 0; t < core_.terminals(); ++t) {
      SourceState& src = sources_[t];
      if (src.remaining > 0) {
        const std::size_t l =
            lane_index(0, src.port, static_cast<std::size_t>(src.lane));
        if (pool_.has_space(l)) {
          pool_.accept(l, make_flit(src.id, src.dest,
                                    static_cast<std::uint32_t>(t),
                                    src.inject_cycle, src.next_index, length_,
                                    src.sl, src.tag));
          ++src.next_index;
          --src.remaining;
          if (measuring) ++core_.result.flits_injected;
        }
        continue;  // the source link is busy with the current packet
      }
      if (!core_.attempt(cycle, static_cast<std::uint32_t>(t))) continue;
      if (measuring) ++core_.result.offered;
      // Drawn before the plane pick (the hashed policy keys on the
      // destination); a refused attempt discards the draw, historically.
      const workload::Injection packet =
          core_.draw(cycle, static_cast<std::uint32_t>(t));
      const std::uint32_t dest = packet.dest;
      const std::uint32_t lcell =
          static_cast<std::uint32_t>(t) / lradix_;
      const unsigned slot =
          (static_cast<unsigned>(t) % lradix_) * dilation_;
      std::size_t port_index = 0;
      int lane = -1;
      if (planes_ == 1) {
        port_index = static_cast<std::size_t>(lcell) * r + slot;
        lane = pool_.find_idle_lane(lane_index(0, port_index, 0), lanes_);
      } else if (path_policy_ == PathPolicy::kAdaptive) {
        std::size_t best = 0;
        for (unsigned plane = 0; plane < planes_; ++plane) {
          const std::size_t candidate =
              (static_cast<std::size_t>(plane) * lcells_ + lcell) * r + slot;
          const int idle =
              pool_.find_idle_lane(lane_index(0, candidate, 0), lanes_);
          if (idle < 0) continue;
          std::size_t occupancy = 0;
          for (std::size_t ln = 0; ln < lanes_; ++ln) {
            occupancy += pool_.count(lane_index(0, candidate, ln));
          }
          if (lane < 0 || occupancy < best) {
            best = occupancy;
            port_index = candidate;
            lane = idle;
          }
        }
      } else {
        const unsigned plane = static_cast<unsigned>(
            path_mix(dest, cycle, t) % planes_);
        port_index =
            (static_cast<std::size_t>(plane) * lcells_ + lcell) * r + slot;
        lane = pool_.find_idle_lane(lane_index(0, port_index, 0), lanes_);
      }
      if (lane < 0) continue;  // refused at source
      const std::uint32_t id = next_packet_id_++;
      const Flit head = make_flit(id, dest, static_cast<std::uint32_t>(t),
                                  cycle, 0, length_, 0, packet.tag);
      int reroute_kind = 0;
      const unsigned desired = select_next_port(
          0, static_cast<std::uint32_t>(port_index), head,
          first_free
              ? 0U
              : port_of_value[((dest / lradix_) / digit_scale) % lradix_] *
                    dilation_,
          first_free ? r : dilation_, settings, down_next, mask,
          reroute_kind);
      accept_head<false>(
          lane_index(0, port_index, static_cast<std::size_t>(lane)), head, 0,
          static_cast<std::uint32_t>(port_index / r), desired, measuring,
          nullptr, cycle, inject_phase());
      if constexpr (kFaulted) {
        if (reroute_kind == 1 && measuring &&
            cycle >= core_.config().warmup_cycles) {
          ++core_.result.path_reroutes;
          if constexpr (kObs) {
            ++obs_->log(0).reroute[0];
            if (obs_->traced(static_cast<std::uint32_t>(t), cycle)) {
              trace_push<false>(nullptr, cycle, cycle,
                                static_cast<std::uint32_t>(t), dest,
                                obs::TraceEventKind::kReroute, 0, 0,
                                inject_phase());
            }
          }
        }
      }
      core_.commit(cycle, static_cast<std::uint32_t>(t), packet);
      src.dest = dest;
      src.id = id;
      src.inject_cycle = cycle;
      src.next_index = 1;
      src.remaining = length_ - 1;
      src.lane = lane;
      src.port = port_index;
      src.sl = 0;
      src.tag = packet.tag;
      if (measuring) {
        ++core_.result.injected;
        ++core_.result.flits_injected;
        if constexpr (kObs) {
          if (obs_->traced(static_cast<std::uint32_t>(t), cycle)) {
            trace_push<false>(nullptr, cycle, cycle,
                              static_cast<std::uint32_t>(t), dest,
                              obs::TraceEventKind::kPacketBegin, 0, 0,
                              inject_phase());
            trace_push<false>(nullptr, cycle, cycle,
                              static_cast<std::uint32_t>(t), dest,
                              obs::TraceEventKind::kStageBegin, 0, 0,
                              inject_phase());
          }
        }
      }
    }
  }

  /// The path-selection seam: the out-port the head entering stage
  /// \p next_s on record \p record (cell * r + input slot) will take,
  /// chosen within the equivalent-path group [\p base, \p base +
  /// \p count) by the configured policy. Faulted: a masked choice
  /// re-selects among the surviving group members (\p reroute_kind = 1);
  /// a fully-masked group returns the scheduled base and lets
  /// accept_head run the unipath out-of-group detour (or dead-switch
  /// drop).
  [[nodiscard]] unsigned select_next_port(
      int next_s, std::uint32_t record, const Flit& flit, unsigned base,
      unsigned count, const std::uint8_t* settings,
      const std::uint32_t* down_next,
      [[maybe_unused]] const fault::FaultMask* mask, int& reroute_kind) {
    const unsigned r = radix_;
    const std::uint32_t y = record / r;
    reroute_kind = 0;
    if (path_policy_ == PathPolicy::kAdaptive) {
      // Least-occupancy: the group member whose downstream lanes hold
      // the fewest flits (ties to the lowest port). Masked arcs are not
      // candidates — adaptivity subsumes in-group re-selection.
      int chosen = -1;
      std::size_t best = 0;
      for (unsigned k = 0; k < count; ++k) {
        const unsigned p = base + k;
        if constexpr (kFaulted) {
          if (mask->faulted_index(
                  static_cast<std::size_t>(next_s) * core_.ports() + y * r +
                  p)) {
            continue;
          }
        }
        std::size_t occupancy = 0;
        const std::size_t down_first =
            lane_index(next_s + 1, down_next[y * r + p], 0);
        for (std::size_t ln = 0; ln < lanes_; ++ln) {
          occupancy += pool_.count(down_first + ln);
        }
        if (chosen < 0 || occupancy < best) {
          best = occupancy;
          chosen = static_cast<int>(p);
        }
      }
      if (chosen >= 0) return static_cast<unsigned>(chosen);
      return base;  // whole group masked: accept_head detours or drops
    }
    unsigned desired;
    if (settings != nullptr) {
      desired = settings[static_cast<std::size_t>(y) * lradix_ +
                         record % r];
    } else if (count == 1) {
      desired = base;
    } else {
      desired = base + static_cast<unsigned>(
                           path_mix(flit.dest_terminal, flit.inject_cycle,
                                    static_cast<std::uint64_t>(next_s)) %
                           count);
    }
    if constexpr (kFaulted) {
      if (next_s + 1 < core_.stages() &&
          mask->faulted_index(static_cast<std::size_t>(next_s) *
                              core_.ports() +
                              y * r + desired)) {
        const int member = surviving_group_member(
            *mask, static_cast<std::size_t>(next_s) * core_.ports() + y * r,
            base, count, desired);
        if (member >= 0) {
          reroute_kind = 1;
          return static_cast<unsigned>(member);
        }
      }
    }
    return desired;
  }

  [[nodiscard]] std::size_t lane_index(int s, std::size_t port_index,
                                       std::size_t lane) const {
    return (static_cast<std::size_t>(s) * core_.ports() + port_index) *
               lanes_ +
           lane;
  }

  /// The arbitration seam (kCredits only varies it) — see
  /// StoreAndForwardPolicy for the policy semantics. Candidates here
  /// index the radix * lanes input lanes of an output port.
  [[nodiscard]] unsigned arb_candidate(int s, std::size_t out,
                                       unsigned probe) {
    if constexpr (kCredits) {
      if (credit_config_->arbitration == ArbitrationPolicy::kWeighted) {
        return weighted_.candidate(arb_index(s, out), probe);
      }
    }
    return core_.arbiter(s, out).candidate(probe);
  }

  void arb_grant(int s, std::size_t out, unsigned winner,
                 [[maybe_unused]] unsigned vl) {
    if constexpr (kCredits) {
      if (credit_config_->arbitration == ArbitrationPolicy::kWeighted) {
        weighted_.grant(arb_index(s, out), winner,
                        credit_config_->weight(vl));
        return;
      }
    }
    core_.arbiter(s, out).grant(winner);
  }

  [[nodiscard]] std::size_t arb_index(int s, std::size_t out) const {
    return static_cast<std::size_t>(s) * core_.ports() + out;
  }

  /// Weight class of the worm at the head of lane \p l (kCredits only).
  [[nodiscard]] unsigned flit_weight(std::size_t l) const {
    return credit_config_->weight(credit_config_->vl_of_sl(
        static_cast<unsigned>(pool_.front(l).sl)));
  }

  /// Accept \p head into lane \p l of cell \p y at stage \p s with the
  /// caller-resolved scheduled out-port \p desired (callers hoist the
  /// schedule reads per stage). Unfaulted: the port is taken as is.
  /// Faulted interior stages route through the FaultedWiring view —
  /// scheduled port, next surviving port (counted as a reroute), or a
  /// dead switch, which puts the lane in dropping mode so the worm
  /// drains into the fault counters. Last-stage out-ports are ejection
  /// ports and cannot fault.
  template <bool kShard>
  void accept_head(std::size_t l, const Flit& head, int s, std::uint32_t y,
                   unsigned desired, [[maybe_unused]] bool measuring,
                   [[maybe_unused]] ShardWorker* wk,
                   [[maybe_unused]] std::uint64_t cycle,
                   [[maybe_unused]] std::uint8_t phase) {
    if constexpr (kFaulted) {
      if (s + 1 < core_.stages()) {
        const int port = faulted_.usable_port(s, y, desired);
        if (port < 0) {
          // Dead switch: park the worm in dropping mode; drain_dropping
          // discards it (and its following flits) next cycle.
          shard_accept_head<kShard>(l, head, 0, wk);
          dropping_[l] = 1;
          return;
        }
        if (static_cast<unsigned>(port) != desired && measuring &&
            head.inject_cycle >= core_.config().warmup_cycles) {
          ++shard_result<kShard>(wk).packets_rerouted;
          if constexpr (kObs) {
            // Charged to the stage whose out-port detoured (the one the
            // head just entered); the trace event carries the same stage.
            ++obs_log<kShard>(wk).reroute[static_cast<std::size_t>(s)];
            if (obs_->traced(static_cast<std::uint32_t>(head.src),
                             head.inject_cycle)) {
              trace_push<kShard>(wk, cycle, head.inject_cycle,
                                 static_cast<std::uint32_t>(head.src),
                                 head.dest_terminal,
                                 obs::TraceEventKind::kReroute,
                                 static_cast<std::uint8_t>(s), 0, phase);
            }
          }
        }
        shard_accept_head<kShard>(l, head, static_cast<unsigned>(port), wk);
        return;
      }
    }
    shard_accept_head<kShard>(l, head, desired, wk);
  }

  /// Discard every buffered flit of the dropping-mode lanes of cells
  /// [x0, x1) of stage \p s. Popping the tail resets the lane to idle
  /// (via LanePool) and ends dropping mode; until then, flits still
  /// following the worm's reservation keep arriving and are drained on
  /// their next turn. Dropping flags for a lane are set by the upstream
  /// arc's owner in an earlier (barriered) phase and cleared here by the
  /// lane's owner, so sharding never races on them.
  template <bool kShard>
  void drain_dropping(int s, [[maybe_unused]] std::uint64_t cycle,
                      bool measuring, std::uint32_t x0, std::uint32_t x1,
                      ShardWorker* wk) {
    const std::size_t first = lane_index(s, 0, 0);
    const std::size_t lo = first + static_cast<std::size_t>(x0) * radix() *
                                       lanes_;
    const std::size_t hi = first + static_cast<std::size_t>(x1) * radix() *
                                       lanes_;
    [[maybe_unused]] SimResult& res = shard_result<kShard>(wk);
    for (std::size_t l = lo; l < hi; ++l) {
      if (dropping_[l] == 0) continue;
      while (!pool_.empty(l)) {
        const Flit flit = shard_pop<kShard>(l, wk);
        // A drained flit returns its credit like any other pop, so the
        // ledger closes exactly even across dead switches.
        if constexpr (kCredits) credits_->give_back(l, cycle);
        if (measuring && flit.inject_cycle >= core_.config().warmup_cycles) {
          ++res.flits_dropped_faulted;
          if (flit.is_head()) ++res.packets_dropped_faulted;
          if constexpr (kObs) {
            if (flit.is_head() &&
                obs_->traced(static_cast<std::uint32_t>(flit.src),
                             flit.inject_cycle)) {
              const std::uint8_t phase = drain_phase(s);
              const auto src = static_cast<std::uint32_t>(flit.src);
              trace_push<kShard>(wk, cycle, flit.inject_cycle, src,
                                 flit.dest_terminal,
                                 obs::TraceEventKind::kStageEnd,
                                 static_cast<std::uint8_t>(s), 0, phase);
              trace_push<kShard>(wk, cycle, flit.inject_cycle, src,
                                 flit.dest_terminal,
                                 obs::TraceEventKind::kDrop,
                                 static_cast<std::uint8_t>(s), 0, phase);
              trace_push<kShard>(wk, cycle, flit.inject_cycle, src,
                                 flit.dest_terminal,
                                 obs::TraceEventKind::kPacketEnd, 0, 0,
                                 phase);
            }
          }
        }
        if (flit.is_tail()) dropping_[l] = 0;
      }
    }
  }

  /// Count stalled worms over the lane range [lo, hi) and reset its
  /// per-cycle movement flags. Called right after the stage had its
  /// switching (or ejection) opportunity, before upstream pushes refill
  /// it; sharded callers pass exactly their writer partition.
  /// kObs: the same scan charges each stalled lane-cycle to its recorded
  /// StallCause, so the per-cause counters partition hol_blocking_cycles
  /// exactly — no separate bookkeeping to drift.
  template <bool kShard>
  void account_stage([[maybe_unused]] std::uint64_t cycle, bool measuring,
                     std::size_t lo, std::size_t hi, ShardWorker* wk,
                     [[maybe_unused]] int stage,
                     [[maybe_unused]] std::uint8_t phase) {
    SimResult& res = shard_result<kShard>(wk);
    for (std::size_t l = lo; l < hi; ++l) {
      if (measuring && !pool_.empty(l) && !pool_.moved(l)) {
        ++res.hol_blocking_cycles;
        if constexpr (kObs) {
          attribute_stall<kShard>(stage, cycle, l, wk, phase);
        }
      }
      pool_.clear_moved(l);
    }
  }

  /// kObs only: one stalled lane-cycle's telemetry — the per-cause
  /// SimResult counter, the per-stage probe counter, and a stall instant
  /// for traced packets.
  template <bool kShard>
  void attribute_stall(int s, std::uint64_t cycle, std::size_t l,
                       ShardWorker* wk, std::uint8_t phase) {
    SimResult& res = shard_result<kShard>(wk);
    const auto cause = static_cast<obs::StallCause>(stall_cause_[l]);
    switch (cause) {
      case obs::StallCause::kLostArbitration:
        ++res.stall_lost_arbitration;
        break;
      case obs::StallCause::kDownstreamFull:
        ++res.stall_downstream_full;
        break;
      case obs::StallCause::kNoFreeLane:
        ++res.stall_no_free_lane;
        break;
      case obs::StallCause::kZeroCredits:
        ++res.stall_zero_credits;
        break;
      case obs::StallCause::kMaskedArc:
        ++res.stall_masked_arc;
        break;
    }
    ++obs_log<kShard>(wk).hol[static_cast<std::size_t>(s)];
    if (obs_->trace_on()) {
      const Flit& flit = pool_.front(l);
      const auto ic = static_cast<std::uint64_t>(flit.inject_cycle);
      const auto src = static_cast<std::uint32_t>(flit.src);
      if (ic >= core_.config().warmup_cycles && obs_->traced(src, ic)) {
        trace_push<kShard>(wk, cycle, ic, src, flit.dest_terminal,
                           obs::TraceEventKind::kStall,
                           static_cast<std::uint8_t>(s),
                           static_cast<std::uint8_t>(cause), phase);
      }
    }
  }

  // --- Observability helpers (kObs instantiations only) ----------------

  /// The WorkerLog the current kernel writes: the worker's own sink on
  /// sharded runs (shard_eject re-binds it every cycle), log 0 serially.
  template <bool kShard>
  [[nodiscard]] obs::WorkerLog& obs_log([[maybe_unused]] ShardWorker* wk) {
    if constexpr (kShard) {
      return *wk->obs_log;
    } else {
      return obs_->log(0);
    }
  }

  /// Append one trace event to the current worker's buffer, tagged with
  /// its (cycle, phase) sort key. Callers have already checked
  /// Observer::traced for the packet.
  template <bool kShard>
  void trace_push(ShardWorker* wk, std::uint64_t cycle,
                  std::uint64_t inject_cycle, std::uint32_t src,
                  std::uint32_t dst, obs::TraceEventKind kind,
                  std::uint8_t stage, std::uint8_t cause,
                  std::uint8_t phase) {
    obs::TraceEvent event;
    event.cycle = cycle;
    event.inject_cycle = inject_cycle;
    event.src = src;
    event.dst = dst;
    event.kind = kind;
    event.stage = stage;
    event.cause = cause;
    event.phase = phase;
    obs_log<kShard>(wk).events.push_back(event);
  }

  // Phase ordinals (TraceEvent::phase) — the same numbering as
  // StoreAndForwardPolicy (engine.cpp): eject moves, the per-plane eject
  // HOL scans, then per advance stage s (walked S-2 down to 0) a
  // drain / moves / HOL-scan triple, and injection last — so the sharded
  // (cycle, phase) stable sort reproduces the serial emission order.
  static constexpr std::uint8_t kEjectPhase = 0;
  [[nodiscard]] std::uint8_t eject_stall_phase(unsigned plane) const noexcept {
    return static_cast<std::uint8_t>(1 + plane);
  }
  [[nodiscard]] std::uint8_t advance_base(int s) const noexcept {
    return static_cast<std::uint8_t>(
        1 + planes_ +
        3 * static_cast<unsigned>(core_.stages() - 2 - s));
  }
  [[nodiscard]] std::uint8_t drain_phase(int s) const noexcept {
    return advance_base(s);
  }
  [[nodiscard]] std::uint8_t advance_phase(int s) const noexcept {
    return static_cast<std::uint8_t>(advance_base(s) + 1);
  }
  [[nodiscard]] std::uint8_t stall_phase(int s) const noexcept {
    return static_cast<std::uint8_t>(advance_base(s) + 2);
  }
  [[nodiscard]] std::uint8_t inject_phase() const noexcept {
    return static_cast<std::uint8_t>(
        1 + planes_ + 3 * static_cast<unsigned>(core_.stages() - 1));
  }

  /// Close a probe window (serial sample phase / worker 0's sample
  /// reduce): fill the observer's scratch with the per-(stage, cell)
  /// buffered flit counts and commit.
  void commit_probe_window(std::uint64_t cycle) {
    std::vector<std::uint32_t>& scratch = obs_->occupancy_scratch();
    const unsigned r = radix();
    const int stages = core_.stages();
    const std::uint32_t cells = core_.cells();
    for (int s = 0; s < stages; ++s) {
      for (std::uint32_t x = 0; x < cells; ++x) {
        std::uint32_t occupied = 0;
        for (unsigned slot = 0; slot < r; ++slot) {
          for (std::size_t ln = 0; ln < lanes_; ++ln) {
            occupied += pool_.count(lane_index(s, x * r + slot, ln));
          }
        }
        scratch[static_cast<std::size_t>(s) * cells + x] = occupied;
      }
    }
    obs_->commit_probe(cycle);
  }

  FabricCore& core_;
  const EjectObserver& observer_;
  unsigned radix_;
  std::size_t lanes_;
  std::uint64_t length_;
  LanePool& pool_;
  std::vector<SourceState> sources_;
  std::uint32_t next_packet_id_ = 0;
  std::uint64_t link_flit_hops_ = 0;
  std::int64_t shard_pool_delta_ = 0;  // sharded runs only
  double total_flit_slots_;
  fault::FaultedWiring faulted_;        // kFaulted only
  std::vector<std::uint8_t> dropping_;  // kFaulted only
  const CreditConfig* credit_config_ = nullptr;  // kCredits only
  CreditLedger* credits_ = nullptr;              // kCredits only
  WeightedRoundRobin weighted_;                  // kCredits only
  std::size_t service_levels_ = 1;               // kCredits only
  std::vector<std::uint64_t> vl_flits_;          // kCredits only (scratch)
  unsigned lradix_ = 2;                              // kMultiPath only
  std::uint32_t lcells_ = 1;                         // kMultiPath only
  unsigned planes_ = 1;                              // kMultiPath only
  unsigned dilation_ = 1;                            // kMultiPath only
  PathPolicy path_policy_ = PathPolicy::kHash;       // kMultiPath only
  const multipath::LoopingSettings* looping_ = nullptr;  // kMultiPath only
  const std::uint8_t* free_stage_ = nullptr;         // kMultiPath only
  obs::Observer* obs_ = nullptr;                     // kObs only
  /// Per-lane StallCause scratch, written by the advance probe loops and
  /// read by account_stage's attribution — same writer partition as the
  /// lanes themselves.
  std::vector<std::uint8_t> stall_cause_;            // kObs only
};

/// Out of line on purpose — see run_saf in engine.cpp.
template <bool kFaulted, bool kBinary, bool kCredits, bool kMultiPath,
          bool kObs>
#if defined(__GNUC__)
[[gnu::noinline]]
#endif
SimResult
run_wormhole_impl(FabricCore& core, const EjectObserver& observer,
                  SimWorkspace& workspace, const fault::FaultMask* mask,
                  obs::Observer* obs,
                  const multipath::LoopingSettings* looping) {
  WormholePolicy<kFaulted, kBinary, kCredits, kMultiPath, kObs> policy(
      core, observer, workspace, mask, obs, looping);
  if constexpr (kObs) {
    // Closed-loop sources route request->reply latencies into the flow
    // recorder's service channel (null and ignored when flows are off).
    core.set_service_recorder(obs->flow_recorder());
  }
  const std::size_t threads = core.config().sim_threads;
  SimResult result = threads > 1 ? run_switched_sharded(core, policy, threads)
                                 : run_switched(core, policy);
  if constexpr (kObs) {
    result.probes = obs->take_probes();
    if (obs->flows_on()) result.flows = obs->flow_summary();
    result.trace = obs->take_trace();
  }
  return result;
}

/// The obs fork: an absent observer dispatches to the kObs=false
/// instantiation — byte for byte the pre-observability policy.
template <bool kFaulted, bool kBinary, bool kCredits, bool kMultiPath>
SimResult run_wormhole(FabricCore& core, const EjectObserver& observer,
                       SimWorkspace& workspace, const fault::FaultMask* mask,
                       obs::Observer* obs,
                       const multipath::LoopingSettings* looping = nullptr) {
  if (obs != nullptr) {
    return run_wormhole_impl<kFaulted, kBinary, kCredits, kMultiPath, true>(
        core, observer, workspace, mask, obs, looping);
  }
  return run_wormhole_impl<kFaulted, kBinary, kCredits, kMultiPath, false>(
      core, observer, workspace, mask, nullptr, looping);
}

}  // namespace

SimResult WormholeSimulator::run(Pattern pattern,
                                 const SimConfig& config) const {
  return run(pattern, config, EjectObserver());
}

SimResult WormholeSimulator::run(Pattern pattern, const SimConfig& config,
                                 const EjectObserver& observer) const {
  return run(pattern, config, observer, nullptr, nullptr);
}

SimResult WormholeSimulator::run(Pattern pattern, const SimConfig& config,
                                 const EjectObserver& observer,
                                 const fault::FaultMask* mask,
                                 SimWorkspace* workspace) const {
  config.validate();
  const bool faulted = mask != nullptr && !mask->none();
  if (faulted && !mask->matches(engine_.wiring())) {
    throw std::invalid_argument(
        "WormholeSimulator::run: fault mask geometry does not match");
  }
  SimWorkspace local;
  SimWorkspace& ws = workspace != nullptr ? *workspace : local;
  // The observer outlives the policy — same construction as Engine::run
  // (worker-log count matches the shard team clamp; flit slots per stage
  // replace packet slots in the occupancy normalization).
  std::optional<obs::Observer> observer_state;
  if (config.obs.any()) {
    config.obs.validate(engine_.terminals());
    const auto& wiring = engine_.wiring();
    const std::size_t workers =
        config.sim_threads > 1
            ? std::min<std::size_t>(
                  config.sim_threads,
                  std::max<std::uint32_t>(1, wiring.cells_per_stage()))
            : 1;
    const std::size_t ports = static_cast<std::size_t>(wiring.radix()) *
                              wiring.cells_per_stage();
    observer_state.emplace(
        config.obs, wiring.stages(), wiring.cells_per_stage(), ports,
        static_cast<std::uint32_t>(engine_.terminals()), config.warmup_cycles,
        config.measure_cycles, workers,
        latency_histogram_buckets(config, wiring.stages()),
        config.credits.enabled ? config.credits.service_levels() : 1,
        static_cast<double>(ports) * static_cast<double>(config.lanes) *
            static_cast<double>(config.lane_depth));
  }
  obs::Observer* obs = observer_state.has_value() ? &*observer_state : nullptr;
  if (engine_.multipath()) {
    if (config.credits.enabled) {
      throw std::invalid_argument(
          "WormholeSimulator::run: credit-based flow control is not "
          "supported on multipath fabrics");
    }
    std::optional<multipath::LoopingSettings> looping;
    if (config.path_policy == PathPolicy::kLooping) {
      looping = multipath::looping_configure(engine_.fabric(),
                                             config.permutation);
    }
    const multipath::LoopingSettings* settings =
        looping.has_value() ? &*looping : nullptr;
    FabricCore core(
        engine_, pattern, config,
        static_cast<unsigned>(static_cast<std::size_t>(engine_.radix()) *
                              config.lanes),
        static_cast<unsigned>(static_cast<std::size_t>(engine_.planes()) *
                              engine_.radix() * config.lanes));
    return faulted ? run_wormhole<true, false, false, true>(core, observer,
                                                            ws, mask, obs,
                                                            settings)
                   : run_wormhole<false, false, false, true>(
                         core, observer, ws, nullptr, obs, settings);
  }
  FabricCore core(
      engine_, pattern, config,
      static_cast<unsigned>(static_cast<std::size_t>(engine_.radix()) *
                            config.lanes));
  const bool binary = engine_.radix() == 2;
  const bool credits = config.credits.enabled;
  if (faulted) {
    if (credits) {
      return binary ? run_wormhole<true, true, true, false>(core, observer,
                                                            ws, mask, obs)
                    : run_wormhole<true, false, true, false>(core, observer,
                                                             ws, mask, obs);
    }
    return binary ? run_wormhole<true, true, false, false>(core, observer,
                                                           ws, mask, obs)
                  : run_wormhole<true, false, false, false>(core, observer,
                                                            ws, mask, obs);
  }
  if (credits) {
    return binary ? run_wormhole<false, true, true, false>(core, observer,
                                                           ws, nullptr, obs)
                  : run_wormhole<false, false, true, false>(core, observer,
                                                            ws, nullptr, obs);
  }
  return binary ? run_wormhole<false, true, false, false>(core, observer, ws,
                                                          nullptr, obs)
                : run_wormhole<false, false, false, false>(
                      core, observer, ws, nullptr, obs);
}

}  // namespace mineq::sim
