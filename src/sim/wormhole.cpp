#include "sim/wormhole.hpp"

#include <stdexcept>
#include <vector>

#include "sim/fabric.hpp"

namespace mineq::sim {

namespace {

/// The wormhole discipline as a policy over FabricCore: packets decompose
/// into flits that pipeline through the per-port virtual-channel lanes of
/// a LanePool. The head flit claims an idle downstream lane and advances
/// as soon as it wins output-port arbitration; body and tail flits follow
/// through the reserved lane; the tail releases each lane as it passes.
/// One flit crosses each link per cycle.
///
/// \tparam kFaulted compile-time fault switch: the false instantiation
/// is the byte-identical unmasked fast path; the true instantiation
/// resolves every worm's out-port through the fault::FaultedWiring view
/// when its head is accepted — following the schedule while its arc
/// survives, detouring through the next surviving port otherwise, and
/// marking the lane *dropping* when the switch is dead so the worm (and
/// every flit still following its reservation) drains into the
/// dropped-at-fault counters instead of wedging the buffer.
///
/// \tparam kBinary compile-time radix-2 switch: radix() folds to the
/// literal 2 so the binary instantiations keep the historic shift/mask
/// code generation (see StoreAndForwardPolicy in engine.cpp).
template <bool kFaulted, bool kBinary>
class WormholePolicy {
 public:
  WormholePolicy(FabricCore& core, const EjectObserver& observer,
                 SimWorkspace& workspace,
                 [[maybe_unused]] const fault::FaultMask* mask)
      : core_(core),
        observer_(observer),
        radix_(static_cast<unsigned>(core.wiring().radix())),
        lanes_(core.config().lanes),
        length_(core.config().packet_length),
        pool_(workspace.lane_pool(
            static_cast<std::size_t>(core.stages()) * core.ports() * lanes_,
            core.config().lane_depth)),
        sources_(core.terminals()),
        total_flit_slots_(static_cast<double>(core.stages()) *
                          static_cast<double>(core.terminals()) *
                          static_cast<double>(lanes_) *
                          static_cast<double>(core.config().lane_depth)) {
    if constexpr (kFaulted) {
      faulted_ = fault::FaultedWiring(core.wiring(), *mask);
      dropping_.assign(
          static_cast<std::size_t>(core.stages()) * core.ports() * lanes_, 0);
    }
  }

  /// Eject at the last stage: one flit per terminal port per cycle,
  /// round-robin over the radix*lanes candidate lanes. Ejection links are
  /// terminal attachments, not wiring arcs, so they cannot fault.
  void eject(std::uint64_t cycle, bool measuring) {
    const int last = core_.stages() - 1;
    const std::uint32_t cells = core_.cells();
    const unsigned r = radix();
    for (std::uint32_t x = 0; x < cells; ++x) {
      for (unsigned port = 0; port < r; ++port) {
        RoundRobin& arb = core_.arbiter(last, x * r + port);
        for (unsigned probe = 0; probe < arb.size(); ++probe) {
          const unsigned c = arb.candidate(probe);
          const std::size_t l =
              lane_index(last, x * r + c / lanes_, c % lanes_);
          if (pool_.empty(l) || pool_.out_port(l) != port) continue;
          const Flit flit = pool_.pop(l);
          arb.grant(c);
          if (observer_) observer_(flit, cycle);
          if (measuring &&
              flit.inject_cycle >= core_.config().warmup_cycles) {
            ++core_.result.flits_delivered;
            if (flit.is_tail()) {
              core_.record_packet_delivered(
                  static_cast<double>(cycle - flit.inject_cycle + 1));
              if constexpr (kFaulted) {
                // A detoured worm ejects at whatever terminal the
                // surviving route reached; count the miss.
                if ((flit.dest_terminal / r) != x) {
                  ++core_.result.packets_misdelivered;
                }
              }
            }
          }
          break;
        }
      }
    }
    account_stage(last, measuring);
  }

  /// Advance one switch stage: one flit per output link per cycle; heads
  /// claim an idle downstream lane, body/tail flits follow the
  /// reservation. The next stage's routing-schedule reads (and, faulted,
  /// the mask probes) are hoisted to per-stage registers — see
  /// StoreAndForwardPolicy::advance_stage for the aliasing rationale.
  void advance_stage(int s, [[maybe_unused]] std::uint64_t cycle,
                     bool measuring) {
    const std::uint32_t cells = core_.cells();
    const unsigned r = radix();
    const auto down = core_.wiring().down_stage(s);
    // Routing constants for the target stage s + 1, where an advancing
    // head resolves its next out-port (ejection port when s + 1 is the
    // last stage).
    const bool target_ejects = s + 2 == core_.stages();
    unsigned bit_shift = 0;
    unsigned bit_invert = 0;
    std::uint32_t digit_scale = 1;
    const std::uint32_t* port_of_value = nullptr;
    if (!target_ejects) {
      if constexpr (kBinary) {
        bit_shift = static_cast<unsigned>(
            core_.engine().schedule().bit[static_cast<std::size_t>(s + 1)]);
        bit_invert = core_.engine()
                         .schedule()
                         .invert[static_cast<std::size_t>(s + 1)];
      } else {
        digit_scale = core_.engine().route_digit_scale(s + 1);
        port_of_value = core_.engine()
                            .digit_schedule()
                            .port_of_value[static_cast<std::size_t>(s + 1)]
                            .data();
      }
    }
    const auto route_next = [&](std::uint32_t dest) -> unsigned {
      if (target_ejects) return dest % r;
      if constexpr (kBinary) {
        return (((dest >> 1) >> bit_shift) & 1U) ^ bit_invert;
      } else {
        return port_of_value[((dest / r) / digit_scale) % r];
      }
    };
    // Faulted: arc bit index = stage base + the record's array offset
    // (FaultMask::arc_index's layout), with the policy's folded radix.
    [[maybe_unused]] std::size_t arc_base = 0;
    [[maybe_unused]] const fault::FaultMask* mask = nullptr;
    if constexpr (kFaulted) {
      drain_dropping(s, measuring);
      arc_base = static_cast<std::size_t>(s) * core_.ports();
      mask = &faulted_.mask();
    }
    for (std::uint32_t x = 0; x < cells; ++x) {
      for (unsigned port = 0; port < r; ++port) {
        if constexpr (kFaulted) {
          // A dead link transmits nothing (no worm ever resolves its
          // out-port onto a masked arc, so this is just a fast skip).
          if (mask->faulted_index(arc_base + x * r + port)) continue;
        }
        RoundRobin& arb = core_.arbiter(s, x * r + port);
        for (unsigned probe = 0; probe < arb.size(); ++probe) {
          const unsigned c = arb.candidate(probe);
          const std::size_t l = lane_index(s, x * r + c / lanes_, c % lanes_);
          if (pool_.empty(l) || pool_.out_port(l) != port) continue;
          // One packed read gives the child cell and its input slot —
          // the record value r * child + slot IS the downstream
          // port-slot index.
          const std::uint32_t record = down[x * r + port];
          const std::size_t target_first = lane_index(s + 1, record, 0);
          if (pool_.front(l).is_head()) {
            // The head claims an idle downstream lane.
            const int down_lane = pool_.find_idle_lane(target_first, lanes_);
            if (down_lane < 0) continue;  // blocked: no free lane
            const Flit flit = pool_.pop(l);
            if (!flit.is_tail()) pool_.set_downstream(l, down_lane);
            accept_head(target_first + static_cast<std::size_t>(down_lane),
                        flit, s + 1, record / r,
                        route_next(flit.dest_terminal), measuring);
          } else {
            // Body/tail flits follow through the reserved lane.
            const std::size_t down_l =
                target_first + static_cast<std::size_t>(pool_.downstream(l));
            if (!pool_.has_space(down_l)) continue;  // blocked: full
            pool_.accept(down_l, pool_.pop(l));
          }
          arb.grant(c);
          if (measuring) ++link_flit_hops_;
          break;
        }
      }
    }
    account_stage(s, measuring);
  }

  /// Inject at the first stage: terminal t feeds slot t % r of cell
  /// t / r, at most one flit per cycle. A terminal mid-packet keeps
  /// serializing into the claimed lane; an idle terminal draws the
  /// Bernoulli gate (bursty-OFF terminals skip the attempt) and its head
  /// needs an idle lane or the packet is refused at the source.
  void inject(std::uint64_t cycle, bool measuring) {
    const unsigned r = radix();
    for (std::uint64_t t = 0; t < core_.terminals(); ++t) {
      SourceState& src = sources_[t];
      if (src.remaining > 0) {
        const std::size_t l =
            lane_index(0, t, static_cast<std::size_t>(src.lane));
        if (pool_.has_space(l)) {
          pool_.accept(l, make_flit(src.id, src.dest, src.inject_cycle,
                                    src.next_index, length_));
          ++src.next_index;
          --src.remaining;
          if (measuring) ++core_.result.flits_injected;
        }
        continue;  // the source link is busy with the current packet
      }
      if (!core_.terminal_active(t)) continue;
      if (!core_.gate()) continue;
      if (measuring) ++core_.result.offered;
      const int lane = pool_.find_idle_lane(lane_index(0, t, 0), lanes_);
      if (lane < 0) continue;  // refused at source
      const std::uint32_t dest =
          core_.destination(static_cast<std::uint32_t>(t));
      const std::uint32_t id = next_packet_id_++;
      accept_head(lane_index(0, t, static_cast<std::size_t>(lane)),
                  make_flit(id, dest, cycle, 0, length_), 0,
                  static_cast<std::uint32_t>(t / r),
                  core_.engine().route_port(0, dest), measuring);
      src.dest = dest;
      src.id = id;
      src.inject_cycle = cycle;
      src.next_index = 1;
      src.remaining = length_ - 1;
      src.lane = lane;
      if (measuring) {
        ++core_.result.injected;
        ++core_.result.flits_injected;
      }
    }
  }

  /// Sample buffer occupancy (measured cycles only).
  void sample(std::uint64_t /*cycle*/) {
    core_.result.lane_occupancy.add(
        static_cast<double>(pool_.occupied_flits()) / total_flit_slots_);
  }

  [[nodiscard]] std::uint64_t buffered_flits() const {
    return pool_.occupied_flits();
  }
  [[nodiscard]] std::uint64_t link_counter() const { return link_flit_hops_; }

 private:
  /// Per-terminal injection state: the packet currently serializing into
  /// the first stage (flits are materialized on the fly) and the lane
  /// that worm claimed.
  struct SourceState {
    std::uint32_t dest = 0;
    std::uint32_t id = 0;
    std::uint64_t inject_cycle = 0;
    std::size_t next_index = 0;
    std::size_t remaining = 0;
    int lane = -1;
  };

  /// The radix, folded to the literal 2 in the binary instantiations.
  [[nodiscard]] unsigned radix() const noexcept {
    if constexpr (kBinary) {
      return 2U;
    } else {
      return radix_;
    }
  }

  [[nodiscard]] std::size_t lane_index(int s, std::size_t port_index,
                                       std::size_t lane) const {
    return (static_cast<std::size_t>(s) * core_.ports() + port_index) *
               lanes_ +
           lane;
  }

  /// Accept \p head into lane \p l of cell \p y at stage \p s with the
  /// caller-resolved scheduled out-port \p desired (callers hoist the
  /// schedule reads per stage). Unfaulted: the port is taken as is.
  /// Faulted interior stages route through the FaultedWiring view —
  /// scheduled port, next surviving port (counted as a reroute), or a
  /// dead switch, which puts the lane in dropping mode so the worm
  /// drains into the fault counters. Last-stage out-ports are ejection
  /// ports and cannot fault.
  void accept_head(std::size_t l, const Flit& head, int s, std::uint32_t y,
                   unsigned desired, [[maybe_unused]] bool measuring) {
    if constexpr (kFaulted) {
      if (s + 1 < core_.stages()) {
        const int port = faulted_.usable_port(s, y, desired);
        if (port < 0) {
          // Dead switch: park the worm in dropping mode; drain_dropping
          // discards it (and its following flits) next cycle.
          pool_.accept_head(l, head, 0);
          dropping_[l] = 1;
          return;
        }
        if (static_cast<unsigned>(port) != desired && measuring &&
            head.inject_cycle >= core_.config().warmup_cycles) {
          ++core_.result.packets_rerouted;
        }
        pool_.accept_head(l, head, static_cast<unsigned>(port));
        return;
      }
    }
    pool_.accept_head(l, head, desired);
  }

  /// Discard every buffered flit of the dropping-mode lanes of stage
  /// \p s. Popping the tail resets the lane to idle (via LanePool) and
  /// ends dropping mode; until then, flits still following the worm's
  /// reservation keep arriving and are drained on their next turn.
  void drain_dropping(int s, bool measuring) {
    const std::size_t first = lane_index(s, 0, 0);
    const std::size_t count = core_.ports() * lanes_;
    for (std::size_t l = first; l < first + count; ++l) {
      if (dropping_[l] == 0) continue;
      while (!pool_.empty(l)) {
        const Flit flit = pool_.pop(l);
        if (measuring && flit.inject_cycle >= core_.config().warmup_cycles) {
          ++core_.result.flits_dropped_faulted;
          if (flit.is_head()) ++core_.result.packets_dropped_faulted;
        }
        if (flit.is_tail()) dropping_[l] = 0;
      }
    }
  }

  /// Count stalled worms of one stage and reset per-cycle movement
  /// flags. Called right after the stage had its switching (or ejection)
  /// opportunity, before upstream pushes refill it.
  void account_stage(int s, bool measuring) {
    const std::size_t first = lane_index(s, 0, 0);
    const std::size_t count = core_.ports() * lanes_;
    for (std::size_t l = first; l < first + count; ++l) {
      if (measuring && !pool_.empty(l) && !pool_.moved(l)) {
        ++core_.result.hol_blocking_cycles;
      }
      pool_.clear_moved(l);
    }
  }

  FabricCore& core_;
  const EjectObserver& observer_;
  unsigned radix_;
  std::size_t lanes_;
  std::uint64_t length_;
  LanePool& pool_;
  std::vector<SourceState> sources_;
  std::uint32_t next_packet_id_ = 0;
  std::uint64_t link_flit_hops_ = 0;
  double total_flit_slots_;
  fault::FaultedWiring faulted_;        // kFaulted only
  std::vector<std::uint8_t> dropping_;  // kFaulted only
};

/// Out of line on purpose — see run_saf in engine.cpp.
template <bool kFaulted, bool kBinary>
#if defined(__GNUC__)
[[gnu::noinline]]
#endif
SimResult
run_wormhole(FabricCore& core, const EjectObserver& observer,
             SimWorkspace& workspace, const fault::FaultMask* mask) {
  WormholePolicy<kFaulted, kBinary> policy(core, observer, workspace, mask);
  return run_switched(core, policy);
}

}  // namespace

SimResult WormholeSimulator::run(Pattern pattern,
                                 const SimConfig& config) const {
  return run(pattern, config, EjectObserver());
}

SimResult WormholeSimulator::run(Pattern pattern, const SimConfig& config,
                                 const EjectObserver& observer) const {
  return run(pattern, config, observer, nullptr, nullptr);
}

SimResult WormholeSimulator::run(Pattern pattern, const SimConfig& config,
                                 const EjectObserver& observer,
                                 const fault::FaultMask* mask,
                                 SimWorkspace* workspace) const {
  config.validate();
  const bool faulted = mask != nullptr && !mask->none();
  if (faulted && !mask->matches(engine_.wiring())) {
    throw std::invalid_argument(
        "WormholeSimulator::run: fault mask geometry does not match");
  }
  SimWorkspace local;
  SimWorkspace& ws = workspace != nullptr ? *workspace : local;
  FabricCore core(
      engine_, pattern, config,
      static_cast<unsigned>(static_cast<std::size_t>(engine_.radix()) *
                            config.lanes));
  const bool binary = engine_.radix() == 2;
  if (faulted) {
    return binary ? run_wormhole<true, true>(core, observer, ws, mask)
                  : run_wormhole<true, false>(core, observer, ws, mask);
  }
  return binary ? run_wormhole<false, true>(core, observer, ws, nullptr)
                : run_wormhole<false, false>(core, observer, ws, nullptr);
}

}  // namespace mineq::sim
