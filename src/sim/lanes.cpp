#include "sim/lanes.hpp"

#include <stdexcept>

namespace mineq::sim {

void Lane::accept_head(const Flit& head, unsigned out_port) {
  if (busy_ || !head.is_head()) {
    throw std::logic_error("Lane::accept_head: lane busy or flit not a head");
  }
  busy_ = true;
  tail_in_ = head.is_tail();
  out_port_ = out_port;
  downstream_ = -1;
  fifo_.push_back(head);
}

void Lane::accept(const Flit& flit) {
  if (!busy_ || tail_in_ || flit.is_head()) {
    throw std::logic_error("Lane::accept: flit does not continue the worm");
  }
  if (!has_space()) {
    throw std::logic_error("Lane::accept: lane full");
  }
  tail_in_ = flit.is_tail();
  fifo_.push_back(flit);
}

Flit Lane::pop() {
  if (fifo_.empty()) {
    throw std::logic_error("Lane::pop: lane empty");
  }
  const Flit flit = fifo_.front();
  fifo_.pop_front();
  moved_ = true;
  if (flit.is_tail()) {
    // The worm has fully left: release the lane and its allocation.
    busy_ = false;
    tail_in_ = false;
    downstream_ = -1;
  }
  return flit;
}

LaneBuffer::LaneBuffer(std::size_t lanes, std::size_t depth)
    : lanes_(lanes, Lane(depth)) {
  if (lanes == 0 || depth == 0) {
    throw std::invalid_argument("LaneBuffer: need at least one lane slot");
  }
}

int LaneBuffer::find_idle_lane() const noexcept {
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    if (lanes_[i].idle()) return static_cast<int>(i);
  }
  return -1;
}

std::size_t LaneBuffer::occupied_flits() const noexcept {
  std::size_t total = 0;
  for (const Lane& lane : lanes_) total += lane.size();
  return total;
}

}  // namespace mineq::sim
