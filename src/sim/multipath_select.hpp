/// \file multipath_select.hpp
/// \brief The shared pieces of the path-selection seam both switching
/// policies run on multipath fabrics.
///
/// Both disciplines face the same choice at every hop of a multipath
/// fabric: the engine's route_group names a set of equivalent out-ports
/// (any port at a free Benes connection, the dilation group at a forced
/// one), and the configured PathPolicy picks one. The deterministic
/// plane-hash and the fault-degraded in-group re-selection are pure
/// functions of (destination, injection cycle, stage) and the mask, so
/// they live here once; the occupancy metric of the adaptive policy is
/// discipline-specific (packet FIFOs vs flit lanes) and stays in the
/// policies.

#pragma once

#include <cstdint>

#include "fault/fault_mask.hpp"

namespace mineq::sim {

/// SplitMix64-style finalizer over (dest, inject_cycle, stage): the
/// deterministic spreading function of PathPolicy::kHash. Stateless, so
/// a packet hashes to the same path member at every re-evaluation within
/// a cycle, and runs stay reproducible across thread counts.
[[nodiscard]] inline std::uint64_t path_mix(std::uint64_t dest,
                                            std::uint64_t inject_cycle,
                                            std::uint64_t stage) {
  std::uint64_t x = dest + 0x9e3779b97f4a7c15ULL * (inject_cycle + 1) +
                    0x94d049bb133111ebULL * (stage + 1);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Fault-degraded in-group re-selection: the next surviving member of
/// the equivalent-path group [base, base + count) after \p desired,
/// scanning cyclically, or -1 when the whole group is masked. \p arc_row
/// is the mask bit index of the switch's port-0 out-arc
/// (fault::FaultMask::arc_index layout).
[[nodiscard]] inline int surviving_group_member(const fault::FaultMask& mask,
                                                std::size_t arc_row,
                                                unsigned base, unsigned count,
                                                unsigned desired) {
  unsigned offset = desired - base;
  for (unsigned step = 1; step < count; ++step) {
    ++offset;
    if (offset >= count) offset -= count;
    if (!mask.faulted_index(arc_row + base + offset)) {
      return static_cast<int>(base + offset);
    }
  }
  return -1;
}

}  // namespace mineq::sim
