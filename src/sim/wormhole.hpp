/// \file wormhole.hpp
/// \brief Flit-level wormhole switching over an Engine's network.
///
/// Packets decompose into flits (flit.hpp) that pipeline through per-port
/// multi-lane buffers (the LanePool of fabric.hpp): the head flit claims
/// an idle lane at the next switch and advances as soon as it wins
/// output-port arbitration; body and tail flits follow through the
/// reserved lanes; the tail releases each lane as it passes. One flit
/// crosses each link per cycle. Deterministic given the seed, like the
/// store-and-forward path; Engine::run dispatches here when
/// SimConfig::mode is kWormhole. Both disciplines are policies over the
/// shared FabricCore (fabric.hpp).

#pragma once

#include <cstdint>
#include <functional>

#include "sim/engine.hpp"
#include "sim/flit.hpp"

namespace mineq::sim {

/// Called for every flit ejected at the last stage, in ejection order.
/// Tests use this to check worm invariants (head first, tail last, one
/// flit per packet per cycle).
using EjectObserver = std::function<void(const Flit&, std::uint64_t cycle)>;

/// The wormhole discipline, borrowing the Engine's verified network,
/// schedule and wiring. Cheap to construct; the referenced Engine must
/// outlive it.
class WormholeSimulator {
 public:
  explicit WormholeSimulator(const Engine& engine) : engine_(engine) {}

  /// Run one wormhole simulation (SimConfig::mode is ignored).
  [[nodiscard]] SimResult run(Pattern pattern, const SimConfig& config) const;

  /// Same, reporting every ejected flit to \p observer.
  SimResult run(Pattern pattern, const SimConfig& config,
                const EjectObserver& observer) const;

  /// Full form: optional fault mask (degraded-mode routing over the
  /// surviving arcs; null or all-clear takes the unmasked fast path) and
  /// optional reusable payload-pool workspace. Semantics match
  /// Engine::run's four-argument form.
  SimResult run(Pattern pattern, const SimConfig& config,
                const EjectObserver& observer, const fault::FaultMask* mask,
                SimWorkspace* workspace = nullptr) const;

 private:
  const Engine& engine_;
};

}  // namespace mineq::sim
