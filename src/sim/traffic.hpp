/// \file traffic.hpp
/// \brief Traffic patterns over the 2^n terminals of an n-stage MIN.
///
/// The standard synthetic workloads of the interconnection-network
/// literature, expressed on n-bit terminal addresses. Terminal t attaches
/// to first-stage cell t >> 1; destination terminal d detaches from
/// last-stage cell d >> 1 through port d & 1.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "perm/permutation.hpp"
#include "util/rng.hpp"

namespace mineq::sim {

/// Deterministic address-transform patterns (all permutations of the
/// terminal space), plus random modes handled by TrafficSource.
enum class Pattern : std::uint8_t {
  kUniform,      ///< independent uniform destination per packet
  kBitReversal,  ///< d = reverse of the n address bits
  kShuffle,      ///< d = rotate-left(src)
  kTranspose,    ///< d = swap high/low halves (n must be even)
  kComplement,   ///< d = ~src
  kHotSpot,      ///< biased toward terminal 0 (kHotSpotNumerator/Denominator)
  kBursty,       ///< uniform destinations, two-state Markov on/off injection
};

/// All patterns, in declaration order (handy for sweeps and round-trips).
[[nodiscard]] const std::vector<Pattern>& all_patterns();

/// Parse/emit pattern names ("uniform", "bitrev", "shuffle", "transpose",
/// "complement", "hotspot", "bursty").
[[nodiscard]] std::string pattern_name(Pattern p);

/// Inverse of pattern_name.
/// \throws std::invalid_argument on an unknown name.
[[nodiscard]] Pattern parse_pattern(std::string_view name);

/// The deterministic patterns as explicit terminal permutations.
/// \throws std::invalid_argument for kUniform/kHotSpot/kBursty (not
/// permutations) or kTranspose with odd n.
[[nodiscard]] perm::Permutation pattern_permutation(Pattern p, int n);

/// Two-state Markov (Gilbert) on/off injection modulator: each terminal
/// is independently ON (injecting at the configured Bernoulli rate) or
/// OFF (silent), with geometric sojourn times. Used by both switching
/// disciplines when the pattern is kBursty; one transition draw per
/// terminal per cycle keeps runs deterministic given the seed.
class BurstModulator {
 public:
  /// ON -> OFF with probability 1/8 per cycle (mean burst 8 cycles).
  static constexpr std::uint64_t kOnToOffNum = 1;
  static constexpr std::uint64_t kOnToOffDen = 8;
  /// OFF -> ON with probability 1/24 per cycle (mean idle 24 cycles);
  /// stationary duty cycle 1/4.
  static constexpr std::uint64_t kOffToOnNum = 1;
  static constexpr std::uint64_t kOffToOnDen = 24;

  /// Terminals start in independent stationary-distribution states.
  BurstModulator(std::size_t terminals, util::SplitMix64 rng);

  /// Advance every terminal by one cycle (one RNG draw per terminal).
  void advance();

  /// Is terminal \p t in its ON state this cycle?
  [[nodiscard]] bool on(std::size_t t) const { return on_[t] != 0; }

 private:
  std::vector<std::uint8_t> on_;
  util::SplitMix64 rng_;
};

/// Per-packet destination generator. Deterministic patterns ignore the
/// RNG; kUniform draws uniformly; kHotSpot sends 25% of traffic to
/// terminal 0 and the rest uniformly.
class TrafficSource {
 public:
  TrafficSource(Pattern pattern, int n, util::SplitMix64 rng);

  /// Destination terminal for a packet injected at \p source.
  [[nodiscard]] std::uint32_t destination(std::uint32_t source);

  [[nodiscard]] Pattern pattern() const noexcept { return pattern_; }
  [[nodiscard]] int address_bits() const noexcept { return n_; }

 private:
  Pattern pattern_;
  int n_;
  util::SplitMix64 rng_;
};

}  // namespace mineq::sim
