/// \file traffic.hpp
/// \brief Traffic patterns over the r^n terminals of an n-stage radix-r
/// MIN.
///
/// The standard synthetic workloads of the interconnection-network
/// literature, expressed on n-digit base-r terminal addresses (n bits at
/// the historic radix 2). Terminal t attaches to first-stage cell t / r;
/// destination terminal d detaches from last-stage cell d / r through
/// port d % r. The deterministic address transforms generalize
/// digit-wise: bit reversal becomes digit reversal, shuffle a digit
/// rotation, complement the digit-wise (r-1)-complement; at r = 2 every
/// transform (and every RNG draw) is bit-for-bit the historic binary
/// behavior.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "perm/permutation.hpp"
#include "util/rng.hpp"

namespace mineq::sim {

/// Deterministic address-transform patterns (all permutations of the
/// terminal space), plus random modes handled by TrafficSource.
enum class Pattern : std::uint8_t {
  kUniform,      ///< independent uniform destination per packet
  kBitReversal,  ///< d = reverse of the n address bits
  kShuffle,      ///< d = rotate-left(src)
  kTranspose,    ///< d = swap high/low halves (n must be even)
  kComplement,   ///< d = ~src
  kHotSpot,      ///< biased toward terminal 0 (kHotSpotNumerator/Denominator)
  kBursty,       ///< uniform destinations, two-state Markov on/off injection
  /// d = an explicit caller-supplied permutation (SimConfig::permutation;
  /// how the looping tests drive a Benes). Programmatic-only: not listed
  /// by all_patterns() and not parseable, since a CLI token cannot carry
  /// the table.
  kPermutation,
  // Appended after kPermutation so the historic enum values (and every
  // serialized artifact carrying them) stay stable.
  kTornado,        ///< d = (s + ceil(N/2) - 1) mod N, the half-spin adversary
  kDigitNeighbor,  ///< d = digit-wise (s_i + 1) mod r (complement at r = 2)
  /// All-to-all collective phases: at phase p every terminal s sends to
  /// (s + p) mod N; the phase advances once per cycle through 1..N-1
  /// (via TrafficSource::tick), so each cycle is a conflict-light shift
  /// permutation and a full sweep touches every partner once.
  kAllToAll,
};

/// All *nameable* patterns, in declaration order (handy for sweeps and
/// round-trips; excludes the programmatic-only kPermutation).
[[nodiscard]] const std::vector<Pattern>& all_patterns();

/// Parse/emit pattern names ("uniform", "bitrev", "shuffle", "transpose",
/// "complement", "hotspot", "bursty", "tornado", "digitneighbor",
/// "alltoall").
[[nodiscard]] std::string pattern_name(Pattern p);

/// Inverse of pattern_name.
/// \throws std::invalid_argument on an unknown name.
[[nodiscard]] Pattern parse_pattern(std::string_view name);

/// The deterministic patterns as explicit terminal permutations.
/// \throws std::invalid_argument for kUniform/kHotSpot/kBursty/kAllToAll
/// (random or phase-driven, no single permutation) or kTranspose with
/// odd n; messages name the pattern / offending n.
[[nodiscard]] perm::Permutation pattern_permutation(Pattern p, int n);

/// The two-state Markov transition probabilities of the bursty on/off
/// process. Mean burst length is 1/on_to_off cycles, mean idle length
/// 1/off_to_on, stationary duty off_to_on / (on_to_off + off_to_on) —
/// the defaults reproduce the classic mean burst 8 / idle 24 / duty 1/4
/// workload. Swept through SimConfig::burst and mineq_sweep's
/// --burst-on-off / --burst-off-on axes.
struct BurstParams {
  double on_to_off = 1.0 / 8.0;   ///< P(ON -> OFF) per cycle
  double off_to_on = 1.0 / 24.0;  ///< P(OFF -> ON) per cycle

  /// Both probabilities must be finite and within (0, 1]: zero would
  /// freeze a terminal in one state forever, anything above 1 is not a
  /// probability.
  /// \throws std::invalid_argument
  void validate() const;

  friend bool operator==(const BurstParams&, const BurstParams&) = default;
};

/// Two-state Markov (Gilbert) on/off injection modulator: each terminal
/// is independently ON (injecting at the configured Bernoulli rate) or
/// OFF (silent), with geometric sojourn times set by BurstParams. Used
/// by both switching disciplines when the pattern is kBursty; one
/// transition draw per terminal per cycle keeps runs deterministic given
/// the seed.
class BurstModulator {
 public:
  /// Terminals start in independent stationary-distribution states.
  /// \throws std::invalid_argument via BurstParams::validate().
  BurstModulator(std::size_t terminals, util::SplitMix64 rng,
                 BurstParams params = {});

  /// Advance every terminal by one cycle (one RNG draw per terminal).
  void advance();

  /// Is terminal \p t in its ON state this cycle?
  [[nodiscard]] bool on(std::size_t t) const { return on_[t] != 0; }

 private:
  std::vector<std::uint8_t> on_;
  util::SplitMix64 rng_;
  /// 32-bit fixed-point transition gates (util::probability_threshold).
  std::uint64_t on_off_threshold_ = 0;
  std::uint64_t off_on_threshold_ = 0;
};

/// Per-packet destination generator. Deterministic patterns ignore the
/// RNG; kUniform draws uniformly; kHotSpot sends 25% of traffic to
/// terminal 0 and the rest uniformly.
class TrafficSource {
 public:
  /// The historic binary form: n-bit addresses (radix 2).
  TrafficSource(Pattern pattern, int n, util::SplitMix64 rng);

  /// General form: \p n base-\p radix address digits (r^n terminals).
  /// \throws std::invalid_argument on an out-of-range shape or an odd
  /// digit count with kTranspose.
  TrafficSource(Pattern pattern, int n, int radix, util::SplitMix64 rng);

  /// Full form with an explicit destination table for kPermutation
  /// (ignored — and allowed empty — for every other pattern).
  /// \throws std::invalid_argument if \p pattern is kPermutation and
  /// \p permutation is not a bijection over the r^n terminals.
  TrafficSource(Pattern pattern, int n, int radix, util::SplitMix64 rng,
                std::vector<std::uint32_t> permutation);

  /// Destination terminal for a packet injected at \p source.
  [[nodiscard]] std::uint32_t destination(std::uint32_t source);

  /// Advance per-cycle pattern state: the kAllToAll collective steps to
  /// its next phase permutation. A no-op (and no RNG draw) for every
  /// other pattern, so their streams are untouched.
  void tick() noexcept {
    if (pattern_ == Pattern::kAllToAll) {
      ++phase_;
      if (phase_ >= terminals_) phase_ = 1;
    }
  }

  [[nodiscard]] Pattern pattern() const noexcept { return pattern_; }
  [[nodiscard]] int address_bits() const noexcept { return n_; }
  [[nodiscard]] int radix() const noexcept { return radix_; }

 private:
  Pattern pattern_;
  int n_;
  int radix_;
  std::uint64_t terminals_;
  util::SplitMix64 rng_;
  std::uint64_t phase_ = 1;  ///< kAllToAll: current shift, 1 .. N-1
  std::vector<std::uint32_t> permutation_;  ///< kPermutation only
};

}  // namespace mineq::sim
