/// \file flit.hpp
/// \brief Flow-control units (flits) for the wormhole discipline.
///
/// A packet of length L decomposes into one head flit, L-2 body flits and
/// one tail flit (a single-flit packet is head and tail at once). The head
/// carries the routing decision and reserves a lane at every hop; the tail
/// releases it. All flits of a packet share its id and injection cycle, so
/// delivery-order invariants (tail follows head, one worm per lane) are
/// checkable from the outside.

#pragma once

#include <cstdint>

namespace mineq::sim {

/// One flow-control unit. Plain data; 16 bytes. The service level (sl),
/// source terminal and workload tag ride in bits carved out of the cycle
/// counter: packets carry them from injection to ejection so credit-mode
/// runs can report per-SL latency, worms map onto their virtual lane
/// (see SimConfig::credits), the observability layer can attribute
/// delivered latency to its (source, destination) flow, and the
/// closed-loop workload can tell a delivered request from a reply
/// (workload::kTagRequest / kTagReply). 32 cycle bits bound runs at 2^32
/// cycles, 22 source bits at 2^22 terminals — both far past anything the
/// simulators accept.
struct Flit {
  std::uint32_t packet_id = 0;     ///< unique per injected packet
  std::uint32_t dest_terminal = 0; ///< copied from the packet
  std::uint64_t inject_cycle : 32; ///< head's injection cycle
  std::uint64_t src : 22;          ///< source (logical) terminal
  std::uint64_t sl : 6;            ///< service level (0 without credits)
  std::uint64_t tag : 2;           ///< workload tag (0 / request / reply)
  std::uint64_t head : 1;          ///< first flit of its packet
  std::uint64_t tail : 1;          ///< last flit of its packet

  constexpr Flit()
      : inject_cycle(0), src(0), sl(0), tag(0), head(0), tail(0) {}

  [[nodiscard]] constexpr bool is_head() const noexcept { return head != 0; }
  [[nodiscard]] constexpr bool is_tail() const noexcept { return tail != 0; }
};

/// The \p index-th flit (0-based) of a packet of \p length flits.
[[nodiscard]] constexpr Flit make_flit(std::uint32_t packet_id,
                                       std::uint32_t dest_terminal,
                                       std::uint32_t src_terminal,
                                       std::uint64_t inject_cycle,
                                       std::size_t index,
                                       std::size_t length,
                                       unsigned sl = 0,
                                       unsigned tag = 0) noexcept {
  Flit flit;
  flit.packet_id = packet_id;
  flit.dest_terminal = dest_terminal;
  flit.inject_cycle = inject_cycle & ((std::uint64_t{1} << 32) - 1);
  flit.src = src_terminal & ((std::uint32_t{1} << 22) - 1);
  flit.sl = sl & 0x3FU;
  flit.tag = tag & 0x3U;
  flit.head = index == 0 ? 1 : 0;
  flit.tail = index + 1 == length ? 1 : 0;
  return flit;
}

}  // namespace mineq::sim
