/// \file lanes.hpp
/// \brief Multi-lane (virtual-channel) input buffers for wormhole switching.
///
/// Every switch input port owns a LaneBuffer of `lanes` independent Lane
/// FIFOs, each `depth` flits deep. A lane holds flits of at most one
/// packet (one worm) at a time: a head flit claims an idle lane, body and
/// tail flits of the same packet follow through it, and popping the tail
/// returns the lane to idle. The RoundRobin arbiter is the shared
/// fairness primitive of both switching disciplines.

#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/flit.hpp"

namespace mineq::sim {

/// Rotating-priority pointer over a fixed candidate ring. Callers probe
/// candidate(0), candidate(1), ... in order and grant() the winner, which
/// moves it to lowest priority for the next round.
class RoundRobin {
 public:
  explicit RoundRobin(unsigned size = 1) : size_(size == 0 ? 1 : size) {}

  /// The candidate to try at probe position \p probe (0-based).
  [[nodiscard]] unsigned candidate(unsigned probe) const noexcept {
    return (next_ + probe) % size_;
  }

  /// Record that \p winner was served; it now has lowest priority.
  void grant(unsigned winner) noexcept { next_ = (winner + 1) % size_; }

  [[nodiscard]] unsigned size() const noexcept { return size_; }

 private:
  unsigned size_;
  unsigned next_ = 0;
};

/// One virtual channel: a bounded flit FIFO plus worm bookkeeping.
class Lane {
 public:
  explicit Lane(std::size_t depth) : depth_(depth) {}

  /// Free for a new worm: no flits buffered and no tail outstanding.
  [[nodiscard]] bool idle() const noexcept { return !busy_; }

  /// Flits currently buffered.
  [[nodiscard]] std::size_t size() const noexcept { return fifo_.size(); }
  [[nodiscard]] bool empty() const noexcept { return fifo_.empty(); }

  /// Room for one more flit of the current worm.
  [[nodiscard]] bool has_space() const noexcept {
    return fifo_.size() < depth_;
  }

  /// Claim this (idle) lane for a new worm whose head is \p head and
  /// which leaves this buffer through \p out_port.
  void accept_head(const Flit& head, unsigned out_port);

  /// Append a body/tail flit of the current worm.
  void accept(const Flit& flit);

  /// The head-of-line flit; lane must be non-empty.
  [[nodiscard]] const Flit& front() const { return fifo_.front(); }

  /// Remove and return the head-of-line flit. Popping the tail resets the
  /// lane to idle (the worm has fully left).
  Flit pop();

  /// Out-port of the worm currently occupying the lane.
  [[nodiscard]] unsigned out_port() const noexcept { return out_port_; }

  /// Downstream lane index allocated to the worm (-1 until the head
  /// advances).
  [[nodiscard]] int downstream() const noexcept { return downstream_; }
  void set_downstream(int lane) noexcept { downstream_ = lane; }

  /// Did pop() run since the last clear_moved()? Used for head-of-line
  /// blocking accounting.
  [[nodiscard]] bool moved() const noexcept { return moved_; }
  void clear_moved() noexcept { moved_ = false; }

 private:
  std::deque<Flit> fifo_;
  std::size_t depth_;
  bool busy_ = false;     ///< a worm occupies (or still owes flits to) the lane
  bool tail_in_ = false;  ///< the worm's tail has been enqueued
  bool moved_ = false;
  unsigned out_port_ = 0;
  int downstream_ = -1;
};

/// The multi-lane buffer of one switch input port.
class LaneBuffer {
 public:
  LaneBuffer(std::size_t lanes, std::size_t depth);

  [[nodiscard]] std::size_t lane_count() const noexcept {
    return lanes_.size();
  }
  [[nodiscard]] Lane& lane(std::size_t i) { return lanes_[i]; }
  [[nodiscard]] const Lane& lane(std::size_t i) const { return lanes_[i]; }

  /// Index of some idle lane, or -1 if every lane is claimed.
  [[nodiscard]] int find_idle_lane() const noexcept;

  /// Total flits buffered across all lanes.
  [[nodiscard]] std::size_t occupied_flits() const noexcept;

 private:
  std::vector<Lane> lanes_;
};

}  // namespace mineq::sim
