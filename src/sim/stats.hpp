/// \file stats.hpp
/// \brief Accumulators for the packet simulator: running moments and
/// fixed-width histograms.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mineq::sim {

/// Streaming count/mean/min/max/stddev accumulator (Welford).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Merge another accumulator into this one (parallel-friendly).
  void merge(const RunningStats& other);

  [[nodiscard]] std::string str() const;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Histogram over [0, bucket_width * buckets) with an overflow bucket.
class Histogram {
 public:
  Histogram(double bucket_width, std::size_t buckets);

  void add(double x);

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const noexcept {
    return counts_;
  }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] double bucket_width() const noexcept { return bucket_width_; }
  /// Fraction of the recorded mass past the covered range (0 when
  /// empty) — the "did my quantiles clamp?" signal.
  [[nodiscard]] double overflow_fraction() const noexcept {
    return total_ == 0
               ? 0.0
               : static_cast<double>(overflow_) / static_cast<double>(total_);
  }

  /// Merge another histogram of identical shape into this one
  /// (parallel-friendly; overflow mass merges too).
  /// \throws std::invalid_argument on a bucket-width or bucket-count
  /// mismatch.
  void merge(const Histogram& other);

  /// Smallest x with cumulative fraction >= q (bucket upper edge).
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::string str() const;

 private:
  double bucket_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace mineq::sim
