#include "sim/perm_routing.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "min/routing.hpp"

namespace mineq::sim {

namespace {

/// slot_map[s][x][p] = input slot of the child cell fed by the port-p
/// out-link of cell x at stage s (same deterministic assignment as the
/// packet engine).
std::vector<std::vector<std::array<std::uint8_t, 2>>> compute_slot_map(
    const min::MIDigraph& g) {
  const std::uint32_t cells = g.cells_per_stage();
  std::vector<std::vector<std::array<std::uint8_t, 2>>> slot_map(
      static_cast<std::size_t>(g.stages() - 1));
  for (int s = 0; s + 1 < g.stages(); ++s) {
    auto& stage = slot_map[static_cast<std::size_t>(s)];
    stage.assign(cells, {0, 0});
    std::vector<std::uint8_t> filled(cells, 0);
    const min::Connection& conn = g.connection(s);
    for (std::uint32_t x = 0; x < cells; ++x) {
      for (unsigned p = 0; p < 2; ++p) {
        const std::uint32_t child =
            p == 0 ? conn.f_table()[x] : conn.g_table()[x];
        stage[x][p] = filled[child]++;
      }
    }
  }
  return slot_map;
}

void check_terminal_permutation(const min::MIDigraph& g,
                                const perm::Permutation& pi) {
  const std::size_t terminals = std::size_t{2} * g.cells_per_stage();
  if (pi.size() != terminals) {
    throw std::invalid_argument(
        "permutation size must equal the terminal count 2^stages");
  }
}

}  // namespace

bool is_admissible(const min::MIDigraph& g, const perm::Permutation& pi) {
  check_terminal_permutation(g, pi);
  const std::uint32_t cells = g.cells_per_stage();
  const std::size_t terminals = std::size_t{2} * cells;
  // used[s][2*x + p]: the port-p out-link of cell x at stage s is taken.
  std::vector<std::vector<char>> used(
      static_cast<std::size_t>(g.stages() - 1),
      std::vector<char>(std::size_t{2} * cells, 0));
  for (std::size_t t = 0; t < terminals; ++t) {
    const auto src_cell = static_cast<std::uint32_t>(t >> 1);
    const std::uint32_t dst_cell = pi(static_cast<std::uint32_t>(t)) >> 1;
    const auto route = min::find_route(g, src_cell, dst_cell);
    if (!route.has_value()) return false;
    for (int s = 0; s + 1 < g.stages(); ++s) {
      auto& flag =
          used[static_cast<std::size_t>(s)]
              [std::size_t{2} * route->cells[static_cast<std::size_t>(s)] +
               route->ports[static_cast<std::size_t>(s)]];
      if (flag != 0) return false;
      flag = 1;
    }
  }
  return true;
}

bool omega_window_admissible(const perm::Permutation& pi, int stages) {
  if (stages < 2) {
    throw std::invalid_argument("omega_window_admissible: stages >= 2");
  }
  const std::uint32_t terminals = std::uint32_t{1} << stages;
  if (pi.size() != terminals) {
    throw std::invalid_argument(
        "omega_window_admissible: permutation size mismatch");
  }
  const int w = stages - 1;
  std::vector<std::uint32_t> window(terminals);
  for (int k = 1; k <= stages - 1; ++k) {
    for (std::uint32_t t = 0; t < terminals; ++t) {
      const std::uint32_t source_cell = t >> 1;
      const std::uint32_t dest_cell = pi(t) >> 1;
      window[t] =
          ((source_cell << k) | (dest_cell >> (w - k))) & (terminals - 1);
    }
    std::sort(window.begin(), window.end());
    for (std::uint32_t i = 0; i + 1 < terminals; ++i) {
      if (window[i] == window[i + 1]) return false;
    }
  }
  return true;
}

std::uint64_t count_admissible_exhaustive(const min::MIDigraph& g) {
  const std::size_t terminals = std::size_t{2} * g.cells_per_stage();
  if (terminals > 8) {
    throw std::invalid_argument(
        "count_admissible_exhaustive: more than 8 terminals");
  }
  std::vector<std::uint32_t> image(terminals);
  std::iota(image.begin(), image.end(), 0U);
  std::uint64_t count = 0;
  do {
    if (is_admissible(g, perm::Permutation(image))) ++count;
  } while (std::next_permutation(image.begin(), image.end()));
  return count;
}

std::uint64_t admissible_count_theoretical(const min::MIDigraph& g) {
  const std::uint64_t switches =
      static_cast<std::uint64_t>(g.stages()) * g.cells_per_stage();
  if (switches >= 64) {
    throw std::invalid_argument(
        "admissible_count_theoretical: count exceeds 64 bits");
  }
  return std::uint64_t{1} << switches;
}

double admissible_fraction_estimate(const min::MIDigraph& g,
                                    std::size_t samples,
                                    util::SplitMix64& rng) {
  if (samples == 0) {
    throw std::invalid_argument("admissible_fraction_estimate: 0 samples");
  }
  const std::size_t terminals = std::size_t{2} * g.cells_per_stage();
  std::size_t hits = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const perm::Permutation pi = perm::Permutation::random(terminals, rng);
    if (is_admissible(g, pi)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(samples);
}

perm::Permutation settings_permutation(const min::MIDigraph& g,
                                       const SwitchSettings& settings) {
  const std::uint32_t cells = g.cells_per_stage();
  if (settings.size() != static_cast<std::size_t>(g.stages())) {
    throw std::invalid_argument("settings_permutation: stage count");
  }
  for (const auto& stage : settings) {
    if (stage.size() != cells) {
      throw std::invalid_argument("settings_permutation: cell count");
    }
  }
  const auto slot_map = compute_slot_map(g);
  const std::size_t terminals = std::size_t{2} * cells;
  std::vector<std::uint32_t> image(terminals);
  for (std::size_t t = 0; t < terminals; ++t) {
    std::uint32_t cell = static_cast<std::uint32_t>(t) >> 1;
    unsigned slot = static_cast<unsigned>(t & 1);
    for (int s = 0; s < g.stages(); ++s) {
      const unsigned port =
          slot ^ settings[static_cast<std::size_t>(s)][cell];
      if (s + 1 == g.stages()) {
        image[t] = 2 * cell + port;
        break;
      }
      const min::Connection& conn = g.connection(s);
      const std::uint32_t next_cell =
          port == 0 ? conn.f_table()[cell] : conn.g_table()[cell];
      slot = slot_map[static_cast<std::size_t>(s)][cell][port];
      cell = next_cell;
    }
  }
  return perm::Permutation(std::move(image));
}

std::optional<SwitchSettings> settings_for_permutation(
    const min::MIDigraph& g, const perm::Permutation& pi) {
  check_terminal_permutation(g, pi);
  const std::uint32_t cells = g.cells_per_stage();
  const std::size_t terminals = std::size_t{2} * cells;
  const auto slot_map = compute_slot_map(g);

  SwitchSettings settings(static_cast<std::size_t>(g.stages()),
                          std::vector<std::uint8_t>(cells, 0));
  std::vector<std::vector<std::uint8_t>> constrained(
      static_cast<std::size_t>(g.stages()),
      std::vector<std::uint8_t>(cells, 0));

  for (std::size_t t = 0; t < terminals; ++t) {
    const std::uint32_t dest = pi(static_cast<std::uint32_t>(t));
    const auto route =
        min::find_route(g, static_cast<std::uint32_t>(t >> 1), dest >> 1);
    if (!route.has_value()) return std::nullopt;
    unsigned slot = static_cast<unsigned>(t & 1);
    for (int s = 0; s < g.stages(); ++s) {
      const std::uint32_t cell = route->cells[static_cast<std::size_t>(s)];
      // Last hop exits through the port encoded in the destination.
      const unsigned port =
          (s + 1 == g.stages())
              ? static_cast<unsigned>(dest & 1)
              : route->ports[static_cast<std::size_t>(s)];
      const std::uint8_t needed = static_cast<std::uint8_t>(slot ^ port);
      auto& flag = constrained[static_cast<std::size_t>(s)][cell];
      auto& setting = settings[static_cast<std::size_t>(s)][cell];
      if (flag != 0 && setting != needed) return std::nullopt;
      setting = needed;
      flag = 1;
      if (s + 1 < g.stages()) {
        slot = slot_map[static_cast<std::size_t>(s)][cell][port];
      }
    }
  }
  return settings;
}

}  // namespace mineq::sim
