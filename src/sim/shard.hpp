/// \file shard.hpp
/// \brief The megafabric driver: ONE simulation sharded across a worker
/// team, byte-identical to the serial run at any thread count.
///
/// Each cycle runs as a sequence of barrier-separated phases over the
/// CSR-packed FlatWiring. Within a phase every worker owns a contiguous
/// cell (or link) range, and the wiring's perfect-matching property —
/// down_stage(s)[x * r + port] IS the downstream port-slot index, and
/// each downstream buffer has exactly one upstream arc — makes every
/// cross-range handoff single-writer: a worker pushes only into buffers
/// reached through its own cells' arcs, so the hot path needs no locks,
/// no atomics and no mailbox copies. The phase schedule per cycle:
///
///   [credits] deliver     link ranges            barrier
///   eject                 cell ranges            barrier
///   advance s = S-2 .. 0  cell ranges            barrier each
///   serial phase          worker 0 only          barrier
///     (eject-event replay -> workload tick -> inject)
///   [measuring] sample    link ranges            barrier
///   [measuring] reduce    worker 0 only          barrier
///
/// Determinism contract: every order-independent counter accumulates
/// into the worker's ShardWorker::partial and is summed once at the end;
/// every order-SENSITIVE sink (the Welford latency accumulators, the
/// latency histogram, per-SL latency, the wormhole eject observer) is
/// deferred into a per-worker event buffer and replayed by worker 0 in
/// ascending-worker order — which is ascending cell order, i.e. exactly
/// the serial iteration order — so results are byte-identical at 1, 2,
/// 8 or any other thread count.

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "obs/observer.hpp"
#include "sim/engine.hpp"
#include "sim/fabric.hpp"
#include "sim/flit.hpp"
#include "util/parallel.hpp"
#include "workload/spec.hpp"

namespace mineq::sim {

/// One deferred store-and-forward ejection whose statistics are
/// order-sensitive (Welford / histogram adds): replayed by worker 0.
struct SafEjectEvent {
  double latency = 0.0;
  unsigned sl = 0;  ///< service level (0 outside credit runs)
  /// Flow identity for the observability recorders (0 when obs is off;
  /// the replay only reads them on kObs instantiations).
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
};

/// Per-worker shard state, cache-line aligned so neighbouring workers'
/// hot counters never false-share.
struct alignas(64) ShardWorker {
  /// Order-independent counters accumulated by this worker's kernels and
  /// summed into the core result at the end of the run. Only integer
  /// fields are ever touched here — the statistics accumulators inside
  /// stay empty (order-sensitive adds go through the event buffers).
  SimResult partial;
  /// Busy-link cycles (store-and-forward) or flit hops (wormhole) — the
  /// policy's link_counter() share.
  std::uint64_t link_counter = 0;
  /// Net packets (SAF) or flits (wormhole) this worker added to the pool
  /// through the _unc operations; the driver reconciles the pool-wide
  /// total as total + sum of deltas.
  std::int64_t pool_delta = 0;
  /// Store-and-forward eject replay buffer (cleared every cycle).
  std::vector<SafEjectEvent> saf_events;
  /// Wormhole eject replay buffer (cleared every cycle): ejected flits in
  /// this worker's range order; latency/SL are recomputed from the flit.
  std::vector<Flit> wh_events;
  /// Workload delivery replay buffer (cleared every cycle). Separate
  /// from the statistics buffers because deliveries span warmup too
  /// (closed-loop windows must drain before measurement starts) and are
  /// buffered only when the run's source wants them.
  std::vector<workload::Delivery> wl_events;
  /// Wormhole per-VL buffered-flit partial (sample phase).
  std::vector<std::uint64_t> vl_flits;
  /// This worker's observability sink (kObs instantiations only): set by
  /// the policy's shard_eject each cycle, so the kernels never need the
  /// worker index threaded through.
  obs::WorkerLog* obs_log = nullptr;
};

/// The contiguous slice of \p total owned by worker \p w of \p n:
/// [total * w / n, total * (w + 1) / n). Empty when total < n for the
/// trailing workers; concatenating the slices in worker order yields
/// [0, total) exactly — the property the replay ordering relies on.
[[nodiscard]] inline std::pair<std::size_t, std::size_t> shard_range(
    std::size_t total, std::size_t w, std::size_t n) noexcept {
  return {total * w / n, total * (w + 1) / n};
}

/// The per-thread team pool behind SimConfig::sim_threads. Thread-local
/// so concurrent sweep workers shard their points over disjoint teams;
/// the team threads are spawned on first sharded run and reused for
/// every subsequent cycle and run on this thread.
inline util::ThreadPool& sim_team_pool() {
  static thread_local util::ThreadPool pool(1);
  return pool;
}

/// The sharded counterpart of run_switched. A Policy implements, in
/// addition to its serial phases:
///   static constexpr bool kShardNeedsDeliver;  // credit harvest phase?
///   void shard_deliver(cycle, w, n);           // credit runs only
///   void shard_eject(cycle, measuring, w, n, ShardWorker&);
///   void shard_advance(s, cycle, measuring, w, n, ShardWorker&);
///   void shard_serial(cycle, measuring, workers);   // worker 0 only:
///       // event replay -> core.workload_tick() -> inject
///   void shard_sample(cycle, w, n, ShardWorker&);   // measured cycles
///   void shard_sample_reduce(cycle, workers);       // worker 0 only
///   void shard_finish(workers);  // sum partials into the core result
/// Thread counts above the cell count are clamped (extra ranges would be
/// empty); threads <= 1 falls back to the serial driver.
///
/// [[gnu::cold]] keeps this driver — and with it the kShard=true kernel
/// instantiations it inlines — out of the serial instantiations' text
/// placement: without it the doubled function count reshuffles the
/// branch-dense serial loops across cache lines (the placement lottery
/// the bench baselines document) for runs that never shard at all.
template <class Policy>
[[gnu::cold]] SimResult run_switched_sharded(FabricCore& core, Policy& policy,
                                             std::size_t threads) {
  threads = std::min<std::size_t>(
      threads, std::max<std::uint32_t>(1, core.cells()));
  if (threads <= 1) return run_switched(core, policy);

  std::vector<ShardWorker> workers(threads);
  util::SpinBarrier barrier(threads);
  const std::uint64_t warmup = core.config().warmup_cycles;
  const std::uint64_t total = core.total_cycles();
  sim_team_pool().run_team(threads, [&](std::size_t w, std::size_t n) {
    ShardWorker& wk = workers[w];
    for (std::uint64_t cycle = 0; cycle < total; ++cycle) {
      const bool measuring = cycle >= warmup;
      if constexpr (Policy::kShardNeedsDeliver) {
        policy.shard_deliver(cycle, w, n);
        barrier.arrive_and_wait();
      }
      policy.shard_eject(cycle, measuring, w, n, wk);
      barrier.arrive_and_wait();
      for (int s = core.stages() - 2; s >= 0; --s) {
        policy.shard_advance(s, cycle, measuring, w, n, wk);
        barrier.arrive_and_wait();
      }
      if (w == 0) policy.shard_serial(cycle, measuring, workers);
      barrier.arrive_and_wait();
      if (measuring) {
        policy.shard_sample(cycle, w, n, wk);
        barrier.arrive_and_wait();
        if (w == 0) policy.shard_sample_reduce(cycle, workers);
        barrier.arrive_and_wait();
      }
    }
  });
  policy.shard_finish(workers);
  core.result.flits_in_flight = policy.buffered_flits();
  core.finalize(policy.link_counter());
  return core.result;
}

}  // namespace mineq::sim
