/// \file engine.hpp
/// \brief Cycle-level simulation over an MI-digraph, in two switching
/// disciplines, at any switch radix.
///
/// The paper's networks are communication fabrics for parallel machines;
/// this engine exercises the constructed topologies end-to-end. Model:
/// input-buffered r x r switches, one flit per link per cycle,
/// destination-digit routing (bit schedules for r = 2 via
/// min/routing.hpp, base-r digit schedules via min::find_digit_schedule
/// otherwise), round-robin arbitration on output-port conflicts,
/// Bernoulli injection per terminal (optionally modulated by the
/// two-state bursty on/off process). Everything is deterministic given
/// the seed.
///
/// Both switching disciplines are policies over one shared substrate
/// (FabricCore, fabric.hpp): the stage-packed min::FlatWiring IR, the
/// round-robin arbiters, struct-of-arrays payload pools and the SimResult
/// reporting are common; only the per-switch advancement rule differs:
///  - store-and-forward: packets move as units; a packet of L flits
///    occupies its link for L cycles per hop and must be fully received
///    before it can advance (engine.cpp);
///  - wormhole: packets are decomposed into head/body/tail flits that
///    pipeline across stages through multi-lane (virtual-channel) input
///    buffers (wormhole.cpp, flit.hpp).
///
/// Each policy is additionally instantiated per "is the radix 2" so the
/// historic binary hot loops keep their shift/mask code generation (and
/// stay byte- and speed-identical to the pre-k-ary engine) while the
/// general instantiation divides by the runtime radix.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fault/fault_mask.hpp"
#include "min/flat_wiring.hpp"
#include "min/kary.hpp"
#include "min/mi_digraph.hpp"
#include "min/routing.hpp"
#include "multipath/multipath_wiring.hpp"
#include "obs/flow.hpp"
#include "obs/obs.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "sim/stats.hpp"
#include "sim/traffic.hpp"
#include "workload/spec.hpp"

namespace mineq::sim {

class SimWorkspace;  // fabric.hpp: reusable cross-run payload-pool arena

/// How packets traverse a switch.
enum class SwitchingMode : std::uint8_t {
  kStoreAndForward,  ///< whole packets hop between per-port FIFOs
  kWormhole,         ///< flits pipeline through multi-lane buffers
};

/// Short token for CLIs and CSV columns ("saf", "wormhole").
[[nodiscard]] std::string switching_mode_name(SwitchingMode mode);

/// Inverse of switching_mode_name (also accepts "store-and-forward").
/// \throws std::invalid_argument on an unknown name.
[[nodiscard]] SwitchingMode parse_switching_mode(std::string_view name);

/// How contending senders share an output port in a credit-mode run
/// (credits disabled always arbitrates round-robin, the historic seam).
enum class ArbitrationPolicy : std::uint8_t {
  kRoundRobin,  ///< rotating priority, the historic grant sequence
  kWeighted,    ///< quantum WRR: the winner keeps top priority for
                ///< weight[vl] consecutive grants before rotating on
  kPriority,    ///< strict: highest weight[vl] among ready candidates
                ///< wins (rotating tie-break); low VLs can starve
};

/// Short token for CLIs and CSV columns ("rr", "weighted", "priority").
[[nodiscard]] std::string arbitration_policy_name(ArbitrationPolicy policy);

/// Inverse of arbitration_policy_name (also accepts "round-robin").
/// \throws std::invalid_argument on an unknown name.
[[nodiscard]] ArbitrationPolicy parse_arbitration_policy(
    std::string_view name);

/// How a packet chooses among the equivalent paths of a multipath fabric
/// (unipath fabrics have nothing to choose; the policy is ignored).
enum class PathPolicy : std::uint8_t {
  kHash,      ///< deterministic spread: hash(dest, inject cycle, stage)
  kAdaptive,  ///< least-occupancy: the emptiest downstream buffer wins
  kLooping,   ///< looping-precomputed permutation routes (Benes +
              ///< SimConfig::permutation only): provably conflict-free
};

/// All path policies, in declaration order.
[[nodiscard]] const std::vector<PathPolicy>& all_path_policies();

/// Short token for CLIs and CSV columns ("hash", "adaptive", "looping").
[[nodiscard]] std::string path_policy_name(PathPolicy policy);

/// Inverse of path_policy_name. The rejection message enumerates the
/// valid tokens.
/// \throws std::invalid_argument on an unknown name.
[[nodiscard]] PathPolicy parse_path_policy(std::string_view name);

/// Link-level credit flow control + virtual-lane arbitration parameters
/// (InfiniBand-style). When enabled, every downstream buffer (a
/// store-and-forward port FIFO, a wormhole lane) grants its capacity in
/// credits up front; a sender consumes one credit per unit it pushes and
/// stalls at zero instead of probing downstream occupancy, and each pop
/// schedules the credit back to the sender return_latency cycles later.
/// Packets carry a service level sl = terminal % service_levels();
/// sl_map maps it to the virtual lane the packet contends (and, for
/// wormhole, travels) on, and weights[vl] parameterizes the kWeighted /
/// kPriority arbiters. With return_latency 0, uniform weights,
/// kRoundRobin and an empty sl_map the credit handshake is provably
/// equivalent to the direct occupancy probes (the eject -> advance ->
/// inject phase order means every downstream pop lands before its
/// upstream probe), and the runs are byte-identical to credits disabled.
struct CreditConfig {
  bool enabled = false;
  /// Cycles a returned credit spends in flight back to the sender.
  std::uint64_t return_latency = 0;
  ArbitrationPolicy arbitration = ArbitrationPolicy::kRoundRobin;
  /// Per-VL arbitration weight; empty = uniform (1). Shorter than the
  /// lane count broadcasts its last entry to the remaining VLs.
  std::vector<unsigned> weights;
  /// Service level -> virtual lane. Empty = one service level pinned to
  /// VL 0 (wormhole worms keep the historic any-idle-lane choice).
  std::vector<unsigned> sl_map;

  /// Service levels packets are tagged with (sl_map entries, or 1).
  [[nodiscard]] std::size_t service_levels() const noexcept {
    return sl_map.empty() ? std::size_t{1} : sl_map.size();
  }
  /// The virtual lane service level \p sl contends on.
  [[nodiscard]] unsigned vl_of_sl(std::size_t sl) const {
    return sl_map.empty() ? 0U : sl_map[sl];
  }
  /// The arbitration weight of virtual lane \p vl (>= 1).
  [[nodiscard]] unsigned weight(std::size_t vl) const noexcept {
    if (weights.empty()) return 1U;
    return weights[vl < weights.size() ? vl : weights.size() - 1];
  }

  /// Reject unusable parameters (only checked when enabled): weights
  /// must be positive, return_latency bounded (the in-flight ring is
  /// allocated per link), sl_map entries must name an existing lane for
  /// \p mode == kWormhole with \p lanes lanes, and at most 64 service
  /// levels fit the flit's sl field.
  /// \throws std::invalid_argument
  void validate(SwitchingMode mode, std::size_t lanes) const;
};

/// Simulation parameters.
struct SimConfig {
  double injection_rate = 0.5;    ///< packets per terminal per cycle
  std::size_t queue_capacity = 4; ///< store-and-forward: per-port FIFO depth
                                  ///< (packets)
  std::uint64_t warmup_cycles = 200;   ///< excluded from latency stats
  std::uint64_t measure_cycles = 2000; ///< measured portion of the run
  std::uint64_t seed = 1;
  SwitchingMode mode = SwitchingMode::kStoreAndForward;
  std::size_t packet_length = 1; ///< flits per packet (both disciplines)
  std::size_t lanes = 1;         ///< wormhole: virtual channels per input port
  std::size_t lane_depth = 4;    ///< wormhole: flits buffered per lane
  /// Two-state Markov on/off probabilities for Pattern::kBursty (other
  /// patterns ignore it); defaults reproduce mean burst 8 / idle 24.
  BurstParams burst;
  /// Link-level credit flow control + VL arbitration; disabled by
  /// default, which dispatches to the historic occupancy-probe policy
  /// instantiations byte for byte.
  CreditConfig credits;
  /// Path selection on multipath fabrics (ignored by unipath engines).
  PathPolicy path_policy = PathPolicy::kHash;
  /// The terminal permutation the kLooping policy realizes (size must be
  /// the logical terminal count). Also consumed as the traffic pattern
  /// when the pattern is Pattern::kPermutation. Ignored otherwise.
  std::vector<std::uint32_t> permutation;
  /// Worker threads sharding THIS simulation (megafabric mode): each
  /// cycle's phases run as range kernels over per-worker cell slices with
  /// barrier handoffs. Results are byte-identical at every value — 1
  /// dispatches to the historic serial policy instantiations, > 1 to the
  /// sharded driver. Thread counts above the stage's cell count are
  /// clamped (extra workers would own empty ranges). Distinct from the
  /// sweep-level thread count: exp::run_sweep divides its own pool by
  /// this value so sweep x sim threads never oversubscribes.
  std::size_t sim_threads = 1;
  /// Observability collectors (obs/obs.hpp). All-defaults means "off"
  /// and dispatches to the kObs=false policy instantiations — byte for
  /// byte the historic code, pinned by the golden tests. Enabling any
  /// collector is passive: simulation results are bit-identical either
  /// way; the run additionally carries probes/flows/trace payloads and
  /// the stall-cause split of hol_blocking_cycles.
  obs::ObsConfig obs;
  /// The workload driving injection (workload/spec.hpp): the open-loop
  /// synthetic patterns (the default — byte-identical to the historic
  /// hardwired engine), closed-loop request–reply clients, or trace
  /// replay; any of them optionally recording accepted injections back
  /// into the trace format.
  workload::Spec workload;
  /// Latency-histogram bucket count (1-cycle buckets); 0 auto-scales
  /// from the fabric depth: clamp(64 * stages * packet_length, 1024,
  /// 65536), never more than the run is long. Runs whose latencies fit
  /// the historic fixed 1024-bucket ceiling keep identical quantiles;
  /// deeper runs stop clamping p99 at the overflow edge (check
  /// SimResult::latency_overflow_fraction()).
  std::size_t latency_histogram_buckets = 0;

  /// Upper bound on SimConfig::sim_threads (a sanity cap, far above any
  /// real core count — NOT tied to hardware_concurrency, so deterministic
  /// thread-count pins run anywhere).
  static constexpr std::size_t kMaxSimThreads = 256;

  /// Reject unusable parameters up front, with a message naming the
  /// offending field and value: lanes, lane_depth, packet_length and
  /// queue_capacity must be positive (regardless of mode, so a config is
  /// valid or not independently of the discipline that runs it),
  /// injection_rate must be finite and within [0, 1], the burst
  /// probabilities must be within (0, 1], sim_threads must be within
  /// [1, kMaxSimThreads], an enabled credit config must pass
  /// CreditConfig::validate against this mode and lane count, and the
  /// workload spec must pass workload::Spec::validate.
  /// Called by both simulators and by exp::run_sweep before any work
  /// starts.
  /// \throws std::invalid_argument
  void validate() const;
};

/// Aggregate results of one run.
struct SimResult {
  std::uint64_t offered = 0;    ///< injection attempts during measurement
  std::uint64_t injected = 0;   ///< packets accepted into the first stage
  std::uint64_t delivered = 0;  ///< packets ejected at the last stage
  RunningStats latency;         ///< cycles from injection to tail delivery
  /// Latency distribution, 1-cycle buckets; use
  /// latency_histogram.quantile(0.99) for tail latency. FabricCore
  /// re-shapes this per run (SimConfig::latency_histogram_buckets /
  /// latency_histogram_buckets()); check latency_overflow_fraction() to
  /// see whether tail quantiles clamped at the covered range.
  Histogram latency_histogram{1.0, 1024};
  /// delivered / (measure_cycles * terminals): normalized throughput.
  double throughput = 0.0;
  /// injected / offered: acceptance at the first-stage buffers (0 when
  /// nothing was offered, so idle points never report nan or a vacuous
  /// 1.0).
  double acceptance = 0.0;
  /// offered / (measure_cycles * terminals): the injection-attempt rate
  /// the workload ACTUALLY presented. Open-loop sources track the
  /// configured rate; a closed-loop client at its window suppresses the
  /// attempt entirely, so this field dropping below the configured rate
  /// (with window_stall_cycles > 0) is the self-throttling signature.
  double offered_rate_effective = 0.0;

  // Workload-source counters (nonzero only for closed-loop runs; see
  // workload::ClosedLoopSource).
  /// (terminal, cycle) pairs where a client passed its injection gate
  /// but sat at its outstanding-request window (measured cycles).
  std::uint64_t window_stall_cycles = 0;
  /// Request/reply packets that could not complete their exchange
  /// (faulted misdeliveries of tagged packets).
  std::uint64_t reply_orphans = 0;
  /// Request→reply end-to-end latency per completed exchange: reply
  /// ejection cycle minus the ORIGINAL request's injection cycle
  /// (measured exchanges only).
  RunningStats reply_latency;
  /// reply_latency distribution; quantile(0.99) is the sweep's
  /// reply_latency_p99 column.
  Histogram reply_latency_histogram{1.0, 1024};
  /// Every accepted injection of the run in trace format, captured when
  /// SimConfig::workload.record is set (workload::write_trace
  /// serializes it; replaying it through a TraceSource reproduces the
  /// run's delivered/latency counters exactly).
  std::vector<workload::TraceRecord> workload_trace;

  // Flit-level counters (a store-and-forward packet counts as
  // packet_length flits moving as one unit).
  std::uint64_t flits_injected = 0;  ///< flits accepted during measurement
  std::uint64_t flits_delivered = 0; ///< flits ejected during measurement
  /// Flits still buffered in the network when the run ended (whole run;
  /// with warmup_cycles == 0, flits_injected == flits_delivered +
  /// flits_in_flight exactly).
  std::uint64_t flits_in_flight = 0;
  /// (buffer, cycle) pairs where a buffered head flit / packet was ready
  /// to advance but did not (lost arbitration, downstream full, or no
  /// free downstream lane).
  std::uint64_t hol_blocking_cycles = 0;
  /// Inter-stage flit-hops / (links * measure_cycles), in [0, 1].
  double link_utilization = 0.0;
  /// Per-measured-cycle occupied fraction of all buffer flit slots.
  RunningStats lane_occupancy;

  // Credit flow-control counters (nonzero only with
  // SimConfig::credits.enabled; see CreditConfig).
  /// Events where a ready sender could not advance solely for lack of
  /// downstream credits: one per (output port, cycle) for
  /// store-and-forward and per (source terminal, cycle) at injection,
  /// one per blocked candidate per cycle for wormhole.
  std::uint64_t credit_stall_cycles = 0;
  /// Conservation-invariant failures sampled per measured cycle:
  /// credits + in-flight returns + occupancy must equal capacity on
  /// every link, every cycle. Always 0; pinned by the credit tests.
  std::uint64_t credit_violations = 0;
  /// Per-virtual-lane occupied fraction per measured cycle (wormhole
  /// credit runs; size lanes, empty otherwise).
  std::vector<RunningStats> vl_occupancy;
  /// Per-service-level delivery latency (credit runs; size
  /// CreditConfig::service_levels(), empty otherwise).
  std::vector<RunningStats> sl_latency;

  // Fault-injection counters (nonzero only when a FaultMask is active;
  // all gated like `delivered`: measured cycles, packets injected after
  // warmup). A dropped packet left the network, so conservation reads
  // injected == delivered + dropped + in flight — and exactly, at flit
  // granularity with warmup_cycles == 0: flits_injected ==
  // flits_delivered + flits_in_flight + flits_dropped_faulted.
  /// Packets discarded at a switch whose surviving out-arcs are all
  /// masked (no degraded route exists).
  std::uint64_t packets_dropped_faulted = 0;
  /// Surviving-port detours taken because the scheduled out-arc was
  /// masked (one count per detour event, so a packet detoured twice
  /// counts twice).
  std::uint64_t packets_rerouted = 0;
  /// Packets ejected at the wrong terminal. A banyan has unique paths,
  /// so a detoured packet cannot reach its original destination; it
  /// still ejects somewhere (and counts as delivered — it left the
  /// network), and this counter says how many of those deliveries
  /// missed. delivered - packets_misdelivered is the correctly-delivered
  /// count the sweep reports as delivered_fraction.
  std::uint64_t packets_misdelivered = 0;
  /// Flits discarded by faulted drops (packet_length per store-and-
  /// forward drop; per-flit for wormhole worms).
  std::uint64_t flits_dropped_faulted = 0;

  // Multipath counters (meaningful on MultiPathWiring engines; a unipath
  // run reports paths_available == 1 and path_reroutes == 0).
  /// Distinct router-usable paths per (source, destination) pair of the
  /// pristine fabric (min::MultiPathWiring::paths_available()).
  std::uint64_t paths_available = 1;
  /// Fault-degraded path re-selections: events where a packet's chosen
  /// arc was masked but a surviving arc of the same equivalent-path
  /// group carried it instead (no detour, no misdelivery risk). Distinct
  /// from packets_rerouted, which counts out-of-group detours.
  std::uint64_t path_reroutes = 0;

  // Observability outputs (populated only when SimConfig::obs enables a
  // collector; all-zero / empty otherwise). The stall counters split
  // hol_blocking_cycles by cause: every blocked (buffer, cycle) pair is
  // attributed to exactly one StallCause in the same accounting scan
  // that increments hol_blocking_cycles, so the five counters sum to it
  // exactly — congestion (lost arbitration, downstream full, no free
  // lane), flow control (zero credits) and faults (masked arc) become
  // distinguishable.
  std::uint64_t stall_lost_arbitration = 0;
  std::uint64_t stall_downstream_full = 0;
  std::uint64_t stall_no_free_lane = 0;
  std::uint64_t stall_zero_credits = 0;
  std::uint64_t stall_masked_arc = 0;
  /// Per-stage time series + occupancy heatmap (probe_stride > 0).
  obs::ProbeSeries probes;
  /// Per-(source, destination) and per-SL latency summary (flow_stats).
  obs::FlowSummary flows;
  /// Sampled packet events in serial emission order (trace_sample > 0);
  /// serialize with obs::trace_json.
  std::vector<obs::TraceEvent> trace;

  /// Sum of the five stall-cause counters; equals hol_blocking_cycles on
  /// every obs-enabled run (asserted by tests and the CI sweep smoke).
  [[nodiscard]] std::uint64_t stall_attributed() const noexcept {
    return stall_lost_arbitration + stall_downstream_full +
           stall_no_free_lane + stall_zero_credits + stall_masked_arc;
  }
  /// The largest stall-cause counter (ties break toward the earlier
  /// enum value; kLostArbitration when nothing stalled).
  [[nodiscard]] obs::StallCause dominant_stall_cause() const noexcept {
    const std::uint64_t counts[obs::kStallCauseCount] = {
        stall_lost_arbitration, stall_downstream_full, stall_no_free_lane,
        stall_zero_credits, stall_masked_arc};
    std::size_t best = 0;
    for (std::size_t c = 1; c < obs::kStallCauseCount; ++c) {
      if (counts[c] > counts[best]) best = c;
    }
    return static_cast<obs::StallCause>(best);
  }
  /// Fraction of delivered latencies past the histogram's covered range
  /// (quantiles clamp there; see SimConfig::latency_histogram_buckets).
  [[nodiscard]] double latency_overflow_fraction() const noexcept {
    return latency_histogram.overflow_fraction();
  }

  /// Correctly-delivered / injected, the fault-resilience headline
  /// (wrong-terminal ejections of detoured packets are subtracted).
  /// Defined as 0 when nothing was injected — like every other ratio
  /// field, so an idle point (rate 0, all-OFF bursty, dead fabric)
  /// reports clean zeros instead of nan/inf or a vacuous 1.0. Shared by
  /// the sweep reports and the fault benches so the two never drift.
  [[nodiscard]] double delivered_fraction() const {
    if (injected == 0) return 0.0;
    return static_cast<double>(delivered - packets_misdelivered) /
           static_cast<double>(injected);
  }
};

/// The latency-histogram bucket count FabricCore shapes a run's
/// SimResult::latency_histogram with: the explicit
/// SimConfig::latency_histogram_buckets when nonzero, else the
/// auto-scale clamp(64 * stages * packet_length, 1024, 65536) capped at
/// the run length + 2 (a latency cannot exceed the run) but never below
/// the historic 1024 floor.
[[nodiscard]] std::size_t latency_histogram_buckets(const SimConfig& config,
                                                    int stages) noexcept;

/// The simulator. Construction flattens the network into the stage-packed
/// min::FlatWiring IR shared by both disciplines (and by the equivalence
/// checks and sweeps); run() is repeatable (state resets each call) and
/// thread-safe on a const Engine.
class Engine {
 public:
  /// \p schedule must be a valid destination-bit schedule for \p network
  /// (see min::find_bit_schedule); the pair is verified on construction.
  Engine(min::MIDigraph network, min::BitSchedule schedule);

  /// Convenience: derive the schedule from the network.
  /// \throws std::invalid_argument if the network has no bit schedule.
  explicit Engine(min::MIDigraph network);

  /// A radix-r engine over a KaryMIDigraph: flattens through
  /// min::FlatWiring::from_kary and routes by the recovered
  /// destination-digit schedule. A radix-2 KaryMIDigraph takes the
  /// binary path (tables converted, bit schedule derived) so its runs
  /// are byte-identical to the MIDigraph constructor's.
  /// \throws std::invalid_argument if the network is invalid or has no
  /// digit schedule.
  explicit Engine(const min::KaryMIDigraph& network);

  /// An engine over a multipath fabric: packets carry *logical* terminal
  /// addresses while flits traverse the physical wiring, and at every
  /// hop the discipline chooses among the fabric's equivalent-path group
  /// (route_group) by the configured SimConfig::path_policy. A
  /// kUnipath-wrapped fabric behaves exactly like the plain constructor
  /// over the same banyan.
  /// \throws std::invalid_argument if the fabric's geometry is out of
  /// simulator range.
  explicit Engine(min::MultiPathWiring fabric);

  /// Run one simulation with the given traffic and parameters, in the
  /// discipline selected by \p config.mode. With a non-null, non-empty
  /// \p mask the run is fault-degraded: masked arcs accept no payload,
  /// packets reroute through the next surviving port and drop at dead
  /// switches (see fault/fault_mask.hpp). A null or all-clear mask takes
  /// the unmasked fast path — the byte-identical policy instantiation the
  /// two-argument form always ran. \p workspace, when given, supplies
  /// reusable payload-pool allocations (sweep workers pass one per
  /// thread); it never changes results.
  /// \throws std::invalid_argument via SimConfig::validate(), or on a
  /// mask whose geometry does not match this network.
  [[nodiscard]] SimResult run(Pattern pattern, const SimConfig& config,
                              const fault::FaultMask* mask = nullptr,
                              SimWorkspace* workspace = nullptr) const;

  /// The binary MI-digraph this engine was built from. Only present on
  /// radix-2 engines; a radix > 2 engine has no table representation.
  /// \throws std::logic_error on a radix > 2 engine.
  [[nodiscard]] const min::MIDigraph& network() const;

  /// The binary destination-bit schedule (radix-2 engines; empty on
  /// radix > 2 engines, which route by digit_schedule()).
  [[nodiscard]] const min::BitSchedule& schedule() const noexcept {
    return schedule_;
  }
  /// The destination-digit schedule (radix > 2 engines; empty otherwise).
  [[nodiscard]] const min::DigitSchedule& digit_schedule() const noexcept {
    return digit_schedule_;
  }
  /// radix^digit_schedule().digit[stage] — the divisor that extracts the
  /// scheduled digit (radix > 2 engines; the policies hoist it per
  /// stage).
  [[nodiscard]] std::uint32_t route_digit_scale(int stage) const {
    return digit_scale_[static_cast<std::size_t>(stage)];
  }
  /// The flat wiring IR both disciplines route over.
  [[nodiscard]] const min::FlatWiring& wiring() const noexcept {
    return wiring_;
  }
  /// Switch degree r: ports and input slots per cell, and the terminal
  /// fan per first/last-stage cell. On a multipath engine this is the
  /// *physical* radix (logical_radix() * dilation() for dilated fabrics).
  [[nodiscard]] int radix() const noexcept { return wiring_.radix(); }
  /// Addressable terminals: radix * cells_per_stage (= radix^stages) for
  /// a unipath engine, the fabric's *logical* terminal count for a
  /// multipath one (sources, destinations and traffic patterns all live
  /// in logical coordinates; the physical fabric may be wider).
  [[nodiscard]] std::uint64_t terminals() const noexcept {
    return terminals_;
  }
  /// Address digits (base logical_radix()) of a terminal label: the
  /// stage count for a unipath engine, the *logical* stage count for a
  /// multipath one (a Benes has 2n-1 physical stages but n-digit
  /// addresses).
  [[nodiscard]] int address_digits() const noexcept {
    return address_digits_;
  }

  /// Is this engine routing over a multipath fabric?
  [[nodiscard]] bool multipath() const noexcept {
    return fabric_.has_value();
  }
  /// The multipath fabric (multipath engines only).
  /// \throws std::logic_error on a unipath engine.
  [[nodiscard]] const min::MultiPathWiring& fabric() const;
  /// Logical switch radix: the base of terminal addresses (== radix()
  /// on unipath engines).
  [[nodiscard]] int logical_radix() const noexcept { return logical_radix_; }
  /// Logical cells per stage: terminals() / logical_radix().
  [[nodiscard]] std::uint32_t logical_cells() const noexcept {
    return logical_cells_;
  }
  /// Injection planes (> 1 only for replicated fabrics).
  [[nodiscard]] int planes() const noexcept { return planes_; }
  /// Parallel arcs per logical link (> 1 only for dilated fabrics).
  [[nodiscard]] int dilation() const noexcept { return dilation_; }

  /// The group of equivalent out-ports a packet for logical terminal
  /// \p dest_terminal may take at physical connection \p stage of a
  /// multipath fabric: ports base..base+count-1 all reach the
  /// destination. Free connections return the whole switch
  /// ({0, radix()}), forced ones the scheduled dilation group. The
  /// path policies choose *within* this group. Multipath engines only;
  /// \p stage must be an inner connection (the last stage ejects).
  struct PortGroup {
    unsigned base;
    unsigned count;
  };
  [[nodiscard]] PortGroup route_group(int stage,
                                      std::uint32_t dest_terminal) const {
    if (free_stage_[static_cast<std::size_t>(stage)] != 0) {
      return {0U, static_cast<unsigned>(wiring_.radix())};
    }
    const auto lr = static_cast<std::uint32_t>(logical_radix_);
    const std::uint32_t dest_cell = dest_terminal / lr;
    const std::uint32_t value =
        (dest_cell / digit_scale_[static_cast<std::size_t>(stage)]) % lr;
    const unsigned dil = static_cast<unsigned>(dilation_);
    return {digit_schedule_
                    .port_of_value[static_cast<std::size_t>(stage)][value] *
                dil,
            dil};
  }

  /// The out-port a packet for \p dest_terminal takes at \p stage: the
  /// scheduled destination bit/digit at inner stages, the terminal's low
  /// digit at the last (ejection) stage. The radix-2 path is inline —
  /// it sits in both policies' per-probe hot loops; digit routing and
  /// the out-of-range throw live out of line (route_port_general).
  /// \throws std::invalid_argument on an out-of-range stage.
  [[nodiscard]] unsigned route_port(int stage,
                                    std::uint32_t dest_terminal) const {
    if (wiring_.radix() == 2 && stage >= 0 && stage < wiring_.stages())
        [[likely]] {
      if (stage + 1 == wiring_.stages()) return dest_terminal & 1U;
      const std::uint32_t dest_cell = dest_terminal >> 1;
      return static_cast<unsigned>(
                 (dest_cell >>
                  schedule_.bit[static_cast<std::size_t>(stage)]) &
                 1U) ^
             schedule_.invert[static_cast<std::size_t>(stage)];
    }
    return route_port_general(stage, dest_terminal);
  }

 private:
  /// Digit routing (radix > 2) and the out-of-range throw.
  [[nodiscard]] unsigned route_port_general(int stage,
                                            std::uint32_t dest_terminal) const;
  /// Copy the physical wiring's shape into the logical-geometry members
  /// (every unipath constructor's last step).
  void finish_unipath_geometry();
  std::optional<min::MIDigraph> network_;  ///< radix-2 engines only
  min::BitSchedule schedule_;              ///< radix-2 engines only
  min::DigitSchedule digit_schedule_;      ///< radix > 2 and multipath
  /// radix^digit_schedule_.digit[s] per stage, so route_port reads the
  /// scheduled digit with one division (logical radix on multipath
  /// engines, with identity placeholders at free connections).
  std::vector<std::uint32_t> digit_scale_;
  min::FlatWiring wiring_;
  std::optional<min::MultiPathWiring> fabric_;  ///< multipath engines only
  /// Per-connection free flags (multipath engines; empty otherwise).
  std::vector<std::uint8_t> free_stage_;
  /// Logical geometry, valid on every engine (== the physical geometry
  /// for unipath ones) so terminals()/address_digits() are branch-free.
  std::uint64_t terminals_ = 0;
  int address_digits_ = 0;
  int logical_radix_ = 2;
  std::uint32_t logical_cells_ = 1;
  int planes_ = 1;
  int dilation_ = 1;
};

}  // namespace mineq::sim
