/// \file engine.hpp
/// \brief Cycle-level packet simulation over an MI-digraph.
///
/// The paper's networks are communication fabrics for parallel machines;
/// this engine exercises the constructed topologies end-to-end. Model:
/// input-buffered 2x2 switches, one packet per link per cycle,
/// destination-bit routing (min/routing.hpp schedules), round-robin
/// arbitration on output-port conflicts, Bernoulli injection per terminal.
/// Everything is deterministic given the seed.

#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "min/mi_digraph.hpp"
#include "min/routing.hpp"
#include "sim/stats.hpp"
#include "sim/traffic.hpp"

namespace mineq::sim {

/// Simulation parameters.
struct SimConfig {
  double injection_rate = 0.5;   ///< packets per terminal per cycle
  std::size_t queue_capacity = 4; ///< per input-port FIFO depth
  std::uint64_t warmup_cycles = 200;   ///< excluded from latency stats
  std::uint64_t measure_cycles = 2000; ///< measured portion of the run
  std::uint64_t seed = 1;
};

/// Aggregate results of one run.
struct SimResult {
  std::uint64_t offered = 0;    ///< injection attempts during measurement
  std::uint64_t injected = 0;   ///< accepted into the first stage
  std::uint64_t delivered = 0;  ///< ejected at the last stage (measured)
  RunningStats latency;         ///< cycles from injection to delivery
  /// Latency distribution, 1-cycle buckets (overflow above 1024 cycles);
  /// use latency_histogram.quantile(0.99) for tail latency.
  Histogram latency_histogram{1.0, 1024};
  /// delivered / (measure_cycles * terminals): normalized throughput.
  double throughput = 0.0;
  /// injected / offered: acceptance at the first-stage queues.
  double acceptance = 0.0;
};

/// The simulator. Construction precomputes the arc -> input-slot wiring;
/// run() is repeatable (state resets each call).
class Engine {
 public:
  /// \p schedule must be a valid destination-bit schedule for \p network
  /// (see min::find_bit_schedule); the pair is verified on construction.
  Engine(min::MIDigraph network, min::BitSchedule schedule);

  /// Convenience: derive the schedule from the network.
  /// \throws std::invalid_argument if the network has no bit schedule.
  explicit Engine(min::MIDigraph network);

  /// Run one simulation with the given traffic and parameters.
  [[nodiscard]] SimResult run(Pattern pattern, const SimConfig& config) const;

  [[nodiscard]] const min::MIDigraph& network() const noexcept {
    return network_;
  }
  [[nodiscard]] int terminals_log2() const noexcept {
    return network_.stages();
  }

 private:
  struct Packet {
    std::uint32_t dest_terminal = 0;
    std::uint64_t inject_cycle = 0;
  };

  min::MIDigraph network_;
  min::BitSchedule schedule_;
  /// slot_of_[s][x][p]: which input slot of the child cell the port-p
  /// out-link of cell x at stage s feeds.
  std::vector<std::vector<std::array<std::uint8_t, 2>>> slot_of_;
};

}  // namespace mineq::sim
