/// \file engine.hpp
/// \brief Cycle-level simulation over an MI-digraph, in two switching
/// disciplines.
///
/// The paper's networks are communication fabrics for parallel machines;
/// this engine exercises the constructed topologies end-to-end. Model:
/// input-buffered 2x2 switches, one flit per link per cycle,
/// destination-bit routing (min/routing.hpp schedules), round-robin
/// arbitration on output-port conflicts, Bernoulli injection per terminal.
/// Everything is deterministic given the seed.
///
/// Two switching disciplines share the wiring precomputation, the
/// round-robin arbiter and the SimResult reporting:
///  - store-and-forward: packets move as units; a packet of L flits
///    occupies its link for L cycles per hop and must be fully received
///    before it can advance (engine.cpp);
///  - wormhole: packets are decomposed into head/body/tail flits that
///    pipeline across stages through multi-lane (virtual-channel) input
///    buffers (wormhole.cpp, lanes.hpp, flit.hpp).

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "min/mi_digraph.hpp"
#include "min/routing.hpp"
#include "sim/stats.hpp"
#include "sim/traffic.hpp"

namespace mineq::sim {

/// How packets traverse a switch.
enum class SwitchingMode : std::uint8_t {
  kStoreAndForward,  ///< whole packets hop between per-port FIFOs
  kWormhole,         ///< flits pipeline through multi-lane buffers
};

/// Short token for CLIs and CSV columns ("saf", "wormhole").
[[nodiscard]] std::string switching_mode_name(SwitchingMode mode);

/// Inverse of switching_mode_name (also accepts "store-and-forward").
/// \throws std::invalid_argument on an unknown name.
[[nodiscard]] SwitchingMode parse_switching_mode(std::string_view name);

/// Simulation parameters.
struct SimConfig {
  double injection_rate = 0.5;    ///< packets per terminal per cycle
  std::size_t queue_capacity = 4; ///< store-and-forward: per-port FIFO depth
                                  ///< (packets)
  std::uint64_t warmup_cycles = 200;   ///< excluded from latency stats
  std::uint64_t measure_cycles = 2000; ///< measured portion of the run
  std::uint64_t seed = 1;
  SwitchingMode mode = SwitchingMode::kStoreAndForward;
  std::size_t packet_length = 1; ///< flits per packet (both disciplines)
  std::size_t lanes = 1;         ///< wormhole: virtual channels per input port
  std::size_t lane_depth = 4;    ///< wormhole: flits buffered per lane
};

/// Aggregate results of one run.
struct SimResult {
  std::uint64_t offered = 0;    ///< injection attempts during measurement
  std::uint64_t injected = 0;   ///< packets accepted into the first stage
  std::uint64_t delivered = 0;  ///< packets ejected at the last stage
  RunningStats latency;         ///< cycles from injection to tail delivery
  /// Latency distribution, 1-cycle buckets (overflow above 1024 cycles);
  /// use latency_histogram.quantile(0.99) for tail latency.
  Histogram latency_histogram{1.0, 1024};
  /// delivered / (measure_cycles * terminals): normalized throughput.
  double throughput = 0.0;
  /// injected / offered: acceptance at the first-stage buffers.
  double acceptance = 0.0;

  // Flit-level counters (a store-and-forward packet counts as
  // packet_length flits moving as one unit).
  std::uint64_t flits_injected = 0;  ///< flits accepted during measurement
  std::uint64_t flits_delivered = 0; ///< flits ejected during measurement
  /// Flits still buffered in the network when the run ended (whole run;
  /// with warmup_cycles == 0, flits_injected == flits_delivered +
  /// flits_in_flight exactly).
  std::uint64_t flits_in_flight = 0;
  /// (buffer, cycle) pairs where a buffered head flit / packet was ready
  /// to advance but did not (lost arbitration, downstream full, or no
  /// free downstream lane).
  std::uint64_t hol_blocking_cycles = 0;
  /// Inter-stage flit-hops / (links * measure_cycles), in [0, 1].
  double link_utilization = 0.0;
  /// Per-measured-cycle occupied fraction of all buffer flit slots.
  RunningStats lane_occupancy;
};

/// Precomputed arc -> input-slot wiring shared by both disciplines:
/// slot_of[s][x][p] is the input slot (0 or 1) of the child cell that the
/// port-p out-link of cell x at stage s feeds.
struct SwitchWiring {
  std::vector<std::vector<std::array<std::uint8_t, 2>>> slot_of;

  /// Derive the wiring from a valid MI-digraph.
  /// \throws std::logic_error if some cell's in-degree is not 2.
  [[nodiscard]] static SwitchWiring precompute(const min::MIDigraph& network);
};

/// The simulator. Construction precomputes the arc -> input-slot wiring;
/// run() is repeatable (state resets each call) and thread-safe on a
/// const Engine.
class Engine {
 public:
  /// \p schedule must be a valid destination-bit schedule for \p network
  /// (see min::find_bit_schedule); the pair is verified on construction.
  Engine(min::MIDigraph network, min::BitSchedule schedule);

  /// Convenience: derive the schedule from the network.
  /// \throws std::invalid_argument if the network has no bit schedule.
  explicit Engine(min::MIDigraph network);

  /// Run one simulation with the given traffic and parameters, in the
  /// discipline selected by \p config.mode.
  [[nodiscard]] SimResult run(Pattern pattern, const SimConfig& config) const;

  [[nodiscard]] const min::MIDigraph& network() const noexcept {
    return network_;
  }
  [[nodiscard]] const min::BitSchedule& schedule() const noexcept {
    return schedule_;
  }
  [[nodiscard]] const SwitchWiring& wiring() const noexcept {
    return wiring_;
  }
  [[nodiscard]] int terminals_log2() const noexcept {
    return network_.stages();
  }

  /// The out-port a packet for \p dest_terminal takes at \p stage: the
  /// scheduled destination bit at inner stages, the terminal's low bit at
  /// the last (ejection) stage.
  [[nodiscard]] unsigned route_port(int stage,
                                    std::uint32_t dest_terminal) const;

 private:
  struct Packet {
    std::uint32_t dest_terminal = 0;
    std::uint64_t inject_cycle = 0;
    /// Cycle at which the packet's tail has fully arrived in the current
    /// buffer (a packet serializes over each link for packet_length
    /// cycles; it may not advance before then).
    std::uint64_t arrival_complete = 0;
  };

  [[nodiscard]] SimResult run_store_and_forward(Pattern pattern,
                                                const SimConfig& config) const;

  min::MIDigraph network_;
  min::BitSchedule schedule_;
  SwitchWiring wiring_;
};

}  // namespace mineq::sim
