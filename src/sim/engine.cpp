#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/fabric.hpp"
#include "sim/wormhole.hpp"
#include "util/bitops.hpp"

namespace mineq::sim {

std::string switching_mode_name(SwitchingMode mode) {
  switch (mode) {
    case SwitchingMode::kStoreAndForward:
      return "saf";
    case SwitchingMode::kWormhole:
      return "wormhole";
  }
  throw std::invalid_argument("switching_mode_name: unknown mode");
}

SwitchingMode parse_switching_mode(std::string_view name) {
  if (name == "saf" || name == "store-and-forward") {
    return SwitchingMode::kStoreAndForward;
  }
  if (name == "wormhole") return SwitchingMode::kWormhole;
  throw std::invalid_argument("parse_switching_mode: unknown mode \"" +
                              std::string(name) + '"');
}

void SimConfig::validate() const {
  if (!std::isfinite(injection_rate) || injection_rate < 0.0 ||
      injection_rate > 1.0) {
    throw std::invalid_argument(
        "SimConfig: injection_rate must be finite and within [0, 1], got " +
        std::to_string(injection_rate));
  }
  if (packet_length == 0) {
    throw std::invalid_argument(
        "SimConfig: packet_length must be positive (a packet has at least "
        "one flit)");
  }
  if (queue_capacity == 0) {
    throw std::invalid_argument(
        "SimConfig: queue_capacity must be positive (store-and-forward "
        "FIFOs need at least one packet slot)");
  }
  if (lanes == 0) {
    throw std::invalid_argument(
        "SimConfig: lanes must be positive (wormhole ports need at least "
        "one virtual channel)");
  }
  if (lane_depth == 0) {
    throw std::invalid_argument(
        "SimConfig: lane_depth must be positive (a lane buffers at least "
        "one flit)");
  }
  burst.validate();
}

Engine::Engine(min::MIDigraph network, min::BitSchedule schedule)
    : network_(std::move(network)), schedule_(std::move(schedule)) {
  if (!network_.is_valid()) {
    throw std::invalid_argument("Engine: network has invalid degrees");
  }
  if (!min::verify_bit_schedule(network_, schedule_)) {
    throw std::invalid_argument("Engine: schedule does not route network");
  }
  wiring_ = min::FlatWiring::from_digraph(network_);
}

namespace {

min::BitSchedule derive_schedule(const min::MIDigraph& network) {
  auto schedule = min::find_bit_schedule(network);
  if (!schedule.has_value()) {
    throw std::invalid_argument(
        "Engine: network has no destination-bit schedule");
  }
  return *schedule;
}

}  // namespace

Engine::Engine(min::MIDigraph network)
    : Engine(network, derive_schedule(network)) {}

unsigned Engine::route_port(int stage, std::uint32_t dest_terminal) const {
  if (stage < 0 || stage >= network_.stages()) {
    throw std::invalid_argument("Engine::route_port: stage out of range");
  }
  if (stage + 1 == network_.stages()) return dest_terminal & 1U;
  const std::uint32_t dest_cell = dest_terminal >> 1;
  return util::get_bit(dest_cell, schedule_.bit[static_cast<std::size_t>(
                                      stage)]) ^
         schedule_.invert[static_cast<std::size_t>(stage)];
}

namespace {

/// The store-and-forward discipline as a policy over FabricCore: packets
/// move as units between fixed-capacity per-port FIFOs (PacketRing), a
/// packet of L flits serializes over each link for L cycles, and a packet
/// must have fully arrived (arrival_complete) before it may advance.
///
/// \tparam kFaulted compile-time fault switch: the false instantiation
/// is the byte-identical unmasked fast path (no mask probes anywhere in
/// the hot loop); the true instantiation routes through the
/// fault::FaultedWiring view — masked arcs accept nothing, packets
/// reroute via the surviving sibling port, and dead switches drain their
/// queues into packets_dropped_faulted.
template <bool kFaulted>
class StoreAndForwardPolicy {
 public:
  StoreAndForwardPolicy(FabricCore& core, SimWorkspace& workspace,
                        [[maybe_unused]] const fault::FaultMask* mask)
      : core_(core),
        length_(core.config().packet_length),
        queues_(workspace.packet_ring(
            static_cast<std::size_t>(core.stages()) * core.ports(),
            core.config().queue_capacity)),
        link_busy_until_(
            static_cast<std::size_t>(core.stages() - 1) * core.ports(), 0),
        source_busy_until_(core.terminals(), 0),
        eject_busy_until_(core.ports(), 0),
        queue_moved_(core.ports(), 0),
        total_packet_slots_(static_cast<double>(core.stages()) *
                            static_cast<double>(core.terminals()) *
                            static_cast<double>(core.config().queue_capacity)) {
    if constexpr (kFaulted) {
      faulted_ = fault::FaultedWiring(core.wiring(), *mask);
      dead_cells_.resize(static_cast<std::size_t>(core.stages() - 1));
      for (int s = 0; s + 1 < core.stages(); ++s) {
        for (std::uint32_t x = 0; x < core.cells(); ++x) {
          if (faulted_.dead_switch(s, x)) {
            dead_cells_[static_cast<std::size_t>(s)].push_back(x);
          }
        }
      }
    }
  }

  /// Eject at the last stage: each terminal link (cell x, port d&1)
  /// carries one packet per packet_length cycles, round-robin between the
  /// two input slots.
  void eject(std::uint64_t cycle, bool measuring) {
    const int last = core_.stages() - 1;
    const std::uint32_t cells = core_.cells();
    std::fill(queue_moved_.begin(), queue_moved_.end(), 0);
    for (std::uint32_t x = 0; x < cells; ++x) {
      for (unsigned port = 0; port < 2; ++port) {
        if (eject_busy_until_[2 * x + port] > cycle) continue;
        RoundRobin& arb = core_.arbiter(last, 2 * x + port);
        for (unsigned probe = 0; probe < 2; ++probe) {
          const unsigned slot = arb.candidate(probe);
          const std::size_t q = queue_index(last, 2 * x + slot);
          if (queues_.empty(q)) continue;
          if (queues_.front_arrival(q) > cycle) continue;
          if ((queues_.front_dest(q) & 1U) != port) continue;
          const std::uint32_t dest = queues_.front_dest(q);
          const std::uint64_t inject_cycle = queues_.front_inject(q);
          queues_.pop(q);
          eject_busy_until_[2 * x + port] = cycle + length_;
          arb.grant(slot);
          queue_moved_[2 * x + slot] = 1;
          if (measuring && inject_cycle >= core_.config().warmup_cycles) {
            core_.result.flits_delivered += length_;
            core_.record_packet_delivered(
                static_cast<double>(cycle - inject_cycle + length_));
            if constexpr (kFaulted) {
              // A detoured packet ejects at whatever terminal the
              // surviving route reached; count the miss.
              if ((dest >> 1) != x) ++core_.result.packets_misdelivered;
            }
          }
          break;
        }
      }
    }
    if (measuring) account_blocking(last, cycle);
  }

  /// Advance one switch stage: round-robin between the two input slots
  /// per output port, honoring link serialization and downstream FIFO
  /// capacity.
  void advance_stage(int s, std::uint64_t cycle, bool measuring) {
    const std::uint32_t cells = core_.cells();
    const auto down = core_.wiring().down_stage(s);
    const std::size_t link_base =
        static_cast<std::size_t>(s) * core_.ports();
    if constexpr (kFaulted) drain_dead_switches(s, cycle, measuring);
    std::fill(queue_moved_.begin(), queue_moved_.end(), 0);
    for (std::uint32_t x = 0; x < cells; ++x) {
      for (unsigned port = 0; port < 2; ++port) {
        if constexpr (kFaulted) {
          if (!faulted_.arc_ok(s, x, port)) continue;  // dead link
        }
        if (link_busy_until_[link_base + 2 * x + port] > cycle) {
          continue;  // still serializing the previous packet
        }
        RoundRobin& arb = core_.arbiter(s, 2 * x + port);
        for (unsigned probe = 0; probe < 2; ++probe) {
          const unsigned slot = arb.candidate(probe);
          const std::size_t q = queue_index(s, 2 * x + slot);
          if (queues_.empty(q)) continue;
          if (queues_.front_arrival(q) > cycle) continue;
          const std::uint32_t dest = queues_.front_dest(q);
          const unsigned desired = core_.engine().route_port(s, dest);
          if constexpr (kFaulted) {
            // Degraded-mode adaptive routing: follow the schedule while
            // its arc survives, detour through the sibling otherwise.
            if (faulted_.usable_port(s, x, desired) !=
                static_cast<int>(port)) {
              continue;
            }
          } else {
            if (desired != port) continue;
          }
          // One packed read gives the child cell and its input slot.
          const std::uint32_t record = down[2 * x + port];
          const std::size_t target =
              queue_index(s + 1, 2 * (record >> 1) + (record & 1U));
          if (queues_.full(target)) continue;
          const std::uint64_t inject_cycle = queues_.front_inject(q);
          queues_.push(target, dest, inject_cycle, cycle + length_);
          queues_.pop(q);
          queue_moved_[2 * x + slot] = 1;
          link_busy_until_[link_base + 2 * x + port] = cycle + length_;
          arb.grant(slot);
          if constexpr (kFaulted) {
            if (port != desired && measuring &&
                inject_cycle >= core_.config().warmup_cycles) {
              ++core_.result.packets_rerouted;
            }
          }
          break;
        }
      }
    }
    if (measuring) account_blocking(s, cycle);
  }

  /// Inject at the first stage: terminal t feeds slot t&1 of cell t>>1.
  /// A bursty-OFF terminal makes no attempt at all.
  void inject(std::uint64_t cycle, bool measuring) {
    for (std::uint64_t t = 0; t < core_.terminals(); ++t) {
      if (!core_.terminal_active(t)) continue;
      if (!core_.gate()) continue;
      if (source_busy_until_[t] > cycle) continue;  // still serializing
      if (measuring) ++core_.result.offered;
      const std::size_t q = queue_index(0, t);
      if (queues_.full(q)) continue;  // dropped at source
      const std::uint32_t dest =
          core_.destination(static_cast<std::uint32_t>(t));
      queues_.push(q, dest, cycle, cycle + length_);
      source_busy_until_[t] = cycle + length_;
      if (measuring) {
        ++core_.result.injected;
        core_.result.flits_injected += length_;
      }
    }
  }

  /// Sample link business and buffer occupancy (measured cycles only).
  void sample(std::uint64_t cycle) {
    for (const std::uint64_t busy_until : link_busy_until_) {
      if (busy_until > cycle) ++busy_link_cycles_;
    }
    core_.result.lane_occupancy.add(
        static_cast<double>(queues_.total_packets()) / total_packet_slots_);
  }

  [[nodiscard]] std::uint64_t buffered_flits() const {
    return queues_.total_packets() * length_;
  }
  [[nodiscard]] std::uint64_t link_counter() const {
    return busy_link_cycles_;
  }

 private:
  [[nodiscard]] std::size_t queue_index(int s, std::size_t i) const {
    return static_cast<std::size_t>(s) * core_.ports() + i;
  }

  /// Discard every fully-arrived packet queued at a dead switch of stage
  /// \p s (both out-arcs masked: no degraded route exists). Flits still
  /// serializing in stay buffered until their arrival completes.
  void drain_dead_switches(int s, std::uint64_t cycle, bool measuring) {
    for (const std::uint32_t x : dead_cells_[static_cast<std::size_t>(s)]) {
      for (unsigned slot = 0; slot < 2; ++slot) {
        const std::size_t q = queue_index(s, 2 * x + slot);
        while (!queues_.empty(q) && queues_.front_arrival(q) <= cycle) {
          const std::uint64_t inject_cycle = queues_.front_inject(q);
          queues_.pop(q);
          if (measuring && inject_cycle >= core_.config().warmup_cycles) {
            ++core_.result.packets_dropped_faulted;
            core_.result.flits_dropped_faulted += length_;
          }
        }
      }
    }
  }

  /// Head-of-line blocking: a fully-arrived head that did not move.
  void account_blocking(int s, std::uint64_t cycle) {
    for (std::size_t i = 0; i < core_.ports(); ++i) {
      const std::size_t q = queue_index(s, i);
      if (!queues_.empty(q) && queues_.front_arrival(q) <= cycle &&
          queue_moved_[i] == 0) {
        ++core_.result.hol_blocking_cycles;
      }
    }
  }

  FabricCore& core_;
  std::uint64_t length_;
  PacketRing& queues_;
  std::vector<std::uint64_t> link_busy_until_;
  std::vector<std::uint64_t> source_busy_until_;
  std::vector<std::uint64_t> eject_busy_until_;
  std::vector<std::uint8_t> queue_moved_;
  std::uint64_t busy_link_cycles_ = 0;
  double total_packet_slots_;
  fault::FaultedWiring faulted_;                     // kFaulted only
  std::vector<std::vector<std::uint32_t>> dead_cells_;  // kFaulted only
};

}  // namespace

SimResult Engine::run(Pattern pattern, const SimConfig& config,
                      const fault::FaultMask* mask,
                      SimWorkspace* workspace) const {
  config.validate();
  // The fast-path test: an absent or all-clear mask runs the exact
  // unfaulted policy instantiation, so fault support costs the pristine
  // hot loop nothing.
  const bool faulted = mask != nullptr && !mask->none();
  if (faulted && !mask->matches(wiring_)) {
    throw std::invalid_argument(
        "Engine::run: fault mask geometry does not match this network");
  }
  if (config.mode == SwitchingMode::kWormhole) {
    return WormholeSimulator(*this).run(pattern, config, EjectObserver(),
                                        mask, workspace);
  }
  SimWorkspace local;
  SimWorkspace& ws = workspace != nullptr ? *workspace : local;
  FabricCore core(*this, pattern, config, /*arbiter_candidates=*/2);
  if (faulted) {
    StoreAndForwardPolicy<true> policy(core, ws, mask);
    return run_switched(core, policy);
  }
  StoreAndForwardPolicy<false> policy(core, ws, nullptr);
  return run_switched(core, policy);
}

}  // namespace mineq::sim
