#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "multipath/looping.hpp"
#include "obs/observer.hpp"
#include "sim/fabric.hpp"
#include "sim/multipath_select.hpp"
#include "sim/shard.hpp"
#include "sim/wormhole.hpp"
#include "util/bitops.hpp"

namespace mineq::sim {

std::string switching_mode_name(SwitchingMode mode) {
  switch (mode) {
    case SwitchingMode::kStoreAndForward:
      return "saf";
    case SwitchingMode::kWormhole:
      return "wormhole";
  }
  throw std::invalid_argument("switching_mode_name: unknown mode");
}

SwitchingMode parse_switching_mode(std::string_view name) {
  if (name == "saf" || name == "store-and-forward") {
    return SwitchingMode::kStoreAndForward;
  }
  if (name == "wormhole") return SwitchingMode::kWormhole;
  throw std::invalid_argument("parse_switching_mode: unknown mode \"" +
                              std::string(name) + '"');
}

std::string arbitration_policy_name(ArbitrationPolicy policy) {
  switch (policy) {
    case ArbitrationPolicy::kRoundRobin:
      return "rr";
    case ArbitrationPolicy::kWeighted:
      return "weighted";
    case ArbitrationPolicy::kPriority:
      return "priority";
  }
  throw std::invalid_argument("arbitration_policy_name: unknown policy");
}

ArbitrationPolicy parse_arbitration_policy(std::string_view name) {
  if (name == "rr" || name == "round-robin") {
    return ArbitrationPolicy::kRoundRobin;
  }
  if (name == "weighted") return ArbitrationPolicy::kWeighted;
  if (name == "priority") return ArbitrationPolicy::kPriority;
  throw std::invalid_argument(
      "parse_arbitration_policy: unknown policy \"" + std::string(name) +
      "\" (expected rr, weighted or priority)");
}

const std::vector<PathPolicy>& all_path_policies() {
  static const std::vector<PathPolicy> policies = {
      PathPolicy::kHash, PathPolicy::kAdaptive, PathPolicy::kLooping};
  return policies;
}

std::string path_policy_name(PathPolicy policy) {
  switch (policy) {
    case PathPolicy::kHash:
      return "hash";
    case PathPolicy::kAdaptive:
      return "adaptive";
    case PathPolicy::kLooping:
      return "looping";
  }
  throw std::invalid_argument("path_policy_name: unknown policy");
}

PathPolicy parse_path_policy(std::string_view name) {
  for (const PathPolicy policy : all_path_policies()) {
    if (path_policy_name(policy) == name) return policy;
  }
  std::string valid;
  for (const PathPolicy policy : all_path_policies()) {
    if (!valid.empty()) valid += ", ";
    valid += path_policy_name(policy);
  }
  throw std::invalid_argument("parse_path_policy: unknown policy \"" +
                              std::string(name) + "\" (valid: " + valid +
                              ')');
}

std::size_t latency_histogram_buckets(const SimConfig& config,
                                      int stages) noexcept {
  if (config.latency_histogram_buckets > 0) {
    return config.latency_histogram_buckets;
  }
  // Auto-scale: 1-cycle buckets covering ~64 full-traversal serialization
  // delays, clamped to the run length (a delivered latency can never
  // exceed total cycles plus the tail's serialization) and to
  // [1024, 65536] — the floor keeps every historic config's histogram
  // shape (and therefore its pinned quantiles) exactly as it was.
  std::uint64_t want = 64ULL * static_cast<std::uint64_t>(stages) *
                       static_cast<std::uint64_t>(config.packet_length);
  const std::uint64_t total = config.warmup_cycles + config.measure_cycles;
  if (want > total + 2) want = total + 2;
  if (want < 1024) want = 1024;
  if (want > 65536) want = 65536;
  return static_cast<std::size_t>(want);
}

void CreditConfig::validate(SwitchingMode mode, std::size_t lanes) const {
  if (!enabled) return;  // disabled leaves the remaining fields inert
  // The in-flight ring allocates latency slots per link; cap it well
  // above any physically meaningful round-trip.
  constexpr std::uint64_t kMaxReturnLatency = 4096;
  if (return_latency > kMaxReturnLatency) {
    throw std::invalid_argument(
        "CreditConfig: return_latency must be <= " +
        std::to_string(kMaxReturnLatency) + ", got " +
        std::to_string(return_latency));
  }
  // Flit::sl is a 6-bit field; 64 service levels / weight classes.
  constexpr std::size_t kMaxServiceLevels = 64;
  if (sl_map.size() > kMaxServiceLevels) {
    throw std::invalid_argument(
        "CreditConfig: at most " + std::to_string(kMaxServiceLevels) +
        " service levels, got " + std::to_string(sl_map.size()));
  }
  if (weights.size() > kMaxServiceLevels) {
    throw std::invalid_argument(
        "CreditConfig: at most " + std::to_string(kMaxServiceLevels) +
        " VL weights, got " + std::to_string(weights.size()));
  }
  for (const unsigned w : weights) {
    if (w == 0 || w > (1U << 20)) {
      throw std::invalid_argument(
          "CreditConfig: weights must be within [1, 2^20], got " +
          std::to_string(w));
    }
  }
  for (const unsigned vl : sl_map) {
    if (mode == SwitchingMode::kWormhole && vl >= lanes) {
      throw std::invalid_argument(
          "CreditConfig: sl_map entry " + std::to_string(vl) +
          " names a virtual lane but the config has only " +
          std::to_string(lanes) + " lanes");
    }
    if (vl >= kMaxServiceLevels) {
      throw std::invalid_argument(
          "CreditConfig: sl_map entry " + std::to_string(vl) +
          " exceeds the VL/weight-class bound of " +
          std::to_string(kMaxServiceLevels - 1));
    }
  }
}

void SimConfig::validate() const {
  if (!std::isfinite(injection_rate) || injection_rate < 0.0 ||
      injection_rate > 1.0) {
    throw std::invalid_argument(
        "SimConfig: injection_rate must be finite and within [0, 1], got " +
        std::to_string(injection_rate));
  }
  if (packet_length == 0) {
    throw std::invalid_argument(
        "SimConfig: packet_length must be positive (a packet has at least "
        "one flit)");
  }
  if (queue_capacity == 0) {
    throw std::invalid_argument(
        "SimConfig: queue_capacity must be positive (store-and-forward "
        "FIFOs need at least one packet slot)");
  }
  if (lanes == 0) {
    throw std::invalid_argument(
        "SimConfig: lanes must be positive (wormhole ports need at least "
        "one virtual channel)");
  }
  if (lane_depth == 0) {
    throw std::invalid_argument(
        "SimConfig: lane_depth must be positive (a lane buffers at least "
        "one flit)");
  }
  if (sim_threads == 0) {
    throw std::invalid_argument(
        "SimConfig: sim_threads must be positive (1 = serial; > 1 shards "
        "the simulation across a worker team)");
  }
  if (sim_threads > kMaxSimThreads) {
    throw std::invalid_argument(
        "SimConfig: sim_threads must be <= " +
        std::to_string(kMaxSimThreads) + ", got " +
        std::to_string(sim_threads) +
        " (the sharded driver clamps to the cell count, but a team this "
        "large is surely a typo)");
  }
  burst.validate();
  credits.validate(mode, lanes);
  workload.validate();
}

void Engine::finish_unipath_geometry() {
  terminals_ = static_cast<std::uint64_t>(wiring_.radix()) *
               wiring_.cells_per_stage();
  address_digits_ = wiring_.stages();
  logical_radix_ = wiring_.radix();
  logical_cells_ = wiring_.cells_per_stage();
}

Engine::Engine(min::MIDigraph network, min::BitSchedule schedule)
    : network_(std::move(network)), schedule_(std::move(schedule)) {
  if (!network_->is_valid()) {
    throw std::invalid_argument("Engine: network has invalid degrees");
  }
  if (!min::verify_bit_schedule(*network_, schedule_)) {
    throw std::invalid_argument("Engine: schedule does not route network");
  }
  wiring_ = min::FlatWiring::from_digraph(*network_);
  finish_unipath_geometry();
}

namespace {

min::BitSchedule derive_schedule(const min::MIDigraph& network) {
  auto schedule = min::find_bit_schedule(network);
  if (!schedule.has_value()) {
    throw std::invalid_argument(
        "Engine: network has no destination-bit schedule");
  }
  return *schedule;
}

/// Structural sanity of a construction-attached digit schedule: the
/// arity must match the fabric and every per-stage map must be a
/// bijection of the ports. Deliberately O(stages * radix) — the whole
/// point of attaching a closed-form schedule is skipping the
/// O(cells^2 * stages * radix) recovery, so routing correctness is the
/// construction's contract (pinned against min::verify_digit_schedule at
/// small sizes in the tests), not re-proved per Engine.
void check_attached_schedule(const min::DigitSchedule& schedule, int stages,
                             int radix) {
  const auto hops = static_cast<std::size_t>(stages - 1);
  const auto r = static_cast<std::size_t>(radix);
  if (schedule.radix != radix || schedule.digit.size() != hops ||
      schedule.port_of_value.size() != hops) {
    throw std::invalid_argument(
        "Engine: attached digit schedule does not match the fabric arity");
  }
  for (std::size_t s = 0; s < hops; ++s) {
    if (schedule.digit[s] < 0 || schedule.digit[s] + 1 >= stages) {
      throw std::invalid_argument(
          "Engine: attached digit schedule reads an out-of-range digit");
    }
    const std::vector<unsigned>& map = schedule.port_of_value[s];
    if (map.size() != r) {
      throw std::invalid_argument(
          "Engine: attached digit schedule has a non-radix value map");
    }
    std::vector<bool> seen(r, false);
    for (const unsigned port : map) {
      if (port >= r || seen[port]) {
        throw std::invalid_argument(
            "Engine: attached digit schedule map is not a port bijection");
      }
      seen[port] = true;
    }
  }
}

/// The radix-2 special case of a digit schedule as a BitSchedule:
/// bit[s] is the scheduled digit and invert[s] falls out of where the
/// value map sends 0 (identity -> 0, swap -> 1).
min::BitSchedule bit_schedule_from_digits(const min::DigitSchedule& digits) {
  min::BitSchedule schedule;
  schedule.bit.assign(digits.digit.begin(), digits.digit.end());
  schedule.invert.reserve(digits.port_of_value.size());
  for (const std::vector<unsigned>& map : digits.port_of_value) {
    schedule.invert.push_back(map[0]);
  }
  return schedule;
}

}  // namespace

Engine::Engine(min::MIDigraph network)
    : Engine(network, derive_schedule(network)) {}

Engine::Engine(const min::KaryMIDigraph& network) {
  if (!network.is_valid()) {
    throw std::invalid_argument("Engine: network has invalid degrees");
  }
  if (network.radix() == 2) {
    // The binary path: convert the tables so radix-2 KaryMIDigraph runs
    // are byte-identical to the MIDigraph constructor's.
    std::vector<min::Connection> connections;
    connections.reserve(static_cast<std::size_t>(network.stages() - 1));
    for (int s = 0; s + 1 < network.stages(); ++s) {
      connections.emplace_back(network.connection(s).table(0),
                               network.connection(s).table(1),
                               network.stages() - 1);
    }
    network_.emplace(network.stages(), std::move(connections));
    if (network.schedule().has_value()) {
      // The construction attached its closed-form schedule: adopt it
      // (as the binary special case) instead of spending the
      // O(cells^2 * stages) recovery, so built-in fabrics construct in
      // linear time at any size.
      check_attached_schedule(*network.schedule(), network.stages(), 2);
      schedule_ = bit_schedule_from_digits(*network.schedule());
    } else {
      schedule_ = derive_schedule(*network_);
    }
    wiring_ = min::FlatWiring::from_digraph(*network_);
    finish_unipath_geometry();
    return;
  }
  wiring_ = min::FlatWiring::from_kary(network);
  if (network.schedule().has_value()) {
    // Closed-form schedule attached by the construction (the built-in
    // omega/flip/baseline kinds): no recovery needed, no size cap — the
    // cap below only gates truly unknown wirings.
    check_attached_schedule(*network.schedule(), network.stages(),
                            network.radix());
    digit_schedule_ = *network.schedule();
  } else {
    // Digit-schedule recovery is O(cells^2 * stages * radix) — the same
    // all-pairs budget the binary find_bit_schedule has always spent
    // ("intended for n up to ~10", routing.hpp). Past ~4096 cells that
    // stops being seconds and becomes an apparent hang, so reject the
    // geometry with advice instead of stalling (radix 8 wants stages <=
    // 5, radix 16 stages <= 4).
    constexpr std::uint32_t kMaxDigitScheduleCells = 4096;
    if (wiring_.cells_per_stage() > kMaxDigitScheduleCells) {
      throw std::invalid_argument(
          "Engine: radix-" + std::to_string(network.radix()) +
          " fabric with " + std::to_string(wiring_.cells_per_stage()) +
          " cells per stage exceeds the digit-schedule recovery budget (" +
          std::to_string(kMaxDigitScheduleCells) +
          " cells); reduce stages or radix, or build the fabric through "
          "the closed-form min::build_kary_network constructors, which "
          "attach their digit schedules and skip recovery entirely");
    }
    auto schedule = min::find_digit_schedule(wiring_);
    if (!schedule.has_value()) {
      throw std::invalid_argument(
          "Engine: network has no destination-digit schedule");
    }
    digit_schedule_ = std::move(*schedule);
  }
  digit_scale_.reserve(digit_schedule_.digit.size());
  for (const int digit : digit_schedule_.digit) {
    std::uint32_t scale = 1;
    for (int i = 0; i < digit; ++i) {
      scale *= static_cast<std::uint32_t>(wiring_.radix());
    }
    digit_scale_.push_back(scale);
  }
  finish_unipath_geometry();
}

Engine::Engine(min::MultiPathWiring fabric)
    : wiring_(fabric.wiring()), fabric_(std::move(fabric)) {
  digit_schedule_ = fabric_->schedule();
  free_stage_ = fabric_->free_stage();
  terminals_ = fabric_->logical_terminals();
  address_digits_ = fabric_->logical_stages();
  logical_radix_ = fabric_->logical_radix();
  logical_cells_ = fabric_->logical_cells();
  planes_ = fabric_->planes();
  dilation_ = fabric_->dilation();
  // Digit scales in the *logical* radix (identity placeholders at free
  // connections scale by digit 0, harmlessly — route_group checks the
  // free flag first).
  digit_scale_.reserve(digit_schedule_.digit.size());
  for (const int digit : digit_schedule_.digit) {
    std::uint32_t scale = 1;
    for (int i = 0; i < digit; ++i) {
      scale *= static_cast<std::uint32_t>(logical_radix_);
    }
    digit_scale_.push_back(scale);
  }
}

const min::MultiPathWiring& Engine::fabric() const {
  if (!fabric_.has_value()) {
    throw std::logic_error(
        "Engine::fabric: this engine was not built from a MultiPathWiring");
  }
  return *fabric_;
}

const min::MIDigraph& Engine::network() const {
  if (!network_.has_value()) {
    throw std::logic_error(
        "Engine::network: a radix > 2 engine has no MIDigraph "
        "representation (use wiring())");
  }
  return *network_;
}

unsigned Engine::route_port_general(int stage,
                                    std::uint32_t dest_terminal) const {
  const int stages = wiring_.stages();
  if (stage < 0 || stage >= stages) {
    throw std::invalid_argument("Engine::route_port: stage out of range");
  }
  const auto radix = static_cast<unsigned>(wiring_.radix());
  if (stage + 1 == stages) return dest_terminal % radix;
  const std::uint32_t dest_cell = dest_terminal / radix;
  const unsigned value =
      (dest_cell / digit_scale_[static_cast<std::size_t>(stage)]) % radix;
  return digit_schedule_
      .port_of_value[static_cast<std::size_t>(stage)][value];
}

namespace {

/// The store-and-forward discipline as a policy over FabricCore: packets
/// move as units between fixed-capacity per-port FIFOs (PacketRing), a
/// packet of L flits serializes over each link for L cycles, and a packet
/// must have fully arrived (arrival_complete) before it may advance.
///
/// \tparam kFaulted compile-time fault switch: the false instantiation
/// is the byte-identical unmasked fast path (no mask probes anywhere in
/// the hot loop); the true instantiation routes through the
/// fault::FaultedWiring view — masked arcs accept nothing, packets
/// reroute via the next surviving port, and dead switches drain their
/// queues into packets_dropped_faulted.
///
/// \tparam kBinary compile-time radix-2 switch: radix() folds to the
/// literal 2, so every division and modulo below compiles to the historic
/// shift/mask code — the binary instantiations are byte- and
/// speed-identical to the pre-k-ary policy. The general instantiations
/// divide by the runtime radix.
///
/// \tparam kCredits compile-time flow-control switch: the false
/// instantiation keeps the idealized handshake (senders probe downstream
/// FIFO occupancy directly) byte for byte; the true instantiation runs
/// link-level credits over a CreditLedger — one credit per downstream
/// FIFO slot, consumed per push, returned per pop with the configured
/// latency — plus the pluggable output-port arbitration (round-robin /
/// quantum-weighted / strict-priority over the SL->VL classes packets
/// carry).
///
/// \tparam kMultiPath compile-time multipath switch: the true
/// instantiation routes *logical* destination addresses over a
/// MultiPathWiring's physical fabric — every hop selects within the
/// engine's route_group by the configured PathPolicy (deterministic
/// hash, least-occupancy adaptive, or looping-precomputed Benes
/// settings), injection picks a plane on replicated fabrics, and
/// ejection arbitrates per logical terminal across planes * radix
/// physical buffers. Faulted multipath runs re-select within the
/// surviving group members first (path_reroutes) before falling back to
/// the unipath out-of-group detour (packets_rerouted). Always the
/// general-radix, credit-less instantiation.
///
/// \tparam kObs compile-time observability switch: the false
/// instantiation carries no telemetry code at all — an all-disabled
/// ObsConfig dispatches there, so observability support costs plain runs
/// nothing (pinned by the golden tests). The true instantiation feeds an
/// obs::Observer: per-stage probe counters and trace events go to the
/// per-worker WorkerLogs (order-independent sums / (cycle, phase)
/// sort keys keep sharded runs byte-identical to serial), flow records
/// ride the worker-0 eject replay, and every HOL-blocked head-cycle is
/// attributed to exactly one StallCause in the same scan that counts
/// hol_blocking_cycles — so the per-cause counters always sum to it.
template <bool kFaulted, bool kBinary, bool kCredits, bool kMultiPath,
          bool kObs>
class StoreAndForwardPolicy {
  static_assert(!(kMultiPath && (kBinary || kCredits)),
                "multipath instantiations are general-radix and credit-less");

 public:
  StoreAndForwardPolicy(FabricCore& core, SimWorkspace& workspace,
                        [[maybe_unused]] const fault::FaultMask* mask,
                        [[maybe_unused]] obs::Observer* obs,
                        [[maybe_unused]] const multipath::LoopingSettings*
                            looping = nullptr)
      : core_(core),
        radix_(static_cast<unsigned>(core.wiring().radix())),
        length_(core.config().packet_length),
        queues_(workspace.packet_ring(
            static_cast<std::size_t>(core.stages()) * core.ports(),
            core.config().queue_capacity)),
        link_busy_until_(
            static_cast<std::size_t>(core.stages() - 1) * core.ports(), 0),
        source_busy_until_(core.terminals(), 0),
        eject_busy_until_(core.ports(), 0),
        queue_moved_(core.ports(), 0),
        total_packet_slots_(static_cast<double>(core.stages()) *
                            static_cast<double>(core.ports()) *
                            static_cast<double>(core.config().queue_capacity)) {
    if constexpr (kMultiPath) {
      const Engine& engine = core.engine();
      lradix_ = static_cast<unsigned>(engine.logical_radix());
      lcells_ = engine.logical_cells();
      planes_ = static_cast<unsigned>(engine.planes());
      dilation_ = static_cast<unsigned>(engine.dilation());
      path_policy_ = core.config().path_policy;
      looping_ = looping;
      free_stage_ = engine.fabric().free_stage().data();
      core.result.paths_available = engine.fabric().paths_available();
    }
    if constexpr (kFaulted) {
      faulted_ = fault::FaultedWiring(core.wiring(), *mask);
      dead_cells_.resize(static_cast<std::size_t>(core.stages() - 1));
      for (int s = 0; s + 1 < core.stages(); ++s) {
        for (std::uint32_t x = 0; x < core.cells(); ++x) {
          if (faulted_.dead_switch(s, x)) {
            dead_cells_[static_cast<std::size_t>(s)].push_back(x);
          }
        }
      }
    }
    if constexpr (kCredits) {
      credit_config_ = &core.config().credits;
      service_levels_ = credit_config_->service_levels();
      credits_ = &workspace.credit_ledger(
          static_cast<std::size_t>(core.stages()) * core.ports(),
          static_cast<std::uint32_t>(core.config().queue_capacity),
          credit_config_->return_latency);
      if (credit_config_->arbitration == ArbitrationPolicy::kWeighted) {
        weighted_.reset(static_cast<std::size_t>(core.stages()) *
                            core.ports(),
                        radix());
      }
      core.result.sl_latency.resize(service_levels_);
    }
    if constexpr (kObs) {
      obs_ = obs;
      stall_cause_.assign(core.ports(), 0);
    }
  }

  /// Eject at the last stage: each terminal link (cell x, port d % r)
  /// carries one packet per packet_length cycles, arbitrated between the
  /// r input slots. Ejection consumes no credits (terminals always
  /// sink), but popping returns the slot's credit upstream; eject runs
  /// first each cycle, so the credit ledger's start-of-cycle harvest
  /// lives here.
  void eject(std::uint64_t cycle, bool measuring) {
    if constexpr (kCredits) credits_->deliver(cycle);
    if constexpr (kMultiPath) {
      eject_multipath_impl<false>(cycle, measuring, 0, lcells_, nullptr);
    } else {
      eject_impl<false>(cycle, measuring, 0, core_.cells(), nullptr);
    }
  }

  /// The eject kernel over cells [\p x0, \p x1): the serial
  /// instantiation (kShard = false) runs the full range and mutates the
  /// core result directly — byte-identical to the historic method — and
  /// the sharded one accumulates order-independent counters into \p wk's
  /// partial and defers the order-sensitive latency adds into its event
  /// buffer for worker 0 to replay in range order. Every structure
  /// touched is owned by the range: last-stage queues, eject pacing,
  /// arbiters and queue_moved_ slots all index by (cell, port).
  template <bool kShard>
  void eject_impl(std::uint64_t cycle, bool measuring, std::uint32_t x0,
                  std::uint32_t x1, [[maybe_unused]] ShardWorker* wk) {
    [[maybe_unused]] SimResult& res = shard_result<kShard>(wk);
    const int last = core_.stages() - 1;
    const unsigned r = radix();
    std::fill(queue_moved_.begin() + static_cast<std::size_t>(x0) * r,
              queue_moved_.begin() + static_cast<std::size_t>(x1) * r, 0);
    if constexpr (kObs) {
      // Stall causes default to lost-arbitration; the probe loops below
      // overwrite the specific causes they detect.
      std::fill(stall_cause_.begin() + static_cast<std::size_t>(x0) * r,
                stall_cause_.begin() + static_cast<std::size_t>(x1) * r, 0);
    }
    for (std::uint32_t x = x0; x < x1; ++x) {
      for (unsigned port = 0; port < r; ++port) {
        if (eject_busy_until_[x * r + port] > cycle) continue;
        // Strict priority scans the ready candidates first: only a
        // head of the highest ready weight class may win this cycle.
        [[maybe_unused]] unsigned need_weight = 0;
        if constexpr (kCredits) {
          if (credit_config_->arbitration == ArbitrationPolicy::kPriority) {
            for (unsigned slot = 0; slot < r; ++slot) {
              const std::size_t q = queue_index(last, x * r + slot);
              if (queues_.empty(q) || queues_.front_arrival(q) > cycle ||
                  (queues_.front_dest(q) % r) != port) {
                continue;
              }
              need_weight = std::max(need_weight, front_weight(q));
            }
          }
        }
        for (unsigned probe = 0; probe < r; ++probe) {
          const unsigned slot = arb_candidate(last, x * r + port, probe);
          const std::size_t q = queue_index(last, x * r + slot);
          if (queues_.empty(q)) continue;
          if (queues_.front_arrival(q) > cycle) continue;
          if ((queues_.front_dest(q) % r) != port) continue;
          [[maybe_unused]] unsigned vl = 0;
          if constexpr (kCredits) {
            vl = credit_config_->vl_of_sl(queues_.front_sl(q));
            if (credit_config_->arbitration ==
                    ArbitrationPolicy::kPriority &&
                credit_config_->weight(vl) != need_weight) {
              continue;
            }
          }
          const std::uint32_t dest = queues_.front_dest(q);
          const std::uint64_t inject_cycle = queues_.front_inject(q);
          const std::uint32_t src = queues_.front_src(q);
          const unsigned tag = queues_.front_tag(q);
          [[maybe_unused]] unsigned sl = 0;
          if constexpr (kCredits) sl = queues_.front_sl(q);
          shard_pop<kShard>(q, wk);
          if constexpr (kCredits) credits_->give_back(q, cycle);
          eject_busy_until_[x * r + port] = cycle + length_;
          arb_grant(last, x * r + port, slot, vl);
          queue_moved_[x * r + slot] = 1;
          if (core_.wants_deliveries()) {
            // Every delivery feeds the source, warmup included (see
            // workload::Delivery); eject_cycle counts the serialization
            // tail so reply latencies match the packet-latency clock.
            const workload::Delivery delivery{
                src, dest, x * r + port, inject_cycle, cycle + length_,
                static_cast<std::uint8_t>(tag),
                measuring && inject_cycle >= core_.config().warmup_cycles};
            if constexpr (kShard) {
              wk->wl_events.push_back(delivery);
            } else {
              core_.workload_delivered(delivery);
            }
          }
          if constexpr (kObs) {
            if (measuring) {
              obs_log<kShard>(wk).hops[static_cast<std::size_t>(last)] +=
                  length_;
            }
            if (inject_cycle >= core_.config().warmup_cycles &&
                obs_->traced(src, inject_cycle)) {
              trace_push<kShard>(wk, cycle, inject_cycle, src, dest,
                                 obs::TraceEventKind::kStageEnd,
                                 static_cast<std::uint8_t>(last), 0,
                                 kEjectPhase);
              trace_push<kShard>(wk, cycle, inject_cycle, src, dest,
                                 obs::TraceEventKind::kPacketEnd, 0, 0,
                                 kEjectPhase);
            }
          }
          if (measuring && inject_cycle >= core_.config().warmup_cycles) {
            res.flits_delivered += length_;
            const double latency =
                static_cast<double>(cycle - inject_cycle + length_);
            if constexpr (kShard) {
              wk->saf_events.push_back(SafEjectEvent{latency, sl, src, dest});
            } else {
              core_.record_packet_delivered(latency);
              if constexpr (kCredits) {
                core_.result.sl_latency[sl].add(latency);
              }
              if constexpr (kObs) {
                if (obs_->flows_on()) {
                  obs_->record_flow(src, dest, sl, latency);
                }
              }
            }
            if constexpr (kFaulted) {
              // A detoured packet ejects at whatever terminal the
              // surviving route reached; count the miss.
              if ((dest / r) != x) ++res.packets_misdelivered;
            }
          }
          break;
        }
      }
    }
    if (measuring) {
      account_blocking<kShard>(last, cycle, static_cast<std::size_t>(x0) * r,
                               static_cast<std::size_t>(x1) * r, wk,
                               eject_stall_phase(0));
    }
  }

  /// Advance one switch stage: round-robin between the r input slots
  /// per output port, honoring link serialization and downstream FIFO
  /// capacity. The routing-schedule reads (and, faulted, the mask
  /// probes) are hoisted to per-stage registers: signed/unsigned TBAA
  /// cannot prove the queue stores below don't alias the Engine's
  /// schedule fields, so an Engine::route_port call in the probe loop
  /// would reload them per probe.
  void advance_stage(int s, std::uint64_t cycle, bool measuring) {
    if constexpr (kMultiPath) {
      advance_stage_multipath_impl<false>(s, cycle, measuring, 0,
                                          core_.cells(), nullptr);
    } else {
      advance_stage_impl<false>(s, cycle, measuring, 0, core_.cells(),
                                nullptr);
    }
  }

  /// The advance kernel over cells [\p x0, \p x1). Safe to run on
  /// disjoint ranges concurrently: a cell pops only its own stage-s
  /// queues and pushes only through its own down-arcs, and the perfect
  /// matching makes each stage-(s+1) queue reachable from exactly one
  /// upstream cell — single-writer without locks. Credit handshakes
  /// stay range-local too (consume/available index the pushed target,
  /// give_back the popped queue).
  template <bool kShard>
  void advance_stage_impl(int s, std::uint64_t cycle, bool measuring,
                          std::uint32_t x0, std::uint32_t x1,
                          [[maybe_unused]] ShardWorker* wk) {
    [[maybe_unused]] SimResult& res = shard_result<kShard>(wk);
    const unsigned r = radix();
    const auto down = core_.wiring().down_stage(s);
    const std::size_t link_base =
        static_cast<std::size_t>(s) * core_.ports();
    // Per-stage routing constants (interior stages only — the last
    // stage ejects, in eject()).
    unsigned bit_shift = 0;
    unsigned bit_invert = 0;
    std::uint32_t digit_scale = 1;
    const std::uint32_t* port_of_value = nullptr;
    if constexpr (kBinary) {
      bit_shift = static_cast<unsigned>(
          core_.engine().schedule().bit[static_cast<std::size_t>(s)]);
      bit_invert =
          core_.engine().schedule().invert[static_cast<std::size_t>(s)];
    } else {
      digit_scale = core_.engine().route_digit_scale(s);
      port_of_value = core_.engine()
                          .digit_schedule()
                          .port_of_value[static_cast<std::size_t>(s)]
                          .data();
    }
    // Faulted: arc bit index = stage base + the record's array offset
    // (FaultMask::arc_index's layout), computed with the policy's folded
    // radix so binary instantiations keep shift indexing.
    [[maybe_unused]] std::size_t arc_base = 0;
    [[maybe_unused]] const fault::FaultMask* mask = nullptr;
    if constexpr (kFaulted) {
      drain_dead_switches<kShard>(s, cycle, measuring, x0, x1, wk);
      arc_base = static_cast<std::size_t>(s) * core_.ports();
      mask = &faulted_.mask();
    }
    std::fill(queue_moved_.begin() + static_cast<std::size_t>(x0) * r,
              queue_moved_.begin() + static_cast<std::size_t>(x1) * r, 0);
    if constexpr (kObs) {
      // Stall causes default to lost-arbitration; the probe loops below
      // overwrite the specific causes they detect.
      std::fill(stall_cause_.begin() + static_cast<std::size_t>(x0) * r,
                stall_cause_.begin() + static_cast<std::size_t>(x1) * r, 0);
    }
    for (std::uint32_t x = x0; x < x1; ++x) {
      for (unsigned port = 0; port < r; ++port) {
        if constexpr (kFaulted) {
          if (mask->faulted_index(arc_base + x * r + port)) {
            continue;  // dead link
          }
        }
        if (link_busy_until_[link_base + x * r + port] > cycle) {
          continue;  // still serializing the previous packet
        }
        // Strict priority scans the ready candidates first: only a
        // head of the highest weight class routed here may win.
        [[maybe_unused]] unsigned need_weight = 0;
        if constexpr (kCredits) {
          if (credit_config_->arbitration == ArbitrationPolicy::kPriority) {
            for (unsigned slot = 0; slot < r; ++slot) {
              const std::size_t q = queue_index(s, x * r + slot);
              if (queues_.empty(q) || queues_.front_arrival(q) > cycle) {
                continue;
              }
              const std::uint32_t dest = queues_.front_dest(q);
              unsigned desired;
              if constexpr (kBinary) {
                desired = (((dest >> 1) >> bit_shift) & 1U) ^ bit_invert;
              } else {
                desired = port_of_value[((dest / r) / digit_scale) % r];
              }
              if constexpr (kFaulted) {
                if (usable_port(mask, arc_base + x * r, desired) !=
                    static_cast<int>(port)) {
                  continue;
                }
              } else {
                if (desired != port) continue;
              }
              need_weight = std::max(need_weight, front_weight(q));
            }
          }
        }
        for (unsigned probe = 0; probe < r; ++probe) {
          const unsigned slot = arb_candidate(s, x * r + port, probe);
          const std::size_t q = queue_index(s, x * r + slot);
          if (queues_.empty(q)) continue;
          if (queues_.front_arrival(q) > cycle) continue;
          const std::uint32_t dest = queues_.front_dest(q);
          unsigned desired;
          if constexpr (kBinary) {
            desired = (((dest >> 1) >> bit_shift) & 1U) ^ bit_invert;
          } else {
            desired = port_of_value[((dest / r) / digit_scale) % r];
          }
          if constexpr (kFaulted) {
            // Degraded-mode adaptive routing: follow the schedule while
            // its arc survives, detour through the next surviving port
            // otherwise (the FaultedWiring::usable_port scan, with the
            // folded radix).
            if (usable_port(mask, arc_base + x * r, desired) !=
                static_cast<int>(port)) {
              continue;
            }
          } else {
            if (desired != port) continue;
          }
          [[maybe_unused]] unsigned vl = 0;
          if constexpr (kCredits) {
            vl = credit_config_->vl_of_sl(queues_.front_sl(q));
            if (credit_config_->arbitration ==
                    ArbitrationPolicy::kPriority &&
                credit_config_->weight(vl) != need_weight) {
              continue;
            }
          }
          // One packed read gives the child cell and its input slot —
          // and the record value r * child + slot IS the downstream
          // port-slot index (the identity the packing was chosen for).
          const std::uint32_t record = down[x * r + port];
          const std::size_t target = queue_index(s + 1, record);
          if constexpr (kCredits) {
            // Credit handshake in place of the occupancy probe. Every
            // candidate at this output port sends into the same
            // downstream FIFO, so zero credits stalls the port outright
            // (conservation guarantees credits <= free slots; the push
            // below can never overflow).
            if (!credits_->available(target)) {
              if (measuring) ++res.credit_stall_cycles;
              if constexpr (kObs) {
                stall_cause_[x * r + slot] = static_cast<std::uint8_t>(
                    obs::StallCause::kZeroCredits);
                if (measuring) {
                  ++obs_log<kShard>(wk).credit[static_cast<std::size_t>(s)];
                }
              }
              break;
            }
          } else {
            if (queues_.full(target)) {
              if constexpr (kObs) {
                stall_cause_[x * r + slot] = static_cast<std::uint8_t>(
                    obs::StallCause::kDownstreamFull);
              }
              continue;
            }
          }
          const std::uint64_t inject_cycle = queues_.front_inject(q);
          const std::uint32_t src = queues_.front_src(q);
          const unsigned tag = queues_.front_tag(q);
          if constexpr (kCredits) {
            shard_push<kShard>(target, dest, src, inject_cycle,
                               cycle + length_, queues_.front_sl(q), tag, wk);
            credits_->consume(target);
            shard_pop<kShard>(q, wk);
            credits_->give_back(q, cycle);
          } else {
            shard_push<kShard>(target, dest, src, inject_cycle,
                               cycle + length_, 0, tag, wk);
            shard_pop<kShard>(q, wk);
          }
          queue_moved_[x * r + slot] = 1;
          link_busy_until_[link_base + x * r + port] = cycle + length_;
          arb_grant(s, x * r + port, slot, vl);
          if constexpr (kObs) {
            if (measuring) {
              obs_log<kShard>(wk).hops[static_cast<std::size_t>(s)] += length_;
            }
            if (inject_cycle >= core_.config().warmup_cycles &&
                obs_->traced(src, inject_cycle)) {
              trace_push<kShard>(wk, cycle, inject_cycle, src, dest,
                                 obs::TraceEventKind::kStageEnd,
                                 static_cast<std::uint8_t>(s), 0,
                                 advance_phase(s));
              trace_push<kShard>(wk, cycle, inject_cycle, src, dest,
                                 obs::TraceEventKind::kStageBegin,
                                 static_cast<std::uint8_t>(s + 1), 0,
                                 advance_phase(s));
            }
          }
          if constexpr (kFaulted) {
            if (port != desired && measuring &&
                inject_cycle >= core_.config().warmup_cycles) {
              ++res.packets_rerouted;
              if constexpr (kObs) {
                ++obs_log<kShard>(wk).reroute[static_cast<std::size_t>(s)];
                if (obs_->traced(src, inject_cycle)) {
                  trace_push<kShard>(wk, cycle, inject_cycle, src, dest,
                                     obs::TraceEventKind::kReroute,
                                     static_cast<std::uint8_t>(s), 0,
                                     advance_phase(s));
                }
              }
            }
          }
          break;
        }
      }
    }
    if (measuring) {
      if constexpr (kObs && kFaulted) {
        refine_masked_arc_stalls(s, cycle, static_cast<std::size_t>(x0) * r,
                                 static_cast<std::size_t>(x1) * r, mask,
                                 arc_base, bit_shift, bit_invert, digit_scale,
                                 port_of_value);
      }
      account_blocking<kShard>(s, cycle, static_cast<std::size_t>(x0) * r,
                               static_cast<std::size_t>(x1) * r, wk,
                               stall_phase(s));
    }
  }

  /// Inject at the first stage: terminal t feeds slot t % r of cell
  /// t / r. A terminal whose source declines (bursty-OFF, gate miss,
  /// closed window, no due trace record) makes no attempt at all.
  void inject(std::uint64_t cycle, bool measuring) {
    if constexpr (kMultiPath) {
      inject_multipath(cycle, measuring);
      return;
    }
    for (std::uint64_t t = 0; t < core_.terminals(); ++t) {
      if (!core_.attempt(cycle, static_cast<std::uint32_t>(t))) continue;
      if (source_busy_until_[t] > cycle) continue;  // still serializing
      if (measuring) ++core_.result.offered;
      const std::size_t q = queue_index(0, t);
      if constexpr (kCredits) {
        // The terminal's injection link runs the same credit handshake
        // as the internal links: no credit, no attempt consumed.
        if (!credits_->available(q)) {
          if (measuring) {
            ++core_.result.credit_stall_cycles;
            if constexpr (kObs) ++obs_->log(0).credit[0];
          }
          continue;
        }
      } else {
        if (queues_.full(q)) continue;  // dropped at source
      }
      const workload::Injection packet =
          core_.draw(cycle, static_cast<std::uint32_t>(t));
      const std::uint32_t dest = packet.dest;
      const auto src = static_cast<std::uint32_t>(t);
      if constexpr (kCredits) {
        queues_.push(q, dest, src, cycle, cycle + length_,
                     static_cast<unsigned>(t % service_levels_), packet.tag);
        credits_->consume(q);
      } else {
        queues_.push(q, dest, src, cycle, cycle + length_, 0, packet.tag);
      }
      core_.commit(cycle, static_cast<std::uint32_t>(t), packet);
      source_busy_until_[t] = cycle + length_;
      if (measuring) {
        ++core_.result.injected;
        core_.result.flits_injected += length_;
        if constexpr (kObs) {
          // Injection is always a serial phase: log 0 is the sink in
          // both drivers, keeping trace bytes thread-count invariant.
          if (obs_->traced(src, cycle)) {
            trace_push<false>(nullptr, cycle, cycle, src, dest,
                              obs::TraceEventKind::kPacketBegin, 0, 0,
                              inject_phase());
            trace_push<false>(nullptr, cycle, cycle, src, dest,
                              obs::TraceEventKind::kStageBegin, 0, 0,
                              inject_phase());
          }
        }
      }
    }
  }

  /// Sample link business and buffer occupancy (measured cycles only).
  /// Credit runs also audit the conservation invariant every sampled
  /// cycle: per FIFO, credits held + credit messages in flight + packets
  /// buffered must equal the capacity exactly, and credits may never
  /// exceed it. Violations are counted, not thrown — a sweep reports
  /// them as data.
  void sample(std::uint64_t cycle) { sample_impl<false>(cycle, 0, 1, nullptr); }

  /// The sample kernel: worker \p w of \p n audits its share of the
  /// link-pacing array and (credit runs) the per-link conservation
  /// invariant; the pool-occupancy series — which needs the pool-wide
  /// total — is added by the serial instantiation here and by worker 0's
  /// sample reduce in sharded runs.
  template <bool kShard>
  void sample_impl(std::uint64_t cycle, std::size_t w, std::size_t n,
                   [[maybe_unused]] ShardWorker* wk) {
    [[maybe_unused]] SimResult& res = shard_result<kShard>(wk);
    const auto [l0, l1] = shard_range(link_busy_until_.size(), w, n);
    std::uint64_t busy = 0;
    for (std::size_t i = l0; i < l1; ++i) {
      if (link_busy_until_[i] > cycle) ++busy;
    }
    if constexpr (kShard) {
      wk->link_counter += busy;
    } else {
      busy_link_cycles_ += busy;
      core_.result.lane_occupancy.add(
          static_cast<double>(queues_.total_packets()) / total_packet_slots_);
    }
    if constexpr (kCredits) {
      const std::size_t links =
          static_cast<std::size_t>(core_.stages()) * core_.ports();
      const auto [q0, q1] = shard_range(links, w, n);
      const std::uint64_t capacity = credits_->capacity();
      for (std::size_t q = q0; q < q1; ++q) {
        const std::uint64_t held = credits_->credits(q);
        if (held > capacity ||
            held + credits_->in_flight(q) + queues_.count(q) != capacity) {
          ++res.credit_violations;
        }
      }
      if constexpr (!kShard) {
        // Store-and-forward has one physical buffer per link, so the
        // per-VL view collapses to a single lane-0 occupancy series.
        if (core_.result.vl_occupancy.empty()) {
          core_.result.vl_occupancy.resize(1);
        }
        core_.result.vl_occupancy[0].add(
            static_cast<double>(queues_.total_packets()) /
            total_packet_slots_);
      }
    }
    if constexpr (kObs && !kShard) {
      if (obs_->want_probe(cycle)) commit_probe_window(cycle);
    }
  }

  [[nodiscard]] std::uint64_t buffered_flits() const {
    // Sharded kernels bypass the pool-wide counter (it would be a data
    // race); shard_finish folds the per-worker deltas back in here.
    // Serial runs keep the delta at 0.
    return static_cast<std::uint64_t>(
               static_cast<std::int64_t>(queues_.total_packets()) +
               shard_pool_delta_) *
           length_;
  }
  [[nodiscard]] std::uint64_t link_counter() const {
    return busy_link_cycles_;
  }

  // --- The sharded-driver interface (run_switched_sharded) -------------
  // Every kernel below runs the SAME code as its serial phase, templated
  // on kShard = true: disjoint contiguous ranges, per-worker partial
  // counters, and deferred order-sensitive statistics (see shard.hpp for
  // the phase/barrier schedule and the single-writer argument).

  static constexpr bool kShardNeedsDeliver = kCredits;

  /// Credit-harvest phase: the ledger's per-link deliver, partitioned by
  /// flat link ranges. Must complete before any give_back of the same
  /// cycle (the harvested ring slot is the one give_back refills), hence
  /// its own barrier in the driver.
  void shard_deliver(std::uint64_t cycle, std::size_t w, std::size_t n) {
    if constexpr (kCredits) {
      const auto [lo, hi] = shard_range(
          static_cast<std::size_t>(core_.stages()) * core_.ports(), w, n);
      credits_->deliver_range(cycle, lo, hi);
    }
  }

  void shard_eject(std::uint64_t cycle, bool measuring, std::size_t w,
                   std::size_t n, ShardWorker& wk) {
    if constexpr (kObs) wk.obs_log = &obs_->log(w);
    if constexpr (kMultiPath) {
      // Multipath ejection arbitrates per LOGICAL terminal across
      // planes, so the partition is by logical cells; the physical
      // queues a logical range touches are disjoint per-plane runs.
      const auto [lx0, lx1] = shard_range(lcells_, w, n);
      eject_multipath_impl<true>(cycle, measuring,
                                 static_cast<std::uint32_t>(lx0),
                                 static_cast<std::uint32_t>(lx1), &wk);
    } else {
      const auto [x0, x1] = shard_range(core_.cells(), w, n);
      eject_impl<true>(cycle, measuring, static_cast<std::uint32_t>(x0),
                       static_cast<std::uint32_t>(x1), &wk);
    }
  }

  void shard_advance(int s, std::uint64_t cycle, bool measuring,
                     std::size_t w, std::size_t n, ShardWorker& wk) {
    const auto [x0, x1] = shard_range(core_.cells(), w, n);
    if constexpr (kMultiPath) {
      advance_stage_multipath_impl<true>(s, cycle, measuring,
                                         static_cast<std::uint32_t>(x0),
                                         static_cast<std::uint32_t>(x1), &wk);
    } else {
      advance_stage_impl<true>(s, cycle, measuring,
                               static_cast<std::uint32_t>(x0),
                               static_cast<std::uint32_t>(x1), &wk);
    }
  }

  /// Worker 0's exclusive phase: replay the cycle's deferred ejection
  /// statistics and workload deliveries in ascending-worker
  /// (= ascending-cell = serial) order, then run the cycle tail exactly
  /// as the serial driver does — the workload tick and injection consume
  /// the source's RNG streams in terminal order, so they stay serial by
  /// construction and byte-deterministic at any thread count.
  void shard_serial(std::uint64_t cycle, bool measuring,
                    std::vector<ShardWorker>& workers) {
    for (ShardWorker& wk : workers) {
      for (const SafEjectEvent& event : wk.saf_events) {
        core_.record_packet_delivered(event.latency);
        if constexpr (kCredits) {
          core_.result.sl_latency[event.sl].add(event.latency);
        }
        if constexpr (kObs) {
          if (obs_->flows_on()) {
            obs_->record_flow(event.src, event.dst, event.sl, event.latency);
          }
        }
      }
      wk.saf_events.clear();
      for (const workload::Delivery& delivery : wk.wl_events) {
        core_.workload_delivered(delivery);
      }
      wk.wl_events.clear();
    }
    core_.workload_tick(cycle, measuring);
    inject(cycle, measuring);
  }

  void shard_sample(std::uint64_t cycle, std::size_t w, std::size_t n,
                    ShardWorker& wk) {
    sample_impl<true>(cycle, w, n, &wk);
  }

  /// Worker 0 adds the pool-occupancy samples (they need the pool-wide
  /// total, which sharded runs carry as counter + per-worker deltas).
  void shard_sample_reduce(std::uint64_t cycle,
                           const std::vector<ShardWorker>& workers) {
    std::int64_t delta = 0;
    for (const ShardWorker& wk : workers) delta += wk.pool_delta;
    const double packets = static_cast<double>(
        static_cast<std::int64_t>(queues_.total_packets()) + delta);
    core_.result.lane_occupancy.add(packets / total_packet_slots_);
    if constexpr (kCredits) {
      if (core_.result.vl_occupancy.empty()) {
        core_.result.vl_occupancy.resize(1);
      }
      core_.result.vl_occupancy[0].add(packets / total_packet_slots_);
    }
    if constexpr (kObs) {
      if (obs_->want_probe(cycle)) commit_probe_window(cycle);
    }
  }

  /// Sum the order-independent partials into the core result.
  void shard_finish(const std::vector<ShardWorker>& workers) {
    for (const ShardWorker& wk : workers) {
      const SimResult& partial = wk.partial;
      core_.result.flits_delivered += partial.flits_delivered;
      core_.result.hol_blocking_cycles += partial.hol_blocking_cycles;
      core_.result.credit_stall_cycles += partial.credit_stall_cycles;
      core_.result.credit_violations += partial.credit_violations;
      core_.result.packets_dropped_faulted += partial.packets_dropped_faulted;
      core_.result.flits_dropped_faulted += partial.flits_dropped_faulted;
      core_.result.packets_rerouted += partial.packets_rerouted;
      core_.result.packets_misdelivered += partial.packets_misdelivered;
      core_.result.path_reroutes += partial.path_reroutes;
      core_.result.stall_lost_arbitration += partial.stall_lost_arbitration;
      core_.result.stall_downstream_full += partial.stall_downstream_full;
      core_.result.stall_no_free_lane += partial.stall_no_free_lane;
      core_.result.stall_zero_credits += partial.stall_zero_credits;
      core_.result.stall_masked_arc += partial.stall_masked_arc;
      busy_link_cycles_ += wk.link_counter;
      shard_pool_delta_ += wk.pool_delta;
    }
  }

 private:
  /// core_.result for the serial instantiations, the worker's partial
  /// for sharded kernels — so the kernel bodies read identically.
  template <bool kShard>
  [[nodiscard]] SimResult& shard_result([[maybe_unused]] ShardWorker* wk) {
    if constexpr (kShard) {
      return wk->partial;
    } else {
      return core_.result;
    }
  }

  /// Pool ops that keep the shared total (serial) or a per-worker delta
  /// (sharded) — queue state is identical either way.
  template <bool kShard>
  void shard_pop(std::size_t q, [[maybe_unused]] ShardWorker* wk) {
    if constexpr (kShard) {
      queues_.pop_unc(q);
      --wk->pool_delta;
    } else {
      queues_.pop(q);
    }
  }
  template <bool kShard>
  void shard_push(std::size_t q, std::uint32_t dest, std::uint32_t src,
                  std::uint64_t inject_cycle, std::uint64_t arrival,
                  unsigned sl, unsigned tag, [[maybe_unused]] ShardWorker* wk) {
    if constexpr (kShard) {
      queues_.push_unc(q, dest, src, inject_cycle, arrival, sl, tag);
      ++wk->pool_delta;
    } else {
      queues_.push(q, dest, src, inject_cycle, arrival, sl, tag);
    }
  }
  /// Multipath ejection: logical terminal lx * lr + j arbitrates over
  /// the planes * radix physical last-stage buffers of its logical cell
  /// (a packet may arrive on any arc of its dilation group and in any
  /// plane), per-terminal round-robin so no plane starves.
  template <bool kShard>
  void eject_multipath_impl(std::uint64_t cycle, bool measuring,
                            std::uint32_t lx0, std::uint32_t lx1,
                            [[maybe_unused]] ShardWorker* wk) {
    [[maybe_unused]] SimResult& res = shard_result<kShard>(wk);
    const int last = core_.stages() - 1;
    const unsigned r = radix_;
    const unsigned candidates = planes_ * r;
    // A logical-cell range touches one contiguous physical run per plane
    // (cells plane * lcells + [lx0, lx1)); clear and account exactly
    // those — disjoint across workers, and the full array at full range.
    for (unsigned plane = 0; plane < planes_; ++plane) {
      const std::size_t run =
          (static_cast<std::size_t>(plane) * lcells_) * r;
      std::fill(queue_moved_.begin() + run + static_cast<std::size_t>(lx0) * r,
                queue_moved_.begin() + run + static_cast<std::size_t>(lx1) * r,
                0);
      if constexpr (kObs) {
        std::fill(
            stall_cause_.begin() + run + static_cast<std::size_t>(lx0) * r,
            stall_cause_.begin() + run + static_cast<std::size_t>(lx1) * r, 0);
      }
    }
    for (std::uint32_t lx = lx0; lx < lx1; ++lx) {
      for (unsigned j = 0; j < lradix_; ++j) {
        const std::size_t term =
            static_cast<std::size_t>(lx) * lradix_ + j;
        if (eject_busy_until_[term] > cycle) continue;
        RoundRobin& arb = core_.eject_arbiter(term);
        for (unsigned probe = 0; probe < candidates; ++probe) {
          const unsigned c = arb.candidate(probe);
          const std::uint32_t cell = (c / r) * lcells_ + lx;
          const unsigned slot = c % r;
          const std::size_t port_index =
              static_cast<std::size_t>(cell) * r + slot;
          const std::size_t q = queue_index(last, port_index);
          if (queues_.empty(q)) continue;
          if (queues_.front_arrival(q) > cycle) continue;
          const std::uint32_t dest = queues_.front_dest(q);
          if (dest % lradix_ != j) continue;
          const std::uint64_t inject_cycle = queues_.front_inject(q);
          const std::uint32_t src = queues_.front_src(q);
          const unsigned tag = queues_.front_tag(q);
          shard_pop<kShard>(q, wk);
          eject_busy_until_[term] = cycle + length_;
          arb.grant(c);
          queue_moved_[port_index] = 1;
          if (core_.wants_deliveries()) {
            const workload::Delivery delivery{
                src, dest, static_cast<std::uint32_t>(term), inject_cycle,
                cycle + length_, static_cast<std::uint8_t>(tag),
                measuring && inject_cycle >= core_.config().warmup_cycles};
            if constexpr (kShard) {
              wk->wl_events.push_back(delivery);
            } else {
              core_.workload_delivered(delivery);
            }
          }
          if constexpr (kObs) {
            if (measuring) {
              obs_log<kShard>(wk).hops[static_cast<std::size_t>(last)] +=
                  length_;
            }
            if (inject_cycle >= core_.config().warmup_cycles &&
                obs_->traced(src, inject_cycle)) {
              trace_push<kShard>(wk, cycle, inject_cycle, src, dest,
                                 obs::TraceEventKind::kStageEnd,
                                 static_cast<std::uint8_t>(last), 0,
                                 kEjectPhase);
              trace_push<kShard>(wk, cycle, inject_cycle, src, dest,
                                 obs::TraceEventKind::kPacketEnd, 0, 0,
                                 kEjectPhase);
            }
          }
          if (measuring && inject_cycle >= core_.config().warmup_cycles) {
            res.flits_delivered += length_;
            const double latency =
                static_cast<double>(cycle - inject_cycle + length_);
            if constexpr (kShard) {
              wk->saf_events.push_back(SafEjectEvent{latency, 0, src, dest});
            } else {
              core_.record_packet_delivered(latency);
              if constexpr (kObs) {
                if (obs_->flows_on()) {
                  obs_->record_flow(src, dest, 0, latency);
                }
              }
            }
            if constexpr (kFaulted) {
              if ((dest / lradix_) != lx) {
                ++res.packets_misdelivered;
              }
            }
          }
          break;
        }
      }
    }
    if (measuring) {
      for (unsigned plane = 0; plane < planes_; ++plane) {
        const std::size_t run =
            (static_cast<std::size_t>(plane) * lcells_) * r;
        account_blocking<kShard>(last, cycle,
                                 run + static_cast<std::size_t>(lx0) * r,
                                 run + static_cast<std::size_t>(lx1) * r, wk,
                                 eject_stall_phase(plane));
      }
    }
  }

  /// Multipath advancement: each head packet resolves one physical
  /// out-port by selecting within the engine's equivalent-path group
  /// (select_multipath_port); the rest of the hop — arbitration, link
  /// serialization, downstream capacity — matches the unipath loop.
  template <bool kShard>
  void advance_stage_multipath_impl(int s, std::uint64_t cycle,
                                    bool measuring, std::uint32_t x0,
                                    std::uint32_t x1,
                                    [[maybe_unused]] ShardWorker* wk) {
    [[maybe_unused]] SimResult& res = shard_result<kShard>(wk);
    const unsigned r = radix_;
    const auto down = core_.wiring().down_stage(s);
    const std::size_t link_base =
        static_cast<std::size_t>(s) * core_.ports();
    // Per-stage routing constants: the free flag, the forced-group
    // schedule reads, and the looping settings row (free stages of a
    // kLooping run only).
    const bool free = free_stage_[static_cast<std::size_t>(s)] != 0;
    std::uint32_t digit_scale = 1;
    const std::uint32_t* port_of_value = nullptr;
    if (!free) {
      digit_scale = core_.engine().route_digit_scale(s);
      port_of_value = core_.engine()
                          .digit_schedule()
                          .port_of_value[static_cast<std::size_t>(s)]
                          .data();
    }
    const std::uint8_t* settings =
        (free && path_policy_ == PathPolicy::kLooping)
            ? looping_->settings[static_cast<std::size_t>(s)].data()
            : nullptr;
    [[maybe_unused]] std::size_t arc_base = 0;
    [[maybe_unused]] const fault::FaultMask* mask = nullptr;
    if constexpr (kFaulted) {
      drain_dead_switches<kShard>(s, cycle, measuring, x0, x1, wk);
      arc_base = static_cast<std::size_t>(s) * core_.ports();
      mask = &faulted_.mask();
    }
    std::fill(queue_moved_.begin() + static_cast<std::size_t>(x0) * r,
              queue_moved_.begin() + static_cast<std::size_t>(x1) * r, 0);
    if constexpr (kObs) {
      // Stall causes default to lost-arbitration; the probe loops below
      // overwrite the specific causes they detect.
      std::fill(stall_cause_.begin() + static_cast<std::size_t>(x0) * r,
                stall_cause_.begin() + static_cast<std::size_t>(x1) * r, 0);
    }
    for (std::uint32_t x = x0; x < x1; ++x) {
      for (unsigned port = 0; port < r; ++port) {
        if constexpr (kFaulted) {
          if (mask->faulted_index(arc_base + x * r + port)) {
            continue;  // dead link
          }
        }
        if (link_busy_until_[link_base + x * r + port] > cycle) {
          continue;  // still serializing the previous packet
        }
        for (unsigned probe = 0; probe < r; ++probe) {
          const unsigned slot = arb_candidate(s, x * r + port, probe);
          const std::size_t q = queue_index(s, x * r + slot);
          if (queues_.empty(q)) continue;
          if (queues_.front_arrival(q) > cycle) continue;
          const std::uint32_t dest = queues_.front_dest(q);
          unsigned base = 0;
          unsigned count = r;
          if (!free) {
            base = port_of_value[((dest / lradix_) / digit_scale) % lradix_] *
                   dilation_;
            count = dilation_;
          }
          int reroute_kind = 0;
          const int chosen = select_multipath_port(
              s, x, slot, dest, queues_.front_inject(q), base, count,
              settings, down.data(), mask, arc_base, reroute_kind);
          if (chosen != static_cast<int>(port)) continue;
          const std::uint32_t record = down[x * r + port];
          const std::size_t target = queue_index(s + 1, record);
          if (queues_.full(target)) {
            if constexpr (kObs) {
              stall_cause_[x * r + slot] = static_cast<std::uint8_t>(
                  obs::StallCause::kDownstreamFull);
            }
            continue;
          }
          const std::uint64_t inject_cycle = queues_.front_inject(q);
          const std::uint32_t src = queues_.front_src(q);
          shard_push<kShard>(target, dest, src, inject_cycle, cycle + length_,
                             0, queues_.front_tag(q), wk);
          shard_pop<kShard>(q, wk);
          queue_moved_[x * r + slot] = 1;
          link_busy_until_[link_base + x * r + port] = cycle + length_;
          arb_grant(s, x * r + port, slot, 0);
          if constexpr (kObs) {
            if (measuring) {
              obs_log<kShard>(wk).hops[static_cast<std::size_t>(s)] += length_;
            }
            if (inject_cycle >= core_.config().warmup_cycles &&
                obs_->traced(src, inject_cycle)) {
              trace_push<kShard>(wk, cycle, inject_cycle, src, dest,
                                 obs::TraceEventKind::kStageEnd,
                                 static_cast<std::uint8_t>(s), 0,
                                 advance_phase(s));
              trace_push<kShard>(wk, cycle, inject_cycle, src, dest,
                                 obs::TraceEventKind::kStageBegin,
                                 static_cast<std::uint8_t>(s + 1), 0,
                                 advance_phase(s));
            }
          }
          if constexpr (kFaulted) {
            if (measuring && inject_cycle >= core_.config().warmup_cycles) {
              if (reroute_kind == 1) ++res.path_reroutes;
              if (reroute_kind == 2) ++res.packets_rerouted;
              if constexpr (kObs) {
                if (reroute_kind != 0) {
                  ++obs_log<kShard>(wk).reroute[static_cast<std::size_t>(s)];
                  if (obs_->traced(src, inject_cycle)) {
                    trace_push<kShard>(wk, cycle, inject_cycle, src, dest,
                                       obs::TraceEventKind::kReroute,
                                       static_cast<std::uint8_t>(s), 0,
                                       advance_phase(s));
                  }
                }
              }
            }
          }
          break;
        }
      }
    }
    if (measuring) {
      if constexpr (kObs && kFaulted) {
        refine_masked_group_stalls(s, cycle, static_cast<std::size_t>(x0) * r,
                                   static_cast<std::size_t>(x1) * r, mask,
                                   arc_base, free, digit_scale,
                                   port_of_value);
      }
      account_blocking<kShard>(s, cycle, static_cast<std::size_t>(x0) * r,
                               static_cast<std::size_t>(x1) * r, wk,
                               stall_phase(s));
    }
  }

  /// Multipath injection: logical terminal t feeds physical input slot
  /// (t % lr) * dilation of its logical cell, choosing a plane by the
  /// path policy on replicated fabrics (hash of the destination, or the
  /// emptiest injection FIFO).
  void inject_multipath(std::uint64_t cycle, bool measuring) {
    const unsigned r = radix_;
    for (std::uint64_t t = 0; t < core_.terminals(); ++t) {
      if (!core_.attempt(cycle, static_cast<std::uint32_t>(t))) continue;
      if (source_busy_until_[t] > cycle) continue;  // still serializing
      if (measuring) ++core_.result.offered;
      const std::uint32_t lcell =
          static_cast<std::uint32_t>(t) / lradix_;
      const unsigned slot =
          (static_cast<unsigned>(t) % lradix_) * dilation_;
      // Drawn before the plane pick (the hashed policy keys on the
      // destination); a refused attempt discards the draw, historically.
      const workload::Injection packet =
          core_.draw(cycle, static_cast<std::uint32_t>(t));
      const std::uint32_t dest = packet.dest;
      std::size_t q = 0;
      bool accepted = false;
      if (planes_ == 1) {
        q = queue_index(0, static_cast<std::size_t>(lcell) * r + slot);
        accepted = !queues_.full(q);
      } else if (path_policy_ == PathPolicy::kAdaptive) {
        std::uint32_t best = 0;
        for (unsigned plane = 0; plane < planes_; ++plane) {
          const std::size_t candidate = queue_index(
              0, (static_cast<std::size_t>(plane) * lcells_ + lcell) * r +
                     slot);
          if (queues_.full(candidate)) continue;
          if (!accepted || queues_.count(candidate) < best) {
            best = queues_.count(candidate);
            q = candidate;
            accepted = true;
          }
        }
      } else {
        const unsigned plane = static_cast<unsigned>(
            path_mix(dest, cycle, t) % planes_);
        q = queue_index(
            0, (static_cast<std::size_t>(plane) * lcells_ + lcell) * r +
                   slot);
        accepted = !queues_.full(q);
      }
      if (!accepted) continue;  // dropped at source
      const auto src = static_cast<std::uint32_t>(t);
      queues_.push(q, dest, src, cycle, cycle + length_, 0, packet.tag);
      core_.commit(cycle, static_cast<std::uint32_t>(t), packet);
      source_busy_until_[t] = cycle + length_;
      if (measuring) {
        ++core_.result.injected;
        core_.result.flits_injected += length_;
        if constexpr (kObs) {
          if (obs_->traced(src, cycle)) {
            trace_push<false>(nullptr, cycle, cycle, src, dest,
                              obs::TraceEventKind::kPacketBegin, 0, 0,
                              inject_phase());
            trace_push<false>(nullptr, cycle, cycle, src, dest,
                              obs::TraceEventKind::kStageBegin, 0, 0,
                              inject_phase());
          }
        }
      }
    }
  }

  /// The path-selection seam: the physical out-port the head packet at
  /// (cell \p x, input slot \p slot) of stage \p s takes, chosen within
  /// the equivalent-path group [\p base, \p base + \p count) by the
  /// configured policy. Faulted: a masked choice re-selects among the
  /// surviving group members (\p reroute_kind = 1); a fully-masked group
  /// falls back to the unipath out-of-group detour (\p reroute_kind =
  /// 2); -1 means the switch is dead (no surviving out-arc at all).
  [[nodiscard]] int select_multipath_port(
      int s, std::uint32_t x, unsigned slot, std::uint32_t dest,
      std::uint64_t inject_cycle, unsigned base, unsigned count,
      const std::uint8_t* settings, const std::uint32_t* down,
      [[maybe_unused]] const fault::FaultMask* mask,
      [[maybe_unused]] std::size_t arc_base, int& reroute_kind) {
    const unsigned r = radix_;
    reroute_kind = 0;
    if (path_policy_ == PathPolicy::kAdaptive) {
      // Least-occupancy: the group member with the emptiest downstream
      // FIFO (ties to the lowest port). Masked arcs are simply not
      // candidates — adaptivity subsumes in-group re-selection.
      int chosen = -1;
      std::uint32_t best = 0;
      for (unsigned k = 0; k < count; ++k) {
        const unsigned p = base + k;
        if constexpr (kFaulted) {
          if (mask->faulted_index(arc_base + x * r + p)) continue;
        }
        const std::uint32_t occupancy =
            queues_.count(queue_index(s + 1, down[x * r + p]));
        if (chosen < 0 || occupancy < best) {
          best = occupancy;
          chosen = static_cast<int>(p);
        }
      }
      if (chosen >= 0) return chosen;
    } else {
      unsigned desired;
      if (settings != nullptr) {
        desired = settings[static_cast<std::size_t>(x) * lradix_ + slot];
      } else if (count == 1) {
        desired = base;
      } else {
        desired = base + static_cast<unsigned>(
                             path_mix(dest, inject_cycle,
                                      static_cast<std::uint64_t>(s)) %
                             count);
      }
      if constexpr (kFaulted) {
        if (mask->faulted_index(arc_base + x * r + desired)) {
          const int member = surviving_group_member(*mask, arc_base + x * r,
                                                    base, count, desired);
          if (member >= 0) {
            reroute_kind = 1;
            return member;
          }
        } else {
          return static_cast<int>(desired);
        }
      } else {
        return static_cast<int>(desired);
      }
    }
    // Whole group masked: out-of-group detour through any surviving
    // port, exactly the unipath degraded mode.
    if constexpr (kFaulted) {
      const int port = usable_port(mask, arc_base + x * r, base);
      if (port >= 0) reroute_kind = 2;
      return port;
    }
    return static_cast<int>(base);
  }

  /// The radix, folded to the literal 2 in the binary instantiations so
  /// / and % compile to the historic shift/mask code.
  [[nodiscard]] unsigned radix() const noexcept {
    if constexpr (kBinary) {
      return 2U;
    } else {
      return radix_;
    }
  }

  [[nodiscard]] std::size_t queue_index(int s, std::size_t i) const {
    return static_cast<std::size_t>(s) * core_.ports() + i;
  }

  /// The arbitration seam (kCredits only varies it): round-robin and
  /// strict priority keep the core's RoundRobin pointer state — priority
  /// filters candidates before the pointer ever moves, so uniform
  /// weights degrade to plain round-robin byte for byte — while the
  /// weighted policy swaps in the quantum WRR state below.
  [[nodiscard]] unsigned arb_candidate(int s, std::size_t out,
                                       unsigned probe) {
    if constexpr (kCredits) {
      if (credit_config_->arbitration == ArbitrationPolicy::kWeighted) {
        return weighted_.candidate(arb_index(s, out), probe);
      }
    }
    return core_.arbiter(s, out).candidate(probe);
  }

  void arb_grant(int s, std::size_t out, unsigned winner,
                 [[maybe_unused]] unsigned vl) {
    if constexpr (kCredits) {
      if (credit_config_->arbitration == ArbitrationPolicy::kWeighted) {
        weighted_.grant(arb_index(s, out), winner,
                        credit_config_->weight(vl));
        return;
      }
    }
    core_.arbiter(s, out).grant(winner);
  }

  [[nodiscard]] std::size_t arb_index(int s, std::size_t out) const {
    return static_cast<std::size_t>(s) * core_.ports() + out;
  }

  /// Weight class of the packet at the head of queue \p q (kCredits
  /// only: resolves SL -> VL -> weight through the config tables).
  [[nodiscard]] unsigned front_weight(std::size_t q) const {
    return credit_config_->weight(
        credit_config_->vl_of_sl(queues_.front_sl(q)));
  }

  /// fault::FaultedWiring::usable_port with the policy's folded radix:
  /// \p arc_row is the mask bit index of the switch's port-0 out-arc
  /// (FaultMask::arc_index layout). Returns the scheduled port while its
  /// arc survives, else the next surviving port, else -1.
  [[nodiscard]] int usable_port(const fault::FaultMask* mask,
                                std::size_t arc_row,
                                unsigned desired) const {
    if (!mask->faulted_index(arc_row + desired)) {
      return static_cast<int>(desired);
    }
    const unsigned r = radix();
    unsigned port = desired;
    for (unsigned step = 1; step < r; ++step) {
      ++port;
      if (port >= r) port -= r;
      if (!mask->faulted_index(arc_row + port)) {
        return static_cast<int>(port);
      }
    }
    return -1;
  }

  /// Discard every fully-arrived packet queued at a dead switch of stage
  /// \p s whose cell falls in [x0, x1) (all out-arcs masked: no degraded
  /// route exists). Flits still serializing in stay buffered until their
  /// arrival completes.
  template <bool kShard>
  void drain_dead_switches(int s, std::uint64_t cycle, bool measuring,
                           std::uint32_t x0, std::uint32_t x1,
                           ShardWorker* wk) {
    const unsigned r = radix();
    [[maybe_unused]] SimResult& res = shard_result<kShard>(wk);
    for (const std::uint32_t x : dead_cells_[static_cast<std::size_t>(s)]) {
      if (x < x0 || x >= x1) continue;
      for (unsigned slot = 0; slot < r; ++slot) {
        const std::size_t q = queue_index(s, x * r + slot);
        while (!queues_.empty(q) && queues_.front_arrival(q) <= cycle) {
          const std::uint64_t inject_cycle = queues_.front_inject(q);
          if constexpr (kObs) {
            if (inject_cycle >= core_.config().warmup_cycles) {
              const std::uint32_t src = queues_.front_src(q);
              if (obs_->traced(src, inject_cycle)) {
                const std::uint32_t dest = queues_.front_dest(q);
                const std::uint8_t phase = drain_phase(s);
                trace_push<kShard>(wk, cycle, inject_cycle, src, dest,
                                   obs::TraceEventKind::kDrop,
                                   static_cast<std::uint8_t>(s), 0, phase);
                trace_push<kShard>(wk, cycle, inject_cycle, src, dest,
                                   obs::TraceEventKind::kStageEnd,
                                   static_cast<std::uint8_t>(s), 0, phase);
                trace_push<kShard>(wk, cycle, inject_cycle, src, dest,
                                   obs::TraceEventKind::kPacketEnd, 0, 0,
                                   phase);
              }
            }
          }
          shard_pop<kShard>(q, wk);
          // A drained slot returns its credit like any other pop, so
          // the ledger closes exactly even across dead switches.
          if constexpr (kCredits) credits_->give_back(q, cycle);
          if (measuring && inject_cycle >= core_.config().warmup_cycles) {
            ++res.packets_dropped_faulted;
            res.flits_dropped_faulted += length_;
          }
        }
      }
    }
  }

  /// Head-of-line blocking: a fully-arrived head in [p0, p1) that did
  /// not move. The port range always matches the caller's writer
  /// partition of queue_moved_, so sharded totals equal the serial scan.
  /// kObs: the same scan charges each blocked head to its recorded
  /// StallCause, so the per-cause counters partition
  /// hol_blocking_cycles exactly — no separate bookkeeping to drift.
  template <bool kShard>
  void account_blocking(int s, std::uint64_t cycle, std::size_t p0,
                        std::size_t p1, ShardWorker* wk,
                        [[maybe_unused]] std::uint8_t phase) {
    SimResult& res = shard_result<kShard>(wk);
    for (std::size_t i = p0; i < p1; ++i) {
      const std::size_t q = queue_index(s, i);
      if (!queues_.empty(q) && queues_.front_arrival(q) <= cycle &&
          queue_moved_[i] == 0) {
        ++res.hol_blocking_cycles;
        if constexpr (kObs) {
          attribute_stall<kShard>(s, cycle, i, q, wk, phase);
        }
      }
    }
  }

  /// kObs only: one blocked head-cycle's telemetry — the per-cause
  /// SimResult counter, the per-stage probe counter, and a stall instant
  /// for traced packets.
  template <bool kShard>
  void attribute_stall(int s, std::uint64_t cycle, std::size_t i,
                       std::size_t q, ShardWorker* wk, std::uint8_t phase) {
    SimResult& res = shard_result<kShard>(wk);
    const auto cause = static_cast<obs::StallCause>(stall_cause_[i]);
    switch (cause) {
      case obs::StallCause::kLostArbitration:
        ++res.stall_lost_arbitration;
        break;
      case obs::StallCause::kDownstreamFull:
        ++res.stall_downstream_full;
        break;
      case obs::StallCause::kNoFreeLane:
        ++res.stall_no_free_lane;
        break;
      case obs::StallCause::kZeroCredits:
        ++res.stall_zero_credits;
        break;
      case obs::StallCause::kMaskedArc:
        ++res.stall_masked_arc;
        break;
    }
    ++obs_log<kShard>(wk).hol[static_cast<std::size_t>(s)];
    if (obs_->trace_on()) {
      const std::uint64_t ic = queues_.front_inject(q);
      const std::uint32_t src = queues_.front_src(q);
      if (ic >= core_.config().warmup_cycles && obs_->traced(src, ic)) {
        trace_push<kShard>(wk, cycle, ic, src, queues_.front_dest(q),
                           obs::TraceEventKind::kStall,
                           static_cast<std::uint8_t>(s),
                           static_cast<std::uint8_t>(cause), phase);
      }
    }
  }

  /// kObs && kFaulted: re-attribute still-unexplained blocked heads whose
  /// scheduled arc is fault-masked — they stall waiting on detour
  /// capacity, which is a fault symptom, not plain congestion. Runs just
  /// before account_blocking with the stage's hoisted routing registers.
  void refine_masked_arc_stalls(int s, std::uint64_t cycle, std::size_t p0,
                                std::size_t p1, const fault::FaultMask* mask,
                                std::size_t arc_base, unsigned bit_shift,
                                unsigned bit_invert, std::uint32_t digit_scale,
                                const std::uint32_t* port_of_value) {
    const unsigned r = radix();
    for (std::size_t i = p0; i < p1; ++i) {
      if (queue_moved_[i] != 0 || stall_cause_[i] != 0) continue;
      const std::size_t q = queue_index(s, i);
      if (queues_.empty(q) || queues_.front_arrival(q) > cycle) continue;
      const std::uint32_t dest = queues_.front_dest(q);
      unsigned desired;
      if constexpr (kBinary) {
        desired = (((dest >> 1) >> bit_shift) & 1U) ^ bit_invert;
      } else {
        desired = port_of_value[((dest / r) / digit_scale) % r];
      }
      if (mask->faulted_index(arc_base + (i / r) * r + desired)) {
        stall_cause_[i] =
            static_cast<std::uint8_t>(obs::StallCause::kMaskedArc);
      }
    }
  }

  /// The multipath counterpart: masked-arc only when the head's entire
  /// equivalent-path group is masked (a surviving member would have been
  /// a normal candidate — that is congestion, not a fault stall).
  void refine_masked_group_stalls(int s, std::uint64_t cycle, std::size_t p0,
                                  std::size_t p1, const fault::FaultMask* mask,
                                  std::size_t arc_base, bool free,
                                  std::uint32_t digit_scale,
                                  const std::uint32_t* port_of_value) {
    const unsigned r = radix_;
    for (std::size_t i = p0; i < p1; ++i) {
      if (queue_moved_[i] != 0 || stall_cause_[i] != 0) continue;
      const std::size_t q = queue_index(s, i);
      if (queues_.empty(q) || queues_.front_arrival(q) > cycle) continue;
      unsigned base = 0;
      unsigned count = r;
      if (!free) {
        const std::uint32_t dest = queues_.front_dest(q);
        base = port_of_value[((dest / lradix_) / digit_scale) % lradix_] *
               dilation_;
        count = dilation_;
      }
      bool all_masked = true;
      for (unsigned k = 0; k < count; ++k) {
        if (!mask->faulted_index(arc_base + (i / r) * r + base + k)) {
          all_masked = false;
          break;
        }
      }
      if (all_masked) {
        stall_cause_[i] =
            static_cast<std::uint8_t>(obs::StallCause::kMaskedArc);
      }
    }
  }

  // --- Observability helpers (kObs instantiations only) ----------------

  /// The WorkerLog the current kernel writes: the worker's own sink on
  /// sharded runs (shard_eject re-binds it every cycle), log 0 serially.
  template <bool kShard>
  [[nodiscard]] obs::WorkerLog& obs_log([[maybe_unused]] ShardWorker* wk) {
    if constexpr (kShard) {
      return *wk->obs_log;
    } else {
      return obs_->log(0);
    }
  }

  /// Append one trace event to the current worker's buffer, tagged with
  /// its (cycle, phase) sort key. Callers have already checked
  /// Observer::traced for the packet.
  template <bool kShard>
  void trace_push(ShardWorker* wk, std::uint64_t cycle,
                  std::uint64_t inject_cycle, std::uint32_t src,
                  std::uint32_t dst, obs::TraceEventKind kind,
                  std::uint8_t stage, std::uint8_t cause,
                  std::uint8_t phase) {
    obs::TraceEvent event;
    event.cycle = cycle;
    event.inject_cycle = inject_cycle;
    event.src = src;
    event.dst = dst;
    event.kind = kind;
    event.stage = stage;
    event.cause = cause;
    event.phase = phase;
    obs_log<kShard>(wk).events.push_back(event);
  }

  // Phase ordinals (TraceEvent::phase): the serial sub-phases of one
  // cycle numbered in execution order — eject moves, the per-plane eject
  // HOL scans, then per advance stage s (walked S-2 down to 0) a
  // drain / moves / HOL-scan triple, and injection last — so the sharded
  // (cycle, phase) stable sort reproduces the serial emission order.
  static constexpr std::uint8_t kEjectPhase = 0;
  [[nodiscard]] std::uint8_t eject_stall_phase(unsigned plane) const noexcept {
    return static_cast<std::uint8_t>(1 + plane);
  }
  [[nodiscard]] std::uint8_t advance_base(int s) const noexcept {
    return static_cast<std::uint8_t>(
        1 + planes_ +
        3 * static_cast<unsigned>(core_.stages() - 2 - s));
  }
  [[nodiscard]] std::uint8_t drain_phase(int s) const noexcept {
    return advance_base(s);
  }
  [[nodiscard]] std::uint8_t advance_phase(int s) const noexcept {
    return static_cast<std::uint8_t>(advance_base(s) + 1);
  }
  [[nodiscard]] std::uint8_t stall_phase(int s) const noexcept {
    return static_cast<std::uint8_t>(advance_base(s) + 2);
  }
  [[nodiscard]] std::uint8_t inject_phase() const noexcept {
    return static_cast<std::uint8_t>(
        1 + planes_ + 3 * static_cast<unsigned>(core_.stages() - 1));
  }

  /// Close a probe window (serial sample phase / worker 0's sample
  /// reduce): fill the observer's scratch with the per-(stage, cell)
  /// buffered packet counts and commit.
  void commit_probe_window(std::uint64_t cycle) {
    std::vector<std::uint32_t>& scratch = obs_->occupancy_scratch();
    const unsigned r = radix();
    const int stages = core_.stages();
    const std::uint32_t cells = core_.cells();
    for (int s = 0; s < stages; ++s) {
      for (std::uint32_t x = 0; x < cells; ++x) {
        std::uint32_t occupied = 0;
        for (unsigned slot = 0; slot < r; ++slot) {
          occupied += queues_.count(queue_index(s, x * r + slot));
        }
        scratch[static_cast<std::size_t>(s) * cells + x] = occupied;
      }
    }
    obs_->commit_probe(cycle);
  }

  FabricCore& core_;
  unsigned radix_;
  std::uint64_t length_;
  PacketRing& queues_;
  std::vector<std::uint64_t> link_busy_until_;
  std::vector<std::uint64_t> source_busy_until_;
  std::vector<std::uint64_t> eject_busy_until_;
  std::vector<std::uint8_t> queue_moved_;
  std::uint64_t busy_link_cycles_ = 0;
  std::int64_t shard_pool_delta_ = 0;  // sharded runs only
  double total_packet_slots_;
  fault::FaultedWiring faulted_;                     // kFaulted only
  std::vector<std::vector<std::uint32_t>> dead_cells_;  // kFaulted only
  const CreditConfig* credit_config_ = nullptr;      // kCredits only
  CreditLedger* credits_ = nullptr;                  // kCredits only
  WeightedRoundRobin weighted_;                      // kCredits only
  std::size_t service_levels_ = 1;                   // kCredits only
  unsigned lradix_ = 2;                              // kMultiPath only
  std::uint32_t lcells_ = 1;                         // kMultiPath only
  unsigned planes_ = 1;                              // kMultiPath only
  unsigned dilation_ = 1;                            // kMultiPath only
  PathPolicy path_policy_ = PathPolicy::kHash;       // kMultiPath only
  const multipath::LoopingSettings* looping_ = nullptr;  // kMultiPath only
  const std::uint8_t* free_stage_ = nullptr;         // kMultiPath only
  obs::Observer* obs_ = nullptr;                     // kObs only
  /// Per-(port, cycle) StallCause scratch, written by the probe loops
  /// and read by account_blocking's attribution — same writer partition
  /// as queue_moved_.
  std::vector<std::uint8_t> stall_cause_;            // kObs only
};

/// Out of line on purpose: inlining all the instantiations into
/// Engine::run lets the compiler cross-jump the twin hot loops into
/// shared blocks, costing the binary instantiation measurable time.
template <bool kFaulted, bool kBinary, bool kCredits, bool kMultiPath,
          bool kObs>
#if defined(__GNUC__)
[[gnu::noinline]]
#endif
SimResult
run_saf_impl(FabricCore& core, SimWorkspace& workspace,
             const fault::FaultMask* mask, obs::Observer* obs,
             const multipath::LoopingSettings* looping) {
  StoreAndForwardPolicy<kFaulted, kBinary, kCredits, kMultiPath, kObs>
      policy(core, workspace, mask, obs, looping);
  if constexpr (kObs) {
    // Closed-loop sources route request->reply latencies into the flow
    // recorder's service channel (null and ignored when flows are off).
    core.set_service_recorder(obs->flow_recorder());
  }
  const std::size_t threads = core.config().sim_threads;
  SimResult result = threads > 1 ? run_switched_sharded(core, policy, threads)
                                 : run_switched(core, policy);
  if constexpr (kObs) {
    result.probes = obs->take_probes();
    if (obs->flows_on()) result.flows = obs->flow_summary();
    result.trace = obs->take_trace();
  }
  return result;
}

/// The obs fork: an absent observer dispatches to the kObs=false
/// instantiation — byte for byte the pre-observability policy, the same
/// pattern the kFaulted/kCredits fast paths use.
template <bool kFaulted, bool kBinary, bool kCredits, bool kMultiPath>
SimResult run_saf(FabricCore& core, SimWorkspace& workspace,
                  const fault::FaultMask* mask, obs::Observer* obs,
                  const multipath::LoopingSettings* looping = nullptr) {
  if (obs != nullptr) {
    return run_saf_impl<kFaulted, kBinary, kCredits, kMultiPath, true>(
        core, workspace, mask, obs, looping);
  }
  return run_saf_impl<kFaulted, kBinary, kCredits, kMultiPath, false>(
      core, workspace, mask, nullptr, looping);
}

}  // namespace

SimResult Engine::run(Pattern pattern, const SimConfig& config,
                      const fault::FaultMask* mask,
                      SimWorkspace* workspace) const {
  config.validate();
  // The fast-path test: an absent or all-clear mask runs the exact
  // unfaulted policy instantiation, so fault support costs the pristine
  // hot loop nothing.
  const bool faulted = mask != nullptr && !mask->none();
  if (faulted && !mask->matches(wiring_)) {
    throw std::invalid_argument(
        "Engine::run: fault mask geometry does not match this network");
  }
  if (config.mode == SwitchingMode::kWormhole) {
    return WormholeSimulator(*this).run(pattern, config, EjectObserver(),
                                        mask, workspace);
  }
  SimWorkspace local;
  SimWorkspace& ws = workspace != nullptr ? *workspace : local;
  // The observer outlives the policy: constructed up front (so its
  // worker-log count matches the shard team the driver will clamp to)
  // and harvested into the result by run_saf_impl.
  std::optional<obs::Observer> observer;
  if (config.obs.any()) {
    config.obs.validate(terminals_);
    const std::size_t workers =
        config.sim_threads > 1
            ? std::min<std::size_t>(
                  config.sim_threads,
                  std::max<std::uint32_t>(1, wiring_.cells_per_stage()))
            : 1;
    const std::size_t ports = static_cast<std::size_t>(wiring_.radix()) *
                              wiring_.cells_per_stage();
    observer.emplace(
        config.obs, wiring_.stages(), wiring_.cells_per_stage(), ports,
        static_cast<std::uint32_t>(terminals_), config.warmup_cycles,
        config.measure_cycles, workers,
        latency_histogram_buckets(config, wiring_.stages()),
        config.credits.enabled ? config.credits.service_levels() : 1,
        static_cast<double>(ports) *
            static_cast<double>(config.queue_capacity));
  }
  obs::Observer* obs = observer.has_value() ? &*observer : nullptr;
  if (multipath()) {
    if (config.credits.enabled) {
      throw std::invalid_argument(
          "Engine::run: credit-based flow control is not supported on "
          "multipath fabrics");
    }
    // The looping rearrangement runs once up front: it configures every
    // free connection for the requested permutation, and the policy then
    // just reads the settings tables.
    std::optional<multipath::LoopingSettings> looping;
    if (config.path_policy == PathPolicy::kLooping) {
      looping = multipath::looping_configure(*fabric_, config.permutation);
    }
    const multipath::LoopingSettings* settings =
        looping.has_value() ? &*looping : nullptr;
    FabricCore core(*this, pattern, config,
                    /*arbiter_candidates=*/static_cast<unsigned>(radix()),
                    /*eject_candidates=*/static_cast<unsigned>(planes_) *
                        static_cast<unsigned>(radix()));
    return faulted ? run_saf<true, false, false, true>(core, ws, mask, obs,
                                                       settings)
                   : run_saf<false, false, false, true>(core, ws, nullptr,
                                                        obs, settings);
  }
  FabricCore core(*this, pattern, config,
                  /*arbiter_candidates=*/static_cast<unsigned>(radix()));
  const bool binary = wiring_.radix() == 2;
  const bool credits = config.credits.enabled;
  if (faulted) {
    if (credits) {
      return binary ? run_saf<true, true, true, false>(core, ws, mask, obs)
                    : run_saf<true, false, true, false>(core, ws, mask, obs);
    }
    return binary ? run_saf<true, true, false, false>(core, ws, mask, obs)
                  : run_saf<true, false, false, false>(core, ws, mask, obs);
  }
  if (credits) {
    return binary ? run_saf<false, true, true, false>(core, ws, nullptr, obs)
                  : run_saf<false, false, true, false>(core, ws, nullptr,
                                                       obs);
  }
  return binary ? run_saf<false, true, false, false>(core, ws, nullptr, obs)
                : run_saf<false, false, false, false>(core, ws, nullptr, obs);
}

}  // namespace mineq::sim
