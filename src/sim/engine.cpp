#include "sim/engine.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "sim/lanes.hpp"
#include "sim/wormhole.hpp"
#include "util/bitops.hpp"

namespace mineq::sim {

std::string switching_mode_name(SwitchingMode mode) {
  switch (mode) {
    case SwitchingMode::kStoreAndForward:
      return "saf";
    case SwitchingMode::kWormhole:
      return "wormhole";
  }
  throw std::invalid_argument("switching_mode_name: unknown mode");
}

SwitchingMode parse_switching_mode(std::string_view name) {
  if (name == "saf" || name == "store-and-forward") {
    return SwitchingMode::kStoreAndForward;
  }
  if (name == "wormhole") return SwitchingMode::kWormhole;
  throw std::invalid_argument("parse_switching_mode: unknown mode \"" +
                              std::string(name) + '"');
}

SwitchWiring SwitchWiring::precompute(const min::MIDigraph& network) {
  // Assign each incoming arc of every cell to an input slot (0 or 1), in
  // deterministic (source cell, port) order.
  const std::uint32_t cells = network.cells_per_stage();
  SwitchWiring wiring;
  wiring.slot_of.resize(static_cast<std::size_t>(network.stages() - 1));
  for (int s = 0; s + 1 < network.stages(); ++s) {
    auto& stage_slots = wiring.slot_of[static_cast<std::size_t>(s)];
    stage_slots.assign(cells, {0, 0});
    std::vector<std::uint8_t> filled(cells, 0);
    const min::Connection& conn = network.connection(s);
    for (std::uint32_t x = 0; x < cells; ++x) {
      for (unsigned p = 0; p < 2; ++p) {
        const std::uint32_t child =
            p == 0 ? conn.f_table()[x] : conn.g_table()[x];
        stage_slots[x][p] = filled[child]++;
      }
    }
    for (std::uint32_t y = 0; y < cells; ++y) {
      if (filled[y] != 2) {
        throw std::logic_error("SwitchWiring: slot assignment inconsistency");
      }
    }
  }
  return wiring;
}

Engine::Engine(min::MIDigraph network, min::BitSchedule schedule)
    : network_(std::move(network)), schedule_(std::move(schedule)) {
  if (!network_.is_valid()) {
    throw std::invalid_argument("Engine: network has invalid degrees");
  }
  if (!min::verify_bit_schedule(network_, schedule_)) {
    throw std::invalid_argument("Engine: schedule does not route network");
  }
  wiring_ = SwitchWiring::precompute(network_);
}

namespace {

min::BitSchedule derive_schedule(const min::MIDigraph& network) {
  auto schedule = min::find_bit_schedule(network);
  if (!schedule.has_value()) {
    throw std::invalid_argument(
        "Engine: network has no destination-bit schedule");
  }
  return *schedule;
}

}  // namespace

Engine::Engine(min::MIDigraph network)
    : Engine(network, derive_schedule(network)) {}

unsigned Engine::route_port(int stage, std::uint32_t dest_terminal) const {
  if (stage < 0 || stage >= network_.stages()) {
    throw std::invalid_argument("Engine::route_port: stage out of range");
  }
  if (stage + 1 == network_.stages()) return dest_terminal & 1U;
  const std::uint32_t dest_cell = dest_terminal >> 1;
  return util::get_bit(dest_cell, schedule_.bit[static_cast<std::size_t>(
                                      stage)]) ^
         schedule_.invert[static_cast<std::size_t>(stage)];
}

SimResult Engine::run(Pattern pattern, const SimConfig& config) const {
  if (config.injection_rate < 0.0 || config.injection_rate > 1.0) {
    throw std::invalid_argument("Engine::run: injection rate outside [0,1]");
  }
  if (config.packet_length == 0) {
    throw std::invalid_argument("Engine::run: packet_length must be positive");
  }
  if (config.mode == SwitchingMode::kWormhole) {
    return WormholeSimulator(*this).run(pattern, config);
  }
  if (config.queue_capacity == 0) {
    throw std::invalid_argument("Engine::run: queue_capacity must be positive");
  }
  return run_store_and_forward(pattern, config);
}

SimResult Engine::run_store_and_forward(Pattern pattern,
                                        const SimConfig& config) const {
  const int n = network_.stages();
  const std::uint32_t cells = network_.cells_per_stage();
  const std::uint64_t terminals = std::uint64_t{2} * cells;
  const std::uint64_t length = config.packet_length;

  util::SplitMix64 rng(config.seed);
  TrafficSource source(pattern, n, rng.split(0));
  util::SplitMix64 inject_rng = rng.split(1);
  // Injection gate: inject with probability rate (16-bit fixed point).
  const auto rate_num =
      static_cast<std::uint64_t>(config.injection_rate * 65536.0);

  // queues[s][2*cell + slot]: input FIFOs of cell at stage s.
  std::vector<std::vector<std::deque<Packet>>> queues(
      static_cast<std::size_t>(n));
  for (auto& stage : queues) {
    stage.assign(std::size_t{2} * cells, {});
  }
  // Round-robin pointers per (stage, cell, output port).
  std::vector<std::vector<RoundRobin>> rr(
      static_cast<std::size_t>(n),
      std::vector<RoundRobin>(std::size_t{2} * cells, RoundRobin(2)));
  // A packet serializes over a link for packet_length cycles: per-link,
  // per-terminal and per-ejection-port busy horizons (always the next
  // cycle when packet_length == 1, reproducing the one-packet-per-link
  // model exactly).
  std::vector<std::vector<std::uint64_t>> link_busy_until(
      static_cast<std::size_t>(n - 1),
      std::vector<std::uint64_t>(std::size_t{2} * cells, 0));
  std::vector<std::uint64_t> source_busy_until(terminals, 0);
  // Indexed by (cell, terminal port d&1), not by input slot.
  std::vector<std::uint64_t> eject_busy_until(std::size_t{2} * cells, 0);
  // Per-stage scratch for head-of-line accounting.
  std::vector<std::uint8_t> queue_moved(std::size_t{2} * cells, 0);

  SimResult result;
  std::uint64_t busy_link_cycles = 0;
  const double total_packet_slots =
      static_cast<double>(n) * static_cast<double>(terminals) *
      static_cast<double>(config.queue_capacity);
  const std::uint64_t total_cycles =
      config.warmup_cycles + config.measure_cycles;

  for (std::uint64_t cycle = 0; cycle < total_cycles; ++cycle) {
    const bool measuring = cycle >= config.warmup_cycles;

    // 1. Eject at the last stage: like the wormhole path, each terminal
    // link (cell x, port d&1) carries one packet per packet_length
    // cycles, round-robin between the two input slots.
    std::fill(queue_moved.begin(), queue_moved.end(), 0);
    for (std::uint32_t x = 0; x < cells; ++x) {
      for (unsigned port = 0; port < 2; ++port) {
        if (eject_busy_until[2 * x + port] > cycle) continue;
        RoundRobin& arb = rr[static_cast<std::size_t>(n - 1)][2 * x + port];
        for (unsigned probe = 0; probe < 2; ++probe) {
          const unsigned slot = arb.candidate(probe);
          auto& q = queues[static_cast<std::size_t>(n - 1)][2 * x + slot];
          if (q.empty()) continue;
          const Packet pkt = q.front();
          if (pkt.arrival_complete > cycle) continue;
          if ((pkt.dest_terminal & 1U) != port) continue;
          q.pop_front();
          eject_busy_until[2 * x + port] = cycle + length;
          arb.grant(slot);
          queue_moved[2 * x + slot] = 1;
          if (measuring && pkt.inject_cycle >= config.warmup_cycles) {
            ++result.delivered;
            result.flits_delivered += length;
            const auto cycles_in_flight =
                static_cast<double>(cycle - pkt.inject_cycle + length);
            result.latency.add(cycles_in_flight);
            result.latency_histogram.add(cycles_in_flight);
          }
          break;
        }
      }
    }
    if (measuring) {
      // Last-stage head-of-line blocking, symmetric with the wormhole
      // path's ejection accounting.
      for (std::size_t i = 0; i < std::size_t{2} * cells; ++i) {
        const auto& q = queues[static_cast<std::size_t>(n - 1)][i];
        if (!q.empty() && q.front().arrival_complete <= cycle &&
            queue_moved[i] == 0) {
          ++result.hol_blocking_cycles;
        }
      }
    }

    // 2. Switch stages from last-1 down to 0 so a packet moves at most one
    // hop per cycle.
    for (int s = n - 2; s >= 0; --s) {
      const min::Connection& conn = network_.connection(s);
      std::fill(queue_moved.begin(), queue_moved.end(), 0);
      for (std::uint32_t x = 0; x < cells; ++x) {
        for (unsigned port = 0; port < 2; ++port) {
          if (link_busy_until[static_cast<std::size_t>(s)][2 * x + port] >
              cycle) {
            continue;  // still serializing the previous packet
          }
          // Round-robin between the two input slots for this output port.
          RoundRobin& arb = rr[static_cast<std::size_t>(s)][2 * x + port];
          for (unsigned probe = 0; probe < 2; ++probe) {
            const unsigned slot = arb.candidate(probe);
            auto& q = queues[static_cast<std::size_t>(s)][2 * x + slot];
            if (q.empty()) continue;
            const Packet& pkt = q.front();
            if (pkt.arrival_complete > cycle) continue;
            if (route_port(s, pkt.dest_terminal) != port) continue;
            const std::uint32_t child =
                port == 0 ? conn.f_table()[x] : conn.g_table()[x];
            const unsigned child_slot =
                wiring_.slot_of[static_cast<std::size_t>(s)][x][port];
            auto& target =
                queues[static_cast<std::size_t>(s + 1)]
                      [2 * child + child_slot];
            if (target.size() >= config.queue_capacity) continue;
            Packet moved = pkt;
            moved.arrival_complete = cycle + length;
            target.push_back(moved);
            q.pop_front();
            queue_moved[2 * x + slot] = 1;
            link_busy_until[static_cast<std::size_t>(s)][2 * x + port] =
                cycle + length;
            arb.grant(slot);
            break;
          }
        }
      }
      if (measuring) {
        // Head-of-line blocking: a fully-arrived head that did not move.
        for (std::size_t i = 0; i < std::size_t{2} * cells; ++i) {
          const auto& q = queues[static_cast<std::size_t>(s)][i];
          if (!q.empty() && q.front().arrival_complete <= cycle &&
              queue_moved[i] == 0) {
            ++result.hol_blocking_cycles;
          }
        }
      }
    }

    // 3. Inject at the first stage: terminal t feeds slot t&1 of cell t>>1.
    for (std::uint64_t t = 0; t < terminals; ++t) {
      if ((inject_rng.next() & 0xFFFF) >= rate_num) continue;
      if (source_busy_until[t] > cycle) continue;  // still serializing
      if (measuring) ++result.offered;
      auto& q = queues[0][t];
      if (q.size() >= config.queue_capacity) continue;  // dropped at source
      Packet pkt;
      pkt.dest_terminal =
          source.destination(static_cast<std::uint32_t>(t));
      pkt.inject_cycle = cycle;
      pkt.arrival_complete = cycle + length;
      q.push_back(pkt);
      source_busy_until[t] = cycle + length;
      if (measuring) {
        ++result.injected;
        result.flits_injected += length;
      }
    }

    // 4. Sample link and buffer occupancy.
    if (measuring) {
      for (const auto& stage_links : link_busy_until) {
        for (const std::uint64_t busy_until : stage_links) {
          if (busy_until > cycle) ++busy_link_cycles;
        }
      }
      std::size_t queued = 0;
      for (const auto& stage : queues) {
        for (const auto& q : stage) queued += q.size();
      }
      result.lane_occupancy.add(static_cast<double>(queued) /
                                total_packet_slots);
    }
  }

  for (const auto& stage : queues) {
    for (const auto& q : stage) {
      result.flits_in_flight += q.size() * length;
    }
  }
  if (config.measure_cycles > 0) {
    result.throughput =
        static_cast<double>(result.delivered) /
        (static_cast<double>(config.measure_cycles) *
         static_cast<double>(terminals));
    result.link_utilization =
        static_cast<double>(busy_link_cycles) /
        (static_cast<double>(n - 1) * static_cast<double>(terminals) *
         static_cast<double>(config.measure_cycles));
  }
  result.acceptance =
      result.offered == 0
          ? 1.0
          : static_cast<double>(result.injected) /
                static_cast<double>(result.offered);
  return result;
}

}  // namespace mineq::sim
