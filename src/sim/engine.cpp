#include "sim/engine.hpp"

#include <stdexcept>

#include "util/bitops.hpp"

namespace mineq::sim {

Engine::Engine(min::MIDigraph network, min::BitSchedule schedule)
    : network_(std::move(network)), schedule_(std::move(schedule)) {
  if (!network_.is_valid()) {
    throw std::invalid_argument("Engine: network has invalid degrees");
  }
  if (!min::verify_bit_schedule(network_, schedule_)) {
    throw std::invalid_argument("Engine: schedule does not route network");
  }
  // Assign each incoming arc of every cell to an input slot (0 or 1), in
  // deterministic (source cell, port) order.
  const std::uint32_t cells = network_.cells_per_stage();
  slot_of_.resize(static_cast<std::size_t>(network_.stages() - 1));
  for (int s = 0; s + 1 < network_.stages(); ++s) {
    auto& stage_slots = slot_of_[static_cast<std::size_t>(s)];
    stage_slots.assign(cells, {0, 0});
    std::vector<std::uint8_t> filled(cells, 0);
    const min::Connection& conn = network_.connection(s);
    for (std::uint32_t x = 0; x < cells; ++x) {
      for (unsigned p = 0; p < 2; ++p) {
        const std::uint32_t child =
            p == 0 ? conn.f_table()[x] : conn.g_table()[x];
        stage_slots[x][p] = filled[child]++;
      }
    }
    for (std::uint32_t y = 0; y < cells; ++y) {
      if (filled[y] != 2) {
        throw std::logic_error("Engine: slot assignment inconsistency");
      }
    }
  }
}

namespace {

min::BitSchedule derive_schedule(const min::MIDigraph& network) {
  auto schedule = min::find_bit_schedule(network);
  if (!schedule.has_value()) {
    throw std::invalid_argument(
        "Engine: network has no destination-bit schedule");
  }
  return *schedule;
}

}  // namespace

Engine::Engine(min::MIDigraph network)
    : Engine(network, derive_schedule(network)) {}

SimResult Engine::run(Pattern pattern, const SimConfig& config) const {
  if (config.injection_rate < 0.0 || config.injection_rate > 1.0) {
    throw std::invalid_argument("Engine::run: injection rate outside [0,1]");
  }
  const int n = network_.stages();
  const std::uint32_t cells = network_.cells_per_stage();
  const std::uint64_t terminals = std::uint64_t{2} * cells;

  util::SplitMix64 rng(config.seed);
  TrafficSource source(pattern, n, rng.split(0));
  util::SplitMix64 inject_rng = rng.split(1);
  // Injection gate: inject with probability rate (16-bit fixed point).
  const auto rate_num =
      static_cast<std::uint64_t>(config.injection_rate * 65536.0);

  // queues[s][2*cell + slot]: input FIFOs of cell at stage s.
  std::vector<std::vector<std::deque<Packet>>> queues(
      static_cast<std::size_t>(n));
  for (auto& stage : queues) {
    stage.assign(std::size_t{2} * cells, {});
  }
  // Round-robin pointers per (stage, cell, output port).
  std::vector<std::vector<std::uint8_t>> rr(
      static_cast<std::size_t>(n),
      std::vector<std::uint8_t>(std::size_t{2} * cells, 0));

  SimResult result;
  const std::uint64_t total_cycles =
      config.warmup_cycles + config.measure_cycles;

  for (std::uint64_t cycle = 0; cycle < total_cycles; ++cycle) {
    const bool measuring = cycle >= config.warmup_cycles;

    // 1. Eject at the last stage: every queued head leaves (output links
    // to the terminals are never blocked).
    for (std::uint32_t x = 0; x < cells; ++x) {
      for (unsigned slot = 0; slot < 2; ++slot) {
        auto& q = queues[static_cast<std::size_t>(n - 1)][2 * x + slot];
        if (q.empty()) continue;
        const Packet pkt = q.front();
        q.pop_front();
        if (measuring && pkt.inject_cycle >= config.warmup_cycles) {
          ++result.delivered;
          const auto cycles_in_flight =
              static_cast<double>(cycle - pkt.inject_cycle + 1);
          result.latency.add(cycles_in_flight);
          result.latency_histogram.add(cycles_in_flight);
        }
      }
    }

    // 2. Switch stages from last-1 down to 0 so a packet moves at most one
    // hop per cycle.
    for (int s = n - 2; s >= 0; --s) {
      const min::Connection& conn = network_.connection(s);
      const int sched_bit = schedule_.bit[static_cast<std::size_t>(s)];
      const unsigned sched_inv =
          schedule_.invert[static_cast<std::size_t>(s)];
      for (std::uint32_t x = 0; x < cells; ++x) {
        for (unsigned port = 0; port < 2; ++port) {
          // Round-robin between the two input slots for this output port.
          auto& start = rr[static_cast<std::size_t>(s)][2 * x + port];
          bool moved = false;
          for (unsigned probe = 0; probe < 2 && !moved; ++probe) {
            const unsigned slot = (start + probe) & 1U;
            auto& q = queues[static_cast<std::size_t>(s)][2 * x + slot];
            if (q.empty()) continue;
            const Packet& pkt = q.front();
            const std::uint32_t dest_cell = pkt.dest_terminal >> 1;
            const unsigned want =
                util::get_bit(dest_cell, sched_bit) ^ sched_inv;
            if (want != port) continue;
            const std::uint32_t child =
                port == 0 ? conn.f_table()[x] : conn.g_table()[x];
            const unsigned child_slot =
                slot_of_[static_cast<std::size_t>(s)][x][port];
            auto& target =
                queues[static_cast<std::size_t>(s + 1)]
                      [2 * child + child_slot];
            if (target.size() >= config.queue_capacity) continue;
            target.push_back(pkt);
            q.pop_front();
            start = static_cast<std::uint8_t>((slot + 1) & 1U);
            moved = true;
          }
        }
      }
    }

    // 3. Inject at the first stage: terminal t feeds slot t&1 of cell t>>1.
    for (std::uint64_t t = 0; t < terminals; ++t) {
      if ((inject_rng.next() & 0xFFFF) >= rate_num) continue;
      if (measuring) ++result.offered;
      auto& q = queues[0][t];
      if (q.size() >= config.queue_capacity) continue;  // dropped at source
      Packet pkt;
      pkt.dest_terminal =
          source.destination(static_cast<std::uint32_t>(t));
      pkt.inject_cycle = cycle;
      q.push_back(pkt);
      if (measuring) ++result.injected;
    }
  }

  result.throughput =
      static_cast<double>(result.delivered) /
      (static_cast<double>(config.measure_cycles) *
       static_cast<double>(terminals));
  result.acceptance =
      result.offered == 0
          ? 1.0
          : static_cast<double>(result.injected) /
                static_cast<double>(result.offered);
  return result;
}

}  // namespace mineq::sim
