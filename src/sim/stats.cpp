#include "sim/stats.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace mineq::sim {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto total = static_cast<double>(count_ + other.count_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
}

std::string RunningStats::str() const {
  std::ostringstream out;
  out << "n=" << count_ << " mean=" << mean_ << " sd=" << stddev()
      << " min=" << min_ << " max=" << max_;
  return out.str();
}

Histogram::Histogram(double bucket_width, std::size_t buckets)
    : bucket_width_(bucket_width), counts_(buckets, 0) {
  if (bucket_width <= 0.0 || buckets == 0) {
    throw std::invalid_argument("Histogram: bad shape");
  }
}

void Histogram::add(double x) {
  ++total_;
  if (x < 0.0) {
    throw std::invalid_argument("Histogram::add: negative value");
  }
  const auto bucket = static_cast<std::size_t>(x / bucket_width_);
  if (bucket >= counts_.size()) {
    ++overflow_;
  } else {
    ++counts_[bucket];
  }
}

void Histogram::merge(const Histogram& other) {
  if (other.bucket_width_ != bucket_width_ ||
      other.counts_.size() != counts_.size()) {
    throw std::invalid_argument("Histogram::merge: shape mismatch");
  }
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    counts_[b] += other.counts_[b];
  }
  overflow_ += other.overflow_;
  total_ += other.total_;
}

double Histogram::quantile(double q) const {
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("Histogram::quantile: q outside [0,1]");
  }
  if (total_ == 0) return 0.0;
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    cumulative += static_cast<double>(counts_[b]);
    if (cumulative >= target) {
      return bucket_width_ * static_cast<double>(b + 1);
    }
  }
  return bucket_width_ * static_cast<double>(counts_.size() + 1);
}

std::string Histogram::str() const {
  std::ostringstream out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    out << "[" << bucket_width_ * static_cast<double>(b) << ","
        << bucket_width_ * static_cast<double>(b + 1) << ") " << counts_[b]
        << '\n';
  }
  if (overflow_ != 0) out << "overflow " << overflow_ << '\n';
  return out.str();
}

}  // namespace mineq::sim
