/// \file perm_routing.hpp
/// \brief Circuit-switched permutation admissibility on Banyan networks.
///
/// In a Banyan network each (input, output) pair has a unique path, so a
/// terminal permutation pi is realizable in one pass ("admissible") iff
/// the N routed paths are pairwise link-disjoint. Classic facts exercised
/// by the tests and benches:
///   - switch settings and admissible permutations are in bijection, so a
///     Banyan network with S switches admits exactly 2^S of the N!
///     permutations;
///   - the six classical networks, being isomorphic, admit equally many
///     permutations — but *which* permutations differ per network (e.g.
///     bit reversal passes Omega for some sizes and blocks others).

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "min/mi_digraph.hpp"
#include "perm/permutation.hpp"
#include "util/rng.hpp"

namespace mineq::sim {

/// Is \p pi (a permutation of the 2^n terminals) routable with
/// link-disjoint paths? General, via unique-path extraction:
/// O(N^2 * stages / 4) overall.
[[nodiscard]] bool is_admissible(const min::MIDigraph& g,
                                 const perm::Permutation& pi);

/// Lawrie-style window criterion specialized to this library's Omega
/// MI-digraph (shuffle-wired stages, destination-tag routing MSB-first):
/// pi is admissible iff for every stage k = 1..n-1 the link words
///     v_k(t) = ((t>>1) << k | (pi(t)>>1) >> (n-1-k)) mod 2^n
/// are pairwise distinct. O(N * stages) — an ablation against the
/// general test; proven equal to is_admissible(omega, pi) exhaustively at
/// n = 3 and on 20k random permutations at n = 4 (see perm_routing_test).
[[nodiscard]] bool omega_window_admissible(const perm::Permutation& pi,
                                           int stages);

/// Count admissible permutations by exhaustive enumeration of all N!
/// candidates. Intended for stages <= 3 (N <= 8).
[[nodiscard]] std::uint64_t count_admissible_exhaustive(
    const min::MIDigraph& g);

/// The theoretical admissible count for a Banyan network:
/// 2^(switch count) = 2^(stages * 2^(stages-1)).
[[nodiscard]] std::uint64_t admissible_count_theoretical(
    const min::MIDigraph& g);

/// Monte-Carlo estimate of the admissible fraction among uniform random
/// permutations.
[[nodiscard]] double admissible_fraction_estimate(const min::MIDigraph& g,
                                                  std::size_t samples,
                                                  util::SplitMix64& rng);

/// One bit per switch: settings[s][x] = 0 routes input slot i to output
/// port i ("straight"), 1 crosses. Stage count rows, cells columns.
using SwitchSettings = std::vector<std::vector<std::uint8_t>>;

/// The terminal permutation realized by fixed switch settings.
/// (For Banyan networks this map is injective — tested.)
[[nodiscard]] perm::Permutation settings_permutation(
    const min::MIDigraph& g, const SwitchSettings& settings);

/// Recover the switch settings realizing \p pi, or nullopt if \p pi is not
/// admissible. Inverse of settings_permutation.
[[nodiscard]] std::optional<SwitchSettings> settings_for_permutation(
    const min::MIDigraph& g, const perm::Permutation& pi);

}  // namespace mineq::sim
