#include "sim/fabric.hpp"

#include <stdexcept>

namespace mineq::sim {

PacketRing::PacketRing(std::size_t queues, std::size_t capacity)
    : capacity_(capacity),
      head_(queues, 0),
      count_(queues, 0),
      dest_(queues * capacity, 0),
      inject_(queues * capacity, 0),
      arrival_(queues * capacity, 0) {
  if (capacity == 0) {
    throw std::invalid_argument("PacketRing: capacity must be positive");
  }
}

void PacketRing::reset(std::size_t queues, std::size_t capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("PacketRing: capacity must be positive");
  }
  capacity_ = capacity;
  head_.assign(queues, 0);
  count_.assign(queues, 0);
  dest_.assign(queues * capacity, 0);
  inject_.assign(queues * capacity, 0);
  arrival_.assign(queues * capacity, 0);
  total_ = 0;
}

void PacketRing::push(std::size_t q, std::uint32_t dest,
                      std::uint64_t inject_cycle,
                      std::uint64_t arrival_complete) {
  if (full(q)) {
    throw std::logic_error("PacketRing: push into a full queue");
  }
  const std::size_t at = q * capacity_ + wrap(head_[q] + count_[q]);
  dest_[at] = dest;
  inject_[at] = inject_cycle;
  arrival_[at] = arrival_complete;
  ++count_[q];
  ++total_;
}

void PacketRing::pop(std::size_t q) {
  if (empty(q)) {
    throw std::logic_error("PacketRing: pop from an empty queue");
  }
  head_[q] = static_cast<std::uint32_t>(wrap(head_[q] + std::size_t{1}));
  --count_[q];
  --total_;
}

LanePool::LanePool(std::size_t lane_count, std::size_t depth)
    : depth_(depth),
      slots_(lane_count * depth),
      head_(lane_count, 0),
      count_(lane_count, 0),
      busy_(lane_count, 0),
      tail_in_(lane_count, 0),
      moved_(lane_count, 0),
      out_port_(lane_count, 0),
      downstream_(lane_count, -1) {
  if (depth == 0) {
    throw std::invalid_argument("LanePool: depth must be positive");
  }
}

void LanePool::reset(std::size_t lane_count, std::size_t depth) {
  if (depth == 0) {
    throw std::invalid_argument("LanePool: depth must be positive");
  }
  depth_ = depth;
  slots_.assign(lane_count * depth, Flit{});
  head_.assign(lane_count, 0);
  count_.assign(lane_count, 0);
  busy_.assign(lane_count, 0);
  tail_in_.assign(lane_count, 0);
  moved_.assign(lane_count, 0);
  out_port_.assign(lane_count, 0);
  downstream_.assign(lane_count, -1);
  occupied_ = 0;
}

void LanePool::accept_head(std::size_t l, const Flit& head,
                           unsigned out_port) {
  if (busy_[l] != 0 || !head.is_head()) {
    throw std::logic_error(
        "LanePool::accept_head: lane busy or flit not a head");
  }
  busy_[l] = 1;
  tail_in_[l] = head.is_tail() ? 1 : 0;
  out_port_[l] = static_cast<std::uint8_t>(out_port);
  downstream_[l] = -1;
  slots_[l * depth_ + wrap(head_[l] + count_[l])] = head;
  ++count_[l];
  ++occupied_;
}

void LanePool::accept(std::size_t l, const Flit& flit) {
  if (busy_[l] == 0 || tail_in_[l] != 0 || flit.is_head()) {
    throw std::logic_error(
        "LanePool::accept: flit does not continue the worm");
  }
  if (!has_space(l)) {
    throw std::logic_error("LanePool::accept: lane full");
  }
  tail_in_[l] = flit.is_tail() ? 1 : 0;
  slots_[l * depth_ + wrap(head_[l] + count_[l])] = flit;
  ++count_[l];
  ++occupied_;
}

Flit LanePool::pop(std::size_t l) {
  if (count_[l] == 0) {
    throw std::logic_error("LanePool::pop: lane empty");
  }
  const Flit flit = slots_[l * depth_ + head_[l]];
  head_[l] = static_cast<std::uint32_t>(wrap(head_[l] + std::size_t{1}));
  --count_[l];
  --occupied_;
  moved_[l] = 1;
  if (flit.is_tail()) {
    // The worm has fully left: release the lane and its allocation.
    busy_[l] = 0;
    tail_in_[l] = 0;
    downstream_[l] = -1;
  }
  return flit;
}

int LanePool::find_idle_lane(std::size_t first,
                             std::size_t lanes) const noexcept {
  for (std::size_t i = 0; i < lanes; ++i) {
    if (busy_[first + i] == 0) return static_cast<int>(i);
  }
  return -1;
}

FabricCore::FabricCore(const Engine& engine, Pattern pattern,
                       const SimConfig& config, unsigned arbiter_candidates)
    : engine_(engine),
      config_(config),
      stages_(engine.wiring().stages()),
      cells_(engine.wiring().cells_per_stage()),
      terminals_(engine.terminals()),
      ports_(static_cast<std::size_t>(engine.wiring().radix()) *
             engine.wiring().cells_per_stage()),
      // RNG stream layout (fixed across both disciplines so a discipline
      // is a pure policy choice): split 0 feeds the traffic source,
      // split 1 the injection gate, split 2 the bursty modulator.
      source_(pattern, stages_, engine.radix(),
              util::SplitMix64(config.seed).split(0)),
      inject_rng_(util::SplitMix64(config.seed).split(1)),
      rate_num_(static_cast<std::uint64_t>(config.injection_rate * 65536.0)),
      arbiters_(static_cast<std::size_t>(stages_) * ports_,
                RoundRobin(arbiter_candidates)) {
  if (pattern == Pattern::kBursty) {
    burst_.emplace(terminals_, util::SplitMix64(config.seed).split(2),
                   config.burst);
  }
}

void FabricCore::finalize(std::uint64_t link_counter) {
  if (config_.measure_cycles > 0) {
    result.throughput =
        static_cast<double>(result.delivered) /
        (static_cast<double>(config_.measure_cycles) *
         static_cast<double>(terminals_));
    result.link_utilization =
        static_cast<double>(link_counter) /
        (static_cast<double>(stages_ - 1) * static_cast<double>(terminals_) *
         static_cast<double>(config_.measure_cycles));
  }
  result.acceptance =
      result.offered == 0
          ? 1.0
          : static_cast<double>(result.injected) /
                static_cast<double>(result.offered);
}

}  // namespace mineq::sim
