#include "sim/fabric.hpp"

#include <stdexcept>

namespace mineq::sim {

void WeightedRoundRobin::reset(std::size_t arbiters, unsigned size) {
  if (size == 0) {
    throw std::invalid_argument(
        "WeightedRoundRobin: candidate ring must be non-empty");
  }
  size_ = size;
  next_.assign(arbiters, 0);
  served_.assign(arbiters, 0);
}

void WeightedRoundRobin::grant(std::size_t a, unsigned winner,
                               unsigned weight) {
  if (winner >= size_) {
    throw std::logic_error("WeightedRoundRobin::grant: winner out of range");
  }
  if (winner != next_[a]) {
    // A new holder starts its quantum (the old one was not ready).
    next_[a] = winner;
    served_[a] = 0;
  }
  if (++served_[a] >= weight) {
    next_[a] = winner + 1 == size_ ? 0 : winner + 1;
    served_[a] = 0;
  }
}

void CreditLedger::reset(std::size_t links, std::uint32_t capacity,
                         std::uint64_t latency) {
  if (capacity == 0) {
    throw std::invalid_argument("CreditLedger: capacity must be positive");
  }
  capacity_ = capacity;
  latency_ = latency;
  links_ = links;
  credits_.assign(links, capacity);
  pending_.assign(links, 0);
  ring_.assign(links * static_cast<std::size_t>(latency), 0);
}

void CreditLedger::give_back(std::size_t link, std::uint64_t cycle) {
  if (credits_[link] + pending_[link] >= capacity_) {
    throw std::logic_error("CreditLedger: credit return exceeds capacity");
  }
  if (latency_ == 0) {
    ++credits_[link];
    return;
  }
  // Arrival at cycle + latency lands in slot (cycle + latency) % latency
  // == cycle % latency — the slot deliver() just harvested this cycle,
  // so the ring never collides with itself.
  ++pending_[link];
  ++ring_[(cycle % latency_) * links_ + link];
}

void CreditLedger::deliver(std::uint64_t cycle) {
  deliver_range(cycle, 0, links_);
}

void CreditLedger::deliver_range(std::uint64_t cycle, std::size_t lo,
                                 std::size_t hi) {
  if (latency_ == 0) return;
  const std::size_t row = (cycle % latency_) * links_;
  for (std::size_t link = lo; link < hi; ++link) {
    const std::uint32_t arrived = ring_[row + link];
    if (arrived == 0) continue;
    credits_[link] += arrived;
    pending_[link] -= arrived;
    ring_[row + link] = 0;
  }
}

PacketRing::PacketRing(std::size_t queues, std::size_t capacity)
    : capacity_(capacity),
      head_(queues, 0),
      count_(queues, 0),
      dest_(queues * capacity, 0),
      src_(queues * capacity, 0),
      inject_(queues * capacity, 0),
      arrival_(queues * capacity, 0),
      sl_(queues * capacity, 0),
      tag_(queues * capacity, 0) {
  if (capacity == 0) {
    throw std::invalid_argument("PacketRing: capacity must be positive");
  }
}

void PacketRing::reset(std::size_t queues, std::size_t capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("PacketRing: capacity must be positive");
  }
  capacity_ = capacity;
  head_.assign(queues, 0);
  count_.assign(queues, 0);
  dest_.assign(queues * capacity, 0);
  src_.assign(queues * capacity, 0);
  inject_.assign(queues * capacity, 0);
  arrival_.assign(queues * capacity, 0);
  sl_.assign(queues * capacity, 0);
  tag_.assign(queues * capacity, 0);
  total_ = 0;
}

void PacketRing::push_unc(std::size_t q, std::uint32_t dest, std::uint32_t src,
                          std::uint64_t inject_cycle,
                          std::uint64_t arrival_complete, unsigned sl,
                          unsigned tag) {
  if (full(q)) {
    throw std::logic_error("PacketRing: push into a full queue");
  }
  const std::size_t at = q * capacity_ + wrap(head_[q] + count_[q]);
  dest_[at] = dest;
  src_[at] = src;
  inject_[at] = inject_cycle;
  arrival_[at] = arrival_complete;
  sl_[at] = static_cast<std::uint8_t>(sl);
  tag_[at] = static_cast<std::uint8_t>(tag);
  ++count_[q];
}

void PacketRing::push(std::size_t q, std::uint32_t dest, std::uint32_t src,
                      std::uint64_t inject_cycle,
                      std::uint64_t arrival_complete, unsigned sl,
                      unsigned tag) {
  push_unc(q, dest, src, inject_cycle, arrival_complete, sl, tag);
  ++total_;
}

void PacketRing::pop_unc(std::size_t q) {
  if (empty(q)) {
    throw std::logic_error("PacketRing: pop from an empty queue");
  }
  head_[q] = static_cast<std::uint32_t>(wrap(head_[q] + std::size_t{1}));
  --count_[q];
}

void PacketRing::pop(std::size_t q) {
  pop_unc(q);
  --total_;
}

LanePool::LanePool(std::size_t lane_count, std::size_t depth)
    : depth_(depth),
      slots_(lane_count * depth),
      head_(lane_count, 0),
      count_(lane_count, 0),
      busy_(lane_count, 0),
      tail_in_(lane_count, 0),
      moved_(lane_count, 0),
      out_port_(lane_count, 0),
      downstream_(lane_count, -1) {
  if (depth == 0) {
    throw std::invalid_argument("LanePool: depth must be positive");
  }
}

void LanePool::reset(std::size_t lane_count, std::size_t depth) {
  if (depth == 0) {
    throw std::invalid_argument("LanePool: depth must be positive");
  }
  depth_ = depth;
  slots_.assign(lane_count * depth, Flit{});
  head_.assign(lane_count, 0);
  count_.assign(lane_count, 0);
  busy_.assign(lane_count, 0);
  tail_in_.assign(lane_count, 0);
  moved_.assign(lane_count, 0);
  out_port_.assign(lane_count, 0);
  downstream_.assign(lane_count, -1);
  occupied_ = 0;
}

void LanePool::accept_head_unc(std::size_t l, const Flit& head,
                               unsigned out_port) {
  if (busy_[l] != 0 || !head.is_head()) {
    throw std::logic_error(
        "LanePool::accept_head: lane busy or flit not a head");
  }
  busy_[l] = 1;
  tail_in_[l] = head.is_tail() ? 1 : 0;
  out_port_[l] = static_cast<std::uint8_t>(out_port);
  downstream_[l] = -1;
  slots_[l * depth_ + wrap(head_[l] + count_[l])] = head;
  ++count_[l];
}

void LanePool::accept_head(std::size_t l, const Flit& head,
                           unsigned out_port) {
  accept_head_unc(l, head, out_port);
  ++occupied_;
}

void LanePool::accept_unc(std::size_t l, const Flit& flit) {
  if (busy_[l] == 0 || tail_in_[l] != 0 || flit.is_head()) {
    throw std::logic_error(
        "LanePool::accept: flit does not continue the worm");
  }
  if (!has_space(l)) {
    throw std::logic_error("LanePool::accept: lane full");
  }
  tail_in_[l] = flit.is_tail() ? 1 : 0;
  slots_[l * depth_ + wrap(head_[l] + count_[l])] = flit;
  ++count_[l];
}

void LanePool::accept(std::size_t l, const Flit& flit) {
  accept_unc(l, flit);
  ++occupied_;
}

Flit LanePool::pop(std::size_t l) {
  const Flit flit = pop_unc(l);
  --occupied_;
  return flit;
}

Flit LanePool::pop_unc(std::size_t l) {
  if (count_[l] == 0) {
    throw std::logic_error("LanePool::pop: lane empty");
  }
  const Flit flit = slots_[l * depth_ + head_[l]];
  head_[l] = static_cast<std::uint32_t>(wrap(head_[l] + std::size_t{1}));
  --count_[l];
  moved_[l] = 1;
  if (flit.is_tail()) {
    // The worm has fully left: release the lane and its allocation.
    busy_[l] = 0;
    tail_in_[l] = 0;
    downstream_[l] = -1;
  }
  return flit;
}

int LanePool::find_idle_lane(std::size_t first,
                             std::size_t lanes) const noexcept {
  for (std::size_t i = 0; i < lanes; ++i) {
    if (busy_[first + i] == 0) return static_cast<int>(i);
  }
  return -1;
}

FabricCore::FabricCore(const Engine& engine, Pattern pattern,
                       const SimConfig& config, unsigned arbiter_candidates,
                       unsigned eject_candidates)
    : engine_(engine),
      config_(config),
      stages_(engine.wiring().stages()),
      cells_(engine.wiring().cells_per_stage()),
      terminals_(engine.terminals()),
      ports_(static_cast<std::size_t>(engine.wiring().radix()) *
             engine.wiring().cells_per_stage()),
      arbiters_(static_cast<std::size_t>(stages_) * ports_,
                RoundRobin(arbiter_candidates)) {
  if (eject_candidates > 0) {
    eject_arbiters_.assign(terminals_, RoundRobin(eject_candidates));
  }
  // Injection is delegated to a workload source (src/workload/). The
  // historic RNG stream layout — split 0 feeds the traffic source,
  // split 1 the injection gate, split 2 the bursty modulator — now
  // lives inside the sources, byte-identical for the open-loop kind.
  // Sources address *logical* terminals — identical to the physical
  // geometry on unipath engines. The dominant open-loop case is
  // devirtualized AND stored inline: the hot inject loop checks one
  // predicted pointer and finds the gate state in this object's own
  // cache lines, matching the pre-seam direct-member cost.
  if (config.workload.kind == workload::Kind::kOpen) {
    synthetic_ = &synthetic_store_.emplace(pattern, engine.address_digits(),
                                           engine.logical_radix(), config,
                                           engine.terminals());
    workload_ = synthetic_;
  } else {
    owned_workload_ = workload::make_source(
        pattern, config, engine.address_digits(), engine.logical_radix(),
        engine.terminals(),
        latency_histogram_buckets(config, engine.wiring().stages()));
    workload_ = owned_workload_.get();
  }
  wants_deliveries_ = workload_->wants_deliveries();
  recording_ = config.workload.record;
  // Shape the latency histogram to this run instead of the historic
  // fixed 1024-cycle ceiling, which deep or credit-throttled fabrics
  // saturate (silently clamping p99 at the overflow edge). Bucket width
  // stays 1 cycle; runs whose latencies fit the old ceiling keep the old
  // shape, so their quantiles are unchanged.
  result.latency_histogram =
      Histogram(1.0, latency_histogram_buckets(config, stages_));
}

void FabricCore::finalize(std::uint64_t link_counter) {
  if (config_.measure_cycles > 0) {
    result.throughput =
        static_cast<double>(result.delivered) /
        (static_cast<double>(config_.measure_cycles) *
         static_cast<double>(terminals_));
    // Physical links per inter-stage gap is ports_ (== terminals_ on a
    // unipath fabric, wider on a multipath one).
    result.link_utilization =
        static_cast<double>(link_counter) /
        (static_cast<double>(stages_ - 1) * static_cast<double>(ports_) *
         static_cast<double>(config_.measure_cycles));
  }
  // An idle point (rate 0, all-OFF bursty, dead fabric) offered nothing;
  // report 0 like every other ratio so reports never carry nan/inf or a
  // vacuous 1.0.
  result.acceptance =
      result.offered == 0
          ? 0.0
          : static_cast<double>(result.injected) /
                static_cast<double>(result.offered);
  if (config_.measure_cycles > 0) {
    // The rate the workload actually asked for, per terminal per cycle.
    // Open-loop sources pin this at the configured rate; a closed-loop
    // source at saturation offers *less* (its window throttles it), which
    // is the self-throttling signature the sweep reports surface.
    result.offered_rate_effective =
        static_cast<double>(result.offered) /
        (static_cast<double>(config_.measure_cycles) *
         static_cast<double>(terminals_));
  }
  // Let the source contribute its own counters (reply latency, window
  // stalls, orphans) before the result is read out.
  workload_->finish(result);
  if (recording_) {
    result.workload_trace = std::move(recorded_);
    recorded_.clear();
  }
}

}  // namespace mineq::sim
