/// \file dsu.hpp
/// \brief Disjoint-set union (union-find) with size heuristic and path
/// compression.
///
/// The paper's P(i,j) properties count connected components of stage-range
/// subgraphs; the equivalence decision procedure runs incremental DSU
/// passes over the stages, so this structure is on the hot path.

#pragma once

#include <cstdint>
#include <vector>

namespace mineq::graph {

/// Union-find over {0, ..., size-1}.
class DSU {
 public:
  explicit DSU(std::size_t size);

  /// Representative of \p x's component.
  [[nodiscard]] std::uint32_t find(std::uint32_t x);

  /// Merge the components of \p a and \p b.
  /// \returns true iff they were previously distinct.
  bool unite(std::uint32_t a, std::uint32_t b);

  /// True iff \p a and \p b are in the same component.
  [[nodiscard]] bool same(std::uint32_t a, std::uint32_t b);

  /// Current number of components.
  [[nodiscard]] std::size_t components() const noexcept { return components_; }

  /// Size of the component containing \p x.
  [[nodiscard]] std::size_t component_size(std::uint32_t x);

  /// Total number of elements.
  [[nodiscard]] std::size_t size() const noexcept { return parent_.size(); }

  /// Reset to all-singletons.
  void reset();

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
  std::size_t components_;
};

}  // namespace mineq::graph
