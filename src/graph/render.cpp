#include "graph/render.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace mineq::graph {

namespace {

/// Character canvas with last-writer-wins cells and line drawing.
class Canvas {
 public:
  Canvas(int rows, int cols)
      : rows_(rows), cols_(cols),
        cells_(static_cast<std::size_t>(rows) *
                   static_cast<std::size_t>(cols),
               ' ') {}

  void put(int row, int col, char ch) {
    if (row < 0 || row >= rows_ || col < 0 || col >= cols_) return;
    cells_[static_cast<std::size_t>(row) * static_cast<std::size_t>(cols_) +
           static_cast<std::size_t>(col)] = ch;
  }

  void text(int row, int col, const std::string& s) {
    for (std::size_t i = 0; i < s.size(); ++i) {
      put(row, col + static_cast<int>(i), s[i]);
    }
  }

  /// Draw a straight arc between two anchors with slash/backslash/dash
  /// shading chosen from the local slope.
  void line(int row0, int col0, int row1, int col1) {
    const int steps = std::max(std::abs(row1 - row0), std::abs(col1 - col0));
    if (steps == 0) return;
    double prev_r = row0;
    for (int s = 1; s < steps; ++s) {
      const double t = static_cast<double>(s) / steps;
      const double r = row0 + (row1 - row0) * t;
      const double c = col0 + (col1 - col0) * t;
      char ch = '-';
      if (r > prev_r + 0.01) ch = '\\';
      else if (r < prev_r - 0.01) ch = '/';
      const int ri = static_cast<int>(r + 0.5);
      const int ci = static_cast<int>(c + 0.5);
      // Do not overwrite node labels; arcs may cross each other freely.
      if (at(ri, ci) == ' ' || at(ri, ci) == '-' || at(ri, ci) == '/' ||
          at(ri, ci) == '\\') {
        put(ri, ci, at(ri, ci) == ' ' ? ch : (at(ri, ci) == ch ? ch : 'X'));
      }
      prev_r = r;
    }
  }

  [[nodiscard]] char at(int row, int col) const {
    if (row < 0 || row >= rows_ || col < 0 || col >= cols_) return ' ';
    return cells_[static_cast<std::size_t>(row) *
                      static_cast<std::size_t>(cols_) +
                  static_cast<std::size_t>(col)];
  }

  [[nodiscard]] std::string str() const {
    std::string out;
    for (int r = 0; r < rows_; ++r) {
      std::string row(cells_.begin() + static_cast<std::ptrdiff_t>(r) * cols_,
                      cells_.begin() +
                          static_cast<std::ptrdiff_t>(r + 1) * cols_);
      while (!row.empty() && row.back() == ' ') row.pop_back();
      out += row;
      out += '\n';
    }
    return out;
  }

 private:
  int rows_;
  int cols_;
  std::vector<char> cells_;
};

std::string default_label(std::size_t layer, std::size_t v,
                          const AsciiOptions& options) {
  if (layer < options.labels.size() && v < options.labels[layer].size()) {
    return options.labels[layer][v];
  }
  std::string label = "[";
  label += std::to_string(v);
  label += ']';
  return label;
}

}  // namespace

std::string render_ascii(const LayeredDigraph& g, const AsciiOptions& options) {
  if (g.layers() == 0) return "";
  std::size_t max_layer = 0;
  std::size_t max_label = 1;
  for (std::size_t s = 0; s < g.layers(); ++s) {
    max_layer = std::max(max_layer, g.layer_size(s));
    for (std::size_t v = 0; v < g.layer_size(s); ++v) {
      max_label = std::max(max_label, default_label(s, v, options).size());
    }
  }
  if (max_layer > 64) {
    throw std::invalid_argument("render_ascii: graph too large to draw");
  }
  const int col_stride = static_cast<int>(max_label) + options.column_gap;
  const int row_stride = options.row_gap + 1;
  const int rows = static_cast<int>(max_layer) * row_stride;
  const int cols = static_cast<int>(g.layers()) * col_stride;
  Canvas canvas(rows, cols);

  auto node_row = [&](std::size_t v) {
    return static_cast<int>(v) * row_stride;
  };
  auto node_col = [&](std::size_t s) {
    return static_cast<int>(s) * col_stride;
  };

  // Arcs first so labels overwrite their endpoints cleanly.
  for (std::size_t s = 0; s + 1 < g.layers(); ++s) {
    for (std::size_t v = 0; v < g.layer_size(s); ++v) {
      const std::string label = default_label(s, v, options);
      for (std::uint32_t c : g.adj[s][v]) {
        canvas.line(node_row(v),
                    node_col(s) + static_cast<int>(label.size()),
                    node_row(c), node_col(s + 1) - 1);
      }
    }
  }
  for (std::size_t s = 0; s < g.layers(); ++s) {
    for (std::size_t v = 0; v < g.layer_size(s); ++v) {
      canvas.text(node_row(v), node_col(s), default_label(s, v, options));
    }
  }
  return canvas.str();
}

std::string render_dot(const LayeredDigraph& g,
                       const std::vector<std::vector<std::string>>& labels) {
  std::ostringstream out;
  out << "digraph MIN {\n  rankdir=LR;\n  node [shape=box];\n";
  for (std::size_t s = 0; s < g.layers(); ++s) {
    out << "  { rank=same;";
    for (std::size_t v = 0; v < g.layer_size(s); ++v) {
      out << " s" << s << "_" << v << ";";
    }
    out << " }\n";
  }
  for (std::size_t s = 0; s < g.layers(); ++s) {
    for (std::size_t v = 0; v < g.layer_size(s); ++v) {
      out << "  s" << s << "_" << v << " [label=\"";
      if (s < labels.size() && v < labels[s].size()) {
        out << labels[s][v];
      } else {
        out << s << ":" << v;
      }
      out << "\"];\n";
    }
  }
  for (std::size_t s = 0; s + 1 < g.layers(); ++s) {
    for (std::size_t v = 0; v < g.layer_size(s); ++v) {
      for (std::uint32_t c : g.adj[s][v]) {
        out << "  s" << s << "_" << v << " -> s" << s + 1 << "_" << c
            << ";\n";
      }
    }
  }
  out << "}\n";
  return out.str();
}

std::string render_adjacency(const LayeredDigraph& g) {
  std::ostringstream out;
  for (std::size_t s = 0; s + 1 < g.layers(); ++s) {
    for (std::size_t v = 0; v < g.layer_size(s); ++v) {
      out << s + 1 << ":" << v << " ->";
      for (std::uint32_t c : g.adj[s][v]) out << ' ' << c;
      out << '\n';
    }
  }
  return out.str();
}

}  // namespace mineq::graph
