#include "graph/traversal.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace mineq::graph {

std::vector<std::uint32_t> bfs_distances(const Digraph& g,
                                         std::uint32_t source) {
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  std::queue<std::uint32_t> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const std::uint32_t v = frontier.front();
    frontier.pop();
    for (std::uint32_t w : g.out(v)) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[v] + 1;
        frontier.push(w);
      }
    }
  }
  return dist;
}

std::vector<std::uint32_t> bfs_distances_undirected(const Digraph& g,
                                                    std::uint32_t source) {
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  std::queue<std::uint32_t> frontier;
  dist[source] = 0;
  frontier.push(source);
  auto visit = [&](std::uint32_t from, std::uint32_t to) {
    if (dist[to] == kUnreachable) {
      dist[to] = dist[from] + 1;
      frontier.push(to);
    }
  };
  while (!frontier.empty()) {
    const std::uint32_t v = frontier.front();
    frontier.pop();
    for (std::uint32_t w : g.out(v)) visit(v, w);
    for (std::uint32_t w : g.in(v)) visit(v, w);
  }
  return dist;
}

std::vector<std::size_t> distance_profile(const Digraph& g,
                                          std::uint32_t source) {
  const auto dist = bfs_distances(g, source);
  std::uint32_t max_dist = 0;
  for (std::uint32_t d : dist) {
    if (d != kUnreachable) max_dist = std::max(max_dist, d);
  }
  std::vector<std::size_t> profile(max_dist + 1, 0);
  for (std::uint32_t d : dist) {
    if (d != kUnreachable) ++profile[d];
  }
  return profile;
}

std::vector<std::uint32_t> reachable_set(const Digraph& g,
                                         std::uint32_t source) {
  const auto dist = bfs_distances(g, source);
  std::vector<std::uint32_t> out;
  for (std::uint32_t v = 0; v < dist.size(); ++v) {
    if (dist[v] != kUnreachable) out.push_back(v);
  }
  return out;
}

std::vector<std::uint64_t> count_paths_saturating(const Digraph& g,
                                                  std::uint32_t source,
                                                  std::uint64_t cap) {
  if (cap == 0) throw std::invalid_argument("count_paths_saturating: cap 0");
  // Kahn topological order; throws on cycles since the DP would be invalid.
  std::vector<std::size_t> indeg(g.num_nodes(), 0);
  for (std::uint32_t v = 0; v < g.num_nodes(); ++v) {
    indeg[v] = g.in_degree(v);
  }
  std::queue<std::uint32_t> ready;
  for (std::uint32_t v = 0; v < g.num_nodes(); ++v) {
    if (indeg[v] == 0) ready.push(v);
  }
  std::vector<std::uint64_t> count(g.num_nodes(), 0);
  count[source] = 1;
  std::size_t processed = 0;
  while (!ready.empty()) {
    const std::uint32_t v = ready.front();
    ready.pop();
    ++processed;
    for (std::uint32_t w : g.out(v)) {
      count[w] = std::min(cap, count[w] + count[v]);
      if (--indeg[w] == 0) ready.push(w);
    }
  }
  if (processed != g.num_nodes()) {
    throw std::invalid_argument("count_paths_saturating: graph has a cycle");
  }
  return count;
}

}  // namespace mineq::graph
