#include "graph/components.hpp"

#include <algorithm>
#include <unordered_map>

#include "graph/dsu.hpp"

namespace mineq::graph {

ComponentLabeling connected_components(const Digraph& g) {
  DSU dsu(g.num_nodes());
  for (std::uint32_t v = 0; v < g.num_nodes(); ++v) {
    for (std::uint32_t w : g.out(v)) dsu.unite(v, w);
  }
  ComponentLabeling out;
  out.labels.assign(g.num_nodes(), 0);
  std::unordered_map<std::uint32_t, std::uint32_t> root_to_label;
  root_to_label.reserve(dsu.components());
  for (std::uint32_t v = 0; v < g.num_nodes(); ++v) {
    const std::uint32_t root = dsu.find(v);
    const auto [it, inserted] = root_to_label.emplace(
        root, static_cast<std::uint32_t>(root_to_label.size()));
    out.labels[v] = it->second;
  }
  out.count = root_to_label.size();
  return out;
}

std::size_t component_count(const Digraph& g) {
  DSU dsu(g.num_nodes());
  for (std::uint32_t v = 0; v < g.num_nodes(); ++v) {
    for (std::uint32_t w : g.out(v)) dsu.unite(v, w);
  }
  return dsu.components();
}

std::vector<std::size_t> component_sizes(const Digraph& g) {
  const ComponentLabeling labeling = connected_components(g);
  std::vector<std::size_t> sizes(labeling.count, 0);
  for (std::uint32_t label : labeling.labels) ++sizes[label];
  std::sort(sizes.rbegin(), sizes.rend());
  return sizes;
}

}  // namespace mineq::graph
