/// \file render.hpp
/// \brief Text renderings of layered digraphs: ASCII art and Graphviz DOT.
///
/// The paper's figures are structural drawings of small MI-digraphs; the
/// benchmark binaries regenerate them through these renderers so the
/// reproduction is diffable text rather than hand-drawn pictures.

#pragma once

#include <string>
#include <vector>

#include "graph/digraph.hpp"

namespace mineq::graph {

/// Options for the ASCII renderer.
struct AsciiOptions {
  /// Per-layer node labels; empty means use decimal indices.
  std::vector<std::vector<std::string>> labels;
  /// Horizontal gap between stage columns, in characters.
  int column_gap = 12;
  /// Vertical gap between consecutive nodes of a stage, in rows.
  int row_gap = 2;
};

/// Render the layered digraph as ASCII art: stages as columns (left to
/// right, matching the paper's "arcs all directed from left to right"
/// convention), arcs as line segments. Intended for small graphs
/// (layer size <= 16).
[[nodiscard]] std::string render_ascii(const LayeredDigraph& g,
                                       const AsciiOptions& options = {});

/// Render as Graphviz DOT (rankdir=LR, one rank per stage).
[[nodiscard]] std::string render_dot(
    const LayeredDigraph& g,
    const std::vector<std::vector<std::string>>& labels = {});

/// Plain adjacency listing, one line per node: "s:v -> c1 c2".
[[nodiscard]] std::string render_adjacency(const LayeredDigraph& g);

}  // namespace mineq::graph
