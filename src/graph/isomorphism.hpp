/// \file isomorphism.hpp
/// \brief General layered-digraph isomorphism — the expensive baseline the
/// paper's "easy characterization" replaces.
///
/// A stage-respecting VF2-style backtracking search with Weisfeiler-Leman
/// color refinement for pruning. Exact and complete, but worst-case
/// exponential: this is the comparison point for the benchmark suite (the
/// paper's P(1,*) / P(*,n) check decides baseline-equivalence in
/// near-linear time, while generic isomorphism search does not scale).
/// Also used as an oracle in tests to validate the fast path, and to count
/// automorphisms of small networks.
///
/// Note: MI-digraph isomorphism per the paper does NOT require stages to be
/// preserved a priori; but for MI-digraphs stages are recoverable from the
/// digraph itself (sources are exactly stage 1, and stage index = distance
/// from the sources), so stage-respecting search decides the same relation.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace mineq::graph {

/// mapping[s][v] = index in layer s of graph B that node (s, v) of graph A
/// maps to.
using LayeredMapping = std::vector<std::vector<std::uint32_t>>;

/// Statistics from a backtracking run.
struct SearchStats {
  std::uint64_t nodes_expanded = 0;  ///< candidate assignments tried
  bool budget_exhausted = false;     ///< search aborted on budget
};

/// Find an isomorphism from \p a to \p b, or nullopt if none exists (or the
/// node-expansion \p budget ran out; check stats.budget_exhausted to
/// distinguish). Arc multiplicities are respected.
[[nodiscard]] std::optional<LayeredMapping> find_layered_isomorphism(
    const LayeredDigraph& a, const LayeredDigraph& b,
    SearchStats* stats = nullptr,
    std::uint64_t budget = UINT64_MAX);

/// Check that \p mapping is a valid isomorphism from \p a to \p b
/// (bijective per layer, arcs with multiplicity preserved in both
/// directions). O(nodes + arcs).
[[nodiscard]] bool verify_layered_isomorphism(const LayeredDigraph& a,
                                              const LayeredDigraph& b,
                                              const LayeredMapping& mapping);

/// Count the automorphisms of \p a, saturating at \p cap.
[[nodiscard]] std::uint64_t count_layered_automorphisms(
    const LayeredDigraph& a, std::uint64_t cap = UINT64_MAX);

/// Weisfeiler-Leman refinement: joint stable coloring of two layered
/// digraphs (same color ids are comparable across the pair). Exposed for
/// tests and for the benchmark that measures how much WL alone
/// distinguishes.
struct WLColoring {
  std::vector<std::vector<std::uint32_t>> colors_a;
  std::vector<std::vector<std::uint32_t>> colors_b;
  std::size_t color_count = 0;
  bool histograms_match = false;
};

[[nodiscard]] WLColoring wl_refine(const LayeredDigraph& a,
                                   const LayeredDigraph& b,
                                   int max_rounds = 64);

}  // namespace mineq::graph
