/// \file digraph.hpp
/// \brief A general directed multigraph over dense node ids.
///
/// Generic substrate for the graph algorithms (components, BFS, rendering).
/// Multistage interconnection digraphs are a structured special case
/// (min/mi_digraph.hpp) that converts to this representation for the
/// generic algorithms and to LayeredDigraph for the staged ones.

#pragma once

#include <cstdint>
#include <vector>

namespace mineq::graph {

/// Directed multigraph: parallel arcs are allowed and preserved.
class Digraph {
 public:
  /// Graph with \p nodes nodes and no arcs.
  explicit Digraph(std::size_t nodes = 0);

  /// Add a node, returning its id.
  std::uint32_t add_node();

  /// Add an arc from \p from to \p to (parallel arcs allowed).
  /// \throws std::invalid_argument if an endpoint is out of range.
  void add_arc(std::uint32_t from, std::uint32_t to);

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return out_.size();
  }
  [[nodiscard]] std::size_t num_arcs() const noexcept { return num_arcs_; }

  /// Out-neighbors of \p v (with multiplicity, in insertion order).
  [[nodiscard]] const std::vector<std::uint32_t>& out(std::uint32_t v) const;

  /// In-neighbors of \p v (with multiplicity).
  [[nodiscard]] const std::vector<std::uint32_t>& in(std::uint32_t v) const;

  [[nodiscard]] std::size_t out_degree(std::uint32_t v) const {
    return out(v).size();
  }
  [[nodiscard]] std::size_t in_degree(std::uint32_t v) const {
    return in(v).size();
  }

  /// The digraph with every arc reversed.
  [[nodiscard]] Digraph reversed() const;

 private:
  void check_node(std::uint32_t v) const;

  std::vector<std::vector<std::uint32_t>> out_;
  std::vector<std::vector<std::uint32_t>> in_;
  std::size_t num_arcs_ = 0;
};

/// A digraph whose nodes are partitioned into consecutive layers with arcs
/// only from layer s to layer s+1 — the shape shared by every MI-digraph.
/// adj[s][v] lists the children (indices into layer s+1) of node v of
/// layer s, with multiplicity. The final layer has an empty adjacency list
/// per node (kept so layer sizes are explicit).
struct LayeredDigraph {
  std::vector<std::vector<std::vector<std::uint32_t>>> adj;

  [[nodiscard]] std::size_t layers() const noexcept { return adj.size(); }
  [[nodiscard]] std::size_t layer_size(std::size_t s) const {
    return adj[s].size();
  }
  [[nodiscard]] std::size_t num_nodes() const noexcept;
  [[nodiscard]] std::size_t num_arcs() const noexcept;

  /// Flatten to a Digraph; node id = layer offset + index.
  [[nodiscard]] Digraph flatten() const;

  /// Validate the layered invariants (children in range of the next layer,
  /// no arcs out of the last layer). \throws std::invalid_argument.
  void validate() const;
};

}  // namespace mineq::graph
