#include "graph/dsu.hpp"

#include <numeric>
#include <stdexcept>

namespace mineq::graph {

DSU::DSU(std::size_t size)
    : parent_(size), size_(size, 1), components_(size) {
  std::iota(parent_.begin(), parent_.end(), 0U);
}

std::uint32_t DSU::find(std::uint32_t x) {
  if (x >= parent_.size()) throw std::invalid_argument("DSU::find: range");
  // Path halving: every node on the path points to its grandparent.
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];
    x = parent_[x];
  }
  return x;
}

bool DSU::unite(std::uint32_t a, std::uint32_t b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (size_[a] < size_[b]) std::swap(a, b);
  parent_[b] = a;
  size_[a] += size_[b];
  --components_;
  return true;
}

bool DSU::same(std::uint32_t a, std::uint32_t b) { return find(a) == find(b); }

std::size_t DSU::component_size(std::uint32_t x) { return size_[find(x)]; }

void DSU::reset() {
  std::iota(parent_.begin(), parent_.end(), 0U);
  size_.assign(parent_.size(), 1);
  components_ = parent_.size();
}

}  // namespace mineq::graph
