/// \file traversal.hpp
/// \brief BFS utilities and saturating path counting.
///
/// The paper notes that its equivalence conditions "are very easy to check
/// using a breadth first search algorithm to compute the number of
/// connected components and the number of nodes at distance k" — these are
/// those routines, plus the path-counting DP behind the Banyan check.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace mineq::graph {

/// Sentinel distance for unreachable nodes.
inline constexpr std::uint32_t kUnreachable = 0xFFFFFFFFu;

/// Directed BFS distances from \p source (arc direction respected).
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const Digraph& g,
                                                       std::uint32_t source);

/// Undirected BFS distances (arcs traversable both ways).
[[nodiscard]] std::vector<std::uint32_t> bfs_distances_undirected(
    const Digraph& g, std::uint32_t source);

/// Number of nodes at each distance from \p source (directed); index d
/// holds the count at distance d. Unreachable nodes are not counted.
[[nodiscard]] std::vector<std::size_t> distance_profile(const Digraph& g,
                                                        std::uint32_t source);

/// Nodes reachable from \p source (directed), including the source.
[[nodiscard]] std::vector<std::uint32_t> reachable_set(const Digraph& g,
                                                       std::uint32_t source);

/// Count directed paths from \p source to every node, saturating at \p cap
/// (so the result is min(#paths, cap) — enough to detect "exactly one").
/// Requires an acyclic graph; layered digraphs always qualify. Counting is
/// by a DP in topological order (Kahn).
[[nodiscard]] std::vector<std::uint64_t> count_paths_saturating(
    const Digraph& g, std::uint32_t source, std::uint64_t cap);

}  // namespace mineq::graph
