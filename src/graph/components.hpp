/// \file components.hpp
/// \brief Connected components of the undirected underlying graph.
///
/// Per the paper's definition: "The connected components of an MI-digraph
/// are those of the undirected underlying graph, obtained from the digraph
/// by deleting the orientation of the arcs."

#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace mineq::graph {

/// Component labeling: labels[v] in [0, count), assigned in order of the
/// smallest node id in each component.
struct ComponentLabeling {
  std::vector<std::uint32_t> labels;
  std::size_t count = 0;
};

/// Components of the undirected underlying graph of \p g.
[[nodiscard]] ComponentLabeling connected_components(const Digraph& g);

/// Just the number of components (cheaper: single DSU pass).
[[nodiscard]] std::size_t component_count(const Digraph& g);

/// Sizes of all components, sorted descending.
[[nodiscard]] std::vector<std::size_t> component_sizes(const Digraph& g);

}  // namespace mineq::graph
