#include "graph/digraph.hpp"

#include <stdexcept>

namespace mineq::graph {

Digraph::Digraph(std::size_t nodes) : out_(nodes), in_(nodes) {}

std::uint32_t Digraph::add_node() {
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<std::uint32_t>(out_.size() - 1);
}

void Digraph::check_node(std::uint32_t v) const {
  if (v >= out_.size()) {
    throw std::invalid_argument("Digraph: node out of range");
  }
}

void Digraph::add_arc(std::uint32_t from, std::uint32_t to) {
  check_node(from);
  check_node(to);
  out_[from].push_back(to);
  in_[to].push_back(from);
  ++num_arcs_;
}

const std::vector<std::uint32_t>& Digraph::out(std::uint32_t v) const {
  check_node(v);
  return out_[v];
}

const std::vector<std::uint32_t>& Digraph::in(std::uint32_t v) const {
  check_node(v);
  return in_[v];
}

Digraph Digraph::reversed() const {
  Digraph rev(num_nodes());
  for (std::uint32_t v = 0; v < num_nodes(); ++v) {
    for (std::uint32_t w : out_[v]) rev.add_arc(w, v);
  }
  return rev;
}

std::size_t LayeredDigraph::num_nodes() const noexcept {
  std::size_t total = 0;
  for (const auto& layer : adj) total += layer.size();
  return total;
}

std::size_t LayeredDigraph::num_arcs() const noexcept {
  std::size_t total = 0;
  for (const auto& layer : adj) {
    for (const auto& children : layer) total += children.size();
  }
  return total;
}

Digraph LayeredDigraph::flatten() const {
  Digraph g(num_nodes());
  std::size_t offset = 0;
  for (std::size_t s = 0; s + 1 < adj.size(); ++s) {
    const std::size_t next_offset = offset + adj[s].size();
    for (std::size_t v = 0; v < adj[s].size(); ++v) {
      for (std::uint32_t child : adj[s][v]) {
        g.add_arc(static_cast<std::uint32_t>(offset + v),
                  static_cast<std::uint32_t>(next_offset + child));
      }
    }
    offset = next_offset;
  }
  return g;
}

void LayeredDigraph::validate() const {
  for (std::size_t s = 0; s < adj.size(); ++s) {
    for (const auto& children : adj[s]) {
      if (s + 1 == adj.size()) {
        if (!children.empty()) {
          throw std::invalid_argument(
              "LayeredDigraph: arcs out of the last layer");
        }
        continue;
      }
      for (std::uint32_t child : children) {
        if (child >= adj[s + 1].size()) {
          throw std::invalid_argument(
              "LayeredDigraph: child index out of range");
        }
      }
    }
  }
}

}  // namespace mineq::graph
