#include "graph/isomorphism.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace mineq::graph {

namespace {

/// Flattened, parent-augmented view of a LayeredDigraph used by the search.
struct FlatGraph {
  std::vector<std::size_t> layer_offset;            // per layer
  std::vector<std::uint32_t> layer_of;              // per flat node
  std::vector<std::vector<std::uint32_t>> children;  // flat ids
  std::vector<std::vector<std::uint32_t>> parents;   // flat ids
  std::size_t nodes = 0;

  explicit FlatGraph(const LayeredDigraph& g) {
    layer_offset.resize(g.layers() + 1, 0);
    for (std::size_t s = 0; s < g.layers(); ++s) {
      layer_offset[s + 1] = layer_offset[s] + g.layer_size(s);
    }
    nodes = layer_offset.back();
    layer_of.resize(nodes);
    children.resize(nodes);
    parents.resize(nodes);
    for (std::size_t s = 0; s < g.layers(); ++s) {
      for (std::size_t v = 0; v < g.layer_size(s); ++v) {
        const auto flat = static_cast<std::uint32_t>(layer_offset[s] + v);
        layer_of[flat] = static_cast<std::uint32_t>(s);
        for (std::uint32_t c : g.adj[s][v]) {
          const auto flat_c =
              static_cast<std::uint32_t>(layer_offset[s + 1] + c);
          children[flat].push_back(flat_c);
          parents[flat_c].push_back(flat);
        }
      }
    }
  }
};

/// One WL round: new color = canonical id of (old color, sorted child
/// colors, sorted parent colors). The dictionary is shared between both
/// graphs so colors remain comparable.
using Signature = std::vector<std::uint32_t>;

std::vector<std::uint32_t> initial_colors(const FlatGraph& g) {
  std::vector<std::uint32_t> colors(g.nodes);
  for (std::size_t v = 0; v < g.nodes; ++v) {
    colors[v] = g.layer_of[v];
  }
  return colors;
}

Signature node_signature(const FlatGraph& g,
                         const std::vector<std::uint32_t>& colors,
                         std::size_t v) {
  Signature sig;
  sig.push_back(colors[v]);
  std::vector<std::uint32_t> child_colors;
  for (std::uint32_t c : g.children[v]) child_colors.push_back(colors[c]);
  std::sort(child_colors.begin(), child_colors.end());
  sig.push_back(0xFFFFFFFFu);  // separator
  sig.insert(sig.end(), child_colors.begin(), child_colors.end());
  std::vector<std::uint32_t> parent_colors;
  for (std::uint32_t p : g.parents[v]) parent_colors.push_back(colors[p]);
  std::sort(parent_colors.begin(), parent_colors.end());
  sig.push_back(0xFFFFFFFEu);  // separator
  sig.insert(sig.end(), parent_colors.begin(), parent_colors.end());
  return sig;
}

struct RefineResult {
  std::vector<std::uint32_t> colors_a;
  std::vector<std::uint32_t> colors_b;
  std::size_t color_count = 0;
  bool histograms_match = false;
};

RefineResult refine(const FlatGraph& a, const FlatGraph& b, int max_rounds) {
  RefineResult r;
  r.colors_a = initial_colors(a);
  r.colors_b = initial_colors(b);
  std::size_t prev_count = 0;
  for (int round = 0; round < max_rounds; ++round) {
    std::map<Signature, std::uint32_t> dictionary;
    auto relabel = [&dictionary](const FlatGraph& g,
                                 const std::vector<std::uint32_t>& colors) {
      std::vector<std::uint32_t> next(g.nodes);
      for (std::size_t v = 0; v < g.nodes; ++v) {
        const Signature sig = node_signature(g, colors, v);
        const auto [it, inserted] = dictionary.emplace(
            sig, static_cast<std::uint32_t>(dictionary.size()));
        next[v] = it->second;
      }
      return next;
    };
    auto next_a = relabel(a, r.colors_a);
    auto next_b = relabel(b, r.colors_b);
    const std::size_t count = dictionary.size();
    r.colors_a = std::move(next_a);
    r.colors_b = std::move(next_b);
    r.color_count = count;
    if (count == prev_count) break;  // stable
    prev_count = count;
  }
  // Compare color histograms.
  std::vector<std::size_t> hist_a(r.color_count, 0);
  std::vector<std::size_t> hist_b(r.color_count, 0);
  for (std::uint32_t c : r.colors_a) ++hist_a[c];
  for (std::uint32_t c : r.colors_b) ++hist_b[c];
  r.histograms_match = hist_a == hist_b;
  return r;
}

/// Multiplicity-respecting comparison of the already-mapped neighborhood.
/// For each mapped parent p of u, arcs(p, u) in A must equal
/// arcs(map(p), v) in B; symmetrically for mapped children, and the counts
/// of mapped neighbors must agree so no B-arc is left unaccounted.
class Matcher {
 public:
  Matcher(const FlatGraph& a, const FlatGraph& b,
          std::vector<std::uint32_t> colors_a,
          std::vector<std::uint32_t> colors_b, std::uint64_t budget)
      : a_(a),
        b_(b),
        colors_a_(std::move(colors_a)),
        colors_b_(std::move(colors_b)),
        budget_(budget),
        map_a2b_(a.nodes, kUnset),
        map_b2a_(b.nodes, kUnset) {
    build_order();
    build_candidates();
  }

  /// Runs the search. If count_all is false, stops at the first complete
  /// mapping. Returns number of complete mappings found (saturating at
  /// cap when counting).
  std::uint64_t run(bool count_all, std::uint64_t cap) {
    count_all_ = count_all;
    cap_ = cap;
    found_ = 0;
    search(0);
    return found_;
  }

  [[nodiscard]] const std::vector<std::uint32_t>& mapping() const {
    return map_a2b_;
  }
  [[nodiscard]] std::uint64_t nodes_expanded() const {
    return nodes_expanded_;
  }
  [[nodiscard]] bool budget_exhausted() const { return budget_exhausted_; }

 private:
  static constexpr std::uint32_t kUnset = 0xFFFFFFFFu;

  /// DFS-preorder interleaved order: whenever a node is placed in the
  /// order, its children follow soon after, so contradictions surface
  /// within a few assignments instead of a full layer later.
  void build_order() {
    std::vector<bool> queued(a_.nodes, false);
    order_.reserve(a_.nodes);
    std::vector<std::uint32_t> stack;
    for (std::uint32_t v = 0; v < a_.nodes; ++v) {
      if (queued[v]) continue;
      stack.push_back(v);
      queued[v] = true;
      while (!stack.empty()) {
        const std::uint32_t u = stack.back();
        stack.pop_back();
        order_.push_back(u);
        for (std::uint32_t c : a_.children[u]) {
          if (!queued[c]) {
            queued[c] = true;
            stack.push_back(c);
          }
        }
      }
    }
  }

  void build_candidates() {
    // candidates_[color] = B nodes of that color.
    std::size_t max_color = 0;
    for (std::uint32_t c : colors_b_) {
      max_color = std::max<std::size_t>(max_color, c + 1);
    }
    for (std::uint32_t c : colors_a_) {
      max_color = std::max<std::size_t>(max_color, c + 1);
    }
    candidates_.assign(max_color, {});
    for (std::uint32_t v = 0; v < b_.nodes; ++v) {
      candidates_[colors_b_[v]].push_back(v);
    }
  }

  [[nodiscard]] static std::size_t multiplicity(
      const std::vector<std::uint32_t>& list, std::uint32_t target) {
    return static_cast<std::size_t>(
        std::count(list.begin(), list.end(), target));
  }

  [[nodiscard]] bool feasible(std::uint32_t u, std::uint32_t v) const {
    if (a_.layer_of[u] != b_.layer_of[v]) return false;
    if (a_.children[u].size() != b_.children[v].size()) return false;
    if (a_.parents[u].size() != b_.parents[v].size()) return false;
    // Mapped parents must correspond with multiplicity.
    std::size_t mapped_parents = 0;
    for (std::uint32_t p : a_.parents[u]) {
      const std::uint32_t mp = map_a2b_[p];
      if (mp == kUnset) continue;
      ++mapped_parents;
      if (multiplicity(a_.parents[u], p) !=
          multiplicity(b_.parents[v], mp)) {
        return false;
      }
    }
    std::size_t mapped_parents_b = 0;
    for (std::uint32_t p : b_.parents[v]) {
      if (map_b2a_[p] != kUnset) ++mapped_parents_b;
    }
    if (mapped_parents != mapped_parents_b) return false;
    // Mapped children likewise.
    std::size_t mapped_children = 0;
    for (std::uint32_t c : a_.children[u]) {
      const std::uint32_t mc = map_a2b_[c];
      if (mc == kUnset) continue;
      ++mapped_children;
      if (multiplicity(a_.children[u], c) !=
          multiplicity(b_.children[v], mc)) {
        return false;
      }
    }
    std::size_t mapped_children_b = 0;
    for (std::uint32_t c : b_.children[v]) {
      if (map_b2a_[c] != kUnset) ++mapped_children_b;
    }
    if (mapped_children != mapped_children_b) return false;
    return true;
  }

  /// \returns true if the search should stop entirely.
  bool search(std::size_t depth) {
    if (budget_exhausted_) return true;
    if (depth == order_.size()) {
      ++found_;
      return !count_all_ || found_ >= cap_;
    }
    const std::uint32_t u = order_[depth];
    for (std::uint32_t v : candidates_[colors_a_[u]]) {
      if (map_b2a_[v] != kUnset) continue;
      if (++nodes_expanded_ > budget_) {
        budget_exhausted_ = true;
        return true;
      }
      if (!feasible(u, v)) continue;
      map_a2b_[u] = v;
      map_b2a_[v] = u;
      const bool stop = search(depth + 1);
      if (stop && (!count_all_ || found_ >= cap_ || budget_exhausted_)) {
        if (!count_all_) return true;  // keep mapping intact for extraction
        map_a2b_[u] = kUnset;
        map_b2a_[v] = kUnset;
        return true;
      }
      map_a2b_[u] = kUnset;
      map_b2a_[v] = kUnset;
    }
    return false;
  }

  const FlatGraph& a_;
  const FlatGraph& b_;
  std::vector<std::uint32_t> colors_a_;
  std::vector<std::uint32_t> colors_b_;
  std::uint64_t budget_;
  std::vector<std::uint32_t> map_a2b_;
  std::vector<std::uint32_t> map_b2a_;
  std::vector<std::uint32_t> order_;
  std::vector<std::vector<std::uint32_t>> candidates_;
  std::uint64_t nodes_expanded_ = 0;
  std::uint64_t found_ = 0;
  std::uint64_t cap_ = 1;
  bool count_all_ = false;
  bool budget_exhausted_ = false;
};

bool shape_compatible(const LayeredDigraph& a, const LayeredDigraph& b) {
  if (a.layers() != b.layers()) return false;
  for (std::size_t s = 0; s < a.layers(); ++s) {
    if (a.layer_size(s) != b.layer_size(s)) return false;
  }
  return a.num_arcs() == b.num_arcs();
}

}  // namespace

WLColoring wl_refine(const LayeredDigraph& a, const LayeredDigraph& b,
                     int max_rounds) {
  const FlatGraph fa(a);
  const FlatGraph fb(b);
  const RefineResult r = refine(fa, fb, max_rounds);

  WLColoring out;
  out.color_count = r.color_count;
  out.histograms_match = r.histograms_match;
  out.colors_a.resize(a.layers());
  out.colors_b.resize(b.layers());
  for (std::size_t s = 0; s < a.layers(); ++s) {
    out.colors_a[s].assign(
        r.colors_a.begin() + static_cast<std::ptrdiff_t>(fa.layer_offset[s]),
        r.colors_a.begin() +
            static_cast<std::ptrdiff_t>(fa.layer_offset[s + 1]));
  }
  for (std::size_t s = 0; s < b.layers(); ++s) {
    out.colors_b[s].assign(
        r.colors_b.begin() + static_cast<std::ptrdiff_t>(fb.layer_offset[s]),
        r.colors_b.begin() +
            static_cast<std::ptrdiff_t>(fb.layer_offset[s + 1]));
  }
  return out;
}

std::optional<LayeredMapping> find_layered_isomorphism(const LayeredDigraph& a,
                                                       const LayeredDigraph& b,
                                                       SearchStats* stats,
                                                       std::uint64_t budget) {
  if (!shape_compatible(a, b)) return std::nullopt;
  const FlatGraph fa(a);
  const FlatGraph fb(b);
  RefineResult r = refine(fa, fb, 64);
  if (!r.histograms_match) {
    if (stats != nullptr) *stats = SearchStats{};
    return std::nullopt;
  }
  Matcher matcher(fa, fb, std::move(r.colors_a), std::move(r.colors_b),
                  budget);
  const std::uint64_t found = matcher.run(/*count_all=*/false, /*cap=*/1);
  if (stats != nullptr) {
    stats->nodes_expanded = matcher.nodes_expanded();
    stats->budget_exhausted = matcher.budget_exhausted();
  }
  if (found == 0) return std::nullopt;

  LayeredMapping mapping(a.layers());
  for (std::size_t s = 0; s < a.layers(); ++s) {
    mapping[s].resize(a.layer_size(s));
    for (std::size_t v = 0; v < a.layer_size(s); ++v) {
      const std::uint32_t flat_image =
          matcher.mapping()[fa.layer_offset[s] + v];
      mapping[s][v] = static_cast<std::uint32_t>(
          flat_image - fb.layer_offset[s]);
    }
  }
  return mapping;
}

bool verify_layered_isomorphism(const LayeredDigraph& a,
                                const LayeredDigraph& b,
                                const LayeredMapping& mapping) {
  if (a.layers() != b.layers() || mapping.size() != a.layers()) return false;
  for (std::size_t s = 0; s < a.layers(); ++s) {
    if (a.layer_size(s) != b.layer_size(s)) return false;
    if (mapping[s].size() != a.layer_size(s)) return false;
    std::vector<bool> hit(b.layer_size(s), false);
    for (std::uint32_t image : mapping[s]) {
      if (image >= b.layer_size(s) || hit[image]) return false;
      hit[image] = true;
    }
  }
  // Arcs preserved with multiplicity: compare the sorted mapped child list
  // of every node against the image node's sorted child list.
  for (std::size_t s = 0; s + 1 < a.layers(); ++s) {
    for (std::size_t v = 0; v < a.layer_size(s); ++v) {
      std::vector<std::uint32_t> mapped;
      mapped.reserve(a.adj[s][v].size());
      for (std::uint32_t c : a.adj[s][v]) mapped.push_back(mapping[s + 1][c]);
      std::sort(mapped.begin(), mapped.end());
      std::vector<std::uint32_t> target = b.adj[s][mapping[s][v]];
      std::sort(target.begin(), target.end());
      if (mapped != target) return false;
    }
  }
  return true;
}

std::uint64_t count_layered_automorphisms(const LayeredDigraph& a,
                                          std::uint64_t cap) {
  const FlatGraph fa(a);
  const FlatGraph fb(a);
  RefineResult r = refine(fa, fb, 64);
  if (!r.histograms_match) {
    throw std::logic_error(
        "count_layered_automorphisms: self-refinement mismatch");
  }
  Matcher matcher(fa, fb, std::move(r.colors_a), std::move(r.colors_b),
                  UINT64_MAX);
  return matcher.run(/*count_all=*/true, cap);
}

}  // namespace mineq::graph
