/// \file sweep.hpp
/// \brief Parallel experiment sweeps over {network x radix x pattern x
/// mode x lanes x faults x injection rate} grids.
///
/// A SweepGrid is the cartesian product of its axes; run_sweep fans the
/// grid across util::parallel_for with one deterministic RNG stream per
/// task (derived from the base seed and the task's grid index), so the
/// result — and any CSV/JSON rendered from it (report.hpp) — is
/// byte-identical regardless of thread count.
///
/// The fault axis (fault/fault_model.hpp) adds resilience studies: one
/// FaultMask is built per {network, fault spec} and shared read-only by
/// every grid point simulating that pair, and the survivor topology is
/// classified once (full access, surviving Banyan property, surviving
/// arc count — min::classify_faulted) so each point reports degraded
/// performance next to what is left of the fabric's structure.

#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_model.hpp"
#include "min/equivalence.hpp"
#include "min/networks.hpp"
#include "multipath/multipath_wiring.hpp"
#include "sim/engine.hpp"
#include "workload/spec.hpp"

namespace mineq::exp {

/// One multipath-fabric axis value: a fabric family composed over a base
/// banyan with a path-multiplicity parameter (`paths` is the dilation of
/// a dilated fabric or the plane count of a replicated one; a Benes
/// fixes its own multiplicity at radix^(stages-1) and ignores it).
struct FabricSpec {
  min::MultiPathKind kind = min::MultiPathKind::kBenes;
  min::NetworkKind base = min::NetworkKind::kOmega;
  int paths = 2;
};

/// The axes of one sweep. Fixed (non-swept) simulation parameters ride in
/// `base`, whose injection_rate, mode, lanes, burst and seed are
/// overridden per grid point (the per-point seed is derived from
/// base.seed and the grid index).
struct SweepGrid {
  std::vector<min::NetworkKind> networks;
  /// Switch-radix axis; the default single radix 2 reproduces the binary
  /// sweep bit for bit. Radices > 2 run the k-ary constructions
  /// (min::build_kary_network — omega, flip and baseline have closed
  /// forms; other kinds are rejected at validation).
  std::vector<int> radices = {2};
  std::vector<sim::Pattern> patterns;
  std::vector<sim::SwitchingMode> modes;
  std::vector<std::size_t> lane_counts;
  /// Fault-injection axis; the default single no-fault spec reproduces
  /// the pristine sweep.
  std::vector<fault::FaultSpec> faults = {fault::FaultSpec{}};
  /// Bursty-modulator axis (two-state Markov on/off probabilities); only
  /// Pattern::kBursty expands it — other patterns ignore the modulator,
  /// so they contribute one variant.
  std::vector<sim::BurstParams> bursts = {sim::BurstParams{}};
  /// Flow-control axis (credit return latency, arbitration policy, VL
  /// weights, SL->VL map); the default single disabled config reproduces
  /// the idealized-handshake sweep bit for bit.
  std::vector<sim::CreditConfig> credits = {sim::CreditConfig{}};
  std::vector<double> rates;
  /// Multipath-fabric axis; the default empty axis reproduces the
  /// unipath sweep bit for bit. Fabric points are appended AFTER every
  /// unipath point (task order, seeds, and output of the unipath prefix
  /// are unchanged by adding fabrics) and expand over {radices, patterns,
  /// bursts, modes, lanes, path_policies, faults, rates} — the credit
  /// axis is skipped (multipath fabrics are credit-less).
  std::vector<FabricSpec> fabrics;
  /// Path-selection axis for the fabric points (unipath points have no
  /// path choice and ignore it). PathPolicy::kLooping needs a fixed
  /// permutation and is rejected here — sweeps run random patterns.
  std::vector<sim::PathPolicy> path_policies = {sim::PathPolicy::kHash};
  /// Workload axis (workload/spec.hpp): open-loop synthetic, closed-loop
  /// request–reply, or trace replay. The default single open spec
  /// reproduces the pre-workload sweep bit for bit, and the axis is the
  /// OUTERMOST enumeration level: the entire grid of workloads[0] (the
  /// unipath block and its fabric block) is emitted before any point of
  /// workloads[1], so appending a workload value never perturbs the task
  /// indices, per-point seeds or output bytes of the existing prefix.
  std::vector<workload::Spec> workloads = {workload::Spec{}};
  int stages = 6;
  sim::SimConfig base;

  /// Number of grid points: the product of the axis sizes, except that
  /// a store-and-forward mode contributes one lane variant (lanes only
  /// shape the wormhole discipline) and a non-bursty pattern contributes
  /// one burst variant; plus the appended multipath-fabric block; the
  /// whole grid repeated once per workload-axis value.
  [[nodiscard]] std::size_t size() const noexcept;
};

/// One grid point with its simulation result.
struct SweepPoint {
  min::NetworkKind network = min::NetworkKind::kOmega;
  int radix = 2;  ///< the radix-axis value simulated
  sim::Pattern pattern = sim::Pattern::kUniform;
  sim::SwitchingMode mode = sim::SwitchingMode::kStoreAndForward;
  std::size_t lanes = 1;
  fault::FaultSpec fault;     ///< the fault-axis value simulated
  sim::BurstParams burst;     ///< the burst-axis value simulated
  sim::CreditConfig credits;  ///< the flow-control-axis value simulated
  double rate = 0.0;
  int stages = 0;
  std::uint64_t seed = 0;  ///< the derived per-point seed actually used
  /// Multipath-fabric family of the point (kUnipath for the classic
  /// single-path points of the networks axis).
  min::MultiPathKind fabric = min::MultiPathKind::kUnipath;
  /// The FabricSpec::paths parameter simulated (1 on unipath points).
  int paths = 1;
  sim::PathPolicy path_policy = sim::PathPolicy::kHash;
  /// The workload-axis value simulated (kOpen on the historic points).
  workload::Spec workload;
  /// Worst-case surviving path count over all (source, dest) pairs under
  /// this point's fault mask (multipath::min_path_diversity). Unipath
  /// points report full_access ? 1 : 0.
  std::uint64_t min_path_diversity = 1;
  /// Survivor-topology classification of (network, fault) — shared by
  /// every point of the pair, computed once per mask.
  min::FaultedClassification survivor;
  sim::SimResult result;
};

/// All grid points in deterministic order (network-major, then radix,
/// pattern, burst, mode, lanes, credits, fault, rate innermost).
struct SweepResult {
  SweepGrid grid;
  std::vector<SweepPoint> points;
};

/// Run every grid point, fanned across \p threads workers (0 = hardware
/// concurrency). One Engine — and with it one min::FlatWiring — is
/// precomputed per {network, radix, stages} and shared read-only across
/// all grid points, one FaultMask (+ survivor classification) per
/// {network, radix, fault spec} likewise, and each worker thread reuses one
/// sim::SimWorkspace payload-pool arena across all its points, so no
/// point pays topology re-derivation or pool re-allocation; each point
/// derives an independent seed from (grid.base.seed, index), so results
/// are identical for any thread count. When grid.base.sim_threads > 1
/// each point additionally shards its own cycle kernels (still
/// byte-identical — see SimConfig::sim_threads); the "0 = hardware"
/// default then divides the sweep fan-out by the per-point team size so
/// the two levels never oversubscribe the machine, while an explicit
/// \p threads is honored as given.
/// \throws std::invalid_argument on an empty axis, an out-of-range rate,
/// an invalid fault spec or burst parameter set, or a pattern/stage-count
/// mismatch (transpose needs even stages).
[[nodiscard]] SweepResult run_sweep(const SweepGrid& grid,
                                    std::size_t threads = 0);

}  // namespace mineq::exp
