/// \file report.hpp
/// \brief Render sweep results as CSV and JSON.
///
/// Both emitters are pure functions of the SweepResult with fixed-width
/// numeric formatting, so two runs producing the same results (e.g. the
/// same sweep at different thread counts) render byte-identical text.

#pragma once

#include <string>

#include "exp/sweep.hpp"

namespace mineq::exp {

/// One header line plus one row per grid point, in sweep order. Columns:
/// network,pattern,mode,lanes,rate,stages,seed,radix,fault_kind,fault_rate,
/// fault_seed,burst_on_off,burst_off_on,offered,injected,delivered,
/// throughput,acceptance,delivered_fraction,latency_mean,latency_p50,
/// latency_p99,latency_max,flits_injected,flits_delivered,flits_in_flight,
/// link_utilization,lane_occupancy,hol_blocking_cycles,
/// packets_dropped_faulted,packets_rerouted,packets_misdelivered,
/// flits_dropped_faulted,full_access,survivor_banyan,surviving_arcs,
/// stall_lost_arb,stall_downstream_full,stall_no_free_lane,
/// stall_zero_credits,stall_masked_arc,stall_top_cause,
/// latency_overflow_fraction,flow_count,flow_worst_p99,workload,
/// rr_window,offered_rate_effective,reply_latency_p99,
/// window_stall_cycles —
/// latency_p99 and hol_blocking_cycles make tail behavior visible in
/// sweep artifacts; flits_in_flight (+ flits_dropped_faulted under
/// faults) closes the flit conservation ledger per point; the
/// fault-resilience block (delivered_fraction = correctly-delivered /
/// injected, drop/reroute/misdelivery counters, full_access and
/// surviving_arcs from the survivor-topology classification) reports
/// degradation next to what is structurally left of the fabric. The
/// observability block (PR 9) splits hol_blocking_cycles by cause — the
/// five stall_* counters sum exactly to it on instrumented runs —
/// names the dominant cause, reports the clamped-latency fraction of
/// the histogram, and surfaces the per-flow recorder's worst p99. The
/// workload block (PR 10) names the source driving injection and its
/// request–reply window, and reports the honesty metrics of the seam:
/// offered_rate_effective below the configured rate with
/// window_stall_cycles > 0 is a closed-loop client self-throttling under
/// congestion, and reply_latency_p99 is the request→reply service tail.
[[nodiscard]] std::string sweep_csv(const SweepResult& sweep);

/// A JSON object {"stages": ..., "points": [...]} with one object per
/// grid point carrying the same fields as the CSV.
[[nodiscard]] std::string sweep_json(const SweepResult& sweep);

/// Write \p content to \p path, replacing any existing file.
/// \throws std::runtime_error if the file cannot be written.
void write_text_file(const std::string& path, const std::string& content);

}  // namespace mineq::exp
