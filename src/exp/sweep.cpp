#include "exp/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>

#include "min/kary.hpp"
#include "multipath/diversity.hpp"
#include "sim/fabric.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace mineq::exp {

std::size_t SweepGrid::size() const noexcept {
  // Store-and-forward ignores the lane axis, so it contributes a single
  // lane variant per mode instead of the full axis.
  std::size_t mode_lane_variants = 0;
  for (const sim::SwitchingMode mode : modes) {
    mode_lane_variants +=
        mode == sim::SwitchingMode::kStoreAndForward ? 1 : lane_counts.size();
  }
  // Only the bursty pattern consumes the modulator, so every other
  // pattern contributes a single burst variant.
  std::size_t pattern_burst_variants = 0;
  for (const sim::Pattern pattern : patterns) {
    pattern_burst_variants +=
        pattern == sim::Pattern::kBursty ? bursts.size() : 1;
  }
  const std::size_t unipath_points =
      networks.size() * radices.size() * pattern_burst_variants *
      mode_lane_variants * credits.size() * faults.size() * rates.size();
  // The appended multipath block skips the credit axis (fabrics are
  // credit-less) and expands the path-policy axis instead.
  const std::size_t fabric_points =
      fabrics.size() * radices.size() * pattern_burst_variants *
      mode_lane_variants * path_policies.size() * faults.size() *
      rates.size();
  // The workload axis is outermost: the whole grid repeats per value.
  return (unipath_points + fabric_points) * workloads.size();
}

namespace {

void validate_grid(const SweepGrid& grid) {
  // The networks axis may be empty when a fabric axis is present — a
  // pure multipath sweep is legitimate.
  if ((grid.networks.empty() && grid.fabrics.empty()) ||
      grid.radices.empty() || grid.patterns.empty() || grid.modes.empty() ||
      grid.lane_counts.empty() || grid.faults.empty() ||
      grid.bursts.empty() || grid.credits.empty() || grid.rates.empty() ||
      grid.workloads.empty()) {
    throw std::invalid_argument("run_sweep: every grid axis needs >= 1 value");
  }
  for (const workload::Spec& spec : grid.workloads) {
    spec.validate();
  }
  if (grid.stages < 2) {
    throw std::invalid_argument("run_sweep: need at least 2 stages");
  }
  for (const int radix : grid.radices) {
    if (radix < 2 || radix > 16) {
      throw std::invalid_argument(
          "run_sweep: radix must be within [2, 16], got " +
          std::to_string(radix));
    }
    if (radix == 2) continue;
    for (const min::NetworkKind kind : grid.networks) {
      if (!min::kary_network_supported(kind)) {
        throw std::invalid_argument(
            "run_sweep: " + min::network_name(kind) +
            " has no radix-" + std::to_string(radix) +
            " construction (radix > 2 supports omega, flip, baseline)");
      }
    }
  }
  // The fixed parameters are checked once up front (the simulators would
  // reject them too, but only after the grid fanned out); the swept axes
  // override injection_rate, lanes, burst and fault per point, so those
  // are checked per axis value below.
  grid.base.validate();
  for (const double rate : grid.rates) {
    // NaN must be caught here: it passes both comparisons below, and a
    // SimConfig::validate() throw later inside a parallel_for worker
    // would terminate the process instead of reporting cleanly.
    if (!std::isfinite(rate) || rate < 0.0 || rate > 1.0) {
      throw std::invalid_argument(
          "run_sweep: injection rate must be finite and within [0,1]");
    }
  }
  for (const std::size_t lanes : grid.lane_counts) {
    if (lanes == 0) {
      throw std::invalid_argument("run_sweep: lane count must be positive");
    }
  }
  for (const fault::FaultSpec& spec : grid.faults) {
    spec.validate();
  }
  for (const sim::BurstParams& burst : grid.bursts) {
    burst.validate();
  }
  // A credit config's validity depends on the mode/lane combination it
  // will run under (wormhole checks the SL->VL map against the lane
  // count), so each axis value is checked against every combination the
  // grid will pair it with.
  for (const sim::CreditConfig& cc : grid.credits) {
    for (const sim::SwitchingMode mode : grid.modes) {
      if (mode == sim::SwitchingMode::kWormhole) {
        for (const std::size_t lanes : grid.lane_counts) {
          cc.validate(mode, lanes);
        }
      } else {
        cc.validate(mode, grid.base.lanes);
      }
    }
  }
  for (const sim::Pattern pattern : grid.patterns) {
    if (pattern == sim::Pattern::kTranspose && grid.stages % 2 != 0) {
      throw std::invalid_argument(
          "run_sweep: transpose traffic needs an even stage count");
    }
  }
  if (!grid.fabrics.empty()) {
    if (grid.path_policies.empty()) {
      throw std::invalid_argument(
          "run_sweep: the fabric axis needs >= 1 path policy");
    }
    for (const sim::PathPolicy policy : grid.path_policies) {
      if (policy == sim::PathPolicy::kLooping) {
        throw std::invalid_argument(
            "run_sweep: the looping policy needs a fixed permutation and "
            "cannot be swept (use hash or adaptive)");
      }
    }
    for (const FabricSpec& spec : grid.fabrics) {
      if (spec.kind == min::MultiPathKind::kUnipath) {
        throw std::invalid_argument(
            "run_sweep: put single-path networks on the networks axis, "
            "not the fabrics axis");
      }
      for (const int radix : grid.radices) {
        if (spec.kind != min::MultiPathKind::kBenes && radix > 2 &&
            !min::kary_network_supported(spec.base)) {
          throw std::invalid_argument(
              "run_sweep: " + min::network_name(spec.base) + " has no radix-" +
              std::to_string(radix) + " construction to build a " +
              min::multipath_kind_name(spec.kind) + " fabric on");
        }
        if (spec.kind == min::MultiPathKind::kDilated &&
            (spec.paths < 2 || radix * spec.paths > 64)) {
          throw std::invalid_argument(
              "run_sweep: dilation must be >= 2 with radix * dilation <= 64");
        }
        if (spec.kind == min::MultiPathKind::kReplicated && spec.paths < 2) {
          throw std::invalid_argument(
              "run_sweep: a replicated fabric needs >= 2 planes");
        }
      }
    }
  }
}

/// Materialize one fabric-axis value at one radix.
min::MultiPathWiring build_fabric(const FabricSpec& spec, int stages,
                                  int radix) {
  switch (spec.kind) {
    case min::MultiPathKind::kBenes:
      return min::MultiPathWiring::benes(stages, radix);
    case min::MultiPathKind::kDilated:
      return min::MultiPathWiring::dilated(spec.base, stages, radix,
                                           spec.paths);
    case min::MultiPathKind::kReplicated:
      return min::MultiPathWiring::replicated(spec.base, stages, radix,
                                              spec.paths);
    case min::MultiPathKind::kUnipath:
      break;  // rejected by validate_grid
  }
  throw std::invalid_argument("run_sweep: unsupported fabric kind");
}

/// One fault-axis value materialized against one network: the mask the
/// simulators consume and the survivor classification every point of the
/// pair reports.
struct MaterializedFault {
  fault::FaultMask mask;
  min::FaultedClassification survivor;
  /// Worst-case surviving path count under the mask (unipath engines:
  /// full_access ? 1 : 0).
  std::uint64_t diversity = 1;
};

}  // namespace

SweepResult run_sweep(const SweepGrid& grid, std::size_t threads) {
  validate_grid(grid);

  // One engine — and with it one min::FlatWiring and one routing
  // schedule — per {network, radix, stages}, built once here and shared
  // read-only by every grid point that simulates that fabric
  // (Engine::run is const and thread-safe). No per-point topology work
  // remains: a point only touches its own RNG streams and payload pools.
  // Radix 2 builds through the binary path (byte-identical to the
  // pre-radix-axis sweep); radices > 2 flatten the k-ary constructions.
  const std::size_t radix_count = grid.radices.size();
  std::vector<std::unique_ptr<sim::Engine>> engines;
  engines.reserve(grid.networks.size() * radix_count);
  for (const min::NetworkKind kind : grid.networks) {
    for (const int radix : grid.radices) {
      if (radix == 2) {
        engines.push_back(std::make_unique<sim::Engine>(
            min::build_network(kind, grid.stages)));
      } else {
        engines.push_back(std::make_unique<sim::Engine>(
            min::build_kary_network(kind, grid.stages, radix)));
      }
    }
  }
  // Fabric-axis engines follow the unipath ones: one per {fabric spec,
  // radix}, indexed unipath_engines + spec_index * radix_count + ri.
  const std::size_t unipath_engines = engines.size();
  for (const FabricSpec& spec : grid.fabrics) {
    for (const int radix : grid.radices) {
      engines.push_back(std::make_unique<sim::Engine>(
          build_fabric(spec, grid.stages, radix)));
    }
  }

  // One fault mask + survivor classification per {network, radix, fault
  // spec}, shared read-only across the points of the triple. Multipath
  // engines additionally precompute the surviving-path floor their
  // points report.
  std::vector<std::vector<MaterializedFault>> faults(engines.size());
  for (std::size_t ei = 0; ei < engines.size(); ++ei) {
    faults[ei].reserve(grid.faults.size());
    for (const fault::FaultSpec& spec : grid.faults) {
      MaterializedFault mf;
      mf.mask = fault::build_fault_mask(engines[ei]->wiring(), spec);
      mf.survivor = min::classify_faulted(engines[ei]->wiring(), mf.mask);
      mf.diversity = engines[ei]->multipath()
                         ? multipath::min_path_diversity(engines[ei]->fabric(),
                                                         &mf.mask)
                         : (mf.survivor.full_access ? 1 : 0);
      faults[ei].push_back(std::move(mf));
    }
  }

  // Enumerate the grid once, network-major with rate innermost, so the
  // output order matches the declaration order of the axes.
  SweepResult sweep;
  sweep.grid = grid;
  sweep.points.resize(grid.size());
  struct Task {
    std::size_t engine_index;
    std::size_t fault_index;
    SweepPoint point;
  };
  std::vector<Task> tasks;
  tasks.reserve(grid.size());
  const util::SplitMix64 seed_root(grid.base.seed);
  // The workload axis is OUTERMOST: the whole grid of workloads[0] — the
  // unipath block followed by its fabric block — is enumerated before
  // any point of workloads[1], so appending a workload value leaves the
  // task indices (and with them the derived seeds and output bytes) of
  // the existing prefix untouched.
  for (const workload::Spec& wl : grid.workloads) {
    for (std::size_t ni = 0; ni < grid.networks.size(); ++ni) {
      for (std::size_t ri = 0; ri < radix_count; ++ri) {
        for (const sim::Pattern pattern : grid.patterns) {
          // Only the bursty pattern consumes the modulator parameters;
          // other patterns run once, recorded with the first burst
          // variant.
          const std::size_t burst_variants =
              pattern == sim::Pattern::kBursty ? grid.bursts.size() : 1;
          for (std::size_t bi = 0; bi < burst_variants; ++bi) {
            for (const sim::SwitchingMode mode : grid.modes) {
              // Lanes only shape the wormhole discipline;
              // store-and-forward points run once, recorded with the
              // first lane count.
              const std::size_t lane_variants =
                  mode == sim::SwitchingMode::kStoreAndForward
                      ? 1
                      : grid.lane_counts.size();
              for (std::size_t li = 0; li < lane_variants; ++li) {
                for (const sim::CreditConfig& cc : grid.credits) {
                  for (std::size_t fi = 0; fi < grid.faults.size(); ++fi) {
                    for (const double rate : grid.rates) {
                      Task task;
                      task.engine_index = ni * radix_count + ri;
                      task.fault_index = fi;
                      task.point.network = grid.networks[ni];
                      task.point.radix = grid.radices[ri];
                      task.point.pattern = pattern;
                      task.point.mode = mode;
                      task.point.lanes = grid.lane_counts[li];
                      task.point.fault = grid.faults[fi];
                      task.point.burst = grid.bursts[bi];
                      task.point.credits = cc;
                      task.point.rate = rate;
                      task.point.stages = grid.stages;
                      task.point.seed = seed_root.split(tasks.size()).next();
                      task.point.workload = wl;
                      task.point.survivor =
                          faults[task.engine_index][fi].survivor;
                      task.point.min_path_diversity =
                          faults[task.engine_index][fi].diversity;
                      tasks.push_back(std::move(task));
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
    // The multipath-fabric block rides strictly after the unipath grid:
    // unipath task indices — and with them the per-point seeds and every
    // byte of the unipath output — are unchanged by adding fabrics.
    for (std::size_t si = 0; si < grid.fabrics.size(); ++si) {
      const FabricSpec& spec = grid.fabrics[si];
      for (std::size_t ri = 0; ri < radix_count; ++ri) {
        for (const sim::Pattern pattern : grid.patterns) {
          const std::size_t burst_variants =
              pattern == sim::Pattern::kBursty ? grid.bursts.size() : 1;
          for (std::size_t bi = 0; bi < burst_variants; ++bi) {
            for (const sim::SwitchingMode mode : grid.modes) {
              const std::size_t lane_variants =
                  mode == sim::SwitchingMode::kStoreAndForward
                      ? 1
                      : grid.lane_counts.size();
              for (std::size_t li = 0; li < lane_variants; ++li) {
                for (const sim::PathPolicy policy : grid.path_policies) {
                  for (std::size_t fi = 0; fi < grid.faults.size(); ++fi) {
                    for (const double rate : grid.rates) {
                      Task task;
                      task.engine_index =
                          unipath_engines + si * radix_count + ri;
                      task.fault_index = fi;
                      // Record the base banyan the fabric composes (the
                      // Benes' front half is the radix-r baseline).
                      task.point.network =
                          spec.kind == min::MultiPathKind::kBenes
                              ? min::NetworkKind::kBaseline
                              : spec.base;
                      task.point.radix = grid.radices[ri];
                      task.point.pattern = pattern;
                      task.point.mode = mode;
                      task.point.lanes = grid.lane_counts[li];
                      task.point.fault = grid.faults[fi];
                      task.point.burst = grid.bursts[bi];
                      task.point.rate = rate;
                      task.point.stages = grid.stages;
                      task.point.seed = seed_root.split(tasks.size()).next();
                      task.point.workload = wl;
                      task.point.fabric = spec.kind;
                      task.point.paths = spec.paths;
                      task.point.path_policy = policy;
                      task.point.survivor =
                          faults[task.engine_index][fi].survivor;
                      task.point.min_path_diversity =
                          faults[task.engine_index][fi].diversity;
                      tasks.push_back(std::move(task));
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }

  // Two-level parallelism budget: when each point shards its own cycle
  // kernels over sim_threads workers (the megafabric driver), the sweep
  // fan-out must shrink so the product stays within the machine —
  // otherwise an 8-core host asked for 8 sweep workers x 8 sim threads
  // would thrash 64 runnable threads. An explicit sweep thread count is
  // honored as given (the caller owns the budget); only the "0 =
  // hardware" default is divided by the per-point team size.
  if (threads == 0 && grid.base.sim_threads > 1) {
    const std::size_t cores = std::thread::hardware_concurrency();
    threads = std::max<std::size_t>(
        1, (cores == 0 ? 1 : cores) / grid.base.sim_threads);
  }
  util::parallel_for(
      0, tasks.size(),
      [&](std::size_t index) {
        // One payload-pool arena per worker thread, reused across every
        // point the worker runs (pools are re-shaped, not re-allocated;
        // results are byte-identical with or without it).
        static thread_local sim::SimWorkspace workspace;
        Task& task = tasks[index];
        sim::SimConfig config = grid.base;
        config.injection_rate = task.point.rate;
        config.mode = task.point.mode;
        config.lanes = task.point.lanes;
        config.burst = task.point.burst;
        config.credits = task.point.credits;
        config.path_policy = task.point.path_policy;
        config.workload = task.point.workload;
        config.seed = task.point.seed;
        const fault::FaultMask& mask =
            faults[task.engine_index][task.fault_index].mask;
        task.point.result = engines[task.engine_index]->run(
            task.point.pattern, config, &mask, &workspace);
        sweep.points[index] = std::move(task.point);
      },
      threads);
  return sweep;
}

}  // namespace mineq::exp
