#include "exp/sweep.hpp"

#include <memory>
#include <stdexcept>

#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace mineq::exp {

std::size_t SweepGrid::size() const noexcept {
  // Store-and-forward ignores the lane axis, so it contributes a single
  // lane variant per mode instead of the full axis.
  std::size_t mode_lane_variants = 0;
  for (const sim::SwitchingMode mode : modes) {
    mode_lane_variants +=
        mode == sim::SwitchingMode::kStoreAndForward ? 1 : lane_counts.size();
  }
  return networks.size() * patterns.size() * mode_lane_variants *
         rates.size();
}

namespace {

void validate_grid(const SweepGrid& grid) {
  if (grid.networks.empty() || grid.patterns.empty() || grid.modes.empty() ||
      grid.lane_counts.empty() || grid.rates.empty()) {
    throw std::invalid_argument("run_sweep: every grid axis needs >= 1 value");
  }
  if (grid.stages < 2) {
    throw std::invalid_argument("run_sweep: need at least 2 stages");
  }
  for (const double rate : grid.rates) {
    if (rate < 0.0 || rate > 1.0) {
      throw std::invalid_argument("run_sweep: injection rate outside [0,1]");
    }
  }
  for (const std::size_t lanes : grid.lane_counts) {
    if (lanes == 0) {
      throw std::invalid_argument("run_sweep: lane count must be positive");
    }
  }
  for (const sim::Pattern pattern : grid.patterns) {
    if (pattern == sim::Pattern::kTranspose && grid.stages % 2 != 0) {
      throw std::invalid_argument(
          "run_sweep: transpose traffic needs an even stage count");
    }
  }
}

}  // namespace

SweepResult run_sweep(const SweepGrid& grid, std::size_t threads) {
  validate_grid(grid);

  // One engine per network kind, shared read-only by all tasks
  // (Engine::run is const and thread-safe).
  std::vector<std::unique_ptr<sim::Engine>> engines;
  engines.reserve(grid.networks.size());
  for (const min::NetworkKind kind : grid.networks) {
    engines.push_back(std::make_unique<sim::Engine>(
        min::build_network(kind, grid.stages)));
  }

  // Enumerate the grid once, network-major with rate innermost, so the
  // output order matches the declaration order of the axes.
  SweepResult sweep;
  sweep.grid = grid;
  sweep.points.resize(grid.size());
  struct Task {
    std::size_t engine_index;
    SweepPoint point;
  };
  std::vector<Task> tasks;
  tasks.reserve(grid.size());
  const util::SplitMix64 seed_root(grid.base.seed);
  for (std::size_t ni = 0; ni < grid.networks.size(); ++ni) {
    for (const sim::Pattern pattern : grid.patterns) {
      for (const sim::SwitchingMode mode : grid.modes) {
        // Lanes only shape the wormhole discipline; store-and-forward
        // points run once, recorded with the first lane count.
        const std::size_t lane_variants =
            mode == sim::SwitchingMode::kStoreAndForward
                ? 1
                : grid.lane_counts.size();
        for (std::size_t li = 0; li < lane_variants; ++li) {
          const std::size_t lanes = grid.lane_counts[li];
          for (const double rate : grid.rates) {
            Task task;
            task.engine_index = ni;
            task.point.network = grid.networks[ni];
            task.point.pattern = pattern;
            task.point.mode = mode;
            task.point.lanes = lanes;
            task.point.rate = rate;
            task.point.stages = grid.stages;
            task.point.seed = seed_root.split(tasks.size()).next();
            tasks.push_back(std::move(task));
          }
        }
      }
    }
  }

  util::parallel_for(
      0, tasks.size(),
      [&](std::size_t index) {
        Task& task = tasks[index];
        sim::SimConfig config = grid.base;
        config.injection_rate = task.point.rate;
        config.mode = task.point.mode;
        config.lanes = task.point.lanes;
        config.seed = task.point.seed;
        task.point.result = engines[task.engine_index]->run(
            task.point.pattern, config);
        sweep.points[index] = std::move(task.point);
      },
      threads);
  return sweep;
}

}  // namespace mineq::exp
