#include "exp/sweep.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace mineq::exp {

std::size_t SweepGrid::size() const noexcept {
  // Store-and-forward ignores the lane axis, so it contributes a single
  // lane variant per mode instead of the full axis.
  std::size_t mode_lane_variants = 0;
  for (const sim::SwitchingMode mode : modes) {
    mode_lane_variants +=
        mode == sim::SwitchingMode::kStoreAndForward ? 1 : lane_counts.size();
  }
  return networks.size() * patterns.size() * mode_lane_variants *
         rates.size();
}

namespace {

void validate_grid(const SweepGrid& grid) {
  if (grid.networks.empty() || grid.patterns.empty() || grid.modes.empty() ||
      grid.lane_counts.empty() || grid.rates.empty()) {
    throw std::invalid_argument("run_sweep: every grid axis needs >= 1 value");
  }
  if (grid.stages < 2) {
    throw std::invalid_argument("run_sweep: need at least 2 stages");
  }
  // The fixed parameters are checked once up front (the simulators would
  // reject them too, but only after the grid fanned out); the swept axes
  // override injection_rate and lanes per point, so those are checked
  // per axis value below.
  grid.base.validate();
  for (const double rate : grid.rates) {
    // NaN must be caught here: it passes both comparisons below, and a
    // SimConfig::validate() throw later inside a parallel_for worker
    // would terminate the process instead of reporting cleanly.
    if (!std::isfinite(rate) || rate < 0.0 || rate > 1.0) {
      throw std::invalid_argument(
          "run_sweep: injection rate must be finite and within [0,1]");
    }
  }
  for (const std::size_t lanes : grid.lane_counts) {
    if (lanes == 0) {
      throw std::invalid_argument("run_sweep: lane count must be positive");
    }
  }
  for (const sim::Pattern pattern : grid.patterns) {
    if (pattern == sim::Pattern::kTranspose && grid.stages % 2 != 0) {
      throw std::invalid_argument(
          "run_sweep: transpose traffic needs an even stage count");
    }
  }
}

}  // namespace

SweepResult run_sweep(const SweepGrid& grid, std::size_t threads) {
  validate_grid(grid);

  // One engine — and with it one min::FlatWiring and one routing
  // schedule — per {network, stages}, built once here and shared
  // read-only by every grid point that simulates that network
  // (Engine::run is const and thread-safe). No per-point topology work
  // remains: a point only touches its own RNG streams and payload pools.
  std::vector<std::unique_ptr<sim::Engine>> engines;
  engines.reserve(grid.networks.size());
  for (const min::NetworkKind kind : grid.networks) {
    engines.push_back(std::make_unique<sim::Engine>(
        min::build_network(kind, grid.stages)));
  }

  // Enumerate the grid once, network-major with rate innermost, so the
  // output order matches the declaration order of the axes.
  SweepResult sweep;
  sweep.grid = grid;
  sweep.points.resize(grid.size());
  struct Task {
    std::size_t engine_index;
    SweepPoint point;
  };
  std::vector<Task> tasks;
  tasks.reserve(grid.size());
  const util::SplitMix64 seed_root(grid.base.seed);
  for (std::size_t ni = 0; ni < grid.networks.size(); ++ni) {
    for (const sim::Pattern pattern : grid.patterns) {
      for (const sim::SwitchingMode mode : grid.modes) {
        // Lanes only shape the wormhole discipline; store-and-forward
        // points run once, recorded with the first lane count.
        const std::size_t lane_variants =
            mode == sim::SwitchingMode::kStoreAndForward
                ? 1
                : grid.lane_counts.size();
        for (std::size_t li = 0; li < lane_variants; ++li) {
          const std::size_t lanes = grid.lane_counts[li];
          for (const double rate : grid.rates) {
            Task task;
            task.engine_index = ni;
            task.point.network = grid.networks[ni];
            task.point.pattern = pattern;
            task.point.mode = mode;
            task.point.lanes = lanes;
            task.point.rate = rate;
            task.point.stages = grid.stages;
            task.point.seed = seed_root.split(tasks.size()).next();
            tasks.push_back(std::move(task));
          }
        }
      }
    }
  }

  util::parallel_for(
      0, tasks.size(),
      [&](std::size_t index) {
        Task& task = tasks[index];
        sim::SimConfig config = grid.base;
        config.injection_rate = task.point.rate;
        config.mode = task.point.mode;
        config.lanes = task.point.lanes;
        config.seed = task.point.seed;
        task.point.result = engines[task.engine_index]->run(
            task.point.pattern, config);
        sweep.points[index] = std::move(task.point);
      },
      threads);
  return sweep;
}

}  // namespace mineq::exp
