#include "exp/sweep.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>

#include "min/kary.hpp"

#include "sim/fabric.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace mineq::exp {

std::size_t SweepGrid::size() const noexcept {
  // Store-and-forward ignores the lane axis, so it contributes a single
  // lane variant per mode instead of the full axis.
  std::size_t mode_lane_variants = 0;
  for (const sim::SwitchingMode mode : modes) {
    mode_lane_variants +=
        mode == sim::SwitchingMode::kStoreAndForward ? 1 : lane_counts.size();
  }
  // Only the bursty pattern consumes the modulator, so every other
  // pattern contributes a single burst variant.
  std::size_t pattern_burst_variants = 0;
  for (const sim::Pattern pattern : patterns) {
    pattern_burst_variants +=
        pattern == sim::Pattern::kBursty ? bursts.size() : 1;
  }
  return networks.size() * radices.size() * pattern_burst_variants *
         mode_lane_variants * credits.size() * faults.size() * rates.size();
}

namespace {

void validate_grid(const SweepGrid& grid) {
  if (grid.networks.empty() || grid.radices.empty() ||
      grid.patterns.empty() || grid.modes.empty() ||
      grid.lane_counts.empty() || grid.faults.empty() ||
      grid.bursts.empty() || grid.credits.empty() || grid.rates.empty()) {
    throw std::invalid_argument("run_sweep: every grid axis needs >= 1 value");
  }
  if (grid.stages < 2) {
    throw std::invalid_argument("run_sweep: need at least 2 stages");
  }
  for (const int radix : grid.radices) {
    if (radix < 2 || radix > 16) {
      throw std::invalid_argument(
          "run_sweep: radix must be within [2, 16], got " +
          std::to_string(radix));
    }
    if (radix == 2) continue;
    for (const min::NetworkKind kind : grid.networks) {
      if (!min::kary_network_supported(kind)) {
        throw std::invalid_argument(
            "run_sweep: " + min::network_name(kind) +
            " has no radix-" + std::to_string(radix) +
            " construction (radix > 2 supports omega, flip, baseline)");
      }
    }
  }
  // The fixed parameters are checked once up front (the simulators would
  // reject them too, but only after the grid fanned out); the swept axes
  // override injection_rate, lanes, burst and fault per point, so those
  // are checked per axis value below.
  grid.base.validate();
  for (const double rate : grid.rates) {
    // NaN must be caught here: it passes both comparisons below, and a
    // SimConfig::validate() throw later inside a parallel_for worker
    // would terminate the process instead of reporting cleanly.
    if (!std::isfinite(rate) || rate < 0.0 || rate > 1.0) {
      throw std::invalid_argument(
          "run_sweep: injection rate must be finite and within [0,1]");
    }
  }
  for (const std::size_t lanes : grid.lane_counts) {
    if (lanes == 0) {
      throw std::invalid_argument("run_sweep: lane count must be positive");
    }
  }
  for (const fault::FaultSpec& spec : grid.faults) {
    spec.validate();
  }
  for (const sim::BurstParams& burst : grid.bursts) {
    burst.validate();
  }
  // A credit config's validity depends on the mode/lane combination it
  // will run under (wormhole checks the SL->VL map against the lane
  // count), so each axis value is checked against every combination the
  // grid will pair it with.
  for (const sim::CreditConfig& cc : grid.credits) {
    for (const sim::SwitchingMode mode : grid.modes) {
      if (mode == sim::SwitchingMode::kWormhole) {
        for (const std::size_t lanes : grid.lane_counts) {
          cc.validate(mode, lanes);
        }
      } else {
        cc.validate(mode, grid.base.lanes);
      }
    }
  }
  for (const sim::Pattern pattern : grid.patterns) {
    if (pattern == sim::Pattern::kTranspose && grid.stages % 2 != 0) {
      throw std::invalid_argument(
          "run_sweep: transpose traffic needs an even stage count");
    }
  }
}

/// One fault-axis value materialized against one network: the mask the
/// simulators consume and the survivor classification every point of the
/// pair reports.
struct MaterializedFault {
  fault::FaultMask mask;
  min::FaultedClassification survivor;
};

}  // namespace

SweepResult run_sweep(const SweepGrid& grid, std::size_t threads) {
  validate_grid(grid);

  // One engine — and with it one min::FlatWiring and one routing
  // schedule — per {network, radix, stages}, built once here and shared
  // read-only by every grid point that simulates that fabric
  // (Engine::run is const and thread-safe). No per-point topology work
  // remains: a point only touches its own RNG streams and payload pools.
  // Radix 2 builds through the binary path (byte-identical to the
  // pre-radix-axis sweep); radices > 2 flatten the k-ary constructions.
  const std::size_t radix_count = grid.radices.size();
  std::vector<std::unique_ptr<sim::Engine>> engines;
  engines.reserve(grid.networks.size() * radix_count);
  for (const min::NetworkKind kind : grid.networks) {
    for (const int radix : grid.radices) {
      if (radix == 2) {
        engines.push_back(std::make_unique<sim::Engine>(
            min::build_network(kind, grid.stages)));
      } else {
        engines.push_back(std::make_unique<sim::Engine>(
            min::build_kary_network(kind, grid.stages, radix)));
      }
    }
  }

  // One fault mask + survivor classification per {network, radix, fault
  // spec}, shared read-only across the points of the triple.
  std::vector<std::vector<MaterializedFault>> faults(engines.size());
  for (std::size_t ei = 0; ei < engines.size(); ++ei) {
    faults[ei].reserve(grid.faults.size());
    for (const fault::FaultSpec& spec : grid.faults) {
      MaterializedFault mf;
      mf.mask = fault::build_fault_mask(engines[ei]->wiring(), spec);
      mf.survivor = min::classify_faulted(engines[ei]->wiring(), mf.mask);
      faults[ei].push_back(std::move(mf));
    }
  }

  // Enumerate the grid once, network-major with rate innermost, so the
  // output order matches the declaration order of the axes.
  SweepResult sweep;
  sweep.grid = grid;
  sweep.points.resize(grid.size());
  struct Task {
    std::size_t engine_index;
    std::size_t fault_index;
    SweepPoint point;
  };
  std::vector<Task> tasks;
  tasks.reserve(grid.size());
  const util::SplitMix64 seed_root(grid.base.seed);
  for (std::size_t ni = 0; ni < grid.networks.size(); ++ni) {
    for (std::size_t ri = 0; ri < radix_count; ++ri) {
      for (const sim::Pattern pattern : grid.patterns) {
        // Only the bursty pattern consumes the modulator parameters;
        // other patterns run once, recorded with the first burst variant.
        const std::size_t burst_variants =
            pattern == sim::Pattern::kBursty ? grid.bursts.size() : 1;
        for (std::size_t bi = 0; bi < burst_variants; ++bi) {
          for (const sim::SwitchingMode mode : grid.modes) {
            // Lanes only shape the wormhole discipline; store-and-forward
            // points run once, recorded with the first lane count.
            const std::size_t lane_variants =
                mode == sim::SwitchingMode::kStoreAndForward
                    ? 1
                    : grid.lane_counts.size();
            for (std::size_t li = 0; li < lane_variants; ++li) {
              for (const sim::CreditConfig& cc : grid.credits) {
                for (std::size_t fi = 0; fi < grid.faults.size(); ++fi) {
                  for (const double rate : grid.rates) {
                    Task task;
                    task.engine_index = ni * radix_count + ri;
                    task.fault_index = fi;
                    task.point.network = grid.networks[ni];
                    task.point.radix = grid.radices[ri];
                    task.point.pattern = pattern;
                    task.point.mode = mode;
                    task.point.lanes = grid.lane_counts[li];
                    task.point.fault = grid.faults[fi];
                    task.point.burst = grid.bursts[bi];
                    task.point.credits = cc;
                    task.point.rate = rate;
                    task.point.stages = grid.stages;
                    task.point.seed = seed_root.split(tasks.size()).next();
                    task.point.survivor =
                        faults[task.engine_index][fi].survivor;
                    tasks.push_back(std::move(task));
                  }
                }
              }
            }
          }
        }
      }
    }
  }

  util::parallel_for(
      0, tasks.size(),
      [&](std::size_t index) {
        // One payload-pool arena per worker thread, reused across every
        // point the worker runs (pools are re-shaped, not re-allocated;
        // results are byte-identical with or without it).
        static thread_local sim::SimWorkspace workspace;
        Task& task = tasks[index];
        sim::SimConfig config = grid.base;
        config.injection_rate = task.point.rate;
        config.mode = task.point.mode;
        config.lanes = task.point.lanes;
        config.burst = task.point.burst;
        config.credits = task.point.credits;
        config.seed = task.point.seed;
        const fault::FaultMask& mask =
            faults[task.engine_index][task.fault_index].mask;
        task.point.result = engines[task.engine_index]->run(
            task.point.pattern, config, &mask, &workspace);
        sweep.points[index] = std::move(task.point);
      },
      threads);
  return sweep;
}

}  // namespace mineq::exp
