#include "exp/report.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "util/format.hpp"
#include "workload/spec.hpp"

namespace mineq::exp {

namespace {

/// Semicolon-joined decimal list (CSV cells cannot hold commas); empty
/// vectors render as the empty string.
std::string join_unsigned(const std::vector<unsigned>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ';';
    out += std::to_string(values[i]);
  }
  return out;
}

std::string join_stat_means(const std::vector<sim::RunningStats>& stats,
                            int digits) {
  std::string out;
  for (std::size_t i = 0; i < stats.size(); ++i) {
    if (i > 0) out += ';';
    out += util::fixed(stats[i].mean(), digits);
  }
  return out;
}

/// The per-point scalar fields shared by both emitters, as (name, value)
/// strings with deterministic formatting.
std::vector<std::pair<std::string, std::string>> point_fields(
    const SweepPoint& p) {
  const sim::SimResult& r = p.result;
  return {
      {"network", min::network_token(p.network)},
      {"pattern", sim::pattern_name(p.pattern)},
      {"mode", sim::switching_mode_name(p.mode)},
      {"lanes", std::to_string(p.lanes)},
      {"rate", util::fixed(p.rate, 4)},
      {"stages", std::to_string(p.stages)},
      {"seed", std::to_string(p.seed)},
      {"radix", std::to_string(p.radix)},
      {"fabric", min::multipath_kind_name(p.fabric)},
      {"paths", std::to_string(p.paths)},
      {"path_policy", sim::path_policy_name(p.path_policy)},
      {"fault_kind", fault::fault_kind_name(p.fault.kind)},
      {"fault_rate", util::fixed(p.fault.rate, 4)},
      {"fault_seed", std::to_string(p.fault.seed)},
      {"burst_on_off", util::fixed(p.burst.on_to_off, 6)},
      {"burst_off_on", util::fixed(p.burst.off_to_on, 6)},
      {"credits", p.credits.enabled ? "1" : "0"},
      {"credit_latency", std::to_string(p.credits.return_latency)},
      {"arbitration",
       std::string(sim::arbitration_policy_name(p.credits.arbitration))},
      {"vl_weights", join_unsigned(p.credits.weights)},
      {"sl_map", join_unsigned(p.credits.sl_map)},
      {"offered", std::to_string(r.offered)},
      {"injected", std::to_string(r.injected)},
      {"delivered", std::to_string(r.delivered)},
      {"throughput", util::fixed(r.throughput, 6)},
      {"acceptance", util::fixed(r.acceptance, 6)},
      {"delivered_fraction", util::fixed(r.delivered_fraction(), 6)},
      {"latency_mean", util::fixed(r.latency.mean(), 4)},
      {"latency_p50", util::fixed(r.latency_histogram.quantile(0.5), 1)},
      {"latency_p99", util::fixed(r.latency_histogram.quantile(0.99), 1)},
      {"latency_max", util::fixed(r.latency.max(), 1)},
      {"flits_injected", std::to_string(r.flits_injected)},
      {"flits_delivered", std::to_string(r.flits_delivered)},
      {"flits_in_flight", std::to_string(r.flits_in_flight)},
      {"link_utilization", util::fixed(r.link_utilization, 6)},
      {"lane_occupancy", util::fixed(r.lane_occupancy.mean(), 6)},
      {"vl_occupancy", join_stat_means(r.vl_occupancy, 6)},
      {"sl_latency_mean", join_stat_means(r.sl_latency, 4)},
      {"hol_blocking_cycles", std::to_string(r.hol_blocking_cycles)},
      {"credit_stall_cycles", std::to_string(r.credit_stall_cycles)},
      {"credit_violations", std::to_string(r.credit_violations)},
      {"packets_dropped_faulted", std::to_string(r.packets_dropped_faulted)},
      {"packets_rerouted", std::to_string(r.packets_rerouted)},
      {"packets_misdelivered", std::to_string(r.packets_misdelivered)},
      {"flits_dropped_faulted", std::to_string(r.flits_dropped_faulted)},
      // Multipath outputs: the fabric's path multiplicity, in-group path
      // re-selections under faults, and the precomputed surviving-path
      // floor (unipath points report full_access as 1/0 here).
      {"paths_available", std::to_string(r.paths_available)},
      {"path_reroutes", std::to_string(r.path_reroutes)},
      {"min_path_diversity", std::to_string(p.min_path_diversity)},
      // Survivor-topology classification, constant across the points of
      // one {network, fault spec} pair. Booleans render as 0/1 so both
      // emitters stay numeric.
      {"full_access", p.survivor.full_access ? "1" : "0"},
      {"survivor_banyan", p.survivor.banyan ? "1" : "0"},
      {"surviving_arcs", std::to_string(p.survivor.surviving_arcs)},
      // Observability outputs. The stall split sums exactly to
      // hol_blocking_cycles on kObs runs and is all-zero otherwise;
      // stall_top_cause is a cause token (never numeric, so the JSON
      // emitter quotes it without an exception entry; "top", not
      // "dominant" — that word contains the literal "nan" the artifact
      // poison checks reject). flow_worst_p99 is 0 unless per-flow
      // recording ran.
      {"stall_lost_arb", std::to_string(r.stall_lost_arbitration)},
      {"stall_downstream_full", std::to_string(r.stall_downstream_full)},
      {"stall_no_free_lane", std::to_string(r.stall_no_free_lane)},
      {"stall_zero_credits", std::to_string(r.stall_zero_credits)},
      {"stall_masked_arc", std::to_string(r.stall_masked_arc)},
      {"stall_top_cause", obs::stall_cause_name(r.dominant_stall_cause())},
      {"latency_overflow_fraction",
       util::fixed(r.latency_overflow_fraction(), 6)},
      {"flow_count", std::to_string(r.flows.flows.size())},
      {"flow_worst_p99", util::fixed(r.flows.worst_p99, 1)},
      // Workload block: the source kind driving injection and its
      // request–reply window, then the attempt rate the source ACTUALLY
      // presented — offered_rate_effective dropping below the configured
      // rate with window_stall_cycles > 0 is the closed-loop
      // self-throttling signature — and the request→reply service tail.
      {"workload", workload::kind_name(p.workload.kind)},
      {"rr_window", std::to_string(p.workload.rr_window)},
      {"offered_rate_effective", util::fixed(r.offered_rate_effective, 6)},
      {"reply_latency_p99",
       util::fixed(r.reply_latency_histogram.quantile(0.99), 1)},
      {"window_stall_cycles", std::to_string(r.window_stall_cycles)},
  };
}

bool is_number(const std::string& value) {
  if (value.empty()) return false;
  for (const char c : value) {
    if ((c < '0' || c > '9') && c != '.' && c != '-') return false;
  }
  return true;
}

}  // namespace

std::string sweep_csv(const SweepResult& sweep) {
  std::ostringstream out;
  bool header_done = false;
  for (const SweepPoint& point : sweep.points) {
    const auto fields = point_fields(point);
    if (!header_done) {
      for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i > 0) out << ',';
        out << fields[i].first;
      }
      out << '\n';
      header_done = true;
    }
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) out << ',';
      out << fields[i].second;
    }
    out << '\n';
  }
  return out.str();
}

std::string sweep_json(const SweepResult& sweep) {
  std::ostringstream out;
  out << "{\n  \"stages\": " << sweep.grid.stages
      << ",\n  \"points\": [\n";
  for (std::size_t pi = 0; pi < sweep.points.size(); ++pi) {
    const auto fields = point_fields(sweep.points[pi]);
    out << "    {";
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) out << ", ";
      out << '"' << fields[i].first << "\": ";
      // Tokens contain no characters needing JSON escapes. Seeds are
      // full 64-bit values beyond double precision, so a bare JSON
      // number would silently round them — emit as a string. The
      // semicolon-joined per-lane lists stay strings even when a single
      // entry happens to look numeric, so their JSON type is stable.
      if (is_number(fields[i].second) && fields[i].first != "seed" &&
          fields[i].first != "fault_seed" && fields[i].first != "vl_weights" &&
          fields[i].first != "sl_map" && fields[i].first != "vl_occupancy" &&
          fields[i].first != "sl_latency_mean") {
        out << fields[i].second;
      } else {
        out << '"' << fields[i].second << '"';
      }
    }
    out << (pi + 1 < sweep.points.size() ? "},\n" : "}\n");
  }
  out << "  ]\n}\n";
  return out.str();
}

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("write_text_file: cannot open " + path);
  }
  out << content;
  if (!out) {
    throw std::runtime_error("write_text_file: write failed for " + path);
  }
}

}  // namespace mineq::exp
