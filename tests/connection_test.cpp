#include "min/connection.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "min/independence.hpp"
#include "perm/standard.hpp"
#include "test_seed.hpp"
#include "util/rng.hpp"

namespace mineq::min {
namespace {

TEST(ConnectionTest, WidthZeroDefault) {
  const Connection c;
  EXPECT_EQ(c.width(), 0);
  EXPECT_EQ(c.cells(), 1U);
  EXPECT_EQ(c.f(0), 0U);
  EXPECT_EQ(c.g(0), 0U);
  EXPECT_TRUE(c.is_valid_stage());
  EXPECT_TRUE(c.has_parallel_arcs());
}

TEST(ConnectionTest, TableValidation) {
  EXPECT_NO_THROW(Connection({0, 1}, {1, 0}, 1));
  EXPECT_THROW((void)Connection({0}, {0, 1}, 1), std::invalid_argument);
  EXPECT_THROW((void)Connection({0, 2}, {0, 1}, 1), std::invalid_argument);
  EXPECT_THROW((void)Connection({0, 1}, {0, 1}, -1), std::invalid_argument);
}

TEST(ConnectionTest, FromFunctionsAndAccessors) {
  const Connection c = Connection::from_functions(
      2, [](std::uint32_t x) { return x; },
      [](std::uint32_t x) { return x ^ 1U; });
  EXPECT_EQ(c.f(2), 2U);
  EXPECT_EQ(c.g(2), 3U);
  EXPECT_EQ(c.children(1), (std::array<std::uint32_t, 2>{1, 0}));
  EXPECT_THROW((void)c.f(4), std::invalid_argument);
  EXPECT_TRUE(c.is_valid_stage());
  EXPECT_FALSE(c.has_parallel_arcs());
}

TEST(ConnectionTest, FromAffineValidatesShape) {
  const gf2::AffineMap square(gf2::Matrix::identity(2), 0);
  const gf2::AffineMap rect(gf2::Matrix(2, 3), 0);
  EXPECT_NO_THROW(Connection::from_affine(square, square));
  EXPECT_THROW((void)Connection::from_affine(square, rect), std::invalid_argument);
}

TEST(ConnectionTest, FromLinkPermutationIdentity) {
  // Identity wiring: cell x's links go straight to cell x.
  const Connection c =
      Connection::from_link_permutation(perm::Permutation(8));
  EXPECT_EQ(c.width(), 2);
  for (std::uint32_t x = 0; x < 4; ++x) {
    EXPECT_EQ(c.f(x), x);
    EXPECT_EQ(c.g(x), x);  // both ports land on the same cell
  }
  EXPECT_TRUE(c.has_parallel_arcs());
  EXPECT_TRUE(c.is_valid_stage());
}

TEST(ConnectionTest, FromLinkPermutationShuffle) {
  const Connection c = Connection::from_link_permutation(
      perm::perfect_shuffle(3).induced());
  // Shuffle: link (x1 x0 p) -> (x0 p x1); child cell = (x0, p).
  for (std::uint32_t x = 0; x < 4; ++x) {
    EXPECT_EQ(c.f(x), (x & 1U) << 1);
    EXPECT_EQ(c.g(x), ((x & 1U) << 1) | 1U);
  }
  EXPECT_TRUE(c.is_valid_stage());
  EXPECT_FALSE(c.has_parallel_arcs());
}

TEST(ConnectionTest, FromLinkPermutationValidation) {
  EXPECT_THROW((void)Connection::from_link_permutation(perm::Permutation(6)),
               std::invalid_argument);
  EXPECT_THROW((void)Connection::from_link_permutation(perm::Permutation(1)),
               std::invalid_argument);
}

TEST(ConnectionTest, InDegreeAndParents) {
  const Connection c({0, 0}, {1, 1}, 1);
  EXPECT_EQ(c.in_degree(0), 2U);
  EXPECT_EQ(c.in_degree(1), 2U);
  EXPECT_EQ(c.parents(0), (std::vector<std::uint32_t>{0, 1}));
  EXPECT_TRUE(c.is_valid_stage());
  const Connection bad({0, 0}, {0, 1}, 1);
  EXPECT_FALSE(bad.is_valid_stage());
  EXPECT_EQ(bad.in_degree(0), 3U);
}

TEST(ConnectionTest, VertexTypes) {
  // f constant 0, g constant 1: vertex 0 is (f,f), vertex 1 is (g,g).
  const Connection case2({0, 0}, {1, 1}, 1);
  const auto types2 = case2.vertex_types();
  EXPECT_EQ(types2[0], VertexType::kFF);
  EXPECT_EQ(types2[1], VertexType::kGG);
  const auto counts2 = case2.vertex_type_counts();
  EXPECT_EQ(counts2[0], 1U);  // FF
  EXPECT_EQ(counts2[1], 0U);  // FG
  EXPECT_EQ(counts2[2], 1U);  // GG
  EXPECT_EQ(counts2[3], 0U);  // bad

  // f identity, g = x^1: every vertex has one f-arc and one g-arc.
  const Connection case1({0, 1}, {1, 0}, 1);
  const auto counts1 = case1.vertex_type_counts();
  EXPECT_EQ(counts1[1], 2U);

  const Connection bad({0, 0}, {0, 1}, 1);
  EXPECT_EQ(bad.vertex_type_counts()[3], 2U);
}

TEST(ConnectionTest, SwappedExchangesRoles) {
  const Connection c({0, 1}, {1, 0}, 1);
  const Connection s = c.swapped();
  EXPECT_EQ(s.f_table(), c.g_table());
  EXPECT_EQ(s.g_table(), c.f_table());
}

TEST(ConnectionTest, RandomValidIsValid) {
  MINEQ_SEEDED_RNG(rng, 5);
  for (int w = 0; w <= 6; ++w) {
    const Connection c = Connection::random_valid(w, rng);
    EXPECT_TRUE(c.is_valid_stage()) << "w=" << w;
  }
}

TEST(ConnectionTest, RandomIndependentCase1Structure) {
  MINEQ_SEEDED_RNG(rng, 7);
  for (int w = 1; w <= 6; ++w) {
    const Connection c = Connection::random_independent_case1(w, rng);
    EXPECT_TRUE(c.is_valid_stage());
    EXPECT_EQ(classify_stage(c), StageCase::kCase1) << "w=" << w;
    // All vertices type (f,g).
    EXPECT_EQ(c.vertex_type_counts()[1], c.cells());
  }
}

TEST(ConnectionTest, RandomIndependentCase2Structure) {
  MINEQ_SEEDED_RNG(rng, 9);
  for (int w = 1; w <= 6; ++w) {
    const Connection c = Connection::random_independent_case2(w, rng);
    EXPECT_TRUE(c.is_valid_stage());
    EXPECT_EQ(classify_stage(c), StageCase::kCase2) << "w=" << w;
    const auto counts = c.vertex_type_counts();
    EXPECT_EQ(counts[0], c.cells() / 2);  // half (f,f)
    EXPECT_EQ(counts[2], c.cells() / 2);  // half (g,g)
  }
}

TEST(ConnectionTest, ReverseGenericInvertsArcs) {
  MINEQ_SEEDED_RNG(rng, 11);
  const Connection c = Connection::random_valid(4, rng);
  const Connection rev = c.reverse_generic();
  EXPECT_TRUE(rev.is_valid_stage());
  // y's parents in c == y's children in rev.
  for (std::uint32_t y = 0; y < c.cells(); ++y) {
    auto parents = c.parents(y);
    std::sort(parents.begin(), parents.end());
    std::array<std::uint32_t, 2> children = rev.children(y);
    std::sort(children.begin(), children.end());
    EXPECT_TRUE(std::equal(parents.begin(), parents.end(),
                           children.begin()));
  }
}

TEST(ConnectionTest, ReverseGenericRequiresValidStage) {
  const Connection bad({0, 0}, {0, 1}, 1);
  EXPECT_THROW((void)bad.reverse_generic(), std::invalid_argument);
}

TEST(ConnectionTest, StrListsAllCells) {
  const Connection c({0, 1}, {1, 0}, 1);
  const std::string s = c.str();
  EXPECT_NE(s.find("0: f -> 0, g -> 1"), std::string::npos);
  EXPECT_NE(s.find("1: f -> 1, g -> 0"), std::string::npos);
}

}  // namespace
}  // namespace mineq::min
