/// \file test_support.hpp
/// \brief Shared helpers for the mineq test suites.

#pragma once

#include <vector>

#include "min/mi_digraph.hpp"
#include "perm/permutation.hpp"
#include "util/rng.hpp"

namespace mineq::test {

/// A copy of \p g with every stage relabelled by an independent random
/// permutation — isomorphic to \p g by construction, but with arbitrary
/// (generally non-affine) cell labels.
inline min::MIDigraph scrambled_copy(const min::MIDigraph& g,
                                     util::SplitMix64& rng) {
  std::vector<perm::Permutation> maps;
  maps.reserve(static_cast<std::size_t>(g.stages()));
  for (int s = 0; s < g.stages(); ++s) {
    maps.push_back(perm::Permutation::random(g.cells_per_stage(), rng));
  }
  return g.relabelled(maps);
}

/// A random Banyan network built from independent connections: resample
/// until the Banyan property holds (Theorem 3 instances).
inline min::MIDigraph random_banyan_independent(int stages,
                                                util::SplitMix64& rng);

/// A random Banyan PIPID network (Section 4 instances).
inline min::MIDigraph random_banyan_pipid(int stages, util::SplitMix64& rng);

}  // namespace mineq::test

#include "min/banyan.hpp"
#include "min/networks.hpp"

namespace mineq::test {

inline min::MIDigraph random_banyan_independent(int stages,
                                                util::SplitMix64& rng) {
  for (;;) {
    min::MIDigraph g = min::random_independent_network(stages, rng);
    if (g.is_valid() && min::is_banyan(g)) return g;
  }
}

inline min::MIDigraph random_banyan_pipid(int stages,
                                          util::SplitMix64& rng) {
  for (;;) {
    min::MIDigraph g = min::random_pipid_network(stages, rng);
    if (min::is_banyan(g)) return g;
  }
}

/// A random Banyan independent-connection network whose stage cases follow
/// \p case2_pattern (true = case 2, false = case 1). Used when two
/// networks must share the same per-stage orientation structure, e.g. for
/// the straight-pairing affine isomorphism family.
inline min::MIDigraph random_banyan_independent_cases(
    int stages, const std::vector<bool>& case2_pattern,
    util::SplitMix64& rng) {
  const int w = stages - 1;
  for (;;) {
    std::vector<min::Connection> connections;
    for (int s = 0; s + 1 < stages; ++s) {
      connections.push_back(
          case2_pattern[static_cast<std::size_t>(s)]
              ? min::Connection::random_independent_case2(w, rng)
              : min::Connection::random_independent_case1(w, rng));
    }
    min::MIDigraph g(stages, std::move(connections));
    if (min::is_banyan(g)) return g;
  }
}

}  // namespace mineq::test
