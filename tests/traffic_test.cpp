#include "sim/traffic.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "test_seed.hpp"
#include "util/bitops.hpp"

namespace mineq::sim {
namespace {

TEST(TrafficTest, PatternNames) {
  EXPECT_EQ(pattern_name(Pattern::kUniform), "uniform");
  EXPECT_EQ(pattern_name(Pattern::kBitReversal), "bitrev");
  EXPECT_EQ(pattern_name(Pattern::kShuffle), "shuffle");
  EXPECT_EQ(pattern_name(Pattern::kTranspose), "transpose");
  EXPECT_EQ(pattern_name(Pattern::kComplement), "complement");
  EXPECT_EQ(pattern_name(Pattern::kHotSpot), "hotspot");
  EXPECT_EQ(pattern_name(Pattern::kBursty), "bursty");
  EXPECT_EQ(pattern_name(Pattern::kTornado), "tornado");
  EXPECT_EQ(pattern_name(Pattern::kDigitNeighbor), "digitneighbor");
  EXPECT_EQ(pattern_name(Pattern::kAllToAll), "alltoall");
}

TEST(TrafficTest, ParsePatternRoundTripsEveryName) {
  EXPECT_EQ(all_patterns().size(), 10U);
  for (const Pattern p : all_patterns()) {
    EXPECT_EQ(parse_pattern(pattern_name(p)), p) << pattern_name(p);
  }
  // The registry prefix is load-bearing: sweeps and CLIs enumerate it in
  // order, so new patterns must append, never reorder.
  EXPECT_EQ(all_patterns()[0], Pattern::kUniform);
  EXPECT_EQ(all_patterns()[6], Pattern::kBursty);
  EXPECT_EQ(all_patterns()[7], Pattern::kTornado);
}

TEST(TrafficTest, ParsePatternRejectsUnknownNames) {
  EXPECT_THROW((void)parse_pattern("bogus"), std::invalid_argument);
  EXPECT_THROW((void)parse_pattern("Uniform"), std::invalid_argument);
  EXPECT_THROW((void)parse_pattern(""), std::invalid_argument);
}

TEST(TrafficTest, DeterministicPatternsAsPermutations) {
  const auto bitrev = pattern_permutation(Pattern::kBitReversal, 4);
  EXPECT_EQ(bitrev(0b0001), 0b1000U);
  const auto shuffle = pattern_permutation(Pattern::kShuffle, 4);
  EXPECT_EQ(shuffle(0b1000), 0b0001U);
  const auto complement = pattern_permutation(Pattern::kComplement, 4);
  EXPECT_EQ(complement(0b1010), 0b0101U);
  const auto transpose = pattern_permutation(Pattern::kTranspose, 4);
  EXPECT_EQ(transpose(0b1101), 0b0111U);
}

TEST(TrafficTest, TransposeSwapsHalves) {
  const auto t = pattern_permutation(Pattern::kTranspose, 6);
  for (std::uint32_t s = 0; s < 64; ++s) {
    const std::uint32_t low = s & 0b111;
    const std::uint32_t high = s >> 3;
    EXPECT_EQ(t(s), (low << 3) | high);
  }
  EXPECT_THROW((void)pattern_permutation(Pattern::kTranspose, 5),
               std::invalid_argument);
}

// Constraint rejections must name the offending value and the constraint
// itself, so a failing sweep log is diagnosable without a debugger.
TEST(TrafficTest, TransposeRejectionNamesOffendingDigitCount) {
  try {
    (void)pattern_permutation(Pattern::kTranspose, 5);
    FAIL() << "odd digit count must be rejected";
  } catch (const std::invalid_argument& error) {
    EXPECT_STREQ(error.what(),
                 "transpose traffic needs an even digit count (it swaps the "
                 "high/low address halves), got n = 5");
  }
  try {
    (void)TrafficSource(Pattern::kTranspose, 3, util::SplitMix64(1));
    FAIL() << "odd digit count must be rejected";
  } catch (const std::invalid_argument& error) {
    EXPECT_STREQ(error.what(),
                 "TrafficSource: transpose traffic needs an even digit count "
                 "(it swaps the high/low address halves), got n = 3");
  }
}

TEST(TrafficTest, TornadoShiftsHalfSpin) {
  // d = (s + ceil(N/2) - 1) mod N; at N = 16 that is s + 7 mod 16.
  const auto t = pattern_permutation(Pattern::kTornado, 4);
  for (std::uint32_t s = 0; s < 16; ++s) {
    EXPECT_EQ(t(s), (s + 7) % 16);
  }
  // k-ary agreement at r = 3, n = 2: N = 9, shift = ceil(9/2) - 1 = 4.
  TrafficSource src(Pattern::kTornado, 2, 3, util::SplitMix64(1));
  for (std::uint32_t s = 0; s < 9; ++s) {
    EXPECT_EQ(src.destination(s), (s + 4) % 9);
  }
}

TEST(TrafficTest, DigitNeighborIncrementsEveryDigit) {
  // Binary: +1 mod 2 per bit is the complement.
  const auto t = pattern_permutation(Pattern::kDigitNeighbor, 4);
  for (std::uint32_t s = 0; s < 16; ++s) {
    EXPECT_EQ(t(s), ~s & 0xFU);
  }
  // Base 3, 2 digits: each digit advances independently mod 3.
  TrafficSource src(Pattern::kDigitNeighbor, 2, 3, util::SplitMix64(1));
  EXPECT_EQ(src.destination(0), 4U);   // 00 -> 11
  EXPECT_EQ(src.destination(8), 0U);   // 22 -> 00
  EXPECT_EQ(src.destination(5), 6U);   // 12 -> 20
}

TEST(TrafficTest, AllToAllPhasesThroughEveryPartner) {
  // The phase-shift collective: at phase p everyone sends to s + p, and
  // tick() advances p cyclically through 1..N-1 (never self).
  TrafficSource src(Pattern::kAllToAll, 3, util::SplitMix64(1));
  std::set<std::uint32_t> partners;
  for (int round = 0; round < 7; ++round) {
    const std::uint32_t d = src.destination(2);
    EXPECT_NE(d, 2U) << "a terminal never sends to itself";
    partners.insert(d);
    src.tick();
  }
  EXPECT_EQ(partners.size(), 7U) << "7 phases cover all 7 partners";
  // Phase wraps back to 1 after N - 1 ticks.
  EXPECT_EQ(src.destination(2), (2U + 1U) % 8U);
  // Not derivable as a single permutation (a different one every cycle).
  EXPECT_THROW((void)pattern_permutation(Pattern::kAllToAll, 3),
               std::invalid_argument);
}

TEST(TrafficTest, RandomPatternsRejectedAsPermutations) {
  EXPECT_THROW((void)pattern_permutation(Pattern::kUniform, 4),
               std::invalid_argument);
  EXPECT_THROW((void)pattern_permutation(Pattern::kHotSpot, 4),
               std::invalid_argument);
  EXPECT_THROW((void)pattern_permutation(Pattern::kBursty, 4),
               std::invalid_argument);
}

TEST(TrafficTest, BurstyDestinationsAreUniform) {
  SCOPED_TRACE(mineq::test::seed_trace());
  TrafficSource src(Pattern::kBursty, 3, mineq::test::seeded_rng(11));
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 400; ++i) {
    const std::uint32_t d = src.destination(0);
    EXPECT_LT(d, 8U);
    seen.insert(d);
  }
  EXPECT_EQ(seen.size(), 8U);
}

TEST(TrafficTest, BurstModulatorDutyCycleAndBursts) {
  SCOPED_TRACE(mineq::test::seed_trace());
  const std::size_t terminals = 64;
  BurstModulator mod(terminals, mineq::test::seeded_rng(13));
  const int cycles = 2000;
  std::uint64_t on_samples = 0;
  std::uint64_t transitions = 0;
  std::vector<bool> prev(terminals);
  for (std::size_t t = 0; t < terminals; ++t) prev[t] = mod.on(t);
  for (int c = 0; c < cycles; ++c) {
    mod.advance();
    for (std::size_t t = 0; t < terminals; ++t) {
      if (mod.on(t)) ++on_samples;
      if (mod.on(t) != prev[t]) ++transitions;
      prev[t] = mod.on(t);
    }
  }
  // Stationary duty cycle is 1/4; allow generous sampling noise.
  const double duty = static_cast<double>(on_samples) /
                      (static_cast<double>(cycles) * terminals);
  EXPECT_GT(duty, 0.18);
  EXPECT_LT(duty, 0.32);
  // Sojourns are multi-cycle (mean burst 8, mean idle 24), so state
  // changes must be far rarer than a per-cycle coin flip.
  EXPECT_LT(transitions, std::uint64_t{cycles} * terminals / 5);
  EXPECT_GT(transitions, 0U);
}

TEST(TrafficTest, BurstModulatorDeterministicGivenSeed) {
  BurstModulator a(16, util::SplitMix64(21));
  BurstModulator b(16, util::SplitMix64(21));
  for (int c = 0; c < 100; ++c) {
    a.advance();
    b.advance();
    for (std::size_t t = 0; t < 16; ++t) {
      ASSERT_EQ(a.on(t), b.on(t));
    }
  }
}

TEST(TrafficTest, SourceDeterministicPatternsIgnoreRng) {
  TrafficSource a(Pattern::kBitReversal, 4, util::SplitMix64(1));
  TrafficSource b(Pattern::kBitReversal, 4, util::SplitMix64(999));
  for (std::uint32_t s = 0; s < 16; ++s) {
    EXPECT_EQ(a.destination(s), b.destination(s));
    EXPECT_EQ(a.destination(s),
              static_cast<std::uint32_t>(util::reverse_bits(s, 4)));
  }
}

TEST(TrafficTest, UniformCoversSpace) {
  SCOPED_TRACE(mineq::test::seed_trace());
  TrafficSource src(Pattern::kUniform, 3, mineq::test::seeded_rng(5));
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 400; ++i) {
    const std::uint32_t d = src.destination(0);
    EXPECT_LT(d, 8U);
    seen.insert(d);
  }
  EXPECT_EQ(seen.size(), 8U);
}

TEST(TrafficTest, HotSpotBiasesTowardZero) {
  SCOPED_TRACE(mineq::test::seed_trace());
  TrafficSource src(Pattern::kHotSpot, 4, mineq::test::seeded_rng(7));
  int zeros = 0;
  const int draws = 4000;
  for (int i = 0; i < draws; ++i) {
    if (src.destination(3) == 0) ++zeros;
  }
  // Expected fraction ~ 0.25 + 0.75/16 ~ 0.297; uniform would be 1/16.
  EXPECT_GT(zeros, draws / 5);
  EXPECT_LT(zeros, draws / 2);
}

TEST(TrafficTest, ConstructionValidation) {
  EXPECT_THROW((void)TrafficSource(Pattern::kUniform, 0, util::SplitMix64(1)),
               std::invalid_argument);
  EXPECT_THROW((void)TrafficSource(Pattern::kTranspose, 3, util::SplitMix64(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace mineq::sim
