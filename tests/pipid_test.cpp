#include "min/pipid.hpp"

#include <gtest/gtest.h>

#include "min/banyan.hpp"
#include "min/independence.hpp"
#include "perm/standard.hpp"
#include "test_seed.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"

namespace mineq::min {
namespace {

TEST(PipidTest, StageInfoShuffle) {
  // sigma: theta(i) = i-1 mod n, so theta^{-1}(0) = 1 and theta(0) = n-1.
  const auto info = pipid_stage_info(perm::perfect_shuffle(4));
  EXPECT_EQ(info.k, 1);
  EXPECT_FALSE(info.degenerate);
  EXPECT_EQ(info.dropped_input_bit, 3);
}

TEST(PipidTest, StageInfoIdentityIsDegenerate) {
  const auto info = pipid_stage_info(perm::IndexPermutation::identity(4));
  EXPECT_EQ(info.k, 0);
  EXPECT_TRUE(info.degenerate);
}

TEST(PipidTest, StageInfoButterfly) {
  // beta_k: theta swaps 0 and k, so theta^{-1}(0) = k.
  for (int k = 1; k < 5; ++k) {
    const auto info = pipid_stage_info(perm::butterfly(5, k));
    EXPECT_EQ(info.k, k);
    EXPECT_FALSE(info.degenerate);
    EXPECT_EQ(info.dropped_input_bit, k);
  }
}

TEST(PipidTest, FormulaMatchesLinkPermutationDerivation) {
  // The paper's closed bit formula (Section 4) and the literal
  // "apply Lambda to the link labels" derivation coincide.
  MINEQ_SEEDED_RNG(rng, 101);
  for (int n = 1; n <= 8; ++n) {
    for (int trial = 0; trial < 10; ++trial) {
      const perm::IndexPermutation ip = perm::IndexPermutation::random(n, rng);
      EXPECT_EQ(connection_from_pipid(ip), connection_from_pipid_formula(ip))
          << "n=" << n << " " << ip.str();
    }
  }
}

TEST(PipidTest, NonDegeneratePipidConnectionsAreIndependent) {
  // The paper's central Section-4 claim at stage granularity.
  MINEQ_SEEDED_RNG(rng, 103);
  for (int n = 2; n <= 8; ++n) {
    for (int trial = 0; trial < 20; ++trial) {
      const perm::IndexPermutation ip = perm::IndexPermutation::random(n, rng);
      const Connection conn = connection_from_pipid_formula(ip);
      EXPECT_TRUE(is_independent(conn)) << ip.str();
      EXPECT_TRUE(conn.is_valid_stage());
      const auto info = pipid_stage_info(ip);
      if (info.degenerate) {
        EXPECT_TRUE(conn.has_parallel_arcs());
      } else {
        // f forces child bit k-1 to 0, g to 1 (cell-label indexing).
        for (std::uint32_t x = 0; x < conn.cells(); ++x) {
          EXPECT_EQ(util::get_bit(conn.f(x), info.k - 1), 0U);
          EXPECT_EQ(util::get_bit(conn.g(x), info.k - 1), 1U);
        }
        EXPECT_EQ(classify_stage(conn), StageCase::kCase2);
      }
    }
  }
}

TEST(PipidTest, DegenerateStageHasDoubleLinksEverywhere) {
  // Fig. 5: k = 0 means f == g on every cell.
  const Connection conn =
      connection_from_pipid_formula(perm::subshuffle(4, 3).inverse());
  // inverse_subshuffle(4,3): theta(i) = (i+1) mod 3 for i<3: theta(2)=0,
  // so k = 2 != 0 — not degenerate; use a permutation fixing 0 instead.
  const Connection degen = connection_from_pipid_formula(
      perm::IndexPermutation(perm::Permutation::from_cycles(4, {{1, 2, 3}})));
  for (std::uint32_t x = 0; x < degen.cells(); ++x) {
    EXPECT_EQ(degen.f(x), degen.g(x));
  }
  EXPECT_TRUE(degen.is_valid_stage());
  (void)conn;
}

TEST(PipidTest, NetworkFromPipidsValidation) {
  EXPECT_THROW((void)network_from_pipids({}), std::invalid_argument);
  // Width mismatch: 2 wirings -> 3 stages, but PIPIDs on 4 bits.
  std::vector<perm::IndexPermutation> seq = {perm::perfect_shuffle(4),
                                             perm::perfect_shuffle(4)};
  EXPECT_THROW((void)network_from_pipids(seq), std::invalid_argument);
}

TEST(PipidTest, OmegaStyleNetworkIsBanyan) {
  std::vector<perm::IndexPermutation> seq(3, perm::perfect_shuffle(4));
  const MIDigraph g = network_from_pipids(seq);
  EXPECT_EQ(g.stages(), 4);
  EXPECT_TRUE(is_banyan(g));
}

TEST(PipidTest, NetworkFromLinkPermutationsGeneral) {
  // Non-PIPID wiring (xor-translation) still builds a valid MI-digraph.
  std::vector<perm::Permutation> perms(3, perm::xor_translation(4, 0b0110));
  const MIDigraph g = network_from_link_permutations(perms);
  EXPECT_TRUE(g.is_valid());
  EXPECT_THROW((void)
      network_from_link_permutations({perm::Permutation(7)}),
      std::invalid_argument);
  EXPECT_THROW((void)network_from_link_permutations({}), std::invalid_argument);
}

TEST(PipidTest, XorTranslationConnectionIndependence) {
  // Link-level xor by t: children are x ^ (t>>1) with port flips; this is
  // affine with identity-ish linear part — still an independent
  // connection, though never a PIPID.
  const Connection conn = Connection::from_link_permutation(
      perm::xor_translation(4, 0b0110));
  EXPECT_TRUE(is_independent(conn));
}

}  // namespace
}  // namespace mineq::min
