/// \file wormhole_test.cpp
/// \brief Invariants of the flit-level wormhole discipline: flit
/// conservation, worm ordering (tail follows head), determinism, and the
/// latency crossover against store-and-forward at low load.

#include "sim/wormhole.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

#include "min/baseline.hpp"
#include "min/networks.hpp"
#include "sim/engine.hpp"
#include "sim/flit.hpp"

namespace mineq::sim {
namespace {

SimConfig wormhole_config() {
  SimConfig config;
  config.mode = SwitchingMode::kWormhole;
  config.packet_length = 4;
  config.lanes = 2;
  config.lane_depth = 4;
  config.warmup_cycles = 100;
  config.measure_cycles = 1000;
  config.injection_rate = 0.3;
  config.seed = 42;
  return config;
}

TEST(WormholeTest, ModeNamesRoundTrip) {
  EXPECT_EQ(switching_mode_name(SwitchingMode::kStoreAndForward), "saf");
  EXPECT_EQ(switching_mode_name(SwitchingMode::kWormhole), "wormhole");
  EXPECT_EQ(parse_switching_mode("saf"), SwitchingMode::kStoreAndForward);
  EXPECT_EQ(parse_switching_mode("store-and-forward"),
            SwitchingMode::kStoreAndForward);
  EXPECT_EQ(parse_switching_mode("wormhole"), SwitchingMode::kWormhole);
  EXPECT_THROW((void)parse_switching_mode("cut-through"),
               std::invalid_argument);
}

TEST(WormholeTest, FlitConservation) {
  // With no warmup, every flit is counted: what went in equals what came
  // out plus what is still buffered.
  const Engine engine(min::baseline_network(4));
  for (const double rate : {0.1, 0.5, 1.0}) {
    for (const std::size_t lanes : {std::size_t{1}, std::size_t{4}}) {
      SimConfig config = wormhole_config();
      config.warmup_cycles = 0;
      config.injection_rate = rate;
      config.lanes = lanes;
      const SimResult result = engine.run(Pattern::kUniform, config);
      EXPECT_EQ(result.flits_injected,
                result.flits_delivered + result.flits_in_flight)
          << "rate=" << rate << " lanes=" << lanes;
      // Every delivered packet ejected exactly packet_length flits; a
      // worm delivered up to its tail contributes partially.
      EXPECT_GE(result.flits_delivered,
                result.delivered * config.packet_length);
      EXPECT_LE(result.flits_injected,
                result.injected * config.packet_length);
      EXPECT_GT(result.delivered, 0U);
    }
  }
}

TEST(WormholeTest, TailFollowsHeadOrdering) {
  // Observe every ejected flit: per packet, the head leaves first, the
  // tail last, exactly packet_length flits in strictly increasing cycles.
  const Engine engine(min::baseline_network(4));
  SimConfig config = wormhole_config();
  config.warmup_cycles = 0;
  config.measure_cycles = 600;
  const WormholeSimulator wormhole(engine);

  struct Worm {
    std::vector<std::uint64_t> cycles;
    std::vector<bool> heads;
    std::vector<bool> tails;
  };
  std::map<std::uint32_t, Worm> worms;
  const SimResult result = wormhole.run(
      Pattern::kUniform, config, [&](const Flit& flit, std::uint64_t cycle) {
        Worm& worm = worms[flit.packet_id];
        worm.cycles.push_back(cycle);
        worm.heads.push_back(flit.is_head());
        worm.tails.push_back(flit.is_tail());
      });
  ASSERT_GT(result.delivered, 0U);

  std::uint64_t complete = 0;
  for (const auto& [id, worm] : worms) {
    ASSERT_FALSE(worm.cycles.empty());
    EXPECT_TRUE(worm.heads.front()) << "packet " << id;
    for (std::size_t i = 1; i < worm.cycles.size(); ++i) {
      EXPECT_FALSE(worm.heads[i]) << "packet " << id;
      EXPECT_LT(worm.cycles[i - 1], worm.cycles[i]) << "packet " << id;
      // No flit after the tail.
      EXPECT_FALSE(worm.tails[i - 1]) << "packet " << id;
    }
    if (worm.tails.back()) {
      ++complete;
      EXPECT_EQ(worm.cycles.size(), config.packet_length)
          << "packet " << id;
    } else {
      EXPECT_LT(worm.cycles.size(), config.packet_length);
    }
  }
  EXPECT_EQ(complete, result.delivered);
}

TEST(WormholeTest, SingleFlitPacketsAreHeadAndTail) {
  const Engine engine(min::baseline_network(3));
  SimConfig config = wormhole_config();
  config.packet_length = 1;
  config.warmup_cycles = 0;
  config.measure_cycles = 300;
  const WormholeSimulator wormhole(engine);
  std::uint64_t seen = 0;
  const SimResult result = wormhole.run(
      Pattern::kUniform, config, [&](const Flit& flit, std::uint64_t) {
        ++seen;
        EXPECT_TRUE(flit.is_head());
        EXPECT_TRUE(flit.is_tail());
      });
  EXPECT_EQ(seen, result.flits_delivered);
  EXPECT_EQ(result.flits_delivered, result.delivered);
}

TEST(WormholeTest, LatencyCrossoverAtLowLoad) {
  // At low load a store-and-forward packet pays ~packet_length cycles per
  // hop while a worm pipelines: stages + length - 1. Multi-flit packets
  // must therefore fly faster under wormhole, and single-flit packets
  // identically under both disciplines.
  const Engine engine(min::baseline_network(4));
  SimConfig config = wormhole_config();
  config.injection_rate = 0.03;
  config.packet_length = 6;
  config.lane_depth = 2;

  const SimResult wormhole = engine.run(Pattern::kUniform, config);
  config.mode = SwitchingMode::kStoreAndForward;
  const SimResult saf = engine.run(Pattern::kUniform, config);
  ASSERT_GT(wormhole.latency.count(), 0U);
  ASSERT_GT(saf.latency.count(), 0U);
  EXPECT_LT(wormhole.latency.mean(), saf.latency.mean());

  config.packet_length = 1;
  const SimResult saf1 = engine.run(Pattern::kUniform, config);
  config.mode = SwitchingMode::kWormhole;
  const SimResult wormhole1 = engine.run(Pattern::kUniform, config);
  EXPECT_NEAR(wormhole1.latency.mean(), saf1.latency.mean(), 1.0);
}

TEST(WormholeTest, DeterministicGivenSeed) {
  const Engine engine(min::baseline_network(4));
  const SimConfig config = wormhole_config();
  const SimResult a = engine.run(Pattern::kUniform, config);
  const SimResult b = engine.run(Pattern::kUniform, config);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.flits_delivered, b.flits_delivered);
  EXPECT_EQ(a.hol_blocking_cycles, b.hol_blocking_cycles);
  EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
  EXPECT_DOUBLE_EQ(a.link_utilization, b.link_utilization);
}

TEST(WormholeTest, EngineDispatchMatchesDirectRun) {
  const Engine engine(min::baseline_network(4));
  const SimConfig config = wormhole_config();
  const SimResult via_engine = engine.run(Pattern::kShuffle, config);
  const SimResult direct =
      WormholeSimulator(engine).run(Pattern::kShuffle, config);
  EXPECT_EQ(via_engine.injected, direct.injected);
  EXPECT_EQ(via_engine.delivered, direct.delivered);
  EXPECT_EQ(via_engine.flits_in_flight, direct.flits_in_flight);
  EXPECT_DOUBLE_EQ(via_engine.latency.mean(), direct.latency.mean());
}

TEST(WormholeTest, MoreLanesNeverHurtThroughput) {
  // Virtual channels exist to relieve head-of-line blocking; at
  // saturation, adding lanes must not lose throughput.
  const Engine engine(min::baseline_network(4));
  SimConfig config = wormhole_config();
  config.injection_rate = 1.0;
  config.lanes = 1;
  const SimResult one = engine.run(Pattern::kUniform, config);
  config.lanes = 4;
  const SimResult four = engine.run(Pattern::kUniform, config);
  EXPECT_GE(four.throughput + 0.02, one.throughput);
  EXPECT_GT(four.hol_blocking_cycles, 0U);
}

TEST(WormholeTest, CountersBounded) {
  const Engine engine(min::baseline_network(5));
  SimConfig config = wormhole_config();
  config.injection_rate = 0.9;
  const SimResult result = engine.run(Pattern::kUniform, config);
  EXPECT_GE(result.link_utilization, 0.0);
  EXPECT_LE(result.link_utilization, 1.0);
  EXPECT_GT(result.lane_occupancy.count(), 0U);
  EXPECT_GE(result.lane_occupancy.mean(), 0.0);
  EXPECT_LE(result.lane_occupancy.max(), 1.0);
  EXPECT_EQ(result.latency_histogram.total(), result.latency.count());
  EXPECT_GE(result.latency.min(),
            static_cast<double>(engine.network().stages()));
}

TEST(WormholeTest, SafSerializationRaisesLatency) {
  // The refactored store-and-forward path serializes multi-flit packets
  // over every link; longer packets must cost latency even at low load.
  const Engine engine(min::baseline_network(4));
  SimConfig config = wormhole_config();
  config.mode = SwitchingMode::kStoreAndForward;
  config.injection_rate = 0.02;
  config.packet_length = 1;
  const double short_latency =
      engine.run(Pattern::kUniform, config).latency.mean();
  config.packet_length = 5;
  const double long_latency =
      engine.run(Pattern::kUniform, config).latency.mean();
  EXPECT_GT(long_latency, short_latency + 3.0);
}

TEST(WormholeTest, ValidationRejectsBadParameters) {
  const Engine engine(min::baseline_network(3));
  SimConfig config = wormhole_config();
  config.lanes = 0;
  EXPECT_THROW((void)engine.run(Pattern::kUniform, config),
               std::invalid_argument);
  config = wormhole_config();
  config.lane_depth = 0;
  EXPECT_THROW((void)engine.run(Pattern::kUniform, config),
               std::invalid_argument);
  config = wormhole_config();
  config.packet_length = 0;
  EXPECT_THROW((void)engine.run(Pattern::kUniform, config),
               std::invalid_argument);
  config = wormhole_config();
  config.injection_rate = 1.5;
  EXPECT_THROW((void)engine.run(Pattern::kUniform, config),
               std::invalid_argument);
}

}  // namespace
}  // namespace mineq::sim
