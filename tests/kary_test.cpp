/// \file kary_test.cpp
/// \brief The r x r cell generalization the paper's conclusion points at:
/// the characterization machinery over radix-r MI-digraphs, plus the
/// empirical generalization of Theorem 3 to independent connections over
/// (Z_r^{n-1}, digit-wise addition).

#include "min/kary.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "min/baseline.hpp"
#include "min/banyan.hpp"
#include "min/properties.hpp"
#include "test_seed.hpp"
#include "util/rng.hpp"

namespace mineq::min {
namespace {

TEST(RadixLabelTest, Arithmetic) {
  const RadixLabel label(3, 2);  // Z_3^2, cells 0..8
  EXPECT_EQ(label.cells(), 9U);
  EXPECT_EQ(label.add(4, 4), 8U);   // (1,1)+(1,1) = (2,2)
  EXPECT_EQ(label.add(8, 1), 6U);   // (2,2)+(0,1) = (2,0)
  EXPECT_EQ(label.sub(0, 1), 2U);   // (0,0)-(0,1) = (0,2)
  EXPECT_EQ(label.digit(7, 0), 1U); // 7 = (2,1)
  EXPECT_EQ(label.digit(7, 1), 2U);
  EXPECT_EQ(label.with_digit(7, 1, 0), 1U);
  // Group laws on all pairs.
  for (std::uint32_t a = 0; a < 9; ++a) {
    for (std::uint32_t b = 0; b < 9; ++b) {
      EXPECT_EQ(label.sub(label.add(a, b), b), a);
      EXPECT_EQ(label.add(a, b), label.add(b, a));
    }
  }
}

TEST(RadixLabelTest, Validation) {
  EXPECT_THROW((void)RadixLabel(1, 2), std::invalid_argument);
  EXPECT_THROW((void)RadixLabel(17, 2), std::invalid_argument);
  EXPECT_THROW((void)RadixLabel(2, -1), std::invalid_argument);
}

TEST(KaryConnectionTest, ValidationAndAccess) {
  // radix 3, 1 digit: 3 cells, 3 tables.
  const KaryConnection conn({{0, 1, 2}, {1, 2, 0}, {2, 0, 1}}, 3, 1);
  EXPECT_TRUE(conn.is_valid_stage());
  EXPECT_EQ(conn.child(1, 0), 1U);
  EXPECT_THROW((void)conn.child(3, 0), std::invalid_argument);
  EXPECT_THROW((void)KaryConnection({{0, 1, 2}}, 3, 1),
               std::invalid_argument);
  EXPECT_THROW((void)KaryConnection({{0, 3, 2}, {1, 2, 0}, {2, 0, 1}}, 3, 1),
               std::invalid_argument);
}

TEST(KaryConnectionTest, RandomIndependentIsIndependent) {
  MINEQ_SEEDED_RNG(rng, 211);
  for (int radix : {2, 3, 4, 5}) {
    for (int digits = 1; digits <= 3; ++digits) {
      const KaryConnection conn =
          KaryConnection::random_independent(radix, digits, rng);
      EXPECT_TRUE(conn.is_valid_stage()) << radix << "^" << digits;
      EXPECT_TRUE(conn.is_independent()) << radix << "^" << digits;
      EXPECT_TRUE(conn.is_independent_definition())
          << radix << "^" << digits;
    }
  }
}

TEST(KaryConnectionTest, FastIndependenceAgreesWithDefinition) {
  MINEQ_SEEDED_RNG(rng, 223);
  for (int radix : {2, 3, 4}) {
    for (int trial = 0; trial < 30; ++trial) {
      const KaryConnection conn =
          trial % 2 == 0
              ? KaryConnection::random_valid(radix, 2, rng)
              : KaryConnection::random_independent(radix, 2, rng);
      EXPECT_EQ(conn.is_independent(), conn.is_independent_definition())
          << "radix=" << radix << " trial=" << trial;
    }
  }
}

TEST(KaryBaselineTest, Radix2MatchesBinaryBaseline) {
  for (int n = 2; n <= 7; ++n) {
    const KaryMIDigraph kary = kary_baseline(n, 2);
    const MIDigraph binary = baseline_network(n);
    for (int s = 0; s + 1 < n; ++s) {
      EXPECT_EQ(kary.connection(s).table(0), binary.connection(s).f_table())
          << "n=" << n << " s=" << s;
      EXPECT_EQ(kary.connection(s).table(1), binary.connection(s).g_table())
          << "n=" << n << " s=" << s;
    }
  }
}

class KaryShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KaryShapeTest, BaselineSatisfiesCharacterization) {
  const auto [stages, radix] = GetParam();
  const KaryMIDigraph g = kary_baseline(stages, radix);
  EXPECT_TRUE(g.is_valid());
  EXPECT_TRUE(kary_is_banyan(g));
  EXPECT_TRUE(kary_satisfies_p1_star(g));
  EXPECT_TRUE(kary_satisfies_p_star_n(g));
  EXPECT_TRUE(kary_is_baseline_equivalent(g));
}

TEST_P(KaryShapeTest, OmegaSatisfiesCharacterization) {
  const auto [stages, radix] = GetParam();
  const KaryMIDigraph g = kary_omega(stages, radix);
  EXPECT_TRUE(g.is_valid());
  EXPECT_TRUE(kary_is_baseline_equivalent(g));
}

TEST_P(KaryShapeTest, OmegaStagesAreIndependent) {
  const auto [stages, radix] = GetParam();
  const KaryMIDigraph g = kary_omega(stages, radix);
  for (int s = 0; s + 1 < stages; ++s) {
    EXPECT_TRUE(g.connection(s).is_independent()) << "s=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KaryShapeTest,
    ::testing::Values(std::make_tuple(2, 3), std::make_tuple(3, 3),
                      std::make_tuple(4, 3), std::make_tuple(2, 4),
                      std::make_tuple(3, 4), std::make_tuple(2, 5),
                      std::make_tuple(3, 5), std::make_tuple(4, 2),
                      std::make_tuple(6, 2)));

TEST(KaryTheorem3Test, AlignedBanyanIndependentImpliesEquivalent) {
  // The correct generalization of Theorem 3 to radix r: every Banyan
  // network assembled from *aligned* independent connections (translation
  // sets = cosets of an order-r subgroup) satisfies the generalized
  // characterization.
  MINEQ_SEEDED_RNG(rng, 227);
  for (int radix : {2, 3, 4, 5}) {
    for (int stages : {2, 3}) {
      int banyan_seen = 0;
      for (int trial = 0; trial < 200 && banyan_seen < 5; ++trial) {
        std::vector<KaryConnection> connections;
        for (int s = 0; s + 1 < stages; ++s) {
          connections.push_back(KaryConnection::random_independent_aligned(
              radix, stages - 1, rng));
        }
        const KaryMIDigraph g(stages, radix, std::move(connections));
        if (!kary_is_banyan(g)) continue;
        ++banyan_seen;
        EXPECT_TRUE(kary_is_baseline_equivalent(g))
            << "radix=" << radix << " stages=" << stages;
      }
      EXPECT_GT(banyan_seen, 0) << "radix=" << radix << " stages=" << stages;
    }
  }
}

TEST(KaryTheorem3Test, VerbatimGeneralizationFailsForRadix3) {
  // The FINDING pinned as a regression: Banyan networks built from
  // *unaligned* independent connections over Z_3^2 need not be
  // baseline-equivalent — the verbatim Theorem 3 generalization is false
  // for r >= 3. We exhibit at least one Banyan + independent +
  // non-equivalent instance.
  MINEQ_SEEDED_RNG(rng, 227);
  const int radix = 3;
  const int stages = 3;
  bool counterexample = false;
  int banyan_seen = 0;
  for (int trial = 0; trial < 400 && !counterexample; ++trial) {
    std::vector<KaryConnection> connections;
    for (int s = 0; s + 1 < stages; ++s) {
      connections.push_back(
          KaryConnection::random_independent(radix, stages - 1, rng));
    }
    const KaryMIDigraph g(stages, radix, std::move(connections));
    if (!kary_is_banyan(g)) continue;
    ++banyan_seen;
    // Every stage IS independent per the definition...
    for (int s = 0; s + 1 < stages; ++s) {
      ASSERT_TRUE(g.connection(s).is_independent_definition());
    }
    // ...yet equivalence can fail.
    if (!kary_is_baseline_equivalent(g)) counterexample = true;
  }
  EXPECT_GT(banyan_seen, 0);
  EXPECT_TRUE(counterexample)
      << "no Banyan independent non-equivalent radix-3 network found";
}

TEST(KaryTheorem3Test, AlignedTranslationsFormCoset) {
  // Structural sanity of the aligned generator: the translation set
  // (children of cell 0) is a coset of an order-r subgroup.
  MINEQ_SEEDED_RNG(rng, 239);
  for (int radix : {2, 3, 4, 5}) {
    const int digits = 2;
    const RadixLabel label(radix, digits);
    const KaryConnection conn =
        KaryConnection::random_independent_aligned(radix, digits, rng);
    // Differences of the port images of cell 0 all lie in <h> where h is
    // the difference of ports 0 and 1.
    const std::uint32_t h =
        label.sub(conn.child(1, 0), conn.child(0, 0));
    EXPECT_EQ(KaryConnection::element_order(radix, digits, h),
              static_cast<unsigned>(radix));
    std::uint32_t acc = 0;
    std::vector<bool> hit(static_cast<std::size_t>(radix), false);
    for (int t = 0; t < radix; ++t) {
      const std::uint32_t diff =
          label.sub(conn.child(static_cast<unsigned>(t), 0),
                    conn.child(0, 0));
      // diff must equal t * h.
      EXPECT_EQ(diff, acc) << "radix=" << radix << " t=" << t;
      acc = label.add(acc, h);
    }
  }
}

TEST(KaryTest, RandomNetworksMostlyNotEquivalent) {
  MINEQ_SEEDED_RNG(rng, 229);
  int equivalent = 0;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<KaryConnection> connections;
    for (int s = 0; s < 2; ++s) {
      connections.push_back(KaryConnection::random_valid(3, 2, rng));
    }
    const KaryMIDigraph g(3, 3, std::move(connections));
    if (kary_is_baseline_equivalent(g)) ++equivalent;
  }
  EXPECT_LT(equivalent, 10);
}

TEST(KaryTest, ComponentCountsOnBaseline) {
  const KaryMIDigraph g = kary_baseline(3, 3);  // 9 cells per stage
  EXPECT_EQ(kary_component_count_range(g, 0, 0), 9U);
  EXPECT_EQ(kary_component_count_range(g, 0, 1), 3U);
  EXPECT_EQ(kary_component_count_range(g, 0, 2), 1U);
  EXPECT_EQ(kary_component_count_range(g, 1, 2), 3U);
  EXPECT_THROW((void)kary_component_count_range(g, 1, 3),
               std::invalid_argument);
}

TEST(KaryTest, DigraphValidation) {
  EXPECT_THROW(
      (void)KaryMIDigraph(3, 3, {}), std::invalid_argument);
  MINEQ_SEEDED_RNG(rng, 233);
  std::vector<KaryConnection> wrong = {
      KaryConnection::random_valid(3, 1, rng)};
  EXPECT_THROW((void)KaryMIDigraph(3, 3, std::move(wrong)),
               std::invalid_argument);
}

}  // namespace
}  // namespace mineq::min
