#include "graph/digraph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mineq::graph {
namespace {

TEST(DigraphTest, AddNodesAndArcs) {
  Digraph g(2);
  EXPECT_EQ(g.num_nodes(), 2U);
  const std::uint32_t v = g.add_node();
  EXPECT_EQ(v, 2U);
  g.add_arc(0, 1);
  g.add_arc(0, 2);
  g.add_arc(0, 1);  // parallel arc
  EXPECT_EQ(g.num_arcs(), 3U);
  EXPECT_EQ(g.out_degree(0), 3U);
  EXPECT_EQ(g.in_degree(1), 2U);
  EXPECT_EQ(g.in_degree(2), 1U);
  EXPECT_THROW((void)g.add_arc(0, 3), std::invalid_argument);
  EXPECT_THROW((void)g.out(5), std::invalid_argument);
}

TEST(DigraphTest, ReversedSwapsDirections) {
  Digraph g(3);
  g.add_arc(0, 1);
  g.add_arc(1, 2);
  g.add_arc(0, 1);
  const Digraph rev = g.reversed();
  EXPECT_EQ(rev.num_arcs(), 3U);
  EXPECT_EQ(rev.out_degree(1), 2U);  // two parallel arcs back to 0
  EXPECT_EQ(rev.out_degree(2), 1U);
  EXPECT_EQ(rev.in_degree(0), 2U);
}

TEST(LayeredDigraphTest, CountsAndValidation) {
  LayeredDigraph g;
  g.adj = {{{0, 1}, {0, 1}}, {{}, {}}};
  EXPECT_EQ(g.layers(), 2U);
  EXPECT_EQ(g.layer_size(0), 2U);
  EXPECT_EQ(g.num_nodes(), 4U);
  EXPECT_EQ(g.num_arcs(), 4U);
  EXPECT_NO_THROW(g.validate());
}

TEST(LayeredDigraphTest, ValidateRejectsOutOfRangeChild) {
  LayeredDigraph g;
  g.adj = {{{2}}, {{}}};  // child index 2 but next layer has 1 node
  EXPECT_THROW((void)g.validate(), std::invalid_argument);
}

TEST(LayeredDigraphTest, ValidateRejectsArcsFromLastLayer) {
  LayeredDigraph g;
  g.adj = {{{0}}, {{0}}};
  EXPECT_THROW((void)g.validate(), std::invalid_argument);
}

TEST(LayeredDigraphTest, FlattenPreservesStructure) {
  LayeredDigraph g;
  g.adj = {{{1}, {0}}, {{0}, {0}}, {{}}};
  const Digraph flat = g.flatten();
  EXPECT_EQ(flat.num_nodes(), 5U);
  EXPECT_EQ(flat.num_arcs(), 4U);
  // Node ids: layer0 = {0,1}, layer1 = {2,3}, layer2 = {4}.
  EXPECT_EQ(flat.out(0).front(), 3U);
  EXPECT_EQ(flat.out(1).front(), 2U);
  EXPECT_EQ(flat.out(2).front(), 4U);
  EXPECT_EQ(flat.out(3).front(), 4U);
  EXPECT_EQ(flat.in_degree(4), 2U);
}

}  // namespace
}  // namespace mineq::graph
