/// \file obs_determinism_test.cpp
/// \brief Observability under the megafabric: every rendered artifact —
/// probe series, heatmap, flow table, trace JSON — and every stall
/// counter must be byte-identical at any sim_threads, for both switching
/// disciplines and every policy instantiation. The comparisons are
/// string-equality on the rendered bytes, the strongest form of the
/// determinism contract.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "fault/fault_model.hpp"
#include "min/networks.hpp"
#include "multipath/multipath_wiring.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"

namespace mineq::sim {
namespace {

using fault::FaultKind;
using fault::FaultMask;
using fault::FaultSpec;
using min::MultiPathWiring;
using min::NetworkKind;

constexpr std::size_t kThreadCounts[] = {2, 5, 8};

/// Every observability artifact of one run, rendered to bytes.
struct ObsArtifacts {
  std::string probes;
  std::string heatmap;
  std::string flows;
  std::string trace;
  std::uint64_t hol = 0;
  std::uint64_t lost_arb = 0;
  std::uint64_t downstream_full = 0;
  std::uint64_t no_free_lane = 0;
  std::uint64_t zero_credits = 0;
  std::uint64_t masked_arc = 0;
};

[[nodiscard]] ObsArtifacts render(const SimResult& result) {
  ObsArtifacts a;
  a.probes = result.probes.csv();
  a.heatmap = result.probes.heatmap_csv();
  a.flows = result.flows.csv();
  a.trace = obs::trace_json(result.trace, 0, "determinism");
  a.hol = result.hol_blocking_cycles;
  a.lost_arb = result.stall_lost_arbitration;
  a.downstream_full = result.stall_downstream_full;
  a.no_free_lane = result.stall_no_free_lane;
  a.zero_credits = result.stall_zero_credits;
  a.masked_arc = result.stall_masked_arc;
  return a;
}

/// Run \p config serially and at each thread count; the rendered
/// artifacts must match byte for byte and the stall split must stay an
/// exact partition throughout.
void expect_obs_identical(const Engine& engine, Pattern pattern,
                          SimConfig config,
                          const FaultMask* mask = nullptr) {
  config.obs.probe_stride = 25;
  config.obs.flow_stats = true;
  config.obs.trace_sample = 4;
  config.sim_threads = 1;
  const ObsArtifacts serial = render(engine.run(pattern, config, mask));
  EXPECT_FALSE(serial.probes.empty());
  EXPECT_FALSE(serial.flows.empty());
  EXPECT_EQ(serial.lost_arb + serial.downstream_full + serial.no_free_lane +
                serial.zero_credits + serial.masked_arc,
            serial.hol);
  for (const std::size_t threads : kThreadCounts) {
    SCOPED_TRACE(testing::Message() << "sim_threads = " << threads);
    config.sim_threads = threads;
    const ObsArtifacts sharded = render(engine.run(pattern, config, mask));
    EXPECT_EQ(serial.probes, sharded.probes);
    EXPECT_EQ(serial.heatmap, sharded.heatmap);
    EXPECT_EQ(serial.flows, sharded.flows);
    EXPECT_EQ(serial.trace, sharded.trace);
    EXPECT_EQ(serial.hol, sharded.hol);
    EXPECT_EQ(serial.lost_arb, sharded.lost_arb);
    EXPECT_EQ(serial.downstream_full, sharded.downstream_full);
    EXPECT_EQ(serial.no_free_lane, sharded.no_free_lane);
    EXPECT_EQ(serial.zero_credits, sharded.zero_credits);
    EXPECT_EQ(serial.masked_arc, sharded.masked_arc);
  }
}

[[nodiscard]] SimConfig base_config(SwitchingMode mode) {
  SimConfig config;
  config.mode = mode;
  config.injection_rate = 0.7;
  config.warmup_cycles = 50;
  config.measure_cycles = 250;
  config.seed = 4242;
  config.packet_length = 3;
  config.queue_capacity = 2;
  config.lanes = 2;
  config.lane_depth = 2;
  return config;
}

// ------------------------------------------------------- store-and-forward

TEST(ObsDeterminismSafTest, Pristine) {
  const Engine engine(min::build_network(NetworkKind::kOmega, 5));
  expect_obs_identical(engine, Pattern::kBitReversal,
                       base_config(SwitchingMode::kStoreAndForward));
}

TEST(ObsDeterminismSafTest, Faulted) {
  const Engine engine(min::build_network(NetworkKind::kOmega, 5));
  const FaultMask mask = fault::build_fault_mask(
      engine.wiring(), FaultSpec{FaultKind::kRandomLinks, 0.08, 7});
  expect_obs_identical(engine, Pattern::kUniform,
                       base_config(SwitchingMode::kStoreAndForward), &mask);
}

TEST(ObsDeterminismSafTest, Credits) {
  const Engine engine(min::build_network(NetworkKind::kOmega, 5));
  SimConfig config = base_config(SwitchingMode::kStoreAndForward);
  config.credits.enabled = true;
  config.credits.return_latency = 4;
  config.credits.sl_map = {0, 1};
  config.credits.weights = {3, 1};
  config.credits.arbitration = ArbitrationPolicy::kWeighted;
  expect_obs_identical(engine, Pattern::kUniform, config);
}

TEST(ObsDeterminismSafTest, Multipath) {
  const Engine engine{MultiPathWiring::benes(4, 2)};
  SimConfig config = base_config(SwitchingMode::kStoreAndForward);
  config.path_policy = PathPolicy::kAdaptive;
  expect_obs_identical(engine, Pattern::kUniform, config);
}

TEST(ObsDeterminismSafTest, MultipathFaulted) {
  const Engine engine{MultiPathWiring::replicated(NetworkKind::kOmega, 4, 2,
                                                  2)};
  SimConfig config = base_config(SwitchingMode::kStoreAndForward);
  config.path_policy = PathPolicy::kHash;
  const FaultMask mask = fault::build_fault_mask(
      engine.wiring(), FaultSpec{FaultKind::kRandomLinks, 0.1, 11});
  expect_obs_identical(engine, Pattern::kUniform, config, &mask);
}

// ---------------------------------------------------------------- wormhole

TEST(ObsDeterminismWormholeTest, Pristine) {
  const Engine engine(min::build_network(NetworkKind::kOmega, 5));
  expect_obs_identical(engine, Pattern::kBitReversal,
                       base_config(SwitchingMode::kWormhole));
}

TEST(ObsDeterminismWormholeTest, Faulted) {
  const Engine engine(min::build_network(NetworkKind::kBaseline, 5));
  const FaultMask mask = fault::build_fault_mask(
      engine.wiring(), FaultSpec{FaultKind::kSwitchKills, 0.08, 7});
  expect_obs_identical(engine, Pattern::kUniform,
                       base_config(SwitchingMode::kWormhole), &mask);
}

TEST(ObsDeterminismWormholeTest, Credits) {
  const Engine engine(min::build_network(NetworkKind::kOmega, 5));
  SimConfig config = base_config(SwitchingMode::kWormhole);
  config.credits.enabled = true;
  config.credits.return_latency = 3;
  config.credits.sl_map = {0, 1};
  config.credits.weights = {3, 1};
  config.credits.arbitration = ArbitrationPolicy::kWeighted;
  expect_obs_identical(engine, Pattern::kUniform, config);
}

TEST(ObsDeterminismWormholeTest, Multipath) {
  const Engine engine{MultiPathWiring::benes(4, 2)};
  SimConfig config = base_config(SwitchingMode::kWormhole);
  config.path_policy = PathPolicy::kAdaptive;
  expect_obs_identical(engine, Pattern::kUniform, config);
}

}  // namespace
}  // namespace mineq::sim
