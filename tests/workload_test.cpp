/// \file workload_test.cpp
/// \brief The workload seam: kind registry, trace format round trips and
/// validation, closed-loop self-throttling, record→replay exactness,
/// workload-axis RNG-stream independence and thread-count determinism
/// (sweep fan-out AND per-point sharding, including a closed-loop point).

#include "workload/workload.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "exp/report.hpp"
#include "exp/sweep.hpp"
#include "min/networks.hpp"
#include "sim/engine.hpp"
#include "workload/spec.hpp"

namespace mineq::workload {
namespace {

// --- Registry / spec validation --------------------------------------------

TEST(WorkloadTest, KindRegistryRoundTripsEveryToken) {
  EXPECT_EQ(all_kinds().size(), 3U);
  for (const Kind kind : all_kinds()) {
    EXPECT_EQ(parse_kind(kind_name(kind)), kind) << kind_name(kind);
  }
  EXPECT_EQ(kind_name(Kind::kOpen), "open");
  EXPECT_EQ(kind_name(Kind::kClosedLoop), "closedloop");
  EXPECT_EQ(kind_name(Kind::kTrace), "trace");
  // The rejection enumerates the registry, so the CLI docs (which derive
  // their token list from the same registry) can never drift from it.
  try {
    (void)parse_kind("bogus");
    FAIL() << "unknown workload token must be rejected";
  } catch (const std::invalid_argument& error) {
    EXPECT_STREQ(error.what(),
                 "parse_kind: unknown workload \"bogus\" (valid: open, "
                 "closedloop, trace)");
  }
}

TEST(WorkloadTest, SpecValidationNamesTheField) {
  Spec spec;
  spec.rr_window = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = Spec{};
  spec.time_compression = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = Spec{};
  spec.kind = Kind::kTrace;  // no trace loaded
  try {
    spec.validate();
    FAIL() << "trace replay without a trace must be rejected";
  } catch (const std::invalid_argument& error) {
    EXPECT_STREQ(error.what(),
                 "workload: trace replay needs a loaded trace "
                 "(SimConfig::workload.trace is null)");
  }
}

// --- Trace format -----------------------------------------------------------

TEST(WorkloadTest, ParseTraceReadsTheDocumentedFormat) {
  const TraceData data = parse_trace(
      "# comment\n"
      "\n"
      "0 1 2 4\n"
      "0 3 3 4 1\n"
      "  17 0 7 4 2   # trailing comment\r\n"
      "17 2 5 4");  // no trailing newline
  ASSERT_EQ(data.records.size(), 4U);
  EXPECT_EQ(data.records[0], (TraceRecord{0, 1, 2, 4, kTagNone}));
  EXPECT_EQ(data.records[1], (TraceRecord{0, 3, 3, 4, kTagRequest}));
  EXPECT_EQ(data.records[2], (TraceRecord{17, 0, 7, 4, kTagReply}));
  EXPECT_EQ(data.records[3], (TraceRecord{17, 2, 5, 4, kTagNone}));
  // Provenance: parse fills 1-based source lines.
  EXPECT_EQ(data.records[0].line, 3U);
  EXPECT_EQ(data.records[2].line, 5U);
}

TEST(WorkloadTest, ParseTraceErrorsNameTheOffendingLine) {
  const auto expect_throw = [](std::string_view text,
                               const std::string& message) {
    try {
      (void)parse_trace(text);
      FAIL() << "expected rejection: " << message;
    } catch (const std::invalid_argument& error) {
      EXPECT_EQ(error.what(), message);
    }
  };
  expect_throw("0 1 2 x",
               "workload trace line 1: size \"x\" is not an unsigned integer");
  expect_throw("# header\n5 3\n",
               "workload trace line 2: expected `cycle src dst size [tag]`, "
               "got \"5 3\"");
  expect_throw("0 1 2 4 7\n",
               "workload trace line 1: tag 7 is not 0 (none), 1 (request) or "
               "2 (reply)");
  expect_throw("0 1 2 4 1 9\n",
               "workload trace line 1: trailing field \"9\"");
  expect_throw("9 1 2 4\n3 1 2 4\n",
               "workload trace line 2: cycle 3 runs backwards (previous "
               "record was at cycle 9)");
  expect_throw("0 1 2 0\n", "workload trace line 1: size must be positive");
}

TEST(WorkloadTest, WriteTraceParsesBackIdentically) {
  const std::vector<TraceRecord> records = {
      {0, 1, 2, 4, kTagNone},
      {3, 0, 7, 4, kTagRequest},
      {3, 7, 0, 4, kTagReply},
      {250, 5, 5, 4, kTagNone},
  };
  EXPECT_EQ(parse_trace(write_trace(records)).records, records);
}

// --- Simulation-level behavior ---------------------------------------------

sim::SimConfig base_config() {
  sim::SimConfig config;
  config.injection_rate = 0.9;
  config.packet_length = 1;
  config.warmup_cycles = 100;
  config.measure_cycles = 1000;
  config.seed = 11;
  return config;
}

TEST(WorkloadTest, ClosedLoopSelfThrottlesWhereOpenLoopDoesNot) {
  // The acceptance-criteria row pair: at a saturating configured rate the
  // open-loop source keeps presenting it (flat acceptance, no window
  // stalls) while the closed-loop client's bounded window suppresses
  // attempts — offered_rate_effective collapses below the configured
  // rate and window_stall_cycles goes positive.
  exp::SweepGrid grid;
  grid.networks = {min::NetworkKind::kOmega};
  grid.patterns = {sim::Pattern::kUniform};
  grid.modes = {sim::SwitchingMode::kStoreAndForward};
  grid.lane_counts = {1};
  grid.rates = {0.9};
  grid.stages = 3;
  grid.base = base_config();
  Spec closed;
  closed.kind = Kind::kClosedLoop;
  closed.rr_window = 1;
  grid.workloads = {Spec{}, closed};
  const exp::SweepResult sweep = exp::run_sweep(grid, 1);
  ASSERT_EQ(sweep.points.size(), 2U);
  const sim::SimResult& open = sweep.points[0].result;
  const sim::SimResult& rr = sweep.points[1].result;
  ASSERT_EQ(sweep.points[0].workload.kind, Kind::kOpen);
  ASSERT_EQ(sweep.points[1].workload.kind, Kind::kClosedLoop);
  // Open loop: the Bernoulli gate keeps presenting the configured rate
  // regardless of congestion — "flat" offered load — and never stalls on
  // a window.
  EXPECT_NEAR(open.offered_rate_effective, 0.9, 0.05);
  EXPECT_EQ(open.window_stall_cycles, 0U);
  EXPECT_EQ(open.reply_latency.count(), 0U);
  // Closed loop: self-throttled below the configured rate (even counting
  // the replies the servers add), with the stall counter saying why, and
  // a populated reply-latency tail.
  EXPECT_LT(rr.offered_rate_effective, 0.8 * 0.9);
  EXPECT_LT(rr.offered_rate_effective, open.offered_rate_effective - 0.1);
  EXPECT_GT(rr.window_stall_cycles, 0U);
  EXPECT_GT(rr.reply_latency.count(), 0U);
  EXPECT_GT(rr.reply_latency_histogram.quantile(0.99), 0.0);
  EXPECT_EQ(rr.reply_orphans, 0U);  // no faults, nothing lost
  // And the fabric-side acceptance tells the honest story: the open row
  // overdrives the first stage, the self-throttled row does not.
  EXPECT_GT(rr.acceptance, open.acceptance);
}

TEST(WorkloadTest, RecordReplayReproducesCountersExactly) {
  // The tentpole's round-trip guarantee: replaying a recorded run through
  // TraceSource lands every packet on the same cycle with the same
  // destination, so the delivered/latency counters match exactly.
  for (const sim::SwitchingMode mode :
       {sim::SwitchingMode::kStoreAndForward, sim::SwitchingMode::kWormhole}) {
    const sim::Engine engine(min::build_network(min::NetworkKind::kOmega, 3));
    sim::SimConfig config = base_config();
    config.mode = mode;
    config.packet_length = 3;
    config.injection_rate = 0.6;
    config.workload.record = true;
    const sim::SimResult recorded =
        engine.run(sim::Pattern::kUniform, config);
    ASSERT_FALSE(recorded.workload_trace.empty());

    sim::SimConfig replay_config = config;
    replay_config.workload = Spec{};
    replay_config.workload.kind = Kind::kTrace;
    replay_config.workload.trace = std::make_shared<const TraceData>(
        TraceData{recorded.workload_trace});
    const sim::SimResult replayed =
        engine.run(sim::Pattern::kUniform, replay_config);
    // `offered` is NOT compared: the open-loop run counts refused gate
    // draws that never became trace records; the replay only ever offers
    // what was accepted. Everything downstream of acceptance is exact.
    EXPECT_EQ(replayed.injected, recorded.injected);
    EXPECT_EQ(replayed.delivered, recorded.delivered);
    EXPECT_EQ(replayed.flits_injected, recorded.flits_injected);
    EXPECT_EQ(replayed.flits_delivered, recorded.flits_delivered);
    EXPECT_EQ(replayed.flits_in_flight, recorded.flits_in_flight);
    EXPECT_EQ(replayed.latency.mean(), recorded.latency.mean());
    EXPECT_EQ(replayed.latency.max(), recorded.latency.max());
    EXPECT_EQ(replayed.latency_histogram.quantile(0.5),
              recorded.latency_histogram.quantile(0.5));
    EXPECT_EQ(replayed.latency_histogram.quantile(0.99),
              recorded.latency_histogram.quantile(0.99));
    EXPECT_EQ(replayed.hol_blocking_cycles, recorded.hol_blocking_cycles);
    // And the text form round-trips through the serializer too.
    EXPECT_EQ(parse_trace(write_trace(recorded.workload_trace)).records,
              recorded.workload_trace);
  }
}

TEST(WorkloadTest, TraceTimeCompressionDividesDueCycles) {
  const sim::Engine engine(min::build_network(min::NetworkKind::kOmega, 3));
  sim::SimConfig config = base_config();
  config.warmup_cycles = 0;
  config.measure_cycles = 400;
  // Two packets per terminal pair, 300 cycles apart: uncompressed, the
  // second lands late in the run; compressed 4x it replays at cycle 75.
  auto trace = std::make_shared<TraceData>();
  for (std::uint32_t t = 0; t < 8; ++t) {
    trace->records.push_back({0, t, (t + 3U) % 8U, 1, kTagNone});
  }
  for (std::uint32_t t = 0; t < 8; ++t) {
    trace->records.push_back({300, t, (t + 5U) % 8U, 1, kTagNone});
  }
  config.workload.kind = Kind::kTrace;
  config.workload.trace = trace;
  const sim::SimResult plain = engine.run(sim::Pattern::kUniform, config);
  config.workload.time_compression = 4;
  const sim::SimResult fast = engine.run(sim::Pattern::kUniform, config);
  EXPECT_EQ(plain.delivered, 16U);
  EXPECT_EQ(fast.delivered, 16U);
}

TEST(WorkloadTest, TraceSourceValidationNamesLineAndConstraint) {
  const sim::Engine engine(min::build_network(min::NetworkKind::kOmega, 3));
  sim::SimConfig config = base_config();
  config.workload.kind = Kind::kTrace;
  {
    // Terminal 99 does not exist in an 8-terminal fabric.
    auto trace = std::make_shared<TraceData>(
        parse_trace("0 0 1 1\n2 99 1 1\n"));
    config.workload.trace = trace;
    try {
      (void)engine.run(sim::Pattern::kUniform, config);
      FAIL() << "out-of-range terminal must be rejected";
    } catch (const std::invalid_argument& error) {
      EXPECT_STREQ(error.what(),
                   "TraceSource: line 2: terminal 99 out of range (fabric "
                   "has 8 terminals)");
    }
  }
  {
    // Record size must match the run's packet length.
    auto trace = std::make_shared<TraceData>(parse_trace("0 0 1 4\n"));
    config.workload.trace = trace;
    try {
      (void)engine.run(sim::Pattern::kUniform, config);
      FAIL() << "size/packet_length mismatch must be rejected";
    } catch (const std::invalid_argument& error) {
      EXPECT_STREQ(error.what(),
                   "TraceSource: line 1: size 4 != the run's packet_length 1 "
                   "(the disciplines serialize one fixed length per run)");
    }
  }
}

// --- RNG-stream independence + determinism contracts ------------------------

exp::SweepGrid axis_grid() {
  exp::SweepGrid grid;
  grid.networks = {min::NetworkKind::kOmega, min::NetworkKind::kBaseline};
  grid.patterns = {sim::Pattern::kUniform, sim::Pattern::kBursty};
  grid.modes = {sim::SwitchingMode::kStoreAndForward,
                sim::SwitchingMode::kWormhole};
  grid.lane_counts = {2};
  grid.rates = {0.4, 0.8};
  grid.stages = 4;
  grid.base.packet_length = 2;
  grid.base.warmup_cycles = 50;
  grid.base.measure_cycles = 300;
  grid.base.seed = 5;
  return grid;
}

TEST(WorkloadTest, AppendingWorkloadAxisLeavesExistingPointsByteIdentical) {
  // RNG-stream independence across sources: the workload axis is the
  // outermost enumeration level, so appending a value must not perturb
  // the task indices, derived seeds, or a single output byte of the
  // points that already existed (PR 2's sweep contract, extended).
  const exp::SweepGrid before = axis_grid();
  const std::string csv_before = exp::sweep_csv(exp::run_sweep(before, 2));
  exp::SweepGrid after = axis_grid();
  Spec closed;
  closed.kind = Kind::kClosedLoop;
  closed.rr_window = 4;
  after.workloads.push_back(closed);
  EXPECT_EQ(after.size(), 2 * before.size());
  const exp::SweepResult both = exp::run_sweep(after, 2);
  const std::string csv_after = exp::sweep_csv(both);
  // The with-axis CSV starts with the without-axis CSV, byte for byte.
  ASSERT_GE(csv_after.size(), csv_before.size());
  EXPECT_EQ(csv_after.substr(0, csv_before.size()), csv_before);
  // And the appended block really ran the closed-loop source.
  for (std::size_t i = before.size(); i < both.points.size(); ++i) {
    EXPECT_EQ(both.points[i].workload.kind, Kind::kClosedLoop);
  }
}

TEST(WorkloadTest, SweepByteIdenticalAcrossThreadCountsWithClosedLoop) {
  exp::SweepGrid grid = axis_grid();
  Spec closed;
  closed.kind = Kind::kClosedLoop;
  closed.rr_window = 3;
  grid.workloads = {Spec{}, closed};
  const std::string serial = exp::sweep_csv(exp::run_sweep(grid, 1));
  EXPECT_EQ(serial, exp::sweep_csv(exp::run_sweep(grid, 2)));
  EXPECT_EQ(serial, exp::sweep_csv(exp::run_sweep(grid, 5)));
}

TEST(WorkloadTest, ShardedClosedLoopByteIdenticalAtAnyThreadCount) {
  // Megafabric contract, now through the workload seam: the delivery
  // feed is buffered per worker and replayed in ascending-worker (= cell,
  // = serial) order before the worker-0 workload tick, so a closed-loop
  // run shards byte-identically. Trace replay and recording likewise.
  exp::SweepGrid grid;
  grid.networks = {min::NetworkKind::kOmega};
  grid.patterns = {sim::Pattern::kUniform};
  grid.modes = {sim::SwitchingMode::kStoreAndForward,
                sim::SwitchingMode::kWormhole};
  grid.lane_counts = {2};
  grid.rates = {0.8};
  grid.stages = 4;
  grid.base.packet_length = 2;
  grid.base.warmup_cycles = 50;
  grid.base.measure_cycles = 300;
  grid.base.seed = 5;
  Spec closed;
  closed.kind = Kind::kClosedLoop;
  closed.rr_window = 2;
  closed.record = true;
  grid.workloads = {closed};
  const auto run_at = [&grid](std::size_t sim_threads) {
    exp::SweepGrid g = grid;
    g.base.sim_threads = sim_threads;
    return exp::run_sweep(g, 1);
  };
  const exp::SweepResult serial = run_at(1);
  const exp::SweepResult two = run_at(2);
  const exp::SweepResult five = run_at(5);
  EXPECT_EQ(exp::sweep_csv(serial), exp::sweep_csv(two));
  EXPECT_EQ(exp::sweep_csv(serial), exp::sweep_csv(five));
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    // The recorded traces — every accepted injection, warmup included —
    // must agree record for record too.
    EXPECT_EQ(serial.points[i].result.workload_trace,
              two.points[i].result.workload_trace);
    EXPECT_EQ(serial.points[i].result.workload_trace,
              five.points[i].result.workload_trace);
    EXPECT_FALSE(serial.points[i].result.workload_trace.empty());
  }
}

TEST(WorkloadTest, ClosedLoopFeedsServiceLatencyIntoFlowRecorder) {
  // The obs wiring: with flow stats on, each completed request→reply
  // exchange lands in the recorder's service channel, so the flow
  // summary reports request→reply service time next to hop latency.
  const sim::Engine engine(min::build_network(min::NetworkKind::kOmega, 3));
  sim::SimConfig config = base_config();
  config.workload.kind = Kind::kClosedLoop;
  config.workload.rr_window = 4;
  config.obs.flow_stats = true;
  const sim::SimResult result = engine.run(sim::Pattern::kUniform, config);
  EXPECT_GT(result.reply_latency.count(), 0U);
  ASSERT_FALSE(result.flows.services.empty());
  EXPECT_GT(result.flows.worst_service_p99, 0.0);
  // Service latency (round trip) dominates one-way hop latency.
  EXPECT_GT(result.flows.worst_service_p99, result.flows.worst_p99);
  // The summary CSV carries the service rows under the same 8-column
  // header.
  EXPECT_NE(result.flows.csv().find("\nservice,"), std::string::npos);
}

TEST(WorkloadTest, SweepCsvCarriesWorkloadColumns) {
  exp::SweepGrid grid;
  grid.networks = {min::NetworkKind::kOmega};
  grid.patterns = {sim::Pattern::kUniform};
  grid.modes = {sim::SwitchingMode::kStoreAndForward};
  grid.lane_counts = {1};
  grid.rates = {0.5};
  grid.stages = 3;
  grid.base.warmup_cycles = 50;
  grid.base.measure_cycles = 200;
  const std::string csv = exp::sweep_csv(exp::run_sweep(grid, 1));
  const std::string header = csv.substr(0, csv.find('\n'));
  // The workload block rides at the end of the header, after the
  // observability columns, so every pre-existing column keeps its index.
  EXPECT_NE(header.find(
                ",workload,rr_window,offered_rate_effective,"
                "reply_latency_p99,window_stall_cycles"),
            std::string::npos);
  EXPECT_NE(csv.find(",open,"), std::string::npos);
}

}  // namespace
}  // namespace mineq::workload
