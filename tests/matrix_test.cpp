#include "gf2/matrix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "test_seed.hpp"
#include "util/rng.hpp"

namespace mineq::gf2 {
namespace {

TEST(MatrixTest, IdentityBasics) {
  const Matrix id = Matrix::identity(4);
  EXPECT_TRUE(id.is_identity());
  EXPECT_TRUE(id.is_invertible());
  EXPECT_EQ(id.rank(), 4);
  for (std::uint64_t x = 0; x < 16; ++x) {
    EXPECT_EQ(id.apply(x), x);
  }
}

TEST(MatrixTest, EntryAccess) {
  Matrix m(2, 3);
  m.set(0, 2, 1);
  m.set(1, 0, 1);
  EXPECT_EQ(m.at(0, 2), 1U);
  EXPECT_EQ(m.at(0, 0), 0U);
  EXPECT_EQ(m.row(0), 0b100U);
  EXPECT_EQ(m.row(1), 0b001U);
  EXPECT_THROW((void)m.at(2, 0), std::invalid_argument);
  EXPECT_THROW((void)m.set(0, 3, 1), std::invalid_argument);
}

TEST(MatrixTest, FromRowsValidation) {
  EXPECT_NO_THROW(Matrix::from_rows({0b11, 0b01}, 2));
  EXPECT_THROW((void)Matrix::from_rows({0b100}, 2), std::invalid_argument);
}

TEST(MatrixTest, FromColsTransposeConsistency) {
  // Columns (1,0), (1,1): matrix rows should be (1,1), (0,1).
  const Matrix m = Matrix::from_cols({0b01, 0b11}, 2);
  EXPECT_EQ(m.at(0, 0), 1U);
  EXPECT_EQ(m.at(0, 1), 1U);
  EXPECT_EQ(m.at(1, 0), 0U);
  EXPECT_EQ(m.at(1, 1), 1U);
  EXPECT_EQ(m.transposed().transposed(), m);
}

TEST(MatrixTest, BitSelector) {
  // out bit 0 <- in bit 2, out bit 1 <- in bit 0, out bit 2 <- in bit 1.
  const Matrix m = Matrix::bit_selector({2, 0, 1}, 3);
  EXPECT_EQ(m.apply(0b100), 0b001U);
  EXPECT_EQ(m.apply(0b001), 0b010U);
  EXPECT_EQ(m.apply(0b010), 0b100U);
  EXPECT_TRUE(m.is_invertible());
  EXPECT_THROW((void)Matrix::bit_selector({3}, 3), std::invalid_argument);
}

TEST(MatrixTest, MultiplyAssociatesWithApply) {
  MINEQ_SEEDED_RNG(rng, 17);
  for (int trial = 0; trial < 20; ++trial) {
    const Matrix a = Matrix::random(5, 5, rng);
    const Matrix b = Matrix::random(5, 5, rng);
    const Matrix ab = a * b;
    for (std::uint64_t x = 0; x < 32; ++x) {
      EXPECT_EQ(ab.apply(x), a.apply(b.apply(x)));
    }
  }
}

TEST(MatrixTest, AdditionIsXor) {
  MINEQ_SEEDED_RNG(rng, 23);
  const Matrix a = Matrix::random(4, 4, rng);
  const Matrix b = Matrix::random(4, 4, rng);
  const Matrix sum = a + b;
  for (std::uint64_t x = 0; x < 16; ++x) {
    EXPECT_EQ(sum.apply(x), a.apply(x) ^ b.apply(x));
  }
  EXPECT_EQ(a + a, Matrix(4, 4));  // char 2
}

TEST(MatrixTest, RankExamples) {
  EXPECT_EQ(Matrix(3, 3).rank(), 0);
  EXPECT_EQ(Matrix::from_rows({0b11, 0b11}, 2).rank(), 1);
  EXPECT_EQ(Matrix::from_rows({0b01, 0b10, 0b11}, 2).rank(), 2);
}

TEST(MatrixTest, InverseRoundTrip) {
  MINEQ_SEEDED_RNG(rng, 31);
  for (int trial = 0; trial < 25; ++trial) {
    const Matrix m = Matrix::random_invertible(6, rng);
    const auto inv = m.inverse();
    ASSERT_TRUE(inv.has_value());
    EXPECT_TRUE((m * *inv).is_identity());
    EXPECT_TRUE((*inv * m).is_identity());
  }
}

TEST(MatrixTest, SingularHasNoInverse) {
  EXPECT_FALSE(Matrix(3, 3).inverse().has_value());
  EXPECT_FALSE(Matrix::from_rows({0b11, 0b11}, 2).inverse().has_value());
  EXPECT_FALSE(Matrix(2, 3).inverse().has_value());
}

TEST(MatrixTest, SolveConsistentSystems) {
  MINEQ_SEEDED_RNG(rng, 37);
  for (int trial = 0; trial < 25; ++trial) {
    const Matrix m = Matrix::random(5, 5, rng);
    const std::uint64_t x = rng.below(32);
    const std::uint64_t b = m.apply(x);
    const auto solved = m.solve(b);
    ASSERT_TRUE(solved.has_value());
    EXPECT_EQ(m.apply(*solved), b);
  }
}

TEST(MatrixTest, SolveDetectsInconsistency) {
  // Row space = span{(1,1)}: b = (1,0) is unreachable.
  const Matrix m = Matrix::from_rows({0b11, 0b11}, 2);
  EXPECT_FALSE(m.solve(0b01).has_value());
  EXPECT_TRUE(m.solve(0b11).has_value());
}

TEST(MatrixTest, KernelBasisSpansKernel) {
  MINEQ_SEEDED_RNG(rng, 41);
  for (int trial = 0; trial < 20; ++trial) {
    const Matrix m = Matrix::random(4, 6, rng);
    const auto kernel = m.kernel_basis();
    EXPECT_EQ(static_cast<int>(kernel.size()), 6 - m.rank());
    for (std::uint64_t v : kernel) {
      EXPECT_EQ(m.apply(v), 0U);
      EXPECT_NE(v, 0U);
    }
    // Kernel vectors are independent: pairwise xor is nonzero and also in
    // the kernel.
    for (std::size_t i = 0; i < kernel.size(); ++i) {
      for (std::size_t j = i + 1; j < kernel.size(); ++j) {
        EXPECT_NE(kernel[i], kernel[j]);
        EXPECT_EQ(m.apply(kernel[i] ^ kernel[j]), 0U);
      }
    }
  }
}

TEST(MatrixTest, ImageBasisSpansImage) {
  MINEQ_SEEDED_RNG(rng, 43);
  for (int trial = 0; trial < 20; ++trial) {
    const Matrix m = Matrix::random(5, 4, rng);
    const auto image = m.image_basis();
    EXPECT_EQ(static_cast<int>(image.size()), m.rank());
    // Every image vector reachable: solve must succeed for random
    // combinations of the basis.
    std::uint64_t combo = 0;
    for (std::uint64_t b : image) {
      if (rng.chance(1, 2)) combo ^= b;
    }
    EXPECT_TRUE(m.solve(combo).has_value());
  }
}

TEST(MatrixTest, RandomInvertibleIsInvertible) {
  MINEQ_SEEDED_RNG(rng, 47);
  for (int n = 1; n <= 8; ++n) {
    const Matrix m = Matrix::random_invertible(n, rng);
    EXPECT_TRUE(m.is_invertible()) << "n=" << n;
  }
}

TEST(MatrixTest, ApplyBitVecChecksWidth) {
  const Matrix m = Matrix::identity(3);
  EXPECT_EQ(m.apply(BitVec(0b101, 3)).bits(), 0b101U);
  EXPECT_THROW((void)m.apply(BitVec(0b01, 2)), std::invalid_argument);
}

TEST(MatrixTest, StrRendersRows) {
  const Matrix m = Matrix::from_rows({0b01, 0b10}, 2);
  EXPECT_EQ(m.str(), "01\n10\n");
}

}  // namespace
}  // namespace mineq::gf2
